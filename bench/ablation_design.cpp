//===- ablation_design.cpp - Ablations of this repo's design choices ----------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// DESIGN.md commits us to ablating our own design choices, not just the
// paper's optimizations. Two knobs matter for how faithfully Figure 8's
// shape is reproduced:
//
//   1. The unroll limit for short constant sequential loops (standing in
//      for the vendor OpenCL compiler's unrolling). Convolution's 3x3
//      windows need it for their k/3, k%3 indices to fold.
//
//   2. The integer div/mod weight in the cost model, which controls how
//      much unsimplified index arithmetic costs — the mechanism behind
//      the paper's array-access-simplification ablation.
//
// Both sweeps are printed as tables; every configuration still validates.
//
//===----------------------------------------------------------------------===//

#include "suite/Benchmark.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace lift;
using namespace lift::bench;

namespace {

/// Runs one benchmark's Lift stages with explicit options; returns the
/// raw (unweighted) cost report summed over stages.
ocl::CostReport runWith(const BenchmarkCase &Case, int64_t UnrollLimit,
                        bool Aas, bool &Valid) {
  std::vector<ocl::Buffer> Bufs;
  for (const BufferInit &B : Case.WorkingBuffers)
    Bufs.push_back(B.materialize());
  ocl::CostReport Total;
  for (const Stage &S : Case.LiftStages) {
    codegen::CompilerOptions O;
    O.GlobalSize = S.Global;
    O.LocalSize = S.Local;
    O.UnrollLimit = UnrollLimit;
    O.ArrayAccessSimplification = Aas;
    codegen::CompiledKernel K = codegen::compile(S.Program, O);
    std::vector<ocl::Buffer *> Args;
    for (size_t Idx : S.Buffers)
      Args.push_back(&Bufs[Idx]);
    ocl::LaunchConfig Cfg;
    Cfg.Global = S.Global;
    Cfg.Local = S.Local;
    Total += ocl::launch(K, Args, S.Sizes, Cfg);
  }
  // Validate against the golden output.
  auto Got = Bufs[Case.OutputBuffer].toFlatFloats();
  Valid = Got.size() == Case.Expected.size();
  if (Valid) {
    for (size_t I = 0; I != Got.size(); ++I) {
      double Scale = std::max(1.0, std::fabs(double(Case.Expected[I])));
      if (std::fabs(double(Got[I]) - double(Case.Expected[I])) / Scale >
          Case.Tolerance) {
        Valid = false;
        break;
      }
    }
  }
  return Total;
}

} // namespace

int main() {
  std::printf("=== Ablation 1: unroll limit (Convolution, small) ===\n\n");
  std::printf("%8s %14s %12s %8s\n", "limit", "div/mod ops", "cost",
              "valid");
  {
    BenchmarkCase Conv = makeConvolution(false);
    for (int64_t Limit : {0, 3, 9, 16}) {
      bool Valid = false;
      ocl::CostReport C = runWith(Conv, Limit, /*Aas=*/true, Valid);
      std::printf("%8lld %14llu %12.0f %8s\n",
                  static_cast<long long>(Limit),
                  static_cast<unsigned long long>(C.DivModOps), C.cost(),
                  Valid ? "yes" : "NO");
    }
  }
  std::printf("\nWithout unrolling (limit 0), every 3x3 window access pays "
              "k/3 and k%%3 at\nruntime; unrolling folds them to "
              "constants, as the vendor compilers do.\n\n");

  std::printf("=== Ablation 2: div/mod cost weight "
              "(N-Body NVIDIA, small) ===\n\n");
  std::printf("%8s %16s %16s %10s\n", "weight", "cost (AAS on)",
              "cost (AAS off)", "AAS gain");
  {
    BenchmarkCase NBody = makeNBodyNvidia(false);
    bool VOn = false, VOff = false;
    ocl::CostReport On = runWith(NBody, 9, true, VOn);
    ocl::CostReport Off = runWith(NBody, 9, false, VOff);
    for (double W : {1.0, 4.0, 16.0, 64.0}) {
      ocl::CostWeights CW;
      CW.DivMod = W;
      std::printf("%8.0f %16.0f %16.0f %9.2fx\n", W, On.cost(CW),
                  Off.cost(CW), Off.cost(CW) / On.cost(CW));
    }
    if (!VOn || !VOff) {
      std::printf("validation FAILED\n");
      return 1;
    }
  }
  std::printf("\nThe array access simplification gain grows with the "
              "div/mod weight; the\ndefault (16) reflects integer "
              "division being an order of magnitude more\nexpensive than "
              "add/mul on the paper's GPUs. The *ordering* of the "
              "ablation\nbars in Figure 8 is insensitive to this choice.\n");
  return 0;
}
