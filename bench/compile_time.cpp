//===- compile_time.cpp - Compiler-stage timing (google-benchmark) ------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Not a table from the paper: measures the throughput of the compiler
// itself (type inference, full compilation per optimization level, the
// arithmetic simplifier, and rewrite-based lowering), as a guard against
// performance regressions in the compiler.
//
//===----------------------------------------------------------------------===//

#include "codegen/Compiler.h"
#include "ir/DSL.h"
#include "ir/Prelude.h"
#include "ir/TypeInference.h"
#include "rewrite/Rules.h"
#include "support/Casting.h"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

using namespace lift;
using namespace lift::ir;
using namespace lift::ir::dsl;

namespace {

/// The Listing 1 dot product: a representative mid-size program.
LambdaPtr dotProgram() {
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  ParamPtr Y = param("y", arrayOf(float32(), N));
  FunDeclPtr MAdd = prelude::multAndSumUpFun();
  FunDeclPtr Add = prelude::addFun();
  FunDeclPtr IdF = prelude::idFloatFun();
  ExprPtr Body = pipe(
      call(zip(), {X, Y}), split(128), mapWrg(0, fun([&](ExprPtr Chunk) {
        return pipe(
            Chunk, split(2), mapLcl(0, fun([&](ExprPtr Pair) {
              return pipe(call(reduceSeq(MAdd), {litFloat(0.0f), Pair}),
                          toLocal(mapSeq(IdF)));
            })),
            join(), iterate(6, fun([&](ExprPtr Arr) {
                      return pipe(Arr, split(2),
                                  mapLcl(0, fun([&](ExprPtr Two) {
                                    return pipe(call(reduceSeq(Add),
                                                     {litFloat(0.0f), Two}),
                                                toLocal(mapSeq(IdF)));
                                  })),
                                  join());
                    })),
            split(1), toGlobal(mapLcl(0, mapSeq(IdF))), join());
      })),
      join());
  return lambda({X, Y}, Body);
}

codegen::CompilerOptions dotOptions() {
  codegen::CompilerOptions O;
  O.GlobalSize = {4096, 1, 1};
  O.LocalSize = {64, 1, 1};
  return O;
}

void BM_TypeInference(benchmark::State &State) {
  LambdaPtr P = dotProgram();
  for (auto _ : State) {
    LambdaPtr Clone = cast<Lambda>(
        cloneFunDecl(std::static_pointer_cast<FunDecl>(P)));
    benchmark::DoNotOptimize(inferProgramTypes(Clone));
  }
}
BENCHMARK(BM_TypeInference);

void BM_FullCompile(benchmark::State &State) {
  LambdaPtr P = dotProgram();
  codegen::CompilerOptions O = dotOptions();
  for (auto _ : State) {
    codegen::CompiledKernel K = codegen::compile(P, O);
    benchmark::DoNotOptimize(K.Source.data());
  }
}
BENCHMARK(BM_FullCompile);

void BM_CompileNoOptimizations(benchmark::State &State) {
  LambdaPtr P = dotProgram();
  codegen::CompilerOptions O = codegen::CompilerOptions::noOptimizations();
  O.GlobalSize = {4096, 1, 1};
  O.LocalSize = {64, 1, 1};
  for (auto _ : State) {
    codegen::CompiledKernel K = codegen::compile(P, O);
    benchmark::DoNotOptimize(K.Source.data());
  }
}
BENCHMARK(BM_CompileNoOptimizations);

void BM_ArithSimplification(benchmark::State &State) {
  // The Figure 6 transpose index, rebuilt through the simplifier.
  auto N = arith::sizeVar("N");
  auto M = arith::sizeVar("M");
  auto WgId = arith::var("wg_id", arith::cst(0),
                         arith::sub(M, arith::cst(1)));
  auto LId = arith::var("l_id", arith::cst(0),
                        arith::sub(N, arith::cst(1)));
  arith::Expr Raw;
  {
    arith::SimplifyGuard Guard(false);
    arith::Expr Flat =
        arith::add(arith::mul(arith::Expr(WgId), N), arith::Expr(LId));
    arith::Expr Gathered = arith::add(
        arith::intDiv(Flat, N), arith::mul(arith::mod(Flat, N), M));
    Raw = arith::add(arith::mul(arith::intDiv(Gathered, M), M),
                     arith::mod(Gathered, M));
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(arith::simplified(Raw));
}
BENCHMARK(BM_ArithSimplification);

void BM_RewriteLowering(benchmark::State &State) {
  auto MakeHighLevel = []() {
    ParamPtr X = param("x", arrayOf(float32(), arith::cst(1024)));
    return lambda({X}, pipe(ExprPtr(X), map(prelude::squareFun()),
                            map(prelude::squareFun())));
  };
  for (auto _ : State) {
    LambdaPtr L = rewrite::lowerProgram(MakeHighLevel(), true,
                                        arith::cst(64));
    benchmark::DoNotOptimize(L.get());
  }
}
BENCHMARK(BM_RewriteLowering);

} // namespace

// Custom main instead of BENCHMARK_MAIN(): record the run machine-readably
// by default, as google-benchmark JSON in BENCH_compile.json. Any explicit
// --benchmark_out / --benchmark_out_format flags take precedence.
int main(int argc, char **argv) {
  std::vector<char *> Args(argv, argv + argc);
  bool HasOut = false;
  for (int I = 1; I < argc; ++I)
    if (std::string(argv[I]).rfind("--benchmark_out", 0) == 0)
      HasOut = true;
  static char OutFlag[] = "--benchmark_out=BENCH_compile.json";
  static char FormatFlag[] = "--benchmark_out_format=json";
  if (!HasOut) {
    Args.push_back(OutFlag);
    Args.push_back(FormatFlag);
  }
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
