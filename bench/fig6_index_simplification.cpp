//===- fig6_index_simplification.cpp - Reproduction of Figure 6 ----------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Figure 6 and the code-bloat observation of section 7.4: the
// array index generated for the matrix transposition of section 5.3,
// before and after arithmetic simplification, plus kernel source sizes
// with the simplification disabled ("disabling the simplification led to
// the generation of several MB of OpenCL code").
//
//===----------------------------------------------------------------------===//

#include "arith/ArithExpr.h"
#include "arith/Printer.h"
#include "codegen/Compiler.h"
#include "ir/DSL.h"
#include "ir/Prelude.h"
#include "suite/Benchmark.h"

#include <cstdio>

using namespace lift;
using namespace lift::ir;
using namespace lift::ir::dsl;

int main() {
  std::printf("=== Figure 6: simplification of the transpose index ===\n\n");

  // The setting of section 5.3: x : [[float]M]N, flattened by join,
  // permuted by gather(i -> i/M + (i mod M)*N), re-split by split(N).
  auto N = arith::sizeVar("N");
  auto M = arith::sizeVar("M");
  auto WgId = arith::var("wg_id", arith::cst(0),
                         arith::sub(M, arith::cst(1)));
  auto LId = arith::var("l_id", arith::cst(0),
                        arith::sub(N, arith::cst(1)));

  auto BuildIndex = [&]() {
    arith::Expr Flat =
        arith::add(arith::mul(arith::Expr(WgId), N), arith::Expr(LId));
    arith::Expr Gathered =
        arith::add(arith::intDiv(Flat, N),
                   arith::mul(arith::mod(Flat, N), M));
    return arith::add(
        arith::mul(arith::intDiv(Gathered, M), M),
        arith::mod(Gathered, M));
  };

  arith::Expr Raw;
  {
    arith::SimplifyGuard Guard(false);
    Raw = BuildIndex();
  }
  arith::Expr Simple = BuildIndex();

  std::printf("unsimplified (Figure 6, line 1):\n  %s\n\n",
              arith::toString(Raw).c_str());
  std::printf("simplified   (Figure 6, line 3):\n  %s\n\n",
              arith::toString(Simple).c_str());
  std::printf("operations: %u -> %u (div/mod: %u -> %u)\n\n",
              arith::countOps(Raw), arith::countOps(Simple),
              arith::countDivMod(Raw), arith::countDivMod(Simple));

  // Section 7.4: kernel source size with and without simplification.
  std::printf("=== Section 7.4: kernel code size with/without array access "
              "simplification ===\n\n");
  std::printf("%-18s %18s %18s %8s\n", "Benchmark", "simplified (B)",
              "unsimplified (B)", "factor");
  for (bench::BenchmarkCase &Case : bench::allBenchmarks(false)) {
    size_t SimplifiedSize = 0, RawSize = 0;
    for (const bench::Stage &S : Case.LiftStages) {
      codegen::CompilerOptions O;
      O.GlobalSize = S.Global;
      O.LocalSize = S.Local;
      SimplifiedSize += codegen::compile(S.Program, O).Source.size();
      // Toggle only the array access simplification, as in section 7.4.
      O.ArrayAccessSimplification = false;
      RawSize += codegen::compile(S.Program, O).Source.size();
    }
    std::printf("%-18s %18zu %18zu %7.1fx\n", Case.Name.c_str(),
                SimplifiedSize, RawSize,
                static_cast<double>(RawSize) /
                    static_cast<double>(SimplifiedSize));
  }
  return 0;
}
