//===- fig8_performance.cpp - Reproduction of Figure 8 ------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Figure 8 of the paper: for every benchmark and input size,
// runs the hand-written OpenCL reference and the Lift-generated kernels
// under the three optimization configurations, validates every output and
// prints the performance of generated code *relative to the reference*
// (1.0 = parity, as on the paper's y-axis). Costs come from the simulated
// device's machine-independent cost model (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "suite/Benchmark.h"

#include <cstdio>

using namespace lift;
using namespace lift::bench;

int main(int argc, char **argv) {
  bool Quick = false;
  for (int I = 1; I < argc; ++I)
    if (std::string(argv[I]) == "--quick")
      Quick = true;

  std::printf("=== Figure 8: relative performance of generated code vs. "
              "hand-written OpenCL ===\n");
  std::printf("(relative = reference cost / generated cost; 1.0 means "
              "parity; higher is better)\n\n");
  std::printf("%-18s %-6s %12s | %10s %10s %10s | %s\n", "Benchmark", "Size",
              "RefCost", "None", "BE+CFS", "+AAS", "valid");

  int Failures = 0;
  const OptConfig Configs[] = {OptConfig::None, OptConfig::BarrierCfs,
                               OptConfig::Full};

  for (bool Large : {false, true}) {
    if (Large && Quick)
      continue;
    for (BenchmarkCase &Case : allBenchmarks(Large)) {
      Outcome Ref = runReference(Case);
      if (!Ref.Valid) {
        std::printf("%-18s %-6s REFERENCE INVALID (err %.3g)\n",
                    Case.Name.c_str(), Case.SizeLabel.c_str(), Ref.MaxError);
        ++Failures;
        continue;
      }
      double Rel[3];
      bool AllValid = true;
      for (int CI = 0; CI != 3; ++CI) {
        Outcome Out = runLift(Case, Configs[CI]);
        Rel[CI] = Ref.Cost.cost() / Out.Cost.cost();
        if (!Out.Valid) {
          AllValid = false;
          std::printf("  !! %s %s [%s]: validation failed, max rel err "
                      "%.3g\n",
                      Case.Name.c_str(), Case.SizeLabel.c_str(),
                      optConfigName(Configs[CI]), Out.MaxError);
        }
      }
      if (!AllValid)
        ++Failures;
      std::printf("%-18s %-6s %12.0f | %10.3f %10.3f %10.3f | %s\n",
                  Case.Name.c_str(), Case.SizeLabel.c_str(), Ref.Cost.cost(),
                  Rel[0], Rel[1], Rel[2], AllValid ? "yes" : "NO");
    }
    std::printf("\n");
  }

  if (Failures != 0) {
    std::printf("%d benchmark(s) failed validation\n", Failures);
    return 1;
  }
  std::printf("All benchmarks validated against host references.\n");
  return 0;
}
