//===- fig8_performance.cpp - Reproduction of Figure 8 ------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Figure 8 of the paper: for every benchmark and input size,
// runs the hand-written OpenCL reference and the Lift-generated kernels
// under the three optimization configurations, validates every output and
// prints the performance of generated code *relative to the reference*
// (1.0 = parity, as on the paper's y-axis). Costs come from the simulated
// device's machine-independent cost model (see DESIGN.md).
//
// Besides the table, the run is recorded machine-readably: cost-model
// units plus the wall-clock time of the fully-optimized configuration
// executed serially (--threads 1) and on the worker pool, written as JSON
// to BENCH_fig8.json (override with --json PATH).
//
//===----------------------------------------------------------------------===//

#include "suite/Benchmark.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace lift;
using namespace lift::bench;

namespace {

struct Row {
  std::string Name;
  std::string Size;
  double RefCost = 0;
  double GenCost[3] = {0, 0, 0};
  double Rel[3] = {0, 0, 0};
  double WallSerial = 0;
  double WallThreaded = 0;
  bool Valid = false;
};

double seconds(std::chrono::steady_clock::time_point From,
               std::chrono::steady_clock::time_point To) {
  return std::chrono::duration<double>(To - From).count();
}

void writeJson(const std::string &Path, const std::vector<Row> &Rows,
               int ThreadsRequested, bool Quick) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "fig8_performance: cannot write %s\n", Path.c_str());
    return;
  }
  std::fprintf(F, "{\n  \"schema\": \"lift-bench-fig8-v1\",\n");
  std::fprintf(F, "  \"quick\": %s,\n", Quick ? "true" : "false");
  std::fprintf(F, "  \"threads_requested\": %d,\n", ThreadsRequested);
  std::fprintf(F, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(F, "  \"results\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Row &R = Rows[I];
    double Speedup = R.WallThreaded > 0 ? R.WallSerial / R.WallThreaded : 0;
    std::fprintf(
        F,
        "    {\"benchmark\": \"%s\", \"size\": \"%s\", "
        "\"reference_cost\": %.1f, "
        "\"cost\": {\"none\": %.1f, \"barrier_cfs\": %.1f, \"full\": %.1f}, "
        "\"relative\": {\"none\": %.6f, \"barrier_cfs\": %.6f, "
        "\"full\": %.6f}, "
        "\"wall_serial_s\": %.6f, \"wall_threaded_s\": %.6f, "
        "\"speedup\": %.3f, \"valid\": %s}%s\n",
        R.Name.c_str(), R.Size.c_str(), R.RefCost, R.GenCost[0], R.GenCost[1],
        R.GenCost[2], R.Rel[0], R.Rel[1], R.Rel[2], R.WallSerial,
        R.WallThreaded, Speedup, R.Valid ? "true" : "false",
        I + 1 != Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("Wrote %s\n", Path.c_str());
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  int Threads = 0; // 0 = auto (LIFT_THREADS, else hardware concurrency)
  std::string JsonPath = "BENCH_fig8.json";
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--quick")
      Quick = true;
    else if (A == "--threads" && I + 1 < argc)
      Threads = std::atoi(argv[++I]);
    else if (A == "--json" && I + 1 < argc)
      JsonPath = argv[++I];
  }

  std::printf("=== Figure 8: relative performance of generated code vs. "
              "hand-written OpenCL ===\n");
  std::printf("(relative = reference cost / generated cost; 1.0 means "
              "parity; higher is better)\n\n");
  std::printf("%-18s %-6s %12s | %10s %10s %10s | %9s %9s | %s\n",
              "Benchmark", "Size", "RefCost", "None", "BE+CFS", "+AAS",
              "serial-s", "pool-s", "valid");

  int Failures = 0;
  const OptConfig Configs[] = {OptConfig::None, OptConfig::BarrierCfs,
                               OptConfig::Full};
  std::vector<Row> Rows;

  for (bool Large : {false, true}) {
    if (Large && Quick)
      continue;
    for (BenchmarkCase &Case : allBenchmarks(Large)) {
      Outcome Ref = runReference(Case);
      if (!Ref.Valid) {
        std::printf("%-18s %-6s REFERENCE INVALID (err %.3g)\n",
                    Case.Name.c_str(), Case.SizeLabel.c_str(), Ref.MaxError);
        ++Failures;
        continue;
      }
      Row R;
      R.Name = Case.Name;
      R.Size = Case.SizeLabel;
      R.RefCost = Ref.Cost.cost();
      R.Valid = true;
      for (int CI = 0; CI != 3; ++CI) {
        RunOptions Run;
        Run.Threads = 1; // serial: the wall-clock baseline
        auto T0 = std::chrono::steady_clock::now();
        Outcome Out = runLift(Case, Configs[CI], Run);
        auto T1 = std::chrono::steady_clock::now();
        R.GenCost[CI] = Out.Cost.cost();
        R.Rel[CI] = Ref.Cost.cost() / Out.Cost.cost();
        if (Configs[CI] == OptConfig::Full)
          R.WallSerial = seconds(T0, T1);
        if (!Out.Valid) {
          R.Valid = false;
          std::printf("  !! %s %s [%s]: validation failed, max rel err "
                      "%.3g\n",
                      Case.Name.c_str(), Case.SizeLabel.c_str(),
                      optConfigName(Configs[CI]), Out.MaxError);
        }
      }
      {
        // The same fully-optimized run on the worker pool; results are
        // identical by construction (see docs/PARALLEL_RUNTIME.md), only
        // wall-clock changes.
        RunOptions Run;
        Run.Threads = Threads;
        auto T0 = std::chrono::steady_clock::now();
        Outcome Out = runLift(Case, OptConfig::Full, Run);
        auto T1 = std::chrono::steady_clock::now();
        R.WallThreaded = seconds(T0, T1);
        if (!Out.Valid)
          R.Valid = false;
      }
      if (!R.Valid)
        ++Failures;
      std::printf("%-18s %-6s %12.0f | %10.3f %10.3f %10.3f | %9.4f %9.4f "
                  "| %s\n",
                  Case.Name.c_str(), Case.SizeLabel.c_str(), R.RefCost,
                  R.Rel[0], R.Rel[1], R.Rel[2], R.WallSerial, R.WallThreaded,
                  R.Valid ? "yes" : "NO");
      Rows.push_back(R);
    }
    std::printf("\n");
  }

  writeJson(JsonPath, Rows, Threads, Quick);

  if (Failures != 0) {
    std::printf("%d benchmark(s) failed validation\n", Failures);
    return 1;
  }
  std::printf("All benchmarks validated against host references.\n");
  return 0;
}
