//===- lowering_compare.cpp - Rewrite-lowered vs hand-lowered kernels ----------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Quantifies the prior-work story the paper builds on (section 2): the
// same portable high-level program is lowered automatically with the
// rewrite rules under two strategies and compared — for identical results
// and simulated cost — against a hand-written low-level formulation.
//
//===----------------------------------------------------------------------===//

#include "codegen/Compiler.h"
#include "ir/DSL.h"
#include "ir/Prelude.h"
#include "ocl/Runtime.h"
#include "rewrite/Rules.h"
#include "tune/Cache.h"
#include "tune/Workloads.h"

#include <cmath>
#include <cstdio>
#include <optional>
#include <vector>

using namespace lift;
using namespace lift::ir;
using namespace lift::ir::dsl;

namespace {

constexpr int64_t N = 4096;

struct RunResult {
  double Cost = 0;
  double MaxErr = 0;
};

RunResult runScaled(const LambdaPtr &Prog, std::array<int64_t, 3> Global,
                    std::array<int64_t, 3> Local,
                    const std::vector<float> &In,
                    const std::vector<float> &Ref) {
  codegen::CompilerOptions O;
  O.GlobalSize = Global;
  O.LocalSize = Local;
  codegen::CompiledKernel K = codegen::compile(Prog, O);
  ocl::Buffer InB = ocl::Buffer::ofFloats(In);
  ocl::Buffer Out = ocl::Buffer::zeros(Ref.size());
  ocl::CostReport C =
      ocl::launch(K, {&InB, &Out}, {}, ocl::LaunchConfig::fromOptions(O));
  RunResult R;
  R.Cost = C.cost();
  auto Got = Out.toFloats();
  for (size_t I = 0; I != Ref.size(); ++I)
    R.MaxErr = std::fmax(
        R.MaxErr, std::fabs(static_cast<double>(Got[I]) - Ref[I]));
  return R;
}

} // namespace

int main() {
  std::printf("=== Rewrite-based lowering vs hand-written low-level IL "
              "===\n\n");
  std::printf("Portable program: map(offset) . map(scale) over [float]%lld"
              "\n\n",
              static_cast<long long>(N));

  FunDeclPtr Scale = userFun("scale", {"x"}, {float32()}, float32(),
                             "return 3.0f * x;");
  FunDeclPtr Offset = userFun("offset", {"x"}, {float32()}, float32(),
                              "return x + 1.0f;");
  FunDeclPtr Fused = userFun("scaleOffset", {"x"}, {float32()}, float32(),
                             "return 3.0f * x + 1.0f;");

  auto MakeHighLevel = [&]() {
    ParamPtr X = param("x", arrayOf(float32(), arith::cst(N)));
    return lambda({X}, pipe(ExprPtr(X), map(Scale), map(Offset)));
  };
  // What an expert would write directly.
  ParamPtr XH = param("x", arrayOf(float32(), arith::cst(N)));
  LambdaPtr Hand = lambda({XH}, pipe(ExprPtr(XH), mapGlb(Fused)));

  std::vector<float> In(N), Ref(N);
  for (int64_t I = 0; I != N; ++I) {
    In[I] = static_cast<float>(I % 17) / 4.f;
    Ref[I] = 3.f * In[I] + 1.f;
  }

  // The work-group chunk comes from the auto-tuner's winning cache entry
  // for this very program (run `lift-tune lowering-compare` to refresh);
  // without a warm cache it falls back to the historical constant.
  int64_t Chunk = 64;
  std::optional<int64_t> Tuned = tune::cachedBestWrgChunk(
      tune::loweringCompareWorkload(), tune::TuneConfig());
  if (Tuned)
    Chunk = *Tuned;
  std::printf("Work-group chunk: %lld (%s)\n\n",
              static_cast<long long>(Chunk),
              Tuned ? "from the tuning cache" : "default, no tuning cache");

  LambdaPtr Glb = rewrite::lowerProgram(MakeHighLevel(), false);
  LambdaPtr Wrg =
      rewrite::lowerProgram(MakeHighLevel(), true, arith::cst(Chunk));

  RunResult RH = runScaled(Hand, {512, 1, 1}, {64, 1, 1}, In, Ref);
  RunResult RG = runScaled(Glb, {512, 1, 1}, {64, 1, 1}, In, Ref);
  RunResult RW = runScaled(Wrg, {N, 1, 1}, {Chunk, 1, 1}, In, Ref);

  std::printf("%-34s %12s %10s %8s\n", "variant", "cost", "relative",
              "max err");
  std::printf("%-34s %12.0f %9.3fx %8.1g\n", "hand-written (mapGlb, fused)",
              RH.Cost, 1.0, RH.MaxErr);
  std::printf("%-34s %12.0f %9.3fx %8.1g\n", "lowered: mapGlb strategy",
              RG.Cost, RH.Cost / RG.Cost, RG.MaxErr);
  std::printf("%-34s %12.0f %9.3fx %8.1g\n",
              "lowered: mapWrg(mapLcl) strategy", RW.Cost,
              RH.Cost / RW.Cost, RW.MaxErr);

  std::printf("\nThe map-fusion rule removes the intermediate array, so "
              "the automatically\nlowered kernels match the hand-fused "
              "one's memory traffic; the remaining\ndifference is user-"
              "function call overhead (the expert fused the bodies).\n");

  bool Ok = RH.MaxErr < 1e-5 && RG.MaxErr < 1e-5 && RW.MaxErr < 1e-5;
  return Ok ? 0 : 1;
}
