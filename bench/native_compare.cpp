//===- native_compare.cpp - Native backend vs. simulator harness ----------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Differential evaluation of the native C++/OpenMP backend (src/native)
// against the simulated runtime: for every paper benchmark, runs the Lift
// stages under the full optimization configuration on both backends,
// checks the outputs are bit-identical, and records the simulator's
// cost-model units next to the native backend's real wall-clock (serial
// and threaded) plus its one-time system-compiler cost. Written as JSON
// to BENCH_native.json (override with --json PATH).
//
// When no system C++ compiler is installed the harness prints a notice
// and exits successfully — the simulator needs no toolchain, so CI runs
// on toolchain-less machines stay green (see docs/NATIVE_BACKEND.md).
//
//===----------------------------------------------------------------------===//

#include "native/Native.h"
#include "suite/Benchmark.h"
#include "support/Diagnostics.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace lift;
using namespace lift::bench;

namespace {

struct Row {
  std::string Name;
  std::string Size;
  double SimCost = 0;       // simulator cost-model units (full config)
  double NativeSerialMs = 0;
  double NativeThreadedMs = 0;
  double CompileMs = 0;     // first-run system-compiler time
  bool CacheHit = false;    // threaded rerun served from the .so cache
  bool BitIdentical = false;
  bool Valid = false;
};

void writeJson(const std::string &Path, const std::vector<Row> &Rows,
               int Threads) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "native_compare: cannot write %s\n", Path.c_str());
    return;
  }
  std::fprintf(F, "{\n  \"schema\": \"lift-bench-native-v1\",\n");
  std::fprintf(F, "  \"threads\": %d,\n", Threads);
  std::fprintf(F, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(F, "  \"results\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Row &R = Rows[I];
    double Speedup =
        R.NativeThreadedMs > 0 ? R.NativeSerialMs / R.NativeThreadedMs : 0;
    std::fprintf(
        F,
        "    {\"benchmark\": \"%s\", \"size\": \"%s\", "
        "\"sim_cost\": %.1f, "
        "\"native_serial_ms\": %.4f, \"native_threaded_ms\": %.4f, "
        "\"speedup\": %.3f, \"compile_ms\": %.2f, \"cache_hit\": %s, "
        "\"bit_identical\": %s, \"valid\": %s}%s\n",
        R.Name.c_str(), R.Size.c_str(), R.SimCost, R.NativeSerialMs,
        R.NativeThreadedMs, Speedup, R.CompileMs,
        R.CacheHit ? "true" : "false", R.BitIdentical ? "true" : "false",
        R.Valid ? "true" : "false", I + 1 != Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("Wrote %s\n", Path.c_str());
}

bool bitIdentical(const std::vector<float> &A, const std::vector<float> &B) {
  return A.size() == B.size() &&
         (A.empty() ||
          std::memcmp(A.data(), B.data(), A.size() * sizeof(float)) == 0);
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  int Threads = 8;
  std::string JsonPath = "BENCH_native.json";
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--quick")
      Quick = true;
    else if (A == "--threads" && I + 1 < argc)
      Threads = std::atoi(argv[++I]);
    else if (A == "--json" && I + 1 < argc)
      JsonPath = argv[++I];
  }

  if (native::toolchainCompiler().empty()) {
    std::printf("native_compare: no system C++ compiler found (set "
                "LIFT_NATIVE_CXX or install c++/g++/clang++); skipping.\n");
    return 0;
  }

  std::printf("=== Native C++/OpenMP backend vs. simulator ===\n");
  std::printf("(sim cost is model units; native times are real wall-clock; "
              "every row must be bit-identical)\n\n");
  std::printf("%-18s %-6s %12s | %11s %11s %8s | %10s %5s | %s\n", "Benchmark",
              "Size", "SimCost", "serial-ms", "pool-ms", "speedup",
              "compile-ms", "cache", "bits");

  int Failures = 0;
  std::vector<Row> Rows;
  for (bool Large : {false, true}) {
    if (Large && Quick)
      continue;
    for (BenchmarkCase &Case : allBenchmarks(Large)) {
      Row R;
      R.Name = Case.Name;
      R.Size = Large ? "large" : "small";

      RunOptions Run;
      Run.Threads = 1;
      DiagnosticEngine SimEngine;
      Expected<Outcome> Sim =
          runLiftChecked(Case, OptConfig::Full, Run, SimEngine);
      if (!Sim || !Sim->Valid) {
        std::printf("%-18s %-6s SIMULATOR FAILED\n%s\n", R.Name.c_str(),
                    R.Size.c_str(), SimEngine.render().c_str());
        ++Failures;
        Rows.push_back(R);
        continue;
      }
      R.SimCost = Sim->Cost.cost();

      DiagnosticEngine SerialEngine;
      Expected<NativeOutcome> Serial =
          runLiftNativeChecked(Case, OptConfig::Full, Run, SerialEngine);
      Run.Threads = Threads;
      DiagnosticEngine PoolEngine;
      Expected<NativeOutcome> Pool =
          runLiftNativeChecked(Case, OptConfig::Full, Run, PoolEngine);
      if (!Serial || !Pool || !Serial->Valid || !Pool->Valid) {
        std::printf("%-18s %-6s NATIVE FAILED\n%s%s\n", R.Name.c_str(),
                    R.Size.c_str(), SerialEngine.render().c_str(),
                    PoolEngine.render().c_str());
        ++Failures;
        Rows.push_back(R);
        continue;
      }

      R.NativeSerialMs = Serial->WallMs;
      R.NativeThreadedMs = Pool->WallMs;
      R.CompileMs = Serial->CompileMs;
      R.CacheHit = Pool->AllCacheHits;
      R.BitIdentical = bitIdentical(Sim->Output, Serial->Output) &&
                       bitIdentical(Sim->Output, Pool->Output);
      R.Valid = R.BitIdentical;
      if (!R.BitIdentical) {
        std::printf("%-18s %-6s OUTPUT DIVERGED from the simulator\n",
                    R.Name.c_str(), R.Size.c_str());
        ++Failures;
      }

      double Speedup =
          R.NativeThreadedMs > 0 ? R.NativeSerialMs / R.NativeThreadedMs : 0;
      std::printf("%-18s %-6s %12.0f | %11.4f %11.4f %7.2fx | %10.1f %5s | %s\n",
                  R.Name.c_str(), R.Size.c_str(), R.SimCost, R.NativeSerialMs,
                  R.NativeThreadedMs, Speedup, R.CompileMs,
                  R.CacheHit ? "hit" : "miss",
                  R.BitIdentical ? "same" : "DIFF");
      Rows.push_back(R);
    }
  }

  writeJson(JsonPath, Rows, Threads);
  if (Failures) {
    std::printf("\n%d failure(s)\n", Failures);
    return 1;
  }
  std::printf("\nAll benchmarks bit-identical between backends.\n");
  return 0;
}
