//===- native_compare.cpp - Native backend vs. simulator harness ----------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Differential evaluation of the native C++/OpenMP backend (src/native)
// against the simulated runtime: for every paper benchmark, runs the Lift
// stages under the full optimization configuration on both backends and
// in both native modes. Exact mode must be bit-identical to the
// simulator; fast mode (typed scalars, simd loops, -O3 -march=native)
// must validate against the host golden reference within the benchmark
// tolerance. Each row records the simulator's cost-model units next to
// median native wall-clock (serial exact, threaded exact, serial fast)
// and a per-launch overhead breakdown: system-compiler time, and the
// marshalling+readback cost of the first (cache-miss) launch vs. a
// cache-hit launch, where the persistent arenas and the skipped
// read-only copies pay off. Written as JSON to BENCH_native.json
// (override with --json PATH).
//
// When no system C++ compiler is installed the harness prints a notice
// and exits successfully — the simulator needs no toolchain, so CI runs
// on toolchain-less machines stay green (see docs/NATIVE_BACKEND.md).
//
//===----------------------------------------------------------------------===//

#include "native/Native.h"
#include "suite/Benchmark.h"
#include "support/Diagnostics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace lift;
using namespace lift::bench;

namespace {

struct ModeStats {
  double SerialMs = 0;       // median over the cache-hit repeats
  double ThreadedMs = 0;     // exact mode only (0 otherwise)
  double CompileMs = 0;      // first-run system-compiler time
  double MarshalFirstMs = 0; // marshalling+readback, first (miss) launch
  double MarshalHitMs = 0;   // same, median over cache-hit launches
  bool CacheHit = false;     // repeats served from the .so cache
  bool Ok = false;           // every launch executed
  bool Valid = false;        // within the benchmark's relative tolerance
  double MaxError = 0;       // relative error vs. the host golden reference
};

struct Row {
  std::string Name;
  std::string Size;
  double SimCost = 0; // simulator cost-model units (full config)
  ModeStats Exact;
  ModeStats Fast;
  bool BitIdentical = false; // exact output vs. simulator, byte for byte
};

double median(std::vector<double> V) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  return V[V.size() / 2];
}

void writeJson(const std::string &Path, const std::vector<Row> &Rows,
               int Threads, int Repeats) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "native_compare: cannot write %s\n", Path.c_str());
    return;
  }
  std::fprintf(F, "{\n  \"schema\": \"lift-bench-native-v2\",\n");
  std::fprintf(F, "  \"threads\": %d,\n", Threads);
  std::fprintf(F, "  \"repeats\": %d,\n", Repeats);
  std::fprintf(F, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(F, "  \"results\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Row &R = Rows[I];
    double PoolSpeedup =
        R.Exact.ThreadedMs > 0 ? R.Exact.SerialMs / R.Exact.ThreadedMs : 0;
    double FastSpeedup =
        R.Fast.SerialMs > 0 ? R.Exact.SerialMs / R.Fast.SerialMs : 0;
    std::fprintf(
        F,
        "    {\"benchmark\": \"%s\", \"size\": \"%s\", \"sim_cost\": %.1f,\n"
        "     \"exact\": {\"serial_ms\": %.4f, \"threaded_ms\": %.4f, "
        "\"pool_speedup\": %.3f, \"compile_ms\": %.2f, "
        "\"marshal_first_ms\": %.4f, \"marshal_hit_ms\": %.4f, "
        "\"cache_hit\": %s, \"bit_identical\": %s},\n"
        "     \"fast\": {\"serial_ms\": %.4f, \"compile_ms\": %.2f, "
        "\"marshal_first_ms\": %.4f, \"marshal_hit_ms\": %.4f, "
        "\"speedup_vs_exact\": %.3f, \"valid\": %s, "
        "\"max_error\": %.3g}}%s\n",
        R.Name.c_str(), R.Size.c_str(), R.SimCost, R.Exact.SerialMs,
        R.Exact.ThreadedMs, PoolSpeedup, R.Exact.CompileMs,
        R.Exact.MarshalFirstMs, R.Exact.MarshalHitMs,
        R.Exact.CacheHit ? "true" : "false",
        R.BitIdentical ? "true" : "false", R.Fast.SerialMs,
        R.Fast.CompileMs, R.Fast.MarshalFirstMs, R.Fast.MarshalHitMs,
        FastSpeedup, R.Fast.Valid ? "true" : "false", R.Fast.MaxError,
        I + 1 != Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("Wrote %s\n", Path.c_str());
}

bool bitIdentical(const std::vector<float> &A, const std::vector<float> &B) {
  return A.size() == B.size() &&
         (A.empty() ||
          std::memcmp(A.data(), B.data(), A.size() * sizeof(float)) == 0);
}

/// Runs the case natively Repeats+1 times at Threads=1: the first launch
/// pays compile+miss (MarshalFirstMs), the repeats are cache hits whose
/// wall-clock and marshalling medians are reported. Returns the last
/// run's output in \p Output.
bool timeMode(const BenchmarkCase &Case, native::NativeMode Mode,
              int Repeats, ModeStats &S, std::vector<float> &Output,
              std::string &Error) {
  RunOptions Run;
  Run.Threads = 1;
  Run.NativeMode = Mode;

  DiagnosticEngine FirstEngine;
  Expected<NativeOutcome> First =
      runLiftNativeChecked(Case, OptConfig::Full, Run, FirstEngine);
  if (!First) {
    Error = FirstEngine.render();
    return false;
  }
  S.CompileMs = First->CompileMs;
  S.MarshalFirstMs = First->MarshalMs;

  std::vector<double> Walls, Marshals;
  bool AllHits = true;
  for (int R = 0; R != std::max(1, Repeats); ++R) {
    DiagnosticEngine Engine;
    Expected<NativeOutcome> O =
        runLiftNativeChecked(Case, OptConfig::Full, Run, Engine);
    if (!O) {
      Error = Engine.render();
      return false;
    }
    Walls.push_back(O->WallMs);
    Marshals.push_back(O->MarshalMs);
    AllHits = AllHits && O->AllCacheHits;
    S.Valid = O->Valid;
    S.MaxError = O->MaxError;
    Output = std::move(O->Output);
  }
  S.SerialMs = median(std::move(Walls));
  S.MarshalHitMs = median(std::move(Marshals));
  S.CacheHit = AllHits;
  S.Ok = true;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  bool Small = true, Large = true;
  int Threads = 8;
  int Repeats = 3;
  std::string JsonPath = "BENCH_native.json";
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--quick") {
      Small = true;
      Large = false;
    } else if (A == "--sizes" && I + 1 < argc) {
      std::string S = argv[++I];
      Small = S == "small" || S == "all";
      Large = S == "large" || S == "all";
      if (!Small && !Large) {
        std::fprintf(stderr,
                     "native_compare: --sizes must be small|large|all\n");
        return 2;
      }
    } else if (A == "--threads" && I + 1 < argc)
      Threads = std::atoi(argv[++I]);
    else if (A == "--repeats" && I + 1 < argc)
      Repeats = std::atoi(argv[++I]);
    else if (A == "--json" && I + 1 < argc)
      JsonPath = argv[++I];
  }

  if (native::toolchainCompiler().empty()) {
    std::printf("native_compare: no system C++ compiler found (set "
                "LIFT_NATIVE_CXX or install c++/g++/clang++); skipping.\n");
    return 0;
  }

  std::printf("=== Native C++/OpenMP backend vs. simulator ===\n");
  std::printf("(native times are median-of-%d wall-clock ms; exact mode "
              "must be bit-identical,\n fast mode must validate within the "
              "benchmark tolerance)\n\n",
              Repeats);
  std::printf("%-18s %-6s | %10s %10s | %10s %7s | %13s | %4s %5s\n",
              "Benchmark", "Size", "exact-ms", "pool-ms", "fast-ms",
              "fast-x", "marshal f->h", "bits", "fast");

  int Failures = 0;
  int LargeTotal = 0, LargeFastWins = 0;
  std::vector<Row> Rows;
  for (bool IsLarge : {false, true}) {
    if ((IsLarge && !Large) || (!IsLarge && !Small))
      continue;
    for (BenchmarkCase &Case : allBenchmarks(IsLarge)) {
      Row R;
      R.Name = Case.Name;
      R.Size = IsLarge ? "large" : "small";

      RunOptions Run;
      Run.Threads = 1;
      DiagnosticEngine SimEngine;
      Expected<Outcome> Sim =
          runLiftChecked(Case, OptConfig::Full, Run, SimEngine);
      if (!Sim || !Sim->Valid) {
        std::printf("%-18s %-6s SIMULATOR FAILED\n%s\n", R.Name.c_str(),
                    R.Size.c_str(), SimEngine.render().c_str());
        ++Failures;
        Rows.push_back(R);
        continue;
      }
      R.SimCost = Sim->Cost.cost();

      std::vector<float> ExactOut, FastOut;
      std::string Error;
      if (!timeMode(Case, native::NativeMode::Exact, Repeats, R.Exact,
                    ExactOut, Error)) {
        std::printf("%-18s %-6s NATIVE (exact) FAILED\n%s\n", R.Name.c_str(),
                    R.Size.c_str(), Error.c_str());
        ++Failures;
        Rows.push_back(R);
        continue;
      }
      if (!timeMode(Case, native::NativeMode::Fast, Repeats, R.Fast, FastOut,
                    Error)) {
        std::printf("%-18s %-6s NATIVE (fast) FAILED\n%s\n", R.Name.c_str(),
                    R.Size.c_str(), Error.c_str());
        ++Failures;
        Rows.push_back(R);
        continue;
      }

      // Threaded exact run (worker pool), after the serial timings so the
      // artifact is warm.
      {
        RunOptions Pool;
        Pool.Threads = Threads;
        DiagnosticEngine PoolEngine;
        Expected<NativeOutcome> P =
            runLiftNativeChecked(Case, OptConfig::Full, Pool, PoolEngine);
        if (!P) {
          std::printf("%-18s %-6s NATIVE (threaded) FAILED\n%s\n",
                      R.Name.c_str(), R.Size.c_str(),
                      PoolEngine.render().c_str());
          ++Failures;
          Rows.push_back(R);
          continue;
        }
        R.Exact.ThreadedMs = P->WallMs;
        R.BitIdentical = bitIdentical(Sim->Output, ExactOut) &&
                         bitIdentical(Sim->Output, P->Output);
      }

      if (!R.BitIdentical) {
        std::printf("%-18s %-6s EXACT OUTPUT DIVERGED from the simulator\n",
                    R.Name.c_str(), R.Size.c_str());
        ++Failures;
      }
      if (!R.Fast.Valid || !R.Exact.Valid) {
        std::printf("%-18s %-6s %s OUTPUT OUT OF TOLERANCE (%.3g)\n",
                    R.Name.c_str(), R.Size.c_str(),
                    R.Exact.Valid ? "FAST" : "EXACT",
                    R.Exact.Valid ? R.Fast.MaxError : R.Exact.MaxError);
        ++Failures;
      }
      if (IsLarge) {
        ++LargeTotal;
        if (R.Fast.SerialMs < R.Exact.SerialMs)
          ++LargeFastWins;
      }

      double FastX =
          R.Fast.SerialMs > 0 ? R.Exact.SerialMs / R.Fast.SerialMs : 0;
      std::printf("%-18s %-6s | %10.4f %10.4f | %10.4f %6.2fx | "
                  "%6.3f %6.3f | %4s %5s\n",
                  R.Name.c_str(), R.Size.c_str(), R.Exact.SerialMs,
                  R.Exact.ThreadedMs, R.Fast.SerialMs, FastX,
                  R.Exact.MarshalFirstMs, R.Exact.MarshalHitMs,
                  R.BitIdentical ? "same" : "DIFF",
                  R.Fast.Valid ? "ok" : "BAD");
      Rows.push_back(R);
    }
  }

  writeJson(JsonPath, Rows, Threads, Repeats);
  if (LargeTotal)
    std::printf("\nfast serial beat exact serial on %d/%d large "
                "benchmarks\n",
                LargeFastWins, LargeTotal);
  if (Failures) {
    std::printf("\n%d failure(s)\n", Failures);
    return 1;
  }
  std::printf("\nExact mode bit-identical everywhere; fast mode within "
              "tolerance everywhere.\n");
  return 0;
}
