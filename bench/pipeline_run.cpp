//===- pipeline_run.cpp - Pipeline-graph executor evaluation -------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Evaluation of the pipeline-graph executor (docs/PIPELINES.md): every
// committed .liftg workload is run twice on the simulator —
//
//   naive   all buffers allocated up front and held to the end
//           (--no-reuse-buffers), the obvious baseline;
//   reuse   the liveness pass frees intermediates after their last
//           consumer and recycles exact-shape matches.
//
// Per workload: stages run, summed cost-model units, the host high-water
// mark of both executors (ocl::hostBytesHighWater, reset per run), the
// recycle/free counts and wall time, written as JSON (schema
// pipeline-v1) to BENCH_pipeline.json (override with --json PATH).
//
// The harness exits nonzero when an invariant breaks, so it doubles as
// the graph-bench integration test (--quick for CI):
//
//   * both executors must produce bit-identical outputs;
//   * the reuse executor's peak may never exceed the naive peak;
//   * on the stencil chain (the workload whose liveness actually
//     overlaps) the reuse peak must be measurably lower — at least 25%.
//
//===----------------------------------------------------------------------===//

#include "graph/GraphExec.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace lift;

namespace {

using Clock = std::chrono::steady_clock;

struct Row {
  std::string Name;
  uint64_t StagesRun = 0;
  double Cost = 0;
  uint64_t NaivePeak = 0;
  uint64_t ReusePeak = 0;
  uint64_t Recycled = 0;
  uint64_t Freed = 0;
  double NaiveMs = 0;
  double ReuseMs = 0;
  bool Identical = false;
};

bool runGraphFile(const std::string &Path, bool Reuse,
                  graph::GraphRunResult &Out, double &WallMs) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "pipeline_run: cannot open %s\n", Path.c_str());
    return false;
  }
  std::stringstream SS;
  SS << In.rdbuf();

  DiagnosticEngine Engine;
  Expected<graph::Graph> G = graph::parseGraphChecked(SS.str(), Engine);
  Expected<graph::ValidatedGraph> VG =
      G ? graph::validateGraph(*G, Engine) : Expected<graph::ValidatedGraph>();
  if (!VG) {
    for (const Diagnostic &D : Engine.diagnostics())
      std::fprintf(stderr, "pipeline_run: %s\n", D.render().c_str());
    return false;
  }

  graph::GraphRunOptions GO;
  GO.ReuseBuffers = Reuse;
  Clock::time_point T0 = Clock::now();
  Expected<graph::GraphRunResult> R = graph::runGraph(*VG, GO, Engine);
  WallMs = std::chrono::duration<double, std::milli>(Clock::now() - T0).count();
  if (!R) {
    for (const Diagnostic &D : Engine.diagnostics())
      std::fprintf(stderr, "pipeline_run: %s\n", D.render().c_str());
    return false;
  }
  Out = std::move(*R);
  return true;
}

void writeJson(const char *Path, const std::vector<Row> &Rows) {
  std::ofstream Out(Path);
  Out << "{\n  \"schema\": \"pipeline-v1\",\n  \"workloads\": [\n";
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Row &R = Rows[I];
    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        "    {\"name\": \"%s\", \"stages_run\": %llu, \"cost\": %.0f,\n"
        "     \"naive_peak_bytes\": %llu, \"reuse_peak_bytes\": %llu,\n"
        "     \"peak_reduction\": %.2f, \"buffers_recycled\": %llu, "
        "\"buffers_freed\": %llu,\n"
        "     \"naive_wall_ms\": %.2f, \"reuse_wall_ms\": %.2f, "
        "\"outputs_identical\": %s}%s\n",
        R.Name.c_str(), static_cast<unsigned long long>(R.StagesRun), R.Cost,
        static_cast<unsigned long long>(R.NaivePeak),
        static_cast<unsigned long long>(R.ReusePeak),
        R.ReusePeak ? static_cast<double>(R.NaivePeak) /
                          static_cast<double>(R.ReusePeak)
                    : 0.0,
        static_cast<unsigned long long>(R.Recycled),
        static_cast<unsigned long long>(R.Freed), R.NaiveMs, R.ReuseMs,
        R.Identical ? "true" : "false",
        I + 1 == Rows.size() ? "" : ",");
    Out << Buf;
  }
  Out << "  ]\n}\n";
}

} // namespace

int main(int argc, char **argv) {
  const char *JsonPath = "BENCH_pipeline.json";
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--quick") == 0)
      ; // The workloads are already CI-sized; --quick is accepted for
        // symmetry with the other harnesses.
    else if (std::strcmp(argv[I], "--json") == 0 && I + 1 < argc)
      JsonPath = argv[++I];
    else {
      std::fprintf(stderr, "usage: pipeline_run [--quick] [--json PATH]\n");
      return 2;
    }
  }

  const char *Workloads[] = {"stencil_chain", "matmul_bias", "jacobi",
                             "kmeans_loop"};
  std::vector<Row> Rows;
  bool Ok = true;

  std::printf("%-16s %10s %12s %12s %7s %9s %7s\n", "workload", "stages",
              "naive-peak", "reuse-peak", "ratio", "recycled", "freed");
  for (const char *W : Workloads) {
    std::string Path =
        std::string(LIFT_GRAPH_EXAMPLES_DIR) + "/" + W + ".liftg";
    Row R;
    R.Name = W;
    graph::GraphRunResult Naive, Reuse;
    if (!runGraphFile(Path, /*Reuse=*/false, Naive, R.NaiveMs) ||
        !runGraphFile(Path, /*Reuse=*/true, Reuse, R.ReuseMs)) {
      Ok = false;
      continue;
    }
    R.StagesRun = Reuse.StagesRun;
    R.Cost = Reuse.TotalCost;
    R.NaivePeak = Naive.PeakHostBytes;
    R.ReusePeak = Reuse.PeakHostBytes;
    R.Recycled = Reuse.BuffersRecycled;
    R.Freed = Reuse.BuffersFreed;
    R.Identical = Naive.Outputs == Reuse.Outputs;
    Rows.push_back(R);

    std::printf("%-16s %10llu %12llu %12llu %6.2fx %9llu %7llu\n", W,
                static_cast<unsigned long long>(R.StagesRun),
                static_cast<unsigned long long>(R.NaivePeak),
                static_cast<unsigned long long>(R.ReusePeak),
                R.ReusePeak ? static_cast<double>(R.NaivePeak) /
                                  static_cast<double>(R.ReusePeak)
                            : 0.0,
                static_cast<unsigned long long>(R.Recycled),
                static_cast<unsigned long long>(R.Freed));

    if (!R.Identical) {
      std::fprintf(stderr,
                   "pipeline_run: FAIL %s: naive and reuse outputs differ\n",
                   W);
      Ok = false;
    }
    if (R.ReusePeak > R.NaivePeak) {
      std::fprintf(stderr,
                   "pipeline_run: FAIL %s: reuse peak %llu exceeds naive "
                   "peak %llu\n",
                   W, static_cast<unsigned long long>(R.ReusePeak),
                   static_cast<unsigned long long>(R.NaivePeak));
      Ok = false;
    }
    if (std::strcmp(W, "stencil_chain") == 0 &&
        R.ReusePeak * 4 > R.NaivePeak * 3) {
      std::fprintf(stderr,
                   "pipeline_run: FAIL stencil_chain: reuse peak %llu is "
                   "not at least 25%% below naive peak %llu\n",
                   static_cast<unsigned long long>(R.ReusePeak),
                   static_cast<unsigned long long>(R.NaivePeak));
      Ok = false;
    }
  }

  writeJson(JsonPath, Rows);
  std::printf("\nwrote %s\n", JsonPath);
  return Ok ? 0 : 1;
}
