//===- request_storm.cpp - liftd service throughput harness --------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Load evaluation of the liftd compile-and-run service (docs/SERVICE.md).
// An in-process daemon is stormed by client threads over its real Unix
// socket, in three phases:
//
//   warm      every distinct program once: all compiles happen here, so
//             the later phases measure the service layer, not the
//             compiler;
//   fits      a storm sized within --max-inflight + --queue-depth: the
//             shed rate must be exactly zero, every request must be
//             answered from the content-addressed cache without a single
//             recompile;
//   overload  a storm far past capacity with a zero queue: admission
//             control must shed deterministically (shed rate > 0), and
//             the clients' bounded retry must still land every request.
//
// Per phase: requests, throughput, p50/p99 round-trip latency, shed rate
// and dedupe hit rate, written as JSON (schema service-v1) to
// BENCH_service.json (override with --json PATH). The harness exits
// nonzero when an invariant breaks, so it doubles as the service-bench
// integration test (--quick for CI).
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "service/Server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace lift;
using namespace lift::service;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - T0).count();
}

// Small, fast programs: the storm measures the service layer, so each
// request should cost microseconds, not the seconds a big NDRange costs.
const char *SquareIl = "def sq(x: float): float = \"return x * x;\"\n"
                       "\n"
                       "fun(x: [float]N) =>\n"
                       "  mapGlb0(sq)(x)\n";
const char *ScaleIl = "def tri(x: float): float = \"return 3.0f * x + 1.0f;\"\n"
                      "\n"
                      "fun(x: [float]N) =>\n"
                      "  mapGlb0(tri)(x)\n";

Request makeRequest(int Variant) {
  Request R;
  R.Kind = Op::Exec;
  R.Exec.Run = true;
  R.Exec.Source = (Variant % 2 == 0) ? SquareIl : ScaleIl;
  R.Exec.Opts.GlobalSize = {64, 1, 1};
  R.Exec.Opts.LocalSize = {16, 1, 1};
  // Two sizes per program: sizes are run-time bindings, so all four
  // variants still collapse onto two compile keys.
  R.Exec.Sizes["N"] = (Variant / 2 % 2 == 0) ? 256 : 1024;
  return R;
}
constexpr int NumVariants = 4;
constexpr int NumCompileKeys = 2;

struct PhaseResult {
  std::string Name;
  int Requests = 0;
  int Ok = 0;
  int Failed = 0;
  double ElapsedMs = 0;
  double P50Ms = 0;
  double P99Ms = 0;
  double ThroughputRps = 0;
  int64_t Shed = 0;          // daemon-side counter delta
  double ShedRate = 0;       // shed / admissions offered
  int64_t Compiles = 0;      // daemon-side counter delta
  int64_t DedupeHits = 0;    // daemon-side counter delta
  double DedupeHitRate = 0;  // dedupe hits / requests
};

struct CounterDelta {
  int64_t Shed = 0, Compiles = 0, DedupeHits = 0, Requests = 0;
};

CounterDelta delta(const ServerStats &Before, const ServerStats &After) {
  CounterDelta D;
  D.Shed = After.Shed - Before.Shed;
  D.Compiles = After.Compiles - Before.Compiles;
  D.DedupeHits = After.DedupeHits - Before.DedupeHits;
  D.Requests = After.Requests - Before.Requests;
  return D;
}

/// Runs \p Clients threads, each sending \p PerClient requests through
/// the retrying client, collecting per-request latency.
PhaseResult storm(const std::string &Name, Server &S, const ClientOptions &C,
                  int Clients, int PerClient) {
  PhaseResult P;
  P.Name = Name;
  P.Requests = Clients * PerClient;
  ServerStats Before = S.stats();

  std::vector<std::vector<double>> Lat(static_cast<size_t>(Clients));
  std::atomic<int> OkCount{0}, FailCount{0};
  Clock::time_point T0 = Clock::now();
  std::vector<std::thread> Threads;
  for (int T = 0; T < Clients; ++T)
    Threads.emplace_back([&, T] {
      Lat[static_cast<size_t>(T)].reserve(static_cast<size_t>(PerClient));
      for (int I = 0; I < PerClient; ++I) {
        Request R = makeRequest((T + I) % NumVariants);
        DiagnosticEngine Engine(20);
        Response Resp;
        Clock::time_point R0 = Clock::now();
        bool Sent = roundTrip(C, R, Resp, Engine);
        Lat[static_cast<size_t>(T)].push_back(msSince(R0));
        if (Sent && Resp.Exit == 0)
          ++OkCount;
        else
          ++FailCount;
      }
    });
  for (std::thread &Th : Threads)
    Th.join();
  P.ElapsedMs = msSince(T0);

  std::vector<double> All;
  for (const std::vector<double> &L : Lat)
    All.insert(All.end(), L.begin(), L.end());
  std::sort(All.begin(), All.end());
  if (!All.empty()) {
    P.P50Ms = All[All.size() / 2];
    P.P99Ms = All[std::min(All.size() - 1, All.size() * 99 / 100)];
  }
  P.Ok = OkCount.load();
  P.Failed = FailCount.load();
  P.ThroughputRps =
      P.ElapsedMs > 0 ? 1000.0 * static_cast<double>(P.Requests) / P.ElapsedMs
                      : 0;

  CounterDelta D = delta(Before, S.stats());
  P.Shed = D.Shed;
  P.ShedRate = D.Requests > 0
                   ? static_cast<double>(D.Shed) /
                         static_cast<double>(D.Requests)
                   : 0;
  P.Compiles = D.Compiles;
  P.DedupeHits = D.DedupeHits;
  P.DedupeHitRate =
      P.Requests > 0 ? static_cast<double>(D.DedupeHits) /
                           static_cast<double>(P.Requests)
                     : 0;
  return P;
}

void writeJson(const char *Path, const ServerOptions &Opts,
               const std::vector<PhaseResult> &Phases) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "request_storm: cannot write %s\n", Path);
    return;
  }
  std::fprintf(F, "{\n  \"schema\": \"service-v1\",\n");
  std::fprintf(F, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(F,
               "  \"daemon\": {\"max_inflight\": %d, \"queue_depth\": %d, "
               "\"max_threads\": %d, \"retry_after_ms\": %lld},\n",
               Opts.Workers, Opts.QueueDepth, Opts.MaxThreads,
               static_cast<long long>(Opts.RetryAfterMs));
  std::fprintf(F, "  \"phases\": [\n");
  for (size_t I = 0; I < Phases.size(); ++I) {
    const PhaseResult &P = Phases[I];
    std::fprintf(
        F,
        "    {\"phase\": \"%s\", \"requests\": %d, \"ok\": %d, "
        "\"failed\": %d,\n"
        "     \"elapsed_ms\": %.1f, \"throughput_rps\": %.1f, "
        "\"p50_ms\": %.3f, \"p99_ms\": %.3f,\n"
        "     \"shed\": %lld, \"shed_rate\": %.4f, \"compiles\": %lld, "
        "\"dedupe_hits\": %lld, \"dedupe_hit_rate\": %.4f}%s\n",
        P.Name.c_str(), P.Requests, P.Ok, P.Failed, P.ElapsedMs,
        P.ThroughputRps, P.P50Ms, P.P99Ms, static_cast<long long>(P.Shed),
        P.ShedRate, static_cast<long long>(P.Compiles),
        static_cast<long long>(P.DedupeHits), P.DedupeHitRate,
        I + 1 < Phases.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("request_storm: wrote %s\n", Path);
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  const char *JsonPath = "BENCH_service.json";
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--quick") == 0)
      Quick = true;
    else if (std::strcmp(argv[I], "--json") == 0 && I + 1 < argc)
      JsonPath = argv[++I];
    else {
      std::fprintf(stderr, "usage: request_storm [--quick] [--json PATH]\n");
      return 2;
    }
  }

  // Clients exercise the real retry policy; keep the backoff snappy so
  // the overload phase converges quickly.
  ::setenv("LIFT_RETRY_ATTEMPTS", "64", 1);
  ::setenv("LIFT_RETRY_BASE_US", "500", 1);

  int Fails = 0;
  std::vector<PhaseResult> Phases;
  ServerOptions FitsOpts;

  char SockBuf[] = "/tmp/lift-storm-XXXXXX";
  if (!::mkdtemp(SockBuf)) {
    std::fprintf(stderr, "request_storm: mkdtemp failed\n");
    return 2;
  }
  std::string Dir = SockBuf;

  {
    // Fits-phase daemon: the storm's concurrency (8 clients) is within
    // workers + queue depth, so not one request may be shed.
    ServerOptions Opts;
    Opts.SocketPath = Dir + "/fits.sock";
    Opts.Workers = 4;
    Opts.QueueDepth = 64;
    Opts.RetryAfterMs = 2;
    FitsOpts = Opts;
    Server S(Opts);
    std::string Err;
    if (!S.start(Err)) {
      std::fprintf(stderr, "request_storm: %s\n", Err.c_str());
      return 2;
    }
    ClientOptions C;
    C.SocketPath = Opts.SocketPath;
    C.TimeoutMs = 60000;

    PhaseResult Warm = storm("warm", S, C, 1, NumVariants);
    Phases.push_back(Warm);
    if (Warm.Compiles != NumCompileKeys) {
      std::fprintf(stderr,
                   "request_storm: FAIL warm phase compiled %lld keys, "
                   "expected %d\n",
                   static_cast<long long>(Warm.Compiles), NumCompileKeys);
      ++Fails;
    }

    PhaseResult Fits =
        storm("fits", S, C, 8, Quick ? 25 : 250);
    Phases.push_back(Fits);
    if (Fits.Shed != 0) {
      std::fprintf(stderr,
                   "request_storm: FAIL fits phase shed %lld requests "
                   "inside capacity\n",
                   static_cast<long long>(Fits.Shed));
      ++Fails;
    }
    if (Fits.Compiles != 0) {
      std::fprintf(stderr,
                   "request_storm: FAIL fits phase recompiled %lld times; "
                   "cache hits must answer without recompiling\n",
                   static_cast<long long>(Fits.Compiles));
      ++Fails;
    }
    if (Fits.DedupeHits != Fits.Requests) {
      std::fprintf(stderr,
                   "request_storm: FAIL fits phase dedupe hits %lld != "
                   "requests %d\n",
                   static_cast<long long>(Fits.DedupeHits), Fits.Requests);
      ++Fails;
    }
    if (Fits.Failed != 0) {
      std::fprintf(stderr, "request_storm: FAIL fits phase %d requests "
                           "failed\n",
                   Fits.Failed);
      ++Fails;
    }
    S.requestShutdown();
    S.wait();
  }

  {
    // Overload-phase daemon: one worker, zero queue, 16 clients. Shedding
    // is the designed behavior; the retry policy must still land every
    // request eventually.
    ServerOptions Opts;
    Opts.SocketPath = Dir + "/overload.sock";
    Opts.Workers = 1;
    Opts.QueueDepth = 0;
    Opts.RetryAfterMs = 1;
    Server S(Opts);
    std::string Err;
    if (!S.start(Err)) {
      std::fprintf(stderr, "request_storm: %s\n", Err.c_str());
      return 2;
    }
    ClientOptions C;
    C.SocketPath = Opts.SocketPath;
    C.TimeoutMs = 60000;

    storm("overload-warm", S, C, 1, NumVariants); // compile outside the storm
    PhaseResult Over =
        storm("overload", S, C, 16, Quick ? 5 : 40);
    Phases.push_back(Over);
    if (Over.Shed == 0) {
      std::fprintf(stderr,
                   "request_storm: FAIL overload phase shed nothing with "
                   "16 clients against capacity 1\n");
      ++Fails;
    }
    if (Over.Failed != 0) {
      std::fprintf(stderr,
                   "request_storm: FAIL overload phase lost %d requests "
                   "(retry should absorb shedding)\n",
                   Over.Failed);
      ++Fails;
    }
    S.requestShutdown();
    S.wait();
  }

  writeJson(JsonPath, FitsOpts, Phases);
  for (const PhaseResult &P : Phases)
    std::printf("  %-9s %5d req  %8.1f req/s  p50 %7.3f ms  p99 %7.3f ms  "
                "shed %.1f%%  dedupe %.1f%%\n",
                P.Name.c_str(), P.Requests, P.ThroughputRps, P.P50Ms, P.P99Ms,
                100 * P.ShedRate, 100 * P.DedupeHitRate);

  std::string Cleanup = "rm -rf '" + Dir + "'";
  if (std::system(Cleanup.c_str()) != 0) {
  }
  if (Fails) {
    std::fprintf(stderr, "request_storm: %d invariant(s) violated\n", Fails);
    return 1;
  }
  std::printf("request_storm: all invariants held\n");
  return 0;
}
