//===- Benchmark.cpp - Benchmark harness runner -------------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "suite/Benchmark.h"

#include "cparse/CParser.h"
#include "native/Native.h"
#include "ocl/MemGuard.h"
#include "support/Error.h"

#include <cmath>
#include <unordered_map>

using namespace lift;
using namespace lift::bench;

ocl::Buffer BufferInit::materialize() const {
  switch (K) {
  case F32:
    return ocl::Buffer::ofFloats(F);
  case I32:
    return ocl::Buffer::ofInts(I);
  case V2:
    return ocl::Buffer::ofVectors(F, 2);
  case V4:
    return ocl::Buffer::ofVectors(F, 4);
  case Zero:
    return ocl::Buffer::zeros(Count);
  }
  fatalError("unhandled buffer init kind");
}

const char *bench::optConfigName(OptConfig C) {
  switch (C) {
  case OptConfig::None:
    return "None";
  case OptConfig::BarrierCfs:
    return "BE+CFS";
  case OptConfig::Full:
    return "BE+CFS+AAS";
  }
  return "?";
}

namespace {

codegen::CompilerOptions optionsFor(OptConfig C, const Stage &S) {
  codegen::CompilerOptions O;
  O.GlobalSize = S.Global;
  O.LocalSize = S.Local;
  switch (C) {
  case OptConfig::None:
    O.BarrierElimination = false;
    O.ControlFlowSimplification = false;
    O.ArrayAccessSimplification = false;
    break;
  case OptConfig::BarrierCfs:
    O.ArrayAccessSimplification = false;
    break;
  case OptConfig::Full:
    break;
  }
  return O;
}

double validate(const std::vector<float> &Got,
                const std::vector<float> &Expected) {
  if (Got.size() != Expected.size())
    return 1e30;
  double MaxErr = 0;
  for (size_t I = 0; I != Got.size(); ++I) {
    double Scale =
        std::fmax(1.0, std::fabs(static_cast<double>(Expected[I])));
    MaxErr = std::fmax(MaxErr,
                       std::fabs(static_cast<double>(Got[I]) -
                                 static_cast<double>(Expected[I])) /
                           Scale);
  }
  return MaxErr;
}

Outcome runStages(const BenchmarkCase &Case, const std::vector<Stage> &Stages,
                  bool IsLift, OptConfig Config, const RunOptions &Run) {
  std::vector<ocl::Buffer> Bufs;
  Bufs.reserve(Case.WorkingBuffers.size());
  for (const BufferInit &B : Case.WorkingBuffers)
    Bufs.push_back(B.materialize());

  Outcome Out;
  for (const Stage &S : Stages) {
    codegen::CompiledKernel K;
    if (IsLift) {
      codegen::CompilerOptions O = optionsFor(Config, S);
      O.VerifyEach = Run.VerifyEach;
      K = codegen::compile(S.Program, O);
    } else {
      cparse::ParseContext PC;
      K = ocl::wrapModule(cparse::parseModule(S.ReferenceSource, PC));
    }
    Out.KernelSources += IsLift ? K.Source : S.ReferenceSource;

    std::vector<ocl::Buffer *> Args;
    for (size_t Idx : S.Buffers)
      Args.push_back(&Bufs[Idx]);

    ocl::LaunchConfig Cfg;
    Cfg.Global = S.Global;
    Cfg.Local = S.Local;
    Cfg.CheckRaces = Run.CheckRaces;
    Cfg.PerturbSchedule = Run.PerturbSchedule;
    Cfg.ScheduleSeed = Run.ScheduleSeed;
    Cfg.CheckMemory = Run.CheckMemory;
    Cfg.Threads = Run.Threads;
    Cfg.Limits = Run.Limits;
    if (Run.CheckRaces || Run.CheckMemory) {
      ocl::RaceReport StageRaces;
      ocl::GuardReport StageGuards;
      Out.Cost += ocl::launch(K, Args, S.Sizes, Cfg, StageRaces, StageGuards);
      Out.Races.Findings.insert(Out.Races.Findings.end(),
                                StageRaces.Findings.begin(),
                                StageRaces.Findings.end());
      Out.Races.IntervalsChecked += StageRaces.IntervalsChecked;
      Out.Races.AccessesRecorded += StageRaces.AccessesRecorded;
      Out.Races.Truncated |= StageRaces.Truncated;
      Out.Guards.Findings.insert(Out.Guards.Findings.end(),
                                 StageGuards.Findings.begin(),
                                 StageGuards.Findings.end());
      Out.Guards.AccessesChecked += StageGuards.AccessesChecked;
      Out.Guards.Truncated |= StageGuards.Truncated;
    } else {
      Out.Cost += ocl::launch(K, Args, S.Sizes, Cfg);
    }
  }

  Out.Output = Bufs[Case.OutputBuffer].toFlatFloats();
  Out.MaxError = validate(Out.Output, Case.Expected);
  Out.Valid = Out.MaxError < Case.Tolerance;
  return Out;
}

/// The recoverable twin of runStages: every failure — ill-typed program,
/// cancelled launch, injected fault — lands in \p Engine instead of
/// aborting the process.
Expected<Outcome> runStagesChecked(const BenchmarkCase &Case,
                                   const std::vector<Stage> &Stages,
                                   bool IsLift, OptConfig Config,
                                   const RunOptions &Run,
                                   DiagnosticEngine &Engine) {
  std::vector<ocl::Buffer> Bufs;
  Bufs.reserve(Case.WorkingBuffers.size());
  for (const BufferInit &B : Case.WorkingBuffers)
    Bufs.push_back(B.materialize());

  Outcome Out;
  std::unordered_map<std::string, bool> SeenGuardKeys;
  for (const Stage &S : Stages) {
    codegen::CompiledKernel K;
    if (IsLift) {
      codegen::CompilerOptions O = optionsFor(Config, S);
      O.VerifyEach = Run.VerifyEach;
      Expected<codegen::CompiledKernel> EK =
          codegen::compileChecked(S.Program, O, Engine);
      if (!EK)
        return {};
      K = std::move(*EK);
    } else {
      try {
        cparse::ParseContext PC;
        K = ocl::wrapModule(cparse::parseModule(S.ReferenceSource, PC));
      } catch (DiagnosticError &E) {
        if (!E.Recorded)
          Engine.report(E.Diag);
        return {};
      }
    }
    Out.KernelSources += IsLift ? K.Source : S.ReferenceSource;

    std::vector<ocl::Buffer *> Args;
    for (size_t Idx : S.Buffers)
      Args.push_back(&Bufs[Idx]);

    ocl::LaunchConfig Cfg;
    Cfg.Global = S.Global;
    Cfg.Local = S.Local;
    Cfg.CheckRaces = Run.CheckRaces;
    Cfg.PerturbSchedule = Run.PerturbSchedule;
    Cfg.ScheduleSeed = Run.ScheduleSeed;
    Cfg.CheckMemory = Run.CheckMemory;
    Cfg.Threads = Run.Threads;
    Cfg.Limits = Run.Limits;
    Expected<ocl::LaunchResult> R =
        ocl::launchChecked(K, Args, S.Sizes, Cfg, Engine);
    if (!R)
      return {};
    Out.Cost += R->Cost;
    Out.Races.mergeFrom(R->Races, Run.Limits.MaxFindings);
    mergeGuardReport(Out.Guards, R->Guards, Run.Limits.MaxFindings,
                     SeenGuardKeys);
  }

  Out.Output = Bufs[Case.OutputBuffer].toFlatFloats();
  Out.MaxError = validate(Out.Output, Case.Expected);
  Out.Valid = Out.MaxError < Case.Tolerance;
  return Out;
}

/// The native twin of runStagesChecked: same compilation pipeline and
/// buffer binding, but each stage executes through the native
/// C++/OpenMP backend instead of the simulator.
Expected<NativeOutcome> runStagesNativeChecked(const BenchmarkCase &Case,
                                               const std::vector<Stage> &Stages,
                                               bool IsLift, OptConfig Config,
                                               const RunOptions &Run,
                                               DiagnosticEngine &Engine) {
  std::vector<ocl::Buffer> Bufs;
  Bufs.reserve(Case.WorkingBuffers.size());
  for (const BufferInit &B : Case.WorkingBuffers)
    Bufs.push_back(B.materialize());

  NativeOutcome Out;
  for (const Stage &S : Stages) {
    codegen::CompiledKernel K;
    if (IsLift) {
      codegen::CompilerOptions O = optionsFor(Config, S);
      O.VerifyEach = Run.VerifyEach;
      Expected<codegen::CompiledKernel> EK =
          codegen::compileChecked(S.Program, O, Engine);
      if (!EK)
        return {};
      K = std::move(*EK);
    } else {
      try {
        cparse::ParseContext PC;
        K = ocl::wrapModule(cparse::parseModule(S.ReferenceSource, PC));
      } catch (DiagnosticError &E) {
        if (!E.Recorded)
          Engine.report(E.Diag);
        return {};
      }
    }

    std::vector<ocl::Buffer *> Args;
    for (size_t Idx : S.Buffers)
      Args.push_back(&Bufs[Idx]);

    ocl::LaunchConfig Cfg;
    Cfg.Global = S.Global;
    Cfg.Local = S.Local;
    Cfg.Threads = Run.Threads;
    Cfg.Limits = Run.Limits;
    Expected<native::NativeLaunchResult> R = native::launchNativeChecked(
        K, Args, S.Sizes, Cfg, Engine, Run.NativeMode);
    if (!R)
      return {};
    Out.WallMs += R->WallMs;
    Out.CompileMs += R->CompileMs;
    Out.MarshalMs += R->MarshalMs;
    Out.AllCacheHits = Out.AllCacheHits && R->CacheHit;
  }

  Out.Output = Bufs[Case.OutputBuffer].toFlatFloats();
  Out.MaxError = validate(Out.Output, Case.Expected);
  Out.Valid = Out.MaxError < Case.Tolerance;
  return Out;
}

} // namespace

Outcome bench::runLift(const BenchmarkCase &Case, OptConfig Config,
                       const RunOptions &Run) {
  return runStages(Case, Case.LiftStages, /*IsLift=*/true, Config, Run);
}

Outcome bench::runReference(const BenchmarkCase &Case, const RunOptions &Run) {
  return runStages(Case, Case.ReferenceStages, /*IsLift=*/false,
                   OptConfig::Full, Run);
}

Expected<Outcome> bench::runLiftChecked(const BenchmarkCase &Case,
                                        OptConfig Config,
                                        const RunOptions &Run,
                                        DiagnosticEngine &Engine) {
  return runStagesChecked(Case, Case.LiftStages, /*IsLift=*/true, Config,
                          Run, Engine);
}

Expected<Outcome> bench::runReferenceChecked(const BenchmarkCase &Case,
                                             const RunOptions &Run,
                                             DiagnosticEngine &Engine) {
  return runStagesChecked(Case, Case.ReferenceStages, /*IsLift=*/false,
                          OptConfig::Full, Run, Engine);
}

Expected<NativeOutcome>
bench::runLiftNativeChecked(const BenchmarkCase &Case, OptConfig Config,
                            const RunOptions &Run, DiagnosticEngine &Engine) {
  return runStagesNativeChecked(Case, Case.LiftStages, /*IsLift=*/true,
                                Config, Run, Engine);
}

Expected<NativeOutcome>
bench::runReferenceNativeChecked(const BenchmarkCase &Case,
                                 const RunOptions &Run,
                                 DiagnosticEngine &Engine) {
  return runStagesNativeChecked(Case, Case.ReferenceStages, /*IsLift=*/false,
                                OptConfig::Full, Run, Engine);
}

Expected<Outcome> bench::runLiftNativeOrSimChecked(const BenchmarkCase &Case,
                                                   OptConfig Config,
                                                   const RunOptions &Run,
                                                   DiagnosticEngine &Engine,
                                                   bool *UsedFallback) {
  // The native attempt records its failures into a scratch engine: a
  // degraded run must leave only warnings behind, never error-severity
  // diagnostics for a failure it recovered from.
  DiagnosticEngine Scratch;
  if (Expected<NativeOutcome> N =
          runLiftNativeChecked(Case, Config, Run, Scratch)) {
    if (UsedFallback)
      *UsedFallback = false;
    Outcome Out;
    Out.MaxError = N->MaxError;
    Out.Valid = N->Valid;
    Out.Output = N->Output;
    return Out;
  }
  std::string Detail = "no diagnostic";
  for (const Diagnostic &D : Scratch.diagnostics())
    if (D.Severity == DiagSeverity::Error) {
      Detail = diagCodeId(D.Code) + ": " + D.Message;
      break;
    }
  Engine.warning(DiagCode::NativeFallback,
                 DiagLocation::inContext(Case.Name),
                 "native backend unavailable (" + Detail +
                     "); degrading to the simulator");
  if (UsedFallback)
    *UsedFallback = true;
  return runLiftChecked(Case, Config, Run, Engine);
}

std::vector<float> bench::randomFloats(size_t N, uint64_t Seed) {
  std::vector<float> R(N);
  uint64_t S = Seed * 6364136223846793005ULL + 1442695040888963407ULL;
  for (size_t I = 0; I != N; ++I) {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    R[I] = static_cast<float>(static_cast<int64_t>(S % 2000) - 1000) / 1000.f;
  }
  return R;
}

std::vector<BenchmarkCase> bench::allBenchmarks(bool Large) {
  std::vector<BenchmarkCase> All;
  All.push_back(makeNBodyNvidia(Large));
  All.push_back(makeNBodyAmd(Large));
  All.push_back(makeMD(Large));
  All.push_back(makeKMeans(Large));
  All.push_back(makeNN(Large));
  All.push_back(makeMriQ(Large));
  All.push_back(makeConvolution(Large));
  All.push_back(makeAtax(Large));
  All.push_back(makeGemv(Large));
  All.push_back(makeGesummv(Large));
  All.push_back(makeMM(Large));
  All.push_back(makeMMAmd(Large));
  return All;
}
