//===- Benchmark.h - The paper's benchmark suite ----------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark suite of Table 1 / Figure 8: each benchmark provides a
/// low-level Lift IL program (mimicking the optimizations of the original
/// hand-written kernel), a hand-written OpenCL reference kernel (run on
/// the same simulated device), host input data, and a host-side golden
/// reference for validation. Multi-kernel benchmarks (ATAX) have several
/// stages whose costs are summed, as in the paper (section 6).
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_BENCH_BENCHMARK_H
#define LIFT_BENCH_BENCHMARK_H

#include "codegen/Compiler.h"
#include "ir/IR.h"
#include "native/NativePrinter.h"
#include "ocl/Runtime.h"

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lift {
namespace bench {

/// Initial contents of one working buffer.
struct BufferInit {
  enum Kind { F32, I32, V2, V4, Zero } K = Zero;
  std::vector<float> F; // F32 / V2 / V4 (flat)
  std::vector<int> I;   // I32
  size_t Count = 0;     // Zero: number of zero floats

  static BufferInit floats(std::vector<float> D) {
    BufferInit B;
    B.K = F32;
    B.F = std::move(D);
    return B;
  }
  static BufferInit ints(std::vector<int> D) {
    BufferInit B;
    B.K = I32;
    B.I = std::move(D);
    return B;
  }
  static BufferInit vec2(std::vector<float> Flat) {
    BufferInit B;
    B.K = V2;
    B.F = std::move(Flat);
    return B;
  }
  static BufferInit vec4(std::vector<float> Flat) {
    BufferInit B;
    B.K = V4;
    B.F = std::move(Flat);
    return B;
  }
  static BufferInit zeros(size_t N) {
    BufferInit B;
    B.K = Zero;
    B.Count = N;
    return B;
  }

  ocl::Buffer materialize() const;
};

/// One kernel launch: either a Lift program (compiled with the harness's
/// optimization flags) or a hand-written reference kernel source.
struct Stage {
  ir::LambdaPtr Program;        // set for Lift stages
  std::string ReferenceSource;  // set for reference stages
  std::array<int64_t, 3> Global = {1, 1, 1};
  std::array<int64_t, 3> Local = {1, 1, 1};
  std::vector<size_t> Buffers;  // working-buffer indices, in binding order
  std::map<std::string, int64_t> Sizes;
};

struct BenchmarkCase {
  std::string Name;
  std::string SizeLabel; // "Small" or "Large"

  std::vector<BufferInit> WorkingBuffers;
  size_t OutputBuffer = 0;

  std::vector<Stage> LiftStages;
  std::vector<Stage> ReferenceStages;

  /// Host-computed golden output (flattened floats).
  std::vector<float> Expected;
  double Tolerance = 1e-2;

  /// The portable high-level IL formulation (Table 1 code size); may be
  /// null when it coincides with the low-level program.
  ir::LambdaPtr HighLevelProgram;
};

/// Result of one full benchmark execution (all stages).
struct Outcome {
  ocl::CostReport Cost;
  double MaxError = 0;
  bool Valid = false;
  std::string KernelSources; // concatenated, for code-size metrics
  /// Race/divergence findings, accumulated over all stages (empty unless
  /// the run was made with RunOptions::CheckRaces).
  ocl::RaceReport Races;
  /// Guarded-memory findings, accumulated over all stages (empty unless
  /// the run was made with RunOptions::CheckMemory).
  ocl::GuardReport Guards;
  /// The output buffer after the final stage, flattened — lets callers
  /// compare runs for bit-identical results (tests/ParallelRuntimeTest).
  std::vector<float> Output;
};

/// The three optimization configurations of Figure 8.
enum class OptConfig { None, BarrierCfs, Full };

const char *optConfigName(OptConfig C);

/// Dynamic-checking knobs for a benchmark run (see ocl/RaceDetector.h).
struct RunOptions {
  bool CheckRaces = false;
  bool PerturbSchedule = false;
  uint64_t ScheduleSeed = 1;
  /// Bounds- and initialization-check every element access (see
  /// ocl/MemGuard.h).
  bool CheckMemory = false;
  /// Run the IR verifier between compilation stages (passes/Verify.h).
  bool VerifyEach = false;
  /// Worker threads for the simulated runtime's work-group loop. 0 = auto
  /// (LIFT_THREADS, else hardware concurrency); 1 = serial.
  int Threads = 0;
  /// Execution bounds applied to every stage launch: step budget,
  /// wall-clock deadline, allocation cap (see ocl::ExecLimits and
  /// docs/RELIABILITY.md). Default: unbounded.
  ocl::ExecLimits Limits;
  /// Numeric model for native-backend runs (ignored by the simulator
  /// entry points): Exact is bit-identical to the simulator, Fast uses
  /// natively-typed scalars and -O3 -march=native.
  native::NativeMode NativeMode = native::NativeMode::Exact;
};

/// Runs the Lift stages compiled under \p Config and validates.
Outcome runLift(const BenchmarkCase &Case, OptConfig Config,
                const RunOptions &Run = {});

/// Runs the hand-written reference stages and validates.
Outcome runReference(const BenchmarkCase &Case, const RunOptions &Run = {});

/// Like runLift, but never aborts the process: compilation and launch
/// failures — including tripped execution limits (E0510–E0512) and
/// injected faults (E0513) — are recorded into \p Engine and returned as
/// failure. The robustness test tiers drive every benchmark through this
/// entry point.
Expected<Outcome> runLiftChecked(const BenchmarkCase &Case, OptConfig Config,
                                 const RunOptions &Run,
                                 DiagnosticEngine &Engine);

/// The checked twin of runReference.
Expected<Outcome> runReferenceChecked(const BenchmarkCase &Case,
                                      const RunOptions &Run,
                                      DiagnosticEngine &Engine);

/// Result of running a benchmark on the native C++/OpenMP backend
/// (src/native): real wall-clock instead of the simulator's cost model.
struct NativeOutcome {
  /// Kernel wall-clock summed over all stages, in milliseconds
  /// (excludes compilation and marshalling).
  double WallMs = 0;
  /// System-compiler time summed over all stages; 0 when every stage hit
  /// the shared-object cache.
  double CompileMs = 0;
  /// Marshalling + readback time summed over all stages; drops on
  /// cache-hit launches (persistent arenas, skipped read-only copies).
  double MarshalMs = 0;
  bool AllCacheHits = true;
  double MaxError = 0;
  bool Valid = false;
  /// The output buffer after the final stage, flattened — byte-comparable
  /// against Outcome::Output for the native-vs-simulator differential
  /// tier (bit-identical for default lowerings).
  std::vector<float> Output;
};

/// Runs the Lift stages on the native backend (launchNativeChecked) and
/// validates against the host golden reference. Fails cleanly into
/// \p Engine when no system toolchain is available (E0603) or a stage is
/// outside the native subset (E0607).
Expected<NativeOutcome> runLiftNativeChecked(const BenchmarkCase &Case,
                                             OptConfig Config,
                                             const RunOptions &Run,
                                             DiagnosticEngine &Engine);

/// The native twin of runReferenceChecked.
Expected<NativeOutcome> runReferenceNativeChecked(const BenchmarkCase &Case,
                                                  const RunOptions &Run,
                                                  DiagnosticEngine &Engine);

/// Graceful-degradation entry point: tries the native backend first and,
/// when it fails for any reason (toolchain missing, compile/load/symbol
/// failure after the retry policy is exhausted, out-of-subset construct,
/// injected fault), demotes the failure to an E0610 warning in \p Engine
/// and re-runs the same stages on the simulator — so callers always get a
/// result when the program itself is sound, and the simulator result is
/// bit-identical to a simulator-only run. On native success the outcome
/// carries the native output with an empty simulator cost report.
/// \p UsedFallback (optional) reports which backend produced the result.
Expected<Outcome> runLiftNativeOrSimChecked(const BenchmarkCase &Case,
                                            OptConfig Config,
                                            const RunOptions &Run,
                                            DiagnosticEngine &Engine,
                                            bool *UsedFallback = nullptr);

//===----------------------------------------------------------------------===//
// Benchmark factories (one per Table 1 row)
//===----------------------------------------------------------------------===//

BenchmarkCase makeNBodyNvidia(bool Large);
BenchmarkCase makeNBodyAmd(bool Large);
BenchmarkCase makeMD(bool Large);
BenchmarkCase makeKMeans(bool Large);
BenchmarkCase makeNN(bool Large);
BenchmarkCase makeMriQ(bool Large);
BenchmarkCase makeConvolution(bool Large);
BenchmarkCase makeAtax(bool Large);
BenchmarkCase makeGemv(bool Large);
BenchmarkCase makeGesummv(bool Large);
BenchmarkCase makeMM(bool Large);
BenchmarkCase makeMMAmd(bool Large);

/// All benchmarks at the given size.
std::vector<BenchmarkCase> allBenchmarks(bool Large);

/// Deterministic input data.
std::vector<float> randomFloats(size_t N, uint64_t Seed);

} // namespace bench
} // namespace lift

#endif // LIFT_BENCH_BENCHMARK_H
