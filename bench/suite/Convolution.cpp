//===- Convolution.cpp - Tiled 2D stencil benchmark ---------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// NVIDIA-SDK-style tiled 2D convolution (3x3). The rows are banded with
/// an overlapping slide; each work group cooperatively copies its band
/// into local memory; the 2D windows are built from the local copy by the
/// slide/transpose composition of section 7.2 (overlapping tiles "created
/// using the slide pattern", "2D tiles by a clever composition of slide
/// with map and transposition"); each thread then computes one output row
/// of the band.
///
//===----------------------------------------------------------------------===//

#include "suite/Benchmark.h"

#include "ir/DSL.h"
#include "ir/Prelude.h"

#include <cmath>

using namespace lift;
using namespace lift::bench;
using namespace lift::ir;
using namespace lift::ir::dsl;

namespace {

std::vector<float> hostConv(const std::vector<float> &In,
                            const std::vector<float> &W, size_t R,
                            size_t C) {
  std::vector<float> Out((R - 2) * (C - 2), 0.f);
  for (size_t I = 0; I + 2 < R; ++I)
    for (size_t J = 0; J + 2 < C; ++J) {
      double S = 0;
      for (size_t A = 0; A != 3; ++A)
        for (size_t B = 0; B != 3; ++B)
          S += static_cast<double>(In[(I + A) * C + J + B]) * W[A * 3 + B];
      Out[I * (C - 2) + J] = static_cast<float>(S);
    }
  return Out;
}

} // namespace

BenchmarkCase bench::makeConvolution(bool Large) {
  const int64_t R = Large ? 258 : 130; // rows (output rows R-2)
  const int64_t C = Large ? 130 : 66;  // cols (output cols C-2)
  const int64_t TB = 16;               // band height = threads per group

  ParamPtr In = param("in", array2D(float32(), arith::cst(R),
                                    arith::cst(C)));
  ParamPtr Wts = param("weights", arrayOf(float32(), arith::cst(9)));

  FunDeclPtr MAdd = prelude::multAndSumUpFun();
  FunDeclPtr IdF = prelude::idFloatFun();

  ParamPtr Band = param("band");

  // Cooperative copy of one (TB+2) x C band into local memory: the TB
  // threads stride over the TB+2 rows.
  ExprPtr BandCopy = pipe(ExprPtr(Band), toLocal(mapLcl(0, mapSeq(IdF))));

  ParamPtr LocalBand = param("localBand");

  // slide2d: map(slide) then slide then map(transpose) turns the local
  // band [TB+2][C] into [TB][C-2] tiles of 3x3 windows.
  ExprPtr Windows =
      pipe(ExprPtr(LocalBand), mapSeq(slide(3, 1)), slide(3, 1),
           mapSeq(transpose()));

  ExprPtr ComputeBand = pipe(
      Windows, mapLcl(0, fun([&](ExprPtr WinRow) {
        return pipe(WinRow, mapSeq(fun([&](ExprPtr Win) {
                      return pipe(
                          call(reduceSeq(MAdd),
                               {litFloat(0.0f),
                                call(zip(), {pipe(Win, join()), Wts})}),
                          toGlobal(mapSeq(IdF)));
                    })),
                    join());
      })));

  LambdaPtr PerBand = lambda(
      {Band}, call(lambda({LocalBand}, ComputeBand), {BandCopy}));

  LambdaPtr Prog = lambda(
      {In, Wts}, pipe(ExprPtr(In), slide(TB + 2, TB), mapWrg(0, PerBand),
                      join()));

  BenchmarkCase Case;
  Case.Name = "Convolution";
  Case.SizeLabel = Large ? "Large" : "Small";

  std::vector<float> InData = randomFloats(static_cast<size_t>(R * C), 71);
  std::vector<float> WData = {0.05f, 0.1f, 0.05f, 0.1f, 0.4f,
                              0.1f,  0.05f, 0.1f, 0.05f};

  Case.WorkingBuffers.push_back(BufferInit::floats(InData));
  Case.WorkingBuffers.push_back(BufferInit::floats(WData));
  Case.WorkingBuffers.push_back(
      BufferInit::zeros(static_cast<size_t>((R - 2) * (C - 2))));
  Case.OutputBuffer = 2;
  Case.Expected = hostConv(InData, WData, static_cast<size_t>(R),
                           static_cast<size_t>(C));
  Case.Tolerance = 1e-4;

  Stage S;
  S.Program = Prog;
  S.Global = {(R - 2), 1, 1}; // (R-2)/TB groups of TB threads
  S.Local = {TB, 1, 1};
  S.Buffers = {0, 1, 2};
  S.Sizes = {{"R", R}, {"C", C}};
  Case.LiftStages = {S};

  Stage Ref = S;
  Ref.Program = nullptr;
  Ref.ReferenceSource = R"(
kernel void conv(global float *in, global float *weights, global float *out,
                 int R, int C) {
  local float band[4096];
  int l = get_local_id(0);
  int wg = get_group_id(0);
  int TB = get_local_size(0);
  int row0 = wg * TB;
  int bandRows = TB + 2;
  int total = bandRows * C;
  for (int t = l; t < total; t += TB) {
    band[t] = in[row0 * C + t];
  }
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int j = 0; j + 2 < C; j++) {
    float s = 0.0f;
    for (int a = 0; a < 3; a++) {
      for (int b = 0; b < 3; b++) {
        s += band[(l + a) * C + j + b] * weights[a * 3 + b];
      }
    }
    out[(row0 + l) * (C - 2) + j] = s;
  }
}
)";
  Case.ReferenceStages = {Ref};
  return Case;
}
