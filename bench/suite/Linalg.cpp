//===- Linalg.cpp - ATAX, GEMV, GESUMMV benchmarks ----------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CLBlast-style linear algebra benchmarks of Table 1. GEMV encodes
/// the coalesced loads of the reference via a stride gather, work-group
/// level local reduction and an iterate tree (section 7.2); GESUMMV fuses
/// two matrix-vector reductions; ATAX chains two kernels (their costs are
/// summed, section 6).
///
//===----------------------------------------------------------------------===//

#include "suite/Benchmark.h"

#include "ir/DSL.h"
#include "ir/Prelude.h"

#include <cmath>

using namespace lift;
using namespace lift::bench;
using namespace lift::ir;
using namespace lift::ir::dsl;

namespace {

std::vector<float> hostGemv(const std::vector<float> &A,
                            const std::vector<float> &X, size_t Rows,
                            size_t Cols) {
  std::vector<float> Y(Rows, 0.f);
  for (size_t I = 0; I != Rows; ++I) {
    double S = 0;
    for (size_t J = 0; J != Cols; ++J)
      S += static_cast<double>(A[I * Cols + J]) * X[J];
    Y[I] = static_cast<float>(S);
  }
  return Y;
}

std::vector<float> hostGemvT(const std::vector<float> &A,
                             const std::vector<float> &X, size_t Rows,
                             size_t Cols) {
  std::vector<float> Y(Cols, 0.f);
  for (size_t J = 0; J != Cols; ++J) {
    double S = 0;
    for (size_t I = 0; I != Rows; ++I)
      S += static_cast<double>(A[I * Cols + J]) * X[I];
    Y[J] = static_cast<float>(S);
  }
  return Y;
}

/// Simple one-thread-per-row GEMV program (used by ATAX stage 1).
LambdaPtr simpleGemvProgram(int64_t Rows, int64_t Cols) {
  ParamPtr A = param("A", array2D(float32(), arith::cst(Rows),
                                  arith::cst(Cols)));
  ParamPtr X = param("x", arrayOf(float32(), arith::cst(Cols)));
  return lambda(
      {A, X}, pipe(ExprPtr(A), mapGlb(fun([&](ExprPtr Row) {
                return pipe(call(reduceSeq(prelude::multAndSumUpFun()),
                                 {litFloat(0.0f), call(zip(), {Row, X})}),
                            toGlobal(mapSeq(prelude::idFloatFun())));
              })),
              join()));
}

/// Transposed GEMV (ATAX stage 2): y = A^T * t via a transpose view.
LambdaPtr transposedGemvProgram(int64_t Rows, int64_t Cols) {
  ParamPtr A = param("A", array2D(float32(), arith::cst(Rows),
                                  arith::cst(Cols)));
  ParamPtr T = param("t", arrayOf(float32(), arith::cst(Rows)));
  return lambda(
      {A, T}, pipe(ExprPtr(A), transpose(), mapGlb(fun([&](ExprPtr Col) {
                return pipe(call(reduceSeq(prelude::multAndSumUpFun()),
                                 {litFloat(0.0f), call(zip(), {Col, T})}),
                            toGlobal(mapSeq(prelude::idFloatFun())));
              })),
              join()));
}

} // namespace

//===----------------------------------------------------------------------===//
// GEMV (CLBlast style): coalesced loads + work-group reduction tree
//===----------------------------------------------------------------------===//

BenchmarkCase bench::makeGemv(bool Large) {
  const int64_t Rows = Large ? 256 : 128;
  const int64_t Cols = Large ? 256 : 128;
  const int64_t L = 64;

  ParamPtr A = param("A", array2D(float32(), arith::cst(Rows),
                                  arith::cst(Cols)));
  ParamPtr X = param("x", arrayOf(float32(), arith::cst(Cols)));

  FunDeclPtr MAdd = prelude::multAndSumUpFun();
  FunDeclPtr Add = prelude::addFun();
  FunDeclPtr IdF = prelude::idFloatFun();
  const int64_t Log2L = 6; // log2(64)

  // One work group per row. Thread t reduces the strided elements
  // t, t+L, t+2L, ... (coalesced global loads, encoded with a gather as
  // in section 7.2), then an iterate tree combines the partial sums.
  LambdaPtr Prog = lambda(
      {A, X},
      pipe(ExprPtr(A), mapWrg(fun([&](ExprPtr Row) {
             return pipe(
                 call(zip(), {Row, X}),
                 gather(strideIndex(arith::cst(Cols / L))), split(Cols / L),
                 mapLcl(fun([&](ExprPtr Part) {
                   return pipe(call(reduceSeq(MAdd),
                                    {litFloat(0.0f), Part}),
                               toLocal(mapSeq(IdF)));
                 })),
                 join(), iterate(Log2L, fun([&](ExprPtr Arr) {
                           return pipe(
                               Arr, split(2), mapLcl(fun([&](ExprPtr Two) {
                                 return pipe(call(reduceSeq(Add),
                                                  {litFloat(0.0f), Two}),
                                             toLocal(mapSeq(IdF)));
                               })),
                               join());
                         })),
                 split(1), toGlobal(mapLcl(mapSeq(IdF))), join());
           })),
           join()));

  BenchmarkCase Case;
  Case.Name = "GEMV";
  Case.SizeLabel = Large ? "Large" : "Small";

  std::vector<float> AData =
      randomFloats(static_cast<size_t>(Rows * Cols), 31);
  std::vector<float> XData = randomFloats(static_cast<size_t>(Cols), 37);

  Case.WorkingBuffers.push_back(BufferInit::floats(AData));
  Case.WorkingBuffers.push_back(BufferInit::floats(XData));
  Case.WorkingBuffers.push_back(
      BufferInit::zeros(static_cast<size_t>(Rows)));
  Case.OutputBuffer = 2;
  Case.Expected = hostGemv(AData, XData, static_cast<size_t>(Rows),
                           static_cast<size_t>(Cols));
  Case.Tolerance = 1e-3;

  Stage S;
  S.Program = Prog;
  S.Global = {Rows * L, 1, 1};
  S.Local = {L, 1, 1};
  S.Buffers = {0, 1, 2};
  S.Sizes = {{"N", Rows}, {"M", Cols}};
  Case.LiftStages = {S};

  Stage R = S;
  R.Program = nullptr;
  R.ReferenceSource = R"(
kernel void gemv(global float *A, global float *x, global float *y, int N,
                 int M) {
  local float partial[64];
  int row = get_group_id(0);
  int l = get_local_id(0);
  int L = get_local_size(0);
  float acc = 0.0f;
  for (int j = l; j < M; j += L) {
    acc += A[row * M + j] * x[j];
  }
  partial[l] = acc;
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int s = L / 2; s > 0; s = s / 2) {
    if (l < s) {
      partial[l] = partial[l] + partial[l + s];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (l == 0) {
    y[row] = partial[0];
  }
}
)";
  Case.ReferenceStages = {R};
  return Case;
}

//===----------------------------------------------------------------------===//
// GESUMMV: y = alpha * A x + beta * B x
//===----------------------------------------------------------------------===//

BenchmarkCase bench::makeGesummv(bool Large) {
  const int64_t Rows = Large ? 256 : 128;
  const int64_t Cols = Large ? 256 : 128;
  const int64_t L = 64;
  const int64_t Alpha = 3, Beta = 2;

  ParamPtr A = param("A", array2D(float32(), arith::cst(Rows),
                                  arith::cst(Cols)));
  ParamPtr B = param("B", array2D(float32(), arith::cst(Rows),
                                  arith::cst(Cols)));
  ParamPtr X = param("x", arrayOf(float32(), arith::cst(Cols)));
  ParamPtr AlphaP = param("alpha", float32());
  ParamPtr BetaP = param("beta", float32());

  FunDeclPtr Combine = userFun(
      "combine", {"ab", "alpha", "beta"},
      {tupleOf({float32(), float32()}), float32(), float32()}, float32(),
      "return alpha * ab._0 + beta * ab._1;");

  // Fused: both rows are reduced in the same thread, then combined.
  LambdaPtr Prog = lambda(
      {A, B, X, AlphaP, BetaP},
      pipe(call(zip(), {A, B}), mapGlb(fun([&](ExprPtr RowPair) {
             ExprPtr Ra =
                 call(reduceSeq(prelude::multAndSumUpFun()),
                      {litFloat(0.0f),
                       call(zip(), {call(get(0), {RowPair}), X})});
             ExprPtr Rb =
                 call(reduceSeq(prelude::multAndSumUpFun()),
                      {litFloat(0.0f),
                       call(zip(), {call(get(1), {RowPair}), X})});
             return pipe(call(zip(), {Ra, Rb}),
                         toGlobal(mapSeq(fun([&](ExprPtr Pair) {
                           return call(Combine, {Pair, AlphaP, BetaP});
                         }))));
           })),
           join()));

  BenchmarkCase Case;
  Case.Name = "GESUMMV";
  Case.SizeLabel = Large ? "Large" : "Small";

  std::vector<float> AData =
      randomFloats(static_cast<size_t>(Rows * Cols), 41);
  std::vector<float> BData =
      randomFloats(static_cast<size_t>(Rows * Cols), 43);
  std::vector<float> XData = randomFloats(static_cast<size_t>(Cols), 47);

  Case.WorkingBuffers.push_back(BufferInit::floats(AData));
  Case.WorkingBuffers.push_back(BufferInit::floats(BData));
  Case.WorkingBuffers.push_back(BufferInit::floats(XData));
  Case.WorkingBuffers.push_back(
      BufferInit::zeros(static_cast<size_t>(Rows)));
  Case.OutputBuffer = 3;

  std::vector<float> Ya = hostGemv(AData, XData, static_cast<size_t>(Rows),
                                   static_cast<size_t>(Cols));
  std::vector<float> Yb = hostGemv(BData, XData, static_cast<size_t>(Rows),
                                   static_cast<size_t>(Cols));
  std::vector<float> Expected(static_cast<size_t>(Rows));
  for (size_t I = 0; I != Expected.size(); ++I)
    Expected[I] = static_cast<float>(Alpha) * Ya[I] +
                  static_cast<float>(Beta) * Yb[I];
  Case.Expected = Expected;
  Case.Tolerance = 1e-3;

  Stage S;
  S.Program = Prog;
  S.Global = {Rows, 1, 1};
  S.Local = {L, 1, 1};
  S.Buffers = {0, 1, 2, 3};
  S.Sizes = {{"N", Rows}, {"M", Cols}, {"alpha", Alpha}, {"beta", Beta}};
  Case.LiftStages = {S};

  Stage R = S;
  R.Program = nullptr;
  R.ReferenceSource = R"(
kernel void gesummv(global float *A, global float *B, global float *x,
                    global float *y, int N, int M, int alpha, int beta) {
  int g = get_global_id(0);
  float sa = 0.0f;
  float sb = 0.0f;
  for (int j = 0; j < M; j++) {
    sa += A[g * M + j] * x[j];
    sb += B[g * M + j] * x[j];
  }
  y[g] = alpha * sa + beta * sb;
}
)";
  Case.ReferenceStages = {R};
  return Case;
}

//===----------------------------------------------------------------------===//
// ATAX: y = A^T (A x), two kernels
//===----------------------------------------------------------------------===//

BenchmarkCase bench::makeAtax(bool Large) {
  const int64_t Rows = Large ? 256 : 128;
  const int64_t Cols = Large ? 256 : 128;
  const int64_t L = 64;

  BenchmarkCase Case;
  Case.Name = "ATAX";
  Case.SizeLabel = Large ? "Large" : "Small";

  std::vector<float> AData =
      randomFloats(static_cast<size_t>(Rows * Cols), 53);
  std::vector<float> XData = randomFloats(static_cast<size_t>(Cols), 59);

  Case.WorkingBuffers.push_back(BufferInit::floats(AData));      // 0: A
  Case.WorkingBuffers.push_back(BufferInit::floats(XData));      // 1: x
  Case.WorkingBuffers.push_back(
      BufferInit::zeros(static_cast<size_t>(Rows)));             // 2: t
  Case.WorkingBuffers.push_back(
      BufferInit::zeros(static_cast<size_t>(Cols)));             // 3: y
  Case.OutputBuffer = 3;

  std::vector<float> T = hostGemv(AData, XData, static_cast<size_t>(Rows),
                                  static_cast<size_t>(Cols));
  Case.Expected = hostGemvT(AData, T, static_cast<size_t>(Rows),
                            static_cast<size_t>(Cols));
  Case.Tolerance = 1e-3;

  Stage S1;
  S1.Program = simpleGemvProgram(Rows, Cols);
  S1.Global = {Rows, 1, 1};
  S1.Local = {L, 1, 1};
  S1.Buffers = {0, 1, 2};
  S1.Sizes = {{"N", Rows}, {"M", Cols}};

  Stage S2;
  S2.Program = transposedGemvProgram(Rows, Cols);
  S2.Global = {Cols, 1, 1};
  S2.Local = {L, 1, 1};
  S2.Buffers = {0, 2, 3};
  S2.Sizes = {{"N", Rows}, {"M", Cols}};

  Case.LiftStages = {S1, S2};

  Stage R1 = S1;
  R1.Program = nullptr;
  R1.ReferenceSource = R"(
kernel void atax1(global float *A, global float *x, global float *t, int N,
                  int M) {
  int g = get_global_id(0);
  float acc = 0.0f;
  for (int j = 0; j < M; j++) {
    acc += A[g * M + j] * x[j];
  }
  t[g] = acc;
}
)";
  Stage R2 = S2;
  R2.Program = nullptr;
  R2.ReferenceSource = R"(
kernel void atax2(global float *A, global float *t, global float *y, int N,
                  int M) {
  int g = get_global_id(0);
  float acc = 0.0f;
  for (int i = 0; i < N; i++) {
    acc += A[i * M + g] * t[i];
  }
  y[g] = acc;
}
)";
  Case.ReferenceStages = {R1, R2};
  return Case;
}
