//===- MM.cpp - Tiled matrix multiplication benchmark -------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CLBlast-style tiled matrix multiplication: 2D work groups, cooperative
/// staging of the A and B tiles in local memory, one output element per
/// thread, and an untiling composition (join / map(join) / transpose) on
/// the output path — the writes of the inner threads land directly in
/// their final positions in C through inverse output views.
/// B is pre-transposed on the host, as the CLBlast kernels assume a
/// layout-friendly B.
///
//===----------------------------------------------------------------------===//

#include "suite/Benchmark.h"

#include "ir/DSL.h"
#include "ir/Prelude.h"

#include <cmath>

using namespace lift;
using namespace lift::bench;
using namespace lift::ir;
using namespace lift::ir::dsl;

namespace {

std::vector<float> hostMM(const std::vector<float> &A,
                          const std::vector<float> &B, size_t M, size_t N,
                          size_t K) {
  std::vector<float> C(M * N, 0.f);
  for (size_t I = 0; I != M; ++I)
    for (size_t J = 0; J != N; ++J) {
      double S = 0;
      for (size_t P = 0; P != K; ++P)
        S += static_cast<double>(A[I * K + P]) * B[P * N + J];
      C[I * N + J] = static_cast<float>(S);
    }
  return C;
}

} // namespace

BenchmarkCase bench::makeMM(bool Large) {
  const int64_t M = Large ? 64 : 32;
  const int64_t N = M, K = M;
  const int64_t Tm = 16, Tn = 16; // tile size = work-group size

  ParamPtr A =
      param("A", array2D(float32(), arith::cst(M), arith::cst(K)));
  ParamPtr Bt =
      param("Bt", array2D(float32(), arith::cst(N), arith::cst(K)));

  FunDeclPtr MAdd = prelude::multAndSumUpFun();
  FunDeclPtr IdF = prelude::idFloatFun();

  ParamPtr ALocal = param("aLocal");
  ParamPtr BLocal = param("bLocal");

  // Full program, built explicitly for clarity.
  ExprPtr A2 = pipe(ExprPtr(A), split(Tm));   // [M/Tm][Tm][K]
  ExprPtr B2 = pipe(ExprPtr(Bt), split(Tn));  // [N/Tn][Tn][K]

  LambdaPtr InnerWg = fun([&](ExprPtr ATile) {
    return pipe(
        B2,
        mapWrg(0, fun([&](ExprPtr BTile) {
          ExprPtr ACopy = pipe(
              ATile, toLocal(mapLcl(1, fun([&](ExprPtr Row) {
                       return pipe(Row, split(K / Tn),
                                   mapLcl(0, mapSeq(IdF)), join());
                     }))));
          ExprPtr BCopy = pipe(
              BTile, toLocal(mapLcl(1, fun([&](ExprPtr Row) {
                       return pipe(Row, split(K / Tn),
                                   mapLcl(0, mapSeq(IdF)), join());
                     }))));
          ExprPtr Compute = pipe(
              ExprPtr(ALocal), mapLcl(1, fun([&](ExprPtr ARow) {
                return pipe(
                    ExprPtr(BLocal), mapLcl(0, fun([&](ExprPtr BRow) {
                      return pipe(
                          call(reduceSeq(MAdd),
                               {litFloat(0.0f),
                                call(zip(), {ARow, BRow})}),
                          toGlobal(mapSeq(IdF)));
                    })),
                    join());
              })));
          return call(lambda({ALocal, BLocal}, Compute), {ACopy, BCopy});
        })));
  });

  // [M/Tm][N/Tn][Tm][Tn] -> [M][N] (untile on the output path).
  ExprPtr Result = pipe(
      call(mapWrg(1, InnerWg), {A2}),
      mapSeq(fun([&](ExprPtr T) {
        return pipe(T, transpose(), mapSeq(join()));
      })),
      join());

  LambdaPtr Prog = lambda({A, Bt}, Result);

  BenchmarkCase Case;
  Case.Name = "MM (NVIDIA)";
  Case.SizeLabel = Large ? "Large" : "Small";

  std::vector<float> AData = randomFloats(static_cast<size_t>(M * K), 61);
  std::vector<float> BData = randomFloats(static_cast<size_t>(K * N), 67);
  // Pre-transpose B for both implementations.
  std::vector<float> BtData(static_cast<size_t>(N * K));
  for (int64_t P = 0; P != K; ++P)
    for (int64_t J = 0; J != N; ++J)
      BtData[static_cast<size_t>(J * K + P)] =
          BData[static_cast<size_t>(P * N + J)];

  Case.WorkingBuffers.push_back(BufferInit::floats(AData));
  Case.WorkingBuffers.push_back(BufferInit::floats(BtData));
  Case.WorkingBuffers.push_back(
      BufferInit::zeros(static_cast<size_t>(M * N)));
  Case.OutputBuffer = 2;
  Case.Expected = hostMM(AData, BData, static_cast<size_t>(M),
                         static_cast<size_t>(N), static_cast<size_t>(K));
  Case.Tolerance = 1e-3;

  Stage S;
  S.Program = Prog;
  S.Global = {(N / Tn) * Tn, (M / Tm) * Tm, 1};
  S.Local = {Tn, Tm, 1};
  S.Buffers = {0, 1, 2};
  S.Sizes = {{"M", M}, {"N", N}, {"K", K}};
  Case.LiftStages = {S};

  Stage R = S;
  R.Program = nullptr;
  R.ReferenceSource = R"(
kernel void mm(global float *A, global float *Bt, global float *C, int M,
               int N, int K) {
  local float aTile[1024];
  local float bTile[1024];
  int lj = get_local_id(0);
  int li = get_local_id(1);
  int wj = get_group_id(0);
  int wi = get_group_id(1);
  int Tn = get_local_size(0);
  int Tm = get_local_size(1);
  for (int p = lj; p < K; p += Tn) {
    aTile[li * K + p] = A[(wi * Tm + li) * K + p];
    bTile[li * K + p] = Bt[(wj * Tn + li) * K + p];
  }
  barrier(CLK_LOCAL_MEM_FENCE);
  float acc = 0.0f;
  for (int p = 0; p < K; p++) {
    acc += aTile[li * K + p] * bTile[lj * K + p];
  }
  C[(wi * Tm + li) * N + wj * Tn + lj] = acc;
}
)";
  Case.ReferenceStages = {R};
  return Case;
}
