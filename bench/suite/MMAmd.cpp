//===- MMAmd.cpp - Register-blocked matrix multiplication (AMD style) ---------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second MM row of Table 1: CLBlast's AMD configuration uses register
/// blocking but no local-memory tiling (section 7.2: "For AMD it also uses
/// register blocking ... but not tiling in local memory"). Each thread
/// computes a 2x2 block of C from a pair of A rows staged in private
/// memory; the 2x2 blocks are written through an interleaving untile
/// composition of transpose/join output views.
///
//===----------------------------------------------------------------------===//

#include "suite/Benchmark.h"

#include "ir/DSL.h"
#include "ir/Prelude.h"

#include <cmath>

using namespace lift;
using namespace lift::bench;
using namespace lift::ir;
using namespace lift::ir::dsl;

namespace {

std::vector<float> hostMM(const std::vector<float> &A,
                          const std::vector<float> &B, size_t M, size_t N,
                          size_t K) {
  std::vector<float> C(M * N, 0.f);
  for (size_t I = 0; I != M; ++I)
    for (size_t J = 0; J != N; ++J) {
      double S = 0;
      for (size_t P = 0; P != K; ++P)
        S += static_cast<double>(A[I * K + P]) * B[P * N + J];
      C[I * N + J] = static_cast<float>(S);
    }
  return C;
}

} // namespace

BenchmarkCase bench::makeMMAmd(bool Large) {
  const int64_t M = Large ? 64 : 32;
  const int64_t N = M, K = M;
  const int64_t L = 16; // threads per work-group dimension 0

  ParamPtr A =
      param("A", array2D(float32(), arith::cst(M), arith::cst(K)));
  ParamPtr Bt =
      param("Bt", array2D(float32(), arith::cst(N), arith::cst(K)));

  FunDeclPtr MAdd = prelude::multAndSumUpFun();
  FunDeclPtr IdF = prelude::idFloatFun();
  ParamPtr APriv = param("aPriv");
  ParamPtr BPriv = param("bPriv");

  // Each (row-pair, col-pair) thread computes a 2x2 block; the A row pair
  // is staged in private registers first (register blocking).
  ExprPtr A2 = pipe(ExprPtr(A), split(2));   // [M/2][2][K]
  ExprPtr B2 = pipe(ExprPtr(Bt), split(2));  // [N/2][2][K]

  LambdaPtr PerRowPair = fun([&](ExprPtr APair) {
    ExprPtr ACopy = pipe(APair, toPrivate(mapSeq(mapSeq(IdF))));
    ExprPtr Blocks = pipe(
        B2, mapGlb(0, fun([&](ExprPtr BPair) {
          ExprPtr BCopy = pipe(BPair, toPrivate(mapSeq(mapSeq(IdF))));
          ExprPtr Block = pipe(
              ExprPtr(APriv), mapSeq(fun([&](ExprPtr ARow) {
                return pipe(ExprPtr(BPriv), mapSeq(fun([&](ExprPtr BRow) {
                              return pipe(
                                  call(reduceSeq(MAdd),
                                       {litFloat(0.0f),
                                        call(zip(), {ARow, BRow})}),
                                  toGlobal(mapSeq(IdF)));
                            })),
                            join());
              })));
          return call(lambda({BPriv}, Block), {BCopy});
        })));
    return call(lambda({APriv}, Blocks), {ACopy});
  });

  // [M/2][N/2][2][2] -> [M][N]: per row-pair, swap the col-pair and row
  // dimensions and join twice.
  ExprPtr Result = pipe(
      call(mapGlb(1, PerRowPair), {A2}),
      mapSeq(fun([&](ExprPtr T) {
        // T: [N/2][2][2] -> [2][N]: transpose then join the inner pair.
        return pipe(T, transpose(), mapSeq(join()));
      })),
      join());

  LambdaPtr Prog = lambda({A, Bt}, Result);

  BenchmarkCase Case;
  Case.Name = "MM (AMD)";
  Case.SizeLabel = Large ? "Large" : "Small";

  std::vector<float> AData = randomFloats(static_cast<size_t>(M * K), 73);
  std::vector<float> BData = randomFloats(static_cast<size_t>(K * N), 79);
  std::vector<float> BtData(static_cast<size_t>(N * K));
  for (int64_t P = 0; P != K; ++P)
    for (int64_t J = 0; J != N; ++J)
      BtData[static_cast<size_t>(J * K + P)] =
          BData[static_cast<size_t>(P * N + J)];

  Case.WorkingBuffers.push_back(BufferInit::floats(AData));
  Case.WorkingBuffers.push_back(BufferInit::floats(BtData));
  Case.WorkingBuffers.push_back(
      BufferInit::zeros(static_cast<size_t>(M * N)));
  Case.OutputBuffer = 2;
  Case.Expected = hostMM(AData, BData, static_cast<size_t>(M),
                         static_cast<size_t>(N), static_cast<size_t>(K));
  Case.Tolerance = 1e-3;

  Stage S;
  S.Program = Prog;
  S.Global = {N / 2, M / 2, 1};
  S.Local = {L, 1, 1};
  S.Buffers = {0, 1, 2};
  S.Sizes = {{"M", M}, {"N", N}, {"K", K}};
  Case.LiftStages = {S};

  Stage R = S;
  R.Program = nullptr;
  R.ReferenceSource = R"(
kernel void mmAmd(global float *A, global float *Bt, global float *C, int M,
                  int N, int K) {
  int bj = get_global_id(0);
  int bi = get_global_id(1);
  float a0;
  float a1;
  float acc00 = 0.0f;
  float acc01 = 0.0f;
  float acc10 = 0.0f;
  float acc11 = 0.0f;
  for (int p = 0; p < K; p++) {
    a0 = A[(bi * 2) * K + p];
    a1 = A[(bi * 2 + 1) * K + p];
    float b0 = Bt[(bj * 2) * K + p];
    float b1 = Bt[(bj * 2 + 1) * K + p];
    acc00 += a0 * b0;
    acc01 += a0 * b1;
    acc10 += a1 * b0;
    acc11 += a1 * b1;
  }
  C[(bi * 2) * N + bj * 2] = acc00;
  C[(bi * 2) * N + bj * 2 + 1] = acc01;
  C[(bi * 2 + 1) * N + bj * 2] = acc10;
  C[(bi * 2 + 1) * N + bj * 2 + 1] = acc11;
}
)";
  Case.ReferenceStages = {R};
  return Case;
}
