//===- NBody.cpp - N-Body benchmarks (NVIDIA and AMD variants) --------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two N-Body variants of Table 1. The NVIDIA SDK version stages
/// particle positions in local memory before each work group's threads
/// accumulate interactions; the AMD SDK version reads global memory
/// directly and relies on float4 vector arithmetic (section 7.2).
/// Computation: acceleration of each particle under softened gravity.
///
//===----------------------------------------------------------------------===//

#include "suite/Benchmark.h"

#include "ir/DSL.h"
#include "ir/Prelude.h"

#include <cmath>

using namespace lift;
using namespace lift::bench;
using namespace lift::ir;
using namespace lift::ir::dsl;

namespace {

const char *InteractionBody =
    "float rx = q.x - p.x;"
    "float ry = q.y - p.y;"
    "float rz = q.z - p.z;"
    "float distSqr = rx * rx + ry * ry + rz * rz + 0.01f;"
    "float invDist = rsqrt(distSqr);"
    "float s = q.w * invDist * invDist * invDist;"
    "return (float4)(acc.x + rx * s, acc.y + ry * s, acc.z + rz * s, 0.0f);";

FunDeclPtr interactionFun() {
  TypePtr F4 = vectorOf(ScalarKind::Float, 4);
  return userFun("interaction", {"acc", "p", "q"}, {F4, F4, F4}, F4,
                 InteractionBody);
}

/// The accumulator threads the thread's own particle through the
/// reduction — (acc, p) — so p is read from global memory exactly once
/// (Table 1: the references keep p in private memory).
TypePtr nbodyAccTy() {
  TypePtr F4 = vectorOf(ScalarKind::Float, 4);
  return tupleOf({F4, F4});
}

FunDeclPtr initAccFun() {
  TypePtr F4 = vectorOf(ScalarKind::Float, 4);
  return userFun("initAcc", {"p"}, {F4}, nbodyAccTy(),
                 "return (Tuple2_float4_float4){"
                 "(float4)(0.0f, 0.0f, 0.0f, 0.0f), p};");
}

FunDeclPtr interactionAccFun() {
  TypePtr F4 = vectorOf(ScalarKind::Float, 4);
  return userFun(
      "interactionAcc", {"state", "q"}, {nbodyAccTy(), F4}, nbodyAccTy(),
      "float4 acc = state._0;"
      "float4 p = state._1;"
      "float rx = q.x - p.x;"
      "float ry = q.y - p.y;"
      "float rz = q.z - p.z;"
      "float distSqr = rx * rx + ry * ry + rz * rz + 0.01f;"
      "float invDist = rsqrt(distSqr);"
      "float s = q.w * invDist * invDist * invDist;"
      "return (Tuple2_float4_float4){(float4)(acc.x + rx * s,"
      " acc.y + ry * s, acc.z + rz * s, 0.0f), p};");
}

FunDeclPtr getAccFun() {
  TypePtr F4 = vectorOf(ScalarKind::Float, 4);
  return userFun("getAcc", {"state"}, {nbodyAccTy()}, F4,
                 "return state._0;");
}

/// Host golden reference.
std::vector<float> hostNBody(const std::vector<float> &Pos, size_t N) {
  std::vector<float> Out(4 * N, 0.f);
  for (size_t I = 0; I != N; ++I) {
    double Ax = 0, Ay = 0, Az = 0;
    for (size_t J = 0; J != N; ++J) {
      double Rx = Pos[4 * J] - Pos[4 * I];
      double Ry = Pos[4 * J + 1] - Pos[4 * I + 1];
      double Rz = Pos[4 * J + 2] - Pos[4 * I + 2];
      double D2 = Rx * Rx + Ry * Ry + Rz * Rz + 0.01;
      double Inv = 1.0 / std::sqrt(D2);
      double S = Pos[4 * J + 3] * Inv * Inv * Inv;
      Ax += Rx * S;
      Ay += Ry * S;
      Az += Rz * S;
    }
    Out[4 * I] = static_cast<float>(Ax);
    Out[4 * I + 1] = static_cast<float>(Ay);
    Out[4 * I + 2] = static_cast<float>(Az);
  }
  return Out;
}

std::vector<float> particleData(size_t N) {
  std::vector<float> Pos = randomFloats(4 * N, 42);
  // Masses positive.
  for (size_t I = 0; I != N; ++I)
    Pos[4 * I + 3] = 0.5f + 0.5f * std::fabs(Pos[4 * I + 3]);
  return Pos;
}

} // namespace

//===----------------------------------------------------------------------===//
// NVIDIA variant: local memory staging
//===----------------------------------------------------------------------===//

BenchmarkCase bench::makeNBodyNvidia(bool Large) {
  const int64_t N = Large ? 512 : 256;
  const int64_t L = 64;

  arith::Expr NV = arith::cst(N);
  ParamPtr Pos = param("pos", arrayOf(vectorOf(ScalarKind::Float, 4), NV));


  FunDeclPtr IdF4 = prelude::idFloat4Fun();

  // Each work group stages all positions into local memory cooperatively,
  // then each thread reduces over the local copy.
  ParamPtr LocalPos = param("localPos");
  LambdaPtr PerChunk = fun([&](ExprPtr Chunk) {
    ExprPtr CopyToLocal =
        pipe(ExprPtr(Pos), split(arith::intDiv(NV, arith::cst(L))),
             toLocal(mapLcl(mapSeq(IdF4))), join());
    ExprPtr Compute = pipe(
        Chunk, mapLcl(fun([&](ExprPtr P) {
          return pipe(call(reduceSeq(interactionAccFun()),
                           {call(initAccFun(), {P}), LocalPos}),
                      toGlobal(mapSeq(getAccFun())));
        })),
        join());
    return call(lambda({LocalPos}, Compute), {CopyToLocal});
  });

  LambdaPtr Prog =
      lambda({Pos}, pipe(ExprPtr(Pos), split(L), mapWrg(PerChunk), join()));

  BenchmarkCase Case;
  Case.Name = "N-Body (NVIDIA)";
  Case.SizeLabel = Large ? "Large" : "Small";

  std::vector<float> PosData = particleData(static_cast<size_t>(N));
  Case.WorkingBuffers.push_back(BufferInit::vec4(PosData));
  Case.WorkingBuffers.push_back(BufferInit::zeros(static_cast<size_t>(N)));
  Case.OutputBuffer = 1;
  Case.Expected = hostNBody(PosData, static_cast<size_t>(N));
  Case.Tolerance = 1e-3;

  Stage S;
  S.Program = Prog;
  S.Global = {N, 1, 1};
  S.Local = {L, 1, 1};
  S.Buffers = {0, 1};
  S.Sizes = {{"N", N}};
  Case.LiftStages = {S};

  Stage R = S;
  R.Program = nullptr;
  R.ReferenceSource = R"(
float4 interaction(float4 acc, float4 p, float4 q) {
  float rx = q.x - p.x;
  float ry = q.y - p.y;
  float rz = q.z - p.z;
  float distSqr = rx * rx + ry * ry + rz * rz + 0.01f;
  float invDist = rsqrt(distSqr);
  float s = q.w * invDist * invDist * invDist;
  return (float4)(acc.x + rx * s, acc.y + ry * s, acc.z + rz * s, 0.0f);
}

kernel void nbody(global float4 *pos, global float4 *out, int N) {
  local float4 tile[512];
  int l = get_local_id(0);
  int g = get_global_id(0);
  int L = get_local_size(0);
  for (int t = l; t < N; t += L) {
    tile[t] = pos[t];
  }
  barrier(CLK_LOCAL_MEM_FENCE);
  float4 p = pos[g];
  float4 acc = (float4)(0.0f, 0.0f, 0.0f, 0.0f);
  for (int j = 0; j < N; j++) {
    acc = interaction(acc, p, tile[j]);
  }
  out[g] = acc;
}
)";
  Case.ReferenceStages = {R};

  // High-level (portable) formulation for Table 1.
  ParamPtr HPos = param("pos", arrayOf(vectorOf(ScalarKind::Float, 4), NV));
  Case.HighLevelProgram = lambda(
      {HPos}, pipe(ExprPtr(HPos), mapGlb(fun([&](ExprPtr P) {
                return pipe(call(reduceSeq(fun2([&](ExprPtr A, ExprPtr Q) {
                                   return call(interactionFun(), {A, P, Q});
                                 })),
                                 {lit("(float4)(0.0f, 0.0f, 0.0f, 0.0f)",
                                      vectorOf(ScalarKind::Float, 4)),
                                  HPos}),
                            toGlobal(mapSeq(prelude::idFloat4Fun())));
              })),
              join()));
  return Case;
}

//===----------------------------------------------------------------------===//
// AMD variant: no local memory, vector arithmetic from global memory
//===----------------------------------------------------------------------===//

BenchmarkCase bench::makeNBodyAmd(bool Large) {
  const int64_t N = Large ? 512 : 256;
  const int64_t L = 64;

  arith::Expr NV = arith::cst(N);
  ParamPtr Pos = param("pos", arrayOf(vectorOf(ScalarKind::Float, 4), NV));

  LambdaPtr Prog = lambda(
      {Pos}, pipe(ExprPtr(Pos), mapGlb(fun([&](ExprPtr P) {
               return pipe(call(reduceSeq(interactionAccFun()),
                                {call(initAccFun(), {P}), Pos}),
                           toGlobal(mapSeq(getAccFun())));
             })),
             join()));

  BenchmarkCase Case;
  Case.Name = "N-Body (AMD)";
  Case.SizeLabel = Large ? "Large" : "Small";

  std::vector<float> PosData = particleData(static_cast<size_t>(N));
  Case.WorkingBuffers.push_back(BufferInit::vec4(PosData));
  Case.WorkingBuffers.push_back(BufferInit::zeros(static_cast<size_t>(N)));
  Case.OutputBuffer = 1;
  Case.Expected = hostNBody(PosData, static_cast<size_t>(N));
  Case.Tolerance = 1e-3;

  Stage S;
  S.Program = Prog;
  S.Global = {N, 1, 1};
  S.Local = {L, 1, 1};
  S.Buffers = {0, 1};
  S.Sizes = {{"N", N}};
  Case.LiftStages = {S};

  Stage R = S;
  R.Program = nullptr;
  R.ReferenceSource = R"(
float4 interaction(float4 acc, float4 p, float4 q) {
  float rx = q.x - p.x;
  float ry = q.y - p.y;
  float rz = q.z - p.z;
  float distSqr = rx * rx + ry * ry + rz * rz + 0.01f;
  float invDist = rsqrt(distSqr);
  float s = q.w * invDist * invDist * invDist;
  return (float4)(acc.x + rx * s, acc.y + ry * s, acc.z + rz * s, 0.0f);
}

kernel void nbody(global float4 *pos, global float4 *out, int N) {
  int g = get_global_id(0);
  float4 p = pos[g];
  float4 acc = (float4)(0.0f, 0.0f, 0.0f, 0.0f);
  for (int j = 0; j < N; j++) {
    acc = interaction(acc, p, pos[j]);
  }
  out[g] = acc;
}
)";
  Case.ReferenceStages = {R};
  return Case;
}
