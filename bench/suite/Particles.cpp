//===- Particles.cpp - MD, K-Means, NN and MRI-Q benchmarks -----------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 1D benchmarks of Table 1 beyond N-Body: SHOC MD (Lennard-Jones with
/// a runtime neighbour list, exercising the data-dependent gatherIndices
/// extension), Rodinia K-Means (tuple-typed reduction accumulator),
/// Rodinia NN (trivial map with scalar parameters) and Parboil MRI-Q
/// (sin/cos user functions with a float2 complex accumulator).
///
//===----------------------------------------------------------------------===//

#include "suite/Benchmark.h"

#include "ir/DSL.h"
#include "ir/Prelude.h"

#include <cmath>

using namespace lift;
using namespace lift::bench;
using namespace lift::ir;
using namespace lift::ir::dsl;

//===----------------------------------------------------------------------===//
// MD (SHOC): Lennard-Jones force over a fixed-size neighbour list
//===----------------------------------------------------------------------===//

namespace {

std::vector<float> hostMD(const std::vector<float> &Pos,
                          const std::vector<int> &Neigh, size_t N,
                          size_t K) {
  std::vector<float> Out(4 * N, 0.f);
  for (size_t I = 0; I != N; ++I) {
    double Ax = 0, Ay = 0, Az = 0;
    for (size_t J = 0; J != K; ++J) {
      size_t Q = static_cast<size_t>(Neigh[I * K + J]);
      double Rx = Pos[4 * Q] - Pos[4 * I];
      double Ry = Pos[4 * Q + 1] - Pos[4 * I + 1];
      double Rz = Pos[4 * Q + 2] - Pos[4 * I + 2];
      double R2 = Rx * Rx + Ry * Ry + Rz * Rz + 0.05;
      double R2i = 1.0 / R2;
      double R6i = R2i * R2i * R2i;
      double F = R2i * R6i * (R6i - 0.5);
      Ax += Rx * F;
      Ay += Ry * F;
      Az += Rz * F;
    }
    Out[4 * I] = static_cast<float>(Ax);
    Out[4 * I + 1] = static_cast<float>(Ay);
    Out[4 * I + 2] = static_cast<float>(Az);
  }
  return Out;
}

} // namespace

BenchmarkCase bench::makeMD(bool Large) {
  const int64_t N = Large ? 2048 : 512;
  const int64_t K = 16;
  const int64_t L = 64;

  TypePtr F4 = vectorOf(ScalarKind::Float, 4);
  ParamPtr Pos = param("pos", arrayOf(F4, arith::cst(N)));
  ParamPtr Neigh =
      param("neigh", array2D(int32(), arith::cst(N), arith::cst(K)));

  TypePtr AccT = tupleOf({F4, F4});
  FunDeclPtr InitAcc =
      userFun("mdInit", {"p"}, {F4}, AccT,
              "return (Tuple2_float4_float4){"
              "(float4)(0.0f, 0.0f, 0.0f, 0.0f), p};");
  FunDeclPtr Lj = userFun(
      "ljForce", {"state", "q"}, {AccT, F4}, AccT,
      "float4 acc = state._0;"
      "float4 p = state._1;"
      "float rx = q.x - p.x;"
      "float ry = q.y - p.y;"
      "float rz = q.z - p.z;"
      "float r2 = rx * rx + ry * ry + rz * rz + 0.05f;"
      "float r2inv = 1.0f / r2;"
      "float r6inv = r2inv * r2inv * r2inv;"
      "float f = r2inv * r6inv * (r6inv - 0.5f);"
      "return (Tuple2_float4_float4){(float4)(acc.x + rx * f,"
      " acc.y + ry * f, acc.z + rz * f, 0.0f), p};");
  FunDeclPtr GetAcc =
      userFun("mdGet", {"state"}, {AccT}, F4, "return state._0;");

  // zip(pos, neighbour rows); for each particle reduce over the positions
  // selected by its neighbour row (data-dependent gather).
  LambdaPtr Prog = lambda(
      {Pos, Neigh},
      pipe(call(zip(), {Pos, Neigh}), mapGlb(fun([&](ExprPtr Pair) {
             ExprPtr P = call(get(0), {Pair});
             ExprPtr Row = call(get(1), {Pair});
             ExprPtr Neighbours = call(gatherIndices(), {Row, Pos});
             return pipe(call(reduceSeq(Lj),
                              {call(InitAcc, {P}), Neighbours}),
                         toGlobal(mapSeq(GetAcc)));
           })),
           join()));

  BenchmarkCase Case;
  Case.Name = "MD";
  Case.SizeLabel = Large ? "Large" : "Small";

  std::vector<float> PosData = randomFloats(4 * static_cast<size_t>(N), 7);
  std::vector<int> NeighData(static_cast<size_t>(N * K));
  for (int64_t I = 0; I != N; ++I)
    for (int64_t J = 0; J != K; ++J)
      NeighData[static_cast<size_t>(I * K + J)] =
          static_cast<int>((I + 1 + J * 37) % N);

  Case.WorkingBuffers.push_back(BufferInit::vec4(PosData));
  Case.WorkingBuffers.push_back(BufferInit::ints(NeighData));
  Case.WorkingBuffers.push_back(BufferInit::zeros(static_cast<size_t>(N)));
  Case.OutputBuffer = 2;
  Case.Expected = hostMD(PosData, NeighData, static_cast<size_t>(N),
                         static_cast<size_t>(K));
  Case.Tolerance = 1e-3;

  Stage S;
  S.Program = Prog;
  S.Global = {N, 1, 1};
  S.Local = {L, 1, 1};
  S.Buffers = {0, 1, 2};
  S.Sizes = {{"N", N}, {"K", K}};
  Case.LiftStages = {S};

  Stage R = S;
  R.Program = nullptr;
  R.ReferenceSource = R"(
float4 ljForce(float4 acc, float4 p, float4 q) {
  float rx = q.x - p.x;
  float ry = q.y - p.y;
  float rz = q.z - p.z;
  float r2 = rx * rx + ry * ry + rz * rz + 0.05f;
  float r2inv = 1.0f / r2;
  float r6inv = r2inv * r2inv * r2inv;
  float f = r2inv * r6inv * (r6inv - 0.5f);
  return (float4)(acc.x + rx * f, acc.y + ry * f, acc.z + rz * f, 0.0f);
}

kernel void md(global float4 *pos, global int *neigh, global float4 *out,
               int N, int K) {
  int g = get_global_id(0);
  float4 p = pos[g];
  float4 acc = (float4)(0.0f, 0.0f, 0.0f, 0.0f);
  for (int j = 0; j < K; j++) {
    acc = ljForce(acc, p, pos[neigh[g * K + j]]);
  }
  out[g] = acc;
}
)";
  Case.ReferenceStages = {R};
  return Case;
}

//===----------------------------------------------------------------------===//
// K-Means (Rodinia): nearest-cluster assignment
//===----------------------------------------------------------------------===//

namespace {

std::vector<float> hostKMeans(const std::vector<float> &Pts,
                              const std::vector<float> &Cl, size_t P,
                              size_t K) {
  std::vector<float> Out(P);
  for (size_t I = 0; I != P; ++I) {
    double Best = 1e30;
    int BestIdx = 0;
    for (size_t C = 0; C != K; ++C) {
      double Dx = Pts[2 * I] - Cl[2 * C];
      double Dy = Pts[2 * I + 1] - Cl[2 * C + 1];
      double D = Dx * Dx + Dy * Dy;
      if (D < Best) {
        Best = D;
        BestIdx = static_cast<int>(C);
      }
    }
    Out[I] = static_cast<float>(BestIdx);
  }
  return Out;
}

} // namespace

BenchmarkCase bench::makeKMeans(bool Large) {
  const int64_t P = Large ? 8192 : 2048;
  const int64_t K = 5;
  const int64_t L = 64;

  TypePtr F2 = vectorOf(ScalarKind::Float, 2);
  TypePtr AccTy = tupleOf({float32(), int32(), int32()});
  ParamPtr Pts = param("points", arrayOf(F2, arith::cst(P)));
  ParamPtr Cl = param("clusters", arrayOf(F2, arith::cst(K)));

  // Accumulator: (best distance, best index, running index).
  FunDeclPtr MinIdx = userFun(
      "minIdx", {"acc", "p", "c"}, {AccTy, F2, F2}, AccTy,
      "float dx = p.x - c.x;"
      "float dy = p.y - c.y;"
      "float d = dx * dx + dy * dy;"
      "return (d < acc._0) ? (Tuple3_float_int_int){d, acc._2, acc._2 + 1}"
      " : (Tuple3_float_int_int){acc._0, acc._1, acc._2 + 1};");
  FunDeclPtr ExtractIdx = userFun("extractIdx", {"acc"}, {AccTy}, int32(),
                                  "return acc._1;");

  LambdaPtr Prog = lambda(
      {Pts, Cl},
      pipe(ExprPtr(Pts), mapGlb(fun([&](ExprPtr Pt) {
             return pipe(
                 call(reduceSeq(fun2([&](ExprPtr Acc, ExprPtr C) {
                        return call(MinIdx, {Acc, Pt, C});
                      })),
                      {lit("(Tuple3_float_int_int){3.4e38f, 0, 0}", AccTy),
                       Cl}),
                 toGlobal(mapSeq(ExtractIdx)));
           })),
           join()));

  BenchmarkCase Case;
  Case.Name = "K-Means";
  Case.SizeLabel = Large ? "Large" : "Small";

  std::vector<float> PtsData = randomFloats(2 * static_cast<size_t>(P), 11);
  std::vector<float> ClData = randomFloats(2 * static_cast<size_t>(K), 13);

  Case.WorkingBuffers.push_back(BufferInit::vec2(PtsData));
  Case.WorkingBuffers.push_back(BufferInit::vec2(ClData));
  Case.WorkingBuffers.push_back(BufferInit::zeros(static_cast<size_t>(P)));
  Case.OutputBuffer = 2;
  Case.Expected = hostKMeans(PtsData, ClData, static_cast<size_t>(P),
                             static_cast<size_t>(K));
  Case.Tolerance = 1e-6; // indices must match exactly

  Stage S;
  S.Program = Prog;
  S.Global = {P, 1, 1};
  S.Local = {L, 1, 1};
  S.Buffers = {0, 1, 2};
  S.Sizes = {{"P", P}, {"K", K}};
  Case.LiftStages = {S};

  Stage R = S;
  R.Program = nullptr;
  R.ReferenceSource = R"(
kernel void kmeans(global float2 *points, global float2 *clusters,
                   global int *out, int P, int K) {
  int g = get_global_id(0);
  float2 p = points[g];
  float best = 3.4e38f;
  int bestIdx = 0;
  for (int c = 0; c < K; c++) {
    float dx = p.x - clusters[c].x;
    float dy = p.y - clusters[c].y;
    float d = dx * dx + dy * dy;
    if (d < best) {
      best = d;
      bestIdx = c;
    }
  }
  out[g] = bestIdx;
}
)";
  Case.ReferenceStages = {R};
  return Case;
}

//===----------------------------------------------------------------------===//
// NN (Rodinia): distance to a query point
//===----------------------------------------------------------------------===//

namespace {

std::vector<float> hostNN(const std::vector<float> &Pts, size_t P, float Tx,
                          float Ty) {
  std::vector<float> Out(P);
  for (size_t I = 0; I != P; ++I) {
    double Dx = Pts[2 * I] - Tx;
    double Dy = Pts[2 * I + 1] - Ty;
    Out[I] = static_cast<float>(std::sqrt(Dx * Dx + Dy * Dy));
  }
  return Out;
}

} // namespace

BenchmarkCase bench::makeNN(bool Large) {
  const int64_t P = Large ? 32768 : 8192;
  const int64_t L = 128;
  const int64_t Tx = 2, Ty = 3; // integer-valued query point

  TypePtr F2 = vectorOf(ScalarKind::Float, 2);
  ParamPtr Pts = param("points", arrayOf(F2, arith::cst(P)));
  ParamPtr TxP = param("tx", float32());
  ParamPtr TyP = param("ty", float32());

  FunDeclPtr Dist = userFun("dist", {"p", "tx", "ty"},
                            {F2, float32(), float32()}, float32(),
                            "float dx = p.x - tx;"
                            "float dy = p.y - ty;"
                            "return sqrt(dx * dx + dy * dy);");

  LambdaPtr Prog =
      lambda({Pts, TxP, TyP}, pipe(ExprPtr(Pts), mapGlb(fun([&](ExprPtr P2) {
                                     return call(Dist, {P2, TxP, TyP});
                                   }))));

  BenchmarkCase Case;
  Case.Name = "NN";
  Case.SizeLabel = Large ? "Large" : "Small";

  std::vector<float> PtsData = randomFloats(2 * static_cast<size_t>(P), 17);
  Case.WorkingBuffers.push_back(BufferInit::vec2(PtsData));
  Case.WorkingBuffers.push_back(BufferInit::zeros(static_cast<size_t>(P)));
  Case.OutputBuffer = 1;
  Case.Expected = hostNN(PtsData, static_cast<size_t>(P),
                         static_cast<float>(Tx), static_cast<float>(Ty));
  Case.Tolerance = 1e-4;

  Stage S;
  S.Program = Prog;
  S.Global = {P, 1, 1};
  S.Local = {L, 1, 1};
  S.Buffers = {0, 1};
  S.Sizes = {{"P", P}, {"tx", Tx}, {"ty", Ty}};
  Case.LiftStages = {S};

  Stage R = S;
  R.Program = nullptr;
  R.ReferenceSource = R"(
kernel void nn(global float2 *points, global float *out, int P, int tx,
               int ty) {
  int g = get_global_id(0);
  float2 p = points[g];
  float dx = p.x - tx;
  float dy = p.y - ty;
  out[g] = sqrt(dx * dx + dy * dy);
}
)";
  Case.ReferenceStages = {R};
  return Case;
}

//===----------------------------------------------------------------------===//
// MRI-Q (Parboil): k-space summation with sin/cos
//===----------------------------------------------------------------------===//

namespace {

std::vector<float> hostMriQ(const std::vector<float> &X,
                            const std::vector<float> &Ks, size_t P,
                            size_t K) {
  std::vector<float> Out(2 * P, 0.f);
  for (size_t I = 0; I != P; ++I) {
    double Re = 0, Im = 0;
    for (size_t J = 0; J != K; ++J) {
      double E = 6.2831853 * (Ks[4 * J] * X[4 * I] +
                              Ks[4 * J + 1] * X[4 * I + 1] +
                              Ks[4 * J + 2] * X[4 * I + 2]);
      Re += Ks[4 * J + 3] * std::cos(E);
      Im += Ks[4 * J + 3] * std::sin(E);
    }
    Out[2 * I] = static_cast<float>(Re);
    Out[2 * I + 1] = static_cast<float>(Im);
  }
  return Out;
}

} // namespace

BenchmarkCase bench::makeMriQ(bool Large) {
  const int64_t P = Large ? 2048 : 512;
  const int64_t K = 256;
  const int64_t L = 64;

  TypePtr F4 = vectorOf(ScalarKind::Float, 4);
  TypePtr F2 = vectorOf(ScalarKind::Float, 2);
  ParamPtr X = param("xs", arrayOf(F4, arith::cst(P)));
  ParamPtr Ks = param("kvals", arrayOf(F4, arith::cst(K)));

  TypePtr AccT = tupleOf({F2, F4});
  FunDeclPtr QInit = userFun("qInit", {"x"}, {F4}, AccT,
                             "return (Tuple2_float2_float4){"
                             "(float2)(0.0f, 0.0f), x};");
  FunDeclPtr QComp = userFun(
      "qComp", {"state", "k"}, {AccT, F4}, AccT,
      "float2 acc = state._0;"
      "float4 x = state._1;"
      "float e = 6.2831853f * (k.x * x.x + k.y * x.y + k.z * x.z);"
      "return (Tuple2_float2_float4){(float2)(acc.x + k.w * cos(e),"
      " acc.y + k.w * sin(e)), x};");
  FunDeclPtr QGet =
      userFun("qGet", {"state"}, {AccT}, F2, "return state._0;");

  LambdaPtr Prog = lambda(
      {X, Ks}, pipe(ExprPtr(X), mapGlb(fun([&](ExprPtr Px) {
                 return pipe(call(reduceSeq(QComp),
                                  {call(QInit, {Px}), Ks}),
                             toGlobal(mapSeq(QGet)));
               })),
               join()));

  BenchmarkCase Case;
  Case.Name = "MRI-Q";
  Case.SizeLabel = Large ? "Large" : "Small";

  std::vector<float> XData = randomFloats(4 * static_cast<size_t>(P), 19);
  std::vector<float> KData = randomFloats(4 * static_cast<size_t>(K), 23);

  Case.WorkingBuffers.push_back(BufferInit::vec4(XData));
  Case.WorkingBuffers.push_back(BufferInit::vec4(KData));
  Case.WorkingBuffers.push_back(BufferInit::zeros(static_cast<size_t>(P)));
  Case.OutputBuffer = 2;
  Case.Expected = hostMriQ(XData, KData, static_cast<size_t>(P),
                           static_cast<size_t>(K));
  Case.Tolerance = 1e-3;

  Stage S;
  S.Program = Prog;
  S.Global = {P, 1, 1};
  S.Local = {L, 1, 1};
  S.Buffers = {0, 1, 2};
  S.Sizes = {{"P", P}, {"K", K}};
  Case.LiftStages = {S};

  Stage R = S;
  R.Program = nullptr;
  R.ReferenceSource = R"(
kernel void mriq(global float4 *xs, global float4 *kvals, global float2 *out,
                 int P, int K) {
  int g = get_global_id(0);
  float4 x = xs[g];
  float re = 0.0f;
  float im = 0.0f;
  for (int j = 0; j < K; j++) {
    float4 k = kvals[j];
    float e = 6.2831853f * (k.x * x.x + k.y * x.y + k.z * x.z);
    re += k.w * cos(e);
    im += k.w * sin(e);
  }
  out[g] = (float2)(re, im);
}
)";
  Case.ReferenceStages = {R};
  return Case;
}
