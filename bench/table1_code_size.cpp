//===- table1_code_size.cpp - Reproduction of Table 1 -------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the code-size comparison of Table 1: lines of OpenCL code of
// the hand-written reference implementation vs. the portable high-level
// Lift IL vs. the low-level Lift IL that encodes the optimization choices
// explicitly. As in the paper, the high-level programs are the shortest,
// and the low-level programs are slightly longer because the mapping
// decisions (work groups, local memory, vectorization) are explicit.
//
//===----------------------------------------------------------------------===//

#include "suite/Benchmark.h"

#include "ir/DSL.h"
#include "ir/Prelude.h"
#include "ir/Printer.h"

#include <cstdio>

using namespace lift;
using namespace lift::bench;
using namespace lift::ir;
using namespace lift::ir::dsl;

namespace {

unsigned sourceLineCount(const std::string &Src) {
  unsigned Lines = 0;
  bool NonSpace = false;
  for (char C : Src) {
    if (C == '\n') {
      if (NonSpace)
        ++Lines;
      NonSpace = false;
    } else if (C != ' ' && C != '\t') {
      NonSpace = true;
    }
  }
  if (NonSpace)
    ++Lines;
  return Lines;
}

/// The portable high-level formulations (generic map/reduce, no mapping or
/// address space decisions) used for the middle column of Table 1.
LambdaPtr highLevelFor(const std::string &Name) {
  TypePtr F4 = vectorOf(ScalarKind::Float, 4);
  TypePtr F2 = vectorOf(ScalarKind::Float, 2);
  auto N = arith::sizeVar("N");
  auto M = arith::sizeVar("M");
  auto K = arith::sizeVar("K");

  if (Name.find("N-Body") != std::string::npos) {
    ParamPtr Pos = param("pos", arrayOf(F4, N));
    FunDeclPtr I = userFun("interaction", {"acc", "p", "q"}, {F4, F4, F4},
                           F4, "/* gravity */ return acc;");
    return lambda(
        {Pos}, pipe(ExprPtr(Pos), map(fun([&](ExprPtr P) {
                 return call(reduceSeq(fun2([&](ExprPtr A, ExprPtr Q) {
                               return call(I, {A, P, Q});
                             })),
                             {lit("0.0f", F4), Pos});
               })),
               join()));
  }
  if (Name == "MD") {
    ParamPtr Pos = param("pos", arrayOf(F4, N));
    ParamPtr Ng = param("neigh", array2D(int32(), N, K));
    FunDeclPtr Lj = userFun("lj", {"acc", "p", "q"}, {F4, F4, F4}, F4,
                            "/* lennard-jones */ return acc;");
    return lambda(
        {Pos, Ng},
        pipe(call(zip(), {Pos, Ng}), map(fun([&](ExprPtr Pair) {
               return call(reduceSeq(fun2([&](ExprPtr A, ExprPtr Q) {
                             return call(Lj, {A, call(get(0), {Pair}), Q});
                           })),
                           {lit("0.0f", F4),
                            call(gatherIndices(),
                                 {call(get(1), {Pair}), Pos})});
             })),
             join()));
  }
  if (Name == "K-Means") {
    TypePtr Acc = tupleOf({float32(), int32(), int32()});
    ParamPtr Pts = param("points", arrayOf(F2, N));
    ParamPtr Cl = param("clusters", arrayOf(F2, K));
    FunDeclPtr MinIdx = userFun("minIdx", {"a", "p", "c"}, {Acc, F2, F2},
                                Acc, "/* argmin */ return a;");
    return lambda({Pts, Cl}, pipe(ExprPtr(Pts), map(fun([&](ExprPtr P) {
                                    return call(
                                        reduceSeq(fun2([&](ExprPtr A,
                                                           ExprPtr C) {
                                          return call(MinIdx, {A, P, C});
                                        })),
                                        {lit("0", Acc), Cl});
                                  })),
                                  join()));
  }
  if (Name == "NN") {
    ParamPtr Pts = param("points", arrayOf(F2, N));
    FunDeclPtr D = userFun("dist", {"p"}, {F2}, float32(),
                           "/* distance */ return 0.0f;");
    return lambda({Pts}, pipe(ExprPtr(Pts), map(D)));
  }
  if (Name == "MRI-Q") {
    ParamPtr X = param("xs", arrayOf(F4, N));
    ParamPtr Ks = param("kvals", arrayOf(F4, K));
    FunDeclPtr Q = userFun("qComp", {"a", "x", "k"}, {F2, F4, F4}, F2,
                           "/* fourier */ return a;");
    return lambda({X, Ks}, pipe(ExprPtr(X), map(fun([&](ExprPtr P) {
                                  return call(
                                      reduceSeq(fun2([&](ExprPtr A,
                                                         ExprPtr Kv) {
                                        return call(Q, {A, P, Kv});
                                      })),
                                      {lit("0.0f", F2), Ks});
                                })),
                                join()));
  }
  if (Name == "Convolution") {
    ParamPtr In = param("in", array2D(float32(), N, M));
    ParamPtr W = param("weights", arrayOf(float32(), arith::cst(9)));
    return lambda(
        {In, W},
        pipe(ExprPtr(In), map(slide(3, 1)), slide(3, 1), map(transpose()),
             map(map(fun([&](ExprPtr Win) {
               return call(reduceSeq(prelude::multAndSumUpFun()),
                           {litFloat(0.0f),
                            call(zip(), {pipe(Win, join()), W})});
             })))));
  }
  if (Name == "ATAX" || Name == "GEMV" || Name == "GESUMMV") {
    ParamPtr A = param("A", array2D(float32(), N, M));
    ParamPtr X = param("x", arrayOf(float32(), M));
    LambdaPtr Gemv = lambda(
        {A, X}, pipe(ExprPtr(A), map(fun([&](ExprPtr Row) {
                  return call(reduceSeq(prelude::multAndSumUpFun()),
                              {litFloat(0.0f), call(zip(), {Row, X})});
                })),
                join()));
    return Gemv;
  }
  // MM
  ParamPtr A = param("A", array2D(float32(), N, K));
  ParamPtr Bt = param("Bt", array2D(float32(), M, K));
  return lambda({A, Bt}, pipe(ExprPtr(A), map(fun([&](ExprPtr Row) {
                                return pipe(
                                    ExprPtr(Bt), map(fun([&](ExprPtr Col) {
                                      return call(
                                          reduceSeq(
                                              prelude::multAndSumUpFun()),
                                          {litFloat(0.0f),
                                           call(zip(), {Row, Col})});
                                    })),
                                    join());
                              }))));
}

} // namespace

int main() {
  std::printf("=== Table 1: code size (lines of code) ===\n\n");
  std::printf("%-18s %10s %14s %13s\n", "Benchmark", "OpenCL",
              "High-level IL", "Low-level IL");

  for (BenchmarkCase &Case : allBenchmarks(false)) {
    unsigned OpenClLines = 0;
    for (const Stage &S : Case.ReferenceStages)
      OpenClLines += sourceLineCount(S.ReferenceSource);

    unsigned LowLines = 0;
    for (const Stage &S : Case.LiftStages)
      LowLines += programLineCount(S.Program);

    LambdaPtr High = highLevelFor(Case.Name);
    unsigned HighLines = programLineCount(High);

    std::printf("%-18s %10u %14u %13u\n", Case.Name.c_str(), OpenClLines,
                HighLines, LowLines);
  }

  std::printf("\nAs in the paper, the low-level IL is longer than the\n"
              "high-level IL because it encodes optimization choices\n"
              "explicitly, and both are much shorter than OpenCL.\n");
  return 0;
}
