//===- tuning_search.cpp - Auto-tuning evaluation over the benchmark suite ---===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Evaluates the rewrite-space auto-tuner (src/tune/) over the twelve
// benchmark workloads: for each one the tuner must find a lowering whose
// simulated cost is at least as good as the default `lowerProgram`
// lowering, and the sweep reports how many it strictly improved. Results
// go to BENCH_tuning.json (override with --json PATH); --quick restricts
// the sweep to four representative workloads for the test tier.
//
//===----------------------------------------------------------------------===//

#include "tune/Tuner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace lift;

namespace {

std::string jsonNum(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = "BENCH_tuning.json";
  bool Quick = false;
  tune::TuneConfig Config;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--quick")
      Quick = true;
    else if (A == "--json" && I + 1 < argc)
      JsonPath = argv[++I];
    else if (A == "--threads" && I + 1 < argc)
      Config.Threads = std::atoi(argv[++I]);
    else if (A == "--no-cache")
      Config.UseCache = false;
    else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--no-cache] [--threads N] "
                   "[--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<tune::Workload> All = tune::allWorkloads();
  std::vector<const tune::Workload *> Set;
  for (const tune::Workload &W : All) {
    if (Quick && W.Name != "nn" && W.Name != "nbody" && W.Name != "gemv" &&
        W.Name != "convolution")
      continue;
    Set.push_back(&W);
  }

  std::printf("=== Auto-tuning the lowering of %zu benchmarks ===\n\n",
              Set.size());
  std::printf("%-14s %14s %14s %9s %11s\n", "workload", "default cost",
              "best cost", "speedup", "evaluated");

  std::string Json = "{\n  \"benchmarks\": [";
  unsigned StrictlyBetter = 0;
  bool Ok = true;
  bool First = true;
  for (const tune::Workload *W : Set) {
    DiagnosticEngine Engine;
    Expected<tune::TuneResult> R = tune::tuneWorkload(*W, Config, Engine);
    if (!R) {
      std::fprintf(stderr, "%serror: tuning '%s' failed\n",
                   Engine.render().c_str(), W->Name.c_str());
      Ok = false;
      continue;
    }
    if (!R->HasBest || R->BestCost > R->DefaultCost) {
      std::fprintf(stderr,
                   "error: '%s': no lowering at least as good as the "
                   "default\n",
                   W->Name.c_str());
      Ok = false;
    }
    double Speedup =
        R->HasBest && R->BestCost > 0 ? R->DefaultCost / R->BestCost : 0;
    StrictlyBetter += R->HasBest && R->BestCost < R->DefaultCost;
    std::printf("%-14s %14.0f %14.0f %8.3fx %5u/%-5u\n", R->Workload.c_str(),
                R->DefaultCost, R->HasBest ? R->BestCost : 0.0, Speedup,
                R->CandidatesEvaluated, R->CandidatesEnumerated);

    Json += First ? "\n    {" : ",\n    {";
    First = false;
    Json += "\"name\": \"" + R->Workload + "\"";
    Json += ", \"default_cost\": " + jsonNum(R->DefaultCost);
    Json += ", \"best_cost\": " + jsonNum(R->HasBest ? R->BestCost : 0.0);
    Json += ", \"speedup\": " + jsonNum(Speedup);
    Json += ", \"candidates_enumerated\": " +
            std::to_string(R->CandidatesEnumerated);
    Json += ", \"candidates_evaluated\": " +
            std::to_string(R->CandidatesEvaluated);
    Json += std::string(", \"cache_hit\": ") +
            (R->CacheHit ? "true" : "false");
    Json += ", \"best\": \"" + (R->HasBest ? R->Best.key() : "none") + "\"";
    Json += "}";
  }
  Json += "\n  ],\n  \"strictly_better\": " +
          std::to_string(StrictlyBetter) + "\n}\n";

  std::ofstream Out(JsonPath, std::ios::trunc);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", JsonPath.c_str());
    return 1;
  }
  Out << Json;

  std::printf("\n%u of %zu workloads strictly improved over the default "
              "lowering; results in %s\n",
              StrictlyBetter, Set.size(), JsonPath.c_str());
  return Ok ? 0 : 1;
}
