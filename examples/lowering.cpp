//===- lowering.cpp - High-level to low-level lowering example -----------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Demonstrates the full Lift pipeline of Figure 1: a portable high-level
// program (generic map / reduce, no mapping decisions) is lowered to two
// different low-level programs with the rewrite rules (the prior-work
// layer, reference [18] of the paper), and each is compiled by the code
// generator described in the paper and executed on the simulated device.
//
//===----------------------------------------------------------------------===//

#include "codegen/Compiler.h"
#include "ir/DSL.h"
#include "ir/Prelude.h"
#include "ir/Printer.h"
#include "ocl/Runtime.h"
#include "rewrite/Rules.h"

#include <cmath>
#include <cstdio>
#include <vector>

using namespace lift;
using namespace lift::ir;
using namespace lift::ir::dsl;

namespace {

constexpr int64_t N = 1024;

/// Portable: scale and offset every element (two fusable maps).
LambdaPtr buildHighLevel() {
  FunDeclPtr Scale = userFun("scale", {"x"}, {float32()}, float32(),
                             "return 3.0f * x;");
  FunDeclPtr Offset = userFun("offset", {"x"}, {float32()}, float32(),
                              "return x + 1.0f;");
  ParamPtr X = param("x", arrayOf(float32(), arith::cst(N)));
  return lambda({X}, pipe(ExprPtr(X), map(Scale), map(Offset)));
}

int runLowered(const LambdaPtr &Lowered, const char *Label,
               std::array<int64_t, 3> Global, std::array<int64_t, 3> Local,
               const std::vector<float> &In, const std::vector<float> &Ref) {
  std::printf("=== %s ===\n%s\n", Label, printProgram(Lowered).c_str());

  codegen::CompilerOptions O;
  O.GlobalSize = Global;
  O.LocalSize = Local;
  O.KernelName = "lowered";
  codegen::CompiledKernel K = codegen::compile(Lowered, O);
  std::printf("%s\n", K.Source.c_str());

  ocl::Buffer XB = ocl::Buffer::ofFloats(In);
  ocl::Buffer Out = ocl::Buffer::zeros(In.size());
  ocl::CostReport Cost =
      ocl::launch(K, {&XB, &Out}, {}, ocl::LaunchConfig::fromOptions(O));
  auto R = Out.toFloats();
  double MaxErr = 0;
  for (size_t I = 0; I != Ref.size(); ++I)
    MaxErr = std::fmax(MaxErr, std::fabs(R[I] - Ref[I]));
  std::printf("%s: cost %.0f, max abs error %.3g\n\n", Label, Cost.cost(),
              MaxErr);
  return MaxErr < 1e-5 ? 0 : 1;
}

} // namespace

int main() {
  LambdaPtr High = buildHighLevel();
  std::printf("=== Portable high-level program ===\n%s\n",
              printProgram(High).c_str());

  std::vector<float> In(N), Ref(N);
  for (int64_t I = 0; I != N; ++I) {
    In[I] = static_cast<float>(I % 37) / 5.f;
    Ref[I] = 3.f * In[I] + 1.f;
  }

  // Strategy A: one flat global thread per element.
  LambdaPtr Glb = rewrite::lowerProgram(High, /*UseWorkGroups=*/false);
  int RC = runLowered(Glb, "Lowered with mapGlb", {256, 1, 1}, {32, 1, 1},
                      In, Ref);

  // Strategy B: the work-group hierarchy with chunks of 64.
  LambdaPtr Wrg = rewrite::lowerProgram(High, /*UseWorkGroups=*/true,
                                        arith::cst(64));
  RC |= runLowered(Wrg, "Lowered with mapWrg(mapLcl)", {N, 1, 1},
                   {64, 1, 1}, In, Ref);
  return RC;
}
