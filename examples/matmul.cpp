//===- matmul.cpp - Tiled matrix multiplication example -----------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Builds a tiled matrix multiplication in the low-level Lift IL — 2D work
// groups, cooperative local-memory staging of the A and B tiles, and an
// untiling join/transpose composition on the output path — compiles it at
// the three optimization levels of Figure 8, validates each against a host
// reference, and reports the simulated costs.
//
//===----------------------------------------------------------------------===//

#include "codegen/Compiler.h"
#include "ir/DSL.h"
#include "ir/Prelude.h"
#include "ir/Printer.h"
#include "ocl/Runtime.h"

#include <cmath>
#include <cstdio>
#include <vector>

using namespace lift;
using namespace lift::ir;
using namespace lift::ir::dsl;

namespace {

constexpr int64_t Size = 64; // M = N = K
constexpr int64_t Tile = 16;

LambdaPtr buildTiledMM() {
  ParamPtr A =
      param("A", array2D(float32(), arith::cst(Size), arith::cst(Size)));
  ParamPtr Bt =
      param("Bt", array2D(float32(), arith::cst(Size), arith::cst(Size)));
  FunDeclPtr MAdd = prelude::multAndSumUpFun();
  FunDeclPtr IdF = prelude::idFloatFun();
  ParamPtr ALocal = param("aLocal");
  ParamPtr BLocal = param("bLocal");

  auto CopyTile = [&]() {
    return toLocal(mapLcl(1, fun([&](ExprPtr Row) {
                     return pipe(Row, split(Size / Tile),
                                 mapLcl(0, mapSeq(IdF)), join());
                   })));
  };

  LambdaPtr InnerWg = fun([&](ExprPtr ATile) {
    return pipe(
        pipe(ExprPtr(Bt), split(Tile)), mapWrg(0, fun([&](ExprPtr BTile) {
          ExprPtr ACopy = pipe(ATile, CopyTile());
          ExprPtr BCopy = pipe(BTile, CopyTile());
          ExprPtr Compute = pipe(
              ExprPtr(ALocal), mapLcl(1, fun([&](ExprPtr ARow) {
                return pipe(
                    ExprPtr(BLocal), mapLcl(0, fun([&](ExprPtr BRow) {
                      return pipe(call(reduceSeq(MAdd),
                                       {litFloat(0.0f),
                                        call(zip(), {ARow, BRow})}),
                                  toGlobal(mapSeq(IdF)));
                    })),
                    join());
              })));
          return call(lambda({ALocal, BLocal}, Compute), {ACopy, BCopy});
        })));
  });

  // Untile: [M/T][N/T][T][T] -> [M][N] written in place via output views.
  ExprPtr Result =
      pipe(call(mapWrg(1, InnerWg), {pipe(ExprPtr(A), split(Tile))}),
           mapSeq(fun([&](ExprPtr T) {
             return pipe(T, transpose(), mapSeq(join()));
           })),
           join());
  return lambda({A, Bt}, Result);
}

} // namespace

int main() {
  LambdaPtr Prog = buildTiledMM();
  std::printf("=== Lift IL (tiled matrix multiplication) ===\n%s\n",
              printProgram(Prog).c_str());

  // Host data; B is pre-transposed as the CLBlast kernels assume.
  std::vector<float> A(Size * Size), B(Size * Size), Bt(Size * Size);
  for (int64_t I = 0; I != Size * Size; ++I) {
    A[I] = static_cast<float>((I * 7 % 23) - 11) / 9.f;
    B[I] = static_cast<float>((I * 13 % 19) - 9) / 7.f;
  }
  for (int64_t P = 0; P != Size; ++P)
    for (int64_t J = 0; J != Size; ++J)
      Bt[J * Size + P] = B[P * Size + J];

  std::vector<float> Ref(Size * Size, 0.f);
  for (int64_t I = 0; I != Size; ++I)
    for (int64_t J = 0; J != Size; ++J) {
      double S = 0;
      for (int64_t P = 0; P != Size; ++P)
        S += static_cast<double>(A[I * Size + P]) * B[P * Size + J];
      Ref[I * Size + J] = static_cast<float>(S);
    }

  struct Config {
    const char *Name;
    bool Barrier, Cfs, Aas;
  } Configs[] = {{"None", false, false, false},
                 {"BE+CFS", true, true, false},
                 {"BE+CFS+AAS", true, true, true}};

  for (const Config &C : Configs) {
    codegen::CompilerOptions O;
    O.GlobalSize = {Size, Size, 1};
    O.LocalSize = {Tile, Tile, 1};
    O.BarrierElimination = C.Barrier;
    O.ControlFlowSimplification = C.Cfs;
    O.ArrayAccessSimplification = C.Aas;
    O.KernelName = "mm";
    codegen::CompiledKernel K = codegen::compile(Prog, O);
    if (C.Aas)
      std::printf("=== Generated kernel (%s) ===\n%s\n", C.Name,
                  K.Source.c_str());

    ocl::Buffer AB = ocl::Buffer::ofFloats(A);
    ocl::Buffer BB = ocl::Buffer::ofFloats(Bt);
    ocl::Buffer CB = ocl::Buffer::zeros(Size * Size);
    ocl::CostReport Cost = ocl::launch(K, {&AB, &BB, &CB}, {},
                                       ocl::LaunchConfig::fromOptions(O));
    auto Out = CB.toFloats();
    double MaxErr = 0;
    for (size_t I = 0; I != Ref.size(); ++I)
      MaxErr = std::fmax(MaxErr, std::fabs(Out[I] - Ref[I]));
    std::printf("%-12s cost %12.0f  max abs error %.3g\n", C.Name,
                Cost.cost(), MaxErr);
    if (MaxErr > 1e-3)
      return 1;
  }
  return 0;
}
