//===- nbody.cpp - N-Body simulation example ----------------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// The N-Body simulation of the paper's evaluation (section 7.2) as a
// standalone example: softened gravity over float4 particles, in the
// NVIDIA SDK style — every work group cooperatively stages the particle
// positions in local memory, and each thread folds the interactions with
// its own particle threaded through the reduction accumulator. Runs a few
// integration steps and prints energy-like diagnostics.
//
//===----------------------------------------------------------------------===//

#include "codegen/Compiler.h"
#include "ir/DSL.h"
#include "ir/Prelude.h"
#include "ocl/Runtime.h"

#include <cmath>
#include <cstdio>
#include <vector>

using namespace lift;
using namespace lift::ir;
using namespace lift::ir::dsl;

namespace {

constexpr int64_t N = 256;
constexpr int64_t L = 64;
constexpr float Dt = 0.01f;

TypePtr f4() { return vectorOf(ScalarKind::Float, 4); }

LambdaPtr buildAccelerationKernel() {
  ParamPtr Pos = param("pos", arrayOf(f4(), arith::cst(N)));
  TypePtr AccTy = tupleOf({f4(), f4()});

  FunDeclPtr Init = userFun("initAcc", {"p"}, {f4()}, AccTy,
                            "return (Tuple2_float4_float4){"
                            "(float4)(0.0f, 0.0f, 0.0f, 0.0f), p};");
  FunDeclPtr Step = userFun(
      "interaction", {"state", "q"}, {AccTy, f4()}, AccTy,
      "float4 acc = state._0;"
      "float4 p = state._1;"
      "float rx = q.x - p.x;"
      "float ry = q.y - p.y;"
      "float rz = q.z - p.z;"
      "float d2 = rx * rx + ry * ry + rz * rz + 0.01f;"
      "float inv = rsqrt(d2);"
      "float s = q.w * inv * inv * inv;"
      "return (Tuple2_float4_float4){(float4)(acc.x + rx * s,"
      " acc.y + ry * s, acc.z + rz * s, 0.0f), p};");
  FunDeclPtr GetAcc = userFun("getAcc", {"state"}, {AccTy}, f4(),
                              "return state._0;");
  FunDeclPtr IdF4 = prelude::idFloat4Fun();

  ParamPtr LocalPos = param("localPos");
  LambdaPtr PerChunk = fun([&](ExprPtr Chunk) {
    ExprPtr Copy = pipe(ExprPtr(Pos), split(N / L),
                        toLocal(mapLcl(mapSeq(IdF4))), join());
    ExprPtr Compute =
        pipe(Chunk, mapLcl(fun([&](ExprPtr P) {
               return pipe(call(reduceSeq(Step),
                                {call(Init, {P}), LocalPos}),
                           toGlobal(mapSeq(GetAcc)));
             })),
             join());
    return call(lambda({LocalPos}, Compute), {Copy});
  });

  return lambda({Pos},
                pipe(ExprPtr(Pos), split(L), mapWrg(PerChunk), join()));
}

} // namespace

int main() {
  codegen::CompilerOptions Opts;
  Opts.GlobalSize = {N, 1, 1};
  Opts.LocalSize = {L, 1, 1};
  Opts.KernelName = "nbodyAcc";
  codegen::CompiledKernel K = codegen::compile(buildAccelerationKernel(),
                                               Opts);

  // A little plummer-ish cluster.
  std::vector<float> Pos(4 * N), Vel(4 * N, 0.f);
  uint64_t S = 0x5eed;
  auto Rnd = [&S]() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return static_cast<float>(static_cast<int64_t>(S % 2000) - 1000) /
           1000.f;
  };
  for (int64_t I = 0; I != N; ++I) {
    Pos[4 * I] = Rnd();
    Pos[4 * I + 1] = Rnd();
    Pos[4 * I + 2] = Rnd();
    Pos[4 * I + 3] = 1.0f / static_cast<float>(N); // mass
  }

  ocl::CostReport Total;
  for (int StepIdx = 0; StepIdx != 4; ++StepIdx) {
    ocl::Buffer PosB = ocl::Buffer::ofVectors(Pos, 4);
    ocl::Buffer AccB = ocl::Buffer::zeros(N);
    Total += ocl::launch(K, {&PosB, &AccB}, {},
                         ocl::LaunchConfig::fromOptions(Opts));
    std::vector<float> Acc = AccB.toFlatFloats();

    // Leapfrog-ish host integration.
    double MeanSpeed = 0;
    for (int64_t I = 0; I != N; ++I) {
      for (int C = 0; C != 3; ++C) {
        Vel[4 * I + C] += Dt * Acc[4 * I + C];
        Pos[4 * I + C] += Dt * Vel[4 * I + C];
      }
      MeanSpeed += std::sqrt(
          Vel[4 * I] * Vel[4 * I] + Vel[4 * I + 1] * Vel[4 * I + 1] +
          Vel[4 * I + 2] * Vel[4 * I + 2]);
    }
    std::printf("step %d: mean speed %.6f\n", StepIdx,
                MeanSpeed / static_cast<double>(N));
  }

  std::printf("4 steps of %lld particles: simulated cost %.0f "
              "(global %llu, local %llu)\n",
              static_cast<long long>(N), Total.cost(),
              static_cast<unsigned long long>(Total.GlobalAccesses),
              static_cast<unsigned long long>(Total.LocalAccesses));
  return 0;
}
