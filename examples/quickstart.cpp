//===- quickstart.cpp - Lift-cpp quickstart: partial dot product ------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Builds the partial dot product of Listing 1 of the paper in the Lift IL,
// compiles it to an OpenCL kernel (printed to stdout; compare Figure 7),
// runs it on the simulated OpenCL device and validates the result against
// a plain C++ loop.
//
//===----------------------------------------------------------------------===//

#include "codegen/Compiler.h"
#include "ir/DSL.h"
#include "ir/Prelude.h"
#include "ir/Printer.h"
#include "ocl/Runtime.h"

#include <cmath>
#include <cstdio>
#include <vector>

using namespace lift;
using namespace lift::ir;
using namespace lift::ir::dsl;

/// Listing 1: partialDot(x: [float]N, y: [float]N).
static LambdaPtr buildPartialDot(const arith::Expr &N) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  ParamPtr Y = param("y", arrayOf(float32(), N));

  FunDeclPtr MultAndSumUp = prelude::multAndSumUpFun();
  FunDeclPtr Add = prelude::addFun();
  FunDeclPtr IdF = prelude::idFloatFun();

  // One work group reduces a chunk of 128 elements to a single value.
  ExprPtr Body = pipe(
      call(zip(), {X, Y}), split(128),
      mapWrg(0, fun([&](ExprPtr Chunk) {
               return pipe(
                   Chunk,
                   // 1) pairwise multiply-add into local memory
                   split(2),
                   mapLcl(0, fun([&](ExprPtr Pair) {
                            return pipe(call(reduceSeq(MultAndSumUp),
                                             {litFloat(0.0f), Pair}),
                                        toLocal(mapSeq(IdF)));
                          })),
                   join(),
                   // 2) iterative halving in local memory
                   iterate(6, fun([&](ExprPtr Arr) {
                             return pipe(
                                 Arr, split(2),
                                 mapLcl(0, fun([&](ExprPtr Two) {
                                          return pipe(
                                              call(reduceSeq(Add),
                                                   {litFloat(0.0f), Two}),
                                              toLocal(mapSeq(IdF)));
                                        })),
                                 join());
                           })),
                   // 3) copy the result back to global memory
                   split(1), toGlobal(mapLcl(0, mapSeq(IdF))), join());
             })),
      join());

  return lambda({X, Y}, Body);
}

int main() {
  const int64_t N = 8192;
  auto NVar = arith::sizeVar("N");
  LambdaPtr Prog = buildPartialDot(NVar);

  std::printf("=== Lift IL ===\n%s\n", printProgram(Prog).c_str());

  codegen::CompilerOptions Opts;
  Opts.GlobalSize = {4096, 1, 1};
  Opts.LocalSize = {64, 1, 1};
  Opts.KernelName = "partialDot";
  codegen::CompiledKernel K = codegen::compile(Prog, Opts);

  std::printf("=== Generated OpenCL (compare Figure 7) ===\n%s\n",
              K.Source.c_str());

  // Host data.
  std::vector<float> X(N), Y(N);
  for (int64_t I = 0; I != N; ++I) {
    X[I] = static_cast<float>(std::sin(0.01 * static_cast<double>(I)));
    Y[I] = static_cast<float>(std::cos(0.013 * static_cast<double>(I)));
  }

  ocl::Buffer XB = ocl::Buffer::ofFloats(X);
  ocl::Buffer YB = ocl::Buffer::ofFloats(Y);
  ocl::Buffer Out = ocl::Buffer::zeros(N / 128);

  ocl::CostReport Cost = ocl::launch(K, {&XB, &YB, &Out}, {{"N", N}},
                                     ocl::LaunchConfig::fromOptions(Opts));

  // Validate each work group's partial sum.
  std::vector<float> Result = Out.toFloats();
  double MaxErr = 0;
  for (int64_t Wg = 0; Wg != N / 128; ++Wg) {
    double Ref = 0;
    for (int64_t I = 0; I != 128; ++I)
      Ref += static_cast<double>(X[Wg * 128 + I]) *
             static_cast<double>(Y[Wg * 128 + I]);
    MaxErr = std::fmax(MaxErr,
                       std::fabs(Ref - static_cast<double>(Result[Wg])));
  }

  std::printf("partial sums: %lld work groups, max abs error %.3g\n",
              static_cast<long long>(N / 128), MaxErr);
  std::printf("simulated cost: %.0f (global %llu, local %llu, barriers "
              "%llu, div/mod %llu)\n",
              Cost.cost(),
              static_cast<unsigned long long>(Cost.GlobalAccesses),
              static_cast<unsigned long long>(Cost.LocalAccesses),
              static_cast<unsigned long long>(Cost.Barriers),
              static_cast<unsigned long long>(Cost.DivModOps));
  return MaxErr < 1e-3 ? 0 : 1;
}
