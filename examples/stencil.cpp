//===- stencil.cpp - 2D stencil (slide) example --------------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// A 2D 3x3 box blur built from the slide pattern: 2D windows are created
// by the map(slide) / slide / map(transpose) composition of section 7.2,
// and each window is reduced against the stencil weights. Demonstrates
// pure-map views: the window construction emits no code at all — it only
// shapes the array accesses.
//
//===----------------------------------------------------------------------===//

#include "codegen/Compiler.h"
#include "ir/DSL.h"
#include "ir/Prelude.h"
#include "ocl/Runtime.h"

#include <cmath>
#include <cstdio>
#include <vector>

using namespace lift;
using namespace lift::ir;
using namespace lift::ir::dsl;

int main() {
  constexpr int64_t Rows = 66, Cols = 34;

  ParamPtr In =
      param("in", array2D(float32(), arith::cst(Rows), arith::cst(Cols)));
  ParamPtr W = param("w", arrayOf(float32(), arith::cst(9)));
  FunDeclPtr MAdd = prelude::multAndSumUpFun();
  FunDeclPtr IdF = prelude::idFloatFun();

  // slide2d: [[f]C]R -> [[ [[f]3]3 ]C-2]R-2, as views only.
  LambdaPtr Prog = lambda(
      {In, W},
      pipe(ExprPtr(In), mapSeq(slide(3, 1)), slide(3, 1),
           mapSeq(transpose()), mapGlb(0, fun([&](ExprPtr WinRow) {
             return pipe(WinRow, mapSeq(fun([&](ExprPtr Win) {
                           return pipe(
                               call(reduceSeq(MAdd),
                                    {litFloat(0.0f),
                                     call(zip(), {pipe(Win, join()), W})}),
                               toGlobal(mapSeq(IdF)));
                         })),
                         join());
           })),
           join()));

  codegen::CompilerOptions O;
  O.GlobalSize = {Rows - 2, 1, 1};
  O.LocalSize = {16, 1, 1};
  O.KernelName = "blur3x3";
  codegen::CompiledKernel K = codegen::compile(Prog, O);
  std::printf("=== Generated stencil kernel ===\n%s\n", K.Source.c_str());

  std::vector<float> Img(Rows * Cols);
  for (size_t I = 0; I != Img.size(); ++I)
    Img[I] = static_cast<float>((I * 31) % 17) / 16.f;
  std::vector<float> Weights(9, 1.f / 9.f);

  ocl::Buffer ImgB = ocl::Buffer::ofFloats(Img);
  ocl::Buffer WB = ocl::Buffer::ofFloats(Weights);
  ocl::Buffer Out = ocl::Buffer::zeros((Rows - 2) * (Cols - 2));
  ocl::CostReport Cost = ocl::launch(K, {&ImgB, &WB, &Out}, {},
                                     ocl::LaunchConfig::fromOptions(O));

  double MaxErr = 0;
  auto R = Out.toFloats();
  for (int64_t I = 0; I + 2 < Rows; ++I)
    for (int64_t J = 0; J + 2 < Cols; ++J) {
      double S = 0;
      for (int64_t A = 0; A != 3; ++A)
        for (int64_t B = 0; B != 3; ++B)
          S += Img[(I + A) * Cols + J + B] / 9.0;
      MaxErr = std::fmax(
          MaxErr, std::fabs(S - R[I * (Cols - 2) + J]));
    }

  std::printf("blur %lldx%lld: cost %.0f, max abs error %.3g\n",
              static_cast<long long>(Rows - 2),
              static_cast<long long>(Cols - 2), Cost.cost(), MaxErr);
  return MaxErr < 1e-5 ? 0 : 1;
}
