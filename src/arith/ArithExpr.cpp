//===- ArithExpr.cpp - Symbolic arithmetic expressions --------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simplifying constructors for arithmetic expressions. The canonical forms
/// are: sums of products with collected coefficients, products with constant
/// coefficient first and like factors collected into powers, and div/mod
/// nodes reduced by the rules (1)-(6) of section 5.3 of the paper.
///
//===----------------------------------------------------------------------===//

#include "arith/ArithExpr.h"

#include "arith/Bounds.h"
#include "support/Casting.h"
#include "support/Error.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <map>

using namespace lift;
using namespace lift::arith;

//===----------------------------------------------------------------------===//
// Wrapping constant folds
//===----------------------------------------------------------------------===//

/// Constant folding wraps on overflow, matching evaluate() (Eval.cpp) and
/// the two's-complement arithmetic of the generated OpenCL code. Folding
/// with plain signed ops would be undefined behaviour for inputs near
/// INT64_MAX — exactly the values the crash-resilience fuzzer feeds in.
static int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}

static int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}

Node::~Node() = default;

static thread_local bool SimplifyEnabled = true;

SimplifyGuard::SimplifyGuard(bool Enable) : Previous(SimplifyEnabled) {
  SimplifyEnabled = Enable;
}

SimplifyGuard::~SimplifyGuard() { SimplifyEnabled = Previous; }

bool SimplifyGuard::isEnabled() { return SimplifyEnabled; }

//===----------------------------------------------------------------------===//
// Structural comparison
//===----------------------------------------------------------------------===//

static int compareVectors(const std::vector<Expr> &A,
                          const std::vector<Expr> &B) {
  if (A.size() != B.size())
    return A.size() < B.size() ? -1 : 1;
  for (size_t I = 0, E = A.size(); I != E; ++I)
    if (int C = compare(A[I], B[I]))
      return C;
  return 0;
}

static int compareInt(int64_t A, int64_t B) {
  return A < B ? -1 : (A > B ? 1 : 0);
}

int arith::compare(const Expr &A, const Expr &B) {
  assert(A && B && "comparing null arithmetic expressions");
  if (A.get() == B.get())
    return 0;
  if (A->getKind() != B->getKind())
    return static_cast<int>(A->getKind()) < static_cast<int>(B->getKind())
               ? -1
               : 1;
  switch (A->getKind()) {
  case ExprKind::Cst:
    return compareInt(cast<CstNode>(A.get())->getValue(),
                      cast<CstNode>(B.get())->getValue());
  case ExprKind::Var:
    return compareInt(cast<VarNode>(A.get())->getId(),
                      cast<VarNode>(B.get())->getId());
  case ExprKind::Sum:
    return compareVectors(cast<SumNode>(A.get())->getOperands(),
                          cast<SumNode>(B.get())->getOperands());
  case ExprKind::Prod:
    return compareVectors(cast<ProdNode>(A.get())->getOperands(),
                          cast<ProdNode>(B.get())->getOperands());
  case ExprKind::IntDiv: {
    const auto *DA = cast<IntDivNode>(A.get());
    const auto *DB = cast<IntDivNode>(B.get());
    if (int C = compare(DA->getNumerator(), DB->getNumerator()))
      return C;
    return compare(DA->getDenominator(), DB->getDenominator());
  }
  case ExprKind::Mod: {
    const auto *MA = cast<ModNode>(A.get());
    const auto *MB = cast<ModNode>(B.get());
    if (int C = compare(MA->getDividend(), MB->getDividend()))
      return C;
    return compare(MA->getDivisor(), MB->getDivisor());
  }
  case ExprKind::Pow: {
    const auto *PA = cast<PowNode>(A.get());
    const auto *PB = cast<PowNode>(B.get());
    if (int C = compare(PA->getBase(), PB->getBase()))
      return C;
    return compareInt(PA->getExponent(), PB->getExponent());
  }
  case ExprKind::Lookup: {
    const auto *LA = cast<LookupNode>(A.get());
    const auto *LB = cast<LookupNode>(B.get());
    if (int C = compareInt(LA->getTableId(), LB->getTableId()))
      return C;
    return compare(LA->getIndex(), LB->getIndex());
  }
  }
  lift_unreachable("unhandled expression kind");
}

bool arith::equals(const Expr &A, const Expr &B) { return compare(A, B) == 0; }

std::optional<int64_t> arith::asConstant(const Expr &E) {
  if (const auto *C = dyn_cast<CstNode>(E.get()))
    return C->getValue();
  return std::nullopt;
}

bool arith::isConstant(const Expr &E, int64_t V) {
  auto C = asConstant(E);
  return C && *C == V;
}

//===----------------------------------------------------------------------===//
// Leaf factories
//===----------------------------------------------------------------------===//

Expr arith::cst(int64_t V) { return std::make_shared<CstNode>(V); }

static std::atomic<unsigned> NextVarId{1};

std::shared_ptr<const VarNode> arith::var(const std::string &Name) {
  return std::make_shared<VarNode>(NextVarId++, Name, Range(cst(0), nullptr));
}

std::shared_ptr<const VarNode> arith::var(const std::string &Name, Expr Min,
                                          Expr Max) {
  return std::make_shared<VarNode>(NextVarId++, Name,
                                   Range(std::move(Min), std::move(Max)));
}

std::shared_ptr<const VarNode> arith::sizeVar(const std::string &Name) {
  return std::make_shared<VarNode>(NextVarId++, Name, Range(cst(1), nullptr));
}

Expr arith::lookup(unsigned TableId, const std::string &TableName,
                   Expr Index) {
  return std::make_shared<LookupNode>(TableId, TableName, std::move(Index));
}

//===----------------------------------------------------------------------===//
// Term decomposition helpers
//===----------------------------------------------------------------------===//

namespace {

/// A sum term viewed as Coefficient * Key, where Key is null for the
/// constant term and otherwise a canonical non-constant factor product.
struct Term {
  int64_t Coefficient = 1;
  Expr Key; // null means constant term
};

struct ExprLess {
  bool operator()(const Expr &A, const Expr &B) const {
    return compare(A, B) < 0;
  }
};

} // namespace

/// Builds a canonical key product from sorted non-constant factors; a single
/// factor is returned as-is.
static Expr makeKeyProd(std::vector<Expr> Factors) {
  assert(!Factors.empty() && "key product needs at least one factor");
  if (Factors.size() == 1)
    return Factors.front();
  std::sort(Factors.begin(), Factors.end(),
            [](const Expr &A, const Expr &B) { return compare(A, B) < 0; });
  return std::make_shared<ProdNode>(std::move(Factors));
}

/// Splits a term into its constant coefficient and canonical key.
static Term decomposeTerm(const Expr &E) {
  Term T;
  if (auto C = asConstant(E)) {
    T.Coefficient = *C;
    T.Key = nullptr;
    return T;
  }
  if (const auto *P = dyn_cast<ProdNode>(E.get())) {
    int64_t Coeff = 1;
    std::vector<Expr> Rest;
    for (const Expr &Op : P->getOperands()) {
      if (auto C = asConstant(Op))
        Coeff = wrapMul(Coeff, *C);
      else
        Rest.push_back(Op);
    }
    if (Rest.empty()) {
      T.Coefficient = Coeff;
      T.Key = nullptr;
      return T;
    }
    T.Coefficient = Coeff;
    T.Key = makeKeyProd(std::move(Rest));
    return T;
  }
  T.Coefficient = 1;
  T.Key = E;
  return T;
}

/// Attempts to divide \p T exactly by \p D; returns null on failure.
/// Handles constant/constant, products containing the divisor (or a power of
/// it), and term-wise division of sums.
static Expr tryExactDivide(const Expr &T, const Expr &D) {
  if (equals(T, D))
    return cst(1);

  auto CT = asConstant(T);
  auto CD = asConstant(D);
  if (CD && *CD == 0)
    return nullptr;
  if (CT && CD)
    return (*CT % *CD == 0) ? cst(*CT / *CD) : nullptr;

  // Divide a sum term-wise: every term must divide exactly.
  if (const auto *S = dyn_cast<SumNode>(T.get())) {
    std::vector<Expr> Quotients;
    for (const Expr &Op : S->getOperands()) {
      Expr Q = tryExactDivide(Op, D);
      if (!Q)
        return nullptr;
      Quotients.push_back(std::move(Q));
    }
    return sum(std::move(Quotients));
  }

  // Divide by a product: divide by each factor in turn.
  if (const auto *PD = dyn_cast<ProdNode>(D.get())) {
    Expr Cur = T;
    for (const Expr &F : PD->getOperands()) {
      Cur = tryExactDivide(Cur, F);
      if (!Cur)
        return nullptr;
    }
    return Cur;
  }

  // Divide by a power: divide by the base, exponent many times.
  if (const auto *PWD = dyn_cast<PowNode>(D.get())) {
    Expr Cur = T;
    for (int64_t I = 0, E = PWD->getExponent(); I != E; ++I) {
      Cur = tryExactDivide(Cur, PWD->getBase());
      if (!Cur)
        return nullptr;
    }
    return Cur;
  }

  // Divide a power of the divisor.
  if (const auto *PT = dyn_cast<PowNode>(T.get()))
    if (equals(PT->getBase(), D))
      return pow(PT->getBase(), PT->getExponent() - 1);

  // Divide a product: strip one matching factor, power, or divide the
  // constant coefficient.
  if (const auto *PT = dyn_cast<ProdNode>(T.get())) {
    const std::vector<Expr> &Ops = PT->getOperands();
    for (size_t I = 0, E = Ops.size(); I != E; ++I) {
      Expr Q;
      if (equals(Ops[I], D))
        Q = cst(1);
      else if (const auto *PW = dyn_cast<PowNode>(Ops[I].get());
               PW && equals(PW->getBase(), D))
        Q = pow(PW->getBase(), PW->getExponent() - 1);
      else if (CD && asConstant(Ops[I]) && *asConstant(Ops[I]) % *CD == 0)
        Q = cst(*asConstant(Ops[I]) / *CD);
      else
        continue;
      std::vector<Expr> Rest;
      for (size_t J = 0, F = Ops.size(); J != F; ++J)
        if (J != I)
          Rest.push_back(Ops[J]);
      Rest.push_back(std::move(Q));
      return prod(std::move(Rest));
    }
    return nullptr;
  }

  return nullptr;
}

//===----------------------------------------------------------------------===//
// Sum
//===----------------------------------------------------------------------===//

static void flattenSum(const Expr &E, std::vector<Expr> &Out) {
  if (const auto *S = dyn_cast<SumNode>(E.get())) {
    for (const Expr &Op : S->getOperands())
      flattenSum(Op, Out);
    return;
  }
  Out.push_back(E);
}

/// Rebuilds Coefficient * Key as an expression.
static Expr termToExpr(int64_t Coefficient, const Expr &Key) {
  if (!Key)
    return cst(Coefficient);
  if (Coefficient == 1)
    return Key;
  return mul(cst(Coefficient), Key);
}

Expr arith::sum(std::vector<Expr> Ops) {
  if (Ops.empty())
    return cst(0);
  if (Ops.size() == 1)
    return Ops.front();
  if (!SimplifyEnabled)
    return std::make_shared<SumNode>(std::move(Ops));

  // Flatten and collect like terms.
  std::vector<Expr> Flat;
  for (const Expr &Op : Ops)
    flattenSum(Op, Flat);

  int64_t Constant = 0;
  std::map<Expr, int64_t, ExprLess> Coeffs;
  for (const Expr &Op : Flat) {
    Term T = decomposeTerm(Op);
    if (!T.Key)
      Constant = wrapAdd(Constant, T.Coefficient);
    else
      Coeffs[T.Key] = wrapAdd(Coeffs[T.Key], T.Coefficient);
  }

  // Rule (4): c*(x/y)*y + c*(x mod y) = c*x. Find a Mod key and the
  // matching (x/y)*y key with an equal coefficient; replace both by c*x
  // and restart collection on the rebuilt operand list.
  for (auto &[Key, Coeff] : Coeffs) {
    if (Coeff == 0)
      continue;
    const auto *M = dyn_cast<ModNode>(Key.get());
    if (!M)
      continue;
    Expr DivTerm = mul(intDiv(M->getDividend(), M->getDivisor()),
                       M->getDivisor());
    Term DT = decomposeTerm(DivTerm);
    if (!DT.Key)
      continue;
    // c * (x mod y) pairs with c * (x/y) * y; with a constant y the
    // div-key carries the extra constant factor in its coefficient.
    auto It = Coeffs.find(DT.Key);
    if (It == Coeffs.end() || It->second != wrapMul(Coeff, DT.Coefficient) ||
        It->first.get() == Key.get())
      continue;
    // Matched: rebuild the whole operand list with the pair replaced.
    int64_t C = Coeff;
    std::vector<Expr> Rebuilt;
    Rebuilt.push_back(cst(Constant));
    Rebuilt.push_back(mul(cst(C), M->getDividend()));
    for (const auto &[OtherKey, OtherCoeff] : Coeffs) {
      if (OtherKey.get() == Key.get() || OtherKey.get() == It->first.get())
        continue;
      if (OtherCoeff != 0)
        Rebuilt.push_back(termToExpr(OtherCoeff, OtherKey));
    }
    return sum(std::move(Rebuilt));
  }

  std::vector<Expr> Result;
  for (const auto &[Key, Coeff] : Coeffs)
    if (Coeff != 0)
      Result.push_back(termToExpr(Coeff, Key));
  if (Constant != 0 || Result.empty())
    Result.insert(Result.begin(), cst(Constant));
  if (Result.size() == 1)
    return Result.front();
  std::sort(Result.begin(), Result.end(),
            [](const Expr &A, const Expr &B) { return compare(A, B) < 0; });
  return std::make_shared<SumNode>(std::move(Result));
}

Expr arith::add(Expr A, Expr B) {
  std::vector<Expr> Ops;
  Ops.push_back(std::move(A));
  Ops.push_back(std::move(B));
  return sum(std::move(Ops));
}

Expr arith::negate(Expr A) { return mul(cst(-1), std::move(A)); }

Expr arith::sub(Expr A, Expr B) { return add(std::move(A), negate(std::move(B))); }

//===----------------------------------------------------------------------===//
// Product
//===----------------------------------------------------------------------===//

static void flattenProd(const Expr &E, std::vector<Expr> &Out) {
  if (const auto *P = dyn_cast<ProdNode>(E.get())) {
    for (const Expr &Op : P->getOperands())
      flattenProd(Op, Out);
    return;
  }
  Out.push_back(E);
}

Expr arith::prod(std::vector<Expr> Ops) {
  if (Ops.empty())
    return cst(1);
  if (Ops.size() == 1)
    return Ops.front();
  if (!SimplifyEnabled)
    return std::make_shared<ProdNode>(std::move(Ops));

  std::vector<Expr> Flat;
  for (const Expr &Op : Ops)
    flattenProd(Op, Flat);

  int64_t Constant = 1;
  // Collect like factors into powers: base -> exponent.
  std::map<Expr, int64_t, ExprLess> Exponents;
  for (const Expr &Op : Flat) {
    if (auto C = asConstant(Op)) {
      Constant = wrapMul(Constant, *C);
      continue;
    }
    if (const auto *PW = dyn_cast<PowNode>(Op.get())) {
      Exponents[PW->getBase()] = wrapAdd(Exponents[PW->getBase()],
                                          PW->getExponent());
      continue;
    }
    Exponents[Op] += 1;
  }
  if (Constant == 0)
    return cst(0);

  std::vector<Expr> Factors;
  for (const auto &[Base, Exp] : Exponents) {
    if (Exp == 0)
      continue;
    // Keep small powers of small sums in expandable form so the
    // distribution below reaches a polynomial normal form (e.g.
    // (N+1)^2 = N^2 + 2N + 1).
    if (Exp >= 2 && Exp <= 3 && isa<SumNode>(Base.get()) &&
        cast<SumNode>(Base.get())->getOperands().size() <= 4) {
      for (int64_t I = 0; I != Exp; ++I)
        Factors.push_back(Base);
      continue;
    }
    Factors.push_back(Exp == 1 ? Base : pow(Base, Exp));
  }
  if (Factors.empty())
    return cst(Constant);
  if (Constant == 1 && Factors.size() == 1)
    return Factors.front();
  // Distribute over sum factors to reach a polynomial normal form; this is
  // what lets like terms cancel (e.g. N - (N-1) = 1) and lets rule (4)
  // recognize (x/y)*y + x mod y pairs inside larger expressions.
  for (size_t I = 0, E = Factors.size(); I != E; ++I) {
    const auto *S = dyn_cast<SumNode>(Factors[I].get());
    if (!S)
      continue;
    std::vector<Expr> Others;
    Others.push_back(cst(Constant));
    for (size_t J = 0; J != E; ++J)
      if (J != I)
        Others.push_back(Factors[J]);
    std::vector<Expr> Distributed;
    for (const Expr &Term : S->getOperands()) {
      std::vector<Expr> Parts = Others;
      Parts.push_back(Term);
      Distributed.push_back(prod(std::move(Parts)));
    }
    return sum(std::move(Distributed));
  }
  std::sort(Factors.begin(), Factors.end(),
            [](const Expr &A, const Expr &B) { return compare(A, B) < 0; });
  if (Constant != 1)
    Factors.insert(Factors.begin(), cst(Constant));
  return std::make_shared<ProdNode>(std::move(Factors));
}

Expr arith::mul(Expr A, Expr B) {
  std::vector<Expr> Ops;
  Ops.push_back(std::move(A));
  Ops.push_back(std::move(B));
  return prod(std::move(Ops));
}

Expr arith::pow(Expr Base, int64_t Exponent) {
  assert(Exponent >= 0 && "negative exponents are not representable");
  if (!SimplifyEnabled)
    return std::make_shared<PowNode>(std::move(Base), Exponent);
  if (Exponent == 0)
    return cst(1);
  if (Exponent == 1)
    return Base;
  if (auto C = asConstant(Base)) {
    int64_t R = 1;
    for (int64_t I = 0; I < Exponent; ++I)
      R = wrapMul(R, *C);
    return cst(R);
  }
  return std::make_shared<PowNode>(std::move(Base), Exponent);
}

//===----------------------------------------------------------------------===//
// Integer division and modulo
//===----------------------------------------------------------------------===//

/// Truncated (round-toward-zero) division — the semantics of `/` in
/// OpenCL C and in the simulated runtime that executes the generated
/// kernels. Constant folds MUST agree with what the emitted code computes,
/// so negative operands fold with truncation, not floor.
static int64_t truncDiv(int64_t A, int64_t B) {
  assert(B != 0 && "division by zero");
  if (B == -1) // INT64_MIN / -1 overflows; wrap like the negation it is.
    return static_cast<int64_t>(0 - static_cast<uint64_t>(A));
  return A / B;
}

/// Truncated remainder, satisfying (x/y)*y + x%y = x with truncDiv.
static int64_t truncMod(int64_t A, int64_t B) {
  assert(B != 0 && "remainder by zero");
  if (B == -1)
    return 0;
  return A % B;
}

/// True if every operand of the sum is provably non-negative. The sum
/// rewrites for / and % below are floor-division identities; with a
/// positive divisor they carry over to truncated division only when no
/// term is negative (then floor and truncation coincide everywhere).
static bool allOperandsNonNegative(const SumNode *S) {
  for (const Expr &Op : S->getOperands())
    if (!provablyNonNegative(Op))
      return false;
  return true;
}

Expr arith::intDiv(Expr Num, Expr Den) {
  if (!SimplifyEnabled)
    return std::make_shared<IntDivNode>(std::move(Num), std::move(Den));

  auto CD = asConstant(Den);
  if (CD && *CD == 1)
    return Num;
  assert((!CD || *CD != 0) && "division by the constant zero");
  if (auto CN = asConstant(Num); CN && CD)
    return cst(truncDiv(*CN, *CD));
  if (equals(Num, Den))
    return cst(1);
  if (Expr Q = tryExactDivide(Num, Den))
    return Q;

  // Rule (1): x / y = 0 if 0 <= x < y.
  if (provablyNonNegative(Num) && provablyLessThan(Num, Den))
    return cst(0);

  // Rule (2): split off exactly divisible terms of a sum:
  // (k*y + r)/y = k + r/y. A floor-division identity for positive y; under
  // truncation it additionally needs every term non-negative (otherwise
  // e.g. (4a - 2)/4 = a - 1 for floor but a + (-2)/4 = a when truncating).
  if (const auto *S = dyn_cast<SumNode>(Num.get());
      S && provablyPositive(Den) && allOperandsNonNegative(S)) {
    std::vector<Expr> Quotients, Rest;
    for (const Expr &Op : S->getOperands()) {
      if (Expr Q = tryExactDivide(Op, Den))
        Quotients.push_back(std::move(Q));
      else
        Rest.push_back(Op);
    }
    if (!Quotients.empty()) {
      if (!Rest.empty())
        Quotients.push_back(intDiv(sum(std::move(Rest)), Den));
      return sum(std::move(Quotients));
    }
  }

  // Nested division: (x/a)/b = x/(a*b) for positive a, b. Valid for both
  // floor and truncated division (rounding toward zero composes).
  if (const auto *D = dyn_cast<IntDivNode>(Num.get());
      D && provablyPositive(D->getDenominator()) && provablyPositive(Den))
    return intDiv(D->getNumerator(), mul(D->getDenominator(), Den));

  return std::make_shared<IntDivNode>(std::move(Num), std::move(Den));
}

Expr arith::mod(Expr Dividend, Expr Divisor) {
  if (!SimplifyEnabled)
    return std::make_shared<ModNode>(std::move(Dividend), std::move(Divisor));

  auto CD = asConstant(Divisor);
  if (CD && *CD == 1)
    return cst(0);
  assert((!CD || *CD != 0) && "modulo by the constant zero");
  if (auto CN = asConstant(Dividend); CN && CD)
    return cst(truncMod(*CN, *CD));
  if (equals(Dividend, Divisor))
    return cst(0);

  // Rule (5): (x*y) mod y = 0.
  if (tryExactDivide(Dividend, Divisor))
    return cst(0);

  // Rule (3): x mod y = x if 0 <= x < y.
  if (provablyNonNegative(Dividend) && provablyLessThan(Dividend, Divisor))
    return Dividend;

  // (x mod y) mod y = x mod y.
  if (const auto *M = dyn_cast<ModNode>(Dividend.get());
      M && equals(M->getDivisor(), Divisor))
    return Dividend;

  // Rules (6)+(5): drop exactly divisible terms of a sum. A floor-modulo
  // identity for positive divisors; under truncation it needs every term
  // non-negative (a negative remainder term changes the result's sign).
  if (const auto *S = dyn_cast<SumNode>(Dividend.get());
      S && provablyPositive(Divisor) && allOperandsNonNegative(S)) {
    std::vector<Expr> Rest;
    bool Dropped = false;
    for (const Expr &Op : S->getOperands()) {
      if (tryExactDivide(Op, Divisor))
        Dropped = true;
      else
        Rest.push_back(Op);
    }
    if (Dropped)
      return mod(sum(std::move(Rest)), Divisor);
  }

  return std::make_shared<ModNode>(std::move(Dividend), std::move(Divisor));
}

Expr arith::ceilDiv(Expr A, Expr B) {
  return intDiv(add(std::move(A), sub(B, cst(1))), B);
}

//===----------------------------------------------------------------------===//
// Traversal utilities
//===----------------------------------------------------------------------===//

namespace {

/// Rebuilds an expression bottom-up through a transform applied to leaves.
template <typename LeafFn> Expr rebuild(const Expr &E, LeafFn &&OnLeaf) {
  switch (E->getKind()) {
  case ExprKind::Cst:
  case ExprKind::Var:
    return OnLeaf(E);
  case ExprKind::Sum: {
    std::vector<Expr> Ops;
    for (const Expr &Op : cast<SumNode>(E.get())->getOperands())
      Ops.push_back(rebuild(Op, OnLeaf));
    return sum(std::move(Ops));
  }
  case ExprKind::Prod: {
    std::vector<Expr> Ops;
    for (const Expr &Op : cast<ProdNode>(E.get())->getOperands())
      Ops.push_back(rebuild(Op, OnLeaf));
    return prod(std::move(Ops));
  }
  case ExprKind::IntDiv: {
    const auto *D = cast<IntDivNode>(E.get());
    return intDiv(rebuild(D->getNumerator(), OnLeaf),
                  rebuild(D->getDenominator(), OnLeaf));
  }
  case ExprKind::Mod: {
    const auto *M = cast<ModNode>(E.get());
    return mod(rebuild(M->getDividend(), OnLeaf),
               rebuild(M->getDivisor(), OnLeaf));
  }
  case ExprKind::Pow: {
    const auto *P = cast<PowNode>(E.get());
    return pow(rebuild(P->getBase(), OnLeaf), P->getExponent());
  }
  case ExprKind::Lookup: {
    const auto *L = cast<LookupNode>(E.get());
    return lookup(L->getTableId(), L->getTableName(),
                  rebuild(L->getIndex(), OnLeaf));
  }
  }
  lift_unreachable("unhandled expression kind");
}

} // namespace

Expr arith::substitute(const Expr &E,
                       const std::vector<std::pair<Expr, Expr>> &Bindings) {
  return rebuild(E, [&](const Expr &Leaf) -> Expr {
    for (const auto &[From, To] : Bindings)
      if (equals(Leaf, From))
        return To;
    return Leaf;
  });
}

Expr arith::simplified(const Expr &E) {
  SimplifyGuard Guard(true);
  return rebuild(E, [](const Expr &Leaf) { return Leaf; });
}

unsigned arith::countNodes(const Expr &E) {
  unsigned N = 1;
  switch (E->getKind()) {
  case ExprKind::Cst:
  case ExprKind::Var:
    break;
  case ExprKind::Sum:
    for (const Expr &Op : cast<SumNode>(E.get())->getOperands())
      N += countNodes(Op);
    break;
  case ExprKind::Prod:
    for (const Expr &Op : cast<ProdNode>(E.get())->getOperands())
      N += countNodes(Op);
    break;
  case ExprKind::IntDiv: {
    const auto *D = cast<IntDivNode>(E.get());
    N += countNodes(D->getNumerator()) + countNodes(D->getDenominator());
    break;
  }
  case ExprKind::Mod: {
    const auto *M = cast<ModNode>(E.get());
    N += countNodes(M->getDividend()) + countNodes(M->getDivisor());
    break;
  }
  case ExprKind::Pow:
    N += countNodes(cast<PowNode>(E.get())->getBase());
    break;
  case ExprKind::Lookup:
    N += countNodes(cast<LookupNode>(E.get())->getIndex());
    break;
  }
  return N;
}

unsigned arith::countOps(const Expr &E) {
  switch (E->getKind()) {
  case ExprKind::Cst:
  case ExprKind::Var:
    return 0;
  case ExprKind::Sum: {
    const auto &Ops = cast<SumNode>(E.get())->getOperands();
    unsigned N = static_cast<unsigned>(Ops.size()) - 1;
    for (const Expr &Op : Ops)
      N += countOps(Op);
    return N;
  }
  case ExprKind::Prod: {
    const auto &Ops = cast<ProdNode>(E.get())->getOperands();
    unsigned N = static_cast<unsigned>(Ops.size()) - 1;
    for (const Expr &Op : Ops)
      N += countOps(Op);
    return N;
  }
  case ExprKind::IntDiv: {
    const auto *D = cast<IntDivNode>(E.get());
    return 1 + countOps(D->getNumerator()) + countOps(D->getDenominator());
  }
  case ExprKind::Mod: {
    const auto *M = cast<ModNode>(E.get());
    return 1 + countOps(M->getDividend()) + countOps(M->getDivisor());
  }
  case ExprKind::Pow: {
    const auto *P = cast<PowNode>(E.get());
    return static_cast<unsigned>(P->getExponent()) - 1 +
           countOps(P->getBase());
  }
  case ExprKind::Lookup:
    return 1 + countOps(cast<LookupNode>(E.get())->getIndex());
  }
  lift_unreachable("unhandled expression kind");
}

unsigned arith::countDivMod(const Expr &E) {
  unsigned N = 0;
  switch (E->getKind()) {
  case ExprKind::Cst:
  case ExprKind::Var:
    break;
  case ExprKind::Sum:
    for (const Expr &Op : cast<SumNode>(E.get())->getOperands())
      N += countDivMod(Op);
    break;
  case ExprKind::Prod:
    for (const Expr &Op : cast<ProdNode>(E.get())->getOperands())
      N += countDivMod(Op);
    break;
  case ExprKind::IntDiv: {
    const auto *D = cast<IntDivNode>(E.get());
    N = 1 + countDivMod(D->getNumerator()) + countDivMod(D->getDenominator());
    break;
  }
  case ExprKind::Mod: {
    const auto *M = cast<ModNode>(E.get());
    N = 1 + countDivMod(M->getDividend()) + countDivMod(M->getDivisor());
    break;
  }
  case ExprKind::Pow:
    N += countDivMod(cast<PowNode>(E.get())->getBase());
    break;
  case ExprKind::Lookup:
    N += countDivMod(cast<LookupNode>(E.get())->getIndex());
    break;
  }
  return N;
}
