//===- ArithExpr.h - Symbolic arithmetic expressions ------------*- C++ -*-===//
//
// Part of the lift-cpp project, a C++ reproduction of the Lift compiler
// (Steuwer, Remmelg, Dubach; CGO 2017). MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic arithmetic over (mostly non-negative) integers, used by the Lift
/// type system for array lengths and by the code generator for array index
/// expressions. Expressions are immutable, shared DAG nodes. The factory
/// functions canonicalize and simplify on construction, implementing the
/// algebraic rules (1)-(6) of section 5.3 of the paper:
///
///   (1) x / y = 0                       if x < y and y != 0
///   (2) (x*y + z) / y = x + z/y         if y != 0
///   (3) x mod y = x                     if x < y and y != 0
///   (4) (x/y)*y + x mod y = x           if y != 0
///   (5) (x*y) mod y = 0                 if y != 0
///   (6) (x+y) mod z = (x%z + y%z) % z   if z != 0
///
/// Rules that require value-range knowledge ((1) and (3)) use the range
/// information carried by variables (see Bounds.h). Simplification can be
/// disabled via \c SimplifyGuard to reproduce the paper's ablation study
/// (Figure 8, "None" configuration) and the unsimplified index of Figure 6.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_ARITH_ARITHEXPR_H
#define LIFT_ARITH_ARITHEXPR_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace lift {
namespace arith {

class Node;

/// Shared immutable handle to an arithmetic expression node.
using Expr = std::shared_ptr<const Node>;

/// Discriminator for the Node class hierarchy.
enum class ExprKind {
  Cst,    ///< Integer constant.
  Var,    ///< Named variable with a value range.
  Sum,    ///< n-ary sum (n >= 2).
  Prod,   ///< n-ary product (n >= 2).
  IntDiv, ///< Integer division, truncating toward zero (C's `/`).
  Mod,    ///< Integer remainder, truncating toward zero (C's `%`).
  Pow,    ///< Integer power with constant non-negative exponent.
  Lookup, ///< Runtime table lookup (data-dependent index; Lift's Lookup).
};

/// Inclusive value range [Min, Max] of an expression; either bound may be
/// null, meaning unknown in that direction.
struct Range {
  Expr Min; ///< Inclusive lower bound, or null.
  Expr Max; ///< Inclusive upper bound, or null.

  Range() = default;
  Range(Expr Min, Expr Max) : Min(std::move(Min)), Max(std::move(Max)) {}
};

/// Base class of all arithmetic expression nodes.
class Node {
  const ExprKind Kind;

protected:
  explicit Node(ExprKind K) : Kind(K) {}

public:
  virtual ~Node();

  ExprKind getKind() const { return Kind; }
};

/// Integer constant.
class CstNode : public Node {
  int64_t Value;

public:
  explicit CstNode(int64_t V) : Node(ExprKind::Cst), Value(V) {}

  int64_t getValue() const { return Value; }

  static bool classof(const Node *N) { return N->getKind() == ExprKind::Cst; }
};

/// Named variable. Identity is the unique Id, not the name; the range is
/// consulted by the bound analysis for rules (1) and (3).
class VarNode : public Node {
  unsigned Id;
  std::string Name;
  Range VarRange;

public:
  VarNode(unsigned Id, std::string Name, Range R)
      : Node(ExprKind::Var), Id(Id), Name(std::move(Name)),
        VarRange(std::move(R)) {}

  unsigned getId() const { return Id; }
  const std::string &getName() const { return Name; }
  const Range &getRange() const { return VarRange; }

  static bool classof(const Node *N) { return N->getKind() == ExprKind::Var; }
};

/// n-ary sum. Operands are canonically ordered when simplification is on.
class SumNode : public Node {
  std::vector<Expr> Operands;

public:
  explicit SumNode(std::vector<Expr> Ops)
      : Node(ExprKind::Sum), Operands(std::move(Ops)) {}

  const std::vector<Expr> &getOperands() const { return Operands; }

  static bool classof(const Node *N) { return N->getKind() == ExprKind::Sum; }
};

/// n-ary product.
class ProdNode : public Node {
  std::vector<Expr> Operands;

public:
  explicit ProdNode(std::vector<Expr> Ops)
      : Node(ExprKind::Prod), Operands(std::move(Ops)) {}

  const std::vector<Expr> &getOperands() const { return Operands; }

  static bool classof(const Node *N) { return N->getKind() == ExprKind::Prod; }
};

/// Integer division Numerator / Denominator, truncating toward zero like
/// the `/` it is printed as in generated C.
class IntDivNode : public Node {
  Expr Numerator, Denominator;

public:
  IntDivNode(Expr Num, Expr Den)
      : Node(ExprKind::IntDiv), Numerator(std::move(Num)),
        Denominator(std::move(Den)) {}

  const Expr &getNumerator() const { return Numerator; }
  const Expr &getDenominator() const { return Denominator; }

  static bool classof(const Node *N) {
    return N->getKind() == ExprKind::IntDiv;
  }
};

/// Integer modulo Dividend mod Divisor.
class ModNode : public Node {
  Expr Dividend, Divisor;

public:
  ModNode(Expr Dividend, Expr Divisor)
      : Node(ExprKind::Mod), Dividend(std::move(Dividend)),
        Divisor(std::move(Divisor)) {}

  const Expr &getDividend() const { return Dividend; }
  const Expr &getDivisor() const { return Divisor; }

  static bool classof(const Node *N) { return N->getKind() == ExprKind::Mod; }
};

/// Base raised to a constant non-negative integer exponent (>= 2 after
/// canonicalization).
class PowNode : public Node {
  Expr Base;
  int64_t Exponent;

public:
  PowNode(Expr Base, int64_t Exponent)
      : Node(ExprKind::Pow), Base(std::move(Base)), Exponent(Exponent) {}

  const Expr &getBase() const { return Base; }
  int64_t getExponent() const { return Exponent; }

  static bool classof(const Node *N) { return N->getKind() == ExprKind::Pow; }
};

/// Data-dependent index: the value of Table[Index] at kernel runtime, where
/// Table identifies an integer buffer. Opaque to simplification except for
/// its (non-negative) range.
class LookupNode : public Node {
  unsigned TableId;
  std::string TableName;
  Expr Index;

public:
  LookupNode(unsigned TableId, std::string TableName, Expr Index)
      : Node(ExprKind::Lookup), TableId(TableId),
        TableName(std::move(TableName)), Index(std::move(Index)) {}

  unsigned getTableId() const { return TableId; }
  const std::string &getTableName() const { return TableName; }
  const Expr &getIndex() const { return Index; }

  static bool classof(const Node *N) {
    return N->getKind() == ExprKind::Lookup;
  }
};

//===----------------------------------------------------------------------===//
// Factory functions (simplifying constructors)
//===----------------------------------------------------------------------===//

/// Creates an integer constant.
Expr cst(int64_t V);

/// Creates a fresh variable with range [0, +inf).
std::shared_ptr<const VarNode> var(const std::string &Name);

/// Creates a fresh variable with the given inclusive range bounds (either
/// may be null for unknown).
std::shared_ptr<const VarNode> var(const std::string &Name, Expr Min,
                                   Expr Max);

/// Creates a fresh "size" variable with range [1, +inf), as used for
/// unknown array lengths (natural numbers larger than zero, section 5.1).
std::shared_ptr<const VarNode> sizeVar(const std::string &Name);

Expr add(Expr A, Expr B);
Expr sub(Expr A, Expr B);
Expr sum(std::vector<Expr> Ops);
Expr mul(Expr A, Expr B);
Expr prod(std::vector<Expr> Ops);
Expr intDiv(Expr Num, Expr Den);
Expr mod(Expr Dividend, Expr Divisor);
Expr pow(Expr Base, int64_t Exponent);
Expr negate(Expr A);
Expr lookup(unsigned TableId, const std::string &TableName, Expr Index);

/// Returns the ceiling of A / B, i.e. (A + B - 1) / B.
Expr ceilDiv(Expr A, Expr B);

//===----------------------------------------------------------------------===//
// Structural queries
//===----------------------------------------------------------------------===//

/// Total order on expressions; structural, deterministic across runs.
/// Returns <0, 0 or >0.
int compare(const Expr &A, const Expr &B);

/// Structural equality.
bool equals(const Expr &A, const Expr &B);

/// Returns the constant value if the expression is a constant.
std::optional<int64_t> asConstant(const Expr &E);

/// Returns true if the expression is the constant \p V.
bool isConstant(const Expr &E, int64_t V);

/// Replaces every occurrence of the variables in \p From with the paired
/// expression in \p To, rebuilding (and re-simplifying, if enabled) the
/// result bottom-up.
Expr substitute(const Expr &E,
                const std::vector<std::pair<Expr, Expr>> &Bindings);

/// Counts nodes in the expression tree (diagnostics; code bloat metric).
unsigned countNodes(const Expr &E);

/// Counts division and modulo nodes (cost metric for Figure 8's shape).
unsigned countDivMod(const Expr &E);

/// Counts arithmetic *operators* (a sum of k terms is k-1 additions, a
/// product k-1 multiplications; divisions, modulos and powers count their
/// operations; leaves are free). Used by the runtime cost model for index
/// expressions.
unsigned countOps(const Expr &E);

//===----------------------------------------------------------------------===//
// Simplification control
//===----------------------------------------------------------------------===//

/// RAII guard that enables or disables simplification in the factory
/// functions for the current thread. Used to reproduce the paper's
/// "array access simplification" ablation.
class SimplifyGuard {
  bool Previous;

public:
  explicit SimplifyGuard(bool Enable);
  ~SimplifyGuard();

  SimplifyGuard(const SimplifyGuard &) = delete;
  SimplifyGuard &operator=(const SimplifyGuard &) = delete;

  /// Returns whether simplification is currently enabled on this thread.
  static bool isEnabled();
};

/// Rebuilds \p E bottom-up through the simplifying factories, regardless of
/// whether it was originally built with simplification disabled.
Expr simplified(const Expr &E);

} // namespace arith
} // namespace lift

#endif // LIFT_ARITH_ARITHEXPR_H
