//===- Bounds.cpp - Value-range analysis for arithmetic exprs -------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interval analysis (constant bounds) plus a symbolic "extreme value
/// substitution" proof procedure for inequalities that mix a variable with
/// its own symbolic range bound (e.g. proving l_id < M when l_id ranges over
/// [0, M-1]). These two procedures discharge the side conditions of the
/// simplification rules (1) and (3) and the loop-trip-count proofs of the
/// control-flow simplification (section 5.5).
///
//===----------------------------------------------------------------------===//

#include "arith/Bounds.h"

#include "support/Casting.h"
#include "support/Error.h"

#include <cassert>
#include <limits>

using namespace lift;
using namespace lift::arith;

namespace {

constexpr int MaxDepth = 16;

/// An extended integer: finite, -inf, or +inf.
struct Ext {
  enum Class { NegInf, Finite, PosInf } Cls = Finite;
  int64_t V = 0;

  static Ext negInf() { return {NegInf, 0}; }
  static Ext posInf() { return {PosInf, 0}; }
  static Ext finite(int64_t V) { return {Finite, V}; }

  bool isFinite() const { return Cls == Finite; }
};

/// Rounding direction for endpoint arithmetic that leaves the int64 range:
/// lower bounds round down, upper bounds round up, so the computed interval
/// always contains the mathematical one (outward rounding).
enum class Dir { Down, Up };

/// A finite result that overflowed above INT64_MAX: as an upper bound it
/// widens to +inf, as a lower bound INT64_MAX is still below the true value.
Ext overAbove(Dir D) {
  return D == Dir::Up ? Ext::posInf()
                      : Ext::finite(std::numeric_limits<int64_t>::max());
}
/// Symmetrically for a result below INT64_MIN.
Ext overBelow(Dir D) {
  return D == Dir::Down ? Ext::negInf()
                        : Ext::finite(std::numeric_limits<int64_t>::min());
}

Ext extAdd(Ext A, Ext B, Dir D) {
  if (A.Cls == Ext::NegInf || B.Cls == Ext::NegInf) {
    assert(A.Cls != Ext::PosInf && B.Cls != Ext::PosInf &&
           "adding opposite infinities");
    return Ext::negInf();
  }
  if (A.Cls == Ext::PosInf || B.Cls == Ext::PosInf)
    return Ext::posInf();
  int64_t R;
  if (!__builtin_add_overflow(A.V, B.V, &R))
    return Ext::finite(R);
  // Addition only overflows when both operands share a sign.
  return A.V > 0 ? overAbove(D) : overBelow(D);
}

int sign(Ext A) {
  if (A.Cls == Ext::NegInf)
    return -1;
  if (A.Cls == Ext::PosInf)
    return 1;
  return A.V < 0 ? -1 : (A.V > 0 ? 1 : 0);
}

Ext extMul(Ext A, Ext B, Dir D) {
  int SA = sign(A), SB = sign(B);
  if (SA == 0 || SB == 0)
    return Ext::finite(0);
  if (!A.isFinite() || !B.isFinite())
    return SA * SB > 0 ? Ext::posInf() : Ext::negInf();
  int64_t R;
  if (!__builtin_mul_overflow(A.V, B.V, &R))
    return Ext::finite(R);
  return SA * SB > 0 ? overAbove(D) : overBelow(D);
}

bool extLess(Ext A, Ext B) {
  if (A.Cls == Ext::NegInf)
    return B.Cls != Ext::NegInf;
  if (A.Cls == Ext::PosInf)
    return false;
  if (B.Cls == Ext::NegInf)
    return false;
  if (B.Cls == Ext::PosInf)
    return true;
  return A.V < B.V;
}

Ext extMin(Ext A, Ext B) { return extLess(A, B) ? A : B; }
Ext extMax(Ext A, Ext B) { return extLess(A, B) ? B : A; }

/// An interval over extended integers.
struct Interval {
  Ext Lo = Ext::negInf();
  Ext Hi = Ext::posInf();

  static Interval top() { return {}; }
  static Interval point(int64_t V) {
    return {Ext::finite(V), Ext::finite(V)};
  }
};

/// Truncated division, matching the semantics of IntDiv (OpenCL C's `/`).
/// Callers guarantee a positive divisor.
int64_t truncDivV(int64_t A, int64_t B) { return A / B; }

Interval intervalOf(const Expr &E, int Depth);

Interval intervalMul(Interval A, Interval B) {
  // Each endpoint is computed with its own rounding direction, so the four
  // candidate products are evaluated twice.
  Interval R;
  R.Lo = extMin(extMin(extMul(A.Lo, B.Lo, Dir::Down),
                       extMul(A.Lo, B.Hi, Dir::Down)),
                extMin(extMul(A.Hi, B.Lo, Dir::Down),
                       extMul(A.Hi, B.Hi, Dir::Down)));
  R.Hi = extMax(extMax(extMul(A.Lo, B.Lo, Dir::Up),
                       extMul(A.Lo, B.Hi, Dir::Up)),
                extMax(extMul(A.Hi, B.Lo, Dir::Up),
                       extMul(A.Hi, B.Hi, Dir::Up)));
  return R;
}

/// Truncated division of extended values, divisor finite positive or +inf.
Ext extTruncDiv(Ext N, Ext D) {
  assert(sign(D) > 0 && "divisor must be positive");
  if (!N.isFinite())
    return N;
  if (!D.isFinite()) // N / inf truncates to 0 from either side.
    return Ext::finite(0);
  return Ext::finite(truncDivV(N.V, D.V));
}

Interval intervalOf(const Expr &E, int Depth) {
  if (Depth > MaxDepth)
    return Interval::top();
  switch (E->getKind()) {
  case ExprKind::Cst:
    return Interval::point(cast<CstNode>(E.get())->getValue());
  case ExprKind::Var: {
    const Range &R = cast<VarNode>(E.get())->getRange();
    Interval I = Interval::top();
    if (R.Min)
      I.Lo = intervalOf(R.Min, Depth + 1).Lo;
    if (R.Max)
      I.Hi = intervalOf(R.Max, Depth + 1).Hi;
    return I;
  }
  case ExprKind::Sum: {
    Interval R = Interval::point(0);
    for (const Expr &Op : cast<SumNode>(E.get())->getOperands()) {
      Interval I = intervalOf(Op, Depth + 1);
      R.Lo = extAdd(R.Lo, I.Lo, Dir::Down);
      R.Hi = extAdd(R.Hi, I.Hi, Dir::Up);
    }
    return R;
  }
  case ExprKind::Prod: {
    Interval R = Interval::point(1);
    for (const Expr &Op : cast<ProdNode>(E.get())->getOperands())
      R = intervalMul(R, intervalOf(Op, Depth + 1));
    return R;
  }
  case ExprKind::IntDiv: {
    const auto *D = cast<IntDivNode>(E.get());
    Interval NI = intervalOf(D->getNumerator(), Depth + 1);
    Interval DI = intervalOf(D->getDenominator(), Depth + 1);
    // Only positive divisors are supported (array sizes, split factors).
    if (sign(DI.Lo) <= 0)
      return Interval::top();
    Interval R;
    // trunc(n/d) is increasing in n and, for fixed n sign, monotone in d
    // (toward zero), so the extremes occur at the endpoints; take min/max
    // over the four combinations.
    Ext C1 = extTruncDiv(NI.Lo, DI.Lo), C2 = extTruncDiv(NI.Lo, DI.Hi);
    Ext C3 = extTruncDiv(NI.Hi, DI.Lo), C4 = extTruncDiv(NI.Hi, DI.Hi);
    if (!NI.Lo.isFinite() && NI.Lo.Cls == Ext::NegInf) {
      R.Lo = Ext::negInf();
    } else {
      R.Lo = extMin(extMin(C1, C2), extMin(C3, C4));
    }
    if (NI.Hi.Cls == Ext::PosInf) {
      R.Hi = Ext::posInf();
    } else {
      R.Hi = extMax(extMax(C1, C2), extMax(C3, C4));
    }
    return R;
  }
  case ExprKind::Mod: {
    const auto *M = cast<ModNode>(E.get());
    Interval DI = intervalOf(M->getDivisor(), Depth + 1);
    if (sign(DI.Lo) <= 0)
      return Interval::top();
    // Truncated remainder with a positive divisor d lies in (-d, d-1] and
    // takes the sign of the dividend: non-negative dividends give
    // [0, min(d-1, dividend)]; possibly-negative dividends drop the lower
    // bound to max(-(d-1), dividend lower bound).
    Interval R;
    R.Hi = DI.Hi.isFinite() ? Ext::finite(DI.Hi.V - 1) : Ext::posInf();
    Interval NI = intervalOf(M->getDividend(), Depth + 1);
    if (sign(NI.Lo) >= 0) {
      R.Lo = Ext::finite(0);
      if (NI.Lo.isFinite())
        R.Hi = extMin(R.Hi, NI.Hi);
    } else {
      R.Lo = DI.Hi.isFinite() ? Ext::finite(-(DI.Hi.V - 1)) : Ext::negInf();
      R.Lo = extMax(R.Lo, NI.Lo);
    }
    return R;
  }
  case ExprKind::Pow: {
    const auto *P = cast<PowNode>(E.get());
    Interval BI = intervalOf(P->getBase(), Depth + 1);
    if (sign(BI.Lo) < 0)
      return Interval::top();
    auto PowOf = [&](Ext B, Dir D) -> Ext {
      if (!B.isFinite())
        return B;
      int64_t R = 1;
      for (int64_t I = 0; I < P->getExponent(); ++I)
        if (__builtin_mul_overflow(R, B.V, &R))
          return overAbove(D); // base is non-negative here
      return Ext::finite(R);
    };
    return {PowOf(BI.Lo, Dir::Down), PowOf(BI.Hi, Dir::Up)};
  }
  case ExprKind::Lookup:
    // Lookup tables hold non-negative indices by convention.
    return {Ext::finite(0), Ext::posInf()};
  }
  lift_unreachable("unhandled expression kind");
}

/// Counts occurrences of the variable \p Id anywhere in \p E.
unsigned countVarUses(const Expr &E, unsigned Id) {
  switch (E->getKind()) {
  case ExprKind::Cst:
    return 0;
  case ExprKind::Var:
    return cast<VarNode>(E.get())->getId() == Id ? 1 : 0;
  case ExprKind::Sum: {
    unsigned N = 0;
    for (const Expr &Op : cast<SumNode>(E.get())->getOperands())
      N += countVarUses(Op, Id);
    return N;
  }
  case ExprKind::Prod: {
    unsigned N = 0;
    for (const Expr &Op : cast<ProdNode>(E.get())->getOperands())
      N += countVarUses(Op, Id);
    return N;
  }
  case ExprKind::IntDiv: {
    const auto *D = cast<IntDivNode>(E.get());
    return countVarUses(D->getNumerator(), Id) +
           countVarUses(D->getDenominator(), Id);
  }
  case ExprKind::Mod: {
    const auto *M = cast<ModNode>(E.get());
    return countVarUses(M->getDividend(), Id) +
           countVarUses(M->getDivisor(), Id);
  }
  case ExprKind::Pow:
    return countVarUses(cast<PowNode>(E.get())->getBase(), Id);
  case ExprKind::Lookup:
    return countVarUses(cast<LookupNode>(E.get())->getIndex(), Id);
  }
  lift_unreachable("unhandled expression kind");
}

bool proveGE0(const Expr &E, int Depth);

/// For a top-level sum, finds a variable that occurs exactly once in the
/// whole expression, as a linear term, and substitutes its extreme range
/// bound: the minimum of the expression over that variable is attained at
/// the bound, so proving the substituted expression >= 0 proves the
/// original. Returns true on a successful proof.
bool proveByExtremeSubstitution(const Expr &E, int Depth) {
  const auto *S = dyn_cast<SumNode>(E.get());
  if (!S)
    return false;
  for (const Expr &Op : S->getOperands()) {
    // Decompose the term as Coefficient * Var.
    int64_t Coeff = 1;
    const VarNode *V = dyn_cast<VarNode>(Op.get());
    if (!V) {
      const auto *P = dyn_cast<ProdNode>(Op.get());
      if (!P || P->getOperands().size() != 2)
        continue;
      auto C = asConstant(P->getOperands()[0]);
      const auto *PV = dyn_cast<VarNode>(P->getOperands()[1].get());
      if (!C || !PV)
        continue;
      Coeff = *C;
      V = PV;
    }
    if (countVarUses(E, V->getId()) != 1)
      continue;
    const Range &R = V->getRange();
    // The sum is monotone in V with the sign of Coeff: substitute the
    // bound at which the sum is minimized.
    const Expr &Bound = Coeff < 0 ? R.Max : R.Min;
    if (!Bound)
      continue;
    // Aliasing handle to the variable node, for substitution.
    Expr VarExpr(E, V);
    Expr Substituted = substitute(E, {{VarExpr, Bound}});
    if (proveGE0(Substituted, Depth + 1))
      return true;
  }
  return false;
}

/// Replaces negative-coefficient floor-division and modulo terms by their
/// (more negative) linear relaxations: for y >= 0 and d >= 1,
/// floor(y/d) <= y and y mod d <= y, so c*floor(y/d) >= c*y when c < 0.
/// Proving the relaxed sum non-negative proves the original.
bool proveByDivModRelaxation(const Expr &E, int Depth) {
  const auto *S = dyn_cast<SumNode>(E.get());
  if (!S)
    return false;
  bool Relaxed = false;
  std::vector<Expr> Terms;
  for (const Expr &Op : S->getOperands()) {
    // Decompose as Coefficient * Key with a single div/mod key.
    int64_t Coeff = 1;
    Expr Key = Op;
    if (const auto *P = dyn_cast<ProdNode>(Op.get());
        P && P->getOperands().size() == 2) {
      if (auto C = asConstant(P->getOperands()[0])) {
        Coeff = *C;
        Key = P->getOperands()[1];
      }
    }
    Expr Replacement;
    if (Coeff < 0) {
      if (const auto *D = dyn_cast<IntDivNode>(Key.get())) {
        if (constLowerBound(D->getNumerator()).value_or(-1) >= 0 &&
            constLowerBound(D->getDenominator()).value_or(0) >= 1)
          Replacement = D->getNumerator();
      } else if (const auto *M = dyn_cast<ModNode>(Key.get())) {
        if (constLowerBound(M->getDividend()).value_or(-1) >= 0 &&
            constLowerBound(M->getDivisor()).value_or(0) >= 1)
          Replacement = M->getDividend();
      }
    }
    if (Replacement) {
      Relaxed = true;
      Terms.push_back(mul(cst(Coeff), Replacement));
    } else {
      Terms.push_back(Op);
    }
  }
  if (!Relaxed)
    return false;
  return proveGE0(sum(std::move(Terms)), Depth + 1);
}

bool proveGE0(const Expr &E, int Depth) {
  if (Depth > MaxDepth)
    return false;
  SimplifyGuard Guard(true);
  Expr S = simplified(E);
  if (auto C = asConstant(S))
    return *C >= 0;
  Interval I = intervalOf(S, 0);
  if (sign(I.Lo) >= 0)
    return true;
  if (proveByExtremeSubstitution(S, Depth))
    return true;
  if (proveByDivModRelaxation(S, Depth))
    return true;
  return false;
}

} // namespace

std::optional<int64_t> arith::constLowerBound(const Expr &E) {
  Interval I = intervalOf(E, 0);
  if (I.Lo.isFinite())
    return I.Lo.V;
  return std::nullopt;
}

std::optional<int64_t> arith::constUpperBound(const Expr &E) {
  Interval I = intervalOf(E, 0);
  if (I.Hi.isFinite())
    return I.Hi.V;
  return std::nullopt;
}

Expr arith::lowerBound(const Expr &E) {
  if (auto C = constLowerBound(E))
    return cst(*C);
  if (const auto *V = dyn_cast<VarNode>(E.get()))
    return V->getRange().Min;
  return nullptr;
}

Expr arith::upperBound(const Expr &E) {
  if (auto C = constUpperBound(E))
    return cst(*C);
  if (const auto *V = dyn_cast<VarNode>(E.get()))
    return V->getRange().Max;
  return nullptr;
}

bool arith::provablyNonNegative(const Expr &E) { return proveGE0(E, 0); }

bool arith::provablyPositive(const Expr &E) {
  SimplifyGuard Guard(true);
  return proveGE0(sub(E, cst(1)), 0);
}

bool arith::provablyLessThan(const Expr &A, const Expr &B) {
  SimplifyGuard Guard(true);
  // x mod y < B whenever y <= B (with a positive divisor, the truncated
  // remainder is at most y - 1).
  if (const auto *M = dyn_cast<ModNode>(A.get()))
    if (provablyPositive(M->getDivisor()) &&
        provablyLessEqual(M->getDivisor(), B))
      return true;
  return proveGE0(sub(sub(B, A), cst(1)), 0);
}

bool arith::provablyLessEqual(const Expr &A, const Expr &B) {
  SimplifyGuard Guard(true);
  if (equals(A, B))
    return true;
  if (const auto *M = dyn_cast<ModNode>(A.get()))
    if (provablyPositive(M->getDivisor()) &&
        provablyLessEqual(M->getDivisor(), B))
      return true;
  return proveGE0(sub(B, A), 0);
}

bool arith::provablyEqual(const Expr &A, const Expr &B) {
  SimplifyGuard Guard(true);
  if (equals(A, B))
    return true;
  return isConstant(simplified(sub(A, B)), 0);
}
