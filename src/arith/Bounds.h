//===- Bounds.h - Value-range analysis for arithmetic exprs -----*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value-range analysis over arithmetic expressions. The Lift type system
/// attaches ranges to variables (e.g. a local id l_id lies in
/// [0, localSize-1]); this analysis propagates those ranges through
/// expressions so that the simplifier can prove the side conditions of
/// rules (1) and (3) (x < y) and the code generator can prove that loops
/// execute at most / exactly once (section 5.5, control-flow simplification).
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_ARITH_BOUNDS_H
#define LIFT_ARITH_BOUNDS_H

#include "arith/ArithExpr.h"

namespace lift {
namespace arith {

/// Returns a symbolic inclusive lower bound of \p E, or null if unknown.
Expr lowerBound(const Expr &E);

/// Returns a symbolic inclusive upper bound of \p E, or null if unknown.
Expr upperBound(const Expr &E);

/// Returns a constant inclusive lower bound if one can be derived.
std::optional<int64_t> constLowerBound(const Expr &E);

/// Returns a constant inclusive upper bound if one can be derived.
std::optional<int64_t> constUpperBound(const Expr &E);

/// Returns true if A < B can be proven for every valuation of the
/// variables consistent with their ranges.
bool provablyLessThan(const Expr &A, const Expr &B);

/// Returns true if A <= B can be proven.
bool provablyLessEqual(const Expr &A, const Expr &B);

/// Returns true if E >= 0 can be proven.
bool provablyNonNegative(const Expr &E);

/// Returns true if E > 0 can be proven.
bool provablyPositive(const Expr &E);

/// Returns true if A == B can be proven (structurally, after
/// simplification of the difference).
bool provablyEqual(const Expr &A, const Expr &B);

} // namespace arith
} // namespace lift

#endif // LIFT_ARITH_BOUNDS_H
