//===- Eval.cpp - Arithmetic expression evaluation ------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "arith/Eval.h"

#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/Error.h"

using namespace lift;
using namespace lift::arith;

// Arithmetic matches the generated OpenCL C: / and % truncate toward zero,
// and overflow wraps (evaluated through uint64_t to stay defined behavior).
static int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}

static int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}

static int64_t truncDivV(int64_t A, int64_t B) {
  if (B == 0)
    throwDiag(lift::DiagCode::RuntimeDivByZero, lift::DiagLocation(),
              "evaluation: division by zero");
  if (B == -1) // INT64_MIN / -1 overflows; wrap like the negation it is.
    return static_cast<int64_t>(0 - static_cast<uint64_t>(A));
  return A / B;
}

static int64_t truncModV(int64_t A, int64_t B) {
  if (B == 0)
    throwDiag(lift::DiagCode::RuntimeDivByZero, lift::DiagLocation(),
              "evaluation: remainder by zero");
  if (B == -1)
    return 0;
  return A % B;
}

int64_t arith::evaluate(const Expr &E, const EvalContext &Ctx) {
  switch (E->getKind()) {
  case ExprKind::Cst:
    return cast<CstNode>(E.get())->getValue();
  case ExprKind::Var: {
    const auto &V = *cast<VarNode>(E.get());
    if (!Ctx.VarValue)
      throwDiag(DiagCode::HostUnboundSize, DiagLocation(),
                "evaluation: unbound variable " + V.getName());
    return Ctx.VarValue(V);
  }
  case ExprKind::Sum: {
    int64_t R = 0;
    for (const Expr &Op : cast<SumNode>(E.get())->getOperands())
      R = wrapAdd(R, evaluate(Op, Ctx));
    return R;
  }
  case ExprKind::Prod: {
    int64_t R = 1;
    for (const Expr &Op : cast<ProdNode>(E.get())->getOperands())
      R = wrapMul(R, evaluate(Op, Ctx));
    return R;
  }
  case ExprKind::IntDiv: {
    const auto *D = cast<IntDivNode>(E.get());
    return truncDivV(evaluate(D->getNumerator(), Ctx),
                     evaluate(D->getDenominator(), Ctx));
  }
  case ExprKind::Mod: {
    const auto *M = cast<ModNode>(E.get());
    return truncModV(evaluate(M->getDividend(), Ctx),
                     evaluate(M->getDivisor(), Ctx));
  }
  case ExprKind::Pow: {
    const auto *P = cast<PowNode>(E.get());
    int64_t B = evaluate(P->getBase(), Ctx);
    int64_t R = 1;
    for (int64_t I = 0, N = P->getExponent(); I != N; ++I)
      R = wrapMul(R, B);
    return R;
  }
  case ExprKind::Lookup: {
    const auto *L = cast<LookupNode>(E.get());
    if (!Ctx.LookupValue)
      throwDiag(DiagCode::HostUnboundSize, DiagLocation(),
                "evaluation: no lookup handler for table " +
                    L->getTableName());
    return Ctx.LookupValue(L->getTableId(), evaluate(L->getIndex(), Ctx));
  }
  }
  lift_unreachable("unhandled expression kind");
}
