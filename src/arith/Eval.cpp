//===- Eval.cpp - Arithmetic expression evaluation ------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "arith/Eval.h"

#include "support/Casting.h"
#include "support/Error.h"

using namespace lift;
using namespace lift::arith;

static int64_t floorDivV(int64_t A, int64_t B) {
  if (B == 0)
    fatalError("evaluation: division by zero");
  int64_t Q = A / B;
  if ((A % B != 0) && ((A < 0) != (B < 0)))
    --Q;
  return Q;
}

int64_t arith::evaluate(const Expr &E, const EvalContext &Ctx) {
  switch (E->getKind()) {
  case ExprKind::Cst:
    return cast<CstNode>(E.get())->getValue();
  case ExprKind::Var: {
    const auto &V = *cast<VarNode>(E.get());
    if (!Ctx.VarValue)
      fatalError("evaluation: unbound variable " + V.getName());
    return Ctx.VarValue(V);
  }
  case ExprKind::Sum: {
    int64_t R = 0;
    for (const Expr &Op : cast<SumNode>(E.get())->getOperands())
      R += evaluate(Op, Ctx);
    return R;
  }
  case ExprKind::Prod: {
    int64_t R = 1;
    for (const Expr &Op : cast<ProdNode>(E.get())->getOperands())
      R *= evaluate(Op, Ctx);
    return R;
  }
  case ExprKind::IntDiv: {
    const auto *D = cast<IntDivNode>(E.get());
    return floorDivV(evaluate(D->getNumerator(), Ctx),
                     evaluate(D->getDenominator(), Ctx));
  }
  case ExprKind::Mod: {
    const auto *M = cast<ModNode>(E.get());
    int64_t A = evaluate(M->getDividend(), Ctx);
    int64_t B = evaluate(M->getDivisor(), Ctx);
    return A - floorDivV(A, B) * B;
  }
  case ExprKind::Pow: {
    const auto *P = cast<PowNode>(E.get());
    int64_t B = evaluate(P->getBase(), Ctx);
    int64_t R = 1;
    for (int64_t I = 0, N = P->getExponent(); I != N; ++I)
      R *= B;
    return R;
  }
  case ExprKind::Lookup: {
    const auto *L = cast<LookupNode>(E.get());
    if (!Ctx.LookupValue)
      fatalError("evaluation: no lookup handler for table " +
                 L->getTableName());
    return Ctx.LookupValue(L->getTableId(), evaluate(L->getIndex(), Ctx));
  }
  }
  lift_unreachable("unhandled expression kind");
}
