//===- Eval.h - Arithmetic expression evaluation ----------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete evaluation of arithmetic expressions given variable values.
/// Division and modulo truncate toward zero and overflow wraps, matching
/// the `/` and `%` the expressions are printed as in generated OpenCL C —
/// so evaluation agrees with the kernel on all inputs, negatives included.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_ARITH_EVAL_H
#define LIFT_ARITH_EVAL_H

#include "arith/ArithExpr.h"

#include <functional>

namespace lift {
namespace arith {

/// Environment for evaluation: variable values by id, and table lookups for
/// data-dependent indices.
struct EvalContext {
  std::function<int64_t(const VarNode &)> VarValue;
  std::function<int64_t(unsigned TableId, int64_t Index)> LookupValue;
};

/// Evaluates \p E under \p Ctx. Aborts on an unbound variable or a lookup
/// without a handler.
int64_t evaluate(const Expr &E, const EvalContext &Ctx);

} // namespace arith
} // namespace lift

#endif // LIFT_ARITH_EVAL_H
