//===- Printer.cpp - C-syntax printing of arithmetic exprs ----------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "arith/Printer.h"

#include "support/Casting.h"
#include "support/Error.h"

#include <sstream>

using namespace lift;
using namespace lift::arith;

namespace {

/// C precedence levels used for parenthesization: additive < multiplicative
/// < primary.
enum Precedence { PrecAdd = 0, PrecMul = 1, PrecPrimary = 2 };

class PrinterImpl {
  const VarNameResolver &Resolver;
  std::ostringstream OS;

public:
  explicit PrinterImpl(const VarNameResolver &Resolver)
      : Resolver(Resolver) {}

  std::string run(const Expr &E) {
    print(E, PrecAdd);
    return OS.str();
  }

private:
  void print(const Expr &E, int ParentPrec) {
    switch (E->getKind()) {
    case ExprKind::Cst: {
      int64_t V = cast<CstNode>(E.get())->getValue();
      if (V < 0 && ParentPrec > PrecAdd) {
        OS << "(" << V << ")";
      } else {
        OS << V;
      }
      return;
    }
    case ExprKind::Var: {
      const auto &V = *cast<VarNode>(E.get());
      std::string Name = Resolver ? Resolver(V) : std::string();
      OS << (Name.empty() ? V.getName() : Name);
      return;
    }
    case ExprKind::Sum: {
      bool Paren = ParentPrec > PrecAdd;
      if (Paren)
        OS << "(";
      const auto &Ops = cast<SumNode>(E.get())->getOperands();
      for (size_t I = 0, N = Ops.size(); I != N; ++I) {
        if (I != 0)
          OS << " + ";
        print(Ops[I], PrecAdd + (I == 0 ? 0 : 1) * 0);
      }
      if (Paren)
        OS << ")";
      return;
    }
    case ExprKind::Prod: {
      bool Paren = ParentPrec > PrecMul;
      if (Paren)
        OS << "(";
      const auto &Ops = cast<ProdNode>(E.get())->getOperands();
      for (size_t I = 0, N = Ops.size(); I != N; ++I) {
        if (I != 0)
          OS << " * ";
        print(Ops[I], PrecMul + (I == 0 ? 0 : 1));
      }
      if (Paren)
        OS << ")";
      return;
    }
    case ExprKind::IntDiv: {
      bool Paren = ParentPrec > PrecMul;
      if (Paren)
        OS << "(";
      const auto *D = cast<IntDivNode>(E.get());
      print(D->getNumerator(), PrecMul);
      OS << " / ";
      print(D->getDenominator(), PrecMul + 1);
      if (Paren)
        OS << ")";
      return;
    }
    case ExprKind::Mod: {
      bool Paren = ParentPrec > PrecMul;
      if (Paren)
        OS << "(";
      const auto *M = cast<ModNode>(E.get());
      print(M->getDividend(), PrecMul);
      OS << " % ";
      print(M->getDivisor(), PrecMul + 1);
      if (Paren)
        OS << ")";
      return;
    }
    case ExprKind::Pow: {
      // Integer powers are printed as repeated multiplication.
      const auto *P = cast<PowNode>(E.get());
      bool Paren = ParentPrec > PrecMul;
      if (Paren)
        OS << "(";
      for (int64_t I = 0, N = P->getExponent(); I != N; ++I) {
        if (I != 0)
          OS << " * ";
        print(P->getBase(), PrecMul + 1);
      }
      if (Paren)
        OS << ")";
      return;
    }
    case ExprKind::Lookup: {
      const auto *L = cast<LookupNode>(E.get());
      OS << L->getTableName() << "[";
      print(L->getIndex(), PrecAdd);
      OS << "]";
      return;
    }
    }
    lift_unreachable("unhandled expression kind");
  }
};

} // namespace

std::string arith::toString(const Expr &E, const VarNameResolver &Resolver) {
  return PrinterImpl(Resolver).run(E);
}
