//===- Printer.h - C-syntax printing of arithmetic exprs --------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints arithmetic expressions as OpenCL C expressions (used for array
/// index expressions in generated kernels, Figure 6 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_ARITH_PRINTER_H
#define LIFT_ARITH_PRINTER_H

#include "arith/ArithExpr.h"

#include <functional>
#include <string>

namespace lift {
namespace arith {

/// Maps a variable to the C identifier (or expression) it is printed as.
/// Returning an empty string falls back to the variable's name.
using VarNameResolver = std::function<std::string(const VarNode &)>;

/// Prints \p E as a C expression. Integer division and modulo print as
/// `/` and `%`, and IntDiv/Mod share C's truncate-toward-zero semantics,
/// so the printed expression computes the same value. Powers print as
/// repeated multiplication since OpenCL C has no integer pow.
std::string toString(const Expr &E, const VarNameResolver &Resolver = {});

} // namespace arith
} // namespace lift

#endif // LIFT_ARITH_PRINTER_H
