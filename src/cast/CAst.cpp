//===- CAst.cpp - OpenCL C abstract syntax trees ----------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "cast/CAst.h"

#include "support/Casting.h"
#include "support/Error.h"

#include <unordered_map>

using namespace lift;
using namespace lift::c;

CType::~CType() = default;
CExpr::~CExpr() = default;
CStmt::~CStmt() = default;

const char *c::addrSpaceQualifier(CAddrSpace AS) {
  switch (AS) {
  case CAddrSpace::Private:
    return "";
  case CAddrSpace::Local:
    return "local";
  case CAddrSpace::Global:
    return "global";
  }
  lift_unreachable("unhandled address space");
}

int StructCType::fieldIndex(const std::string &Field) const {
  for (size_t I = 0, E = Fields.size(); I != E; ++I)
    if (Fields[I].first == Field)
      return static_cast<int>(I);
  return -1;
}

CTypePtr c::voidTy() {
  static CTypePtr T = std::make_shared<VoidCType>();
  return T;
}

CTypePtr c::floatTy() {
  static CTypePtr T = std::make_shared<ScalarCType>(CScalarKind::Float);
  return T;
}

CTypePtr c::doubleTy() {
  static CTypePtr T = std::make_shared<ScalarCType>(CScalarKind::Double);
  return T;
}

CTypePtr c::intTy() {
  static CTypePtr T = std::make_shared<ScalarCType>(CScalarKind::Int);
  return T;
}

CTypePtr c::boolTy() {
  static CTypePtr T = std::make_shared<ScalarCType>(CScalarKind::Bool);
  return T;
}

CTypePtr c::vectorTy(CScalarKind S, unsigned Width) {
  return std::make_shared<VectorCType>(S, Width);
}

CTypePtr c::structTy(std::string Name,
                     std::vector<std::pair<std::string, CTypePtr>> Fields) {
  return std::make_shared<StructCType>(std::move(Name), std::move(Fields));
}

CTypePtr c::pointerTy(CTypePtr Pointee, CAddrSpace AS) {
  return std::make_shared<PointerCType>(std::move(Pointee), AS);
}

static const char *scalarCName(CScalarKind S) {
  switch (S) {
  case CScalarKind::Float:
    return "float";
  case CScalarKind::Double:
    return "double";
  case CScalarKind::Int:
    return "int";
  case CScalarKind::Bool:
    return "bool";
  }
  lift_unreachable("unhandled scalar kind");
}

std::string c::cTypeToString(const CTypePtr &T) {
  switch (T->getKind()) {
  case CTypeKind::Void:
    return "void";
  case CTypeKind::Scalar:
    return scalarCName(cast<ScalarCType>(T.get())->getScalarKind());
  case CTypeKind::Vector: {
    const auto *V = cast<VectorCType>(T.get());
    return std::string(scalarCName(V->getScalarKind())) +
           std::to_string(V->getWidth());
  }
  case CTypeKind::Struct:
    return cast<StructCType>(T.get())->getName();
  case CTypeKind::Pointer: {
    const auto *P = cast<PointerCType>(T.get());
    std::string Q = addrSpaceQualifier(P->getAddrSpace());
    std::string Inner = cTypeToString(P->getPointee());
    return Q.empty() ? Inner + "*" : Q + " " + Inner + "*";
  }
  }
  lift_unreachable("unhandled type kind");
}

static unsigned scalarCSize(CScalarKind S) {
  switch (S) {
  case CScalarKind::Float:
    return 4;
  case CScalarKind::Double:
    return 8;
  case CScalarKind::Int:
    return 4;
  case CScalarKind::Bool:
    return 1;
  }
  lift_unreachable("unhandled scalar kind");
}

unsigned c::cTypeSize(const CTypePtr &T) {
  switch (T->getKind()) {
  case CTypeKind::Void:
    return 0;
  case CTypeKind::Scalar:
    return scalarCSize(cast<ScalarCType>(T.get())->getScalarKind());
  case CTypeKind::Vector: {
    const auto *V = cast<VectorCType>(T.get());
    return scalarCSize(V->getScalarKind()) * V->getWidth();
  }
  case CTypeKind::Struct: {
    unsigned Size = 0;
    for (const auto &[Name, FieldTy] : cast<StructCType>(T.get())->getFields())
      Size += cTypeSize(FieldTy);
    return Size;
  }
  case CTypeKind::Pointer:
    return 8;
  }
  lift_unreachable("unhandled type kind");
}

bool c::cTypeEquals(const CTypePtr &A, const CTypePtr &B) {
  if (A.get() == B.get())
    return true;
  if (!A || !B || A->getKind() != B->getKind())
    return false;
  switch (A->getKind()) {
  case CTypeKind::Void:
    return true;
  case CTypeKind::Scalar:
    return cast<ScalarCType>(A.get())->getScalarKind() ==
           cast<ScalarCType>(B.get())->getScalarKind();
  case CTypeKind::Vector: {
    const auto *VA = cast<VectorCType>(A.get());
    const auto *VB = cast<VectorCType>(B.get());
    return VA->getScalarKind() == VB->getScalarKind() &&
           VA->getWidth() == VB->getWidth();
  }
  case CTypeKind::Struct:
    return cast<StructCType>(A.get())->getName() ==
           cast<StructCType>(B.get())->getName();
  case CTypeKind::Pointer: {
    const auto *PA = cast<PointerCType>(A.get());
    const auto *PB = cast<PointerCType>(B.get());
    return PA->getAddrSpace() == PB->getAddrSpace() &&
           cTypeEquals(PA->getPointee(), PB->getPointee());
  }
  }
  lift_unreachable("unhandled type kind");
}

CFunctionPtr CModule::findFunction(const std::string &Name) const {
  for (const CFunctionPtr &F : Functions)
    if (F->Name == Name)
      return F;
  return nullptr;
}

CallKind c::classifyBuiltin(const std::string &Name) {
  static const std::unordered_map<std::string, CallKind> Builtins = {
      {"get_local_id", CallKind::GetLocalId},
      {"get_group_id", CallKind::GetGroupId},
      {"get_global_id", CallKind::GetGlobalId},
      {"get_local_size", CallKind::GetLocalSize},
      {"get_num_groups", CallKind::GetNumGroups},
      {"get_global_size", CallKind::GetGlobalSize},
      {"sqrt", CallKind::Sqrt},
      {"rsqrt", CallKind::Rsqrt},
      {"sin", CallKind::Sin},
      {"cos", CallKind::Cos},
      {"exp", CallKind::Exp},
      {"log", CallKind::Log},
      {"fabs", CallKind::Fabs},
      {"floor", CallKind::Floor},
      {"fmin", CallKind::Fmin},
      {"min", CallKind::Fmin},
      {"fmax", CallKind::Fmax},
      {"max", CallKind::Fmax},
      {"pow", CallKind::Pow},
      {"dot", CallKind::Dot},
  };
  auto It = Builtins.find(Name);
  return It == Builtins.end() ? CallKind::User : It->second;
}
