//===- CAst.h - OpenCL C abstract syntax trees ------------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A typed AST for the OpenCL C subset emitted by the Lift code generator
/// and accepted by the user-function parser. The same AST is (a) printed
/// as OpenCL C source (the paper's compiler output, Figure 7) and (b)
/// executed directly by the simulated OpenCL runtime in src/ocl, so the
/// code path that is validated is exactly the code that is emitted.
///
/// Array index expressions embed symbolic arith::Expr nodes; this is what
/// lets the cost model count divisions/modulos per access and lets the
/// printer reproduce both the simplified and unsimplified indices of
/// Figure 6.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_CAST_CAST_H
#define LIFT_CAST_CAST_H

#include "arith/ArithExpr.h"

#include <memory>
#include <string>
#include <vector>

namespace lift {
namespace c {

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

class CType;
using CTypePtr = std::shared_ptr<const CType>;

enum class CTypeKind { Void, Scalar, Vector, Struct, Pointer };

enum class CScalarKind { Float, Double, Int, Bool };

enum class CAddrSpace { Private, Local, Global };

const char *addrSpaceQualifier(CAddrSpace AS);

class CType {
  const CTypeKind Kind;

protected:
  explicit CType(CTypeKind K) : Kind(K) {}

public:
  virtual ~CType();

  CTypeKind getKind() const { return Kind; }
};

class VoidCType : public CType {
public:
  VoidCType() : CType(CTypeKind::Void) {}

  static bool classof(const CType *T) {
    return T->getKind() == CTypeKind::Void;
  }
};

class ScalarCType : public CType {
  CScalarKind Scalar;

public:
  explicit ScalarCType(CScalarKind S) : CType(CTypeKind::Scalar), Scalar(S) {}

  CScalarKind getScalarKind() const { return Scalar; }

  static bool classof(const CType *T) {
    return T->getKind() == CTypeKind::Scalar;
  }
};

class VectorCType : public CType {
  CScalarKind Scalar;
  unsigned Width;

public:
  VectorCType(CScalarKind S, unsigned Width)
      : CType(CTypeKind::Vector), Scalar(S), Width(Width) {}

  CScalarKind getScalarKind() const { return Scalar; }
  unsigned getWidth() const { return Width; }

  static bool classof(const CType *T) {
    return T->getKind() == CTypeKind::Vector;
  }
};

/// A named struct with ordered fields (the lowering of Lift tuple types).
class StructCType : public CType {
  std::string Name;
  std::vector<std::pair<std::string, CTypePtr>> Fields;

public:
  StructCType(std::string Name,
              std::vector<std::pair<std::string, CTypePtr>> Fields)
      : CType(CTypeKind::Struct), Name(std::move(Name)),
        Fields(std::move(Fields)) {}

  const std::string &getName() const { return Name; }
  const std::vector<std::pair<std::string, CTypePtr>> &getFields() const {
    return Fields;
  }

  /// Index of a field by name, or -1.
  int fieldIndex(const std::string &Field) const;

  static bool classof(const CType *T) {
    return T->getKind() == CTypeKind::Struct;
  }
};

class PointerCType : public CType {
  CTypePtr Pointee;
  CAddrSpace AS;

public:
  PointerCType(CTypePtr Pointee, CAddrSpace AS)
      : CType(CTypeKind::Pointer), Pointee(std::move(Pointee)), AS(AS) {}

  const CTypePtr &getPointee() const { return Pointee; }
  CAddrSpace getAddrSpace() const { return AS; }

  static bool classof(const CType *T) {
    return T->getKind() == CTypeKind::Pointer;
  }
};

CTypePtr voidTy();
CTypePtr floatTy();
CTypePtr doubleTy();
CTypePtr intTy();
CTypePtr boolTy();
CTypePtr vectorTy(CScalarKind S, unsigned Width);
CTypePtr structTy(std::string Name,
                  std::vector<std::pair<std::string, CTypePtr>> Fields);
CTypePtr pointerTy(CTypePtr Pointee, CAddrSpace AS);

/// Renders a type as OpenCL C, e.g. "global float*" or "float4".
std::string cTypeToString(const CTypePtr &T);

/// Size of one value in bytes (packed; matches ir::sizeInBytes).
unsigned cTypeSize(const CTypePtr &T);

bool cTypeEquals(const CTypePtr &A, const CTypePtr &B);

//===----------------------------------------------------------------------===//
// Variables
//===----------------------------------------------------------------------===//

/// A C variable. If ArithId is non-zero the variable is the runtime value
/// of that symbolic arith variable (loop indices, size parameters) and
/// assignments to it also update the symbolic environment.
struct CVar {
  std::string Name;
  CTypePtr Ty;
  unsigned ArithId = 0;

  /// Dense frame slot assigned once per compiled kernel (see
  /// codegen::computeVarSlots). The simulated runtime indexes flat
  /// per-work-item frames with it instead of hashing CVar pointers.
  /// -1 until slots are assigned. Variables are module-private (every
  /// compile clones its program), so the annotation cannot leak between
  /// kernels.
  mutable int Slot = -1;
  /// Canonical slot holding the runtime value of ArithId (several
  /// variables may alias one symbolic arith variable; they share one
  /// arith-value cell). -1 when ArithId == 0 or slots are unassigned.
  mutable int ArithSlot = -1;

  CVar(std::string Name, CTypePtr Ty, unsigned ArithId = 0)
      : Name(std::move(Name)), Ty(std::move(Ty)), ArithId(ArithId) {}
};

using CVarPtr = std::shared_ptr<CVar>;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

class CExpr;
using CExprPtr = std::shared_ptr<const CExpr>;

enum class CExprKind {
  IntLit,
  FloatLit,
  VarRef,
  ArithValue,
  ArrayAccess,
  Member,
  Binary,
  Unary,
  Call,
  Ternary,
  CastExpr,
  ConstructVector,
  ConstructStruct,
  VectorLoad,
  VectorStore,
};

enum class BinOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And,
  Or,
};

enum class UnOp { Neg, Not };

class CExpr {
  const CExprKind Kind;

protected:
  explicit CExpr(CExprKind K) : Kind(K) {}

public:
  virtual ~CExpr();

  CExprKind getKind() const { return Kind; }
};

class IntLit : public CExpr {
  int64_t Value;

public:
  explicit IntLit(int64_t V) : CExpr(CExprKind::IntLit), Value(V) {}

  int64_t getValue() const { return Value; }

  static bool classof(const CExpr *E) {
    return E->getKind() == CExprKind::IntLit;
  }
};

class FloatLit : public CExpr {
  double Value;
  bool IsDouble;

public:
  FloatLit(double V, bool IsDouble = false)
      : CExpr(CExprKind::FloatLit), Value(V), IsDouble(IsDouble) {}

  double getValue() const { return Value; }
  bool isDouble() const { return IsDouble; }

  static bool classof(const CExpr *E) {
    return E->getKind() == CExprKind::FloatLit;
  }
};

class VarRef : public CExpr {
  CVarPtr Var;

public:
  explicit VarRef(CVarPtr V) : CExpr(CExprKind::VarRef), Var(std::move(V)) {}

  const CVarPtr &getVar() const { return Var; }

  static bool classof(const CExpr *E) {
    return E->getKind() == CExprKind::VarRef;
  }
};

/// A symbolic arithmetic value used as a C expression (loop bounds, array
/// indices, runtime sizes).
class ArithValue : public CExpr {
  arith::Expr Value;

public:
  explicit ArithValue(arith::Expr V)
      : CExpr(CExprKind::ArithValue), Value(std::move(V)) {}

  const arith::Expr &getValue() const { return Value; }

  /// Static (div/mod, other) operation counts of the index expression,
  /// assigned once during launch-plan setup (same idiom as CVar::Slot) so
  /// the interpreter charges the cost model without a per-evaluation
  /// lookup. CostDivMods is -1 until assigned.
  mutable int CostDivMods = -1;
  mutable unsigned CostOthers = 0;

  static bool classof(const CExpr *E) {
    return E->getKind() == CExprKind::ArithValue;
  }
};

class ArrayAccess : public CExpr {
  CExprPtr Base;
  CExprPtr Index;

public:
  ArrayAccess(CExprPtr Base, CExprPtr Index)
      : CExpr(CExprKind::ArrayAccess), Base(std::move(Base)),
        Index(std::move(Index)) {}

  const CExprPtr &getBase() const { return Base; }
  const CExprPtr &getIndex() const { return Index; }

  static bool classof(const CExpr *E) {
    return E->getKind() == CExprKind::ArrayAccess;
  }
};

/// Struct field or vector component access (xy._0, v.x).
class Member : public CExpr {
  CExprPtr Base;
  std::string Field;

public:
  Member(CExprPtr Base, std::string Field)
      : CExpr(CExprKind::Member), Base(std::move(Base)),
        Field(std::move(Field)) {}

  const CExprPtr &getBase() const { return Base; }
  const std::string &getField() const { return Field; }

  static bool classof(const CExpr *E) {
    return E->getKind() == CExprKind::Member;
  }
};

class Binary : public CExpr {
  BinOp Op;
  CExprPtr Lhs, Rhs;

public:
  Binary(BinOp Op, CExprPtr Lhs, CExprPtr Rhs)
      : CExpr(CExprKind::Binary), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}

  BinOp getOp() const { return Op; }
  const CExprPtr &getLhs() const { return Lhs; }
  const CExprPtr &getRhs() const { return Rhs; }

  static bool classof(const CExpr *E) {
    return E->getKind() == CExprKind::Binary;
  }
};

class Unary : public CExpr {
  UnOp Op;
  CExprPtr Sub;

public:
  Unary(UnOp Op, CExprPtr Sub)
      : CExpr(CExprKind::Unary), Op(Op), Sub(std::move(Sub)) {}

  UnOp getOp() const { return Op; }
  const CExprPtr &getSub() const { return Sub; }

  static bool classof(const CExpr *E) {
    return E->getKind() == CExprKind::Unary;
  }
};

/// A call to a user function or a built-in math function, resolved by name
/// against the module's function table (or the interpreter's builtins).
struct CFunction;

/// Callee classification: the OpenCL work-item and math built-ins the
/// simulated runtime implements directly, or a module function.
enum class CallKind : int {
  User = 0,
  GetLocalId,
  GetGroupId,
  GetGlobalId,
  GetLocalSize,
  GetNumGroups,
  GetGlobalSize,
  Sqrt,
  Rsqrt,
  Sin,
  Cos,
  Exp,
  Log,
  Fabs,
  Floor,
  Fmin,
  Fmax,
  Pow,
  Dot,
};

/// Classifies a callee name; CallKind::User for anything that is not a
/// built-in.
CallKind classifyBuiltin(const std::string &Name);

class Call : public CExpr {
  std::string Callee;
  std::vector<CExprPtr> Args;

public:
  Call(std::string Callee, std::vector<CExprPtr> Args)
      : CExpr(CExprKind::Call), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &getCallee() const { return Callee; }
  const std::vector<CExprPtr> &getArgs() const { return Args; }

  /// Callee resolution assigned once per module by
  /// codegen::computeVarSlots (like CVar::Slot): the classified CallKind
  /// and, for CallKind::User, the resolved module function (null when the
  /// module has none of that name — the runtime then reports the unknown
  /// call). -1 until slots are assigned; the runtime falls back to
  /// name-based resolution.
  mutable int ResolvedKind = -1;
  mutable const CFunction *ResolvedFn = nullptr;

  static bool classof(const CExpr *E) {
    return E->getKind() == CExprKind::Call;
  }
};

class Ternary : public CExpr {
  CExprPtr Cond, Then, Else;

public:
  Ternary(CExprPtr Cond, CExprPtr Then, CExprPtr Else)
      : CExpr(CExprKind::Ternary), Cond(std::move(Cond)),
        Then(std::move(Then)), Else(std::move(Else)) {}

  const CExprPtr &getCond() const { return Cond; }
  const CExprPtr &getThen() const { return Then; }
  const CExprPtr &getElse() const { return Else; }

  static bool classof(const CExpr *E) {
    return E->getKind() == CExprKind::Ternary;
  }
};

class CastExpr : public CExpr {
  CTypePtr Ty;
  CExprPtr Sub;

public:
  CastExpr(CTypePtr Ty, CExprPtr Sub)
      : CExpr(CExprKind::CastExpr), Ty(std::move(Ty)), Sub(std::move(Sub)) {}

  const CTypePtr &getType() const { return Ty; }
  const CExprPtr &getSub() const { return Sub; }

  static bool classof(const CExpr *E) {
    return E->getKind() == CExprKind::CastExpr;
  }
};

/// (float4)(a, b, c, d) — or splat with a single argument.
class ConstructVector : public CExpr {
  CTypePtr Ty;
  std::vector<CExprPtr> Args;

public:
  ConstructVector(CTypePtr Ty, std::vector<CExprPtr> Args)
      : CExpr(CExprKind::ConstructVector), Ty(std::move(Ty)),
        Args(std::move(Args)) {}

  const CTypePtr &getType() const { return Ty; }
  const std::vector<CExprPtr> &getArgs() const { return Args; }

  static bool classof(const CExpr *E) {
    return E->getKind() == CExprKind::ConstructVector;
  }
};

/// (struct Name){a, b} — tuple construction.
class ConstructStruct : public CExpr {
  CTypePtr Ty;
  std::vector<CExprPtr> Args;

public:
  ConstructStruct(CTypePtr Ty, std::vector<CExprPtr> Args)
      : CExpr(CExprKind::ConstructStruct), Ty(std::move(Ty)),
        Args(std::move(Args)) {}

  const CTypePtr &getType() const { return Ty; }
  const std::vector<CExprPtr> &getArgs() const { return Args; }

  static bool classof(const CExpr *E) {
    return E->getKind() == CExprKind::ConstructStruct;
  }
};

/// vloadW(index, pointer).
class VectorLoad : public CExpr {
  unsigned Width;
  CExprPtr Index;
  CExprPtr Pointer;

public:
  VectorLoad(unsigned Width, CExprPtr Index, CExprPtr Pointer)
      : CExpr(CExprKind::VectorLoad), Width(Width), Index(std::move(Index)),
        Pointer(std::move(Pointer)) {}

  unsigned getWidth() const { return Width; }
  const CExprPtr &getIndex() const { return Index; }
  const CExprPtr &getPointer() const { return Pointer; }

  static bool classof(const CExpr *E) {
    return E->getKind() == CExprKind::VectorLoad;
  }
};

/// vstoreW(value, index, pointer) — statement-position expression.
class VectorStore : public CExpr {
  unsigned Width;
  CExprPtr Value;
  CExprPtr Index;
  CExprPtr Pointer;

public:
  VectorStore(unsigned Width, CExprPtr Value, CExprPtr Index,
              CExprPtr Pointer)
      : CExpr(CExprKind::VectorStore), Width(Width), Value(std::move(Value)),
        Index(std::move(Index)), Pointer(std::move(Pointer)) {}

  unsigned getWidth() const { return Width; }
  const CExprPtr &getValue() const { return Value; }
  const CExprPtr &getIndex() const { return Index; }
  const CExprPtr &getPointer() const { return Pointer; }

  static bool classof(const CExpr *E) {
    return E->getKind() == CExprKind::VectorStore;
  }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class CStmt;
using CStmtPtr = std::shared_ptr<const CStmt>;

enum class CStmtKind {
  Block,
  VarDecl,
  Assign,
  ExprStmt,
  For,
  If,
  Barrier,
  Return,
  Comment,
};

class CStmt {
  const CStmtKind Kind;

protected:
  explicit CStmt(CStmtKind K) : Kind(K) {}

public:
  virtual ~CStmt();

  CStmtKind getKind() const { return Kind; }
};

class Block : public CStmt {
  std::vector<CStmtPtr> Stmts;

public:
  explicit Block(std::vector<CStmtPtr> Stmts = {})
      : CStmt(CStmtKind::Block), Stmts(std::move(Stmts)) {}

  const std::vector<CStmtPtr> &getStmts() const { return Stmts; }

  static bool classof(const CStmt *S) {
    return S->getKind() == CStmtKind::Block;
  }
};

using BlockPtr = std::shared_ptr<const Block>;

/// Declares a variable; with ArraySize set it declares a C array (used for
/// local memory buffers and private arrays).
class VarDecl : public CStmt {
  CVarPtr Var;
  CExprPtr Init;          // may be null
  arith::Expr ArraySize;  // null unless array
  CAddrSpace AS;

public:
  VarDecl(CVarPtr Var, CExprPtr Init = nullptr,
          arith::Expr ArraySize = nullptr, CAddrSpace AS = CAddrSpace::Private)
      : CStmt(CStmtKind::VarDecl), Var(std::move(Var)), Init(std::move(Init)),
        ArraySize(std::move(ArraySize)), AS(AS) {}

  const CVarPtr &getVar() const { return Var; }
  const CExprPtr &getInit() const { return Init; }
  const arith::Expr &getArraySize() const { return ArraySize; }
  CAddrSpace getAddrSpace() const { return AS; }

  static bool classof(const CStmt *S) {
    return S->getKind() == CStmtKind::VarDecl;
  }
};

class Assign : public CStmt {
  CExprPtr Lhs, Rhs;

public:
  Assign(CExprPtr Lhs, CExprPtr Rhs)
      : CStmt(CStmtKind::Assign), Lhs(std::move(Lhs)), Rhs(std::move(Rhs)) {}

  const CExprPtr &getLhs() const { return Lhs; }
  const CExprPtr &getRhs() const { return Rhs; }

  static bool classof(const CStmt *S) {
    return S->getKind() == CStmtKind::Assign;
  }
};

class ExprStmt : public CStmt {
  CExprPtr E;

public:
  explicit ExprStmt(CExprPtr E) : CStmt(CStmtKind::ExprStmt), E(std::move(E)) {}

  const CExprPtr &getExpr() const { return E; }

  static bool classof(const CStmt *S) {
    return S->getKind() == CStmtKind::ExprStmt;
  }
};

/// for (decl/init; cond; inc) body.
class For : public CStmt {
  CVarPtr IV;
  CExprPtr Init;
  CExprPtr Cond;
  CExprPtr Step; // new value of IV each iteration: IV = Step.
  BlockPtr Body;

public:
  For(CVarPtr IV, CExprPtr Init, CExprPtr Cond, CExprPtr Step, BlockPtr Body)
      : CStmt(CStmtKind::For), IV(std::move(IV)), Init(std::move(Init)),
        Cond(std::move(Cond)), Step(std::move(Step)), Body(std::move(Body)) {}

  const CVarPtr &getIV() const { return IV; }
  const CExprPtr &getInit() const { return Init; }
  const CExprPtr &getCond() const { return Cond; }
  const CExprPtr &getStep() const { return Step; }
  const BlockPtr &getBody() const { return Body; }

  static bool classof(const CStmt *S) { return S->getKind() == CStmtKind::For; }
};

class If : public CStmt {
  CExprPtr Cond;
  BlockPtr Then;
  BlockPtr Else; // may be null

public:
  If(CExprPtr Cond, BlockPtr Then, BlockPtr Else = nullptr)
      : CStmt(CStmtKind::If), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  const CExprPtr &getCond() const { return Cond; }
  const BlockPtr &getThen() const { return Then; }
  const BlockPtr &getElse() const { return Else; }

  static bool classof(const CStmt *S) { return S->getKind() == CStmtKind::If; }
};

/// barrier(CLK_LOCAL_MEM_FENCE and/or CLK_GLOBAL_MEM_FENCE).
class Barrier : public CStmt {
  bool LocalFence;
  bool GlobalFence;

public:
  Barrier(bool LocalFence, bool GlobalFence)
      : CStmt(CStmtKind::Barrier), LocalFence(LocalFence),
        GlobalFence(GlobalFence) {}

  bool hasLocalFence() const { return LocalFence; }
  bool hasGlobalFence() const { return GlobalFence; }

  static bool classof(const CStmt *S) {
    return S->getKind() == CStmtKind::Barrier;
  }
};

class Return : public CStmt {
  CExprPtr Value; // may be null

public:
  explicit Return(CExprPtr Value = nullptr)
      : CStmt(CStmtKind::Return), Value(std::move(Value)) {}

  const CExprPtr &getValue() const { return Value; }

  static bool classof(const CStmt *S) {
    return S->getKind() == CStmtKind::Return;
  }
};

class Comment : public CStmt {
  std::string Text;

public:
  explicit Comment(std::string Text)
      : CStmt(CStmtKind::Comment), Text(std::move(Text)) {}

  const std::string &getText() const { return Text; }

  static bool classof(const CStmt *S) {
    return S->getKind() == CStmtKind::Comment;
  }
};

//===----------------------------------------------------------------------===//
// Functions and modules
//===----------------------------------------------------------------------===//

/// A C function: a user function definition or the kernel itself.
struct CFunction {
  std::string Name;
  CTypePtr ReturnType;
  std::vector<CVarPtr> Params;
  BlockPtr Body;
  bool IsKernel = false;
};

using CFunctionPtr = std::shared_ptr<CFunction>;

/// A translation unit: struct definitions, user functions, one kernel.
struct CModule {
  std::vector<CTypePtr> Structs; // StructCType definitions, in order
  std::vector<CFunctionPtr> Functions;
  CFunctionPtr Kernel;

  /// Finds a function (not the kernel) by name, or null.
  CFunctionPtr findFunction(const std::string &Name) const;
};

} // namespace c
} // namespace lift

#endif // LIFT_CAST_CAST_H
