//===- CPrinter.cpp - OpenCL C source emission ------------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "cast/CPrinter.h"

#include "arith/Printer.h"
#include "support/Casting.h"
#include "support/Error.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace lift;
using namespace lift::c;

std::string c::formatFloatLiteral(double Value, bool IsDouble) {
  if (std::isnan(Value))
    return "NAN";
  if (std::isinf(Value))
    return Value < 0 ? "(-INFINITY)" : "INFINITY";
  char Buf[64];
  // max_digits10 significant digits: every distinct value gets a distinct
  // decimal spelling that parses back to the exact same value.
  std::snprintf(Buf, sizeof(Buf), "%.*g", IsDouble ? 17 : 9, Value);
  std::string S = Buf;
  double Back = std::strtod(S.c_str(), nullptr);
  bool RoundTrips = IsDouble ? Back == Value
                             : static_cast<float>(Back) ==
                                   static_cast<float>(Value);
  if (!RoundTrips) {
    // Hex-float spelling is exact by construction.
    std::snprintf(Buf, sizeof(Buf), "%a", Value);
    S = Buf;
  }
  // Ensure a decimal point or exponent so the literal stays floating.
  if (S.find('.') == std::string::npos && S.find('e') == std::string::npos &&
      S.find('x') == std::string::npos)
    S += ".0";
  return IsDouble ? S : S + "f";
}

namespace {

const char *binOpSpelling(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::Div:
    return "/";
  case BinOp::Rem:
    return "%";
  case BinOp::Lt:
    return "<";
  case BinOp::Le:
    return "<=";
  case BinOp::Gt:
    return ">";
  case BinOp::Ge:
    return ">=";
  case BinOp::Eq:
    return "==";
  case BinOp::Ne:
    return "!=";
  case BinOp::And:
    return "&&";
  case BinOp::Or:
    return "||";
  }
  lift_unreachable("unhandled binary operator");
}

class CPrinterImpl {
  std::ostringstream OS;
  unsigned Indent = 0;

public:
  std::string module(const CModule &M) {
    for (const CTypePtr &S : M.Structs) {
      const auto *ST = cast<StructCType>(S.get());
      OS << "typedef struct {\n";
      for (const auto &[Name, Ty] : ST->getFields())
        OS << "  " << cTypeToString(Ty) << " " << Name << ";\n";
      OS << "} " << ST->getName() << ";\n\n";
    }
    for (const CFunctionPtr &F : M.Functions) {
      function(*F);
      OS << "\n";
    }
    if (M.Kernel)
      function(*M.Kernel);
    return OS.str();
  }

  void function(const CFunction &F) {
    if (F.IsKernel)
      OS << "kernel ";
    OS << cTypeToString(F.ReturnType) << " " << F.Name << "(";
    for (size_t I = 0, E = F.Params.size(); I != E; ++I) {
      if (I != 0)
        OS << ", ";
      const CVar &P = *F.Params[I];
      if (F.IsKernel && isa<PointerCType>(P.Ty.get())) {
        const auto *PT = cast<PointerCType>(P.Ty.get());
        OS << addrSpaceQualifier(PT->getAddrSpace()) << " "
           << cTypeToString(PT->getPointee()) << " *restrict " << P.Name;
      } else {
        OS << cTypeToString(P.Ty) << " " << P.Name;
      }
    }
    OS << ") {\n";
    ++Indent;
    for (const CStmtPtr &S : F.Body->getStmts())
      stmt(S);
    --Indent;
    OS << "}\n";
  }

  std::string str() const { return OS.str(); }

  std::string statement(const CStmtPtr &S) {
    stmt(S);
    return OS.str();
  }

  std::string expression(const CExprPtr &E) {
    expr(E, 0);
    return OS.str();
  }

private:
  void line() {
    for (unsigned I = 0; I != Indent; ++I)
      OS << "  ";
  }

  void block(const BlockPtr &B) {
    OS << "{\n";
    ++Indent;
    for (const CStmtPtr &S : B->getStmts())
      stmt(S);
    --Indent;
    line();
    OS << "}";
  }

  void stmt(const CStmtPtr &S) {
    switch (S->getKind()) {
    case CStmtKind::Block: {
      line();
      BlockPtr B = cast<Block>(S);
      block(B);
      OS << "\n";
      return;
    }
    case CStmtKind::VarDecl: {
      const auto *D = cast<VarDecl>(S.get());
      line();
      const char *Q = addrSpaceQualifier(D->getAddrSpace());
      if (*Q)
        OS << Q << " ";
      OS << cTypeToString(D->getVar()->Ty) << " " << D->getVar()->Name;
      if (D->getArraySize())
        OS << "[" << arith::toString(D->getArraySize()) << "]";
      if (D->getInit()) {
        OS << " = ";
        expr(D->getInit(), 0);
      }
      OS << ";\n";
      return;
    }
    case CStmtKind::Assign: {
      const auto *A = cast<Assign>(S.get());
      line();
      expr(A->getLhs(), 0);
      OS << " = ";
      expr(A->getRhs(), 0);
      OS << ";\n";
      return;
    }
    case CStmtKind::ExprStmt: {
      line();
      expr(cast<ExprStmt>(S.get())->getExpr(), 0);
      OS << ";\n";
      return;
    }
    case CStmtKind::For: {
      const auto *F = cast<For>(S.get());
      line();
      OS << "for (" << cTypeToString(F->getIV()->Ty) << " "
         << F->getIV()->Name << " = ";
      expr(F->getInit(), 0);
      OS << "; ";
      expr(F->getCond(), 0);
      OS << "; " << F->getIV()->Name << " = ";
      expr(F->getStep(), 0);
      OS << ") ";
      block(F->getBody());
      OS << "\n";
      return;
    }
    case CStmtKind::If: {
      const auto *I = cast<If>(S.get());
      line();
      OS << "if (";
      expr(I->getCond(), 0);
      OS << ") ";
      block(I->getThen());
      if (I->getElse()) {
        OS << " else ";
        block(I->getElse());
      }
      OS << "\n";
      return;
    }
    case CStmtKind::Barrier: {
      const auto *B = cast<Barrier>(S.get());
      line();
      OS << "barrier(";
      if (B->hasLocalFence() && B->hasGlobalFence())
        OS << "CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE";
      else if (B->hasLocalFence())
        OS << "CLK_LOCAL_MEM_FENCE";
      else
        OS << "CLK_GLOBAL_MEM_FENCE";
      OS << ");\n";
      return;
    }
    case CStmtKind::Return: {
      const auto *R = cast<Return>(S.get());
      line();
      OS << "return";
      if (R->getValue()) {
        OS << " ";
        expr(R->getValue(), 0);
      }
      OS << ";\n";
      return;
    }
    case CStmtKind::Comment: {
      line();
      OS << "/* " << cast<Comment>(S.get())->getText() << " */\n";
      return;
    }
    }
    lift_unreachable("unhandled statement kind");
  }

  /// Precedence: 0 lowest (comma-free top level) .. 15 primary. Only the
  /// levels we emit are distinguished.
  static int precOf(BinOp Op) {
    switch (Op) {
    case BinOp::Mul:
    case BinOp::Div:
    case BinOp::Rem:
      return 10;
    case BinOp::Add:
    case BinOp::Sub:
      return 9;
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
      return 8;
    case BinOp::Eq:
    case BinOp::Ne:
      return 7;
    case BinOp::And:
      return 5;
    case BinOp::Or:
      return 4;
    }
    lift_unreachable("unhandled binary operator");
  }

  void expr(const CExprPtr &E, int ParentPrec) {
    switch (E->getKind()) {
    case CExprKind::IntLit:
      OS << cast<IntLit>(E.get())->getValue();
      return;
    case CExprKind::FloatLit: {
      const auto *F = cast<FloatLit>(E.get());
      OS << formatFloatLiteral(F->getValue(), F->isDouble());
      return;
    }
    case CExprKind::VarRef:
      OS << cast<VarRef>(E.get())->getVar()->Name;
      return;
    case CExprKind::ArithValue: {
      const arith::Expr &V = cast<ArithValue>(E.get())->getValue();
      std::string S = arith::toString(V);
      if (ParentPrec > 0)
        OS << "(" << S << ")";
      else
        OS << S;
      return;
    }
    case CExprKind::ArrayAccess: {
      const auto *A = cast<ArrayAccess>(E.get());
      expr(A->getBase(), 15);
      OS << "[";
      expr(A->getIndex(), 0);
      OS << "]";
      return;
    }
    case CExprKind::Member: {
      const auto *M = cast<Member>(E.get());
      expr(M->getBase(), 15);
      OS << "." << M->getField();
      return;
    }
    case CExprKind::Binary: {
      const auto *B = cast<Binary>(E.get());
      int Prec = precOf(B->getOp());
      if (ParentPrec >= Prec)
        OS << "(";
      expr(B->getLhs(), Prec - 1);
      OS << " " << binOpSpelling(B->getOp()) << " ";
      expr(B->getRhs(), Prec);
      if (ParentPrec >= Prec)
        OS << ")";
      return;
    }
    case CExprKind::Unary: {
      const auto *U = cast<Unary>(E.get());
      OS << (U->getOp() == UnOp::Neg ? "-" : "!");
      expr(U->getSub(), 14);
      return;
    }
    case CExprKind::Call: {
      const auto *C = cast<Call>(E.get());
      OS << C->getCallee() << "(";
      const auto &Args = C->getArgs();
      for (size_t I = 0, N = Args.size(); I != N; ++I) {
        if (I != 0)
          OS << ", ";
        expr(Args[I], 0);
      }
      OS << ")";
      return;
    }
    case CExprKind::Ternary: {
      const auto *T = cast<Ternary>(E.get());
      if (ParentPrec > 0)
        OS << "(";
      expr(T->getCond(), 3);
      OS << " ? ";
      expr(T->getThen(), 3);
      OS << " : ";
      expr(T->getElse(), 2);
      if (ParentPrec > 0)
        OS << ")";
      return;
    }
    case CExprKind::CastExpr: {
      const auto *C = cast<CastExpr>(E.get());
      OS << "(" << cTypeToString(C->getType()) << ")";
      expr(C->getSub(), 14);
      return;
    }
    case CExprKind::ConstructVector: {
      const auto *V = cast<ConstructVector>(E.get());
      OS << "(" << cTypeToString(V->getType()) << ")(";
      const auto &Args = V->getArgs();
      for (size_t I = 0, N = Args.size(); I != N; ++I) {
        if (I != 0)
          OS << ", ";
        expr(Args[I], 0);
      }
      OS << ")";
      return;
    }
    case CExprKind::ConstructStruct: {
      const auto *C = cast<ConstructStruct>(E.get());
      OS << "(" << cTypeToString(C->getType()) << "){";
      const auto &Args = C->getArgs();
      for (size_t I = 0, N = Args.size(); I != N; ++I) {
        if (I != 0)
          OS << ", ";
        expr(Args[I], 0);
      }
      OS << "}";
      return;
    }
    case CExprKind::VectorLoad: {
      const auto *V = cast<VectorLoad>(E.get());
      OS << "vload" << V->getWidth() << "(";
      expr(V->getIndex(), 0);
      OS << ", ";
      expr(V->getPointer(), 0);
      OS << ")";
      return;
    }
    case CExprKind::VectorStore: {
      const auto *V = cast<VectorStore>(E.get());
      OS << "vstore" << V->getWidth() << "(";
      expr(V->getValue(), 0);
      OS << ", ";
      expr(V->getIndex(), 0);
      OS << ", ";
      expr(V->getPointer(), 0);
      OS << ")";
      return;
    }
    }
    lift_unreachable("unhandled expression kind");
  }
};

} // namespace

std::string c::printModule(const CModule &M) {
  return CPrinterImpl().module(M);
}

std::string c::printFunction(const CFunction &F) {
  CPrinterImpl P;
  P.function(F);
  return P.str();
}

std::string c::printStmt(const CStmtPtr &S) {
  return CPrinterImpl().statement(S);
}

std::string c::printCExpr(const CExprPtr &E) {
  return CPrinterImpl().expression(E);
}
