//===- CPrinter.h - OpenCL C source emission --------------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints C AST modules as OpenCL C source text — the final output of the
/// Lift compiler (Figure 7 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_CAST_CPRINTER_H
#define LIFT_CAST_CPRINTER_H

#include "cast/CAst.h"

#include <string>

namespace lift {
namespace c {

/// Renders a floating-point literal so that parsing it back yields the
/// exact same value: round-trippable max_digits10 decimal forms (with a
/// hex-float fallback for the rare value that still fails to round-trip),
/// INFINITY / -INFINITY for infinities and NAN for NaNs. \p IsDouble
/// selects the double spelling; the float spelling carries the "f"
/// suffix and uses float precision. Shared by the OpenCL printer and the
/// native C++ backend (native/NativePrinter.cpp).
std::string formatFloatLiteral(double Value, bool IsDouble);

/// Renders a whole module (struct definitions, user functions, kernel).
std::string printModule(const CModule &M);

/// Renders a single function.
std::string printFunction(const CFunction &F);

/// Renders a statement (tests, diagnostics).
std::string printStmt(const CStmtPtr &S);

/// Renders an expression.
std::string printCExpr(const CExprPtr &E);

} // namespace c
} // namespace lift

#endif // LIFT_CAST_CPRINTER_H
