//===- Codegen.cpp - OpenCL code generation from the Lift IR ----------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The OpenCL code generation stage (section 5.5): traverses the Lift IR
/// following the data flow and emits matching OpenCL code snippets for each
/// pattern. Data layout patterns emit no code — their effect is recorded in
/// views. Map patterns become loops, which control-flow simplification
/// turns into guarded or straight-line code whenever the range analysis
/// proves the trip count is at most / exactly one per thread. Memory
/// allocation (section 5.2) happens here as well: only function calls that
/// actually modify data allocate buffers, sized from the type information
/// and the enclosing parallel context.
///
//===----------------------------------------------------------------------===//

#include "codegen/Compiler.h"

#include "arith/Bounds.h"
#include "arith/Printer.h"
#include "cast/CPrinter.h"
#include "cparse/CParser.h"
#include "ir/Prelude.h"
#include "ir/TypeInference.h"
#include "passes/AddressSpaceInference.h"
#include "passes/BarrierElimination.h"
#include "passes/Verify.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/Error.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

using namespace lift;
using namespace lift::codegen;
using namespace lift::ir;

namespace {

/// A typed view: how to read a value, plus its Lift type.
struct TV {
  view::View V;
  TypePtr Ty;
};

/// One enclosing loop: its index variable, extent, and scope level, used
/// to size and index fresh allocations (the "multiplier" of the paper's
/// memory allocator).
struct LoopCtx {
  arith::Expr IV;
  arith::Expr Extent;
  enum Level { Seq, Thread, WorkGroup } L;
};

class Generator {
  const LambdaPtr &Program;
  CompilerOptions Opts;
  CompiledKernel K;

  std::vector<std::vector<c::CStmtPtr>> Blocks;
  std::vector<c::CStmtPtr> TopDecls;
  std::vector<LoopCtx> Ctx;
  /// Nesting depth of mapLcl emission: only the outermost mapLcl of a
  /// nest emits the barrier (the whole nest is one cooperative phase).
  unsigned MapLclDepth = 0;
  std::unordered_map<const Expr *, view::View> ParamViews;
  unsigned NextStorageId = 1;
  unsigned NextName = 0;

  // Thread-id variables per (function kind, dimension).
  struct TidVar {
    std::shared_ptr<const arith::VarNode> AVar;
    c::CVarPtr CV;
  };
  std::map<std::pair<int, unsigned>, TidVar> TidVars;

  // Registered user functions: (name, vector width) -> definition.
  struct UFInstance {
    const UserFun *UF;
    unsigned Width;
    std::string MangledName;
  };
  std::map<std::pair<std::string, unsigned>, UFInstance> UserFuns;
  std::vector<std::pair<std::string, unsigned>> UserFunOrder;

  // Registered tuple struct types by canonical name.
  std::map<std::string, c::CTypePtr> Structs;
  std::vector<c::CTypePtr> StructOrder;

public:
  Generator(const LambdaPtr &Program, const CompilerOptions &Opts)
      : Program(Program), Opts(Opts) {
    K.Options = Opts;
  }

  CompiledKernel run() {
    Blocks.emplace_back();

    // Kernel parameters: program inputs first.
    std::set<unsigned> SizeVarIds;
    std::vector<std::shared_ptr<const arith::VarNode>> SizeVars;
    for (const ParamPtr &P : Program->getParams()) {
      collectSizeVars(P->Ty, SizeVarIds, SizeVars);
      if (isa<ArrayType>(P->Ty.get())) {
        auto Store = makeStorage(P->getName(), c::CAddrSpace::Global,
                                 cTypeOf(baseElementType(P->Ty)),
                                 elementCount(P->Ty));
        Store->Var = std::make_shared<c::CVar>(
            P->getName(),
            c::pointerTy(Store->ElemType, c::CAddrSpace::Global));
        KernelParamInfo Info;
        Info.Var = Store->Var;
        Info.Store = Store;
        K.Params.push_back(Info);
        K.StorageVars.emplace_back(Store->Id, Store->Var);
        ParamViews[P.get()] =
            std::make_shared<view::MemoryView>(Store, typeDims(P->Ty));
      } else {
        // Scalar parameter passed by value.
        auto Var = std::make_shared<c::CVar>(P->getName(), cTypeOf(P->Ty));
        auto Store = makeStorage(P->getName(), c::CAddrSpace::Private,
                                 cTypeOf(P->Ty), nullptr);
        Store->Var = Var;
        KernelParamInfo Info;
        Info.Var = Var;
        Info.Store = Store;
        K.Params.push_back(Info);
        ParamViews[P.get()] = std::make_shared<view::MemoryView>(
            Store, std::vector<arith::Expr>{});
      }
    }

    // Output buffer.
    TypePtr OutTy = Program->getBody()->Ty;
    K.OutputType = OutTy;
    collectSizeVars(OutTy, SizeVarIds, SizeVars);
    auto OutStore = makeStorage("out", c::CAddrSpace::Global,
                                cTypeOf(baseElementType(OutTy)),
                                elementCount(OutTy));
    OutStore->Var = std::make_shared<c::CVar>(
        "out", c::pointerTy(OutStore->ElemType, c::CAddrSpace::Global));
    {
      KernelParamInfo Info;
      Info.Var = OutStore->Var;
      Info.Store = OutStore;
      Info.IsOutput = true;
      K.Params.push_back(Info);
      K.StorageVars.emplace_back(OutStore->Id, OutStore->Var);
    }

    // Size parameters (int) for every arith variable in the types.
    for (const auto &V : SizeVars) {
      auto Var = std::make_shared<c::CVar>(V->getName(), c::intTy(),
                                           V->getId());
      KernelParamInfo Info;
      Info.Var = Var;
      Info.IsSizeParam = true;
      Info.ArithId = V->getId();
      K.Params.push_back(Info);
    }

    view::View OutView =
        std::make_shared<view::MemoryView>(OutStore, typeDims(OutTy));

    {
      arith::SimplifyGuard Guard(Opts.ArrayAccessSimplification);
      emitExpr(Program->getBody(), OutView);
    }

    finishModule();
    return std::move(K);
  }

private:
  //===--------------------------------------------------------------------===//
  // Small helpers
  //===--------------------------------------------------------------------===//

  [[noreturn]] void notSupported(const std::string &What) {
    throwDiag(DiagCode::CodegenUnsupported, DiagLocation(),
              "code generation: " + What);
  }

  void emit(c::CStmtPtr S) { Blocks.back().push_back(std::move(S)); }

  std::string freshName(const std::string &Hint) {
    return Hint + "_" + std::to_string(NextName++);
  }

  view::StoragePtr makeStorage(const std::string &Name, c::CAddrSpace AS,
                               c::CTypePtr Elem, arith::Expr Count) {
    auto S = std::make_shared<view::Storage>();
    S->Id = NextStorageId++;
    S->AS = AS;
    S->ElemType = std::move(Elem);
    S->NumElements = std::move(Count);
    S->Var = std::make_shared<c::CVar>(Name, S->ElemType);
    return S;
  }

  static void
  collectSizeVarsArith(const arith::Expr &E, std::set<unsigned> &Seen,
                       std::vector<std::shared_ptr<const arith::VarNode>> &Out) {
    switch (E->getKind()) {
    case arith::ExprKind::Var: {
      auto V = cast<arith::VarNode>(E);
      if (Seen.insert(V->getId()).second)
        Out.push_back(V);
      return;
    }
    case arith::ExprKind::Cst:
      return;
    case arith::ExprKind::Sum:
      for (const auto &Op : cast<arith::SumNode>(E)->getOperands())
        collectSizeVarsArith(Op, Seen, Out);
      return;
    case arith::ExprKind::Prod:
      for (const auto &Op : cast<arith::ProdNode>(E)->getOperands())
        collectSizeVarsArith(Op, Seen, Out);
      return;
    case arith::ExprKind::IntDiv: {
      auto D = cast<arith::IntDivNode>(E);
      collectSizeVarsArith(D->getNumerator(), Seen, Out);
      collectSizeVarsArith(D->getDenominator(), Seen, Out);
      return;
    }
    case arith::ExprKind::Mod: {
      auto M = cast<arith::ModNode>(E);
      collectSizeVarsArith(M->getDividend(), Seen, Out);
      collectSizeVarsArith(M->getDivisor(), Seen, Out);
      return;
    }
    case arith::ExprKind::Pow:
      collectSizeVarsArith(cast<arith::PowNode>(E)->getBase(), Seen, Out);
      return;
    case arith::ExprKind::Lookup:
      collectSizeVarsArith(cast<arith::LookupNode>(E)->getIndex(), Seen, Out);
      return;
    }
  }

  static void
  collectSizeVars(const TypePtr &T, std::set<unsigned> &Seen,
                  std::vector<std::shared_ptr<const arith::VarNode>> &Out) {
    if (const auto *A = dyn_cast<ArrayType>(T.get())) {
      collectSizeVarsArith(A->getSize(), Seen, Out);
      collectSizeVars(A->getElementType(), Seen, Out);
    } else if (const auto *Tu = dyn_cast<TupleType>(T.get())) {
      for (const TypePtr &E : Tu->getElements())
        collectSizeVars(E, Seen, Out);
    }
  }

  /// True if the type is or contains an array (then it is manipulated
  /// through views rather than as a C value).
  static bool containsArrayType(const TypePtr &T) {
    if (isa<ArrayType>(T.get()))
      return true;
    if (const auto *Tu = dyn_cast<TupleType>(T.get())) {
      for (const TypePtr &E : Tu->getElements())
        if (containsArrayType(E))
          return true;
    }
    return false;
  }

  /// Array dimension sizes, outermost first.
  static std::vector<arith::Expr> typeDims(const TypePtr &T) {
    std::vector<arith::Expr> Dims;
    const Type *Cur = T.get();
    while (const auto *A = dyn_cast<ArrayType>(Cur)) {
      Dims.push_back(A->getSize());
      Cur = A->getElementType().get();
    }
    return Dims;
  }

  /// Converts a Lift value type to a C type, registering tuple structs.
  c::CTypePtr cTypeOf(const TypePtr &T) {
    switch (T->getKind()) {
    case TypeKind::Scalar:
      switch (cast<ScalarType>(T.get())->getScalarKind()) {
      case ScalarKind::Float:
        return c::floatTy();
      case ScalarKind::Double:
        return c::doubleTy();
      case ScalarKind::Int:
        return c::intTy();
      case ScalarKind::Bool:
        return c::boolTy();
      }
      lift_unreachable("unhandled scalar kind");
    case TypeKind::Vector: {
      const auto *V = cast<VectorType>(T.get());
      return c::vectorTy(toCScalar(V->getScalarKind()), V->getWidth());
    }
    case TypeKind::Tuple:
      return structFor(cast<TupleType>(T.get()));
    case TypeKind::Array:
      notSupported("array-typed value in a scalar position");
    }
    lift_unreachable("unhandled type kind");
  }

  static c::CScalarKind toCScalar(ScalarKind S) {
    switch (S) {
    case ScalarKind::Float:
      return c::CScalarKind::Float;
    case ScalarKind::Double:
      return c::CScalarKind::Double;
    case ScalarKind::Int:
      return c::CScalarKind::Int;
    case ScalarKind::Bool:
      return c::CScalarKind::Bool;
    }
    lift_unreachable("unhandled scalar kind");
  }

  /// Canonical struct for a tuple type, e.g. Tuple2_float_int.
  c::CTypePtr structFor(const TupleType *T) {
    std::string Name = "Tuple" + std::to_string(T->getElements().size());
    for (const TypePtr &E : T->getElements())
      Name += "_" + typeToString(E);
    auto It = Structs.find(Name);
    if (It != Structs.end())
      return It->second;
    std::vector<std::pair<std::string, c::CTypePtr>> Fields;
    unsigned I = 0;
    for (const TypePtr &E : T->getElements())
      Fields.emplace_back("_" + std::to_string(I++), cTypeOf(E));
    c::CTypePtr S = c::structTy(Name, std::move(Fields));
    Structs[Name] = S;
    StructOrder.push_back(S);
    return S;
  }

  //===--------------------------------------------------------------------===//
  // Memory allocation
  //===--------------------------------------------------------------------===//

  struct Alloc {
    view::StoragePtr Store;
    view::View V; ///< Serves as both output view and read view.
  };

  static c::CAddrSpace toCAddrSpace(AddressSpace AS) {
    switch (AS) {
    case AddressSpace::Private:
      return c::CAddrSpace::Private;
    case AddressSpace::Local:
      return c::CAddrSpace::Local;
    case AddressSpace::Global:
    case AddressSpace::Undef:
      return c::CAddrSpace::Global;
    }
    lift_unreachable("unhandled address space");
  }

  /// Allocates memory for an intermediate result of type \p Ty produced in
  /// the current loop context. Global buffers span the whole NDRange,
  /// local buffers one work group, private buffers one thread; the
  /// included enclosing loop indices become leading dimensions of the
  /// memory view (section 5.2).
  Alloc allocate(AddressSpace AS, const TypePtr &Ty,
                 const std::string &Hint) {
    c::CAddrSpace CAS = toCAddrSpace(AS);

    // Choose the enclosing loops the buffer must be replicated over:
    // parallel loops run concurrently, so every parallel index in scope
    // multiplies the buffer; sequential loops reuse the same memory.
    // Local buffers are shared per work group, so work-group indices are
    // excluded; private buffers are per-thread registers.
    std::vector<size_t> Included;
    size_t WgBoundary = 0;
    for (size_t I = 0; I != Ctx.size(); ++I)
      if (Ctx[I].L == LoopCtx::WorkGroup)
        WgBoundary = I + 1;
    for (size_t I = 0; I != Ctx.size(); ++I) {
      if (Ctx[I].L == LoopCtx::Seq)
        continue;
      if (CAS == c::CAddrSpace::Private)
        continue;
      if (CAS == c::CAddrSpace::Local &&
          (I < WgBoundary || Ctx[I].L == LoopCtx::WorkGroup))
        continue;
      Included.push_back(I);
    }

    std::vector<arith::Expr> Dims;
    for (size_t I : Included)
      Dims.push_back(Ctx[I].Extent);
    for (const arith::Expr &D : typeDims(Ty))
      Dims.push_back(D);

    c::CTypePtr Elem = cTypeOf(baseElementType(Ty));

    Alloc A;
    if (Dims.empty()) {
      // A scalar register.
      A.Store = makeStorage(freshName(Hint), CAS, Elem, nullptr);
      TopDecls.push_back(std::make_shared<c::VarDecl>(
          A.Store->Var, nullptr, nullptr, c::CAddrSpace::Private));
    } else {
      arith::Expr Count = arith::cst(1);
      for (const arith::Expr &D : Dims)
        Count = arith::mul(Count, D);
      Count = arith::simplified(Count);
      A.Store = makeStorage(freshName(Hint), CAS, Elem, Count);
      if (CAS == c::CAddrSpace::Global) {
        // Global intermediates become extra kernel arguments: OpenCL has
        // no in-kernel global allocation.
        A.Store->Var = std::make_shared<c::CVar>(
            A.Store->Var->Name, c::pointerTy(Elem, c::CAddrSpace::Global));
        KernelParamInfo Info;
        Info.Var = A.Store->Var;
        Info.Store = A.Store;
        Info.IsOutput = false;
        K.Params.push_back(Info);
      } else {
        if (!arith::asConstant(Count))
          notSupported("non-constant " +
                       std::string(CAS == c::CAddrSpace::Local ? "local"
                                                               : "private") +
                       " allocation of size " + arith::toString(Count));
        TopDecls.push_back(std::make_shared<c::VarDecl>(
            A.Store->Var, nullptr, Count, CAS));
      }
      K.StorageVars.emplace_back(A.Store->Id, A.Store->Var);
    }

    view::View V = std::make_shared<view::MemoryView>(A.Store, Dims);
    // Wrap the included context indices, outermost first (adjacent to the
    // memory view), so the remaining dimensions match the value's type.
    for (size_t I : Included)
      V = std::make_shared<view::ArrayAccessView>(Ctx[I].IV, V);
    A.V = V;
    return A;
  }

  //===--------------------------------------------------------------------===//
  // Loads and stores
  //===--------------------------------------------------------------------===//

  c::CExprPtr loadAccess(const view::Access &Acc) {
    c::CExprPtr E;
    if (Acc.Store->isScalar()) {
      E = std::make_shared<c::VarRef>(Acc.Store->Var);
    } else if (Acc.VectorWidth > 1) {
      // The index is in scalar units and divisible by the width.
      arith::Expr VecIndex =
          arith::intDiv(Acc.Index, arith::cst(Acc.VectorWidth));
      return std::make_shared<c::VectorLoad>(
          Acc.VectorWidth, std::make_shared<c::ArithValue>(VecIndex),
          std::make_shared<c::VarRef>(Acc.Store->Var));
    } else {
      E = std::make_shared<c::ArrayAccess>(
          std::make_shared<c::VarRef>(Acc.Store->Var),
          std::make_shared<c::ArithValue>(Acc.Index));
    }
    for (unsigned Comp : Acc.Components)
      E = std::make_shared<c::Member>(E, "_" + std::to_string(Comp));
    return E;
  }

  /// Loads the value denoted by \p V with Lift type \p Ty. Tuple values
  /// are decomposed per component so that zipped arrays load from their
  /// separate buffers (Figure 7: multAndSumUp(acc, x[...], y[...])).
  c::CExprPtr load(const view::View &V, const TypePtr &Ty) {
    if (const auto *Tu = dyn_cast<TupleType>(Ty.get())) {
      std::vector<c::CExprPtr> Parts;
      for (unsigned I = 0, E = Tu->getElements().size(); I != E; ++I) {
        view::View Comp = std::make_shared<view::TupleAccessView>(I, V);
        Parts.push_back(load(Comp, Tu->getElements()[I]));
      }
      return std::make_shared<c::ConstructStruct>(structFor(Tu),
                                                  std::move(Parts));
    }
    return loadAccess(view::consumeView(V));
  }

  void store(const view::View &OutV, c::CExprPtr Value) {
    view::Access Acc = view::consumeView(OutV);
    if (Acc.Store->isScalar()) {
      emit(std::make_shared<c::Assign>(
          std::make_shared<c::VarRef>(Acc.Store->Var), std::move(Value)));
      return;
    }
    if (Acc.VectorWidth > 1) {
      arith::Expr VecIndex =
          arith::intDiv(Acc.Index, arith::cst(Acc.VectorWidth));
      emit(std::make_shared<c::ExprStmt>(std::make_shared<c::VectorStore>(
          Acc.VectorWidth, std::move(Value),
          std::make_shared<c::ArithValue>(VecIndex),
          std::make_shared<c::VarRef>(Acc.Store->Var))));
      return;
    }
    c::CExprPtr Lhs = std::make_shared<c::ArrayAccess>(
        std::make_shared<c::VarRef>(Acc.Store->Var),
        std::make_shared<c::ArithValue>(Acc.Index));
    for (unsigned Comp : Acc.Components)
      Lhs = std::make_shared<c::Member>(Lhs, "_" + std::to_string(Comp));
    emit(std::make_shared<c::Assign>(std::move(Lhs), std::move(Value)));
  }

  //===--------------------------------------------------------------------===//
  // Value-level emission (user function arguments and results)
  //===--------------------------------------------------------------------===//

  /// Builds the view of a value-level expression if it is reachable
  /// through views (parameters and tuple projections); null otherwise.
  view::View viewOfValue(const ExprPtr &E) {
    if (isa<Param>(E.get())) {
      auto It = ParamViews.find(E.get());
      return It != ParamViews.end() ? It->second : nullptr;
    }
    if (const auto *C = dyn_cast<FunCall>(E.get())) {
      if (const auto *G = dyn_cast<Get>(C->getFun().get())) {
        view::View Base = viewOfValue(C->getArgs()[0]);
        if (Base)
          return std::make_shared<view::TupleAccessView>(G->getIndex(), Base);
      }
    }
    return nullptr;
  }

  c::CExprPtr emitValue(const ExprPtr &E) {
    switch (E->getClass()) {
    case ExprClass::Literal: {
      cparse::ParseContext PC;
      for (const auto &[Name, Ty] : Structs)
        PC.NamedTypes[Name] = Ty;
      return cparse::parseExpression(cast<Literal>(E.get())->getValue(), PC);
    }
    case ExprClass::Param: {
      view::View V = viewOfValue(E);
      if (!V)
        notSupported("parameter without a view");
      return load(V, E->Ty);
    }
    case ExprClass::FunCall: {
      const auto *C = cast<FunCall>(E.get());
      const FunDeclPtr &F = C->getFun();
      switch (F->getKind()) {
      case FunKind::UserFun: {
        const auto *U = cast<UserFun>(F.get());
        std::string Name = registerUserFun(U, 1);
        std::vector<c::CExprPtr> Args;
        for (const ExprPtr &A : C->getArgs())
          Args.push_back(emitValue(A));
        return std::make_shared<c::Call>(Name, std::move(Args));
      }
      case FunKind::Get: {
        view::View V = viewOfValue(E);
        if (V)
          return load(V, E->Ty);
        c::CExprPtr Base = emitValue(C->getArgs()[0]);
        return std::make_shared<c::Member>(
            Base, "_" + std::to_string(cast<Get>(F.get())->getIndex()));
      }
      case FunKind::Id:
        return emitValue(C->getArgs()[0]);
      case FunKind::MapVec: {
        // Vectorize the nested user function (section 3.2): OpenCL
        // arithmetic is defined on vectors, so the same body is emitted
        // with vector parameter types.
        const auto *M = cast<MapVec>(F.get());
        const auto *U = dyn_cast<UserFun>(M->getF().get());
        if (!U)
          notSupported("mapVec over a non-user-function");
        const auto *VT = dyn_cast<VectorType>(E->Ty.get());
        if (!VT)
          notSupported("mapVec producing a non-vector");
        std::string Name = registerUserFun(U, VT->getWidth());
        std::vector<c::CExprPtr> Args;
        for (const ExprPtr &A : C->getArgs())
          Args.push_back(emitValue(A));
        return std::make_shared<c::Call>(Name, std::move(Args));
      }
      default:
        notSupported(std::string("value-level emission of ") +
                     funKindName(F->getKind()));
      }
    }
    }
    lift_unreachable("unhandled expression class");
  }

  //===--------------------------------------------------------------------===//
  // Expression-level emission
  //===--------------------------------------------------------------------===//

  view::View emitExpr(const ExprPtr &E, view::View OutView) {
    if (!E->Ty)
      notSupported("expression without inferred type");

    // Value-typed expressions (the bodies of element lambdas). A tuple
    // that contains arrays (e.g. the result of unzip) is not a value.
    if (!containsArrayType(E->Ty) && !isa<Param>(E.get())) {
      c::CExprPtr Val = emitValue(E);
      if (OutView) {
        store(OutView, Val);
        return OutView;
      }
      notSupported("value-level expression without a destination");
    }

    switch (E->getClass()) {
    case ExprClass::Param: {
      if (OutView)
        notSupported("cannot write into a parameter");
      auto It = ParamViews.find(E.get());
      if (It == ParamViews.end())
        notSupported("parameter '" + cast<Param>(E.get())->getName() +
                     "' has no view");
      return It->second;
    }
    case ExprClass::Literal:
      notSupported("array-typed literal");
    case ExprClass::FunCall: {
      const auto *C = cast<FunCall>(E.get());
      return emitCall(C->getFun(), C, OutView);
    }
    }
    lift_unreachable("unhandled expression class");
  }

  view::View emitCall(const FunDeclPtr &F, const FunCall *C,
                      view::View OutView) {
    switch (F->getKind()) {
    case FunKind::Lambda: {
      const auto *L = cast<Lambda>(F.get());
      for (size_t I = 0, E = C->getArgs().size(); I != E; ++I)
        ParamViews[L->getParams()[I].get()] =
            emitExpr(C->getArgs()[I], nullptr);
      return emitExpr(L->getBody(), OutView);
    }

    case FunKind::ToGlobal:
    case FunKind::ToLocal:
    case FunKind::ToPrivate:
      return emitCall(cast<AddressSpaceWrapper>(F.get())->getF(), C, OutView);

    case FunKind::Id:
      return emitExpr(C->getArgs()[0], OutView);

    case FunKind::Split: {
      const auto *S = cast<Split>(F.get());
      view::View ArgOut =
          OutView ? std::make_shared<view::JoinView>(S->getFactor(), OutView)
                  : nullptr;
      view::View Va = emitExpr(C->getArgs()[0], ArgOut);
      return std::make_shared<view::SplitView>(S->getFactor(), Va);
    }

    case FunKind::Join: {
      const auto *ArgArr = cast<ArrayType>(C->getArgs()[0]->Ty.get());
      const auto *Inner = cast<ArrayType>(ArgArr->getElementType().get());
      arith::Expr M = Inner->getSize();
      view::View ArgOut =
          OutView ? std::make_shared<view::SplitView>(M, OutView) : nullptr;
      view::View Va = emitExpr(C->getArgs()[0], ArgOut);
      return std::make_shared<view::JoinView>(M, Va);
    }

    case FunKind::Gather: {
      if (OutView)
        notSupported("writing through a gather");
      const auto *G = cast<Gather>(F.get());
      const auto *Arr = cast<ArrayType>(C->getArgs()[0]->Ty.get());
      arith::Expr N = Arr->getSize();
      auto Fn = G->getIndexFun().Fn;
      view::View Va = emitExpr(C->getArgs()[0], nullptr);
      return std::make_shared<view::GatherView>(
          [Fn, N](const arith::Expr &I) { return Fn(I, N); }, Va);
    }

    case FunKind::Scatter: {
      if (!OutView)
        notSupported("scatter requires a write destination");
      const auto *S = cast<Scatter>(F.get());
      const auto *Arr = cast<ArrayType>(C->getArgs()[0]->Ty.get());
      arith::Expr N = Arr->getSize();
      auto Fn = S->getIndexFun().Fn;
      view::View ArgOut = std::make_shared<view::GatherView>(
          [Fn, N](const arith::Expr &I) { return Fn(I, N); }, OutView);
      emitExpr(C->getArgs()[0], ArgOut);
      return OutView;
    }

    case FunKind::Zip: {
      if (OutView)
        notSupported("writing into a zip");
      std::vector<view::View> Children;
      for (const ExprPtr &A : C->getArgs())
        Children.push_back(emitExpr(A, nullptr));
      return std::make_shared<view::ZipView>(std::move(Children));
    }

    case FunKind::Get: {
      if (OutView)
        notSupported("writing into a tuple projection");
      view::View Va = emitExpr(C->getArgs()[0], nullptr);
      return std::make_shared<view::TupleAccessView>(
          cast<Get>(F.get())->getIndex(), Va);
    }

    case FunKind::Unzip: {
      // Tuple and array accesses commute on the view stacks, so unzip is
      // the identity on views; only the type changes.
      if (OutView)
        notSupported("writing through an unzip");
      return emitExpr(C->getArgs()[0], nullptr);
    }

    case FunKind::Slide: {
      if (OutView)
        notSupported("writing through a slide");
      const auto *S = cast<Slide>(F.get());
      view::View Va = emitExpr(C->getArgs()[0], nullptr);
      return std::make_shared<view::SlideView>(S->getStep(), Va);
    }

    case FunKind::Transpose: {
      view::View ArgOut =
          OutView ? std::make_shared<view::TransposeView>(OutView) : nullptr;
      view::View Va = emitExpr(C->getArgs()[0], ArgOut);
      return std::make_shared<view::TransposeView>(Va);
    }

    case FunKind::GatherIndices: {
      if (OutView)
        notSupported("writing through a gatherIndices");
      view::View Vidx = emitExpr(C->getArgs()[0], nullptr);
      view::View Vdata = emitExpr(C->getArgs()[1], nullptr);
      return std::make_shared<view::GatherIndicesView>(Vidx, nullptr, Vdata);
    }

    case FunKind::AsVector: {
      unsigned W = cast<AsVector>(F.get())->getWidth();
      view::View ArgOut =
          OutView ? std::make_shared<view::AsScalarView>(W, OutView) : nullptr;
      view::View Va = emitExpr(C->getArgs()[0], ArgOut);
      return std::make_shared<view::AsVectorView>(W, Va);
    }

    case FunKind::AsScalar: {
      const auto *Arr = cast<ArrayType>(C->getArgs()[0]->Ty.get());
      const auto *VT = cast<VectorType>(Arr->getElementType().get());
      unsigned W = VT->getWidth();
      view::View ArgOut =
          OutView ? std::make_shared<view::AsVectorView>(W, OutView) : nullptr;
      view::View Va = emitExpr(C->getArgs()[0], ArgOut);
      return std::make_shared<view::AsScalarView>(W, Va);
    }

    case FunKind::MapSeq:
    case FunKind::MapGlb:
    case FunKind::MapWrg:
    case FunKind::MapLcl: {
      const auto *M = cast<AbstractMap>(F.get());
      // A map over a layout-only function is a view transformation on both
      // the read and the write path (e.g. the untiling composition after a
      // tiled matrix multiplication writes through map(join)/transpose).
      if (isPureFun(M->getF())) {
        const auto *ArgArr = cast<ArrayType>(C->getArgs()[0]->Ty.get());
        const TypePtr &ElemTy = ArgArr->getElementType();
        view::View ArgOut;
        if (OutView) {
          view::View Hole = std::make_shared<view::HoleView>();
          ArgOut = std::make_shared<view::MapPureView>(
              inversePureViewChain(M->getF(), ElemTy, Hole), OutView);
        }
        view::View Va = emitExpr(C->getArgs()[0], ArgOut);
        if (M->getF()->getKind() == FunKind::Id)
          return Va;
        view::View Hole = std::make_shared<view::HoleView>();
        return std::make_shared<view::MapPureView>(
            pureViewChain(M->getF(), ElemTy, Hole), Va);
      }
      TV Arg{emitExpr(C->getArgs()[0], nullptr), C->getArgs()[0]->Ty};
      return emitMap(M, Arg, C->Ty, C->AS, OutView);
    }

    case FunKind::ReduceSeq:
      return emitReduce(cast<ReduceSeq>(F.get()), C, OutView);

    case FunKind::Iterate:
      return emitIterate(cast<Iterate>(F.get()), C, OutView);

    case FunKind::Map:
      notSupported("unlowered high-level map — apply the rewrite rules "
                   "(src/rewrite) to choose a mapping first");
    case FunKind::MapVec:
    case FunKind::UserFun:
      // Handled by the value-typed fast path in emitExpr.
      notSupported("unexpected value-level function at array level");
    }
    lift_unreachable("unhandled function kind");
  }

  //===--------------------------------------------------------------------===//
  // Maps: loops, control-flow simplification, barriers
  //===--------------------------------------------------------------------===//

  /// True if applying \p F performs no memory writes (layout only).
  bool isPureFun(const FunDeclPtr &F) {
    switch (F->getKind()) {
    case FunKind::Id:
    case FunKind::Get:
    case FunKind::Split:
    case FunKind::Join:
    case FunKind::Gather:
    case FunKind::Slide:
    case FunKind::Transpose:
    case FunKind::Zip:
    case FunKind::AsVector:
    case FunKind::AsScalar:
      return true;
    case FunKind::MapSeq:
    case FunKind::MapGlb:
    case FunKind::MapWrg:
    case FunKind::MapLcl:
      return isPureFun(cast<AbstractMap>(F.get())->getF());
    case FunKind::Lambda: {
      // A lambda of pure calls applied to its own parameter.
      const auto *L = cast<Lambda>(F.get());
      if (L->getParams().size() != 1)
        return false;
      return isPureChain(L->getBody(), L->getParams()[0].get());
    }
    default:
      return false;
    }
  }

  bool isPureChain(const ExprPtr &E, const Param *P) {
    if (E.get() == P)
      return true;
    const auto *C = dyn_cast<FunCall>(E.get());
    if (!C || C->getArgs().size() != 1)
      return false;
    switch (C->getFun()->getKind()) {
    case FunKind::Split:
    case FunKind::Join:
    case FunKind::Gather:
    case FunKind::Slide:
    case FunKind::Transpose:
    case FunKind::Get:
    case FunKind::Id:
    case FunKind::AsVector:
    case FunKind::AsScalar:
      return isPureChain(C->getArgs()[0], P);
    case FunKind::MapSeq:
      return isPureFun(cast<AbstractMap>(C->getFun().get())->getF()) &&
             isPureChain(C->getArgs()[0], P);
    default:
      return false;
    }
  }

  /// Builds the pure inner view chain of a map-over-layout function,
  /// terminated by a hole.
  view::View pureViewChain(const FunDeclPtr &F, const TypePtr &InTy,
                           view::View Hole) {
    switch (F->getKind()) {
    case FunKind::Id:
      return Hole;
    case FunKind::Get:
      return std::make_shared<view::TupleAccessView>(
          cast<Get>(F.get())->getIndex(), Hole);
    case FunKind::Split:
      return std::make_shared<view::SplitView>(
          cast<Split>(F.get())->getFactor(), Hole);
    case FunKind::Join: {
      const auto *Arr = cast<ArrayType>(InTy.get());
      const auto *Inner = cast<ArrayType>(Arr->getElementType().get());
      return std::make_shared<view::JoinView>(Inner->getSize(), Hole);
    }
    case FunKind::Gather: {
      const auto *G = cast<Gather>(F.get());
      const auto *Arr = cast<ArrayType>(InTy.get());
      arith::Expr N = Arr->getSize();
      auto Fn = G->getIndexFun().Fn;
      return std::make_shared<view::GatherView>(
          [Fn, N](const arith::Expr &I) { return Fn(I, N); }, Hole);
    }
    case FunKind::Slide:
      return std::make_shared<view::SlideView>(
          cast<Slide>(F.get())->getStep(), Hole);
    case FunKind::Transpose:
      return std::make_shared<view::TransposeView>(Hole);
    case FunKind::MapSeq: {
      const auto *M = cast<MapSeq>(F.get());
      const auto *Arr = cast<ArrayType>(InTy.get());
      view::View InnerHole = std::make_shared<view::HoleView>();
      view::View Inner =
          pureViewChain(M->getF(), Arr->getElementType(), InnerHole);
      return std::make_shared<view::MapPureView>(Inner, Hole);
    }
    case FunKind::Lambda: {
      const auto *L = cast<Lambda>(F.get());
      return pureChainOfExpr(L->getBody(), L->getParams()[0].get(), Hole);
    }
    default:
      notSupported("pure view chain for " +
                   std::string(funKindName(F->getKind())));
    }
  }

  view::View pureChainOfExpr(const ExprPtr &E, const Param *P,
                             view::View Hole) {
    if (E.get() == P)
      return Hole;
    const auto *C = cast<FunCall>(E.get());
    view::View Inner = pureChainOfExpr(C->getArgs()[0], P, Hole);
    return pureViewChain(C->getFun(), C->getArgs()[0]->Ty, Inner);
  }

  /// Builds the *inverse* pure chain for writing through a map over a
  /// layout function (e.g. the untiling join/transpose compositions after
  /// a tiled matrix multiplication): a join on the output path becomes a
  /// SplitView, a split becomes a JoinView, transpose is self-inverse.
  /// \p InTy is the type the chain's input elements have.
  view::View inversePureViewChain(const FunDeclPtr &F, const TypePtr &InTy,
                                  view::View Hole) {
    switch (F->getKind()) {
    case FunKind::Id:
      return Hole;
    case FunKind::Transpose:
      return std::make_shared<view::TransposeView>(Hole);
    case FunKind::Join: {
      // Writes of the (pre-join) nested value push two indices; merge
      // them into the flat index of the joined output.
      const auto *Arr = cast<ArrayType>(InTy.get());
      const auto *Inner = cast<ArrayType>(Arr->getElementType().get());
      return std::make_shared<view::SplitView>(Inner->getSize(), Hole);
    }
    case FunKind::Split:
      return std::make_shared<view::JoinView>(
          cast<Split>(F.get())->getFactor(), Hole);
    case FunKind::Scatter: {
      const auto *S = cast<Scatter>(F.get());
      const auto *Arr = cast<ArrayType>(InTy.get());
      arith::Expr N = Arr->getSize();
      auto Fn = S->getIndexFun().Fn;
      return std::make_shared<view::GatherView>(
          [Fn, N](const arith::Expr &I) { return Fn(I, N); }, Hole);
    }
    case FunKind::MapSeq: {
      const auto *M = cast<MapSeq>(F.get());
      const auto *Arr = cast<ArrayType>(InTy.get());
      view::View InnerHole = std::make_shared<view::HoleView>();
      view::View Inner = inversePureViewChain(
          M->getF(), Arr->getElementType(), InnerHole);
      return std::make_shared<view::MapPureView>(Inner, Hole);
    }
    case FunKind::Lambda: {
      const auto *L = cast<Lambda>(F.get());
      return inversePureChainOfExpr(L->getBody(), L->getParams()[0].get(),
                                    Hole);
    }
    default:
      notSupported("inverse pure view chain for " +
                   std::string(funKindName(F->getKind())));
    }
  }

  /// Inverse of a pure composition chain: the *last* applied operation is
  /// undone first, so the recursion inverts the composition order.
  view::View inversePureChainOfExpr(const ExprPtr &E, const Param *P,
                                    view::View Hole) {
    if (E.get() == P)
      return Hole;
    const auto *C = cast<FunCall>(E.get());
    view::View Outer =
        inversePureViewChain(C->getFun(), C->getArgs()[0]->Ty, Hole);
    return inversePureChainOfExpr(C->getArgs()[0], P, Outer);
  }

  /// Emits a map pattern: a pure map becomes a view; a computing map
  /// becomes a (possibly simplified) loop whose body applies the nested
  /// function to one element.
  view::View emitMap(const AbstractMap *M, const TV &Arg,
                     const TypePtr &ResultTy, AddressSpace ResultAS,
                     view::View OutView) {
    const auto *ArgArr = cast<ArrayType>(Arg.Ty.get());
    arith::Expr N = ArgArr->getSize();
    const TypePtr &ElemTy = ArgArr->getElementType();

    // A map over a layout-only function emits no code at all: it becomes
    // a view transformation.
    if (!OutView && isPureFun(M->getF())) {
      if (M->getF()->getKind() == FunKind::Id)
        return Arg.V;
      view::View Hole = std::make_shared<view::HoleView>();
      view::View Inner = pureViewChain(M->getF(), ElemTy, Hole);
      return std::make_shared<view::MapPureView>(Inner, Arg.V);
    }

    view::View RetView = OutView;
    if (!OutView) {
      Alloc A = allocate(ResultAS, ResultTy, "tmp");
      OutView = A.V;
      RetView = A.V;
    }

    const FunDeclPtr &F = M->getF();
    bool IsLcl = M->getKind() == FunKind::MapLcl;
    if (IsLcl)
      ++MapLclDepth;
    auto Body = [&](const arith::Expr &IV) {
      Ctx.push_back({IV, N, levelOf(M->getKind())});
      view::View ElemIn = std::make_shared<view::ArrayAccessView>(IV, Arg.V);
      view::View ElemOut =
          std::make_shared<view::ArrayAccessView>(IV, OutView);
      applyToElement(F, ElemIn, ElemTy, ElemOut);
      Ctx.pop_back();
    };

    switch (M->getKind()) {
    case FunKind::MapSeq:
      emitSeqLoop(N, Body);
      break;
    case FunKind::MapGlb:
    case FunKind::MapWrg:
    case FunKind::MapLcl: {
      const auto *P = cast<ParallelMap>(M);
      emitParallelLoop(M->getKind(), P->getDim(), N, Body);
      break;
    }
    default:
      lift_unreachable("not a map kind");
    }

    // Synchronize after a mapLcl (section 5.4) unless eliminated. A nested
    // mapLcl defers to the barrier of the outermost map of the nest.
    if (IsLcl) {
      --MapLclDepth;
      const auto *L = cast<MapLcl>(M);
      // With barrier elimination off, the naive "safety first" compiler
      // emits after every mapLcl, nested or not.
      bool Suppressed =
          Opts.BarrierElimination && (MapLclDepth != 0 || !L->EmitBarrier);
      if (!Suppressed) {
        c::CAddrSpace WrittenAS = storageSpaceOf(OutView);
        bool GlobalFence = WrittenAS == c::CAddrSpace::Global ||
                           ResultAS == AddressSpace::Global;
        emit(std::make_shared<c::Barrier>(!GlobalFence, GlobalFence));
        ++K.BarriersEmitted;
      }
    }
    return RetView;
  }

  /// The address space of the storage a view chain terminates in (writes
  /// never branch through zips, so following Prev links suffices).
  static c::CAddrSpace storageSpaceOf(const view::View &V) {
    const view::ViewNode *Cur = V.get();
    while (Cur) {
      switch (Cur->getKind()) {
      case view::ViewKind::Memory:
        return cast<view::MemoryView>(Cur)->getStorage()->AS;
      case view::ViewKind::ArrayAccess:
        Cur = cast<view::ArrayAccessView>(Cur)->getPrev().get();
        break;
      case view::ViewKind::Split:
        Cur = cast<view::SplitView>(Cur)->getPrev().get();
        break;
      case view::ViewKind::Join:
        Cur = cast<view::JoinView>(Cur)->getPrev().get();
        break;
      case view::ViewKind::TupleAccess:
        Cur = cast<view::TupleAccessView>(Cur)->getPrev().get();
        break;
      case view::ViewKind::Gather:
        Cur = cast<view::GatherView>(Cur)->getPrev().get();
        break;
      case view::ViewKind::Slide:
        Cur = cast<view::SlideView>(Cur)->getPrev().get();
        break;
      case view::ViewKind::Transpose:
        Cur = cast<view::TransposeView>(Cur)->getPrev().get();
        break;
      case view::ViewKind::GatherIndices:
        Cur = cast<view::GatherIndicesView>(Cur)->getPrev().get();
        break;
      case view::ViewKind::AsVector:
        Cur = cast<view::AsVectorView>(Cur)->getPrev().get();
        break;
      case view::ViewKind::AsScalar:
        Cur = cast<view::AsScalarView>(Cur)->getPrev().get();
        break;
      case view::ViewKind::MapPure:
        Cur = cast<view::MapPureView>(Cur)->getPrev().get();
        break;
      case view::ViewKind::Zip:
      case view::ViewKind::Hole:
        return c::CAddrSpace::Global;
      }
    }
    return c::CAddrSpace::Global;
  }

  static LoopCtx::Level levelOf(FunKind K) {
    switch (K) {
    case FunKind::MapWrg:
      return LoopCtx::WorkGroup;
    case FunKind::MapGlb:
    case FunKind::MapLcl:
      return LoopCtx::Thread;
    default:
      return LoopCtx::Seq;
    }
  }

  /// Applies the element function \p F to one element.
  void applyToElement(const FunDeclPtr &F, const view::View &In,
                      const TypePtr &InTy, const view::View &Out) {
    switch (F->getKind()) {
    case FunKind::Lambda: {
      const auto *L = cast<Lambda>(F.get());
      if (L->getParams().size() != 1)
        notSupported("element lambda must be unary");
      L->getParams()[0]->Ty = InTy;
      ParamViews[L->getParams()[0].get()] = In;
      emitExpr(L->getBody(), Out);
      return;
    }
    case FunKind::UserFun: {
      const auto *U = cast<UserFun>(F.get());
      std::string Name = registerUserFun(U, 1);
      c::CExprPtr Val = std::make_shared<c::Call>(
          Name, std::vector<c::CExprPtr>{load(In, InTy)});
      store(Out, Val);
      return;
    }
    case FunKind::Id:
      // An explicit copy when a destination exists.
      store(Out, load(In, InTy));
      return;
    case FunKind::MapSeq:
    case FunKind::MapGlb:
    case FunKind::MapWrg:
    case FunKind::MapLcl: {
      const auto *M = cast<AbstractMap>(F.get());
      TypePtr OutElemTy = applyType(F, {InTy});
      emitMap(M, TV{In, InTy}, OutElemTy, AddressSpace::Undef, Out);
      return;
    }
    case FunKind::ToGlobal:
    case FunKind::ToLocal:
    case FunKind::ToPrivate:
      applyToElement(cast<AddressSpaceWrapper>(F.get())->getF(), In, InTy,
                     Out);
      return;
    default:
      notSupported("element function " +
                   std::string(funKindName(F->getKind())));
    }
  }

  //===--------------------------------------------------------------------===//
  // Loop emission with control-flow simplification
  //===--------------------------------------------------------------------===//

  void emitSeqLoop(const arith::Expr &N,
                   const std::function<void(const arith::Expr &)> &Body) {
    // Control-flow simplification: fully unroll short constant loops (the
    // vendor OpenCL compilers the paper relies on do the same); constant
    // indices then fold in the arithmetic simplifier.
    if (Opts.ControlFlowSimplification) {
      auto C = arith::asConstant(arith::simplified(N));
      if (C && *C <= std::max<int64_t>(Opts.UnrollLimit, 1)) {
        ++K.LoopsSimplified;
        for (int64_t I = 0; I != *C; ++I)
          Body(arith::cst(I));
        return;
      }
    }
    emitSeqLoopNoUnroll(N, Body);
  }

  /// A plain counted loop; used by iterate, whose double-buffering
  /// machinery (runtime size variable, pointer swaps) wants the loop of
  /// Figure 7 regardless of the iteration count.
  void
  emitSeqLoopNoUnroll(const arith::Expr &N,
                      const std::function<void(const arith::Expr &)> &Body) {
    if (Opts.ControlFlowSimplification && arith::isConstant(N, 1)) {
      ++K.LoopsSimplified;
      Body(arith::cst(0));
      return;
    }
    auto IV = arith::var(freshName("i"), arith::cst(0),
                         arith::sub(N, arith::cst(1)));
    auto CV = std::make_shared<c::CVar>(IV->getName(), c::intTy(),
                                        IV->getId());
    Blocks.emplace_back();
    Body(IV);
    auto BodyBlock = std::make_shared<c::Block>(std::move(Blocks.back()));
    Blocks.pop_back();
    emit(std::make_shared<c::For>(
        CV, std::make_shared<c::IntLit>(0),
        std::make_shared<c::Binary>(c::BinOp::Lt,
                                    std::make_shared<c::VarRef>(CV),
                                    std::make_shared<c::ArithValue>(N)),
        std::make_shared<c::Binary>(c::BinOp::Add,
                                    std::make_shared<c::VarRef>(CV),
                                    std::make_shared<c::IntLit>(1)),
        BodyBlock));
    ++K.LoopsEmitted;
  }

  /// The thread-id variable and thread count for a parallel map kind.
  TidVar &tidVar(FunKind Kind, unsigned Dim) {
    auto Key = std::make_pair(static_cast<int>(Kind), Dim);
    auto It = TidVars.find(Key);
    if (It != TidVars.end())
      return It->second;

    const char *Base;
    const char *Builtin;
    int64_t Count;
    switch (Kind) {
    case FunKind::MapGlb:
      Base = "gl_id";
      Builtin = "get_global_id";
      Count = Opts.GlobalSize[Dim];
      break;
    case FunKind::MapWrg:
      Base = "wg_id";
      Builtin = "get_group_id";
      Count = Opts.numGroups(Dim);
      break;
    case FunKind::MapLcl:
      Base = "l_id";
      Builtin = "get_local_id";
      Count = Opts.LocalSize[Dim];
      break;
    default:
      lift_unreachable("not a parallel map kind");
    }

    std::string Name = std::string(Base) + "_" + std::to_string(Dim);
    auto AVar = arith::var(Name, arith::cst(0), arith::cst(Count - 1));
    auto CV = std::make_shared<c::CVar>(Name, c::intTy(), AVar->getId());
    TopDecls.push_back(std::make_shared<c::VarDecl>(
        CV,
        std::make_shared<c::Call>(
            Builtin, std::vector<c::CExprPtr>{std::make_shared<c::IntLit>(
                         static_cast<int64_t>(Dim))})));
    TidVar TV2{AVar, CV};
    return TidVars.emplace(Key, TV2).first->second;
  }

  static int64_t threadCountFor(FunKind Kind, unsigned Dim,
                                const CompilerOptions &Opts) {
    switch (Kind) {
    case FunKind::MapGlb:
      return Opts.GlobalSize[Dim];
    case FunKind::MapWrg:
      return Opts.numGroups(Dim);
    case FunKind::MapLcl:
      return Opts.LocalSize[Dim];
    default:
      lift_unreachable("not a parallel map kind");
    }
  }

  void
  emitParallelLoop(FunKind Kind, unsigned Dim, const arith::Expr &N,
                   const std::function<void(const arith::Expr &)> &Body) {
    TidVar &Tid = tidVar(Kind, Dim);
    int64_t Threads = threadCountFor(Kind, Dim, Opts);
    arith::Expr ThreadsE = arith::cst(Threads);

    if (Opts.ControlFlowSimplification) {
      // Exactly one iteration per thread: no loop, no guard.
      if (arith::provablyEqual(N, ThreadsE)) {
        ++K.LoopsSimplified;
        Body(Tid.AVar);
        return;
      }
      // At most one iteration per thread: a guard suffices.
      if (arith::provablyLessEqual(N, ThreadsE)) {
        ++K.LoopsSimplified;
        Blocks.emplace_back();
        Body(Tid.AVar);
        auto Then = std::make_shared<c::Block>(std::move(Blocks.back()));
        Blocks.pop_back();
        emit(std::make_shared<c::If>(
            std::make_shared<c::Binary>(
                c::BinOp::Lt, std::make_shared<c::VarRef>(Tid.CV),
                std::make_shared<c::ArithValue>(N)),
            Then));
        return;
      }
    }

    // General case: a strided loop starting at the thread id.
    auto IV = arith::var(freshName(Tid.CV->Name), arith::cst(0),
                         arith::sub(N, arith::cst(1)));
    auto CV =
        std::make_shared<c::CVar>(IV->getName(), c::intTy(), IV->getId());
    Blocks.emplace_back();
    Body(IV);
    auto BodyBlock = std::make_shared<c::Block>(std::move(Blocks.back()));
    Blocks.pop_back();
    emit(std::make_shared<c::For>(
        CV, std::make_shared<c::VarRef>(Tid.CV),
        std::make_shared<c::Binary>(c::BinOp::Lt,
                                    std::make_shared<c::VarRef>(CV),
                                    std::make_shared<c::ArithValue>(N)),
        std::make_shared<c::Binary>(
            c::BinOp::Add, std::make_shared<c::VarRef>(CV),
            std::make_shared<c::IntLit>(Threads)),
        BodyBlock));
    ++K.LoopsEmitted;
  }

  //===--------------------------------------------------------------------===//
  // Reduction
  //===--------------------------------------------------------------------===//

  view::View emitReduce(const ReduceSeq *R, const FunCall *C,
                        view::View OutView) {
    const ExprPtr &InitE = C->getArgs()[0];
    const ExprPtr &ArrE = C->getArgs()[1];
    view::View Varr = emitExpr(ArrE, nullptr);
    const auto *Arr = cast<ArrayType>(ArrE->Ty.get());
    arith::Expr N = Arr->getSize();
    const TypePtr &ElemTy = Arr->getElementType();
    const TypePtr &AccTy = InitE->Ty;

    // The accumulation variable (Figure 7: float acc1).
    Alloc Acc = allocate(AddressSpace::Private, AccTy, "acc");
    emit(std::make_shared<c::Assign>(
        std::make_shared<c::VarRef>(Acc.Store->Var), emitValue(InitE)));

    emitSeqLoop(N, [&](const arith::Expr &IV) {
      Ctx.push_back({IV, N, LoopCtx::Seq});
      view::View ElemIn = std::make_shared<view::ArrayAccessView>(IV, Varr);
      c::CExprPtr NewAcc =
          applyBinaryOperator(R->getF(), Acc.V, AccTy, ElemIn, ElemTy);
      emit(std::make_shared<c::Assign>(
          std::make_shared<c::VarRef>(Acc.Store->Var), NewAcc));
      Ctx.pop_back();
    });

    if (OutView) {
      view::View Slot =
          std::make_shared<view::ArrayAccessView>(arith::cst(0), OutView);
      store(Slot, load(Acc.V, AccTy));
      return OutView;
    }
    return Acc.V;
  }

  /// Applies the binary reduction operator to (accumulator, element).
  c::CExprPtr applyBinaryOperator(const FunDeclPtr &F, const view::View &AccV,
                                  const TypePtr &AccTy, const view::View &In,
                                  const TypePtr &ElemTy) {
    switch (F->getKind()) {
    case FunKind::UserFun: {
      const auto *U = cast<UserFun>(F.get());
      std::string Name = registerUserFun(U, 1);
      return std::make_shared<c::Call>(
          Name,
          std::vector<c::CExprPtr>{load(AccV, AccTy), load(In, ElemTy)});
    }
    case FunKind::Lambda: {
      const auto *L = cast<Lambda>(F.get());
      if (L->getParams().size() != 2)
        notSupported("reduction operator must be binary");
      L->getParams()[0]->Ty = AccTy;
      L->getParams()[1]->Ty = ElemTy;
      ParamViews[L->getParams()[0].get()] = AccV;
      ParamViews[L->getParams()[1].get()] = In;
      return emitValue(L->getBody());
    }
    default:
      notSupported("reduction operator " +
                   std::string(funKindName(F->getKind())));
    }
  }

  //===--------------------------------------------------------------------===//
  // Iterate (double buffering, Figure 7 lines 17-29)
  //===--------------------------------------------------------------------===//

  view::View emitIterate(const Iterate *It, const FunCall *C,
                         view::View OutView) {
    if (OutView)
      notSupported("iterate with an externally provided destination");
    const ExprPtr &ArgE = C->getArgs()[0];
    const auto *InArr = dyn_cast<ArrayType>(ArgE->Ty.get());
    if (!InArr || isa<ArrayType>(InArr->getElementType().get()))
      notSupported("iterate requires a one-dimensional array");
    const TypePtr &ElemTy = InArr->getElementType();

    auto InLen = arith::asConstant(arith::simplified(InArr->getSize()));
    auto OutLen = arith::asConstant(
        arith::simplified(cast<ArrayType>(C->Ty.get())->getSize()));
    if (!InLen || !OutLen)
      notSupported("iterate requires constant lengths");

    AddressSpace AS =
        C->AS == AddressSpace::Undef ? AddressSpace::Local : C->AS;
    TypePtr BufTy = arrayOf(ElemTy, arith::cst(*InLen));
    Alloc Ping = allocate(AS, BufTy, "iter_a");
    Alloc Pong = allocate(AS, BufTy, "iter_b");

    // Route the producer of the input directly into the ping buffer.
    emitExpr(ArgE, Ping.V);

    // Pointers for double buffering and the runtime size variable.
    c::CAddrSpace CAS = toCAddrSpace(AS);
    c::CTypePtr PtrTy = c::pointerTy(cTypeOf(ElemTy), CAS);
    auto InPtr = std::make_shared<c::CVar>(freshName("it_in"), PtrTy);
    auto OutPtr = std::make_shared<c::CVar>(freshName("it_out"), PtrTy);
    auto TmpPtr = std::make_shared<c::CVar>(freshName("it_tmp"), PtrTy);
    emit(std::make_shared<c::VarDecl>(
        InPtr, std::make_shared<c::VarRef>(Ping.Store->Var)));
    emit(std::make_shared<c::VarDecl>(
        OutPtr, std::make_shared<c::VarRef>(Pong.Store->Var)));

    auto SizeV = arith::var(freshName("size"), arith::cst(*OutLen),
                            arith::cst(*InLen));
    auto SizeCV =
        std::make_shared<c::CVar>(SizeV->getName(), c::intTy(), SizeV->getId());
    emit(std::make_shared<c::VarDecl>(
        SizeCV, std::make_shared<c::IntLit>(*InLen)));

    // Pointer-backed storages so views read/write through in/out.
    auto InStore = makeStorage(InPtr->Name, CAS, cTypeOf(ElemTy),
                               arith::cst(*InLen));
    InStore->Var = InPtr;
    auto OutStore = makeStorage(OutPtr->Name, CAS, cTypeOf(ElemTy),
                                arith::cst(*InLen));
    OutStore->Var = OutPtr;
    K.StorageVars.emplace_back(InStore->Id, InPtr);
    K.StorageVars.emplace_back(OutStore->Id, OutPtr);

    // The body is type-checked against the symbolic current length.
    TypePtr VirtTy = arrayOf(ElemTy, SizeV);
    TypePtr BodyOutTy =
        applyType(It->getF(), {VirtTy});
    const auto *BodyOutArr = cast<ArrayType>(BodyOutTy.get());
    arith::Expr NextSize = BodyOutArr->getSize();

    emitSeqLoopNoUnroll(arith::cst(It->getCount()), [&](const arith::Expr &) {
      view::View InV = std::make_shared<view::MemoryView>(
          InStore, std::vector<arith::Expr>{arith::Expr(SizeV)});
      view::View OutV = std::make_shared<view::MemoryView>(
          OutStore, std::vector<arith::Expr>{NextSize});

      applyToElementArray(It->getF(), InV, VirtTy, OutV);

      // size = size / g; swap in/out.
      emit(std::make_shared<c::Assign>(
          std::make_shared<c::VarRef>(SizeCV),
          std::make_shared<c::ArithValue>(NextSize)));
      emit(std::make_shared<c::VarDecl>(
          TmpPtr, std::make_shared<c::VarRef>(InPtr)));
      emit(std::make_shared<c::Assign>(std::make_shared<c::VarRef>(InPtr),
                                       std::make_shared<c::VarRef>(OutPtr)));
      emit(std::make_shared<c::Assign>(std::make_shared<c::VarRef>(OutPtr),
                                       std::make_shared<c::VarRef>(TmpPtr)));
      // The next iteration reads what this one wrote through the swapped
      // pointers: always synchronize (Figure 7 line 29).
      bool GlobalFence = AS == AddressSpace::Global;
      emit(std::make_shared<c::Barrier>(!GlobalFence, GlobalFence));
      ++K.BarriersEmitted;
    });

    // After the final swap, `in` holds the result.
    return std::make_shared<view::MemoryView>(
        InStore, std::vector<arith::Expr>{arith::cst(*OutLen)});
  }

  /// Applies a whole-array function (iterate body) to a view.
  void applyToElementArray(const FunDeclPtr &F, const view::View &In,
                           const TypePtr &InTy, const view::View &Out) {
    switch (F->getKind()) {
    case FunKind::Lambda: {
      const auto *L = cast<Lambda>(F.get());
      L->getParams()[0]->Ty = InTy;
      ParamViews[L->getParams()[0].get()] = In;
      emitExpr(L->getBody(), Out);
      return;
    }
    default:
      applyToElement(F, In, InTy, Out);
    }
  }

  //===--------------------------------------------------------------------===//
  // User functions and module assembly
  //===--------------------------------------------------------------------===//

  /// Vectorizes a value type by width W (scalars become vectors).
  TypePtr vectorize(const TypePtr &T, unsigned W) {
    if (W == 1)
      return T;
    if (const auto *S = dyn_cast<ScalarType>(T.get()))
      return vectorOf(S->getScalarKind(), W);
    if (const auto *Tu = dyn_cast<TupleType>(T.get())) {
      std::vector<TypePtr> Elems;
      for (const TypePtr &E : Tu->getElements())
        Elems.push_back(vectorize(E, W));
      return tupleOf(std::move(Elems));
    }
    notSupported("vectorization of " + typeToString(T));
  }

  std::string registerUserFun(const UserFun *U, unsigned Width) {
    std::string Name =
        Width == 1 ? U->getName()
                   : U->getName() + "_v" + std::to_string(Width);
    auto Key = std::make_pair(U->getName(), Width);
    if (UserFuns.find(Key) == UserFuns.end()) {
      // Vectorization is "straightforward for functions based on simple
      // arithmetic operations ... in the other more complicated cases,
      // the code generator simply applies f to each scalar in the vector"
      // (section 3.2); that fallback calls the scalar instance.
      if (Width > 1 && !hasSimpleArithmeticBody(U))
        registerUserFun(U, 1);
      UserFuns[Key] = UFInstance{U, Width, Name};
      UserFunOrder.push_back(Key);
      // Pre-register structs used in the signature.
      for (const TypePtr &T : U->getParamTypes())
        (void)cTypeOf(vectorize(T, Width));
      (void)cTypeOf(vectorize(U->getReturnType(), Width));
    }
    return Name;
  }

  /// True if the body uses only arithmetic that OpenCL defines on vector
  /// operands: no branches, ternaries, comparisons or non-math calls.
  bool hasSimpleArithmeticBody(const UserFun *U) {
    cparse::ParseContext PC;
    for (const auto &[SName, STy] : Structs)
      PC.NamedTypes[SName] = STy;
    for (size_t I = 0, E = U->getParamNames().size(); I != E; ++I)
      PC.Params.push_back(std::make_shared<c::CVar>(
          U->getParamNames()[I], cTypeOf(U->getParamTypes()[I])));
    return stmtsAreSimple(
        cparse::parseFunctionBody(U->getBody(), PC)->getStmts());
  }

  static bool stmtsAreSimple(const std::vector<c::CStmtPtr> &Stmts) {
    for (const c::CStmtPtr &S : Stmts) {
      switch (S->getKind()) {
      case c::CStmtKind::If:
        return false;
      case c::CStmtKind::VarDecl: {
        const auto *D = cast<c::VarDecl>(S.get());
        if (D->getInit() && !exprIsSimple(D->getInit()))
          return false;
        break;
      }
      case c::CStmtKind::Assign:
        if (!exprIsSimple(cast<c::Assign>(S.get())->getRhs()))
          return false;
        break;
      case c::CStmtKind::Return: {
        const auto *R = cast<c::Return>(S.get());
        if (R->getValue() && !exprIsSimple(R->getValue()))
          return false;
        break;
      }
      default:
        break;
      }
    }
    return true;
  }

  static bool exprIsSimple(const c::CExprPtr &E) {
    switch (E->getKind()) {
    case c::CExprKind::Ternary:
      return false;
    case c::CExprKind::Binary: {
      const auto *B = cast<c::Binary>(E.get());
      switch (B->getOp()) {
      case c::BinOp::Lt:
      case c::BinOp::Le:
      case c::BinOp::Gt:
      case c::BinOp::Ge:
      case c::BinOp::Eq:
      case c::BinOp::Ne:
      case c::BinOp::And:
      case c::BinOp::Or:
        return false;
      default:
        return exprIsSimple(B->getLhs()) && exprIsSimple(B->getRhs());
      }
    }
    case c::CExprKind::Unary: {
      const auto *Un = cast<c::Unary>(E.get());
      return Un->getOp() == c::UnOp::Neg && exprIsSimple(Un->getSub());
    }
    case c::CExprKind::Call: {
      // Unary math built-ins have native vector forms in OpenCL.
      const auto *C = cast<c::Call>(E.get());
      static const char *VectorMath[] = {"sqrt", "rsqrt", "sin",  "cos",
                                         "exp",  "log",   "fabs", "floor"};
      for (const char *M : VectorMath)
        if (C->getCallee() == M)
          return C->getArgs().size() == 1 && exprIsSimple(C->getArgs()[0]);
      return false;
    }
    default:
      return true;
    }
  }

  /// The component-wise fallback body: applies the scalar function to
  /// every vector lane. Only scalar and vector parameters are supported.
  std::string componentwiseBody(const UserFun *U, unsigned Width) {
    std::string Ret =
        c::cTypeToString(cTypeOf(vectorize(U->getReturnType(), Width)));
    std::string Body = "return (" + Ret + ")(";
    for (unsigned Lane = 0; Lane != Width; ++Lane) {
      if (Lane != 0)
        Body += ", ";
      Body += U->getName() + "(";
      for (size_t I = 0, E = U->getParamNames().size(); I != E; ++I) {
        if (I != 0)
          Body += ", ";
        Body += U->getParamNames()[I];
        if (isa<ScalarType>(U->getParamTypes()[I].get()))
          Body += ".s" + std::to_string(Lane);
        else
          notSupported("component-wise vectorization of a non-scalar "
                       "parameter of " +
                       U->getName());
      }
      Body += ")";
    }
    Body += ");";
    return Body;
  }

  void finishModule() {
    K.Module.Structs = StructOrder;
    for (const auto &Key : UserFunOrder) {
      const UFInstance &Inst = UserFuns[Key];
      auto F = std::make_shared<c::CFunction>();
      F->Name = Inst.MangledName;
      F->ReturnType = cTypeOf(vectorize(Inst.UF->getReturnType(), Inst.Width));
      cparse::ParseContext PC;
      for (const auto &[SName, STy] : Structs)
        PC.NamedTypes[SName] = STy;
      for (size_t I = 0, E = Inst.UF->getParamNames().size(); I != E; ++I) {
        auto P = std::make_shared<c::CVar>(
            Inst.UF->getParamNames()[I],
            cTypeOf(vectorize(Inst.UF->getParamTypes()[I], Inst.Width)));
        F->Params.push_back(P);
        PC.Params.push_back(P);
      }
      if (Inst.Width > 1 && !hasSimpleArithmeticBody(Inst.UF)) {
        // Section 3.2 fallback: apply the scalar function per component.
        F->Body = cparse::parseFunctionBody(
            componentwiseBody(Inst.UF, Inst.Width), PC);
      } else {
        F->Body = cparse::parseFunctionBody(Inst.UF->getBody(), PC);
      }
      K.Module.Functions.push_back(F);
    }

    auto Kern = std::make_shared<c::CFunction>();
    Kern->Name = Opts.KernelName;
    Kern->ReturnType = c::voidTy();
    Kern->IsKernel = true;
    for (const KernelParamInfo &P : K.Params)
      Kern->Params.push_back(P.Var);
    std::vector<c::CStmtPtr> BodyStmts = TopDecls;
    for (c::CStmtPtr &S : Blocks.back())
      BodyStmts.push_back(std::move(S));
    Kern->Body = std::make_shared<c::Block>(std::move(BodyStmts));
    K.Module.Kernel = Kern;
  }
};

/// Deterministic (AST-order) variable-slot numbering: visits every CVar
/// reachable from the module and hands out dense indices. See VarSlotInfo.
class SlotAssigner {
  VarSlotInfo Info;
  std::set<const c::CVar *> Visited;
  const c::CModule *Mod = nullptr;

  void visitVar(const c::CVarPtr &V) {
    if (!V)
      return;
    if (!Visited.insert(V.get()).second)
      return; // already numbered in this walk
    V->Slot = static_cast<int>(Info.NumSlots++);
    if (V->ArithId != 0) {
      auto [It, Fresh] =
          Info.ArithSlotById.emplace(V->ArithId,
                                     static_cast<unsigned>(V->Slot));
      V->ArithSlot = static_cast<int>(It->second);
      (void)Fresh;
    } else {
      V->ArithSlot = -1;
    }
  }

  void visitExpr(const c::CExprPtr &E) {
    using namespace c;
    if (!E)
      return;
    switch (E->getKind()) {
    case CExprKind::IntLit:
    case CExprKind::FloatLit:
    case CExprKind::ArithValue:
      return;
    case CExprKind::VarRef:
      visitVar(cast<VarRef>(E.get())->getVar());
      return;
    case CExprKind::ArrayAccess:
      visitExpr(cast<ArrayAccess>(E.get())->getBase());
      visitExpr(cast<ArrayAccess>(E.get())->getIndex());
      return;
    case CExprKind::Member:
      visitExpr(cast<Member>(E.get())->getBase());
      return;
    case CExprKind::Binary:
      visitExpr(cast<Binary>(E.get())->getLhs());
      visitExpr(cast<Binary>(E.get())->getRhs());
      return;
    case CExprKind::Unary:
      visitExpr(cast<Unary>(E.get())->getSub());
      return;
    case CExprKind::Call: {
      // Resolve the callee once per module so the runtime dispatches on
      // a kind instead of the name (same idiom as CVar::Slot).
      const auto *C = cast<Call>(E.get());
      C->ResolvedKind = static_cast<int>(classifyBuiltin(C->getCallee()));
      if (C->ResolvedKind == static_cast<int>(CallKind::User))
        C->ResolvedFn = Mod->findFunction(C->getCallee()).get();
      for (const CExprPtr &A : C->getArgs())
        visitExpr(A);
      return;
    }
    case CExprKind::Ternary:
      visitExpr(cast<Ternary>(E.get())->getCond());
      visitExpr(cast<Ternary>(E.get())->getThen());
      visitExpr(cast<Ternary>(E.get())->getElse());
      return;
    case CExprKind::CastExpr:
      visitExpr(cast<CastExpr>(E.get())->getSub());
      return;
    case CExprKind::ConstructVector:
      for (const CExprPtr &A : cast<ConstructVector>(E.get())->getArgs())
        visitExpr(A);
      return;
    case CExprKind::ConstructStruct:
      for (const CExprPtr &A : cast<ConstructStruct>(E.get())->getArgs())
        visitExpr(A);
      return;
    case CExprKind::VectorLoad:
      visitExpr(cast<VectorLoad>(E.get())->getIndex());
      visitExpr(cast<VectorLoad>(E.get())->getPointer());
      return;
    case CExprKind::VectorStore:
      visitExpr(cast<VectorStore>(E.get())->getValue());
      visitExpr(cast<VectorStore>(E.get())->getIndex());
      visitExpr(cast<VectorStore>(E.get())->getPointer());
      return;
    }
  }

  void visitStmt(const c::CStmtPtr &S) {
    using namespace c;
    if (!S)
      return;
    switch (S->getKind()) {
    case CStmtKind::Block:
      for (const CStmtPtr &Sub : cast<Block>(S.get())->getStmts())
        visitStmt(Sub);
      return;
    case CStmtKind::VarDecl:
      visitVar(cast<VarDecl>(S.get())->getVar());
      visitExpr(cast<VarDecl>(S.get())->getInit());
      return;
    case CStmtKind::Assign:
      visitExpr(cast<Assign>(S.get())->getLhs());
      visitExpr(cast<Assign>(S.get())->getRhs());
      return;
    case CStmtKind::ExprStmt:
      visitExpr(cast<ExprStmt>(S.get())->getExpr());
      return;
    case CStmtKind::For: {
      const auto *F = cast<For>(S.get());
      visitVar(F->getIV());
      visitExpr(F->getInit());
      visitExpr(F->getCond());
      visitExpr(F->getStep());
      for (const CStmtPtr &Sub : F->getBody()->getStmts())
        visitStmt(Sub);
      return;
    }
    case CStmtKind::If: {
      const auto *I = cast<If>(S.get());
      visitExpr(I->getCond());
      for (const CStmtPtr &Sub : I->getThen()->getStmts())
        visitStmt(Sub);
      if (I->getElse())
        for (const CStmtPtr &Sub : I->getElse()->getStmts())
          visitStmt(Sub);
      return;
    }
    case CStmtKind::Barrier:
    case CStmtKind::Return:
      if (S->getKind() == CStmtKind::Return)
        visitExpr(cast<Return>(S.get())->getValue());
      return;
    case CStmtKind::Comment:
      return;
    }
  }

  void visitFunction(const c::CFunctionPtr &F) {
    if (!F)
      return;
    for (const c::CVarPtr &P : F->Params)
      visitVar(P);
    if (F->Body)
      for (const c::CStmtPtr &S : F->Body->getStmts())
        visitStmt(S);
  }

public:
  VarSlotInfo run(const c::CModule &M) {
    Mod = &M;
    visitFunction(M.Kernel);
    for (const c::CFunctionPtr &F : M.Functions)
      visitFunction(F);
    return std::move(Info);
  }
};

} // namespace

std::shared_ptr<const VarSlotInfo>
codegen::computeVarSlots(const c::CModule &Module) {
  return std::make_shared<const VarSlotInfo>(SlotAssigner().run(Module));
}

CompiledKernel codegen::compileOrThrow(const LambdaPtr &Program,
                                       const CompilerOptions &Options) {
  // Work on a private clone so annotations never leak between compiles.
  LambdaPtr Clone = cast<Lambda>(cloneFunDecl(
      std::static_pointer_cast<FunDecl>(Program)));

  inferProgramTypes(Clone);
  if (Options.VerifyEach)
    passes::verifyOrThrow(Clone, "after type inference");
  passes::inferAddressSpaces(Clone);
  if (Options.VerifyEach)
    passes::verifyOrThrow(Clone, "after address space inference");
  unsigned Eliminated = 0;
  if (Options.BarrierElimination) {
    Eliminated = passes::eliminateBarriers(Clone);
    if (Options.VerifyEach)
      passes::verifyOrThrow(Clone, "after barrier elimination");
  }

  Generator G(Clone, Options);
  CompiledKernel K = G.run();
  K.BarriersEliminated = Eliminated;
  K.Source = c::printModule(K.Module);
  K.Slots = computeVarSlots(K.Module);
  return K;
}

Expected<CompiledKernel> codegen::compileChecked(const LambdaPtr &Program,
                                                 const CompilerOptions &Options,
                                                 DiagnosticEngine &Engine) {
  try {
    return compileOrThrow(Program, Options);
  } catch (DiagnosticError &E) {
    if (!E.Recorded)
      Engine.report(E.Diag);
    return {};
  }
}

CompiledKernel codegen::compile(const LambdaPtr &Program,
                                const CompilerOptions &Options) {
  try {
    return compileOrThrow(Program, Options);
  } catch (DiagnosticError &E) {
    fatalError(E.Diag.render());
  }
}
