//===- Compiler.h - The Lift-to-OpenCL compiler ------------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compilation flow of Figure 4: type analysis, memory allocation,
/// address space inference, view-based array access generation, barrier
/// elimination and OpenCL code generation with control-flow simplification.
/// Each optimization can be toggled independently to reproduce the paper's
/// ablation study (Figure 8).
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_CODEGEN_COMPILER_H
#define LIFT_CODEGEN_COMPILER_H

#include "cast/CAst.h"
#include "ir/IR.h"
#include "support/Diagnostics.h"
#include "view/View.h"

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace lift {
namespace codegen {

/// Compile-time configuration: the NDRange the kernel is specialized for
/// (needed by the range analysis behind control-flow simplification) and
/// the optimization toggles of section 5.
struct CompilerOptions {
  std::array<int64_t, 3> GlobalSize = {256, 1, 1};
  std::array<int64_t, 3> LocalSize = {32, 1, 1};

  bool BarrierElimination = true;
  bool ControlFlowSimplification = true;
  bool ArrayAccessSimplification = true;

  /// Sequential loops with a constant trip count up to this limit are
  /// fully unrolled under control-flow simplification (0 disables
  /// unrolling beyond the trivial single-iteration case).
  int64_t UnrollLimit = 9;

  /// Dynamic safety checking in the simulated runtime (see
  /// ocl/RaceDetector.h): record per-barrier-interval access sets and flag
  /// data races and barrier divergence. Validates barrier elimination on
  /// every run instead of trusting one fixed schedule.
  bool CheckRaces = false;
  /// Permute work-item execution order within each barrier interval
  /// (seeded, reproducible) to expose order-dependent results the fixed
  /// lockstep schedule hides.
  bool PerturbSchedule = false;
  uint64_t ScheduleSeed = 1;

  /// Run the IR verifier (passes/Verify.h) after every pipeline stage —
  /// type inference, address space inference, barrier elimination — and
  /// fail compilation with a structured diagnostic on the first violated
  /// invariant.
  bool VerifyEach = false;

  /// Guarded-memory execution in the simulated runtime (see ocl/MemGuard.h):
  /// bounds-check every buffer load/store against the allocated extent and
  /// flag reads of never-written elements.
  bool CheckMemory = false;

  /// Worker threads for the simulated runtime's work-group loop. 0 = auto
  /// (LIFT_THREADS, else hardware concurrency); 1 = serial.
  int Threads = 0;

  /// Execution bounds for the simulated runtime (liftc --max-steps /
  /// --timeout-ms / --max-memory; see ocl::ExecLimits). 0 = unlimited,
  /// with LIFT_MAX_STEPS / LIFT_TIMEOUT_MS / LIFT_MAX_MEMORY environment
  /// fallbacks applied at launch time.
  uint64_t MaxSteps = 0;
  int64_t TimeoutMs = 0;
  uint64_t MaxMemoryBytes = 0;

  std::string KernelName = "KERNEL";

  int64_t numGroups(unsigned Dim) const {
    return GlobalSize[Dim] / LocalSize[Dim];
  }

  /// All three optimizations off — the "None" bar of Figure 8.
  static CompilerOptions noOptimizations() {
    CompilerOptions O;
    O.BarrierElimination = false;
    O.ControlFlowSimplification = false;
    O.ArrayAccessSimplification = false;
    return O;
  }
};

/// A kernel parameter: a global buffer (program input or the appended
/// output) or a scalar (by-value program parameter or array size).
struct KernelParamInfo {
  c::CVarPtr Var;
  view::StoragePtr Store;   ///< Set for buffer parameters.
  bool IsOutput = false;
  bool IsSizeParam = false; ///< Scalar int bound to an arith size variable.
  unsigned ArithId = 0;     ///< For size params: the arith variable id.
};

/// Dense variable-slot numbering for one compiled kernel: every c::CVar
/// reachable from the module (kernel parameters, declarations, loop
/// induction variables, user-function parameters) gets a unique index in
/// [0, NumSlots). The simulated runtime executes work-items against flat
/// frames (std::vector<Value> indexed by slot) instead of per-item hash
/// maps — the interpreter's hottest path. Computed once per kernel by
/// computeVarSlots and shared read-only by every launch.
struct VarSlotInfo {
  unsigned NumSlots = 0;
  /// Arith variable id -> canonical slot holding its runtime value
  /// (mirrors CVar::ArithSlot, for resolving symbolic index variables).
  std::unordered_map<unsigned, unsigned> ArithSlotById;
};

/// Walks \p Module in deterministic AST order, assigns CVar::Slot /
/// CVar::ArithSlot annotations and returns the slot table. Idempotent for
/// a fixed module.
std::shared_ptr<const VarSlotInfo> computeVarSlots(const c::CModule &Module);

/// The result of compilation: the kernel as both a C AST (executed by the
/// simulated runtime) and printed OpenCL C source, plus the metadata the
/// host needs to bind arguments.
struct CompiledKernel {
  c::CModule Module;
  std::string Source;
  std::vector<KernelParamInfo> Params;
  ir::TypePtr OutputType;
  CompilerOptions Options;

  /// Frame-slot numbering for the module's variables (see VarSlotInfo).
  /// Set by compile/wrapModule; launches recompute it when absent.
  std::shared_ptr<const VarSlotInfo> Slots;

  /// Storage id -> C variable, used by the interpreter to resolve
  /// data-dependent Lookup indices.
  std::vector<std::pair<unsigned, c::CVarPtr>> StorageVars;

  // Statistics for the evaluation harness.
  unsigned BarriersEmitted = 0;
  unsigned BarriersEliminated = 0;
  unsigned LoopsEmitted = 0;
  unsigned LoopsSimplified = 0;
};

/// Compiles a Lift IL program into an OpenCL kernel, recording a
/// structured diagnostic into \p Engine and returning failure if the
/// program is ill-typed, fails verification, or uses an unsupported
/// construct. The program is cloned first, so the same program can be
/// compiled repeatedly with different options. Never aborts on bad input.
Expected<CompiledKernel> compileChecked(const ir::LambdaPtr &Program,
                                        const CompilerOptions &Options,
                                        DiagnosticEngine &Engine);

/// Like compileChecked but propagates the failure as a DiagnosticError
/// throw instead of recording it. Building block for the two wrappers.
CompiledKernel compileOrThrow(const ir::LambdaPtr &Program,
                              const CompilerOptions &Options);

/// Convenience wrapper over compileChecked that aborts with the rendered
/// diagnostic on bad input (for hosts and tests that treat programs as
/// trusted).
CompiledKernel compile(const ir::LambdaPtr &Program,
                       const CompilerOptions &Options);

} // namespace codegen
} // namespace lift

#endif // LIFT_CODEGEN_COMPILER_H
