//===- CParser.cpp - Parser for the user-function C subset ------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "cparse/CParser.h"

#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/Error.h"

#include <cctype>
#include <cstdlib>

using namespace lift;
using namespace lift::c;
using namespace lift::cparse;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

enum class TokKind {
  Eof,
  Ident,
  IntNumber,
  FloatNumber,
  Punct, // single/multi char operator or punctuation
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  int64_t IntValue = 0;
  double FloatValue = 0;
  bool FloatIsDouble = false;
};

class Lexer {
  const std::string &Src;
  size_t Pos = 0;

public:
  explicit Lexer(const std::string &Src) : Src(Src) {}

  Token next() {
    skipWhitespaceAndComments();
    Token T;
    if (Pos >= Src.size())
      return T;
    char C = Src[Pos];
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      return lexIdent();
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '.' && Pos + 1 < Src.size() &&
         std::isdigit(static_cast<unsigned char>(Src[Pos + 1]))))
      return lexNumber();
    return lexPunct();
  }

private:
  void skipWhitespaceAndComments() {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
        continue;
      }
      if (C == '/' && Pos + 1 < Src.size() && Src[Pos + 1] == '/') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
        continue;
      }
      if (C == '/' && Pos + 1 < Src.size() && Src[Pos + 1] == '*') {
        Pos += 2;
        while (Pos + 1 < Src.size() &&
               !(Src[Pos] == '*' && Src[Pos + 1] == '/'))
          ++Pos;
        Pos += 2;
        continue;
      }
      break;
    }
  }

  Token lexIdent() {
    Token T;
    T.Kind = TokKind::Ident;
    size_t Start = Pos;
    while (Pos < Src.size() &&
           (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
            Src[Pos] == '_'))
      ++Pos;
    T.Text = Src.substr(Start, Pos - Start);
    return T;
  }

  Token lexNumber() {
    Token T;
    size_t Start = Pos;
    bool IsFloat = false;
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (std::isdigit(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '.') {
        IsFloat = true;
        ++Pos;
      } else if (C == 'e' || C == 'E') {
        IsFloat = true;
        ++Pos;
        if (Pos < Src.size() && (Src[Pos] == '+' || Src[Pos] == '-'))
          ++Pos;
      } else {
        break;
      }
    }
    std::string Digits = Src.substr(Start, Pos - Start);
    bool HasSuffix = false;
    if (Pos < Src.size() && (Src[Pos] == 'f' || Src[Pos] == 'F')) {
      IsFloat = true;
      HasSuffix = true;
      ++Pos;
    }
    if (IsFloat) {
      T.Kind = TokKind::FloatNumber;
      T.FloatValue = std::strtod(Digits.c_str(), nullptr);
      T.FloatIsDouble = !HasSuffix;
    } else {
      T.Kind = TokKind::IntNumber;
      T.IntValue = std::strtoll(Digits.c_str(), nullptr, 10);
    }
    T.Text = Digits;
    return T;
  }

  Token lexPunct() {
    Token T;
    T.Kind = TokKind::Punct;
    static const char *TwoChar[] = {"==", "!=", "<=", ">=", "&&", "||",
                                    "+=", "-=", "*=", "/=", "++", "--"};
    for (const char *Op : TwoChar) {
      if (Src.compare(Pos, 2, Op) == 0) {
        T.Text = Op;
        Pos += 2;
        return T;
      }
    }
    T.Text = Src.substr(Pos, 1);
    ++Pos;
    return T;
  }
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

class Parser {
  Lexer Lex;
  Token Tok;
  const ParseContext &Ctx;
  std::vector<CVarPtr> Scope;

public:
  Parser(const std::string &Source, const ParseContext &Ctx)
      : Lex(Source), Ctx(Ctx) {
    Scope = Ctx.Params;
    advance();
  }

  CModule parseTranslationUnit() {
    CModule M;
    while (Tok.Kind != TokKind::Eof) {
      bool IsKernel = false;
      if (isIdent("kernel")) {
        IsKernel = true;
        advance();
      }
      CTypePtr RetTy;
      if (isIdent("void")) {
        RetTy = voidTy();
        advance();
      } else {
        RetTy = peekType();
        if (!RetTy)
          error("expected function return type");
        advance();
      }
      if (Tok.Kind != TokKind::Ident)
        error("expected function name");
      auto F = std::make_shared<CFunction>();
      F->Name = Tok.Text;
      F->ReturnType = RetTy;
      F->IsKernel = IsKernel;
      advance();
      expectPunct("(");
      size_t OuterScope = Scope.size();
      if (!isPunct(")")) {
        while (true) {
          auto [Ty, AS] = parseQualifiedType();
          (void)AS;
          if (Tok.Kind != TokKind::Ident)
            error("expected parameter name");
          auto P = std::make_shared<CVar>(Tok.Text, Ty);
          advance();
          F->Params.push_back(P);
          Scope.push_back(P);
          if (isPunct(","))
            advance();
          else
            break;
        }
      }
      expectPunct(")");
      F->Body = parseBlockOrStmt();
      Scope.resize(OuterScope);
      if (IsKernel) {
        if (M.Kernel)
          error("multiple kernels in one translation unit");
        M.Kernel = F;
      } else {
        M.Functions.push_back(F);
      }
    }
    return M;
  }

  BlockPtr parseBody() {
    std::vector<CStmtPtr> Stmts;
    while (Tok.Kind != TokKind::Eof)
      Stmts.push_back(parseStmt());
    return std::make_shared<Block>(std::move(Stmts));
  }

  CExprPtr parseExpr() { return parseTernary(); }

private:
  void advance() { Tok = Lex.next(); }

  [[noreturn]] void error(const std::string &Msg) {
    throwDiag(DiagCode::CodegenUserFunSyntax, DiagLocation(),
              "user function parse error: " + Msg + " (at '" + Tok.Text +
                  "')");
  }

  bool isPunct(const char *P) const {
    return Tok.Kind == TokKind::Punct && Tok.Text == P;
  }

  bool isIdent(const char *S) const {
    return Tok.Kind == TokKind::Ident && Tok.Text == S;
  }

  void expectPunct(const char *P) {
    if (!isPunct(P))
      error(std::string("expected '") + P + "'");
    advance();
  }

  CVarPtr lookupVar(const std::string &Name) {
    for (auto It = Scope.rbegin(); It != Scope.rend(); ++It)
      if ((*It)->Name == Name)
        return *It;
    return nullptr;
  }

  /// Recognizes a type name: builtin scalar/vector, or a named struct from
  /// the context. Returns null without consuming if not a type.
  CTypePtr peekType() {
    if (Tok.Kind != TokKind::Ident)
      return nullptr;
    const std::string &S = Tok.Text;
    if (S == "float")
      return floatTy();
    if (S == "double")
      return doubleTy();
    if (S == "int")
      return intTy();
    if (S == "bool")
      return boolTy();
    static const struct {
      const char *Name;
      CScalarKind Kind;
      unsigned Width;
    } Vectors[] = {
        {"float2", CScalarKind::Float, 2},  {"float3", CScalarKind::Float, 3},
        {"float4", CScalarKind::Float, 4},  {"float8", CScalarKind::Float, 8},
        {"float16", CScalarKind::Float, 16}, {"int2", CScalarKind::Int, 2},
        {"int4", CScalarKind::Int, 4},
    };
    for (const auto &V : Vectors)
      if (S == V.Name)
        return vectorTy(V.Kind, V.Width);
    auto It = Ctx.NamedTypes.find(S);
    if (It != Ctx.NamedTypes.end())
      return It->second;
    return nullptr;
  }

  /// Parses an optionally qualified, optionally pointer type as it appears
  /// in kernel parameter lists and local declarations. Returns the type
  /// and the address space named by the qualifier.
  std::pair<CTypePtr, CAddrSpace> parseQualifiedType() {
    CAddrSpace AS = CAddrSpace::Private;
    while (true) {
      if (isIdent("global")) {
        AS = CAddrSpace::Global;
        advance();
        continue;
      }
      if (isIdent("local")) {
        AS = CAddrSpace::Local;
        advance();
        continue;
      }
      if (isIdent("const")) {
        advance();
        continue;
      }
      break;
    }
    CTypePtr Ty = peekType();
    if (!Ty)
      error("expected a type");
    advance();
    if (isPunct("*")) {
      advance();
      Ty = pointerTy(Ty, AS);
      if (isIdent("restrict"))
        advance();
    }
    return {Ty, AS};
  }

  /// True if the upcoming tokens start a declaration (qualifier or type).
  bool atDeclaration() {
    return isIdent("global") || isIdent("local") || isIdent("const") ||
           peekType() != nullptr;
  }

  CStmtPtr parseDeclaration() {
    auto [Ty, AS] = parseQualifiedType();
    if (Tok.Kind != TokKind::Ident)
      error("expected variable name in declaration");
    std::string Name = Tok.Text;
    advance();
    arith::Expr ArraySize;
    if (isPunct("[")) {
      advance();
      if (Tok.Kind != TokKind::IntNumber)
        error("array sizes in declarations must be integer constants");
      ArraySize = arith::cst(Tok.IntValue);
      advance();
      expectPunct("]");
    }
    CExprPtr Init;
    if (isPunct("=")) {
      advance();
      Init = parseExpr();
    }
    expectPunct(";");
    auto V = std::make_shared<CVar>(Name, Ty);
    Scope.push_back(V);
    return std::make_shared<VarDecl>(V, Init, ArraySize, AS);
  }

  /// Parses an assignment-like tail after \p Lhs: `=`, compound
  /// assignment, or `++`/`--`. Returns null if none applies.
  CStmtPtr parseAssignTail(const CExprPtr &Lhs) {
    static const struct {
      const char *Punct;
      BinOp Op;
    } Compound[] = {{"+=", BinOp::Add},
                    {"-=", BinOp::Sub},
                    {"*=", BinOp::Mul},
                    {"/=", BinOp::Div}};
    if (isPunct("=")) {
      advance();
      return std::make_shared<Assign>(Lhs, parseExpr());
    }
    for (const auto &CA : Compound) {
      if (isPunct(CA.Punct)) {
        advance();
        return std::make_shared<Assign>(
            Lhs, std::make_shared<Binary>(CA.Op, Lhs, parseExpr()));
      }
    }
    if (isPunct("++") || isPunct("--")) {
      BinOp Op = isPunct("++") ? BinOp::Add : BinOp::Sub;
      advance();
      return std::make_shared<Assign>(
          Lhs,
          std::make_shared<Binary>(Op, Lhs, std::make_shared<IntLit>(1)));
    }
    return nullptr;
  }

  CStmtPtr parseFor() {
    expectPunct("(");
    // Induction variable declaration or re-initialization.
    CVarPtr IV;
    CExprPtr Init;
    if (atDeclaration()) {
      auto [Ty, AS] = parseQualifiedType();
      (void)AS;
      if (Tok.Kind != TokKind::Ident)
        error("expected loop variable name");
      IV = std::make_shared<CVar>(Tok.Text, Ty);
      Scope.push_back(IV);
      advance();
      expectPunct("=");
      Init = parseExpr();
    } else {
      if (Tok.Kind != TokKind::Ident)
        error("expected loop variable");
      IV = lookupVar(Tok.Text);
      if (!IV)
        error("unknown loop variable '" + Tok.Text + "'");
      advance();
      expectPunct("=");
      Init = parseExpr();
    }
    expectPunct(";");
    CExprPtr Cond = parseExpr();
    expectPunct(";");
    // Step: IV = expr, IV += expr or IV++.
    if (Tok.Kind != TokKind::Ident || Tok.Text != IV->Name)
      error("for-step must update the loop variable");
    CExprPtr IVRef = std::make_shared<VarRef>(IV);
    advance();
    CStmtPtr StepAssign = parseAssignTail(IVRef);
    if (!StepAssign)
      error("expected loop step");
    CExprPtr Step = cast<Assign>(StepAssign.get())->getRhs();
    expectPunct(")");
    BlockPtr Body = parseBlockOrStmt();
    return std::make_shared<For>(IV, Init, Cond, Step, Body);
  }

  CStmtPtr parseStmt() {
    if (isIdent("for")) {
      advance();
      return parseFor();
    }
    if (isIdent("barrier")) {
      advance();
      expectPunct("(");
      bool Local = false, Global = false;
      while (!isPunct(")")) {
        if (Tok.Kind == TokKind::Ident) {
          if (Tok.Text == "CLK_LOCAL_MEM_FENCE")
            Local = true;
          else if (Tok.Text == "CLK_GLOBAL_MEM_FENCE")
            Global = true;
          else
            error("unknown barrier fence flag");
          advance();
        } else if (isPunct("|")) {
          advance();
        } else {
          error("malformed barrier flags");
        }
      }
      advance();
      expectPunct(";");
      if (!Local && !Global)
        Local = true;
      return std::make_shared<Barrier>(Local, Global);
    }
    if (isIdent("return")) {
      advance();
      if (isPunct(";")) {
        advance();
        return std::make_shared<Return>();
      }
      CExprPtr E = parseExpr();
      expectPunct(";");
      return std::make_shared<Return>(E);
    }
    if (isIdent("if")) {
      advance();
      expectPunct("(");
      CExprPtr Cond = parseExpr();
      expectPunct(")");
      BlockPtr Then = parseBlockOrStmt();
      BlockPtr Else;
      if (isIdent("else")) {
        advance();
        Else = parseBlockOrStmt();
      }
      return std::make_shared<If>(Cond, Then, Else);
    }
    if (isPunct("{")) {
      return parseBlockOrStmt();
    }
    // Declaration?
    if (atDeclaration())
      return parseDeclaration();
    // Assignment or expression statement.
    CExprPtr Lhs = parseExpr();
    if (CStmtPtr A = parseAssignTail(Lhs)) {
      expectPunct(";");
      return A;
    }
    expectPunct(";");
    return std::make_shared<ExprStmt>(Lhs);
  }

  BlockPtr parseBlockOrStmt() {
    if (isPunct("{")) {
      advance();
      size_t ScopeDepth = Scope.size();
      std::vector<CStmtPtr> Stmts;
      while (!isPunct("}")) {
        if (Tok.Kind == TokKind::Eof)
          error("unterminated block");
        Stmts.push_back(parseStmt());
      }
      advance();
      Scope.resize(ScopeDepth);
      return std::make_shared<Block>(std::move(Stmts));
    }
    std::vector<CStmtPtr> One;
    One.push_back(parseStmt());
    return std::make_shared<Block>(std::move(One));
  }

  CExprPtr parseTernary() {
    CExprPtr Cond = parseBinary(0);
    if (!isPunct("?"))
      return Cond;
    advance();
    CExprPtr Then = parseExpr();
    expectPunct(":");
    CExprPtr Else = parseTernary();
    return std::make_shared<Ternary>(Cond, Then, Else);
  }

  /// Operator precedence table, lowest first.
  static int binPrec(const std::string &Op) {
    if (Op == "||")
      return 1;
    if (Op == "&&")
      return 2;
    if (Op == "==" || Op == "!=")
      return 3;
    if (Op == "<" || Op == "<=" || Op == ">" || Op == ">=")
      return 4;
    if (Op == "+" || Op == "-")
      return 5;
    if (Op == "*" || Op == "/" || Op == "%")
      return 6;
    return -1;
  }

  static BinOp binOpFor(const std::string &Op) {
    if (Op == "||")
      return BinOp::Or;
    if (Op == "&&")
      return BinOp::And;
    if (Op == "==")
      return BinOp::Eq;
    if (Op == "!=")
      return BinOp::Ne;
    if (Op == "<")
      return BinOp::Lt;
    if (Op == "<=")
      return BinOp::Le;
    if (Op == ">")
      return BinOp::Gt;
    if (Op == ">=")
      return BinOp::Ge;
    if (Op == "+")
      return BinOp::Add;
    if (Op == "-")
      return BinOp::Sub;
    if (Op == "*")
      return BinOp::Mul;
    if (Op == "/")
      return BinOp::Div;
    return BinOp::Rem;
  }

  CExprPtr parseBinary(int MinPrec) {
    CExprPtr Lhs = parseUnary();
    while (Tok.Kind == TokKind::Punct) {
      int Prec = binPrec(Tok.Text);
      if (Prec < 0 || Prec < MinPrec)
        break;
      std::string Op = Tok.Text;
      advance();
      CExprPtr Rhs = parseBinary(Prec + 1);
      Lhs = std::make_shared<Binary>(binOpFor(Op), Lhs, Rhs);
    }
    return Lhs;
  }

  CExprPtr parseUnary() {
    if (isPunct("-")) {
      advance();
      return std::make_shared<Unary>(UnOp::Neg, parseUnary());
    }
    if (isPunct("!")) {
      advance();
      return std::make_shared<Unary>(UnOp::Not, parseUnary());
    }
    if (isPunct("+")) {
      advance();
      return parseUnary();
    }
    return parsePostfix();
  }

  CExprPtr parsePostfix() {
    CExprPtr E = parsePrimary();
    while (true) {
      if (isPunct(".")) {
        advance();
        if (Tok.Kind != TokKind::Ident)
          error("expected member name after '.'");
        E = std::make_shared<Member>(E, Tok.Text);
        advance();
        continue;
      }
      if (isPunct("[")) {
        advance();
        CExprPtr Idx = parseExpr();
        expectPunct("]");
        E = std::make_shared<ArrayAccess>(E, Idx);
        continue;
      }
      break;
    }
    return E;
  }

  CExprPtr parsePrimary() {
    if (Tok.Kind == TokKind::IntNumber) {
      auto E = std::make_shared<IntLit>(Tok.IntValue);
      advance();
      return E;
    }
    if (Tok.Kind == TokKind::FloatNumber) {
      auto E = std::make_shared<FloatLit>(Tok.FloatValue, Tok.FloatIsDouble);
      advance();
      return E;
    }
    if (isPunct("(")) {
      advance();
      // Cast, vector constructor, or struct literal?
      if (CTypePtr Ty = peekType()) {
        advance();
        expectPunct(")");
        if (isa<VectorCType>(Ty.get()) && isPunct("(")) {
          advance();
          std::vector<CExprPtr> Args;
          if (!isPunct(")")) {
            Args.push_back(parseExpr());
            while (isPunct(",")) {
              advance();
              Args.push_back(parseExpr());
            }
          }
          expectPunct(")");
          return std::make_shared<ConstructVector>(Ty, std::move(Args));
        }
        if (isa<StructCType>(Ty.get()) && isPunct("{")) {
          advance();
          std::vector<CExprPtr> Args;
          if (!isPunct("}")) {
            Args.push_back(parseExpr());
            while (isPunct(",")) {
              advance();
              Args.push_back(parseExpr());
            }
          }
          expectPunct("}");
          return std::make_shared<ConstructStruct>(Ty, std::move(Args));
        }
        return std::make_shared<CastExpr>(Ty, parseUnary());
      }
      CExprPtr E = parseExpr();
      expectPunct(")");
      return E;
    }
    if (Tok.Kind == TokKind::Ident) {
      std::string Name = Tok.Text;
      advance();
      if (isPunct("(")) {
        advance();
        std::vector<CExprPtr> Args;
        if (!isPunct(")")) {
          Args.push_back(parseExpr());
          while (isPunct(",")) {
            advance();
            Args.push_back(parseExpr());
          }
        }
        expectPunct(")");
        return std::make_shared<Call>(Name, std::move(Args));
      }
      CVarPtr V = lookupVar(Name);
      if (!V)
        error("unknown identifier '" + Name + "'");
      return std::make_shared<VarRef>(V);
    }
    error("expected expression");
  }
};

} // namespace

BlockPtr cparse::parseFunctionBody(const std::string &Source,
                                   const ParseContext &Ctx) {
  return Parser(Source, Ctx).parseBody();
}

CExprPtr cparse::parseExpression(const std::string &Source,
                                 const ParseContext &Ctx) {
  return Parser(Source, Ctx).parseExpr();
}

CModule cparse::parseModule(const std::string &Source,
                            const ParseContext &Ctx) {
  return Parser(Source, Ctx).parseTranslationUnit();
}
