//===- CParser.h - Parser for the user-function C subset --------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the bodies of Lift user functions — "a subset of the C language
/// operating on non-array data types" (section 4.1 of the paper) — into the
/// C AST, so that the simulated OpenCL runtime executes exactly the code
/// the kernel printer emits. Supported: declarations, assignments, if/else,
/// return, full C expression precedence, calls to built-in math functions,
/// vector/struct construction and member access.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_CPARSE_CPARSER_H
#define LIFT_CPARSE_CPARSER_H

#include "cast/CAst.h"

#include <map>
#include <string>
#include <vector>

namespace lift {
namespace cparse {

/// Context available to a user-function body: its parameters and the named
/// (struct) types it may mention.
struct ParseContext {
  std::vector<c::CVarPtr> Params;
  std::map<std::string, c::CTypePtr> NamedTypes;
};

/// Parses a function body (a sequence of statements). Aborts with a
/// diagnostic naming the offending token on malformed input.
c::BlockPtr parseFunctionBody(const std::string &Source,
                              const ParseContext &Ctx);

/// Parses a single expression (used in tests).
c::CExprPtr parseExpression(const std::string &Source,
                            const ParseContext &Ctx);

/// Parses a whole OpenCL C translation unit: helper functions and one
/// kernel. Supports the kernel subset the benchmarks' hand-written
/// reference implementations use: address-space-qualified pointer
/// parameters, local array declarations, for loops (with `+=`/`++`
/// steps), array subscripts, and barrier() calls. Used to run the paper's
/// baseline kernels on the same simulated device as generated code.
c::CModule parseModule(const std::string &Source, const ParseContext &Ctx);

} // namespace cparse
} // namespace lift

#endif // LIFT_CPARSE_CPARSER_H
