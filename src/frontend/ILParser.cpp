//===- ILParser.cpp - Text frontend for the Lift IL ---------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "frontend/ILParser.h"

#include "ir/DSL.h"
#include "support/Diagnostics.h"
#include "support/Error.h"

#include <cctype>
#include <cstdlib>
#include <vector>

using namespace lift;
using namespace lift::frontend;
using namespace lift::ir;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

enum class Tok {
  Eof,
  Ident,
  Number,     // integer or float (with optional f suffix)
  String,     // "..." user function body
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Colon,
  Arrow,      // ->
  FatArrow,   // =>
  Lambda,     // λ or backslash
  Equals,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
};

struct Token {
  Tok Kind = Tok::Eof;
  std::string Text;
  unsigned Line = 1;
};

class Lexer {
  const std::string &Src;
  size_t Pos = 0;
  unsigned Line = 1;

public:
  explicit Lexer(const std::string &Src) : Src(Src) {}

  Token next() {
    skip();
    Token T;
    T.Line = Line;
    if (Pos >= Src.size())
      return T;
    char C = Src[Pos];

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      T.Kind = Tok::Ident;
      size_t S = Pos;
      while (Pos < Src.size() &&
             (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '_'))
        ++Pos;
      T.Text = Src.substr(S, Pos - S);
      return T;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      T.Kind = Tok::Number;
      size_t S = Pos;
      while (Pos < Src.size() &&
             (std::isdigit(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '.' || Src[Pos] == 'e' || Src[Pos] == 'E' ||
              Src[Pos] == 'f' ||
              ((Src[Pos] == '+' || Src[Pos] == '-') &&
               (Src[Pos - 1] == 'e' || Src[Pos - 1] == 'E'))))
        ++Pos;
      T.Text = Src.substr(S, Pos - S);
      return T;
    }
    if (C == '"') {
      T.Kind = Tok::String;
      ++Pos;
      size_t S = Pos;
      while (Pos < Src.size() && Src[Pos] != '"') {
        if (Src[Pos] == '\n')
          ++Line;
        ++Pos;
      }
      if (Pos >= Src.size())
        throwDiag(DiagCode::ParseUnterminatedString,
                  DiagLocation::atLine(T.Line),
                  "IL parse error: unterminated string");
      T.Text = Src.substr(S, Pos - S);
      ++Pos;
      return T;
    }
    // Multi-byte lambda (UTF-8 for λ is 0xCE 0xBB).
    if (static_cast<unsigned char>(C) == 0xCE && Pos + 1 < Src.size() &&
        static_cast<unsigned char>(Src[Pos + 1]) == 0xBB) {
      T.Kind = Tok::Lambda;
      Pos += 2;
      return T;
    }
    if (C == '\\') {
      T.Kind = Tok::Lambda;
      ++Pos;
      return T;
    }
    if (C == '-' && Pos + 1 < Src.size() && Src[Pos + 1] == '>') {
      T.Kind = Tok::Arrow;
      Pos += 2;
      return T;
    }
    if (C == '=' && Pos + 1 < Src.size() && Src[Pos + 1] == '>') {
      T.Kind = Tok::FatArrow;
      Pos += 2;
      return T;
    }
    ++Pos;
    switch (C) {
    case '(':
      T.Kind = Tok::LParen;
      break;
    case ')':
      T.Kind = Tok::RParen;
      break;
    case '[':
      T.Kind = Tok::LBracket;
      break;
    case ']':
      T.Kind = Tok::RBracket;
      break;
    case ',':
      T.Kind = Tok::Comma;
      break;
    case ':':
      T.Kind = Tok::Colon;
      break;
    case '=':
      T.Kind = Tok::Equals;
      break;
    case '+':
      T.Kind = Tok::Plus;
      break;
    case '-':
      T.Kind = Tok::Minus;
      break;
    case '*':
      T.Kind = Tok::Star;
      break;
    case '/':
      T.Kind = Tok::Slash;
      break;
    case '%':
      T.Kind = Tok::Percent;
      break;
    default:
      throwDiag(DiagCode::ParseUnexpectedChar, DiagLocation::atLine(Line),
                "IL parse error: unexpected character '" +
                    std::string(1, C) + "'");
    }
    T.Text = std::string(1, C);
    return T;
  }

private:
  void skip() {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
        continue;
      }
      if (C == '#' || (C == '/' && Pos + 1 < Src.size() &&
                       Src[Pos + 1] == '/')) {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
        continue;
      }
      break;
    }
  }
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

class ILParserImpl {
  Lexer Lex;
  Token Tok_;
  DiagnosticEngine &Engine;
  std::map<std::string, FunDeclPtr> UserFuns;
  std::map<std::string, std::shared_ptr<const arith::VarNode>> SizeVars;
  std::vector<std::vector<ParamPtr>> Scopes;
  unsigned Depth = 0;

  /// Recursion limit for nested expressions/types/functions: deeply nested
  /// (adversarial) inputs must produce a diagnostic, not a stack overflow.
  static constexpr unsigned MaxDepth = 200;
  /// Iterate counts are applied eagerly by type inference; cap them so a
  /// hostile constant cannot stall the compiler.
  static constexpr int64_t MaxIterateCount = 1 << 20;

  /// RAII nesting-depth guard. The increment happens only when the guard
  /// constructs successfully, so the count stays balanced across the
  /// exception-based `def` recovery.
  struct DepthGuard {
    ILParserImpl &P;
    explicit DepthGuard(ILParserImpl &P) : P(P) {
      if (P.Depth >= MaxDepth)
        P.error(DiagCode::ParseTooDeep, "nesting too deep (limit " +
                                            std::to_string(MaxDepth) + ")");
      ++P.Depth;
    }
    ~DepthGuard() { --P.Depth; }
  };

public:
  ILParserImpl(const std::string &Src, DiagnosticEngine &Engine)
      : Lex(Src), Engine(Engine) {
    advance();
  }

  ParsedProgram parse() {
    // Errors inside a `def` recover to the next top-level declaration, so
    // several broken definitions are reported in one pass.
    while (isIdent("def") && !Engine.errorLimitReached()) {
      try {
        parseUserFun();
      } catch (DiagnosticError &E) {
        if (!E.Recorded)
          Engine.report(E.Diag);
        synchronizeTopLevel();
      }
    }
    if (!isIdent("fun"))
      error(DiagCode::ParseExpectedProgramHeader,
            "expected 'fun' program header");
    advance();
    expect(Tok::LParen);
    std::vector<ParamPtr> Params;
    if (Tok_.Kind != Tok::RParen) {
      while (true) {
        std::string Name = expectIdent();
        expect(Tok::Colon);
        TypePtr Ty = parseType();
        Params.push_back(dsl::param(Name, Ty));
        if (Tok_.Kind == Tok::Comma) {
          advance();
          continue;
        }
        break;
      }
    }
    expect(Tok::RParen);
    expect(Tok::FatArrow);
    Scopes.push_back(Params);
    ExprPtr Body = parseExpr();
    Scopes.pop_back();
    if (Tok_.Kind != Tok::Eof)
      error(DiagCode::ParseTrailingInput, "trailing input after program body");
    ParsedProgram R;
    R.Program = dsl::lambda(std::move(Params), std::move(Body));
    R.SizeVars = SizeVars;
    return R;
  }

private:
  void advance() { Tok_ = Lex.next(); }

  /// Skips tokens (swallowing further lexer errors) until the next
  /// top-level `def`/`fun` keyword or end of input.
  void synchronizeTopLevel() {
    while (true) {
      try {
        if (Tok_.Kind == Tok::Eof || isIdent("def") || isIdent("fun"))
          return;
        advance();
      } catch (DiagnosticError &) {
        // The lexer always makes progress; drop cascading errors.
        Tok_ = Token();
        Tok_.Kind = Tok::Comma; // any non-sync token; next loop advances
      }
    }
  }

  [[noreturn]] void error(DiagCode Code, const std::string &Msg) {
    std::string Near =
        Tok_.Kind == Tok::Eof ? "end of input" : "'" + Tok_.Text + "'";
    Engine.fatal(Code, DiagLocation::atLine(Tok_.Line),
                 "IL parse error: " + Msg + " (near " + Near + ")");
  }

  bool isIdent(const char *S) const {
    return Tok_.Kind == Tok::Ident && Tok_.Text == S;
  }

  void expect(Tok K) {
    if (Tok_.Kind != K)
      error(DiagCode::ParseUnexpectedToken, "unexpected token");
    advance();
  }

  std::string expectIdent() {
    if (Tok_.Kind != Tok::Ident)
      error(DiagCode::ParseExpectedIdentifier, "expected identifier");
    std::string S = Tok_.Text;
    advance();
    return S;
  }

  //===--------------------------------------------------------------------===//
  // Types and sizes
  //===--------------------------------------------------------------------===//

  arith::Expr parseSizeAtom() {
    DepthGuard Guard(*this);
    if (Tok_.Kind == Tok::Number) {
      int64_t V = std::strtoll(Tok_.Text.c_str(), nullptr, 10);
      advance();
      return arith::cst(V);
    }
    if (Tok_.Kind == Tok::Ident) {
      std::string Name = Tok_.Text;
      advance();
      auto It = SizeVars.find(Name);
      if (It == SizeVars.end())
        It = SizeVars.emplace(Name, arith::sizeVar(Name)).first;
      return It->second;
    }
    if (Tok_.Kind == Tok::LParen) {
      advance();
      arith::Expr E = parseSizeExpr();
      expect(Tok::RParen);
      return E;
    }
    error(DiagCode::ParseExpectedSize, "expected size expression");
  }

  arith::Expr parseSizeFactor() {
    arith::Expr E = parseSizeAtom();
    while (Tok_.Kind == Tok::Star || Tok_.Kind == Tok::Slash ||
           Tok_.Kind == Tok::Percent) {
      Tok Op = Tok_.Kind;
      advance();
      arith::Expr R = parseSizeAtom();
      if (Op == Tok::Star)
        E = arith::mul(E, R);
      else if (Op == Tok::Slash)
        E = arith::intDiv(E, R);
      else
        E = arith::mod(E, R);
    }
    return E;
  }

  arith::Expr parseSizeExpr() {
    arith::Expr E = parseSizeFactor();
    while (Tok_.Kind == Tok::Plus || Tok_.Kind == Tok::Minus) {
      Tok Op = Tok_.Kind;
      advance();
      arith::Expr R = parseSizeFactor();
      E = Op == Tok::Plus ? arith::add(E, R) : arith::sub(E, R);
    }
    return E;
  }

  TypePtr parseType() {
    DepthGuard Guard(*this);
    if (Tok_.Kind == Tok::LBracket) {
      advance();
      TypePtr Elem = parseType();
      expect(Tok::RBracket);
      arith::Expr Size = parseSizeFactor();
      return arrayOf(Elem, Size);
    }
    if (Tok_.Kind == Tok::LParen) {
      advance();
      std::vector<TypePtr> Elems;
      Elems.push_back(parseType());
      while (Tok_.Kind == Tok::Comma) {
        advance();
        Elems.push_back(parseType());
      }
      expect(Tok::RParen);
      return tupleOf(std::move(Elems));
    }
    std::string Name = expectIdent();
    if (Name == "float")
      return float32();
    if (Name == "double")
      return float64();
    if (Name == "int")
      return int32();
    if (Name == "bool")
      return bool1();
    static const struct {
      const char *Name;
      ScalarKind K;
      unsigned W;
    } Vectors[] = {{"float2", ScalarKind::Float, 2},
                   {"float3", ScalarKind::Float, 3},
                   {"float4", ScalarKind::Float, 4},
                   {"float8", ScalarKind::Float, 8},
                   {"int2", ScalarKind::Int, 2},
                   {"int4", ScalarKind::Int, 4}};
    for (const auto &V : Vectors)
      if (Name == V.Name)
        return vectorOf(V.K, V.W);
    error(DiagCode::ParseUnknownType, "unknown type '" + Name + "'");
  }

  //===--------------------------------------------------------------------===//
  // User function definitions
  //===--------------------------------------------------------------------===//

  void parseUserFun() {
    advance(); // def
    std::string Name = expectIdent();
    expect(Tok::LParen);
    std::vector<std::string> ParamNames;
    std::vector<TypePtr> ParamTypes;
    if (Tok_.Kind != Tok::RParen) {
      while (true) {
        ParamNames.push_back(expectIdent());
        expect(Tok::Colon);
        ParamTypes.push_back(parseType());
        if (Tok_.Kind == Tok::Comma) {
          advance();
          continue;
        }
        break;
      }
    }
    expect(Tok::RParen);
    expect(Tok::Colon);
    TypePtr Ret = parseType();
    expect(Tok::Equals);
    if (Tok_.Kind != Tok::String)
      error(DiagCode::ParseExpectedString,
            "expected the C body of the user function as a string");
    std::string Body = Tok_.Text;
    advance();
    UserFuns[Name] = dsl::userFun(Name, std::move(ParamNames),
                                  std::move(ParamTypes), Ret, Body);
  }

  //===--------------------------------------------------------------------===//
  // Expressions and functions
  //===--------------------------------------------------------------------===//

  ParamPtr lookupParam(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It)
      for (const ParamPtr &P : *It)
        if (P->getName() == Name)
          return P;
    return nullptr;
  }

  ExprPtr parseExpr() {
    DepthGuard Guard(*this);
    // Literal?
    if (Tok_.Kind == Tok::Number || Tok_.Kind == Tok::Minus) {
      std::string Text;
      if (Tok_.Kind == Tok::Minus) {
        Text = "-";
        advance();
        if (Tok_.Kind != Tok::Number)
          error(DiagCode::ParseExpectedNumber,
                "expected a number after '-'");
      }
      Text += Tok_.Text;
      advance();
      bool IsFloat = Text.find('.') != std::string::npos ||
                     Text.find('f') != std::string::npos ||
                     Text.find('e') != std::string::npos;
      return dsl::lit(Text, IsFloat ? float32() : int32());
    }

    // Identifier: a parameter, or a function applied to arguments.
    if (Tok_.Kind == Tok::Ident || Tok_.Kind == Tok::Lambda) {
      // Try a function form first; if it is a bare parameter, return it.
      if (Tok_.Kind == Tok::Ident) {
        if (ParamPtr P = lookupParam(Tok_.Text)) {
          // Parameter unless it is being *called* — parameters are never
          // called in the IL, so a bare param reference is fine.
          advance();
          return P;
        }
      }
      FunDeclPtr F = parseFun();
      expect(Tok::LParen);
      std::vector<ExprPtr> Args;
      if (Tok_.Kind != Tok::RParen) {
        Args.push_back(parseExpr());
        while (Tok_.Kind == Tok::Comma) {
          advance();
          Args.push_back(parseExpr());
        }
      }
      expect(Tok::RParen);
      return dsl::call(std::move(F), std::move(Args));
    }
    if (Tok_.Kind == Tok::LParen) {
      advance();
      // A parenthesized lambda applied directly: (λ(p) -> body)(args) —
      // used for let-style bindings (e.g. naming a local-memory copy).
      if (Tok_.Kind == Tok::Lambda) {
        FunDeclPtr F = parseFun();
        expect(Tok::RParen);
        expect(Tok::LParen);
        std::vector<ExprPtr> Args;
        Args.push_back(parseExpr());
        while (Tok_.Kind == Tok::Comma) {
          advance();
          Args.push_back(parseExpr());
        }
        expect(Tok::RParen);
        return dsl::call(std::move(F), std::move(Args));
      }
      ExprPtr E = parseExpr();
      expect(Tok::RParen);
      return E;
    }
    error(DiagCode::ParseExpectedExpression, "expected expression");
  }

  /// Map name with optional trailing dimension digit: mapGlb0..2 etc.
  static bool splitDim(const std::string &Name, const std::string &Base,
                       unsigned &Dim) {
    if (Name == Base) {
      Dim = 0;
      return true;
    }
    if (Name.size() == Base.size() + 1 && Name.compare(0, Base.size(),
                                                       Base) == 0 &&
        Name.back() >= '0' && Name.back() <= '2') {
      Dim = static_cast<unsigned>(Name.back() - '0');
      return true;
    }
    return false;
  }

  FunDeclPtr parseFun() {
    DepthGuard Guard(*this);
    if (Tok_.Kind == Tok::Lambda) {
      advance();
      expect(Tok::LParen);
      std::vector<ParamPtr> Params;
      while (true) {
        Params.push_back(dsl::param(expectIdent()));
        if (Tok_.Kind == Tok::Comma) {
          advance();
          continue;
        }
        break;
      }
      expect(Tok::RParen);
      expect(Tok::Arrow);
      Scopes.push_back(Params);
      ExprPtr Body = parseExpr();
      Scopes.pop_back();
      return dsl::lambda(std::move(Params), std::move(Body));
    }

    std::string Name = expectIdent();
    unsigned Dim = 0;

    if (Name == "map")
      return dsl::map(parseNestedFun());
    if (Name == "mapSeq")
      return dsl::mapSeq(parseNestedFun());
    if (splitDim(Name, "mapGlb", Dim))
      return dsl::mapGlb(Dim, parseNestedFun());
    if (splitDim(Name, "mapWrg", Dim))
      return dsl::mapWrg(Dim, parseNestedFun());
    if (splitDim(Name, "mapLcl", Dim))
      return dsl::mapLcl(Dim, parseNestedFun());
    if (Name == "mapVec")
      return dsl::mapVec(parseNestedFun());
    if (Name == "reduceSeq")
      return dsl::reduceSeq(parseNestedFun());
    if (Name == "toGlobal")
      return dsl::toGlobal(parseNestedFun());
    if (Name == "toLocal")
      return dsl::toLocal(parseNestedFun());
    if (Name == "toPrivate")
      return dsl::toPrivate(parseNestedFun());
    if (Name == "iterate") {
      expect(Tok::LParen);
      if (Tok_.Kind != Tok::Number)
        error(DiagCode::ParseExpectedNumber,
              "iterate expects a constant count");
      int64_t N = std::strtoll(Tok_.Text.c_str(), nullptr, 10);
      if (N < 0 || N > MaxIterateCount)
        error(DiagCode::ParseBadCount,
              "iterate count " + Tok_.Text + " out of range [0, " +
                  std::to_string(MaxIterateCount) + "]");
      advance();
      expect(Tok::Comma);
      FunDeclPtr F = parseFun();
      expect(Tok::RParen);
      return dsl::iterate(N, std::move(F));
    }
    if (Name == "split") {
      expect(Tok::LParen);
      arith::Expr N = parseSizeExpr();
      expect(Tok::RParen);
      return dsl::split(N);
    }
    if (Name == "join")
      return dsl::join();
    if (Name == "id")
      return dsl::id();
    if (Name == "zip")
      return dsl::zip();
    if (Name == "zip3")
      return dsl::zip3();
    if (Name == "unzip")
      return dsl::unzip();
    if (Name == "transpose")
      return dsl::transpose();
    if (Name == "gatherIndices")
      return dsl::gatherIndices();
    if (Name == "asScalar")
      return dsl::asScalar();
    if (Name == "asVector") {
      expect(Tok::LParen);
      if (Tok_.Kind != Tok::Number)
        error(DiagCode::ParseExpectedNumber,
              "asVector expects a constant width");
      int64_t W = std::strtoll(Tok_.Text.c_str(), nullptr, 10);
      if (W < 1 || W > 16)
        error(DiagCode::ParseBadCount, "asVector width " + Tok_.Text +
                                           " out of range [1, 16]");
      advance();
      expect(Tok::RParen);
      return dsl::asVector(static_cast<unsigned>(W));
    }
    if (Name == "get") {
      expect(Tok::LParen);
      if (Tok_.Kind != Tok::Number)
        error(DiagCode::ParseExpectedNumber, "get expects a constant index");
      unsigned I = static_cast<unsigned>(
          std::strtoll(Tok_.Text.c_str(), nullptr, 10));
      advance();
      expect(Tok::RParen);
      return dsl::get(I);
    }
    if (Name == "slide") {
      expect(Tok::LParen);
      arith::Expr Size = parseSizeExpr();
      expect(Tok::Comma);
      arith::Expr Step = parseSizeExpr();
      expect(Tok::RParen);
      return dsl::slide(Size, Step);
    }
    if (Name == "gather" || Name == "scatter") {
      expect(Tok::LParen);
      IndexFun F = parseIndexFun();
      expect(Tok::RParen);
      return Name == "gather" ? dsl::gather(std::move(F))
                              : dsl::scatter(std::move(F));
    }

    auto It = UserFuns.find(Name);
    if (It != UserFuns.end())
      return It->second;
    error(DiagCode::ParseUnknownFunction,
          "unknown function '" + Name + "'");
  }

  /// A nested function argument in parentheses: mapSeq(f).
  FunDeclPtr parseNestedFun() {
    expect(Tok::LParen);
    FunDeclPtr F = parseFun();
    expect(Tok::RParen);
    return F;
  }

  IndexFun parseIndexFun() {
    std::string Name = expectIdent();
    if (Name == "reverse")
      return dsl::reverseIndex();
    if (Name == "transpose") {
      expect(Tok::LParen);
      arith::Expr R = parseSizeExpr();
      expect(Tok::Comma);
      arith::Expr C = parseSizeExpr();
      expect(Tok::RParen);
      return dsl::transposeIndex(R, C);
    }
    if (Name == "stride") {
      expect(Tok::LParen);
      arith::Expr S = parseSizeExpr();
      expect(Tok::RParen);
      return dsl::strideIndex(S);
    }
    error(DiagCode::ParseUnknownIndexFunction,
          "unknown index function '" + Name + "'");
  }
};

} // namespace

Expected<ParsedProgram> frontend::parseILChecked(const std::string &Source,
                                                 DiagnosticEngine &Engine) {
  unsigned ErrorsBefore = Engine.errorCount();
  try {
    ILParserImpl Impl(Source, Engine);
    ParsedProgram R = Impl.parse();
    if (Engine.errorCount() != ErrorsBefore)
      return {};
    return R;
  } catch (DiagnosticError &E) {
    if (!E.Recorded)
      Engine.report(E.Diag);
    return {};
  }
}

ParsedProgram frontend::parseIL(const std::string &Source) {
  DiagnosticEngine Engine;
  Expected<ParsedProgram> R = parseILChecked(Source, Engine);
  if (!R)
    fatalError(Engine.render());
  return *R;
}
