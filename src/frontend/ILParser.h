//===- ILParser.h - Text frontend for the Lift IL ---------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A text format for Lift IL programs and its parser. The syntax mirrors
/// the pretty printer's notation (and the paper's), with user functions
/// declared up front since their C bodies cannot be reconstructed from a
/// name:
///
/// \code
/// def add(a: float, b: float): float = "return a + b;"
/// def idF(x: float): float = "return x;"
///
/// fun(x: [float]N, y: [float]N) =>
///   join(mapWrg0(λ(chunk) ->
///     toGlobal(mapLcl0(mapSeq(idF)))(
///       split(1)(
///         join(mapLcl0(λ(two) ->
///           toLocal(mapSeq(idF))(reduceSeq(add)(0.0f, two)))(
///           split(2)(chunk)))))) (
///     split(128)(zip(x, y))))
/// \endcode
///
/// Size variables (upper-case identifiers in types) are created on demand
/// as arith size variables. Index functions for gather/scatter are
/// referenced by name: `reverse`, `transpose(R, C)`, `stride(S)`.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_FRONTEND_ILPARSER_H
#define LIFT_FRONTEND_ILPARSER_H

#include "ir/IR.h"
#include "support/Diagnostics.h"

#include <map>
#include <string>

namespace lift {
namespace frontend {

/// The result of parsing: the program plus the size variables it uses
/// (by name), so hosts can bind them at launch.
struct ParsedProgram {
  ir::LambdaPtr Program;
  std::map<std::string, std::shared_ptr<const arith::VarNode>> SizeVars;
};

/// Parses a Lift IL source text, recording structured diagnostics (error
/// code + line) into \p Engine. Never aborts on malformed input: errors in
/// `def` declarations recover to the next top-level declaration so several
/// errors are reported in one pass; returns failure if any error was
/// recorded. This is the boundary production services should use.
Expected<ParsedProgram> parseILChecked(const std::string &Source,
                                       DiagnosticEngine &Engine);

/// Convenience wrapper over parseILChecked that aborts with the rendered
/// diagnostics on malformed input (for hosts and tests that treat inputs
/// as trusted).
ParsedProgram parseIL(const std::string &Source);

} // namespace frontend
} // namespace lift

#endif // LIFT_FRONTEND_ILPARSER_H
