//===- Graph.cpp - Pipeline-graph parsing and validation ------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "graph/Graph.h"

#include "arith/Eval.h"
#include "frontend/ILParser.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

using namespace lift;
using namespace lift::graph;

const char *graph::roleName(BufferRole R) {
  switch (R) {
  case BufferRole::Input:
    return "input";
  case BufferRole::Output:
    return "output";
  case BufferRole::Scratch:
    return "scratch";
  }
  return "unknown";
}

const BufferDecl *Graph::findBuffer(const std::string &Name) const {
  for (const BufferDecl &B : Buffers)
    if (B.Name == Name)
      return &B;
  return nullptr;
}

const KernelDecl *Graph::findKernel(const std::string &Name) const {
  for (const KernelDecl &K : Kernels)
    if (K.Name == Name)
      return &K;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// The .liftg parser
//===----------------------------------------------------------------------===//

namespace {

/// Integer expressions over the graph's size constants: + - * / with the
/// usual precedence, parentheses, unary minus. Small enough to live here;
/// everything is evaluated at parse time (graph shapes are concrete).
class ExtentParser {
public:
  ExtentParser(const std::string &Text, const std::map<std::string, int64_t> &Env)
      : Text(Text), Env(Env) {}

  bool eval(int64_t &Out) {
    Pos = 0;
    Err.clear();
    Out = parseSum();
    skipWs();
    if (!Err.empty())
      return false;
    if (Pos != Text.size()) {
      Err = "unexpected character '" + std::string(1, Text[Pos]) +
            "' in expression '" + Text + "'";
      return false;
    }
    return true;
  }

  std::string error() const { return Err; }

private:
  const std::string &Text;
  const std::map<std::string, int64_t> &Env;
  size_t Pos = 0;
  std::string Err;

  void skipWs() {
    while (Pos < Text.size() && std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  void fail(const std::string &M) {
    if (Err.empty())
      Err = M + " in expression '" + Text + "'";
  }

  int64_t parseSum() {
    int64_t V = parseProduct();
    while (Err.empty()) {
      skipWs();
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-')) {
        char Op = Text[Pos++];
        int64_t R = parseProduct();
        V = Op == '+' ? V + R : V - R;
      } else {
        break;
      }
    }
    return V;
  }

  int64_t parseProduct() {
    int64_t V = parseAtom();
    while (Err.empty()) {
      skipWs();
      if (Pos < Text.size() && (Text[Pos] == '*' || Text[Pos] == '/')) {
        char Op = Text[Pos++];
        int64_t R = parseAtom();
        if (Op == '/') {
          if (R == 0) {
            fail("division by zero");
            return 0;
          }
          V = V / R;
        } else {
          V = V * R;
        }
      } else {
        break;
      }
    }
    return V;
  }

  int64_t parseAtom() {
    skipWs();
    if (Pos >= Text.size()) {
      fail("expected a value");
      return 0;
    }
    char C = Text[Pos];
    if (C == '(') {
      ++Pos;
      int64_t V = parseSum();
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ')') {
        fail("expected ')'");
        return 0;
      }
      ++Pos;
      return V;
    }
    if (C == '-') {
      ++Pos;
      return -parseAtom();
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      int64_t V = 0;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        V = V * 10 + (Text[Pos++] - '0');
      return V;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Name;
      while (Pos < Text.size() &&
             (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
              Text[Pos] == '_'))
        Name += Text[Pos++];
      auto It = Env.find(Name);
      if (It == Env.end()) {
        fail("unknown size constant '" + Name + "'");
        return 0;
      }
      return It->second;
    }
    fail("unexpected character '" + std::string(1, C) + "'");
    return 0;
  }
};

bool isIdent(const std::string &S) {
  if (S.empty())
    return false;
  if (!std::isalpha(static_cast<unsigned char>(S[0])) && S[0] != '_')
    return false;
  for (char C : S)
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_')
      return false;
  return true;
}

std::vector<std::string> splitWs(const std::string &Line) {
  std::vector<std::string> Toks;
  std::istringstream IS(Line);
  std::string T;
  while (IS >> T)
    Toks.push_back(T);
  return Toks;
}

std::vector<std::string> splitOn(const std::string &S, char Sep) {
  std::vector<std::string> Parts;
  std::string Cur;
  for (char C : S) {
    if (C == Sep) {
      Parts.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  Parts.push_back(Cur);
  return Parts;
}

class LiftgParser {
public:
  LiftgParser(const std::string &Source, DiagnosticEngine &Engine)
      : Engine(Engine) {
    std::string Cur;
    for (char C : Source) {
      if (C == '\n') {
        Lines.push_back(Cur);
        Cur.clear();
      } else if (C != '\r') {
        Cur += C;
      }
    }
    if (!Cur.empty())
      Lines.push_back(Cur);
  }

  Expected<Graph> parse() {
    unsigned Before = Engine.errorCount();
    bool SawHeader = false;
    // `<`, not `!=`: a block parser (kernel, iterate) that runs out of
    // input leaves I == Lines.size(), and the ++I must not wrap past it.
    for (size_t I = 0; I < Lines.size(); ++I) {
      unsigned LineNo = static_cast<unsigned>(I + 1);
      std::vector<std::string> Toks = splitWs(Lines[I]);
      if (Toks.empty() || Toks[0][0] == '#')
        continue;
      const std::string &Kw = Toks[0];
      if (!SawHeader) {
        if (Kw != "graph" || Toks.size() != 2 || !isIdent(Toks[1])) {
          error(LineNo, "expected 'graph NAME' as the first declaration");
          return {};
        }
        G.Name = Toks[1];
        SawHeader = true;
        continue;
      }
      if (Kw == "graph") {
        error(LineNo, "duplicate 'graph' header");
      } else if (Kw == "size") {
        parseSize(Toks, LineNo);
      } else if (Kw == "kernel") {
        parseKernel(Toks, LineNo, I);
      } else if (Kw == "buffer") {
        parseBuffer(Toks, LineNo);
      } else if (Kw == "stage") {
        StageDecl S;
        if (parseStage(Toks, LineNo, S)) {
          GraphNode N;
          N.K = GraphNode::Kind::Stage;
          N.Stage = std::move(S);
          G.Nodes.push_back(std::move(N));
        }
      } else if (Kw == "iterate") {
        parseIterate(Toks, LineNo, I);
      } else {
        error(LineNo, "unknown declaration '" + Kw + "'");
      }
      if (Engine.errorLimitReached())
        break;
    }
    if (!SawHeader && Engine.errorCount() == Before)
      Engine.error(DiagCode::GraphParse, DiagLocation::atLine(1),
                   "empty graph source: expected 'graph NAME'");
    if (Engine.errorCount() != Before)
      return {};
    return std::move(G);
  }

private:
  DiagnosticEngine &Engine;
  std::vector<std::string> Lines;
  Graph G;

  void error(unsigned Line, const std::string &Msg) {
    Engine.error(DiagCode::GraphParse, DiagLocation::atLine(Line), Msg);
  }

  bool evalExpr(const std::string &Text, unsigned Line, int64_t &Out) {
    ExtentParser P(Text, G.Consts);
    if (!P.eval(Out)) {
      error(Line, P.error());
      return false;
    }
    return true;
  }

  void parseSize(const std::vector<std::string> &Toks, unsigned Line) {
    if (Toks.size() < 3 || !isIdent(Toks[1])) {
      error(Line, "expected 'size NAME EXPR'");
      return;
    }
    if (G.Consts.count(Toks[1])) {
      Engine.error(DiagCode::GraphDuplicateName, DiagLocation::atLine(Line),
                   "size constant '" + Toks[1] + "' is already defined");
      return;
    }
    std::string Expr;
    for (size_t I = 2; I != Toks.size(); ++I)
      Expr += Toks[I];
    int64_t V = 0;
    if (!evalExpr(Expr, Line, V))
      return;
    G.Consts[Toks[1]] = V;
  }

  /// `kernel NAME {{{` ... raw IL lines ... `}}}` (sentinels on their own
  /// lines, so kernel text never needs escaping).
  void parseKernel(const std::vector<std::string> &Toks, unsigned Line,
                   size_t &I) {
    if (Toks.size() != 3 || !isIdent(Toks[1]) || Toks[2] != "{{{") {
      error(Line, "expected 'kernel NAME {{{'");
      return;
    }
    std::string Body;
    for (++I; I != Lines.size(); ++I) {
      std::vector<std::string> T = splitWs(Lines[I]);
      if (T.size() == 1 && T[0] == "}}}") {
        G.Kernels.push_back({Toks[1], std::move(Body), Line});
        return;
      }
      Body += Lines[I];
      Body += '\n';
    }
    error(Line, "kernel '" + Toks[1] + "' is missing its closing '}}}'");
  }

  /// `buffer NAME[EXPR] role [int] [init=random(S)|const(V)|ramp(A,S,M)]`
  void parseBuffer(const std::vector<std::string> &Toks, unsigned Line) {
    if (Toks.size() < 3) {
      error(Line, "expected 'buffer NAME[EXTENT] role [int] [init=...]'");
      return;
    }
    BufferDecl B;
    B.Line = Line;
    const std::string &NameTok = Toks[1];
    size_t LB = NameTok.find('[');
    if (LB == std::string::npos || NameTok.back() != ']') {
      error(Line, "expected 'NAME[EXTENT]' after 'buffer'");
      return;
    }
    B.Name = NameTok.substr(0, LB);
    if (!isIdent(B.Name)) {
      error(Line, "invalid buffer name '" + B.Name + "'");
      return;
    }
    std::string Extent = NameTok.substr(LB + 1, NameTok.size() - LB - 2);
    if (!evalExpr(Extent, Line, B.Extent))
      return;
    if (B.Extent <= 0) {
      error(Line, "buffer '" + B.Name + "' has non-positive extent " +
                      std::to_string(B.Extent));
      return;
    }
    const std::string &Role = Toks[2];
    if (Role == "input")
      B.Role = BufferRole::Input;
    else if (Role == "output")
      B.Role = BufferRole::Output;
    else if (Role == "scratch")
      B.Role = BufferRole::Scratch;
    else {
      error(Line, "unknown buffer role '" + Role +
                      "' (expected input, output or scratch)");
      return;
    }
    for (size_t I = 3; I != Toks.size(); ++I) {
      const std::string &T = Toks[I];
      if (T == "int") {
        B.Elem = ElemType::Int;
      } else if (T == "float") {
        B.Elem = ElemType::Float;
      } else if (T.compare(0, 5, "init=") == 0) {
        if (!parseInit(T.substr(5), Line, B.Init))
          return;
      } else {
        error(Line, "unknown buffer attribute '" + T + "'");
        return;
      }
    }
    G.Buffers.push_back(std::move(B));
  }

  bool parseInit(const std::string &Spec, unsigned Line, InitSpec &Init) {
    size_t LP = Spec.find('(');
    if (LP == std::string::npos || Spec.back() != ')') {
      error(Line, "expected 'init=KIND(args)'");
      return false;
    }
    std::string Kind = Spec.substr(0, LP);
    std::vector<std::string> Args =
        splitOn(Spec.substr(LP + 1, Spec.size() - LP - 2), ',');
    if (Kind == "random") {
      if (Args.size() != 1) {
        error(Line, "init=random expects one seed argument");
        return false;
      }
      int64_t Seed = 0;
      if (!evalExpr(Args[0], Line, Seed))
        return false;
      Init.K = InitSpec::Kind::Random;
      Init.Seed = static_cast<uint64_t>(Seed);
      return true;
    }
    if (Kind == "const") {
      if (Args.size() != 1) {
        error(Line, "init=const expects one value argument");
        return false;
      }
      char *End = nullptr;
      Init.K = InitSpec::Kind::Const;
      Init.Value = std::strtod(Args[0].c_str(), &End);
      if (End == Args[0].c_str() || (*End != '\0' && *End != 'f')) {
        error(Line, "invalid init=const value '" + Args[0] + "'");
        return false;
      }
      return true;
    }
    if (Kind == "ramp") {
      if (Args.size() != 3) {
        error(Line, "init=ramp expects (start, step, mod)");
        return false;
      }
      Init.K = InitSpec::Kind::Ramp;
      if (!evalExpr(Args[0], Line, Init.Start) ||
          !evalExpr(Args[1], Line, Init.Step) ||
          !evalExpr(Args[2], Line, Init.Mod))
        return false;
      if (Init.Mod < 0) {
        error(Line, "init=ramp modulus must be >= 0");
        return false;
      }
      return true;
    }
    error(Line, "unknown initializer '" + Kind +
                    "' (expected random, const or ramp)");
    return false;
  }

  /// `stage NAME kernel=K in=a,b out=c global=G[,G,G] local=L[,L,L] N=EXPR...`
  bool parseStage(const std::vector<std::string> &Toks, unsigned Line,
                  StageDecl &S) {
    if (Toks.size() < 2 || !isIdent(Toks[1])) {
      error(Line, "expected 'stage NAME key=value...'");
      return false;
    }
    S.Name = Toks[1];
    S.Line = Line;
    for (size_t I = 2; I != Toks.size(); ++I) {
      const std::string &T = Toks[I];
      size_t Eq = T.find('=');
      if (Eq == std::string::npos || Eq == 0) {
        error(Line, "expected 'key=value', got '" + T + "'");
        return false;
      }
      std::string Key = T.substr(0, Eq), Val = T.substr(Eq + 1);
      if (Key == "kernel") {
        S.Kernel = Val;
      } else if (Key == "in" || Key == "out") {
        std::vector<std::string> &Dst = Key == "in" ? S.Ins : S.Outs;
        for (const std::string &Name : splitOn(Val, ',')) {
          if (!isIdent(Name)) {
            error(Line, "invalid buffer name '" + Name + "' in " + Key + "=");
            return false;
          }
          Dst.push_back(Name);
        }
      } else if (Key == "global" || Key == "local") {
        std::array<int64_t, 3> &Dst = Key == "global" ? S.Global : S.Local;
        std::vector<std::string> Parts = splitOn(Val, ',');
        if (Parts.empty() || Parts.size() > 3) {
          error(Line, Key + "= expects 1 to 3 comma-separated sizes");
          return false;
        }
        Dst = {1, 1, 1};
        for (size_t D = 0; D != Parts.size(); ++D)
          if (!evalExpr(Parts[D], Line, Dst[D]))
            return false;
      } else if (isIdent(Key)) {
        int64_t V = 0;
        if (!evalExpr(Val, Line, V))
          return false;
        S.Sizes[Key] = V;
      } else {
        error(Line, "invalid stage attribute '" + T + "'");
        return false;
      }
    }
    if (S.Kernel.empty()) {
      error(Line, "stage '" + S.Name + "' is missing kernel=");
      return false;
    }
    if (S.Outs.empty()) {
      error(Line, "stage '" + S.Name + "' is missing out=");
      return false;
    }
    return true;
  }

  /// `iterate NAME max=M eps=E compare=a,b [swap=x:y,...] {` body `}`
  void parseIterate(const std::vector<std::string> &Toks, unsigned Line,
                    size_t &I) {
    if (Toks.size() < 3 || !isIdent(Toks[1]) || Toks.back() != "{") {
      error(Line, "expected 'iterate NAME key=value... {'");
      return;
    }
    IterateDecl It;
    It.Name = Toks[1];
    It.Line = Line;
    for (size_t T = 2; T + 1 != Toks.size(); ++T) {
      const std::string &Tok = Toks[T];
      size_t Eq = Tok.find('=');
      if (Eq == std::string::npos || Eq == 0) {
        error(Line, "expected 'key=value', got '" + Tok + "'");
        return;
      }
      std::string Key = Tok.substr(0, Eq), Val = Tok.substr(Eq + 1);
      if (Key == "max") {
        int64_t V = 0;
        if (!evalExpr(Val, Line, V))
          return;
        if (V < 1) {
          error(Line, "iterate max= must be >= 1");
          return;
        }
        It.MaxTrips = static_cast<uint64_t>(V);
      } else if (Key == "eps") {
        char *End = nullptr;
        It.Eps = std::strtod(Val.c_str(), &End);
        if (End == Val.c_str() || *End != '\0' || It.Eps < 0) {
          error(Line, "invalid iterate eps= value '" + Val + "'");
          return;
        }
      } else if (Key == "compare") {
        std::vector<std::string> Parts = splitOn(Val, ',');
        if (Parts.size() != 2 || !isIdent(Parts[0]) || !isIdent(Parts[1])) {
          error(Line, "compare= expects two buffer names");
          return;
        }
        It.CompareA = Parts[0];
        It.CompareB = Parts[1];
      } else if (Key == "swap") {
        for (const std::string &Pair : splitOn(Val, ',')) {
          std::vector<std::string> AB = splitOn(Pair, ':');
          if (AB.size() != 2 || !isIdent(AB[0]) || !isIdent(AB[1])) {
            error(Line, "swap= expects 'a:b' buffer pairs");
            return;
          }
          It.Swaps.emplace_back(AB[0], AB[1]);
        }
      } else {
        error(Line, "unknown iterate attribute '" + Tok + "'");
        return;
      }
    }
    if (It.CompareA.empty()) {
      error(Line, "iterate '" + It.Name + "' is missing compare=");
      return;
    }
    bool Closed = false;
    for (++I; I != Lines.size(); ++I) {
      unsigned BodyLine = static_cast<unsigned>(I + 1);
      std::vector<std::string> T = splitWs(Lines[I]);
      if (T.empty() || T[0][0] == '#')
        continue;
      if (T.size() == 1 && T[0] == "}") {
        Closed = true;
        break;
      }
      if (T[0] != "stage") {
        error(BodyLine, "only stage declarations may appear in an iterate "
                        "body");
        return;
      }
      StageDecl S;
      if (!parseStage(T, BodyLine, S))
        return;
      It.Body.push_back(std::move(S));
    }
    if (!Closed) {
      error(Line, "iterate '" + It.Name + "' is missing its closing '}'");
      return;
    }
    if (It.Body.empty()) {
      error(Line, "iterate '" + It.Name + "' has an empty body");
      return;
    }
    GraphNode N;
    N.K = GraphNode::Kind::Iterate;
    N.Iterate = std::move(It);
    G.Nodes.push_back(std::move(N));
  }
};

} // namespace

Expected<Graph> graph::parseGraphChecked(const std::string &Source,
                                         DiagnosticEngine &Engine) {
  return LiftgParser(Source, Engine).parse();
}

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

namespace {

class Validator {
public:
  Validator(const Graph &G, DiagnosticEngine &Engine)
      : G(G), Engine(Engine) {}

  Expected<ValidatedGraph> run() {
    unsigned Before = Engine.errorCount();
    VG.G = G;
    checkNames();
    buildPlans();
    if (Engine.errorCount() != Before)
      return {}; // Shape errors would cascade below.
    checkDataflow();
    if (Engine.errorCount() != Before)
      return {};
    return std::move(VG);
  }

private:
  const Graph &G;
  DiagnosticEngine &Engine;
  ValidatedGraph VG;

  DiagLocation at(unsigned Line, const std::string &Ctx) {
    return DiagLocation::at(Line, "graph '" + G.Name + "'" +
                                      (Ctx.empty() ? "" : ", " + Ctx));
  }

  void checkNames() {
    std::set<std::string> Seen;
    for (const KernelDecl &K : G.Kernels)
      if (!Seen.insert("k:" + K.Name).second)
        Engine.error(DiagCode::GraphDuplicateName, at(K.Line, ""),
                     "kernel '" + K.Name + "' is declared twice");
    for (const BufferDecl &B : G.Buffers)
      if (!Seen.insert("b:" + B.Name).second)
        Engine.error(DiagCode::GraphDuplicateName, at(B.Line, ""),
                     "buffer '" + B.Name + "' is declared twice");
    auto CheckStageName = [&](const StageDecl &S) {
      if (!Seen.insert("s:" + S.Name).second)
        Engine.error(DiagCode::GraphDuplicateName, at(S.Line, ""),
                     "stage '" + S.Name + "' is declared twice");
    };
    for (const GraphNode &N : G.Nodes) {
      if (N.K == GraphNode::Kind::Stage) {
        CheckStageName(N.Stage);
      } else {
        if (!Seen.insert("s:" + N.Iterate.Name).second)
          Engine.error(DiagCode::GraphDuplicateName, at(N.Iterate.Line, ""),
                       "iterate '" + N.Iterate.Name + "' collides with "
                       "another stage or iterate name");
        for (const StageDecl &S : N.Iterate.Body)
          CheckStageName(S);
      }
    }
  }

  void buildPlans() {
    for (const GraphNode &N : G.Nodes) {
      NodePlan P;
      P.K = N.K;
      if (N.K == GraphNode::Kind::Stage) {
        P.Name = N.Stage.Name;
        StagePlan SP;
        if (planStage(N.Stage, "stage '" + N.Stage.Name + "'", SP))
          P.Stages.push_back(std::move(SP));
        for (const std::string &B : N.Stage.Ins)
          P.Reads.insert(B);
        for (const std::string &B : N.Stage.Outs)
          P.Writes.insert(B);
      } else {
        P.Name = N.Iterate.Name;
        P.Iter = N.Iterate;
        checkIterate(N.Iterate);
        for (const StageDecl &S : N.Iterate.Body) {
          StagePlan SP;
          if (planStage(S, "iterate '" + N.Iterate.Name + "' stage '" +
                               S.Name + "'",
                        SP))
            P.Stages.push_back(std::move(SP));
          for (const std::string &B : S.Ins)
            P.Reads.insert(B);
          for (const std::string &B : S.Outs)
            P.Writes.insert(B);
        }
        // The convergence predicate and the trip swaps read host-side.
        if (!N.Iterate.CompareA.empty())
          P.Reads.insert(N.Iterate.CompareA);
        if (!N.Iterate.CompareB.empty())
          P.Reads.insert(N.Iterate.CompareB);
      }
      VG.Nodes.push_back(std::move(P));
    }
  }

  /// Compiles the stage's kernel at its NDRange and resolves the buffer
  /// bound to each non-size kernel parameter.
  bool planStage(const StageDecl &S, const std::string &Path, StagePlan &SP) {
    SP.Decl = S;
    SP.Path = Path;
    SP.Sizes = S.Sizes;

    const KernelDecl *K = G.findKernel(S.Kernel);
    if (!K) {
      Engine.error(DiagCode::GraphUnknownName, at(S.Line, Path),
                   "unknown kernel '" + S.Kernel + "'");
      return false;
    }
    for (unsigned D = 0; D != 3; ++D) {
      if (S.Global[D] <= 0 || S.Local[D] <= 0 ||
          S.Global[D] % S.Local[D] != 0) {
        Engine.error(DiagCode::GraphShapeMismatch, at(S.Line, Path),
                     "invalid NDRange: global=" + std::to_string(S.Global[D]) +
                         " local=" + std::to_string(S.Local[D]) +
                         " in dimension " + std::to_string(D));
        return false;
      }
    }

    DiagnosticEngine Sub;
    Expected<frontend::ParsedProgram> Parsed =
        frontend::parseILChecked(K->Source, Sub);
    if (!Parsed) {
      kernelInvalid(S, Path, K->Name, Sub);
      return false;
    }

    codegen::CompilerOptions Opts;
    Opts.GlobalSize = S.Global;
    Opts.LocalSize = S.Local;
    Opts.KernelName = "lift_" + S.Name;
    Expected<codegen::CompiledKernel> Compiled =
        codegen::compileChecked(Parsed->Program, Opts, Sub);
    if (!Compiled) {
      kernelInvalid(S, Path, K->Name, Sub);
      return false;
    }
    SP.Kernel =
        std::make_shared<codegen::CompiledKernel>(std::move(*Compiled));

    // Every size variable the kernel uses must be bound by the stage.
    std::map<unsigned, int64_t> SizeEnv;
    bool Ok = true;
    for (const auto &[Name, Var] : Parsed->SizeVars) {
      auto It = S.Sizes.find(Name);
      if (It == S.Sizes.end()) {
        Engine.error(DiagCode::GraphShapeMismatch, at(S.Line, Path),
                     "size variable '" + Name + "' of kernel '" + K->Name +
                         "' is not bound by the stage",
                     {"add '" + Name + "=VALUE' to the stage declaration"});
        Ok = false;
        continue;
      }
      SizeEnv[Var->getId()] = It->second;
    }
    if (!Ok)
      return false;

    arith::EvalContext SizeCtx;
    SizeCtx.VarValue = [&](const arith::VarNode &V) -> int64_t {
      auto It = SizeEnv.find(V.getId());
      if (It == SizeEnv.end())
        throwDiag(DiagCode::GraphShapeMismatch, DiagLocation(),
                  "unbound size variable " + V.getName());
      return It->second;
    };

    // Bind Ins/Outs, in order, against the kernel's buffer parameters and
    // check each extent against the buffer declaration.
    size_t NextIn = 0, NextOut = 0;
    for (const codegen::KernelParamInfo &Param : SP.Kernel->Params) {
      if (Param.IsSizeParam || !Param.Store || !Param.Store->NumElements)
        continue;
      const std::vector<std::string> &Pool = Param.IsOutput ? S.Outs : S.Ins;
      size_t &Next = Param.IsOutput ? NextOut : NextIn;
      if (Next >= Pool.size()) {
        Engine.error(DiagCode::GraphShapeMismatch, at(S.Line, Path),
                     "kernel '" + K->Name + "' expects more " +
                         (Param.IsOutput ? std::string("out=")
                                         : std::string("in=")) +
                         " buffers than the stage provides");
        return false;
      }
      const std::string &BufName = Pool[Next++];
      const BufferDecl *B = G.findBuffer(BufName);
      if (!B) {
        Engine.error(DiagCode::GraphUnknownName, at(S.Line, Path),
                     "unknown buffer '" + BufName + "'");
        return false;
      }
      int64_t Want = 0;
      try {
        Want = arith::evaluate(Param.Store->NumElements, SizeCtx);
      } catch (DiagnosticError &E) {
        Engine.error(DiagCode::GraphShapeMismatch, at(S.Line, Path),
                     E.Diag.Message);
        return false;
      }
      if (Want != B->Extent) {
        Engine.error(
            DiagCode::GraphShapeMismatch, at(S.Line, Path),
            "buffer '" + BufName + "' has extent " +
                std::to_string(B->Extent) + " but kernel '" + K->Name +
                "' parameter expects " + std::to_string(Want) + " elements",
            {"producer and consumer shapes must agree exactly"});
        return false;
      }
      SP.Args.push_back(BufName);
      SP.ArgIsOutput.push_back(Param.IsOutput);
    }
    if (NextIn != S.Ins.size() || NextOut != S.Outs.size()) {
      Engine.error(DiagCode::GraphShapeMismatch, at(S.Line, Path),
                   "stage binds " + std::to_string(S.Ins.size()) + " in / " +
                       std::to_string(S.Outs.size()) +
                       " out buffers but kernel '" + K->Name + "' takes " +
                       std::to_string(NextIn) + " / " +
                       std::to_string(NextOut));
      return false;
    }
    return true;
  }

  void kernelInvalid(const StageDecl &S, const std::string &Path,
                     const std::string &Kernel, const DiagnosticEngine &Sub) {
    std::vector<std::string> Notes;
    for (const Diagnostic &D : Sub.diagnostics())
      if (D.Severity == DiagSeverity::Error) {
        Notes.push_back(D.render());
        break;
      }
    Engine.error(DiagCode::GraphKernelInvalid, at(S.Line, Path),
                 "kernel '" + Kernel + "' failed to compile",
                 std::move(Notes));
  }

  void checkIterate(const IterateDecl &It) {
    auto CheckPair = [&](const std::string &A, const std::string &B,
                         const char *What) {
      const BufferDecl *BA = G.findBuffer(A);
      const BufferDecl *BB = G.findBuffer(B);
      if (!BA || !BB) {
        Engine.error(DiagCode::GraphUnknownName, at(It.Line, "iterate '" +
                                                                It.Name + "'"),
                     std::string("unknown buffer '") + (BA ? B : A) +
                         "' in " + What + "=");
        return;
      }
      if (BA->Extent != BB->Extent || BA->Elem != BB->Elem)
        Engine.error(DiagCode::GraphShapeMismatch,
                     at(It.Line, "iterate '" + It.Name + "'"),
                     std::string(What) + "= buffers '" + A + "' and '" + B +
                         "' must have identical extent and element type");
    };
    CheckPair(It.CompareA, It.CompareB, "compare");
    for (const auto &[A, B] : It.Swaps)
      CheckPair(A, B, "swap");
  }

  void checkDataflow() {
    // Single writer per buffer; remember who produces what.
    std::map<std::string, size_t> WriterNode;
    for (size_t I = 0; I != VG.Nodes.size(); ++I) {
      const NodePlan &N = VG.Nodes[I];
      for (const StagePlan &SP : N.Stages)
        for (const std::string &B : SP.Decl.Outs) {
          const BufferDecl *D = G.findBuffer(B);
          if (D && D->Role == BufferRole::Input) {
            Engine.error(DiagCode::GraphMultipleWriters,
                         at(SP.Decl.Line, SP.Path),
                         "graph input '" + B + "' cannot be written",
                         {"declare it scratch or output instead"});
            continue;
          }
          auto [It, Inserted] = WriterNode.emplace(B, I);
          if (!Inserted && It->second != I) {
            Engine.error(DiagCode::GraphMultipleWriters,
                         at(SP.Decl.Line, SP.Path),
                         "buffer '" + B + "' already has a producer ('" +
                             VG.ProducerOf[B] + "')");
          } else if (!Inserted) {
            Engine.error(DiagCode::GraphMultipleWriters,
                         at(SP.Decl.Line, SP.Path),
                         "buffer '" + B + "' is written twice within node '" +
                             N.Name + "'");
          } else {
            VG.ProducerOf[B] = SP.Path;
          }
        }
    }
    for (const BufferDecl &B : G.Buffers)
      if (B.Role == BufferRole::Input)
        VG.ProducerOf[B.Name] = "";

    // Every consumed buffer has a producer or is a graph input; every
    // graph output has a producer.
    for (const NodePlan &N : VG.Nodes)
      for (const std::string &B : N.Reads) {
        const BufferDecl *D = G.findBuffer(B);
        if (!D)
          continue; // planStage already reported the unknown name.
        if (D->Role != BufferRole::Input && !WriterNode.count(B))
          Engine.error(DiagCode::GraphUnproducedBuffer, at(D->Line, ""),
                       "buffer '" + B + "' is consumed by node '" + N.Name +
                           "' but has no producer and is not a graph input");
      }
    for (const BufferDecl &B : G.Buffers)
      if (B.Role == BufferRole::Output && !WriterNode.count(B.Name))
        Engine.error(DiagCode::GraphUnproducedBuffer, at(B.Line, ""),
                     "graph output '" + B.Name + "' has no producer");

    // Dependency edges; a plain stage reading its own output is an
    // in-place hazard (iterate nodes carry state across trips by design).
    VG.Deps.assign(VG.Nodes.size(), {});
    for (size_t I = 0; I != VG.Nodes.size(); ++I) {
      const NodePlan &N = VG.Nodes[I];
      for (const std::string &B : N.Reads) {
        auto It = WriterNode.find(B);
        if (It == WriterNode.end())
          continue;
        if (It->second == I) {
          if (N.K == GraphNode::Kind::Stage)
            Engine.error(DiagCode::GraphCycle, at(N.Stages[0].Decl.Line,
                                                  N.Stages[0].Path),
                         "stage reads and writes buffer '" + B +
                             "' in one launch",
                         {"in-place update hazards are rejected; use an "
                          "iterate node with swap= for carried state"});
          continue;
        }
        VG.Deps[I].insert(It->second);
      }
    }

    // Kahn's algorithm with ties broken by declaration index: the
    // canonical schedule is identical for every run of the same graph.
    std::vector<size_t> Indegree(VG.Nodes.size(), 0);
    for (size_t I = 0; I != VG.Nodes.size(); ++I)
      Indegree[I] = VG.Deps[I].size();
    std::vector<char> Done(VG.Nodes.size(), 0);
    while (VG.Topo.size() != VG.Nodes.size()) {
      size_t Next = VG.Nodes.size();
      for (size_t I = 0; I != VG.Nodes.size(); ++I)
        if (!Done[I] && Indegree[I] == 0) {
          Next = I;
          break;
        }
      if (Next == VG.Nodes.size()) {
        for (size_t I = 0; I != VG.Nodes.size(); ++I)
          if (!Done[I]) {
            Engine.error(DiagCode::GraphCycle, at(0, ""),
                         "stage dependencies form a cycle through node '" +
                             VG.Nodes[I].Name + "'");
            break;
          }
        return;
      }
      Done[Next] = 1;
      VG.Topo.push_back(Next);
      for (size_t I = 0; I != VG.Nodes.size(); ++I)
        if (!Done[I] && VG.Deps[I].count(Next))
          --Indegree[I];
    }
  }
};

} // namespace

Expected<ValidatedGraph> graph::validateGraph(const Graph &G,
                                              DiagnosticEngine &Engine) {
  try {
    return Validator(G, Engine).run();
  } catch (DiagnosticError &E) {
    if (!E.Recorded)
      Engine.report(E.Diag);
    return {};
  }
}
