//===- Graph.h - Pipeline graphs of compiled kernels ------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pipeline-graph IR: a program as a DAG of kernels connected by named
/// buffers. A graph is built either from the textual `.liftg` format
/// (\c parseGraphChecked) or through the \c GraphBuilder C++ DSL, then
/// validated (\c validateGraph) into a \c ValidatedGraph whose stages carry
/// compiled kernels and resolved argument bindings, ready for the executor
/// (GraphExec.h). Validation enforces acyclicity, single-writer buffers,
/// shape agreement between producer output and consumer input, and that
/// every consumed buffer has a producer or is a graph input — each failure
/// is a stable E08xx diagnostic (docs/PIPELINES.md, docs/DIAGNOSTICS.md).
///
/// The `.liftg` format is line-oriented:
///
/// \code
/// graph stencil_chain
/// size N 1024
///
/// kernel blur {{{
/// def add(a: float, b: float): float = "return a + b;"
/// fun(x: [float]N) => ...
/// }}}
///
/// buffer src[N] input
/// buffer mid[N-2] scratch
/// buffer dst[N-2] output
///
/// stage s1 kernel=blur in=src out=mid global=64 local=16 N=1024
/// stage s2 kernel=scale in=mid out=dst global=64 local=16 N=1022
///
/// iterate solve max=50 eps=1e-6 compare=x,xn swap=x:xn {
///   stage step kernel=jac in=b,x out=xn global=64 local=16 N=1024
/// }
/// \endcode
///
/// Buffer extents and `size` bindings are integer expressions over the
/// graph's `size` constants (`+ - * /` with the usual precedence).
/// Buffer declarations accept an element type (`int` after the role) and
/// an initializer: `init=random(seed)` (the default for float inputs),
/// `init=const(v)`, or `init=ramp(start,step,mod)` (mod 0 = none) for
/// host-computed index tables (the ring-Jacobi neighbour maps).
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_GRAPH_GRAPH_H
#define LIFT_GRAPH_GRAPH_H

#include "codegen/Compiler.h"
#include "support/Diagnostics.h"

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace lift {
namespace graph {

enum class BufferRole { Input, Output, Scratch };
enum class ElemType { Float, Int };

const char *roleName(BufferRole R);

/// How a graph input is filled by the executor when the host did not bind
/// data for it explicitly.
struct InitSpec {
  enum class Kind { Random, Const, Ramp };
  Kind K = Kind::Random;
  uint64_t Seed = 0;  ///< Random; 0 = derived from the buffer's position.
  double Value = 0;   ///< Const.
  int64_t Start = 0;  ///< Ramp: Start + Step * i, optionally mod Mod.
  int64_t Step = 1;
  int64_t Mod = 0;
};

struct BufferDecl {
  std::string Name;
  int64_t Extent = 0;
  BufferRole Role = BufferRole::Scratch;
  ElemType Elem = ElemType::Float;
  InitSpec Init;
  unsigned Line = 0;
};

/// A kernel declaration: a name and an embedded Lift IL program. Each
/// stage referencing it compiles its own specialization (stages carry
/// their own NDRange, and compiled kernels hold per-launch scratch).
struct KernelDecl {
  std::string Name;
  std::string Source;
  unsigned Line = 0;
};

struct StageDecl {
  std::string Name;
  std::string Kernel;
  /// Buffer names bound, in order, to the kernel's non-output buffer
  /// parameters; Outs bind to the output parameters.
  std::vector<std::string> Ins;
  std::vector<std::string> Outs;
  std::array<int64_t, 3> Global = {1, 1, 1};
  std::array<int64_t, 3> Local = {1, 1, 1};
  /// Size-variable bindings for this stage's launches (and for the
  /// shape validation of its buffer arguments).
  std::map<std::string, int64_t> Sizes;
  unsigned Line = 0;
};

/// A bounded convergence loop: the body stages run serially each trip;
/// after every trip the executor evaluates max|CompareA[i] - CompareB[i]|
/// host-side and stops once it is <= Eps. Between trips each Swaps pair
/// exchanges buffer contents (the double-buffering idiom of Jacobi and
/// k-means). Exhausting MaxTrips without converging is the E0812 warning.
struct IterateDecl {
  std::string Name;
  uint64_t MaxTrips = 1;
  double Eps = 0;
  std::string CompareA, CompareB;
  std::vector<std::pair<std::string, std::string>> Swaps;
  std::vector<StageDecl> Body;
  unsigned Line = 0;
};

/// A top-level graph node: a single stage or an iterate loop.
struct GraphNode {
  enum class Kind { Stage, Iterate };
  Kind K = Kind::Stage;
  StageDecl Stage;
  IterateDecl Iterate;
};

struct Graph {
  std::string Name;
  std::map<std::string, int64_t> Consts;
  std::vector<KernelDecl> Kernels;
  std::vector<BufferDecl> Buffers;
  std::vector<GraphNode> Nodes;

  const BufferDecl *findBuffer(const std::string &Name) const;
  const KernelDecl *findKernel(const std::string &Name) const;
};

/// Parses `.liftg` text, recording structured diagnostics (E0801/E0802/
/// E0803 with line numbers) into \p Engine. Never aborts on malformed
/// input.
Expected<Graph> parseGraphChecked(const std::string &Source,
                                  DiagnosticEngine &Engine);

/// Fluent C++ construction of a Graph, in the spirit of ir/DSL.h. The
/// builder performs no checking — validateGraph is the single validation
/// point for both front ends.
class GraphBuilder {
public:
  explicit GraphBuilder(std::string Name) { G.Name = std::move(Name); }

  GraphBuilder &constant(const std::string &Name, int64_t V) {
    G.Consts[Name] = V;
    return *this;
  }
  GraphBuilder &kernel(std::string Name, std::string IlSource) {
    G.Kernels.push_back({std::move(Name), std::move(IlSource), 0});
    return *this;
  }
  GraphBuilder &buffer(BufferDecl B) {
    G.Buffers.push_back(std::move(B));
    return *this;
  }
  GraphBuilder &input(std::string Name, int64_t Extent, InitSpec Init = {},
                      ElemType Elem = ElemType::Float) {
    return buffer({std::move(Name), Extent, BufferRole::Input, Elem, Init, 0});
  }
  GraphBuilder &output(std::string Name, int64_t Extent,
                       ElemType Elem = ElemType::Float) {
    return buffer(
        {std::move(Name), Extent, BufferRole::Output, Elem, InitSpec(), 0});
  }
  GraphBuilder &scratch(std::string Name, int64_t Extent,
                        ElemType Elem = ElemType::Float) {
    return buffer(
        {std::move(Name), Extent, BufferRole::Scratch, Elem, InitSpec(), 0});
  }
  GraphBuilder &stage(StageDecl S) {
    GraphNode N;
    N.K = GraphNode::Kind::Stage;
    N.Stage = std::move(S);
    G.Nodes.push_back(std::move(N));
    return *this;
  }
  GraphBuilder &iterate(IterateDecl I) {
    GraphNode N;
    N.K = GraphNode::Kind::Iterate;
    N.Iterate = std::move(I);
    G.Nodes.push_back(std::move(N));
    return *this;
  }

  Graph build() { return std::move(G); }

private:
  Graph G;
};

/// One stage ready to launch: its compiled kernel, the buffer name bound
/// to each non-size kernel parameter (in parameter order), and the full
/// size environment.
struct StagePlan {
  StageDecl Decl;
  /// Diagnostic path: "stage 's1'" or "iterate 'solve' stage 'step'".
  std::string Path;
  std::shared_ptr<codegen::CompiledKernel> Kernel;
  std::vector<std::string> Args;
  std::map<std::string, int64_t> Sizes;
  /// True for each Args slot bound to an output parameter.
  std::vector<bool> ArgIsOutput;
};

struct NodePlan {
  GraphNode::Kind K = GraphNode::Kind::Stage;
  std::string Name;
  /// The single stage, or the iterate body in declaration order.
  std::vector<StagePlan> Stages;
  IterateDecl Iter; ///< Valid when K == Iterate.
  std::set<std::string> Reads, Writes;
};

/// The validated, compiled form the executor consumes.
struct ValidatedGraph {
  Graph G;
  std::vector<NodePlan> Nodes; ///< Declaration order.
  /// Canonical schedule: a topological order with ties broken by
  /// declaration index, identical for every run of the same graph.
  std::vector<size_t> Topo;
  /// Buffer name -> path of the stage that writes it ("" for inputs).
  std::map<std::string, std::string> ProducerOf;
  /// Node index -> indices of the nodes it depends on.
  std::vector<std::set<size_t>> Deps;
};

/// Compiles every stage kernel at its stage's NDRange and checks the
/// graph's structural invariants. All E08xx validation failures are
/// recorded into \p Engine (several may be reported in one pass).
Expected<ValidatedGraph> validateGraph(const Graph &G,
                                       DiagnosticEngine &Engine);

} // namespace graph
} // namespace lift

#endif // LIFT_GRAPH_GRAPH_H
