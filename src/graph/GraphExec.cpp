//===- GraphExec.cpp - Pipeline-graph execution ---------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "graph/GraphExec.h"

#include "ocl/FaultInject.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>

using namespace lift;
using namespace lift::graph;

namespace {

using Clock = std::chrono::steady_clock;

/// Deterministic input data, same generator as the service layer: every
/// run of a graph sees the same pseudo-random inputs for a fixed seed.
std::vector<float> randomFloats(size_t N, uint64_t Seed) {
  std::vector<float> R(N);
  uint64_t S = Seed * 6364136223846793005ULL + 1442695040888963407ULL;
  for (size_t I = 0; I != N; ++I) {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    R[I] = static_cast<float>(static_cast<int64_t>(S % 2000) - 1000) / 1000.f;
  }
  return R;
}

/// One node's execution record: its own engine (merged in canonical order
/// after the wave joins, so concurrent stages report deterministically)
/// and its stage/iterate statistics.
struct NodeRun {
  size_t Idx = 0;
  DiagnosticEngine Eng{64};
  std::vector<StageRunInfo> Stages;
  std::vector<IterateRunInfo> Iters;
  bool Ok = true;
};

class Runner {
public:
  Runner(const ValidatedGraph &VG, const GraphRunOptions &Opts,
         DiagnosticEngine &Engine)
      : VG(VG), Opts(Opts), Engine(Engine) {}

  Expected<GraphRunResult> run() {
    Limits = ocl::ExecLimits::withEnvDefaults(Opts.Limits);
    HasStepBudget = Limits.MaxSteps != 0;
    StepsLeft.store(Limits.MaxSteps, std::memory_order_relaxed);
    Start = Clock::now();
    NodeFailed.assign(VG.Nodes.size(), 0);

    for (const NodePlan &N : VG.Nodes)
      for (const std::string &B : N.Reads)
        ++UsesLeft[B];

    ocl::resetHostBytesHighWater();
    if (!materializeUpfront())
      return {};

    std::vector<char> Done(VG.Nodes.size(), 0);
    size_t DoneCount = 0;
    while (DoneCount != VG.Nodes.size()) {
      if (Failed && !Opts.KeepGoing)
        break;
      std::vector<size_t> Wave = nextWave(Done);
      if (Wave.empty())
        break;

      // Prep (serial, canonical order): dependency/poison-producer checks
      // and buffer allocation. Keeps the allocator, the recycle pool and
      // the fault counters single-threaded.
      std::vector<std::unique_ptr<NodeRun>> Runs;
      for (size_t Idx : Wave)
        Runs.push_back(prep(Idx));

      // Exec: independent stages launch concurrently.
      if (Runs.size() == 1) {
        exec(*Runs[0]);
      } else {
        std::vector<std::thread> Workers;
        for (auto &NR : Runs)
          Workers.emplace_back([this, &NR] { exec(*NR); });
        for (std::thread &W : Workers)
          W.join();
      }

      // Post (serial, canonical order): merge diagnostics, debit budgets,
      // release dead buffers.
      for (auto &NR : Runs) {
        post(*NR);
        Done[NR->Idx] = 1;
        ++DoneCount;
      }
    }

    R.PeakHostBytes = ocl::hostBytesHighWater();
    if (Failed)
      return {};
    for (const BufferDecl &B : VG.G.Buffers)
      if (B.Role == BufferRole::Output) {
        auto It = Live.find(B.Name);
        if (It != Live.end())
          R.Outputs[B.Name] = It->second->toFlatFloats();
      }
    return std::move(R);
  }

private:
  const ValidatedGraph &VG;
  const GraphRunOptions &Opts;
  DiagnosticEngine &Engine;

  ocl::ExecLimits Limits;
  bool HasStepBudget = false;
  std::atomic<uint64_t> StepsLeft{0};
  Clock::time_point Start;

  std::map<std::string, std::unique_ptr<ocl::Buffer>> Live;
  std::map<std::string, uint64_t> BufBytes;
  uint64_t LiveBytes = 0;
  /// Released intermediates waiting for an exact-(extent, elem) re-use.
  std::map<std::pair<int64_t, int>,
           std::vector<std::pair<std::unique_ptr<ocl::Buffer>, uint64_t>>>
      Pool;
  std::set<std::string> Allocated;
  std::map<std::string, unsigned> UsesLeft;
  std::vector<char> NodeFailed;

  GraphRunResult R;
  bool Failed = false;

  DiagLocation ctx(const std::string &Path) const {
    std::string C = "graph '" + VG.G.Name + "'";
    if (!Path.empty())
      C += ", " + Path;
    return DiagLocation::inContext(C);
  }

  static std::pair<int64_t, int> keyOf(const BufferDecl &B) {
    return {B.Extent, static_cast<int>(B.Elem)};
  }

  int64_t elapsedMs() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - Start)
        .count();
  }

  void debitSteps(uint64_t Used) {
    if (!HasStepBudget || Used == 0)
      return;
    uint64_t Cur = StepsLeft.load(std::memory_order_relaxed);
    while (!StepsLeft.compare_exchange_weak(
        Cur, Used >= Cur ? 0 : Cur - Used, std::memory_order_relaxed))
      ;
  }

  //===--------------------------------------------------------------------===//
  // Buffers: materialization, allocation, recycling
  //===--------------------------------------------------------------------===//

  bool chargeBytes(uint64_t Bytes, const std::string &Name,
                   DiagnosticEngine &Eng) {
    if (Limits.MaxMemoryBytes && LiveBytes + Bytes > Limits.MaxMemoryBytes) {
      Eng.error(DiagCode::RuntimeMemoryLimit, ctx(""),
                "allocating buffer '" + Name + "' (" + std::to_string(Bytes) +
                    " bytes) exceeds the graph memory budget of " +
                    std::to_string(Limits.MaxMemoryBytes) + " bytes",
                {"buffers live: " + std::to_string(LiveBytes) + " bytes"});
      return false;
    }
    LiveBytes += Bytes;
    return true;
  }

  /// Creates the buffer inside the hostBytesLive measurement window (all
  /// Buffer factories route through trackedMemory), charges the real
  /// allocation size against the graph budget, and makes it live.
  template <typename MakeFn>
  bool adopt(const BufferDecl &B, MakeFn Make, DiagnosticEngine &Eng) {
    uint64_t Before = ocl::hostBytesLive();
    auto P = std::make_unique<ocl::Buffer>(Make());
    uint64_t After = ocl::hostBytesLive();
    uint64_t Bytes = After > Before ? After - Before : 0;
    if (!chargeBytes(Bytes, B.Name, Eng))
      return false;
    BufBytes[B.Name] = Bytes;
    Live[B.Name] = std::move(P);
    Allocated.insert(B.Name);
    return true;
  }

  bool materializeInput(const BufferDecl &B, DiagnosticEngine &Eng) {
    auto Bind = Opts.Bindings.find(B.Name);
    if (Bind != Opts.Bindings.end()) {
      if (B.Elem != ElemType::Float) {
        Eng.error(DiagCode::GraphShapeMismatch, ctx(""),
                  "host binding for '" + B.Name +
                      "' is float data but the buffer is int");
        return false;
      }
      if (static_cast<int64_t>(Bind->second.size()) != B.Extent) {
        Eng.error(DiagCode::GraphShapeMismatch, ctx(""),
                  "host binding for '" + B.Name + "' has " +
                      std::to_string(Bind->second.size()) +
                      " elements, declared extent is " +
                      std::to_string(B.Extent));
        return false;
      }
      return adopt(
          B, [&] { return ocl::Buffer::ofFloats(Bind->second); }, Eng);
    }
    size_t N = static_cast<size_t>(B.Extent);
    switch (B.Init.K) {
    case InitSpec::Kind::Random: {
      uint64_t Seed = B.Init.Seed;
      if (Seed == 0) {
        // Stable per-buffer default: position in the declaration list.
        uint64_t Pos = 0;
        for (const BufferDecl &D : VG.G.Buffers) {
          if (D.Name == B.Name)
            break;
          ++Pos;
        }
        Seed = Opts.InputSeed + 2 * Pos + 1;
      }
      if (B.Elem == ElemType::Int) {
        Eng.error(DiagCode::GraphShapeMismatch, ctx(""),
                  "int input buffer '" + B.Name +
                      "' requires init=ramp(...) or init=const(...)");
        return false;
      }
      return adopt(
          B, [&] { return ocl::Buffer::ofFloats(randomFloats(N, Seed)); },
          Eng);
    }
    case InitSpec::Kind::Const: {
      if (B.Elem == ElemType::Int)
        return adopt(B,
                     [&] {
                       return ocl::Buffer::ofInts(std::vector<int>(
                           N, static_cast<int>(B.Init.Value)));
                     },
                     Eng);
      return adopt(B,
                   [&] {
                     return ocl::Buffer::ofFloats(std::vector<float>(
                         N, static_cast<float>(B.Init.Value)));
                   },
                   Eng);
    }
    case InitSpec::Kind::Ramp: {
      std::vector<int64_t> Vals(N);
      for (size_t I = 0; I != N; ++I) {
        int64_t V = B.Init.Start + B.Init.Step * static_cast<int64_t>(I);
        if (B.Init.Mod > 0)
          V = ((V % B.Init.Mod) + B.Init.Mod) % B.Init.Mod;
        Vals[I] = V;
      }
      if (B.Elem == ElemType::Int) {
        std::vector<int> IV(Vals.begin(), Vals.end());
        return adopt(B, [&] { return ocl::Buffer::ofInts(IV); }, Eng);
      }
      std::vector<float> FV(N);
      for (size_t I = 0; I != N; ++I)
        FV[I] = static_cast<float>(Vals[I]);
      return adopt(B, [&] { return ocl::Buffer::ofFloats(FV); }, Eng);
    }
    }
    return false;
  }

  /// Inputs always materialize up front; in naive (no-reuse) mode every
  /// buffer does, which is exactly the baseline the bench compares.
  bool materializeUpfront() {
    for (const BufferDecl &B : VG.G.Buffers) {
      bool Need = B.Role == BufferRole::Input || !Opts.ReuseBuffers;
      if (!Need)
        continue;
      bool Ok =
          B.Role == BufferRole::Input
              ? materializeInput(B, Engine)
              : adopt(B,
                      [&] {
                        return ocl::Buffer::zeros(
                            static_cast<size_t>(B.Extent));
                      },
                      Engine);
      if (!Ok) {
        Failed = true;
        return false;
      }
    }
    return true;
  }

  /// Allocates a stage-output buffer, recycling an exact-extent released
  /// intermediate when one is pooled (the GraphBufferReuse fault site).
  bool ensureAllocated(const std::string &Name, DiagnosticEngine &Eng) {
    if (Live.count(Name))
      return true;
    const BufferDecl *B = VG.G.findBuffer(Name);
    if (!B)
      return true; // Validation rejects unknown names before execution.
    auto Key = keyOf(*B);
    auto PoolIt = Pool.find(Key);
    if (Opts.ReuseBuffers && PoolIt != Pool.end() &&
        !PoolIt->second.empty()) {
      if (ocl::fault::shouldFail(ocl::fault::Site::GraphBufferReuse)) {
        Eng.error(DiagCode::GraphFaultInjected, ctx(""),
                  "injected fault: graph buffer reuse while recycling an "
                  "allocation for '" +
                      Name + "'");
        return false;
      }
      auto [Buf, Bytes] = std::move(PoolIt->second.back());
      PoolIt->second.pop_back();
      // Recycled storage must look freshly allocated: zero values, a
      // fresh all-uninitialized guard bitmap, no poison.
      for (ocl::Value &V : *Buf->Mem)
        V = ocl::Value::makeFloat(0);
      Buf->Init = std::make_shared<std::vector<uint8_t>>(
          Buf->Mem->size(), uint8_t(0));
      Buf->Poisoned = false;
      BufBytes[Name] = Bytes;
      Live[Name] = std::move(Buf);
      Allocated.insert(Name);
      ++R.BuffersRecycled;
      return true;
    }
    return adopt(*B,
                 [&] {
                   return ocl::Buffer::zeros(static_cast<size_t>(B->Extent));
                 },
                 Eng);
  }

  /// Pending future allocations of this shape: released buffers are kept
  /// for recycling only while someone will still want the storage.
  size_t pendingAllocs(const std::pair<int64_t, int> &Key) const {
    size_t N = 0;
    for (const BufferDecl &B : VG.G.Buffers)
      if (keyOf(B) == Key && !Allocated.count(B.Name))
        ++N;
    return N;
  }

  void release(const std::string &Name) {
    const BufferDecl *B = VG.G.findBuffer(Name);
    auto It = Live.find(Name);
    if (!B || It == Live.end() || B->Role == BufferRole::Output)
      return;
    if (!Opts.ReuseBuffers)
      return; // The naive baseline holds everything to the end.
    uint64_t Bytes = BufBytes[Name];
    auto Key = keyOf(*B);
    if (Pool[Key].size() < pendingAllocs(Key)) {
      Pool[Key].emplace_back(std::move(It->second), Bytes);
    } else {
      LiveBytes -= std::min(LiveBytes, Bytes);
      ++R.BuffersFreed;
    }
    Live.erase(It);
  }

  //===--------------------------------------------------------------------===//
  // Scheduling
  //===--------------------------------------------------------------------===//

  /// The next set of ready nodes, at most MaxConcurrentStages, in the
  /// canonical order. Iterate nodes run exclusively (their trip loop owns
  /// the budget and the fault counters).
  std::vector<size_t> nextWave(const std::vector<char> &Done) const {
    std::vector<size_t> Wave;
    unsigned Cap = std::max(1u, Opts.MaxConcurrentStages);
    for (size_t Idx : VG.Topo) {
      if (Done[Idx])
        continue;
      bool Ready = true;
      for (size_t D : VG.Deps[Idx])
        if (!Done[D]) {
          Ready = false;
          break;
        }
      if (!Ready)
        continue;
      bool IsIter = VG.Nodes[Idx].K == GraphNode::Kind::Iterate;
      if (IsIter) {
        if (Wave.empty())
          Wave.push_back(Idx);
        break;
      }
      Wave.push_back(Idx);
      if (Wave.size() == Cap)
        break;
    }
    return Wave;
  }

  std::unique_ptr<NodeRun> prep(size_t Idx) {
    auto NR = std::make_unique<NodeRun>();
    NR->Idx = Idx;
    const NodePlan &N = VG.Nodes[Idx];

    // A failed producer fails every dependent deterministically, naming
    // the producing stage — even when the producer never ran far enough
    // to poison its output.
    for (const std::string &B : N.Reads) {
      auto It = VG.ProducerOf.find(B);
      if (It == VG.ProducerOf.end() || It->second.empty())
        continue;
      for (size_t D : VG.Deps[Idx])
        if (NodeFailed[D] && VG.Nodes[D].Writes.count(B)) {
          NR->Eng.error(DiagCode::GraphPoisonedInput, ctx(nodePath(N)),
                        "buffer '" + B + "' is unusable: its producer " +
                            It->second + " failed");
          NR->Ok = false;
        }
    }
    if (!NR->Ok)
      return NR;

    // Allocate this node's outputs (iterate bodies allocate everything
    // before trip 1 — loop-carried scratch is read and written in-node).
    for (const BufferDecl &B : VG.G.Buffers)
      if (N.Writes.count(B.Name) && !ensureAllocated(B.Name, NR->Eng)) {
        NR->Ok = false;
        return NR;
      }
    return NR;
  }

  std::string nodePath(const NodePlan &N) const {
    return (N.K == GraphNode::Kind::Iterate ? "iterate '" : "stage '") +
           N.Name + "'";
  }

  void exec(NodeRun &NR) {
    if (!NR.Ok)
      return;
    const NodePlan &N = VG.Nodes[NR.Idx];
    if (N.K == GraphNode::Kind::Stage) {
      NR.Ok = launchStage(N.Stages[0], 0, NR);
    } else {
      NR.Ok = runIterate(N, NR);
    }
  }

  void post(NodeRun &NR) {
    for (const Diagnostic &D : NR.Eng.diagnostics())
      Engine.report(D);
    for (StageRunInfo &S : NR.Stages) {
      R.TotalCost += S.Cost;
      ++R.StagesRun;
      R.Stages.push_back(std::move(S));
    }
    for (IterateRunInfo &I : NR.Iters)
      R.Iterates.push_back(std::move(I));
    if (!NR.Ok) {
      Failed = true;
      NodeFailed[NR.Idx] = 1;
    }
    const NodePlan &N = VG.Nodes[NR.Idx];
    for (const std::string &B : N.Reads) {
      auto It = UsesLeft.find(B);
      if (It != UsesLeft.end() && --It->second == 0)
        release(B);
    }
    for (const std::string &B : N.Writes)
      if (!UsesLeft.count(B) || UsesLeft[B] == 0)
        release(B);
  }

  //===--------------------------------------------------------------------===//
  // Stage and iterate execution
  //===--------------------------------------------------------------------===//

  bool launchStage(const StagePlan &SP, uint64_t Trip, NodeRun &NR) {
    // Graph-wide gates, checked before every dispatch (including every
    // iterate trip) so budget trips name the stage that hit them.
    if (Limits.Cancel &&
        Limits.Cancel->load(std::memory_order_relaxed)) {
      NR.Eng.error(DiagCode::RuntimeCancelled, ctx(SP.Path),
                   "graph execution cancelled before " + SP.Path);
      return false;
    }
    if (Limits.TimeoutMs > 0 && elapsedMs() >= Limits.TimeoutMs) {
      NR.Eng.error(DiagCode::RuntimeDeadline, ctx(SP.Path),
                   "graph deadline of " + std::to_string(Limits.TimeoutMs) +
                       " ms exceeded before " + SP.Path);
      return false;
    }
    if (HasStepBudget &&
        StepsLeft.load(std::memory_order_relaxed) == 0) {
      NR.Eng.error(DiagCode::RuntimeStepLimit, ctx(SP.Path),
                   "graph step budget of " +
                       std::to_string(Limits.MaxSteps) +
                       " exhausted before " + SP.Path);
      return false;
    }
    if (ocl::fault::shouldFail(ocl::fault::Site::GraphStageDispatch)) {
      NR.Eng.error(DiagCode::GraphFaultInjected, ctx(SP.Path),
                   "injected fault: graph stage dispatch");
      return false;
    }

    // Poisoned inputs fail here, naming the stage that poisoned them.
    std::vector<ocl::Buffer *> Args;
    for (size_t I = 0; I != SP.Args.size(); ++I) {
      const std::string &Name = SP.Args[I];
      auto It = Live.find(Name);
      if (It == Live.end()) {
        NR.Eng.error(DiagCode::GraphStageFailed, ctx(SP.Path),
                     "buffer '" + Name + "' is not live at dispatch");
        return false;
      }
      ocl::Buffer *B = It->second.get();
      if (B->Poisoned) {
        auto Prod = VG.ProducerOf.find(Name);
        std::string Who = Prod != VG.ProducerOf.end() && !Prod->second.empty()
                              ? "its producer " + Prod->second
                              : "graph input '" + Name + "'";
        NR.Eng.error(DiagCode::GraphPoisonedInput, ctx(SP.Path),
                     "buffer '" + Name + "' was poisoned by " + Who +
                         " and cannot be consumed",
                     {"clearPoison() or rewrite the buffer to accept "
                      "partial results"});
        return false;
      }
      Args.push_back(B);
    }

    ocl::LaunchConfig Cfg;
    Cfg.Global = SP.Decl.Global;
    Cfg.Local = SP.Decl.Local;
    Cfg.Threads = Opts.Threads;
    Cfg.CheckRaces = Opts.CheckRaces && !Opts.NativeBackend;
    Cfg.CheckMemory = Opts.CheckMemory && !Opts.NativeBackend;
    Cfg.Limits.Cancel = Limits.Cancel;
    Cfg.Limits.MaxFindings = Limits.MaxFindings;
    if (HasStepBudget)
      Cfg.Limits.MaxSteps =
          std::max<uint64_t>(1, StepsLeft.load(std::memory_order_relaxed));
    if (Limits.TimeoutMs > 0)
      Cfg.Limits.TimeoutMs =
          std::max<int64_t>(1, Limits.TimeoutMs - elapsedMs());
    if (Limits.MaxMemoryBytes > 0)
      Cfg.Limits.MaxMemoryBytes = std::max<uint64_t>(
          1, Limits.MaxMemoryBytes - std::min(Limits.MaxMemoryBytes,
                                              LiveBytes));

    StageRunInfo Info;
    Info.Path = SP.Path;
    Info.Trip = Trip;

    bool LaunchOk = false;
    bool Clean = true;
    if (Opts.NativeBackend) {
      Expected<native::NativeLaunchResult> LR = native::launchNativeChecked(
          *SP.Kernel, Args, SP.Sizes, Cfg, NR.Eng, Opts.NMode);
      if (LR) {
        LaunchOk = true;
        Info.NativeWallMs = LR->WallMs;
      }
    } else {
      Expected<ocl::LaunchResult> LR =
          ocl::launchChecked(*SP.Kernel, Args, SP.Sizes, Cfg, NR.Eng);
      if (LR) {
        LaunchOk = true;
        Clean = LR->clean();
        Info.Cost = LR->Cost.cost();
        Info.StepsUsed = LR->StepsUsed;
        debitSteps(LR->StepsUsed);
      }
    }

    if (!LaunchOk || !Clean) {
      // launchChecked already recorded the underlying E05xx/E06xx
      // diagnostics (and race/guard findings); name the stage on top.
      std::string Msg = SP.Path + " failed";
      if (Trip)
        Msg += " (trip " + std::to_string(Trip) + ")";
      if (LaunchOk && !Clean)
        Msg += ": race or memory findings were reported";
      NR.Eng.error(DiagCode::GraphStageFailed, ctx(SP.Path), Msg);
      return false;
    }
    NR.Stages.push_back(std::move(Info));
    return true;
  }

  double maxAbsDiff(const ocl::Buffer &A, const ocl::Buffer &B) const {
    size_t N = std::min(A.Mem->size(), B.Mem->size());
    double Max = 0;
    for (size_t I = 0; I != N; ++I)
      Max = std::max(Max, std::fabs((*A.Mem)[I].asFloat() -
                                    (*B.Mem)[I].asFloat()));
    return Max;
  }

  bool runIterate(const NodePlan &N, NodeRun &NR) {
    const IterateDecl &It = N.Iter;
    IterateRunInfo Info;
    Info.Name = It.Name;
    for (uint64_t Trip = 1; Trip <= It.MaxTrips; ++Trip) {
      for (const StagePlan &SP : N.Stages)
        if (!launchStage(SP, Trip, NR)) {
          NR.Iters.push_back(std::move(Info));
          return false;
        }
      Info.Trips = Trip;
      Info.Residual =
          maxAbsDiff(*Live.at(It.CompareA), *Live.at(It.CompareB));
      if (Info.Residual <= It.Eps) {
        Info.Converged = true;
        break;
      }
      if (Trip != It.MaxTrips) {
        for (const auto &[A, B] : It.Swaps) {
          ocl::Buffer &BA = *Live.at(A);
          ocl::Buffer &BB = *Live.at(B);
          std::swap(BA.Mem, BB.Mem);
          std::swap(BA.Init, BB.Init);
          std::swap(BA.Poisoned, BB.Poisoned);
        }
      }
    }
    if (!Info.Converged)
      NR.Eng.warning(DiagCode::GraphNotConverged,
                     ctx("iterate '" + It.Name + "'"),
                     "iterate '" + It.Name + "' exhausted " +
                         std::to_string(It.MaxTrips) +
                         " trips without converging (residual " +
                         std::to_string(Info.Residual) + " > eps " +
                         std::to_string(It.Eps) + ")");
    NR.Iters.push_back(std::move(Info));
    return true;
  }
};

} // namespace

Expected<GraphRunResult> graph::runGraph(const ValidatedGraph &VG,
                                         const GraphRunOptions &Opts,
                                         DiagnosticEngine &Engine) {
  try {
    return Runner(VG, Opts, Engine).run();
  } catch (DiagnosticError &E) {
    if (!E.Recorded)
      Engine.report(E.Diag);
    return {};
  } catch (const std::bad_alloc &) {
    Engine.error(DiagCode::RuntimeMemoryLimit,
                 DiagLocation::inContext("graph '" + VG.G.Name + "'"),
                 "graph execution ran out of host memory");
    return {};
  }
}
