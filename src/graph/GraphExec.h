//===- GraphExec.h - Pipeline-graph execution -------------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a \c ValidatedGraph: stages are scheduled in the canonical
/// topological order onto the existing checked launch paths (simulator or
/// native backend), with a dependency model that lets independent stages
/// dispatch concurrently (\c MaxConcurrentStages), a liveness pass that
/// frees and recycles intermediate buffers between stages
/// (\c ReuseBuffers; host high-water pinned by tests and the bench
/// harness), graph-wide \c ExecLimits (one shared step/time/memory budget
/// across all launches), and iterate-until-convergence nodes evaluated
/// host-side. Cancellation, execution limits and injected faults unwind
/// mid-graph through \c Expected<> with E08xx diagnostics naming the
/// failing stage; a poisoned buffer consumed downstream fails
/// deterministically naming the producing stage (E0810). MemGuard init
/// bitmaps persist across stages, so with \c CheckMemory a stage reading
/// elements its producer never wrote is flagged. See docs/PIPELINES.md.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_GRAPH_GRAPHEXEC_H
#define LIFT_GRAPH_GRAPHEXEC_H

#include "graph/Graph.h"
#include "native/Native.h"
#include "ocl/Runtime.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lift {
namespace graph {

struct GraphRunOptions {
  /// Run every stage on the native CPU backend instead of the simulator.
  /// The whole graph uses one backend; a native failure fails the stage
  /// (no mid-graph degradation — it would mix numeric models).
  bool NativeBackend = false;
  native::NativeMode NMode = native::NativeMode::Exact;

  /// Simulator-only checkers, applied to every stage launch.
  bool CheckRaces = false;
  bool CheckMemory = false;

  /// Worker threads per launch (0 = auto, see LaunchConfig::Threads).
  int Threads = 0;

  /// Graph-wide execution budget: MaxSteps/TimeoutMs/MaxMemoryBytes are
  /// shared across all stage launches (each launch gets the remainder);
  /// Cancel is polled between stages and inside every launch. Unset
  /// bounds fall back to the LIFT_* environment defaults once, at graph
  /// start. MaxSteps is not decremented by native launches (the native
  /// backend cannot count interpreter steps).
  ocl::ExecLimits Limits;

  /// Free intermediate buffers after their last consumer and recycle
  /// exact-extent matches for later allocations (the fault site
  /// GraphBufferReuse fires on each recycle). Off = the naive baseline:
  /// every buffer is allocated up front and held until the end.
  bool ReuseBuffers = true;

  /// Independent stages dispatched concurrently per wave. 1 (default)
  /// keeps fault-injection counters and the step budget exact; larger
  /// values overlap launches and make shared-budget accounting
  /// best-effort (each concurrent stage sees the wave-start remainder).
  unsigned MaxConcurrentStages = 1;

  /// After a stage fails, keep running stages that do not depend on it
  /// (their diagnostics accumulate; the run still fails overall).
  /// Dependents of the failed stage report E0810 deterministically.
  bool KeepGoing = false;

  /// Base seed for default random(…) input materialization.
  uint64_t InputSeed = 1;

  /// Host-supplied contents for input buffers, by name; extents must
  /// match the declaration. Unbound inputs use their init spec.
  std::map<std::string, std::vector<float>> Bindings;
};

struct StageRunInfo {
  std::string Path; ///< Diagnostic path of the stage.
  uint64_t Trip = 0; ///< 1-based trip for iterate-body stages, else 0.
  double Cost = 0;
  uint64_t StepsUsed = 0;
  double NativeWallMs = 0;
};

struct IterateRunInfo {
  std::string Name;
  uint64_t Trips = 0;
  bool Converged = false;
  double Residual = 0;
};

struct GraphRunResult {
  /// Flattened contents of every Output-role buffer, by name.
  std::map<std::string, std::vector<float>> Outputs;
  std::vector<StageRunInfo> Stages;
  std::vector<IterateRunInfo> Iterates;
  double TotalCost = 0;
  uint64_t StagesRun = 0;
  /// hostBytesHighWater over the run (reset at graph start): the peak
  /// concurrent host footprint, the number the reuse executor shrinks.
  uint64_t PeakHostBytes = 0;
  uint64_t BuffersRecycled = 0;
  uint64_t BuffersFreed = 0;
};

/// Runs the graph. On failure (stage launch error, poisoned input,
/// exhausted graph budget, cancellation, injected fault) the E08xx
/// diagnostics naming the failing stage are recorded into \p Engine and
/// an empty Expected is returned. Deterministic: for a fixed graph,
/// options and inputs, the outputs are bit-identical across thread
/// counts and across the simulator and exact-mode native backend.
Expected<GraphRunResult> runGraph(const ValidatedGraph &VG,
                                  const GraphRunOptions &Opts,
                                  DiagnosticEngine &Engine);

} // namespace graph
} // namespace lift

#endif // LIFT_GRAPH_GRAPHEXEC_H
