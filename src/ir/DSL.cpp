//===- DSL.cpp - Builders for Lift IL programs ------------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/DSL.h"

using namespace lift;
using namespace lift::ir;

IndexFun dsl::reverseIndex() {
  IndexFun F;
  F.Name = "reverse";
  F.Fn = [](const arith::Expr &I, const arith::Expr &N) {
    return arith::sub(arith::sub(N, arith::cst(1)), I);
  };
  return F;
}

IndexFun dsl::transposeIndex(arith::Expr Rows, arith::Expr Cols) {
  IndexFun F;
  F.Name = "transpose";
  F.Fn = [Rows, Cols](const arith::Expr &I, const arith::Expr &) {
    return arith::add(arith::mul(arith::mod(I, Rows), Cols),
                      arith::intDiv(I, Rows));
  };
  return F;
}

IndexFun dsl::strideIndex(arith::Expr Stride) {
  IndexFun F;
  F.Name = "stride";
  F.Fn = [Stride](const arith::Expr &I, const arith::Expr &N) {
    return arith::add(
        arith::mul(arith::mod(I, Stride), arith::intDiv(N, Stride)),
        arith::intDiv(I, Stride));
  };
  return F;
}
