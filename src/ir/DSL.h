//===- DSL.h - Builders for Lift IL programs --------------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience builders for writing Lift IL programs in C++. Programs read
/// as pipelines: pipe(x, split(128), mapWrg(0, f), join()) builds
/// join(mapWrg0(f, split128(x))), i.e. the paper's right-to-left
/// composition written left-to-right in data-flow order.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_IR_DSL_H
#define LIFT_IR_DSL_H

#include "ir/IR.h"

namespace lift {
namespace ir {
namespace dsl {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

inline ParamPtr param(const std::string &Name, TypePtr Ty = nullptr) {
  return std::make_shared<Param>(Name, std::move(Ty));
}

inline ExprPtr lit(const std::string &Value, TypePtr Ty) {
  return std::make_shared<Literal>(Value, std::move(Ty));
}

inline ExprPtr litFloat(float V) {
  std::string S = std::to_string(V) + "f";
  return lit(S, float32());
}

inline ExprPtr litInt(int V) { return lit(std::to_string(V), int32()); }

inline ExprPtr call(FunDeclPtr F, std::vector<ExprPtr> Args) {
  return std::make_shared<FunCall>(std::move(F), std::move(Args));
}

/// Applies a chain of single-argument functions in data-flow order:
/// pipe(x, f, g) == g(f(x)).
template <typename... Fs> ExprPtr pipe(ExprPtr X, Fs... Stages) {
  ExprPtr Cur = std::move(X);
  ((Cur = call(std::move(Stages), {Cur})), ...);
  return Cur;
}

//===----------------------------------------------------------------------===//
// Lambdas
//===----------------------------------------------------------------------===//

inline LambdaPtr lambda(std::vector<ParamPtr> Params, ExprPtr Body) {
  return std::make_shared<Lambda>(std::move(Params), std::move(Body));
}

/// Builds a unary lambda from a C++ function of the parameter.
template <typename Fn> LambdaPtr fun(Fn &&Body) {
  ParamPtr P = param("p");
  ExprPtr B = Body(ExprPtr(P));
  return lambda({P}, std::move(B));
}

/// Builds a binary lambda (e.g. a reduction operator wrapper).
template <typename Fn> LambdaPtr fun2(Fn &&Body) {
  ParamPtr A = param("a"), B = param("b");
  ExprPtr R = Body(ExprPtr(A), ExprPtr(B));
  return lambda({A, B}, std::move(R));
}

//===----------------------------------------------------------------------===//
// Patterns
//===----------------------------------------------------------------------===//

inline FunDeclPtr map(FunDeclPtr F) {
  return std::make_shared<Map>(std::move(F));
}
inline FunDeclPtr mapSeq(FunDeclPtr F) {
  return std::make_shared<MapSeq>(std::move(F));
}
inline FunDeclPtr mapGlb(unsigned Dim, FunDeclPtr F) {
  return std::make_shared<MapGlb>(Dim, std::move(F));
}
inline FunDeclPtr mapGlb(FunDeclPtr F) { return mapGlb(0, std::move(F)); }
inline FunDeclPtr mapWrg(unsigned Dim, FunDeclPtr F) {
  return std::make_shared<MapWrg>(Dim, std::move(F));
}
inline FunDeclPtr mapWrg(FunDeclPtr F) { return mapWrg(0, std::move(F)); }
inline FunDeclPtr mapLcl(unsigned Dim, FunDeclPtr F) {
  return std::make_shared<MapLcl>(Dim, std::move(F));
}
inline FunDeclPtr mapLcl(FunDeclPtr F) { return mapLcl(0, std::move(F)); }
inline FunDeclPtr mapVec(FunDeclPtr F) {
  return std::make_shared<MapVec>(std::move(F));
}
inline FunDeclPtr reduceSeq(FunDeclPtr F) {
  return std::make_shared<ReduceSeq>(std::move(F));
}
inline FunDeclPtr id() { return std::make_shared<Id>(); }
inline FunDeclPtr iterate(int64_t Count, FunDeclPtr F) {
  return std::make_shared<Iterate>(Count, std::move(F));
}
inline FunDeclPtr split(arith::Expr Factor) {
  return std::make_shared<Split>(std::move(Factor));
}
inline FunDeclPtr split(int64_t Factor) { return split(arith::cst(Factor)); }
inline FunDeclPtr join() { return std::make_shared<Join>(); }
inline FunDeclPtr gather(IndexFun F) {
  return std::make_shared<Gather>(std::move(F));
}
inline FunDeclPtr scatter(IndexFun F) {
  return std::make_shared<Scatter>(std::move(F));
}
inline FunDeclPtr zip() { return std::make_shared<Zip>(2); }
inline FunDeclPtr zip3() { return std::make_shared<Zip>(3); }
inline FunDeclPtr unzip() { return std::make_shared<Unzip>(); }
inline FunDeclPtr get(unsigned Index) {
  return std::make_shared<Get>(Index);
}
inline FunDeclPtr slide(arith::Expr Size, arith::Expr Step) {
  return std::make_shared<Slide>(std::move(Size), std::move(Step));
}
inline FunDeclPtr slide(int64_t Size, int64_t Step) {
  return slide(arith::cst(Size), arith::cst(Step));
}
inline FunDeclPtr transpose() { return std::make_shared<Transpose>(); }
inline FunDeclPtr gatherIndices() {
  return std::make_shared<GatherIndices>();
}
inline FunDeclPtr asVector(unsigned Width) {
  return std::make_shared<AsVector>(Width);
}
inline FunDeclPtr asScalar() { return std::make_shared<AsScalar>(); }
inline FunDeclPtr toGlobal(FunDeclPtr F) {
  return std::make_shared<ToGlobal>(std::move(F));
}
inline FunDeclPtr toLocal(FunDeclPtr F) {
  return std::make_shared<ToLocal>(std::move(F));
}
inline FunDeclPtr toPrivate(FunDeclPtr F) {
  return std::make_shared<ToPrivate>(std::move(F));
}

inline FunDeclPtr userFun(std::string Name, std::vector<std::string> Params,
                          std::vector<TypePtr> ParamTypes, TypePtr Ret,
                          std::string Body) {
  return std::make_shared<UserFun>(std::move(Name), std::move(Params),
                                   std::move(ParamTypes), std::move(Ret),
                                   std::move(Body));
}

//===----------------------------------------------------------------------===//
// Common index functions
//===----------------------------------------------------------------------===//

/// i -> n - 1 - i.
IndexFun reverseIndex();

/// Transposition of a flattened [Rows x Cols] array as used in section 3.2:
/// i -> (i mod Rows) * Cols + i / Rows.
IndexFun transposeIndex(arith::Expr Rows, arith::Expr Cols);

/// Stride permutation: i -> (i mod Stride) * (n / Stride) + i / Stride,
/// used to coalesce global memory accesses (GEMV, section 7.2).
IndexFun strideIndex(arith::Expr Stride);

} // namespace dsl
} // namespace ir
} // namespace lift

#endif // LIFT_IR_DSL_H
