//===- IR.cpp - The Lift intermediate representation ------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include "support/Casting.h"
#include "support/Error.h"

#include <unordered_map>

using namespace lift;
using namespace lift::ir;

Expr::~Expr() = default;
FunDecl::~FunDecl() = default;

const char *ir::addressSpaceName(AddressSpace AS) {
  switch (AS) {
  case AddressSpace::Undef:
    return "undef";
  case AddressSpace::Private:
    return "private";
  case AddressSpace::Local:
    return "local";
  case AddressSpace::Global:
    return "global";
  }
  lift_unreachable("unhandled address space");
}

AddressSpace AddressSpaceWrapper::getTargetSpace() const {
  switch (getKind()) {
  case FunKind::ToGlobal:
    return AddressSpace::Global;
  case FunKind::ToLocal:
    return AddressSpace::Local;
  case FunKind::ToPrivate:
    return AddressSpace::Private;
  default:
    lift_unreachable("not an address space wrapper");
  }
}

unsigned AddressSpaceWrapper::arity() const { return F->arity(); }

const char *ir::funKindName(FunKind K) {
  switch (K) {
  case FunKind::Lambda:
    return "lambda";
  case FunKind::UserFun:
    return "userfun";
  case FunKind::Map:
    return "map";
  case FunKind::MapSeq:
    return "mapSeq";
  case FunKind::MapGlb:
    return "mapGlb";
  case FunKind::MapWrg:
    return "mapWrg";
  case FunKind::MapLcl:
    return "mapLcl";
  case FunKind::MapVec:
    return "mapVec";
  case FunKind::ReduceSeq:
    return "reduceSeq";
  case FunKind::Id:
    return "id";
  case FunKind::Iterate:
    return "iterate";
  case FunKind::Split:
    return "split";
  case FunKind::Join:
    return "join";
  case FunKind::Gather:
    return "gather";
  case FunKind::Scatter:
    return "scatter";
  case FunKind::Zip:
    return "zip";
  case FunKind::Unzip:
    return "unzip";
  case FunKind::Get:
    return "get";
  case FunKind::Slide:
    return "slide";
  case FunKind::Transpose:
    return "transpose";
  case FunKind::GatherIndices:
    return "gatherIndices";
  case FunKind::AsVector:
    return "asVector";
  case FunKind::AsScalar:
    return "asScalar";
  case FunKind::ToGlobal:
    return "toGlobal";
  case FunKind::ToLocal:
    return "toLocal";
  case FunKind::ToPrivate:
    return "toPrivate";
  }
  lift_unreachable("unhandled function kind");
}

//===----------------------------------------------------------------------===//
// Deep clone
//===----------------------------------------------------------------------===//

namespace {

/// Clones expression graphs preserving sharing: a parameter referenced from
/// several places maps to one fresh parameter.
class Cloner {
  std::unordered_map<const Expr *, ExprPtr> ExprMap;

public:
  ExprPtr clone(const ExprPtr &E) {
    auto It = ExprMap.find(E.get());
    if (It != ExprMap.end())
      return It->second;
    ExprPtr Result = cloneFresh(E);
    ExprMap[E.get()] = Result;
    return Result;
  }

  FunDeclPtr cloneFun(const FunDeclPtr &F) {
    switch (F->getKind()) {
    case FunKind::Lambda: {
      const auto *L = cast<Lambda>(F.get());
      std::vector<ParamPtr> Params;
      for (const ParamPtr &P : L->getParams())
        Params.push_back(cast<Param>(clone(P)));
      ExprPtr Body = clone(L->getBody());
      return std::make_shared<Lambda>(std::move(Params), std::move(Body));
    }
    case FunKind::UserFun:
      return F; // Immutable; safe to share.
    case FunKind::Map:
      return std::make_shared<Map>(cloneFun(cast<Map>(F.get())->getF()));
    case FunKind::MapSeq:
      return std::make_shared<MapSeq>(cloneFun(cast<MapSeq>(F.get())->getF()));
    case FunKind::MapGlb: {
      const auto *M = cast<MapGlb>(F.get());
      return std::make_shared<MapGlb>(M->getDim(), cloneFun(M->getF()));
    }
    case FunKind::MapWrg: {
      const auto *M = cast<MapWrg>(F.get());
      return std::make_shared<MapWrg>(M->getDim(), cloneFun(M->getF()));
    }
    case FunKind::MapLcl: {
      const auto *M = cast<MapLcl>(F.get());
      auto C = std::make_shared<MapLcl>(M->getDim(), cloneFun(M->getF()));
      C->EmitBarrier = M->EmitBarrier;
      return C;
    }
    case FunKind::MapVec:
      return std::make_shared<MapVec>(cloneFun(cast<MapVec>(F.get())->getF()));
    case FunKind::ReduceSeq:
      return std::make_shared<ReduceSeq>(
          cloneFun(cast<ReduceSeq>(F.get())->getF()));
    case FunKind::Id:
      return std::make_shared<Id>();
    case FunKind::Iterate: {
      const auto *I = cast<Iterate>(F.get());
      return std::make_shared<Iterate>(I->getCount(), cloneFun(I->getF()));
    }
    case FunKind::Split:
      return std::make_shared<Split>(cast<Split>(F.get())->getFactor());
    case FunKind::Join:
      return std::make_shared<Join>();
    case FunKind::Gather:
      return std::make_shared<Gather>(cast<Gather>(F.get())->getIndexFun());
    case FunKind::Scatter:
      return std::make_shared<Scatter>(cast<Scatter>(F.get())->getIndexFun());
    case FunKind::Zip:
      return std::make_shared<Zip>(F->arity());
    case FunKind::Unzip:
      return std::make_shared<Unzip>();
    case FunKind::Get:
      return std::make_shared<Get>(cast<Get>(F.get())->getIndex());
    case FunKind::Slide: {
      const auto *S = cast<Slide>(F.get());
      return std::make_shared<Slide>(S->getSize(), S->getStep());
    }
    case FunKind::Transpose:
      return std::make_shared<Transpose>();
    case FunKind::GatherIndices:
      return std::make_shared<GatherIndices>();
    case FunKind::AsVector:
      return std::make_shared<AsVector>(cast<AsVector>(F.get())->getWidth());
    case FunKind::AsScalar:
      return std::make_shared<AsScalar>();
    case FunKind::ToGlobal:
      return std::make_shared<ToGlobal>(
          cloneFun(cast<ToGlobal>(F.get())->getF()));
    case FunKind::ToLocal:
      return std::make_shared<ToLocal>(
          cloneFun(cast<ToLocal>(F.get())->getF()));
    case FunKind::ToPrivate:
      return std::make_shared<ToPrivate>(
          cloneFun(cast<ToPrivate>(F.get())->getF()));
    }
    lift_unreachable("unhandled function kind");
  }

private:
  ExprPtr cloneFresh(const ExprPtr &E) {
    switch (E->getClass()) {
    case ExprClass::Literal: {
      const auto *L = cast<Literal>(E.get());
      return std::make_shared<Literal>(L->getValue(), L->Ty);
    }
    case ExprClass::Param: {
      const auto *P = cast<Param>(E.get());
      return std::make_shared<Param>(P->getName(), P->Ty);
    }
    case ExprClass::FunCall: {
      const auto *C = cast<FunCall>(E.get());
      std::vector<ExprPtr> Args;
      for (const ExprPtr &A : C->getArgs())
        Args.push_back(clone(A));
      return std::make_shared<FunCall>(cloneFun(C->getFun()),
                                       std::move(Args));
    }
    }
    lift_unreachable("unhandled expression class");
  }
};

} // namespace

ExprPtr ir::cloneExpr(const ExprPtr &E) { return Cloner().clone(E); }

FunDeclPtr ir::cloneFunDecl(const FunDeclPtr &F) {
  return Cloner().cloneFun(F);
}
