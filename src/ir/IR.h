//===- IR.h - The Lift intermediate representation --------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Lift IR (section 4 of the paper, Figure 2): programs are graphs of
/// expressions (literals, parameters, function calls) and function
/// declarations (lambdas, user functions, and the built-in patterns).
/// The IR preserves a functional representation of the program all the way
/// through compilation.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_IR_IR_H
#define LIFT_IR_IR_H

#include "arith/ArithExpr.h"
#include "ir/Types.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace lift {
namespace ir {

class Expr;
class FunDecl;
class Param;
class Lambda;

using ExprPtr = std::shared_ptr<Expr>;
using FunDeclPtr = std::shared_ptr<FunDecl>;
using ParamPtr = std::shared_ptr<Param>;
using LambdaPtr = std::shared_ptr<Lambda>;

/// OpenCL address spaces (plus Undef before inference has run).
enum class AddressSpace { Undef, Private, Local, Global };

const char *addressSpaceName(AddressSpace AS);

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprClass { Literal, Param, FunCall };

/// Base class of expressions. Expressions carry mutable analysis
/// annotations (type, address space) filled in by the compiler passes.
class Expr {
  const ExprClass Class;

public:
  /// Inferred type (type analysis stage).
  TypePtr Ty;
  /// Inferred address space (Algorithm 1).
  AddressSpace AS = AddressSpace::Undef;

  virtual ~Expr();

  ExprClass getClass() const { return Class; }

protected:
  explicit Expr(ExprClass C) : Class(C) {}
};

/// A compile-time constant, e.g. the initializer of a reduction.
class Literal : public Expr {
  std::string Value;

public:
  Literal(std::string Value, TypePtr DeclaredType)
      : Expr(ExprClass::Literal), Value(std::move(Value)) {
    Ty = std::move(DeclaredType);
  }

  const std::string &getValue() const { return Value; }

  static bool classof(const Expr *E) {
    return E->getClass() == ExprClass::Literal;
  }
};

/// A function parameter. Top-level program parameters must carry a declared
/// type; lambda-internal parameters receive their type at application.
class Param : public Expr {
  std::string Name;

public:
  explicit Param(std::string Name, TypePtr DeclaredType = nullptr)
      : Expr(ExprClass::Param), Name(std::move(Name)) {
    Ty = std::move(DeclaredType);
  }

  const std::string &getName() const { return Name; }

  static bool classof(const Expr *E) {
    return E->getClass() == ExprClass::Param;
  }
};

/// Application of a function declaration to argument expressions.
class FunCall : public Expr {
  FunDeclPtr F;
  std::vector<ExprPtr> Args;

public:
  FunCall(FunDeclPtr F, std::vector<ExprPtr> Args)
      : Expr(ExprClass::FunCall), F(std::move(F)), Args(std::move(Args)) {}

  const FunDeclPtr &getFun() const { return F; }
  const std::vector<ExprPtr> &getArgs() const { return Args; }

  static bool classof(const Expr *E) {
    return E->getClass() == ExprClass::FunCall;
  }
};

//===----------------------------------------------------------------------===//
// Function declarations
//===----------------------------------------------------------------------===//

enum class FunKind {
  Lambda,
  UserFun,
  // Algorithmic patterns.
  Map, // high-level, unmapped: must be lowered by rewriting before codegen
  MapSeq,
  MapGlb,
  MapWrg,
  MapLcl,
  MapVec,
  ReduceSeq,
  Id,
  Iterate,
  // Data layout patterns.
  Split,
  Join,
  Gather,
  Scatter,
  Zip,
  Unzip,
  Get,
  Slide,
  Transpose,
  GatherIndices,
  // Vectorization patterns.
  AsVector,
  AsScalar,
  // Address space patterns.
  ToGlobal,
  ToLocal,
  ToPrivate,
};

/// Base class of function declarations.
class FunDecl {
  const FunKind Kind;

protected:
  explicit FunDecl(FunKind K) : Kind(K) {}

public:
  virtual ~FunDecl();

  FunKind getKind() const { return Kind; }

  /// Number of arguments the declaration is called with.
  virtual unsigned arity() const { return 1; }
};

/// Anonymous function with named parameters and a body expression.
class Lambda : public FunDecl {
  std::vector<ParamPtr> Params;
  ExprPtr Body;

public:
  Lambda(std::vector<ParamPtr> Params, ExprPtr Body)
      : FunDecl(FunKind::Lambda), Params(std::move(Params)),
        Body(std::move(Body)) {}

  const std::vector<ParamPtr> &getParams() const { return Params; }
  const ExprPtr &getBody() const { return Body; }

  unsigned arity() const override {
    return static_cast<unsigned>(Params.size());
  }

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::Lambda;
  }
};

/// A user function: application-specific computation over scalar, vector
/// or tuple values, written in a subset of C. The body is parsed by the
/// cparse library and both printed into the kernel and interpreted by the
/// simulated OpenCL runtime.
class UserFun : public FunDecl {
  std::string Name;
  std::vector<std::string> ParamNames;
  std::vector<TypePtr> ParamTypes;
  TypePtr ReturnType;
  std::string Body;

public:
  UserFun(std::string Name, std::vector<std::string> ParamNames,
          std::vector<TypePtr> ParamTypes, TypePtr ReturnType,
          std::string Body)
      : FunDecl(FunKind::UserFun), Name(std::move(Name)),
        ParamNames(std::move(ParamNames)), ParamTypes(std::move(ParamTypes)),
        ReturnType(std::move(ReturnType)), Body(std::move(Body)) {}

  const std::string &getName() const { return Name; }
  const std::vector<std::string> &getParamNames() const { return ParamNames; }
  const std::vector<TypePtr> &getParamTypes() const { return ParamTypes; }
  const TypePtr &getReturnType() const { return ReturnType; }
  const std::string &getBody() const { return Body; }

  unsigned arity() const override {
    return static_cast<unsigned>(ParamNames.size());
  }

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::UserFun;
  }
};

/// Common base of all map variants; holds the mapped function.
class AbstractMap : public FunDecl {
  FunDeclPtr F;

protected:
  AbstractMap(FunKind K, FunDeclPtr F) : FunDecl(K), F(std::move(F)) {}

public:
  const FunDeclPtr &getF() const { return F; }

  static bool classof(const FunDecl *F) {
    switch (F->getKind()) {
    case FunKind::Map:
    case FunKind::MapSeq:
    case FunKind::MapGlb:
    case FunKind::MapWrg:
    case FunKind::MapLcl:
    case FunKind::MapVec:
      return true;
    default:
      return false;
    }
  }
};

/// The high-level, implementation-agnostic map of the portable Lift IL
/// (prior work [18]): carries no mapping decision. The rewrite rules lower
/// it to mapGlb / mapWrg(mapLcl) / mapSeq; the code generator rejects it.
class Map : public AbstractMap {
public:
  explicit Map(FunDeclPtr F) : AbstractMap(FunKind::Map, std::move(F)) {}

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::Map;
  }
};

class MapSeq : public AbstractMap {
public:
  explicit MapSeq(FunDeclPtr F) : AbstractMap(FunKind::MapSeq, std::move(F)) {}

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::MapSeq;
  }
};

/// Common base of the parallel maps, which carry an OpenCL dimension 0-2.
class ParallelMap : public AbstractMap {
  unsigned Dim;

protected:
  ParallelMap(FunKind K, unsigned Dim, FunDeclPtr F)
      : AbstractMap(K, std::move(F)), Dim(Dim) {}

public:
  unsigned getDim() const { return Dim; }

  static bool classof(const FunDecl *F) {
    switch (F->getKind()) {
    case FunKind::MapGlb:
    case FunKind::MapWrg:
    case FunKind::MapLcl:
      return true;
    default:
      return false;
    }
  }
};

class MapGlb : public ParallelMap {
public:
  MapGlb(unsigned Dim, FunDeclPtr F)
      : ParallelMap(FunKind::MapGlb, Dim, std::move(F)) {}

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::MapGlb;
  }
};

class MapWrg : public ParallelMap {
public:
  MapWrg(unsigned Dim, FunDeclPtr F)
      : ParallelMap(FunKind::MapWrg, Dim, std::move(F)) {}

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::MapWrg;
  }
};

class MapLcl : public ParallelMap {
public:
  /// Barrier emission flag consumed by the code generator; the barrier
  /// elimination pass (section 5.4) may clear it.
  bool EmitBarrier = true;

  MapLcl(unsigned Dim, FunDeclPtr F)
      : ParallelMap(FunKind::MapLcl, Dim, std::move(F)) {}

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::MapLcl;
  }
};

/// Applies a scalar function element-wise to a vector value.
class MapVec : public AbstractMap {
public:
  explicit MapVec(FunDeclPtr F) : AbstractMap(FunKind::MapVec, std::move(F)) {}

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::MapVec;
  }
};

/// Sequential reduction; called with (initializer, array).
class ReduceSeq : public FunDecl {
  FunDeclPtr F;

public:
  explicit ReduceSeq(FunDeclPtr F)
      : FunDecl(FunKind::ReduceSeq), F(std::move(F)) {}

  const FunDeclPtr &getF() const { return F; }

  unsigned arity() const override { return 2; }

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::ReduceSeq;
  }
};

/// The identity function (used for copies between address spaces).
class Id : public FunDecl {
public:
  Id() : FunDecl(FunKind::Id) {}

  static bool classof(const FunDecl *F) { return F->getKind() == FunKind::Id; }
};

/// Applies F a constant number of times, re-injecting the output of each
/// iteration as the input of the next.
class Iterate : public FunDecl {
  int64_t Count;
  FunDeclPtr F;

public:
  Iterate(int64_t Count, FunDeclPtr F)
      : FunDecl(FunKind::Iterate), Count(Count), F(std::move(F)) {}

  int64_t getCount() const { return Count; }
  const FunDeclPtr &getF() const { return F; }

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::Iterate;
  }
};

/// Adds an array dimension: [T]n -> [[T]m]{n/m}.
class Split : public FunDecl {
  arith::Expr Factor;

public:
  explicit Split(arith::Expr Factor)
      : FunDecl(FunKind::Split), Factor(std::move(Factor)) {}

  const arith::Expr &getFactor() const { return Factor; }

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::Split;
  }
};

/// Removes an array dimension: [[T]m]n -> [T]{m*n}.
class Join : public FunDecl {
public:
  Join() : FunDecl(FunKind::Join) {}

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::Join;
  }
};

/// An index permutation used by Gather and Scatter: maps an index (and the
/// array length) to another index.
struct IndexFun {
  std::string Name;
  std::function<arith::Expr(const arith::Expr &Index,
                            const arith::Expr &Size)>
      Fn;
};

/// Remaps indices when reading: gather(f, a)[i] = a[f(i)].
class Gather : public FunDecl {
  IndexFun F;

public:
  explicit Gather(IndexFun F) : FunDecl(FunKind::Gather), F(std::move(F)) {}

  const IndexFun &getIndexFun() const { return F; }

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::Gather;
  }
};

/// Remaps indices when writing: scatter(f, a)[f(i)] = a[i].
class Scatter : public FunDecl {
  IndexFun F;

public:
  explicit Scatter(IndexFun F) : FunDecl(FunKind::Scatter), F(std::move(F)) {}

  const IndexFun &getIndexFun() const { return F; }

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::Scatter;
  }
};

/// Combines N same-length arrays into an array of tuples.
class Zip : public FunDecl {
  unsigned N;

public:
  explicit Zip(unsigned N) : FunDecl(FunKind::Zip), N(N) {}

  unsigned arity() const override { return N; }

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::Zip;
  }
};

/// Splits an array of tuples into a tuple of arrays (the inverse of zip).
/// Purely a type-level change: views commute tuple and array accesses.
class Unzip : public FunDecl {
public:
  Unzip() : FunDecl(FunKind::Unzip) {}

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::Unzip;
  }
};

/// Projects component Index out of a tuple.
class Get : public FunDecl {
  unsigned Index;

public:
  explicit Get(unsigned Index) : FunDecl(FunKind::Get), Index(Index) {}

  unsigned getIndex() const { return Index; }

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::Get;
  }
};

/// Moving window over an array (stencils): [T]n -> [[T]size]{(n-size)/step+1}.
class Slide : public FunDecl {
  arith::Expr Size, Step;

public:
  Slide(arith::Expr Size, arith::Expr Step)
      : FunDecl(FunKind::Slide), Size(std::move(Size)), Step(std::move(Step)) {}

  const arith::Expr &getSize() const { return Size; }
  const arith::Expr &getStep() const { return Step; }

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::Slide;
  }
};

/// Transposes the outer two dimensions: [[T]m]n -> [[T]n]m. Expressible as
/// split/gather/join (section 3.2); provided natively as in the Lift
/// implementation.
class Transpose : public FunDecl {
public:
  Transpose() : FunDecl(FunKind::Transpose) {}

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::Transpose;
  }
};

/// Data-dependent gather: gatherIndices(idx, a)[i] = a[idx[i]]. The index
/// array is read at kernel runtime (arith Lookup nodes). Extension used by
/// the MD benchmark's neighbour lists.
class GatherIndices : public FunDecl {
public:
  GatherIndices() : FunDecl(FunKind::GatherIndices) {}

  unsigned arity() const override { return 2; }

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::GatherIndices;
  }
};

/// Reinterprets scalars as vectors: [s]n -> [s<w>]{n/w}.
class AsVector : public FunDecl {
  unsigned Width;

public:
  explicit AsVector(unsigned Width)
      : FunDecl(FunKind::AsVector), Width(Width) {}

  unsigned getWidth() const { return Width; }

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::AsVector;
  }
};

/// Reinterprets vectors as scalars: [s<w>]n -> [s]{n*w}.
class AsScalar : public FunDecl {
public:
  AsScalar() : FunDecl(FunKind::AsScalar) {}

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::AsScalar;
  }
};

/// Common base of the address space wrapper patterns.
class AddressSpaceWrapper : public FunDecl {
  FunDeclPtr F;

protected:
  AddressSpaceWrapper(FunKind K, FunDeclPtr F) : FunDecl(K), F(std::move(F)) {}

public:
  const FunDeclPtr &getF() const { return F; }

  /// The address space this wrapper directs writes into.
  AddressSpace getTargetSpace() const;

  unsigned arity() const override;

  static bool classof(const FunDecl *F) {
    switch (F->getKind()) {
    case FunKind::ToGlobal:
    case FunKind::ToLocal:
    case FunKind::ToPrivate:
      return true;
    default:
      return false;
    }
  }
};

class ToGlobal : public AddressSpaceWrapper {
public:
  explicit ToGlobal(FunDeclPtr F)
      : AddressSpaceWrapper(FunKind::ToGlobal, std::move(F)) {}

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::ToGlobal;
  }
};

class ToLocal : public AddressSpaceWrapper {
public:
  explicit ToLocal(FunDeclPtr F)
      : AddressSpaceWrapper(FunKind::ToLocal, std::move(F)) {}

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::ToLocal;
  }
};

class ToPrivate : public AddressSpaceWrapper {
public:
  explicit ToPrivate(FunDeclPtr F)
      : AddressSpaceWrapper(FunKind::ToPrivate, std::move(F)) {}

  static bool classof(const FunDecl *F) {
    return F->getKind() == FunKind::ToPrivate;
  }
};

//===----------------------------------------------------------------------===//
// Utilities
//===----------------------------------------------------------------------===//

/// Deep-clones an expression graph, producing fresh mutable nodes so that
/// the same program can be compiled multiple times with different options.
/// Lambdas and their parameters are cloned; user functions are shared
/// (they carry no mutable state).
ExprPtr cloneExpr(const ExprPtr &E);

/// Deep-clones a function declaration (see cloneExpr).
FunDeclPtr cloneFunDecl(const FunDeclPtr &F);

/// Human-readable name of a pattern kind (diagnostics, printer).
const char *funKindName(FunKind K);

} // namespace ir
} // namespace lift

#endif // LIFT_IR_IR_H
