//===- Prelude.cpp - Common user functions -----------------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/Prelude.h"

#include "ir/DSL.h"

using namespace lift;
using namespace lift::ir;
using namespace lift::ir::dsl;

FunDeclPtr prelude::addFun() {
  return userFun("add", {"a", "b"}, {float32(), float32()}, float32(),
                 "return a + b;");
}

FunDeclPtr prelude::multFun() {
  return userFun("mult", {"a", "b"}, {float32(), float32()}, float32(),
                 "return a * b;");
}

FunDeclPtr prelude::multFun2Tuple() {
  return userFun("multPair", {"p"}, {tupleOf({float32(), float32()})},
                 float32(), "return p._0 * p._1;");
}

FunDeclPtr prelude::multAndSumUpFun() {
  return userFun("multAndSumUp", {"acc", "xy"},
                 {float32(), tupleOf({float32(), float32()})}, float32(),
                 "return acc + xy._0 * xy._1;");
}

FunDeclPtr prelude::idFloatFun() {
  return userFun("idF", {"x"}, {float32()}, float32(), "return x;");
}

FunDeclPtr prelude::idFloat4Fun() {
  return userFun("idF4", {"x"}, {vectorOf(ScalarKind::Float, 4)},
                 vectorOf(ScalarKind::Float, 4), "return x;");
}

FunDeclPtr prelude::squareFun() {
  return userFun("sq", {"x"}, {float32()}, float32(), "return x * x;");
}
