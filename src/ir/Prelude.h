//===- Prelude.h - Common user functions ------------------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small prelude of user functions shared by the examples, tests and
/// benchmarks: the arithmetic of the paper's dot product example (add,
/// mult, multAndSumUp) and a float identity.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_IR_PRELUDE_H
#define LIFT_IR_PRELUDE_H

#include "ir/IR.h"

namespace lift {
namespace ir {
namespace prelude {

/// float add(float a, float b) { return a + b; }
FunDeclPtr addFun();

/// float mult(float a, float b) { return a * b; }
FunDeclPtr multFun();

/// float multPair((float, float) p) { return p._0 * p._1; } — the
/// element-wise multiply of the section 3.1 dot product over zipped input.
FunDeclPtr multFun2Tuple();

/// float multAndSumUp(float acc, float x, float y) — but used through a
/// tuple: float multAndSumUp(float acc, (float, float) xy).
FunDeclPtr multAndSumUpFun();

/// float idF(float x) { return x; } — the user-function spelling of id,
/// as used for address space copies in Listing 1.
FunDeclPtr idFloatFun();

/// float4 identity.
FunDeclPtr idFloat4Fun();

/// float sq(float x) { return x * x; }
FunDeclPtr squareFun();

} // namespace prelude
} // namespace ir
} // namespace lift

#endif // LIFT_IR_PRELUDE_H
