//===- Printer.cpp - Pretty printer for the Lift IL ------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include "arith/Printer.h"
#include "support/Casting.h"
#include "support/Error.h"

#include <sstream>

using namespace lift;
using namespace lift::ir;

namespace {

class IlPrinter {
  std::ostringstream OS;
  unsigned Indent = 0;

public:
  std::string print(const LambdaPtr &Program) {
    OS << "fun(";
    const auto &Params = Program->getParams();
    for (size_t I = 0, E = Params.size(); I != E; ++I) {
      if (I != 0)
        OS << ", ";
      OS << Params[I]->getName();
      if (Params[I]->Ty)
        OS << ": " << typeToString(Params[I]->Ty);
    }
    OS << ") =>\n";
    Indent = 1;
    indent();
    printExpr(Program->getBody());
    OS << "\n";
    return OS.str();
  }

  std::string printTopExpr(const ExprPtr &E) {
    printExpr(E);
    return OS.str();
  }

private:
  void indent() {
    for (unsigned I = 0; I != Indent; ++I)
      OS << "  ";
  }

  void newline() {
    OS << "\n";
    indent();
  }

  void printExpr(const ExprPtr &E) {
    switch (E->getClass()) {
    case ExprClass::Literal:
      OS << cast<Literal>(E.get())->getValue();
      return;
    case ExprClass::Param:
      OS << cast<Param>(E.get())->getName();
      return;
    case ExprClass::FunCall: {
      const auto *C = cast<FunCall>(E.get());
      printFun(C->getFun());
      OS << "(";
      const auto &Args = C->getArgs();
      for (size_t I = 0, N = Args.size(); I != N; ++I) {
        if (I != 0)
          OS << ", ";
        // Nested calls continue on a fresh line to mirror the paper's
        // one-stage-per-line layout.
        if (isa<FunCall>(Args[I])) {
          ++Indent;
          newline();
          printExpr(Args[I]);
          --Indent;
        } else {
          printExpr(Args[I]);
        }
      }
      OS << ")";
      return;
    }
    }
    lift_unreachable("unhandled expression class");
  }

  void printFun(const FunDeclPtr &F) {
    switch (F->getKind()) {
    case FunKind::Lambda: {
      const auto *L = cast<Lambda>(F.get());
      OS << "λ(";
      const auto &Params = L->getParams();
      for (size_t I = 0, E = Params.size(); I != E; ++I) {
        if (I != 0)
          OS << ", ";
        OS << Params[I]->getName();
      }
      OS << ") -> ";
      ++Indent;
      newline();
      printExpr(L->getBody());
      --Indent;
      return;
    }
    case FunKind::UserFun:
      OS << cast<UserFun>(F.get())->getName();
      return;
    case FunKind::Map:
    case FunKind::MapSeq:
    case FunKind::MapVec:
      OS << funKindName(F->getKind()) << "(";
      printFun(cast<AbstractMap>(F.get())->getF());
      OS << ")";
      return;
    case FunKind::MapGlb:
    case FunKind::MapWrg:
    case FunKind::MapLcl: {
      const auto *M = cast<ParallelMap>(F.get());
      OS << funKindName(F->getKind()) << M->getDim() << "(";
      printFun(M->getF());
      OS << ")";
      return;
    }
    case FunKind::ReduceSeq:
      OS << "reduceSeq(";
      printFun(cast<ReduceSeq>(F.get())->getF());
      OS << ")";
      return;
    case FunKind::Id:
      OS << "id";
      return;
    case FunKind::Iterate: {
      const auto *I = cast<Iterate>(F.get());
      OS << "iterate(" << I->getCount() << ", ";
      printFun(I->getF());
      OS << ")";
      return;
    }
    case FunKind::Split:
      OS << "split(" << arith::toString(cast<Split>(F.get())->getFactor())
         << ")";
      return;
    case FunKind::Join:
      OS << "join";
      return;
    case FunKind::Gather:
      OS << "gather(" << cast<Gather>(F.get())->getIndexFun().Name << ")";
      return;
    case FunKind::Scatter:
      OS << "scatter(" << cast<Scatter>(F.get())->getIndexFun().Name << ")";
      return;
    case FunKind::Zip:
      OS << "zip";
      return;
    case FunKind::Unzip:
      OS << "unzip";
      return;
    case FunKind::Get:
      OS << "get(" << cast<Get>(F.get())->getIndex() << ")";
      return;
    case FunKind::Slide: {
      const auto *S = cast<Slide>(F.get());
      OS << "slide(" << arith::toString(S->getSize()) << ", "
         << arith::toString(S->getStep()) << ")";
      return;
    }
    case FunKind::Transpose:
      OS << "transpose";
      return;
    case FunKind::GatherIndices:
      OS << "gatherIndices";
      return;
    case FunKind::AsVector:
      OS << "asVector(" << cast<AsVector>(F.get())->getWidth() << ")";
      return;
    case FunKind::AsScalar:
      OS << "asScalar";
      return;
    case FunKind::ToGlobal:
    case FunKind::ToLocal:
    case FunKind::ToPrivate:
      OS << funKindName(F->getKind()) << "(";
      printFun(cast<AddressSpaceWrapper>(F.get())->getF());
      OS << ")";
      return;
    }
    lift_unreachable("unhandled function kind");
  }
};

} // namespace

std::string ir::printProgram(const LambdaPtr &Program) {
  return IlPrinter().print(Program);
}

std::string ir::printExpr(const ExprPtr &E) {
  return IlPrinter().printTopExpr(E);
}

unsigned ir::programLineCount(const LambdaPtr &Program) {
  std::string Text = printProgram(Program);
  unsigned Lines = 0;
  bool NonEmpty = false;
  for (char C : Text) {
    if (C == '\n') {
      if (NonEmpty)
        ++Lines;
      NonEmpty = false;
    } else if (C != ' ') {
      NonEmpty = true;
    }
  }
  if (NonEmpty)
    ++Lines;
  return Lines;
}
