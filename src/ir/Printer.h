//===- Printer.h - Pretty printer for the Lift IL ----------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints Lift IL programs in the notation of the paper (Listing 1):
/// composition chains one stage per line, read right to left. Also used to
/// measure IL code size for the Table 1 reproduction.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_IR_PRINTER_H
#define LIFT_IR_PRINTER_H

#include "ir/IR.h"

#include <string>

namespace lift {
namespace ir {

/// Renders a program as Lift IL text.
std::string printProgram(const LambdaPtr &Program);

/// Renders an expression as Lift IL text.
std::string printExpr(const ExprPtr &E);

/// Number of non-empty lines in the printed form of \p Program (the code
/// size metric of Table 1).
unsigned programLineCount(const LambdaPtr &Program);

} // namespace ir
} // namespace lift

#endif // LIFT_IR_PRINTER_H
