//===- TypeInference.cpp - Type analysis for the Lift IR --------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/TypeInference.h"

#include "arith/ArithExpr.h"
#include "arith/Bounds.h"
#include "arith/Printer.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/Error.h"

using namespace lift;
using namespace lift::ir;

namespace {

/// Type errors are input-triggered: they unwind as recoverable structured
/// diagnostics to the nearest checked API boundary (see
/// support/Diagnostics.h) instead of aborting the process.
[[noreturn]] void typeError(DiagCode Code, const std::string &Msg,
                            const std::string &Context = "") {
  throwDiag(Code,
            Context.empty() ? DiagLocation()
                            : DiagLocation::inContext(Context),
            "type error: " + Msg);
}

const ArrayType *expectArray(const TypePtr &T, const char *Context) {
  const auto *A = dyn_cast_or_null<ArrayType>(T.get());
  if (!A)
    typeError(DiagCode::TypeExpectsArray,
              std::string(Context) + " expects an array, got " +
                  typeToString(T),
              Context);
  return A;
}

void expectArity(const FunDeclPtr &F, size_t Got) {
  if (F->arity() != Got)
    typeError(DiagCode::TypeArityMismatch,
              std::string(funKindName(F->getKind())) + " expects " +
                  std::to_string(F->arity()) + " argument(s), got " +
                  std::to_string(Got),
              funKindName(F->getKind()));
}

} // namespace

TypePtr ir::checkExpr(const ExprPtr &E) {
  switch (E->getClass()) {
  case ExprClass::Literal:
    if (!E->Ty)
      typeError(DiagCode::TypeUntyped, "literal without a declared type");
    return E->Ty;
  case ExprClass::Param:
    if (!E->Ty)
      typeError(DiagCode::TypeUntyped,
                "parameter '" + cast<Param>(E.get())->getName() +
                    "' used before its type is known");
    return E->Ty;
  case ExprClass::FunCall: {
    const auto *C = cast<FunCall>(E.get());
    std::vector<TypePtr> ArgTypes;
    for (const ExprPtr &A : C->getArgs())
      ArgTypes.push_back(checkExpr(A));
    E->Ty = applyType(C->getFun(), ArgTypes);
    return E->Ty;
  }
  }
  lift_unreachable("unhandled expression class");
}

TypePtr ir::applyType(const FunDeclPtr &F, const std::vector<TypePtr> &Args) {
  expectArity(F, Args.size());
  switch (F->getKind()) {
  case FunKind::Lambda: {
    const auto *L = cast<Lambda>(F.get());
    for (size_t I = 0, E = Args.size(); I != E; ++I)
      L->getParams()[I]->Ty = Args[I];
    return checkExpr(L->getBody());
  }

  case FunKind::UserFun: {
    const auto *U = cast<UserFun>(F.get());
    const auto &Expected = U->getParamTypes();
    for (size_t I = 0, E = Args.size(); I != E; ++I)
      if (!typeEquals(Args[I], Expected[I]))
        typeError(DiagCode::TypeMismatch,
                  "user function '" + U->getName() + "' parameter " +
                  std::to_string(I) + " expects " +
                  typeToString(Expected[I]) + ", got " +
                  typeToString(Args[I]));
    return U->getReturnType();
  }

  case FunKind::Map:
  case FunKind::MapSeq:
  case FunKind::MapGlb:
  case FunKind::MapWrg:
  case FunKind::MapLcl: {
    const auto *M = cast<AbstractMap>(F.get());
    const auto *A = expectArray(Args[0], funKindName(F->getKind()));
    TypePtr ElemResult = applyType(M->getF(), {A->getElementType()});
    return arrayOf(ElemResult, A->getSize());
  }

  case FunKind::MapVec: {
    const auto *M = cast<MapVec>(F.get());
    const auto *V = dyn_cast<VectorType>(Args[0].get());
    if (!V)
      typeError(DiagCode::TypeExpectsVector,
                "mapVec expects a vector, got " + typeToString(Args[0]),
                "mapVec");
    TypePtr Scalar = std::make_shared<ScalarType>(V->getScalarKind());
    TypePtr ElemResult = applyType(M->getF(), {Scalar});
    const auto *RS = dyn_cast<ScalarType>(ElemResult.get());
    if (!RS)
      typeError(DiagCode::TypeExpectsScalar,
                "mapVec function must return a scalar, got " +
                    typeToString(ElemResult),
                "mapVec");
    return vectorOf(RS->getScalarKind(), V->getWidth());
  }

  case FunKind::ReduceSeq: {
    const auto *R = cast<ReduceSeq>(F.get());
    const auto *A = expectArray(Args[1], "reduceSeq");
    TypePtr Acc = applyType(R->getF(), {Args[0], A->getElementType()});
    if (!typeEquals(Acc, Args[0]))
      typeError(DiagCode::TypeMismatch,
                "reduction operator must return the accumulator type " +
                    typeToString(Args[0]) + ", got " + typeToString(Acc),
                "reduceSeq");
    // A reduction produces an array of exactly one element (section 3.2).
    return arrayOf(Args[0], arith::cst(1));
  }

  case FunKind::Id:
    return Args[0];

  case FunKind::Iterate: {
    const auto *I = cast<Iterate>(F.get());
    // The output length h(m, n, g) is inferred by applying the length
    // change g of the body m times (the iteration count is constant).
    TypePtr Cur = Args[0];
    for (int64_t It = 0, N = I->getCount(); It != N; ++It)
      Cur = applyType(I->getF(), {Cur});
    return Cur;
  }

  case FunKind::Split: {
    const auto *S = cast<Split>(F.get());
    const auto *A = expectArray(Args[0], "split");
    // When both lengths are known constants the division must be exact:
    // a silently-floored split drops trailing elements.
    std::optional<int64_t> Size = arith::asConstant(A->getSize());
    std::optional<int64_t> Factor = arith::asConstant(S->getFactor());
    if (Size && Factor && (*Factor <= 0 || *Size % *Factor != 0))
      typeError(DiagCode::TypeIndivisibleSplit,
                "split factor " + arith::toString(S->getFactor()) +
                    " does not divide the array length " +
                    arith::toString(A->getSize()),
                "split");
    return arrayOf(arrayOf(A->getElementType(), S->getFactor()),
                   arith::intDiv(A->getSize(), S->getFactor()));
  }

  case FunKind::Join: {
    const auto *A = expectArray(Args[0], "join");
    const auto *Inner = expectArray(A->getElementType(), "join (inner)");
    return arrayOf(Inner->getElementType(),
                   arith::mul(A->getSize(), Inner->getSize()));
  }

  case FunKind::Gather:
  case FunKind::Scatter: {
    expectArray(Args[0], funKindName(F->getKind()));
    return Args[0];
  }

  case FunKind::Zip: {
    const ArrayType *First = expectArray(Args[0], "zip");
    std::vector<TypePtr> Elements;
    for (const TypePtr &Arg : Args) {
      const auto *A = expectArray(Arg, "zip");
      if (!arith::provablyEqual(A->getSize(), First->getSize()))
        typeError(DiagCode::TypeUnequalLengths,
                  "zip requires equal array lengths: " +
                      arith::toString(First->getSize()) + " vs " +
                      arith::toString(A->getSize()),
                  "zip");
      Elements.push_back(A->getElementType());
    }
    return arrayOf(tupleOf(std::move(Elements)), First->getSize());
  }

  case FunKind::Unzip: {
    const auto *A = expectArray(Args[0], "unzip");
    const auto *T = dyn_cast<TupleType>(A->getElementType().get());
    if (!T)
      typeError(DiagCode::TypeExpectsTuple,
                "unzip expects an array of tuples, got " +
                    typeToString(Args[0]),
                "unzip");
    std::vector<TypePtr> Arrays;
    for (const TypePtr &E : T->getElements())
      Arrays.push_back(arrayOf(E, A->getSize()));
    return tupleOf(std::move(Arrays));
  }

  case FunKind::Get: {
    const auto *G = cast<Get>(F.get());
    const auto *T = dyn_cast<TupleType>(Args[0].get());
    if (!T)
      typeError(DiagCode::TypeExpectsTuple,
                "get expects a tuple, got " + typeToString(Args[0]), "get");
    if (G->getIndex() >= T->getElements().size())
      typeError(DiagCode::TypeIndexOutOfRange,
                "get index " + std::to_string(G->getIndex()) +
                    " out of range for " + typeToString(Args[0]),
                "get");
    return T->getElements()[G->getIndex()];
  }

  case FunKind::Slide: {
    const auto *S = cast<Slide>(F.get());
    const auto *A = expectArray(Args[0], "slide");
    // n elements -> (n - size) / step + 1 windows of length size.
    arith::Expr Windows = arith::add(
        arith::intDiv(arith::sub(A->getSize(), S->getSize()), S->getStep()),
        arith::cst(1));
    return arrayOf(arrayOf(A->getElementType(), S->getSize()), Windows);
  }

  case FunKind::Transpose: {
    const auto *A = expectArray(Args[0], "transpose");
    const auto *Inner = expectArray(A->getElementType(), "transpose (inner)");
    return arrayOf(arrayOf(Inner->getElementType(), A->getSize()),
                   Inner->getSize());
  }

  case FunKind::GatherIndices: {
    const auto *Idx = expectArray(Args[0], "gatherIndices (indices)");
    expectArray(Args[1], "gatherIndices (data)");
    if (!typeEquals(Idx->getElementType(), int32()))
      typeError(DiagCode::TypeMismatch,
                "gatherIndices expects int indices, got " +
                    typeToString(Args[0]),
                "gatherIndices");
    const auto *Data = cast<ArrayType>(Args[1].get());
    return arrayOf(Data->getElementType(), Idx->getSize());
  }

  case FunKind::AsVector: {
    const auto *V = cast<AsVector>(F.get());
    const auto *A = expectArray(Args[0], "asVector");
    const auto *S = dyn_cast<ScalarType>(A->getElementType().get());
    if (!S)
      typeError(DiagCode::TypeExpectsScalar,
                "asVector expects an array of scalars, got " +
                    typeToString(Args[0]),
                "asVector");
    if (std::optional<int64_t> Size = arith::asConstant(A->getSize());
        Size && *Size % V->getWidth() != 0)
      typeError(DiagCode::TypeIndivisibleSplit,
                "asVector width " + std::to_string(V->getWidth()) +
                    " does not divide the array length " +
                    arith::toString(A->getSize()),
                "asVector");
    return arrayOf(vectorOf(S->getScalarKind(), V->getWidth()),
                   arith::intDiv(A->getSize(), arith::cst(V->getWidth())));
  }

  case FunKind::AsScalar: {
    const auto *A = expectArray(Args[0], "asScalar");
    const auto *V = dyn_cast<VectorType>(A->getElementType().get());
    if (!V)
      typeError(DiagCode::TypeExpectsVector,
                "asScalar expects an array of vectors, got " +
                    typeToString(Args[0]),
                "asScalar");
    return arrayOf(std::make_shared<ScalarType>(V->getScalarKind()),
                   arith::mul(A->getSize(), arith::cst(V->getWidth())));
  }

  case FunKind::ToGlobal:
  case FunKind::ToLocal:
  case FunKind::ToPrivate: {
    const auto *W = cast<AddressSpaceWrapper>(F.get());
    return applyType(W->getF(), Args);
  }
  }
  lift_unreachable("unhandled function kind");
}

TypePtr ir::inferProgramTypes(const LambdaPtr &Program) {
  std::vector<TypePtr> ParamTypes;
  for (const ParamPtr &P : Program->getParams()) {
    if (!P->Ty)
      typeError(DiagCode::TypeUntyped,
                "program parameter '" + P->getName() +
                    "' has no declared type");
    ParamTypes.push_back(P->Ty);
  }
  return applyType(Program, ParamTypes);
}
