//===- TypeInference.h - Type analysis for the Lift IR ----------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type analysis stage (section 5.1): infers the type of every
/// expression by traversing the graph following the data flow, starting
/// from the declared types of the program parameters. Array lengths are
/// symbolic arithmetic expressions; pattern applications transform them
/// (e.g. split m : [T]n -> [[T]m]{n/m}).
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_IR_TYPEINFERENCE_H
#define LIFT_IR_TYPEINFERENCE_H

#include "ir/IR.h"

namespace lift {
namespace ir {

/// Infers and annotates the type of \p E and everything it depends on.
/// Parameters and literals must already carry types. Aborts with a
/// diagnostic on ill-typed programs.
TypePtr checkExpr(const ExprPtr &E);

/// Applies \p F to arguments of the given types: binds lambda parameter
/// types, annotates the function body, and returns the result type.
TypePtr applyType(const FunDeclPtr &F, const std::vector<TypePtr> &Args);

/// Infers types for a whole program: every parameter of \p Program must
/// carry a declared type. Returns the program result type.
TypePtr inferProgramTypes(const LambdaPtr &Program);

} // namespace ir
} // namespace lift

#endif // LIFT_IR_TYPEINFERENCE_H
