//===- Types.cpp - The Lift dependent type system --------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/Types.h"

#include "arith/Bounds.h"
#include "arith/Printer.h"
#include "support/Casting.h"
#include "support/Error.h"

#include <sstream>

using namespace lift;
using namespace lift::ir;

Type::~Type() = default;

TypePtr ir::float32() {
  static TypePtr T = std::make_shared<ScalarType>(ScalarKind::Float);
  return T;
}

TypePtr ir::float64() {
  static TypePtr T = std::make_shared<ScalarType>(ScalarKind::Double);
  return T;
}

TypePtr ir::int32() {
  static TypePtr T = std::make_shared<ScalarType>(ScalarKind::Int);
  return T;
}

TypePtr ir::bool1() {
  static TypePtr T = std::make_shared<ScalarType>(ScalarKind::Bool);
  return T;
}

TypePtr ir::vectorOf(ScalarKind S, unsigned Width) {
  return std::make_shared<VectorType>(S, Width);
}

TypePtr ir::tupleOf(std::vector<TypePtr> Elements) {
  return std::make_shared<TupleType>(std::move(Elements));
}

TypePtr ir::arrayOf(TypePtr Element, arith::Expr Size) {
  return std::make_shared<ArrayType>(std::move(Element), std::move(Size));
}

TypePtr ir::array2D(TypePtr Element, arith::Expr Rows, arith::Expr Cols) {
  return arrayOf(arrayOf(std::move(Element), std::move(Cols)),
                 std::move(Rows));
}

bool ir::typeEquals(const TypePtr &A, const TypePtr &B) {
  if (A.get() == B.get())
    return true;
  if (!A || !B || A->getKind() != B->getKind())
    return false;
  switch (A->getKind()) {
  case TypeKind::Scalar:
    return cast<ScalarType>(A.get())->getScalarKind() ==
           cast<ScalarType>(B.get())->getScalarKind();
  case TypeKind::Vector: {
    const auto *VA = cast<VectorType>(A.get());
    const auto *VB = cast<VectorType>(B.get());
    return VA->getScalarKind() == VB->getScalarKind() &&
           VA->getWidth() == VB->getWidth();
  }
  case TypeKind::Tuple: {
    const auto &EA = cast<TupleType>(A.get())->getElements();
    const auto &EB = cast<TupleType>(B.get())->getElements();
    if (EA.size() != EB.size())
      return false;
    for (size_t I = 0, E = EA.size(); I != E; ++I)
      if (!typeEquals(EA[I], EB[I]))
        return false;
    return true;
  }
  case TypeKind::Array: {
    const auto *AA = cast<ArrayType>(A.get());
    const auto *AB = cast<ArrayType>(B.get());
    return typeEquals(AA->getElementType(), AB->getElementType()) &&
           arith::provablyEqual(AA->getSize(), AB->getSize());
  }
  }
  lift_unreachable("unhandled type kind");
}

static const char *scalarName(ScalarKind S) {
  switch (S) {
  case ScalarKind::Float:
    return "float";
  case ScalarKind::Double:
    return "double";
  case ScalarKind::Int:
    return "int";
  case ScalarKind::Bool:
    return "bool";
  }
  lift_unreachable("unhandled scalar kind");
}

std::string ir::typeToString(const TypePtr &T) {
  if (!T)
    return "<null>";
  switch (T->getKind()) {
  case TypeKind::Scalar:
    return scalarName(cast<ScalarType>(T.get())->getScalarKind());
  case TypeKind::Vector: {
    const auto *V = cast<VectorType>(T.get());
    return std::string(scalarName(V->getScalarKind())) +
           std::to_string(V->getWidth());
  }
  case TypeKind::Tuple: {
    std::ostringstream OS;
    OS << "(";
    const auto &Elems = cast<TupleType>(T.get())->getElements();
    for (size_t I = 0, E = Elems.size(); I != E; ++I) {
      if (I != 0)
        OS << ", ";
      OS << typeToString(Elems[I]);
    }
    OS << ")";
    return OS.str();
  }
  case TypeKind::Array: {
    const auto *A = cast<ArrayType>(T.get());
    return "[" + typeToString(A->getElementType()) + "]" +
           arith::toString(A->getSize());
  }
  }
  lift_unreachable("unhandled type kind");
}

static int64_t scalarBytes(ScalarKind S) {
  switch (S) {
  case ScalarKind::Float:
    return 4;
  case ScalarKind::Double:
    return 8;
  case ScalarKind::Int:
    return 4;
  case ScalarKind::Bool:
    return 1;
  }
  lift_unreachable("unhandled scalar kind");
}

arith::Expr ir::sizeInBytes(const TypePtr &T) {
  switch (T->getKind()) {
  case TypeKind::Scalar:
    return arith::cst(scalarBytes(cast<ScalarType>(T.get())->getScalarKind()));
  case TypeKind::Vector: {
    const auto *V = cast<VectorType>(T.get());
    return arith::cst(scalarBytes(V->getScalarKind()) * V->getWidth());
  }
  case TypeKind::Tuple: {
    arith::Expr Sum = arith::cst(0);
    for (const TypePtr &E : cast<TupleType>(T.get())->getElements())
      Sum = arith::add(Sum, sizeInBytes(E));
    return Sum;
  }
  case TypeKind::Array: {
    const auto *A = cast<ArrayType>(T.get());
    return arith::mul(A->getSize(), sizeInBytes(A->getElementType()));
  }
  }
  lift_unreachable("unhandled type kind");
}

arith::Expr ir::elementCount(const TypePtr &T) {
  if (const auto *A = dyn_cast<ArrayType>(T.get()))
    return arith::mul(A->getSize(), elementCount(A->getElementType()));
  return arith::cst(1);
}

TypePtr ir::baseElementType(const TypePtr &T) {
  if (const auto *A = dyn_cast<ArrayType>(T.get()))
    return baseElementType(A->getElementType());
  return T;
}
