//===- Types.h - The Lift dependent type system -----------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Lift type system (section 5.1 of the paper): scalar types, OpenCL
/// vector types, tuple types (structs in OpenCL), and array types that
/// carry their length as a symbolic arithmetic expression. Array types nest
/// to represent multi-dimensional arrays.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_IR_TYPES_H
#define LIFT_IR_TYPES_H

#include "arith/ArithExpr.h"

#include <memory>
#include <string>
#include <vector>

namespace lift {
namespace ir {

class Type;

/// Shared immutable handle to a type.
using TypePtr = std::shared_ptr<const Type>;

enum class TypeKind { Scalar, Vector, Tuple, Array };

/// The scalar types supported by user functions and literals.
enum class ScalarKind { Float, Double, Int, Bool };

/// Base class of all Lift types.
class Type {
  const TypeKind Kind;

protected:
  explicit Type(TypeKind K) : Kind(K) {}

public:
  virtual ~Type();

  TypeKind getKind() const { return Kind; }
};

class ScalarType : public Type {
  ScalarKind Scalar;

public:
  explicit ScalarType(ScalarKind S) : Type(TypeKind::Scalar), Scalar(S) {}

  ScalarKind getScalarKind() const { return Scalar; }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Scalar;
  }
};

/// An OpenCL vector type such as float4.
class VectorType : public Type {
  ScalarKind Scalar;
  unsigned Width;

public:
  VectorType(ScalarKind S, unsigned Width)
      : Type(TypeKind::Vector), Scalar(S), Width(Width) {}

  ScalarKind getScalarKind() const { return Scalar; }
  unsigned getWidth() const { return Width; }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Vector;
  }
};

/// A tuple type, lowered to a struct in OpenCL.
class TupleType : public Type {
  std::vector<TypePtr> Elements;

public:
  explicit TupleType(std::vector<TypePtr> Elements)
      : Type(TypeKind::Tuple), Elements(std::move(Elements)) {}

  const std::vector<TypePtr> &getElements() const { return Elements; }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Tuple;
  }
};

/// An array type carrying a symbolic length.
class ArrayType : public Type {
  TypePtr Element;
  arith::Expr Size;

public:
  ArrayType(TypePtr Element, arith::Expr Size)
      : Type(TypeKind::Array), Element(std::move(Element)),
        Size(std::move(Size)) {}

  const TypePtr &getElementType() const { return Element; }
  const arith::Expr &getSize() const { return Size; }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Array;
  }
};

//===----------------------------------------------------------------------===//
// Factories
//===----------------------------------------------------------------------===//

TypePtr float32();
TypePtr float64();
TypePtr int32();
TypePtr bool1();
TypePtr vectorOf(ScalarKind S, unsigned Width);
TypePtr tupleOf(std::vector<TypePtr> Elements);
TypePtr arrayOf(TypePtr Element, arith::Expr Size);

/// Builds a 2D array type [[Elem]Cols]Rows.
TypePtr array2D(TypePtr Element, arith::Expr Rows, arith::Expr Cols);

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

/// Structural type equality; array lengths are compared with
/// arith::provablyEqual.
bool typeEquals(const TypePtr &A, const TypePtr &B);

/// Human-readable form, e.g. "[[float]M]N" or "(float, int)".
std::string typeToString(const TypePtr &T);

/// The size of one value of this type in bytes (floats, ints: 4; tuples:
/// sum without padding; arrays: element size times length).
arith::Expr sizeInBytes(const TypePtr &T);

/// The total number of scalar elements in a (possibly nested) array type.
arith::Expr elementCount(const TypePtr &T);

/// Strips all array dimensions, returning the ultimate element type.
TypePtr baseElementType(const TypePtr &T);

} // namespace ir
} // namespace lift

#endif // LIFT_IR_TYPES_H
