//===- Lift.h - Umbrella header for the lift-cpp public API -----*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Single include for downstream users:
///
/// \code
/// #include "lift/Lift.h"
/// using namespace lift::ir::dsl;
///
/// auto N = lift::arith::sizeVar("N");
/// ParamPtr X = param("x", arrayOf(float32(), N));
/// LambdaPtr P = lambda({X}, pipe(ExprPtr(X), mapGlb(mySquareFun)));
/// auto K = lift::codegen::compile(P, options);
/// lift::ocl::launch(K, buffers, sizes, launchConfig);
/// \endcode
///
/// Layering (each header can also be included individually):
///   arith  -> ir -> view/passes -> codegen -> ocl
///   rewrite (lowering from the portable high-level IL)
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_LIFT_H
#define LIFT_LIFT_H

#include "arith/ArithExpr.h"
#include "arith/Bounds.h"
#include "arith/Eval.h"
#include "arith/Printer.h"
#include "cast/CPrinter.h"
#include "codegen/Compiler.h"
#include "cparse/CParser.h"
#include "ir/DSL.h"
#include "ir/IR.h"
#include "ir/Prelude.h"
#include "ir/Printer.h"
#include "ir/TypeInference.h"
#include "ocl/Runtime.h"
#include "passes/AddressSpaceInference.h"
#include "passes/BarrierElimination.h"
#include "rewrite/Rules.h"

#endif // LIFT_LIFT_H
