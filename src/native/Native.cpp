//===- Native.cpp - dlopen-based native CPU execution ---------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "native/Native.h"

#include "arith/Eval.h"
#include "native/NativePrinter.h"
#include "ocl/FaultInject.h"
#include "support/FileLock.h"
#include "support/Retry.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#include <dlfcn.h>
#include <sys/stat.h>
#include <unistd.h>

#include "ocl/ThreadPool.h"

using namespace lift;
using namespace lift::native;
using namespace lift::ocl;

namespace {

//===----------------------------------------------------------------------===//
// Toolchain and cache
//===----------------------------------------------------------------------===//

/// Exact-mode flags. -fwrapv matches the interpreter's wrapping int64
/// arithmetic at the C++ level too (the generated code already wraps
/// through uint64 helpers); -ffp-contract=off keeps every double
/// operation a distinct IEEE rounding step so results are bit-identical
/// to the interpreter's; -ffast-math is deliberately absent.
const char *const kBaseFlags =
    "-std=c++17 -O2 -fPIC -shared -fwrapv -ffp-contract=off";

/// Fast-mode flags: the printer already emitted natively-typed scalars
/// and `#pragma omp simd` loops, so the build is allowed to contract
/// (default -ffp-contract) and to use the host ISA. -fwrapv stays: fast
/// mode narrows the int domain, it does not make overflow undefined.
/// -ffast-math remains absent — NaN/Inf propagation is part of the
/// documented fast-mode contract (docs/NATIVE_BACKEND.md).
const char *const kFastFlags =
    "-std=c++17 -O3 -march=native -fPIC -shared -fwrapv";

const char *flagsFor(NativeMode Mode) {
  return Mode == NativeMode::Fast ? kFastFlags : kBaseFlags;
}

bool commandExists(const std::string &Name) {
  std::string Cmd = "command -v " + Name + " >/dev/null 2>&1";
  int RC = std::system(Cmd.c_str());
  return RC == 0;
}

uint64_t fnv1a64(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::string hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

/// Last \p Max characters of a file (compiler stderr for E0604 notes).
std::string fileTail(const std::string &Path, size_t Max = 2000) {
  std::ifstream In(Path);
  if (!In)
    return {};
  std::ostringstream SS;
  SS << In.rdbuf();
  std::string S = SS.str();
  while (!S.empty() && (S.back() == '\n' || S.back() == '\r'))
    S.pop_back();
  if (S.size() > Max)
    S = "..." + S.substr(S.size() - Max);
  return S;
}

/// Files removed at scope exit unless released — failure paths leak no
/// temporaries into the cache directory.
class TempFiles {
public:
  ~TempFiles() {
    for (const std::string &P : Paths)
      ::remove(P.c_str());
  }
  void add(std::string P) { Paths.push_back(std::move(P)); }
  void release() { Paths.clear(); }

private:
  std::vector<std::string> Paths;
};

struct LoadedEntry {
  using EntryFn = int32_t (*)(void **, const int64_t *, int64_t, int32_t *);
  EntryFn Fn = nullptr;
  double CompileMs = 0;
  bool CacheHit = false;
};

bool fileExists(const std::string &P) {
  struct stat St;
  return ::stat(P.c_str(), &St) == 0;
}

bool readFileAll(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

/// FNV-1a of a file's bytes; false when the file cannot be read.
bool hashFileContents(const std::string &Path, uint64_t &H) {
  std::string Bytes;
  if (!readFileAll(Path, Bytes))
    return false;
  H = fnv1a64(Bytes);
  return true;
}

/// Writes \p Data to \p Path via a per-pid temporary and an atomic
/// rename, so a crashed or concurrent writer never leaves a torn file.
bool writeFileAtomic(const std::string &Path, const std::string &Data) {
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    Out << Data;
    if (!Out) {
      ::remove(Tmp.c_str());
      return false;
    }
  }
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    ::remove(Tmp.c_str());
    return false;
  }
  return true;
}

[[noreturn]] void nativeFail(DiagCode Code, const std::string &Kernel,
                             const std::string &Msg,
                             std::vector<std::string> Notes = {}) {
  throwDiag(Code, DiagLocation::inContext(Kernel), "native: " + Msg,
            std::move(Notes));
}

/// Non-fatal degradation notices (E0609/E0611): recorded as warnings when
/// the caller supplied an engine, printed to stderr otherwise.
void nativeWarn(DiagnosticEngine *Engine, DiagCode Code,
                const std::string &Kernel, const std::string &Msg) {
  if (Engine)
    Engine->warning(Code, DiagLocation::inContext(Kernel), "native: " + Msg);
  else
    std::fprintf(stderr, "lift: warning: native: %s\n", Msg.c_str());
}

/// Process-lifetime dlopen handle cache (healthy artifacts are never
/// dlclosed: entry pointers may be cached by callers). File-scope so the
/// integrity gate can evict the handle of an artifact it is about to
/// replace.
std::mutex HandlesM;
std::unordered_map<std::string, void *> Handles;

/// Evicts (and dlcloses) the handle of a corrupt artifact. The dlclose is
/// required for correctness, not hygiene: glibc's dlopen matches
/// already-loaded objects by path, so recompiling to the same path and
/// re-dlopening would hand back the stale mapping of the corrupt file —
/// whose pages may no longer even be backed (SIGBUS on execution when the
/// file was truncated in place). Dropping the last reference unmaps it so
/// the replacement artifact really gets loaded.
void invalidateHandle(const std::string &SoPath) {
  std::lock_guard<std::mutex> L(HandlesM);
  auto It = Handles.find(SoPath);
  if (It == Handles.end())
    return;
  ::dlclose(It->second);
  Handles.erase(It);
}

/// Compiles (or reuses) the shared object for \p Source and resolves the
/// kernel entry point. Throws DiagnosticError on every failure; the
/// injected-fault sites fire before the operation they model so a faulted
/// run performs no partial work. Transient steps (compile, dlopen, dlsym,
/// sidecar write) run under the deterministic retry policy. A cached .so
/// is reused only when its bytes match the content hash recorded in the
/// <Key>.hash sidecar; a mismatched, truncated or unreadable artifact is
/// evicted and recompiled with an E0611 warning into \p Engine.
LoadedEntry loadEntry(const std::string &Source, const std::string &Flags,
                      const std::string &Key, const std::string &Kernel,
                      DiagnosticEngine *Engine) {
  LoadedEntry R;

  const std::string Compiler = toolchainCompiler();
  if (Compiler.empty())
    nativeFail(DiagCode::NativeToolchainMissing, Kernel,
               "no usable C++ compiler found",
               {"set LIFT_NATIVE_CXX or install c++/g++/clang++; the "
                "simulator backend needs no toolchain"});

  const std::string Dir = cacheDirectory();
  const std::string SoPath = Dir + "/" + Key + ".so";
  const std::string HashPath = Dir + "/" + Key + ".hash";

  const retry::Policy Pol = retry::Policy::fromEnv();

  bool NeedCompile = true;
  if (fileExists(SoPath)) {
    // Integrity gate on reuse: the filename key only proves what source
    // the artifact was compiled *for*, not that its bytes are intact. A
    // truncated or swapped .so must recompile, never reach dlopen.
    std::string Why;
    if (fault::shouldFail(fault::Site::CacheRead)) {
      Why = "injected fault: reading the native artifact cache failed";
    } else {
      std::string Stored;
      uint64_t Actual = 0;
      if (!readFileAll(HashPath, Stored))
        Why = "no content hash recorded for '" + SoPath + "'";
      else if (!hashFileContents(SoPath, Actual))
        Why = "could not read '" + SoPath + "' back";
      else {
        while (!Stored.empty() &&
               (Stored.back() == '\n' || Stored.back() == '\r'))
          Stored.pop_back();
        if (Stored != hex16(Actual))
          Why = "content hash mismatch for '" + SoPath +
                "' (truncated or swapped artifact)";
      }
    }
    if (Why.empty()) {
      NeedCompile = false;
      R.CacheHit = true;
    } else {
      nativeWarn(Engine, DiagCode::NativeArtifactCorrupt, Kernel,
                 "cached shared object failed its integrity check; "
                 "recompiling (" + Why + ")");
      invalidateHandle(SoPath);
      ::remove(SoPath.c_str());
      ::remove(HashPath.c_str());
    }
  }

  if (NeedCompile) {
    // Cross-process single-flight: two processes cold-starting on the
    // same key serialize here, and the loser reuses the winner's
    // artifact instead of compiling it again. Best-effort — an unlocked
    // fall-through is still safe (atomic rename, last writer wins).
    support::FileLock Lock = support::FileLock::acquire(SoPath + ".lock");
    if (Lock.locked() && fileExists(SoPath)) {
      std::string Stored;
      uint64_t Actual = 0;
      if (readFileAll(HashPath, Stored) && hashFileContents(SoPath, Actual)) {
        while (!Stored.empty() &&
               (Stored.back() == '\n' || Stored.back() == '\r'))
          Stored.pop_back();
        if (Stored == hex16(Actual)) {
          NeedCompile = false;
          R.CacheHit = true;
        }
      }
    }
  }

  if (NeedCompile) {
    support::FileLock Lock = support::FileLock::acquire(SoPath + ".lock");
    retry::runWithRetry(Pol, "native compile", [&] {
      if (fault::shouldFail(fault::Site::NativeCompile))
        nativeFail(DiagCode::RuntimeFaultInjected, Kernel,
                   "injected fault: compiling the native kernel failed");

      const std::string Tag = Key + "." + std::to_string(::getpid());
      const std::string CppTmp = Dir + "/" + Tag + ".tmp.cpp";
      const std::string SoTmp = Dir + "/" + Tag + ".tmp.so";
      const std::string ErrTmp = Dir + "/" + Tag + ".tmp.err";
      TempFiles Tmp;
      Tmp.add(CppTmp);
      Tmp.add(SoTmp);
      Tmp.add(ErrTmp);

      {
        std::ofstream Out(CppTmp);
        Out << Source;
        if (!Out)
          nativeFail(DiagCode::NativeCompileFailed, Kernel,
                     "could not write the generated source to '" + CppTmp +
                         "'");
      }

      auto Start = std::chrono::steady_clock::now();
      auto Run = [&](bool OpenMP) {
        std::string Cmd = Compiler + " " + Flags +
                          (OpenMP ? " -fopenmp" : "") + " -o " + SoTmp + " " +
                          CppTmp + " 2> " + ErrTmp;
        return std::system(Cmd.c_str());
      };
      // Prefer OpenMP; fall back to a serial build when the toolchain has
      // no OpenMP runtime (the generated pragma is _OPENMP-guarded).
      int RC = Run(/*OpenMP=*/true);
      if (RC != 0)
        RC = Run(/*OpenMP=*/false);
      R.CompileMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
      if (RC != 0) {
        std::string Tail = fileTail(ErrTmp);
        std::vector<std::string> Notes;
        if (!Tail.empty())
          Notes.push_back("compiler output: " + Tail);
        Notes.push_back("command: " + Compiler + " " + Flags);
        nativeFail(DiagCode::NativeCompileFailed, Kernel,
                   "the system compiler rejected the generated source",
                   std::move(Notes));
      }
      if (::rename(SoTmp.c_str(), SoPath.c_str()) != 0)
        nativeFail(DiagCode::NativeCompileFailed, Kernel,
                   "could not move the compiled object into the cache at '" +
                       SoPath + "'");
      // The .so is in place; the source and stderr temporaries are
      // removed by TempFiles (SoTmp no longer exists, remove is a no-op).
    });

    // Record the content hash the integrity gate checks on reuse. Failure
    // is a degradation, not an error: this process dlopens the artifact
    // it just built, the next one recompiles.
    try {
      retry::runWithRetry(Pol, "native cache write", [&] {
        if (fault::shouldFail(fault::Site::CacheWrite))
          throwDiag(DiagCode::CacheWriteFailed,
                    DiagLocation::inContext(Kernel),
                    "native: injected fault: persisting the artifact "
                    "content hash failed");
        uint64_t H = 0;
        if (!hashFileContents(SoPath, H) ||
            !writeFileAtomic(HashPath, hex16(H) + "\n"))
          throwDiag(DiagCode::CacheWriteFailed,
                    DiagLocation::inContext(Kernel),
                    "native: could not persist the artifact content hash "
                    "to '" + HashPath + "'");
      });
    } catch (const DiagnosticError &E) {
      nativeWarn(Engine, DiagCode::CacheWriteFailed, Kernel,
                 "artifact content hash not persisted; the next process "
                 "will recompile (" + E.Diag.Message + ")");
    }
  }

  retry::runWithRetry(Pol, "native load", [&] {
    // The load fault fires before the in-process handle cache is
    // consulted so a seeded sweep hits it deterministically on every
    // launch.
    if (fault::shouldFail(fault::Site::NativeLoad))
      nativeFail(DiagCode::RuntimeFaultInjected, Kernel,
                 "injected fault: loading the native kernel object failed");

    void *Handle = nullptr;
    {
      std::lock_guard<std::mutex> L(HandlesM);
      auto It = Handles.find(SoPath);
      if (It != Handles.end())
        Handle = It->second;
    }
    if (!Handle) {
      Handle = ::dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
      if (!Handle) {
        const char *Err = ::dlerror();
        nativeFail(DiagCode::NativeLoadFailed, Kernel,
                   "dlopen failed for '" + SoPath + "'",
                   {Err ? Err : "no dlerror detail"});
      }
      std::lock_guard<std::mutex> L(HandlesM);
      Handles.emplace(SoPath, Handle);
    }

    if (fault::shouldFail(fault::Site::NativeSym))
      nativeFail(DiagCode::RuntimeFaultInjected, Kernel,
                 "injected fault: resolving the native kernel entry failed");

    void *Sym = ::dlsym(Handle, kEntryName);
    if (!Sym)
      nativeFail(DiagCode::NativeSymbolMissing, Kernel,
                 std::string("entry symbol '") + kEntryName +
                     "' not found in '" + SoPath + "'");
    R.Fn = reinterpret_cast<LoadedEntry::EntryFn>(Sym);
  });
  return R;
}

//===----------------------------------------------------------------------===//
// Marshalling
//===----------------------------------------------------------------------===//

/// Flattened element layout: one entry per 8-byte word, true = double
/// domain, false = int64 domain. Mirrors the generated struct/vector
/// lowering, whose members are all 8-byte doubles and int64s (no
/// padding).
struct WordLayout {
  std::vector<bool> FloatWord;
  size_t words() const { return FloatWord.size(); }
};

void layoutType(const c::CTypePtr &T, WordLayout &L,
                const std::string &Kernel) {
  if (!T)
    nativeFail(DiagCode::NativeUnsupported, Kernel,
               "buffer element of unknown type");
  switch (T->getKind()) {
  case c::CTypeKind::Scalar: {
    auto K = static_cast<const c::ScalarCType &>(*T).getScalarKind();
    L.FloatWord.push_back(K == c::CScalarKind::Float ||
                          K == c::CScalarKind::Double);
    return;
  }
  case c::CTypeKind::Vector: {
    unsigned W = static_cast<const c::VectorCType &>(*T).getWidth();
    for (unsigned I = 0; I != W; ++I)
      L.FloatWord.push_back(true);
    return;
  }
  case c::CTypeKind::Struct: {
    for (const auto &[Name, FieldTy] :
         static_cast<const c::StructCType &>(*T).getFields()) {
      (void)Name;
      layoutType(FieldTy, L, Kernel);
    }
    return;
  }
  case c::CTypeKind::Void:
  case c::CTypeKind::Pointer:
    nativeFail(DiagCode::NativeUnsupported, Kernel,
               "buffer element of non-value type");
  }
}

inline uint64_t doubleBits(double D) {
  uint64_t U;
  std::memcpy(&U, &D, sizeof(U));
  return U;
}

inline double bitsDouble(uint64_t U) {
  double D;
  std::memcpy(&D, &U, sizeof(D));
  return D;
}

/// Leaf writers over a raw byte cursor. Exact mode stores every leaf as
/// an 8-byte word (double bit pattern / wrapped int64, matching the
/// generated `lift_f = double` / `lift_i = int64_t` typedefs) and is
/// bit-preserving in both directions. Fast mode stores natively-typed
/// 4-byte leaves (`float` / `int32_t`): marshalling rounds the double to
/// the nearest float and truncates the int64, exactly the conversions
/// the generated fast-mode loads and stores would perform themselves.
inline void writeFloatLeaf(unsigned char *&P, bool Fast, double D) {
  if (Fast) {
    float F = static_cast<float>(D);
    std::memcpy(P, &F, sizeof(F));
    P += sizeof(F);
  } else {
    uint64_t U = doubleBits(D);
    std::memcpy(P, &U, sizeof(U));
    P += sizeof(U);
  }
}

inline void writeIntLeaf(unsigned char *&P, bool Fast, int64_t V) {
  if (Fast) {
    int32_t I = static_cast<int32_t>(V);
    std::memcpy(P, &I, sizeof(I));
    P += sizeof(I);
  } else {
    uint64_t U = static_cast<uint64_t>(V);
    std::memcpy(P, &U, sizeof(U));
    P += sizeof(U);
  }
}

inline double readFloatLeaf(const unsigned char *&P, bool Fast) {
  if (Fast) {
    float F;
    std::memcpy(&F, P, sizeof(F));
    P += sizeof(F);
    return static_cast<double>(F);
  }
  uint64_t U;
  std::memcpy(&U, P, sizeof(U));
  P += sizeof(U);
  return bitsDouble(U);
}

inline int64_t readIntLeaf(const unsigned char *&P, bool Fast) {
  if (Fast) {
    int32_t I;
    std::memcpy(&I, P, sizeof(I));
    P += sizeof(I);
    return static_cast<int64_t>(I);
  }
  uint64_t U;
  std::memcpy(&U, P, sizeof(U));
  P += sizeof(U);
  return static_cast<int64_t>(U);
}

/// Writes one simulator Value into the arena following the element type
/// shape; scalar values broadcast into vector/struct leaves exactly like
/// the interpreter's reads would convert them.
void marshalValue(const c::CTypePtr &T, const Value &V, unsigned char *&P,
                  bool Fast) {
  switch (T->getKind()) {
  case c::CTypeKind::Scalar: {
    auto K = static_cast<const c::ScalarCType &>(*T).getScalarKind();
    if (K == c::CScalarKind::Float || K == c::CScalarKind::Double)
      writeFloatLeaf(P, Fast, V.asFloat());
    else
      writeIntLeaf(P, Fast, V.asInt());
    return;
  }
  case c::CTypeKind::Vector: {
    unsigned W = static_cast<const c::VectorCType &>(*T).getWidth();
    if (V.K == Value::Vec && V.V.size() == W) {
      for (unsigned I = 0; I != W; ++I)
        writeFloatLeaf(P, Fast, V.V[I]);
    } else {
      double S = V.asFloat(); // scalar element: broadcast, like the
                              // interpreter's per-component reads
      for (unsigned I = 0; I != W; ++I)
        writeFloatLeaf(P, Fast, S);
    }
    return;
  }
  case c::CTypeKind::Struct: {
    const auto &Fields = static_cast<const c::StructCType &>(*T).getFields();
    if (V.K == Value::Tup && V.T.size() == Fields.size()) {
      for (size_t I = 0; I != Fields.size(); ++I)
        marshalValue(Fields[I].second, V.T[I], P, Fast);
    } else {
      for (const auto &[Name, FieldTy] : Fields) {
        (void)Name;
        marshalValue(FieldTy, V, P, Fast);
      }
    }
    return;
  }
  default:
    return; // rejected by layoutType already
  }
}

/// Rebuilds a simulator Value from the bytes the native kernel wrote.
Value unmarshalValue(const c::CTypePtr &T, const unsigned char *&P,
                     bool Fast) {
  switch (T->getKind()) {
  case c::CTypeKind::Scalar: {
    auto K = static_cast<const c::ScalarCType &>(*T).getScalarKind();
    if (K == c::CScalarKind::Float || K == c::CScalarKind::Double)
      return Value::makeFloat(readFloatLeaf(P, Fast));
    return Value::makeInt(readIntLeaf(P, Fast));
  }
  case c::CTypeKind::Vector: {
    unsigned W = static_cast<const c::VectorCType &>(*T).getWidth();
    VecN Comps;
    Comps.reserve(W);
    for (unsigned I = 0; I != W; ++I)
      Comps.push_back(readFloatLeaf(P, Fast));
    return Value::makeVec(std::move(Comps));
  }
  case c::CTypeKind::Struct: {
    const auto &Fields = static_cast<const c::StructCType &>(*T).getFields();
    std::vector<Value> Elems;
    Elems.reserve(Fields.size());
    for (const auto &[Name, FieldTy] : Fields) {
      (void)Name;
      Elems.push_back(unmarshalValue(FieldTy, P, Fast));
    }
    return Value::makeTuple(std::move(Elems));
  }
  default:
    return Value();
  }
}

/// Value-count to simulated-byte conversion, saturating — the same
/// accounting the interpreter's memory cap uses, so a launch trips the
/// cap identically on either backend.
inline uint64_t simBytesFor(uint64_t Count) {
  if (Count > std::numeric_limits<uint64_t>::max() / sizeof(Value))
    return std::numeric_limits<uint64_t>::max();
  return Count * sizeof(Value);
}

//===----------------------------------------------------------------------===//
// Launch
//===----------------------------------------------------------------------===//

struct MarshalledParam {
  const codegen::KernelParamInfo *Param = nullptr;
  Buffer *Caller = nullptr; ///< null for compiler temporaries
  WordLayout Layout;
  size_t Elements = 0;
  bool Written = true; ///< may the kernel store through this buffer?
};

/// Per-artifact launch state that survives across launches, keyed by the
/// same fnv1a hash that names the on-disk .so. The write-set analysis
/// runs once per artifact; the marshalling arenas keep their capacity
/// between launches so a cache-hit launch re-fills memory instead of
/// re-allocating it. The arenas are taken with try_lock — a concurrent
/// launch of the same artifact falls back to launch-local storage rather
/// than serializing. Note the .so integrity gate in loadEntry still runs
/// on every launch; the plan deliberately caches nothing that gate
/// protects.
struct LaunchPlan {
  std::once_flag Init;
  std::vector<bool> WrittenBuffers; ///< nativeWrittenBuffers(K), once
  std::mutex ArenaM;
  std::vector<std::vector<unsigned char>> Arenas;
  std::vector<std::vector<unsigned char>> Saved;
};

std::mutex PlansM;
std::unordered_map<std::string, std::shared_ptr<LaunchPlan>> &plans() {
  static auto *P =
      new std::unordered_map<std::string, std::shared_ptr<LaunchPlan>>();
  return *P;
}

std::shared_ptr<LaunchPlan> planFor(const std::string &Key) {
  std::lock_guard<std::mutex> L(PlansM);
  std::shared_ptr<LaunchPlan> &P = plans()[Key];
  if (!P)
    P = std::make_shared<LaunchPlan>();
  return P;
}

NativeLaunchResult launchNativeImpl(const codegen::CompiledKernel &K,
                                    const std::vector<Buffer *> &Buffers,
                                    const std::map<std::string, int64_t> &Sizes,
                                    const LaunchConfig &Cfg,
                                    DiagnosticEngine *Engine,
                                    NativeMode Mode) {
  const std::string Kernel =
      K.Module.Kernel ? K.Module.Kernel->Name : std::string("kernel");

  // NDRange validation: same checks and messages as the simulator.
  for (int D = 0; D != 3; ++D) {
    if (Cfg.Local[D] <= 0 || Cfg.Global[D] <= 0)
      throwDiag(DiagCode::RuntimeBadNDRange, DiagLocation(),
                "launch: degenerate NDRange in dimension " +
                    std::to_string(D) + ": global size " +
                    std::to_string(Cfg.Global[D]) + ", local size " +
                    std::to_string(Cfg.Local[D]) +
                    " (both must be positive)");
    if (Cfg.Global[D] % Cfg.Local[D] != 0)
      throwDiag(DiagCode::RuntimeBadNDRange, DiagLocation(),
                "launch: global size " + std::to_string(Cfg.Global[D]) +
                    " is not divisible by local size " +
                    std::to_string(Cfg.Local[D]) + " in dimension " +
                    std::to_string(D));
  }

  const ExecLimits Lim = ExecLimits::withEnvDefaults(Cfg.Limits);

  // Lower to C++ (throws E0607 for out-of-subset constructs) and build.
  // The artifact key covers source, flags and compiler, so the two modes
  // never share a .so or a launch plan.
  NativeLaunchResult Result;
  Result.Source = printNativeModule(K, Cfg.Global, Cfg.Local, Mode);
  const std::string Flags = flagsFor(Mode);
  const std::string Key =
      hex16(fnv1a64(Result.Source + "|" + Flags + "|" + toolchainCompiler()));
  LoadedEntry Entry = loadEntry(Result.Source, Flags, Key, Kernel, Engine);
  Result.CompileMs = Entry.CompileMs;
  Result.CacheHit = Entry.CacheHit;

  // Argument binding, mirroring the simulator's LaunchPlan::setup.
  // Pass 1: size parameters, so temporary extents can be evaluated.
  std::unordered_map<unsigned, int64_t> SizeEnv;
  std::unordered_map<const codegen::KernelParamInfo *, int64_t> ScalarVals;
  for (const auto &P : K.Params) {
    if (!P.IsSizeParam)
      continue;
    auto It = Sizes.find(P.Var->Name);
    if (It == Sizes.end())
      throwDiag(DiagCode::RuntimeBadLaunch, DiagLocation(),
                "launch: missing size argument '" + P.Var->Name + "'");
    SizeEnv[P.ArithId] = It->second;
    ScalarVals[&P] = It->second;
  }

  arith::EvalContext SizeCtx;
  SizeCtx.VarValue = [&](const arith::VarNode &V) -> int64_t {
    auto It = SizeEnv.find(V.getId());
    if (It == SizeEnv.end())
      throwDiag(DiagCode::RuntimeBadLaunch, DiagLocation(),
                "launch: unbound size variable " + V.getName());
    return It->second;
  };

  auto RuntimeError = [&](const std::string &Msg,
                          DiagCode Code) -> void {
    throwDiag(Code, DiagLocation::inContext(Kernel), "runtime: " + Msg);
  };

  // Pass 2 (declaration order): scalar-by-value parameters from Sizes,
  // pointer parameters greedily bound to the caller's buffers, the rest
  // allocated as zeroed temporaries, all charged against the memory cap.
  uint64_t MemLeft = Lim.MaxMemoryBytes;
  auto Charge = [&](uint64_t Bytes, const std::string &What,
                    const std::string &Name) {
    if (Lim.MaxMemoryBytes == 0)
      return;
    if (Bytes > MemLeft)
      RuntimeError("device memory limit of " +
                       std::to_string(Lim.MaxMemoryBytes) +
                       " bytes exceeded while " + What + " '" + Name + "' (" +
                       std::to_string(Bytes) + " bytes)",
                   DiagCode::RuntimeMemoryLimit);
    MemLeft -= Bytes;
  };

  std::vector<MarshalledParam> Pointers;
  size_t NextBuffer = 0;
  for (const auto &P : K.Params) {
    if (P.IsSizeParam || !P.Store)
      continue;
    if (!P.Store->NumElements) {
      auto It = Sizes.find(P.Var->Name);
      if (It == Sizes.end())
        throwDiag(DiagCode::RuntimeBadLaunch, DiagLocation(),
                  "launch: missing scalar argument '" + P.Var->Name + "'");
      ScalarVals[&P] = It->second;
      continue;
    }
    MarshalledParam M;
    M.Param = &P;
    layoutType(P.Store->ElemType, M.Layout, Kernel);
    if (NextBuffer < Buffers.size()) {
      Buffer *B = Buffers[NextBuffer];
      if (B->Poisoned)
        throwDiag(DiagCode::HostBadBuffer, DiagLocation(),
                  "launch: buffer for parameter '" + P.Var->Name +
                      "' was poisoned by an earlier cancelled launch",
                  {"rewrite the buffer or call clearPoison() to reuse it"});
      if (fault::shouldFail(fault::Site::BufferMap))
        RuntimeError("injected fault: mapping the buffer for parameter '" +
                         P.Var->Name + "' failed",
                     DiagCode::RuntimeFaultInjected);
      Charge(simBytesFor(B->size()), "mapping the buffer for parameter",
             P.Var->Name);
      M.Caller = B;
      M.Elements = B->size();
      ++NextBuffer;
    } else {
      int64_t Count = arith::evaluate(P.Store->NumElements, SizeCtx);
      if (Count < 0)
        throwDiag(DiagCode::RuntimeBadLaunch, DiagLocation(),
                  "launch: temporary buffer '" + P.Var->Name +
                      "' has negative element count " +
                      std::to_string(Count));
      Charge(simBytesFor(static_cast<uint64_t>(Count)),
             "allocating temporary buffer", P.Var->Name);
      if (fault::shouldFail(fault::Site::Alloc))
        RuntimeError("injected fault: allocating temporary buffer '" +
                         P.Var->Name + "' failed",
                     DiagCode::RuntimeFaultInjected);
      M.Elements = static_cast<size_t>(Count);
    }
    Pointers.push_back(std::move(M));
  }
  if (NextBuffer != Buffers.size())
    throwDiag(DiagCode::RuntimeBadLaunch, DiagLocation(),
              "launch: too many buffers supplied");

  // Launch-plan lookup: write-set analysis once per artifact, arenas
  // reused across launches (try_lock; a concurrent launch of the same
  // artifact uses launch-local arenas instead of waiting).
  std::shared_ptr<LaunchPlan> Plan = planFor(Key);
  std::call_once(Plan->Init,
                 [&] { Plan->WrittenBuffers = nativeWrittenBuffers(K); });
  std::unique_lock<std::mutex> ArenaLock(Plan->ArenaM, std::try_to_lock);
  std::vector<std::vector<unsigned char>> LocalArenas, LocalSaved;
  std::vector<std::vector<unsigned char>> &Arenas =
      ArenaLock.owns_lock() ? Plan->Arenas : LocalArenas;
  std::vector<std::vector<unsigned char>> &Saved =
      ArenaLock.owns_lock() ? Plan->Saved : LocalSaved;
  Arenas.resize(Pointers.size());
  Saved.resize(Pointers.size());

  // Marshal into flat leaf arrays (temporaries stay zero — the bit
  // pattern of 0.0 and 0 alike), keeping a pre-launch copy of caller
  // buffers for the unchanged-element readback below — except buffers
  // the write-set analysis proved the kernel never stores through, whose
  // copy and readback are skipped outright. Only bytes actually used
  // this launch are charged against the host high-water accounting; the
  // retained arena capacity is idle between launches.
  const bool Fast = Mode == NativeMode::Fast;
  const size_t LeafBytes = Fast ? 4 : 8;
  const auto MarshalStart = std::chrono::steady_clock::now();
  uint64_t MarshalledBytes = 0;
  for (size_t Pi = 0; Pi != Pointers.size(); ++Pi) {
    MarshalledParam &M = Pointers[Pi];
    M.Written =
        Pi < Plan->WrittenBuffers.size() ? Plan->WrittenBuffers[Pi] : true;
    std::vector<unsigned char> &A = Arenas[Pi];
    A.assign(M.Elements * M.Layout.words() * LeafBytes, 0);
    MarshalledBytes += A.size();
    if (!M.Caller) {
      Saved[Pi].clear();
      continue;
    }
    unsigned char *P = A.data();
    for (size_t I = 0; I != M.Elements; ++I)
      marshalValue(M.Param->Store->ElemType, M.Caller->at(I), P, Fast);
    if (M.Written) {
      Saved[Pi] = A;
      MarshalledBytes += Saved[Pi].size();
    } else {
      Saved[Pi].clear();
    }
  }
  Result.MarshalMs += std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - MarshalStart)
                          .count();
  HostBytesCharge HostCharge(MarshalledBytes);

  // Entry arguments: pointer params in declaration order, then the
  // scalar words in declaration order — exactly the layout the printer
  // emitted unpacking code for.
  std::vector<void *> Bufs;
  Bufs.reserve(Pointers.size());
  for (std::vector<unsigned char> &A : Arenas)
    Bufs.push_back(static_cast<void *>(A.data()));
  std::vector<int64_t> Scalars;
  for (const auto &P : K.Params) {
    const bool IsBuffer =
        !P.IsSizeParam && P.Store && P.Store->NumElements != nullptr;
    if (IsBuffer)
      continue;
    auto It = ScalarVals.find(&P);
    Scalars.push_back(It != ScalarVals.end() ? It->second : 0);
  }

  const int64_t Threads =
      static_cast<int64_t>(resolveThreadCount(Cfg.Threads));
  Result.Threads = Threads;

  // Control block: [0] cancel flag, [1] error code (first error wins),
  // [2..5] two int64 details (index, extent) in 32-bit halves.
  int32_t Ctl[6] = {0, 0, 0, 0, 0, 0};

  // Mid-execution fault sites on the ctl-protocol path: an armed group
  // dispatch / step chunk fault cancels the launch through the same
  // cancel flag the generated group loop polls for the deadline, so the
  // kernel skips its remaining groups cooperatively — never a hang.
  bool InjectedCancel = false;
  fault::Site InjectedCancelSite = fault::Site::GroupDispatch;
  if (fault::shouldFail(fault::Site::GroupDispatch)) {
    InjectedCancel = true;
    InjectedCancelSite = fault::Site::GroupDispatch;
  } else if (fault::shouldFail(fault::Site::StepChunk)) {
    InjectedCancel = true;
    InjectedCancelSite = fault::Site::StepChunk;
  }
  if (InjectedCancel)
    __atomic_store_n(&Ctl[0], 1, __ATOMIC_RELAXED);

  // Host-side watchdog for the wall-clock deadline: the generated group
  // loop polls ctl[0] and skips remaining groups once it is set.
  std::mutex DoneM;
  std::condition_variable DoneCV;
  bool Done = false;
  std::thread Watchdog;
  if (Lim.TimeoutMs > 0) {
    Watchdog = std::thread([&, Deadline = std::chrono::steady_clock::now() +
                                          std::chrono::milliseconds(
                                              Lim.TimeoutMs)] {
      std::unique_lock<std::mutex> L(DoneM);
      if (!DoneCV.wait_until(L, Deadline, [&] { return Done; }))
        __atomic_store_n(&Ctl[0], 1, __ATOMIC_RELAXED);
    });
  }

  auto Start = std::chrono::steady_clock::now();
  int32_t RC = Entry.Fn(Bufs.data(), Scalars.data(), Threads, Ctl);
  Result.WallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();

  if (Watchdog.joinable()) {
    {
      std::lock_guard<std::mutex> L(DoneM);
      Done = true;
    }
    DoneCV.notify_all();
    Watchdog.join();
  }

  // Execution has happened: any failure from here on leaves partial
  // writes, so the caller's buffers are poisoned like a cancelled
  // simulator launch.
  auto PoisonAll = [&] {
    for (MarshalledParam &M : Pointers)
      if (M.Caller)
        M.Caller->Poisoned = true;
  };

  // An injected mid-execution cancellation outranks any error code the
  // (cancelled) kernel may have produced; the message matches the
  // simulator's E0515 shape so the fallback matrix can compare them.
  if (InjectedCancel) {
    PoisonAll();
    throwDiag(DiagCode::RuntimeFaultMidExec, DiagLocation::inContext(Kernel),
              std::string("runtime: injected ") +
                  fault::siteName(InjectedCancelSite) +
                  " fault cancelled the launch",
              {"the launch was cancelled; its buffers are poisoned until "
               "rewritten"});
  }

  const int32_t ErrCode = __atomic_load_n(&Ctl[1], __ATOMIC_RELAXED);
  if (ErrCode == 504) {
    PoisonAll();
    RuntimeError("integer division by zero", DiagCode::RuntimeDivByZero);
  }
  if (ErrCode == 502) {
    PoisonAll();
    RuntimeError("lookup out of bounds", DiagCode::RuntimeOutOfBounds);
  }
  if (ErrCode == 5031 || ErrCode == 5032) {
    PoisonAll();
    auto Detail = [&](int Lo) -> int64_t {
      uint64_t L = static_cast<uint32_t>(Ctl[Lo]);
      uint64_t H = static_cast<uint32_t>(Ctl[Lo + 1]);
      return static_cast<int64_t>(L | (H << 32));
    };
    RuntimeError(std::string(ErrCode == 5031 ? "load" : "store") +
                     " out of bounds: index " + std::to_string(Detail(2)) +
                     " of " + std::to_string(Detail(4)),
                 DiagCode::RuntimeOutOfBounds);
  }
  if (ErrCode == 5033 || ErrCode == 5034) {
    // Data-dependent vector access past the buffer: the interpreter's
    // message carries no index/extent detail, so neither does ours.
    PoisonAll();
    RuntimeError(ErrCode == 5033 ? "vload out of bounds"
                                 : "vstore out of bounds",
                 DiagCode::RuntimeOutOfBounds);
  }
  if (ErrCode != 0) {
    PoisonAll();
    RuntimeError("native kernel reported unknown error code " +
                     std::to_string(ErrCode),
                 DiagCode::RuntimeUnsupported);
  }
  if (RC != 0 || __atomic_load_n(&Ctl[0], __ATOMIC_RELAXED) != 0) {
    PoisonAll();
    throwDiag(DiagCode::RuntimeDeadline, DiagLocation::inContext(Kernel),
              "runtime: wall-clock deadline of " +
                  std::to_string(Lim.TimeoutMs) + " ms exceeded",
              {"the native watchdog cancelled the launch"});
  }

  // Read back: elements whose bytes are bit-identical to the marshalled
  // input keep their original simulator Value (preserving e.g. the exact
  // Int/Flt kind of untouched elements); changed elements are rebuilt
  // from the lowered representation. Buffers the kernel provably never
  // writes skip the whole pass — their Values are untouched by
  // construction.
  const auto ReadbackStart = std::chrono::steady_clock::now();
  for (size_t Pi = 0; Pi != Pointers.size(); ++Pi) {
    MarshalledParam &M = Pointers[Pi];
    if (!M.Caller)
      continue;
    if (M.Written) {
      const size_t EB = M.Layout.words() * LeafBytes;
      for (size_t I = 0; I != M.Elements; ++I) {
        const unsigned char *In = Saved[Pi].data() + I * EB;
        const unsigned char *Out = Arenas[Pi].data() + I * EB;
        if (std::memcmp(In, Out, EB) == 0)
          continue;
        const unsigned char *Cursor = Out;
        M.Caller->at(I) =
            unmarshalValue(M.Param->Store->ElemType, Cursor, Fast);
      }
    }
    // Native runs cannot track per-element initialization; a completed
    // launch marks the whole buffer initialized (the simulator remains
    // the backend that audits uninitialized reads).
    if (M.Caller->Init)
      std::fill(M.Caller->Init->begin(), M.Caller->Init->end(), uint8_t(1));
  }
  Result.MarshalMs += std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - ReadbackStart)
                          .count();

  return Result;
}

} // namespace

std::string native::toolchainCompiler() {
  static std::string Cached = [] {
    if (const char *Env = std::getenv("LIFT_NATIVE_CXX")) {
      if (*Env)
        return std::string(Env);
    }
    for (const char *Candidate : {"c++", "g++", "clang++"})
      if (commandExists(Candidate))
        return std::string(Candidate);
    return std::string();
  }();
  return Cached;
}

std::string native::cacheDirectory() {
  std::string Dir = ".lift-native";
  if (const char *Env = std::getenv("LIFT_NATIVE_CACHE_DIR")) {
    if (*Env)
      Dir = Env;
  }
  ::mkdir(Dir.c_str(), 0755); // EEXIST is fine; compile reports failures
  return Dir;
}

Expected<NativeLaunchResult>
native::launchNativeChecked(const codegen::CompiledKernel &K,
                            const std::vector<Buffer *> &Buffers,
                            const std::map<std::string, int64_t> &Sizes,
                            const LaunchConfig &Cfg, DiagnosticEngine &Engine,
                            NativeMode Mode) {
  try {
    return launchNativeImpl(K, Buffers, Sizes, Cfg, &Engine, Mode);
  } catch (DiagnosticError &E) {
    if (!E.Recorded)
      Engine.report(E.Diag);
    return {};
  } catch (const std::bad_alloc &) {
    Engine.error(DiagCode::RuntimeMemoryLimit,
                 DiagLocation::inContext(
                     K.Module.Kernel ? K.Module.Kernel->Name : "kernel"),
                 "runtime: host allocation failed while preparing the "
                 "native launch");
    return {};
  }
}
