//===- Native.h - dlopen-based native CPU execution -------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a compiled kernel on the host CPU: the C AST is lowered to plain
/// C++/OpenMP (NativePrinter.h), built into a shared object by the system
/// compiler, loaded with dlopen and invoked through a fixed `extern "C"`
/// entry point. Shared objects are cached under $LIFT_NATIVE_CACHE_DIR
/// (default `.lift-native/`) keyed by a 64-bit FNV-1a hash of the source,
/// flags and compiler, so repeat launches skip the compile entirely.
///
/// The launch boundary mirrors the simulator's launchChecked: the same
/// argument-binding order and the same E05xx diagnostics for launch
/// misuse, plus the native-specific E0603..E0607 codes for toolchain,
/// compile, load, symbol and subset failures. Buffers are marshalled to
/// flat typed arrays (8-byte int64/double words in exact mode, 4-byte
/// int32/float leaves in fast mode), executed against, and read back;
/// on a cancelled or failed execution the caller's buffers are poisoned
/// exactly like a cancelled simulator launch. Deterministic fault
/// injection (ocl/FaultInject.h) covers the compile/dlopen/dlsym steps.
///
/// The simulator remains the verification backend: native runs enforce
/// the wall-clock deadline and the memory cap, but not MaxSteps, race
/// detection or guarded-memory checking. See docs/NATIVE_BACKEND.md.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_NATIVE_NATIVE_H
#define LIFT_NATIVE_NATIVE_H

#include "native/NativePrinter.h"
#include "ocl/Runtime.h"

#include <map>
#include <string>
#include <vector>

namespace lift {
namespace native {

/// What a successful native launch reports.
struct NativeLaunchResult {
  /// Wall-clock time of the kernel entry invocation, in milliseconds
  /// (excludes compilation and marshalling).
  double WallMs = 0;
  /// Wall-clock time spent in the system compiler; 0 on a cache hit.
  double CompileMs = 0;
  /// Wall-clock time spent marshalling buffers in and reading results
  /// back out, in milliseconds. Cache-hit launches re-fill persistent
  /// per-artifact arenas and skip the pre-launch copy and readback of
  /// buffers the kernel provably never writes, so this drops after the
  /// first launch of a workload.
  double MarshalMs = 0;
  /// True when the shared object was reused from the on-disk cache.
  bool CacheHit = false;
  /// Worker threads the OpenMP group loop was asked for.
  int64_t Threads = 1;
  /// The generated C++ translation unit (for tests and --dump-native).
  std::string Source;
};

/// The compiler the native backend would invoke: $LIFT_NATIVE_CXX if set,
/// otherwise the first of c++/g++/clang++ on PATH. Empty when none is
/// usable — callers should skip native execution (E0603 at launch).
std::string toolchainCompiler();

/// The shared-object cache directory ($LIFT_NATIVE_CACHE_DIR, default
/// ".lift-native"). Created on first use.
std::string cacheDirectory();

/// Executes \p K natively. Mirrors ocl::launchChecked's contract: buffers
/// bind to the program's pointer parameters in declaration order, Sizes
/// binds size and scalar parameters by name, Cfg supplies the NDRange,
/// thread count and execution limits (TimeoutMs is enforced by a host
/// watchdog; MaxMemoryBytes bounds the launch's simulated bytes exactly
/// like the simulator; MaxSteps is not enforceable natively). On failure
/// the diagnostic is recorded into \p Engine and an empty Expected is
/// returned; buffers are poisoned only when execution had begun.
///
/// \p Mode selects the numeric model (NativePrinter.h): Exact is
/// bit-identical to the simulator, Fast trades that for natively-typed
/// scalars, SIMD-friendly loops and -O3 -march=native. The two modes
/// hash to distinct cache artifacts and launch plans.
Expected<NativeLaunchResult>
launchNativeChecked(const codegen::CompiledKernel &K,
                    const std::vector<ocl::Buffer *> &Buffers,
                    const std::map<std::string, int64_t> &Sizes,
                    const ocl::LaunchConfig &Cfg, DiagnosticEngine &Engine,
                    NativeMode Mode = NativeMode::Exact);

} // namespace native
} // namespace lift

#endif // LIFT_NATIVE_NATIVE_H
