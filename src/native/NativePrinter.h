//===- NativePrinter.h - C++/OpenMP source emission -------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a compiled kernel's C AST to a plain C++ translation unit that a
/// system compiler can build into a shared object (see Native.h). The
/// work-group loop becomes an OpenMP `parallel for`; work-item loops are
/// recovered by loop fission at the barrier positions the lockstep
/// interpreter already verified; OpenCL vector types lower to fixed-size
/// double arrays and address-space qualifiers to stack/heap storage. The
/// lowering is value-exact against the simulated runtime for programs the
/// simulator executes cleanly: every scalar computation happens in the
/// same int64/double domain, integer overflow wraps, and division
/// by zero reports the same E0504 condition. See docs/NATIVE_BACKEND.md
/// for the full determinism contract.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_NATIVE_NATIVEPRINTER_H
#define LIFT_NATIVE_NATIVEPRINTER_H

#include "codegen/Compiler.h"

#include <string>
#include <vector>

namespace lift {
namespace native {

/// Numeric model of the generated translation unit.
///
/// Exact mode reproduces the simulator's value model bit for bit: every
/// float is an IEEE double, every int a wrapping int64, and the build
/// disables FP contraction — results are memcmp-identical to the
/// interpreter at any thread count.
///
/// Fast mode emits natively-typed scalars instead (`float` where the IR
/// says float, `int32_t` where it says int), restrict-qualified buffer
/// parameters and `#pragma omp simd` work-item loops, and is compiled
/// -O3 -march=native with default FP contraction. Results match the
/// simulator within a documented ULP tolerance (docs/NATIVE_BACKEND.md);
/// index computation and the E0502/E0503/E0504 checks stay in the int64
/// domain in both modes, so the diagnostics surface identically.
enum class NativeMode { Exact, Fast };

/// The exported entry point every generated translation unit defines:
///   extern "C" int32_t <name>(void **bufs, const int64_t *scalars,
///                             int64_t nthreads, int32_t *ctl);
/// `bufs` binds the kernel's pointer parameters in declaration order
/// (caller buffers then compiler temporaries), `scalars` its integer
/// size/scalar parameters in declaration order, `ctl[0]` is the
/// cooperative-cancellation flag (host-writable), `ctl[1]` the error
/// code out-slot (504 = division by zero). Returns non-zero when the
/// launch was cancelled.
extern const char *const kEntryName;

/// Renders \p K as a self-contained C++17 translation unit. The NDRange
/// (global/local sizes) is baked in from K.Options, exactly like the
/// simulator's launch configuration derived from the same options.
///
/// Throws DiagnosticError E0607 (NativeUnsupported) for constructs
/// outside the native subset: barriers inside user functions or in
/// non-fissionable statement positions, group-level control flow whose
/// headers cannot be proven work-group-uniform, float remainder, and
/// the other cases documented in docs/NATIVE_BACKEND.md. Everything the
/// Lift code generator emits for the paper's benchmarks is inside the
/// subset.
std::string printNativeModule(const codegen::CompiledKernel &K,
                              NativeMode Mode = NativeMode::Exact);

/// As above with an explicit NDRange overriding K.Options (the launch
/// configuration may differ from the compile-time default).
std::string printNativeModule(const codegen::CompiledKernel &K,
                              const std::array<int64_t, 3> &Global,
                              const std::array<int64_t, 3> &Local,
                              NativeMode Mode = NativeMode::Exact);

/// Conservative may-write analysis over \p K's C AST: one entry per
/// buffer (pointer) parameter in declaration order, true when the kernel
/// may store through it — directly, through a local alias, or through a
/// user-function call whose callee stores through the matching parameter
/// slot. A false entry is a proof the launch leaves the buffer's bytes
/// untouched, so the native launcher skips its pre-launch copy and
/// readback. Unknown constructs degrade to true, never false.
std::vector<bool> nativeWrittenBuffers(const codegen::CompiledKernel &K);

} // namespace native
} // namespace lift

#endif // LIFT_NATIVE_NATIVEPRINTER_H
