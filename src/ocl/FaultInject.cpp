//===- FaultInject.cpp - Deterministic runtime fault injection ------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ocl/FaultInject.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

using namespace lift;
using namespace lift::ocl;

namespace {

enum class Mode { Off, Exact, Count, Seeded, Always };

struct State {
  std::mutex M;
  Mode M_ = Mode::Off;
  fault::Site ArmedSite = fault::Site::Alloc;
  uint64_t ArmedNth = 0;
  uint64_t Counts[fault::NumSites] = {};
  uint64_t Rng = 0;

  void reset(Mode NewMode) {
    M_ = NewMode;
    for (uint64_t &C : Counts)
      C = 0;
  }
};

State &state() {
  static State S;
  return S;
}

/// Disarmed-path gate: shouldFail is called on allocation paths inside the
/// interpreter, so it must not take a lock when nothing is armed.
std::atomic<bool> Enabled{false};

uint64_t xorshift(uint64_t &X) {
  X ^= X << 13;
  X ^= X >> 7;
  X ^= X << 17;
  return X;
}

/// LIFT_FAULT_SEED=s arms probabilistic mode before the first hook fires,
/// so soak runs need no code changes.
void initFromEnv() {
  if (const char *Env = std::getenv("LIFT_FAULT_SEED")) {
    char *End = nullptr;
    unsigned long long Seed = std::strtoull(Env, &End, 10);
    if (End != Env)
      fault::armSeeded(static_cast<uint64_t>(Seed));
  }
}

std::once_flag EnvOnce;

} // namespace

const char *fault::siteName(Site S) {
  switch (S) {
  case Site::Alloc:
    return "allocation";
  case Site::PoolStart:
    return "pool dispatch";
  case Site::BufferMap:
    return "buffer map";
  case Site::NativeCompile:
    return "native compile";
  case Site::NativeLoad:
    return "native dlopen";
  case Site::NativeSym:
    return "native dlsym";
  case Site::Barrier:
    return "barrier";
  case Site::GroupDispatch:
    return "group dispatch";
  case Site::StepChunk:
    return "step chunk";
  case Site::CacheRead:
    return "cache read";
  case Site::CacheWrite:
    return "cache write";
  case Site::Accept:
    return "accept";
  case Site::RequestRead:
    return "request read";
  case Site::RequestWrite:
    return "request write";
  case Site::QueueAdmit:
    return "queue admit";
  case Site::GraphStageDispatch:
    return "graph stage dispatch";
  case Site::GraphBufferReuse:
    return "graph buffer reuse";
  }
  return "unknown";
}

void fault::arm(Site S, uint64_t Nth) {
  State &St = state();
  std::lock_guard<std::mutex> L(St.M);
  St.reset(Mode::Exact);
  St.ArmedSite = S;
  St.ArmedNth = Nth;
  Enabled.store(true, std::memory_order_release);
}

void fault::armAlways(Site S) {
  State &St = state();
  std::lock_guard<std::mutex> L(St.M);
  St.reset(Mode::Always);
  St.ArmedSite = S;
  Enabled.store(true, std::memory_order_release);
}

void fault::countOnly() {
  State &St = state();
  std::lock_guard<std::mutex> L(St.M);
  St.reset(Mode::Count);
  Enabled.store(true, std::memory_order_release);
}

void fault::armSeeded(uint64_t Seed) {
  State &St = state();
  std::lock_guard<std::mutex> L(St.M);
  St.reset(Mode::Seeded);
  St.Rng = Seed ? Seed : 0x9e3779b97f4a7c15ull;
  Enabled.store(true, std::memory_order_release);
}

void fault::disarm() {
  State &St = state();
  std::lock_guard<std::mutex> L(St.M);
  St.reset(Mode::Off);
  Enabled.store(false, std::memory_order_release);
}

uint64_t fault::occurrences(Site S) {
  State &St = state();
  std::lock_guard<std::mutex> L(St.M);
  return St.Counts[static_cast<unsigned>(S)];
}

bool fault::enabled() {
  return Enabled.load(std::memory_order_acquire);
}

bool fault::shouldFail(Site S) {
  std::call_once(EnvOnce, initFromEnv);
  if (!Enabled.load(std::memory_order_acquire))
    return false;
  State &St = state();
  std::lock_guard<std::mutex> L(St.M);
  if (St.M_ == Mode::Off)
    return false;
  uint64_t N = ++St.Counts[static_cast<unsigned>(S)];
  switch (St.M_) {
  case Mode::Exact:
    return S == St.ArmedSite && N == St.ArmedNth;
  case Mode::Always:
    return S == St.ArmedSite;
  case Mode::Seeded:
    return (xorshift(St.Rng) & 63) == 0;
  case Mode::Count:
  case Mode::Off:
    return false;
  }
  return false;
}
