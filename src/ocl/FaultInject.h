//===- FaultInject.h - Deterministic runtime fault injection ----*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic fault-injection harness for the simulated OpenCL
/// runtime. Every fallible runtime operation (device allocation, pool
/// dispatch, buffer binding) calls \c shouldFail(Site) at the point where a
/// real OpenCL implementation could fail; when the harness is disarmed
/// (the default) this is a single relaxed atomic load. Tests arm the
/// harness to fail the n-th occurrence of a site exactly
/// (\c arm / liftc \c --inject-faults n,k), count occurrences without
/// failing (\c countOnly) to discover sweep bounds, or fail
/// probabilistically from a seed (\c LIFT_FAULT_SEED) for soak runs.
/// Injected failures surface as E0513 diagnostics (or, for pool dispatch,
/// as a graceful serial fallback with an E0509 warning) — see
/// docs/RELIABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_OCL_FAULTINJECT_H
#define LIFT_OCL_FAULTINJECT_H

#include <cstdint>

namespace lift {
namespace ocl {
namespace fault {

/// The runtime operations that can be made to fail. Numeric values are the
/// "k" in liftc --inject-faults n,k and are stable.
enum class Site : unsigned {
  Alloc = 0,         ///< device allocation (temp buffers, local/private arrays)
  PoolStart = 1,     ///< dispatching a launch onto the worker pool
  BufferMap = 2,     ///< binding/mapping a caller buffer to a kernel argument
  NativeCompile = 3, ///< invoking the system compiler (native backend)
  NativeLoad = 4,    ///< dlopen of a compiled native object
  NativeSym = 5,     ///< dlsym of the native kernel entry point
};

inline constexpr unsigned NumSites = 6;

const char *siteName(Site S);

/// Arms the harness to fail exactly the \p Nth (1-based) occurrence of
/// \p S. Resets all occurrence counters.
void arm(Site S, uint64_t Nth);

/// Counting-only mode: occurrences are tallied but nothing fails. Used by
/// tests to discover how many injection opportunities a workload has.
/// Resets all occurrence counters.
void countOnly();

/// Probabilistic mode: every occurrence of every site fails with
/// probability 1/64, deterministically derived from \p Seed. Also reached
/// via the LIFT_FAULT_SEED environment variable. Resets all counters.
void armSeeded(uint64_t Seed);

/// Disarms the harness and resets all occurrence counters.
void disarm();

/// Occurrences of \p S observed since the harness was last (re)armed.
uint64_t occurrences(Site S);

/// True when any mode (exact, counting, seeded) is active.
bool enabled();

/// The runtime-side hook: returns true when this occurrence of \p S must
/// fail. Disarmed fast path is one relaxed atomic load.
bool shouldFail(Site S);

} // namespace fault
} // namespace ocl
} // namespace lift

#endif // LIFT_OCL_FAULTINJECT_H
