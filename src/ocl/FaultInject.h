//===- FaultInject.h - Deterministic runtime fault injection ----*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic fault-injection harness for the runtime. Every
/// fallible operation — device allocation, pool dispatch, buffer
/// binding, the native toolchain, persistent-cache I/O, and the
/// mid-execution checkpoints (barrier crossings, work-group dispatch,
/// step-budget ticks) — calls \c shouldFail(Site) at the point where a
/// real implementation could fail; when the harness is disarmed (the
/// default) this is a single relaxed atomic load. Tests arm the harness
/// to fail the n-th occurrence of a site exactly (\c arm / liftc
/// \c --inject-faults n,k), model a persistent outage that exhausts the
/// retry policy (\c armAlways / \c --inject-faults 0,k), count
/// occurrences without failing (\c countOnly / \c --count-faults) to
/// discover sweep bounds, or fail probabilistically from a seed
/// (\c LIFT_FAULT_SEED) for soak runs. Setup-site failures surface as
/// E0513 diagnostics, mid-execution trips as a cooperative E0515
/// cancellation that poisons the output buffers, pool faults as a
/// graceful serial fallback (E0509), and cache faults as a miss or an
/// E0609 write warning — see docs/RELIABILITY.md. The service sites
/// (accept, request read/write, queue admit) model connection- and
/// admission-level outages in the liftd daemon: a tripped site drops the
/// connection or sheds the request, and the client's retry policy
/// recovers — see docs/SERVICE.md.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_OCL_FAULTINJECT_H
#define LIFT_OCL_FAULTINJECT_H

#include <cstdint>

namespace lift {
namespace ocl {
namespace fault {

/// The runtime operations that can be made to fail. Numeric values are the
/// "k" in liftc --inject-faults n,k and are stable.
enum class Site : unsigned {
  Alloc = 0,         ///< device allocation (temp buffers, local/private arrays)
  PoolStart = 1,     ///< dispatching a launch onto the worker pool
  BufferMap = 2,     ///< binding/mapping a caller buffer to a kernel argument
  NativeCompile = 3, ///< invoking the system compiler (native backend)
  NativeLoad = 4,    ///< dlopen of a compiled native object
  NativeSym = 5,     ///< dlsym of the native kernel entry point
  Barrier = 6,       ///< a work-group barrier crossing mid-execution
  GroupDispatch = 7, ///< claiming a work-group for execution
  StepChunk = 8,     ///< a step-budget checkpoint (every TickInterval steps)
  CacheRead = 9,     ///< reading/validating a persistent cache entry
  CacheWrite = 10,   ///< persisting a cache entry (tune JSON, native .so)
  Accept = 11,       ///< accepting a client connection (liftd listener)
  RequestRead = 12,  ///< reading a request frame off a client connection
  RequestWrite = 13, ///< writing a response frame back to a client
  QueueAdmit = 14,   ///< admitting a request into the bounded work queue
  GraphStageDispatch = 15, ///< dispatching a pipeline-graph stage
  GraphBufferReuse = 16,   ///< recycling an intermediate buffer between stages
};

inline constexpr unsigned NumSites = 17;

const char *siteName(Site S);

/// Arms the harness to fail exactly the \p Nth (1-based) occurrence of
/// \p S. Resets all occurrence counters.
void arm(Site S, uint64_t Nth);

/// Arms the harness to fail *every* occurrence of \p S (liftc
/// --inject-faults 0,k). This is how tests model a persistent outage:
/// retry policies (support/Retry.h) recover from an arm(S, n) transient
/// on the next attempt, so exhausting them needs a site that stays down.
/// Resets all occurrence counters.
void armAlways(Site S);

/// Counting-only mode: occurrences are tallied but nothing fails. Used by
/// tests to discover how many injection opportunities a workload has.
/// Resets all occurrence counters.
void countOnly();

/// Probabilistic mode: every occurrence of every site fails with
/// probability 1/64, deterministically derived from \p Seed. Also reached
/// via the LIFT_FAULT_SEED environment variable. Resets all counters.
void armSeeded(uint64_t Seed);

/// Disarms the harness and resets all occurrence counters.
void disarm();

/// Occurrences of \p S observed since the harness was last (re)armed.
uint64_t occurrences(Site S);

/// True when any mode (exact, counting, seeded) is active.
bool enabled();

/// The runtime-side hook: returns true when this occurrence of \p S must
/// fail. Disarmed fast path is one relaxed atomic load.
bool shouldFail(Site S);

} // namespace fault
} // namespace ocl
} // namespace lift

#endif // LIFT_OCL_FAULTINJECT_H
