//===- Interp.cpp - Lockstep work-item interpreter ---------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes compiled kernels on the simulated device. Statements that
/// contain barriers are executed in lockstep across the work-items of a
/// group (their control flow must be uniform, as OpenCL requires);
/// everything else runs per work-item. Every memory access, arithmetic
/// operation, barrier and loop iteration is charged to the cost model.
///
//===----------------------------------------------------------------------===//

#include "ocl/Runtime.h"

#include "arith/Eval.h"
#include "cast/CPrinter.h"
#include "ocl/MemGuard.h"
#include "ocl/RaceDetector.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/Error.h"

#include <cmath>
#include <optional>
#include <unordered_map>
#include <unordered_set>

using namespace lift;
using namespace lift::c;
using namespace lift::ocl;

double Value::asFloat() const {
  switch (K) {
  case Int:
    return static_cast<double>(I);
  case Flt:
    return F;
  default:
    throwDiag(DiagCode::RuntimeBadValue, DiagLocation(),
              "runtime: expected a numeric value");
  }
}

int64_t Value::asInt() const {
  switch (K) {
  case Int:
    return I;
  case Flt:
    return static_cast<int64_t>(F);
  default:
    throwDiag(DiagCode::RuntimeBadValue, DiagLocation(),
              "runtime: expected an integer value");
  }
}

bool Value::asBool() const { return asInt() != 0; }

Buffer Buffer::ofFloats(const std::vector<float> &Data) {
  Buffer B;
  B.Mem->reserve(Data.size());
  for (float F : Data)
    B.Mem->push_back(Value::makeFloat(F));
  return B;
}

Buffer Buffer::ofInts(const std::vector<int> &Data) {
  Buffer B;
  B.Mem->reserve(Data.size());
  for (int I : Data)
    B.Mem->push_back(Value::makeInt(I));
  return B;
}

Buffer Buffer::ofVectors(const std::vector<float> &Flat, unsigned Width) {
  Buffer B;
  if (Width == 0 || Flat.size() % Width != 0)
    throwDiag(DiagCode::HostBadBuffer, DiagLocation::inContext("ofVectors"),
              "ofVectors: flat size " + std::to_string(Flat.size()) +
                  " is not a multiple of the width " + std::to_string(Width));
  B.Mem->reserve(Flat.size() / Width);
  for (size_t I = 0; I != Flat.size(); I += Width) {
    std::vector<double> Comps(Flat.begin() + static_cast<long>(I),
                              Flat.begin() + static_cast<long>(I + Width));
    B.Mem->push_back(Value::makeVec(std::move(Comps)));
  }
  return B;
}

static void flattenValue(const Value &V, std::vector<float> &Out) {
  switch (V.K) {
  case Value::Int:
    Out.push_back(static_cast<float>(V.I));
    return;
  case Value::Flt:
    Out.push_back(static_cast<float>(V.F));
    return;
  case Value::Vec:
    for (double D : V.V)
      Out.push_back(static_cast<float>(D));
    return;
  case Value::Tup:
    for (const Value &E : V.T)
      flattenValue(E, Out);
    return;
  case Value::Ptr:
    fatalError("cannot flatten a pointer value");
  }
}

std::vector<float> Buffer::toFlatFloats() const {
  std::vector<float> R;
  R.reserve(Mem->size());
  for (const Value &V : *Mem)
    flattenValue(V, R);
  return R;
}

Buffer Buffer::zeros(size_t Count) {
  Buffer B;
  B.Mem->assign(Count, Value::makeFloat(0));
  B.Init = std::make_shared<std::vector<uint8_t>>(Count, uint8_t(0));
  return B;
}

Buffer Buffer::filled(size_t Count, const Value &V) {
  Buffer B;
  B.Mem->assign(Count, V);
  return B;
}

std::vector<float> Buffer::toFloats() const {
  std::vector<float> R;
  R.reserve(Mem->size());
  for (const Value &V : *Mem)
    R.push_back(static_cast<float>(V.asFloat()));
  return R;
}

std::vector<int> Buffer::toInts() const {
  std::vector<int> R;
  R.reserve(Mem->size());
  for (const Value &V : *Mem)
    R.push_back(static_cast<int>(V.asInt()));
  return R;
}

CostReport &CostReport::operator+=(const CostReport &O) {
  GlobalAccesses += O.GlobalAccesses;
  LocalAccesses += O.LocalAccesses;
  PrivateAccesses += O.PrivateAccesses;
  ArithOps += O.ArithOps;
  DivModOps += O.DivModOps;
  MathCalls += O.MathCalls;
  Calls += O.Calls;
  Barriers += O.Barriers;
  LoopIters += O.LoopIters;
  return *this;
}

namespace {

/// Per-work-item state.
struct WorkItem {
  std::unordered_map<const CVar *, Value> Vars;
  std::unordered_map<unsigned, int64_t> AVals;
  std::array<int64_t, 3> LocalId = {0, 0, 0};
  std::array<int64_t, 3> GroupId = {0, 0, 0};
  int64_t Linear = 0; ///< Linear in-group id (race detector diagnostics).
};

/// Wrapping two's-complement arithmetic: the kernels the fuzzer generates
/// can overflow intermediate integer results, which is undefined behavior
/// on int64_t. OpenCL C integer arithmetic wraps; match it.
inline int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
inline int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
inline int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
inline int64_t wrapNeg(int64_t A) {
  return static_cast<int64_t>(0 - static_cast<uint64_t>(A));
}

/// Result of executing statements inside a function body.
struct ExecResult {
  bool Returned = false;
  Value Ret;
};

class Machine {
  const codegen::CompiledKernel &K;
  LaunchConfig Cfg;
  CostReport Cost;

  std::unordered_map<unsigned, CVarPtr> StorageVarById;
  std::unordered_map<const CStmt *, bool> BarrierCache;
  std::unordered_set<const CFunction *> BarrierScanStack;
  /// Static (div/mod, other-node) cost of each arith index expression.
  std::unordered_map<const arith::Node *, std::pair<unsigned, unsigned>>
      IndexCost;

  std::vector<WorkItem> Group;
  std::unordered_map<const CVar *, Value> WgLocals;

  /// Non-null while a race-checked launch runs.
  RaceDetector *RD = nullptr;
  /// Non-null while a memory-checked launch runs.
  MemGuard *MG = nullptr;
  /// Sink for out-of-bounds stores under guarded-memory execution.
  Value ScratchSlot;
  /// Seeded xorshift state driving the perturbed schedule.
  uint64_t RngState = 0;

public:
  Machine(const codegen::CompiledKernel &K, const LaunchConfig &Cfg,
          RaceDetector *RD = nullptr, MemGuard *MG = nullptr)
      : K(K), Cfg(Cfg), RD(RD), MG(MG) {
    for (const auto &[Id, Var] : K.StorageVars)
      StorageVarById[Id] = Var;
    RngState = Cfg.ScheduleSeed * 6364136223846793005ULL + 1442695040888963407ULL;
    if (RngState == 0)
      RngState = 1;
  }

  CostReport run(const std::vector<Buffer *> &Buffers,
                 const std::map<std::string, int64_t> &Sizes) {
    // Bind kernel arguments.
    std::vector<std::pair<const CVar *, Value>> Bindings;
    std::unordered_map<unsigned, int64_t> SizeEnv;
    size_t NextBuffer = 0;
    std::vector<Buffer> Temps; // auto-allocated global intermediates

    // First pass: size parameters, so temp buffer sizes can be computed.
    for (const auto &P : K.Params) {
      if (!P.IsSizeParam)
        continue;
      auto It = Sizes.find(P.Var->Name);
      if (It == Sizes.end())
        throwDiag(DiagCode::RuntimeBadLaunch, DiagLocation(),
                  "launch: missing size argument '" + P.Var->Name + "'");
      SizeEnv[P.ArithId] = It->second;
      Bindings.emplace_back(P.Var.get(), Value::makeInt(It->second));
    }

    arith::EvalContext SizeCtx;
    SizeCtx.VarValue = [&](const arith::VarNode &V) -> int64_t {
      auto It = SizeEnv.find(V.getId());
      if (It == SizeEnv.end())
        throwDiag(DiagCode::RuntimeBadLaunch, DiagLocation(),
                  "launch: unbound size variable " + V.getName());
      return It->second;
    };

    Temps.reserve(K.Params.size());
    for (const auto &P : K.Params) {
      if (P.IsSizeParam || !P.Store)
        continue;
      if (!P.Store->NumElements) {
        // Scalar by-value parameter: bound via Sizes as a float/int.
        auto It = Sizes.find(P.Var->Name);
        if (It == Sizes.end())
          throwDiag(DiagCode::RuntimeBadLaunch, DiagLocation(),
                    "launch: missing scalar argument '" + P.Var->Name +
                        "'");
        Bindings.emplace_back(P.Var.get(), Value::makeInt(It->second));
        continue;
      }
      if (NextBuffer < Buffers.size()) {
        Buffer *B = Buffers[NextBuffer];
        Bindings.emplace_back(P.Var.get(),
                              Value::makePtr(B->Mem, MemSpace::Global));
        if (MG)
          MG->registerBlock(B->Mem.get(), P.Var->Name, B->Init);
        ++NextBuffer;
        continue;
      }
      // A compiler-introduced global temporary.
      int64_t Count = arith::evaluate(P.Store->NumElements, SizeCtx);
      Temps.push_back(Buffer::zeros(static_cast<size_t>(Count)));
      Bindings.emplace_back(
          P.Var.get(), Value::makePtr(Temps.back().Mem, MemSpace::Global));
      if (MG)
        MG->registerBlock(Temps.back().Mem.get(), P.Var->Name,
                          Temps.back().Init);
    }
    if (NextBuffer != Buffers.size())
      throwDiag(DiagCode::RuntimeBadLaunch, DiagLocation(),
                "launch: too many buffers supplied");

    if (RD)
      for (const auto &[Var, Val] : Bindings)
        if (Val.K == Value::Ptr)
          RD->registerBlock(Val.P.get(), Var->Name);

    int64_t GroupsX = Cfg.Global[0] / Cfg.Local[0];
    int64_t GroupsY = Cfg.Global[1] / Cfg.Local[1];
    int64_t GroupsZ = Cfg.Global[2] / Cfg.Local[2];
    int64_t WIsPerGroup = Cfg.Local[0] * Cfg.Local[1] * Cfg.Local[2];

    for (int64_t Gz = 0; Gz != GroupsZ; ++Gz) {
      for (int64_t Gy = 0; Gy != GroupsY; ++Gy) {
        for (int64_t Gx = 0; Gx != GroupsX; ++Gx) {
          WgLocals.clear();
          Group.assign(static_cast<size_t>(WIsPerGroup), WorkItem());
          size_t Idx = 0;
          for (int64_t Lz = 0; Lz != Cfg.Local[2]; ++Lz) {
            for (int64_t Ly = 0; Ly != Cfg.Local[1]; ++Ly) {
              for (int64_t Lx = 0; Lx != Cfg.Local[0]; ++Lx) {
                WorkItem &W = Group[Idx];
                W.Linear = static_cast<int64_t>(Idx);
                ++Idx;
                W.LocalId = {Lx, Ly, Lz};
                W.GroupId = {Gx, Gy, Gz};
                for (const auto &[Var, Val] : Bindings)
                  setVar(W, Var, Val);
              }
            }
          }
          std::vector<WorkItem *> Active;
          for (WorkItem &W : Group)
            Active.push_back(&W);
          if (RD)
            RD->beginGroup({Gx, Gy, Gz}, Group.size());
          execLockstep(K.Module.Kernel->Body->getStmts(), Active);
          if (RD)
            RD->endGroup();
        }
      }
    }
    return Cost;
  }

private:
  [[noreturn]] void
  runtimeError(const std::string &Msg,
               DiagCode Code = DiagCode::RuntimeUnsupported) {
    throwDiag(Code, DiagLocation::inContext(K.Module.Kernel
                                                ? K.Module.Kernel->Name
                                                : std::string("kernel")),
              "runtime: " + Msg);
  }

  void setVar(WorkItem &W, const CVar *V, Value Val) {
    if (V->ArithId != 0)
      W.AVals[V->ArithId] = Val.asInt();
    W.Vars[V] = std::move(Val);
  }

  //===--------------------------------------------------------------------===//
  // Barrier analysis
  //===--------------------------------------------------------------------===//

  /// Does evaluating \p E reach a barrier? Only possible through a call to
  /// a user function whose body contains one — such calls must not run in
  /// divergent per-item order.
  bool exprReachesBarrier(const CExprPtr &E) {
    if (!E)
      return false;
    switch (E->getKind()) {
    case CExprKind::IntLit:
    case CExprKind::FloatLit:
    case CExprKind::VarRef:
    case CExprKind::ArithValue:
      return false;
    case CExprKind::ArrayAccess: {
      const auto *A = cast<ArrayAccess>(E.get());
      return exprReachesBarrier(A->getBase()) ||
             exprReachesBarrier(A->getIndex());
    }
    case CExprKind::Member:
      return exprReachesBarrier(cast<Member>(E.get())->getBase());
    case CExprKind::Binary: {
      const auto *B = cast<Binary>(E.get());
      return exprReachesBarrier(B->getLhs()) ||
             exprReachesBarrier(B->getRhs());
    }
    case CExprKind::Unary:
      return exprReachesBarrier(cast<Unary>(E.get())->getSub());
    case CExprKind::Call: {
      const auto *C = cast<Call>(E.get());
      for (const CExprPtr &A : C->getArgs())
        if (exprReachesBarrier(A))
          return true;
      CFunctionPtr F = K.Module.findFunction(C->getCallee());
      if (!F || !F->Body || BarrierScanStack.count(F.get()))
        return false;
      BarrierScanStack.insert(F.get());
      bool R = false;
      for (const CStmtPtr &S : F->Body->getStmts())
        R = R || containsBarrier(S);
      BarrierScanStack.erase(F.get());
      return R;
    }
    case CExprKind::Ternary: {
      const auto *T = cast<Ternary>(E.get());
      return exprReachesBarrier(T->getCond()) ||
             exprReachesBarrier(T->getThen()) ||
             exprReachesBarrier(T->getElse());
    }
    case CExprKind::CastExpr:
      return exprReachesBarrier(cast<CastExpr>(E.get())->getSub());
    case CExprKind::ConstructVector:
      for (const CExprPtr &A : cast<ConstructVector>(E.get())->getArgs())
        if (exprReachesBarrier(A))
          return true;
      return false;
    case CExprKind::ConstructStruct:
      for (const CExprPtr &A : cast<ConstructStruct>(E.get())->getArgs())
        if (exprReachesBarrier(A))
          return true;
      return false;
    case CExprKind::VectorLoad: {
      const auto *V = cast<VectorLoad>(E.get());
      return exprReachesBarrier(V->getIndex()) ||
             exprReachesBarrier(V->getPointer());
    }
    case CExprKind::VectorStore: {
      const auto *V = cast<VectorStore>(E.get());
      return exprReachesBarrier(V->getValue()) ||
             exprReachesBarrier(V->getIndex()) ||
             exprReachesBarrier(V->getPointer());
    }
    }
    lift_unreachable("unhandled expression kind");
  }

  bool containsBarrier(const CStmtPtr &S) {
    auto It = BarrierCache.find(S.get());
    if (It != BarrierCache.end())
      return It->second;
    bool R = false;
    switch (S->getKind()) {
    case CStmtKind::Barrier:
      R = true;
      break;
    case CStmtKind::Block:
      for (const CStmtPtr &Sub : cast<Block>(S.get())->getStmts())
        R = R || containsBarrier(Sub);
      break;
    case CStmtKind::For: {
      const auto *F = cast<For>(S.get());
      for (const CStmtPtr &Sub : F->getBody()->getStmts())
        R = R || containsBarrier(Sub);
      R = R || exprReachesBarrier(F->getInit()) ||
          exprReachesBarrier(F->getCond()) || exprReachesBarrier(F->getStep());
      break;
    }
    case CStmtKind::If: {
      const auto *I = cast<If>(S.get());
      for (const CStmtPtr &Sub : I->getThen()->getStmts())
        R = R || containsBarrier(Sub);
      if (I->getElse())
        for (const CStmtPtr &Sub : I->getElse()->getStmts())
          R = R || containsBarrier(Sub);
      R = R || exprReachesBarrier(I->getCond());
      break;
    }
    case CStmtKind::VarDecl:
      R = exprReachesBarrier(cast<VarDecl>(S.get())->getInit());
      break;
    case CStmtKind::Assign: {
      const auto *A = cast<Assign>(S.get());
      R = exprReachesBarrier(A->getLhs()) || exprReachesBarrier(A->getRhs());
      break;
    }
    case CStmtKind::ExprStmt:
      R = exprReachesBarrier(cast<ExprStmt>(S.get())->getExpr());
      break;
    case CStmtKind::Return:
      R = exprReachesBarrier(cast<Return>(S.get())->getValue());
      break;
    default:
      break;
    }
    BarrierCache[S.get()] = R;
    return R;
  }

  //===--------------------------------------------------------------------===//
  // Lockstep execution
  //===--------------------------------------------------------------------===//

  uint64_t nextRand() {
    RngState ^= RngState << 13;
    RngState ^= RngState >> 7;
    RngState ^= RngState << 17;
    return RngState;
  }

  /// A seeded permutation of the work-items — one legal execution order
  /// among the many a GPU could choose within a barrier interval.
  std::vector<WorkItem *> permuted(const std::vector<WorkItem *> &WIs) {
    std::vector<WorkItem *> R = WIs;
    for (size_t I = R.size(); I > 1; --I)
      std::swap(R[I - 1], R[nextRand() % I]);
    return R;
  }

  /// Executes a statement sequence across the group. Maximal runs of
  /// barrier-free statements form (part of) a barrier interval: the order
  /// in which work-items execute them is unconstrained by OpenCL. The
  /// default schedule is statement-lockstep (every item runs statement i
  /// before any item runs statement i+1); under --perturb-schedule each
  /// item instead runs the whole run to completion, in a seeded random
  /// item order — a schedule that exposes missing-barrier bugs the
  /// statement-lockstep order masks.
  void execLockstep(const std::vector<CStmtPtr> &Stmts,
                    std::vector<WorkItem *> &WIs) {
    size_t I = 0, N = Stmts.size();
    while (I != N) {
      if (containsBarrier(Stmts[I])) {
        execStmtLockstep(Stmts[I], WIs);
        ++I;
        continue;
      }
      size_t J = I;
      while (J != N && !containsBarrier(Stmts[J]))
        ++J;
      if (Cfg.PerturbSchedule) {
        for (WorkItem *W : permuted(WIs))
          for (size_t S = I; S != J; ++S)
            execNonBarrierStmt(Stmts[S], *W);
      } else {
        for (size_t S = I; S != J; ++S)
          for (WorkItem *W : WIs)
            execNonBarrierStmt(Stmts[S], *W);
      }
      I = J;
    }
  }

  void execNonBarrierStmt(const CStmtPtr &S, WorkItem &W) {
    ExecResult R = execStmtSingle(S, W);
    if (R.Returned)
      runtimeError("return outside of a function body");
  }

  /// Reports non-uniform control flow enclosing a barrier: a checked run
  /// records it as barrier divergence and continues with the first item's
  /// decision; an unchecked run aborts, as before.
  void divergentFlow(const std::string &What) {
    if (!RD)
      runtimeError(What + " around a barrier in kernel '" +
                   K.Module.Kernel->Name + "'");
    RD->divergence(What + " around a barrier in kernel '" +
                   K.Module.Kernel->Name + "'");
  }

  void execStmtLockstep(const CStmtPtr &S, std::vector<WorkItem *> &WIs) {
    if (!containsBarrier(S)) {
      for (WorkItem *W : WIs)
        execNonBarrierStmt(S, *W);
      return;
    }

    switch (S->getKind()) {
    case CStmtKind::Barrier:
      Cost.Barriers += WIs.size();
      if (RD)
        RD->lockstepBarrier();
      return;
    case CStmtKind::Block:
      execLockstep(cast<Block>(S.get())->getStmts(), WIs);
      return;
    case CStmtKind::For: {
      const auto *F = cast<For>(S.get());
      for (WorkItem *W : WIs)
        setVar(*W, F->getIV().get(), evalExpr(F->getInit(), *W));
      while (true) {
        bool First = true, Continue = false, Diverged = false;
        for (WorkItem *W : WIs) {
          bool C = evalExpr(F->getCond(), *W).asBool();
          if (First) {
            Continue = C;
            First = false;
          } else if (C != Continue && !Diverged) {
            Diverged = true;
            divergentFlow("non-uniform loop");
          }
        }
        Cost.LoopIters += WIs.size();
        if (!Continue)
          break;
        execLockstep(F->getBody()->getStmts(), WIs);
        for (WorkItem *W : WIs)
          setVar(*W, F->getIV().get(), evalExpr(F->getStep(), *W));
      }
      return;
    }
    case CStmtKind::If: {
      const auto *I = cast<If>(S.get());
      bool First = true, Taken = false, Diverged = false;
      for (WorkItem *W : WIs) {
        bool C = evalExpr(I->getCond(), *W).asBool();
        if (First) {
          Taken = C;
          First = false;
        } else if (C != Taken && !Diverged) {
          Diverged = true;
          divergentFlow("non-uniform branch");
        }
      }
      if (Taken)
        execLockstep(I->getThen()->getStmts(), WIs);
      else if (I->getElse())
        execLockstep(I->getElse()->getStmts(), WIs);
      return;
    }
    default:
      runtimeError("barrier in an unsupported statement position in kernel '" +
                   K.Module.Kernel->Name + "': a " + stmtKindName(S) +
                   " statement reaches a barrier (through a function call) "
                   "but cannot be executed in lockstep: " +
                   c::printStmt(S));
    }
  }

  static const char *stmtKindName(const CStmtPtr &S) {
    switch (S->getKind()) {
    case CStmtKind::Block:
      return "block";
    case CStmtKind::VarDecl:
      return "variable declaration";
    case CStmtKind::Assign:
      return "assignment";
    case CStmtKind::ExprStmt:
      return "expression";
    case CStmtKind::For:
      return "for";
    case CStmtKind::If:
      return "if";
    case CStmtKind::Barrier:
      return "barrier";
    case CStmtKind::Return:
      return "return";
    case CStmtKind::Comment:
      return "comment";
    }
    return "?";
  }

  //===--------------------------------------------------------------------===//
  // Per-work-item execution
  //===--------------------------------------------------------------------===//

  ExecResult execStmtSingle(const CStmtPtr &S, WorkItem &W) {
    switch (S->getKind()) {
    case CStmtKind::Block: {
      for (const CStmtPtr &Sub : cast<Block>(S.get())->getStmts()) {
        ExecResult R = execStmtSingle(Sub, W);
        if (R.Returned)
          return R;
      }
      return {};
    }
    case CStmtKind::VarDecl: {
      const auto *D = cast<VarDecl>(S.get());
      const CVar *V = D->getVar().get();
      if (D->getArraySize()) {
        int64_t Count = evalArith(D->getArraySize(), W);
        if (D->getAddrSpace() == CAddrSpace::Local) {
          // One allocation shared by the whole work group.
          auto It = WgLocals.find(V);
          if (It == WgLocals.end()) {
            auto Mem = std::make_shared<std::vector<Value>>(
                static_cast<size_t>(Count), Value::makeFloat(0));
            if (RD)
              RD->registerBlock(Mem.get(), V->Name);
            if (MG)
              MG->registerBlock(Mem.get(), V->Name,
                                std::make_shared<std::vector<uint8_t>>(
                                    static_cast<size_t>(Count), uint8_t(0)));
            It = WgLocals
                     .emplace(V, Value::makePtr(std::move(Mem),
                                                MemSpace::Local))
                     .first;
          }
          setVar(W, V, It->second);
        } else {
          auto Mem = std::make_shared<std::vector<Value>>(
              static_cast<size_t>(Count), Value::makeFloat(0));
          if (MG)
            MG->registerBlock(Mem.get(), V->Name,
                              std::make_shared<std::vector<uint8_t>>(
                                  static_cast<size_t>(Count), uint8_t(0)));
          setVar(W, V, Value::makePtr(std::move(Mem), MemSpace::Private));
        }
        return {};
      }
      Value Init =
          D->getInit() ? evalExpr(D->getInit(), W) : Value::makeFloat(0);
      setVar(W, V, std::move(Init));
      return {};
    }
    case CStmtKind::Assign: {
      const auto *A = cast<Assign>(S.get());
      Value RHS = evalExpr(A->getRhs(), W);
      assignTo(A->getLhs(), std::move(RHS), W);
      return {};
    }
    case CStmtKind::ExprStmt:
      evalExpr(cast<ExprStmt>(S.get())->getExpr(), W);
      return {};
    case CStmtKind::For: {
      const auto *F = cast<For>(S.get());
      setVar(W, F->getIV().get(), evalExpr(F->getInit(), W));
      while (evalExpr(F->getCond(), W).asBool()) {
        ++Cost.LoopIters;
        for (const CStmtPtr &Sub : F->getBody()->getStmts()) {
          ExecResult R = execStmtSingle(Sub, W);
          if (R.Returned)
            return R;
        }
        setVar(W, F->getIV().get(), evalExpr(F->getStep(), W));
      }
      return {};
    }
    case CStmtKind::If: {
      const auto *I = cast<If>(S.get());
      if (evalExpr(I->getCond(), W).asBool()) {
        for (const CStmtPtr &Sub : I->getThen()->getStmts()) {
          ExecResult R = execStmtSingle(Sub, W);
          if (R.Returned)
            return R;
        }
      } else if (I->getElse()) {
        for (const CStmtPtr &Sub : I->getElse()->getStmts()) {
          ExecResult R = execStmtSingle(Sub, W);
          if (R.Returned)
            return R;
        }
      }
      return {};
    }
    case CStmtKind::Barrier:
      // A barrier executed by a single item (divergent control flow or a
      // barrier inside a called function): it does not synchronize.
      // Charge one wait and tally the arrival for the divergence check.
      ++Cost.Barriers;
      if (RD)
        RD->itemBarrier(W.Linear);
      return {};
    case CStmtKind::Return: {
      ExecResult R;
      R.Returned = true;
      if (cast<Return>(S.get())->getValue())
        R.Ret = evalExpr(cast<Return>(S.get())->getValue(), W);
      return R;
    }
    case CStmtKind::Comment:
      return {};
    }
    lift_unreachable("unhandled statement kind");
  }

  //===--------------------------------------------------------------------===//
  // L-values
  //===--------------------------------------------------------------------===//

  Value *lvalue(const CExprPtr &E, WorkItem &W) {
    switch (E->getKind()) {
    case CExprKind::VarRef: {
      const CVar *V = cast<VarRef>(E.get())->getVar().get();
      ++Cost.PrivateAccesses;
      return &W.Vars[V];
    }
    case CExprKind::ArrayAccess: {
      const auto *A = cast<ArrayAccess>(E.get());
      Value Base = evalExpr(A->getBase(), W);
      if (Base.K != Value::Ptr)
        runtimeError("array access on a non-pointer");
      int64_t Idx = evalExpr(A->getIndex(), W).asInt();
      noteAccess(Base, Idx, W, /*IsWrite=*/true);
      if (MG) {
        if (MG->check(Base.P.get(), Idx, Base.P->size(), W.Linear, W.GroupId,
                      /*IsWrite=*/true) == MemGuard::Access::OutOfBounds)
          return &ScratchSlot; // record and drop the store, keep running
      } else if (Idx < 0 || static_cast<size_t>(Idx) >= Base.P->size()) {
        runtimeError("store out of bounds: index " + std::to_string(Idx) +
                         " of " + std::to_string(Base.P->size()),
                     DiagCode::RuntimeOutOfBounds);
      }
      return &(*Base.P)[static_cast<size_t>(Idx)];
    }
    case CExprKind::Member: {
      const auto *M = cast<Member>(E.get());
      Value *Base = lvalue(M->getBase(), W);
      int Idx = fieldIndexOf(M->getField());
      if (Base->K != Value::Tup || Idx < 0 ||
          static_cast<size_t>(Idx) >= Base->T.size())
        runtimeError("bad struct member store ." + M->getField());
      return &Base->T[static_cast<size_t>(Idx)];
    }
    default:
      runtimeError("unsupported assignment target");
    }
  }

  void assignTo(const CExprPtr &Lhs, Value V, WorkItem &W) {
    if (const auto *VR = dyn_cast<VarRef>(Lhs.get())) {
      setVar(W, VR->getVar().get(), std::move(V));
      ++Cost.PrivateAccesses;
      return;
    }
    *lvalue(Lhs, W) = std::move(V);
  }

  static int fieldIndexOf(const std::string &Field) {
    if (Field.size() >= 2 && Field[0] == '_')
      return std::atoi(Field.c_str() + 1);
    return -1;
  }

  void chargeAccess(MemSpace S) {
    switch (S) {
    case MemSpace::Global:
      ++Cost.GlobalAccesses;
      break;
    case MemSpace::Local:
      ++Cost.LocalAccesses;
      break;
    case MemSpace::Private:
      ++Cost.PrivateAccesses;
      break;
    }
  }

  /// Charges the cost model and, on a checked run, records the access in
  /// the current barrier interval's access set.
  void noteAccess(const Value &Base, int64_t Idx, const WorkItem &W,
                  bool IsWrite) {
    chargeAccess(Base.Space);
    if (RD)
      RD->recordAccess(Base.P.get(), Idx, Base.Space, W.Linear, IsWrite);
  }

  //===--------------------------------------------------------------------===//
  // Arithmetic index expressions
  //===--------------------------------------------------------------------===//

  int64_t evalArith(const arith::Expr &E, WorkItem &W) {
    // Charge the static operation count of the index expression — this is
    // where disabling array access simplification shows up as cost.
    auto It = IndexCost.find(E.get());
    if (It == IndexCost.end()) {
      unsigned DivMods = arith::countDivMod(E);
      unsigned Ops = arith::countOps(E);
      unsigned Others = Ops >= DivMods ? Ops - DivMods : 0;
      It = IndexCost.emplace(E.get(), std::make_pair(DivMods, Others)).first;
    }
    Cost.DivModOps += It->second.first;
    Cost.ArithOps += It->second.second;

    arith::EvalContext Ctx;
    Ctx.VarValue = [&](const arith::VarNode &V) -> int64_t {
      auto VIt = W.AVals.find(V.getId());
      if (VIt == W.AVals.end())
        runtimeError("unbound index variable " + V.getName());
      return VIt->second;
    };
    Ctx.LookupValue = [&](unsigned TableId, int64_t Index) -> int64_t {
      auto SIt = StorageVarById.find(TableId);
      if (SIt == StorageVarById.end())
        runtimeError("unknown lookup table id " + std::to_string(TableId));
      auto VIt = W.Vars.find(SIt->second.get());
      if (VIt == W.Vars.end() || VIt->second.K != Value::Ptr)
        runtimeError("lookup table is not bound to memory");
      noteAccess(VIt->second, Index, W, /*IsWrite=*/false);
      const auto &Mem = *VIt->second.P;
      if (MG) {
        if (MG->check(VIt->second.P.get(), Index, Mem.size(), W.Linear,
                      W.GroupId, /*IsWrite=*/false) ==
            MemGuard::Access::OutOfBounds)
          return 0; // record and read zero, keep running
      } else if (Index < 0 || static_cast<size_t>(Index) >= Mem.size()) {
        runtimeError("lookup out of bounds", DiagCode::RuntimeOutOfBounds);
      }
      return Mem[static_cast<size_t>(Index)].asInt();
    };
    return arith::evaluate(E, Ctx);
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  Value evalExpr(const CExprPtr &E, WorkItem &W) {
    switch (E->getKind()) {
    case CExprKind::IntLit:
      return Value::makeInt(cast<IntLit>(E.get())->getValue());
    case CExprKind::FloatLit:
      return Value::makeFloat(cast<FloatLit>(E.get())->getValue());
    case CExprKind::VarRef: {
      const CVar *V = cast<VarRef>(E.get())->getVar().get();
      auto It = W.Vars.find(V);
      if (It == W.Vars.end())
        runtimeError("use of undeclared variable " + V->Name);
      return It->second;
    }
    case CExprKind::ArithValue:
      return Value::makeInt(
          evalArith(cast<ArithValue>(E.get())->getValue(), W));
    case CExprKind::ArrayAccess: {
      const auto *A = cast<ArrayAccess>(E.get());
      Value Base = evalExpr(A->getBase(), W);
      if (Base.K != Value::Ptr)
        runtimeError("array access on a non-pointer");
      int64_t Idx = evalExpr(A->getIndex(), W).asInt();
      noteAccess(Base, Idx, W, /*IsWrite=*/false);
      if (MG) {
        if (MG->check(Base.P.get(), Idx, Base.P->size(), W.Linear, W.GroupId,
                      /*IsWrite=*/false) == MemGuard::Access::OutOfBounds)
          return Value::makeFloat(0); // record and read zero, keep running
      } else if (Idx < 0 || static_cast<size_t>(Idx) >= Base.P->size()) {
        runtimeError("load out of bounds: index " + std::to_string(Idx) +
                         " of " + std::to_string(Base.P->size()),
                     DiagCode::RuntimeOutOfBounds);
      }
      return (*Base.P)[static_cast<size_t>(Idx)];
    }
    case CExprKind::Member: {
      const auto *M = cast<Member>(E.get());
      Value Base = evalExpr(M->getBase(), W);
      if (Base.K == Value::Tup) {
        int Idx = fieldIndexOf(M->getField());
        if (Idx < 0 || static_cast<size_t>(Idx) >= Base.T.size())
          runtimeError("bad struct member ." + M->getField());
        return Base.T[static_cast<size_t>(Idx)];
      }
      if (Base.K == Value::Vec)
        return Value::makeFloat(Base.V[vectorComponent(M->getField(),
                                                       Base.V.size())]);
      runtimeError("member access on a non-aggregate");
    }
    case CExprKind::Binary:
      return evalBinary(cast<Binary>(E.get()), W);
    case CExprKind::Unary: {
      const auto *U = cast<Unary>(E.get());
      Value S = evalExpr(U->getSub(), W);
      ++Cost.ArithOps;
      if (U->getOp() == UnOp::Not)
        return Value::makeInt(!S.asBool());
      if (S.K == Value::Int)
        return Value::makeInt(wrapNeg(S.I));
      if (S.K == Value::Vec) {
        for (double &D : S.V)
          D = -D;
        return S;
      }
      return Value::makeFloat(-S.asFloat());
    }
    case CExprKind::Call:
      return evalCall(cast<Call>(E.get()), W);
    case CExprKind::Ternary: {
      const auto *T = cast<Ternary>(E.get());
      ++Cost.ArithOps;
      return evalExpr(T->getCond(), W).asBool() ? evalExpr(T->getThen(), W)
                                                : evalExpr(T->getElse(), W);
    }
    case CExprKind::CastExpr: {
      const auto *C = cast<CastExpr>(E.get());
      Value S = evalExpr(C->getSub(), W);
      const CTypePtr &Ty = C->getType();
      if (isa<ScalarCType>(Ty.get())) {
        switch (cast<ScalarCType>(Ty.get())->getScalarKind()) {
        case CScalarKind::Int:
        case CScalarKind::Bool:
          return Value::makeInt(S.asInt());
        case CScalarKind::Float:
        case CScalarKind::Double:
          return Value::makeFloat(S.asFloat());
        }
      }
      return S; // pointer casts pass through
    }
    case CExprKind::ConstructVector: {
      const auto *V = cast<ConstructVector>(E.get());
      const auto *VT = cast<VectorCType>(V->getType().get());
      std::vector<double> Comps;
      if (V->getArgs().size() == 1) {
        double X = evalExpr(V->getArgs()[0], W).asFloat();
        Comps.assign(VT->getWidth(), X);
      } else {
        for (const CExprPtr &A : V->getArgs())
          Comps.push_back(evalExpr(A, W).asFloat());
        if (Comps.size() != VT->getWidth())
          runtimeError("vector constructor arity mismatch");
      }
      return Value::makeVec(std::move(Comps));
    }
    case CExprKind::ConstructStruct: {
      const auto *C = cast<ConstructStruct>(E.get());
      std::vector<Value> Fields;
      for (const CExprPtr &A : C->getArgs())
        Fields.push_back(evalExpr(A, W));
      return Value::makeTuple(std::move(Fields));
    }
    case CExprKind::VectorLoad: {
      const auto *V = cast<VectorLoad>(E.get());
      Value Base = evalExpr(V->getPointer(), W);
      if (Base.K != Value::Ptr)
        runtimeError("vload on a non-pointer");
      int64_t Idx = evalExpr(V->getIndex(), W).asInt();
      chargeAccess(Base.Space);
      std::vector<double> Comps;
      for (unsigned I = 0; I != V->getWidth(); ++I) {
        size_t At = static_cast<size_t>(Idx) * V->getWidth() + I;
        if (MG) {
          if (MG->check(Base.P.get(), static_cast<int64_t>(At),
                        Base.P->size(), W.Linear, W.GroupId,
                        /*IsWrite=*/false) == MemGuard::Access::OutOfBounds) {
            Comps.push_back(0);
            continue;
          }
        } else if (At >= Base.P->size()) {
          runtimeError("vload out of bounds", DiagCode::RuntimeOutOfBounds);
        }
        if (RD)
          RD->recordAccess(Base.P.get(), static_cast<int64_t>(At),
                           Base.Space, W.Linear, /*IsWrite=*/false);
        Comps.push_back((*Base.P)[At].asFloat());
      }
      return Value::makeVec(std::move(Comps));
    }
    case CExprKind::VectorStore: {
      const auto *V = cast<VectorStore>(E.get());
      Value Val = evalExpr(V->getValue(), W);
      Value Base = evalExpr(V->getPointer(), W);
      if (Base.K != Value::Ptr || Val.K != Value::Vec)
        runtimeError("vstore operand mismatch");
      int64_t Idx = evalExpr(V->getIndex(), W).asInt();
      chargeAccess(Base.Space);
      for (unsigned I = 0; I != V->getWidth(); ++I) {
        size_t At = static_cast<size_t>(Idx) * V->getWidth() + I;
        if (MG) {
          if (MG->check(Base.P.get(), static_cast<int64_t>(At),
                        Base.P->size(), W.Linear, W.GroupId,
                        /*IsWrite=*/true) == MemGuard::Access::OutOfBounds)
            continue; // record and drop the component, keep running
        } else if (At >= Base.P->size()) {
          runtimeError("vstore out of bounds", DiagCode::RuntimeOutOfBounds);
        }
        if (RD)
          RD->recordAccess(Base.P.get(), static_cast<int64_t>(At),
                           Base.Space, W.Linear, /*IsWrite=*/true);
        (*Base.P)[At] = Value::makeFloat(Val.V[I]);
      }
      return Value::makeInt(0);
    }
    }
    lift_unreachable("unhandled expression kind");
  }

  static size_t vectorComponent(const std::string &Field, size_t Width) {
    if (Field.size() == 1) {
      switch (Field[0]) {
      case 'x':
        return 0;
      case 'y':
        return 1;
      case 'z':
        return 2;
      case 'w':
        return 3;
      default:
        break;
      }
    }
    if (Field.size() >= 2 && Field[0] == 's') {
      size_t I = static_cast<size_t>(std::atoi(Field.c_str() + 1));
      if (I < Width)
        return I;
    }
    throwDiag(DiagCode::RuntimeBadValue, DiagLocation(),
              "runtime: bad vector component ." + Field);
  }

  Value evalBinary(const Binary *B, WorkItem &W) {
    Value L = evalExpr(B->getLhs(), W);
    Value R = evalExpr(B->getRhs(), W);
    BinOp Op = B->getOp();

    // Vector operations apply element-wise, with scalar broadcast.
    if (L.K == Value::Vec || R.K == Value::Vec) {
      size_t Width = L.K == Value::Vec ? L.V.size() : R.V.size();
      Cost.ArithOps += Width;
      std::vector<double> Out(Width);
      for (size_t I = 0; I != Width; ++I) {
        double A = L.K == Value::Vec ? L.V[I] : L.asFloat();
        double Bv = R.K == Value::Vec ? R.V[I] : R.asFloat();
        Out[I] = applyFloatOp(Op, A, Bv);
      }
      return Value::makeVec(std::move(Out));
    }

    if (L.K == Value::Int && R.K == Value::Int &&
        (Op == BinOp::Div || Op == BinOp::Rem))
      ++Cost.DivModOps;
    else
      ++Cost.ArithOps;
    if (L.K == Value::Int && R.K == Value::Int) {
      int64_t A = L.I, Bv = R.I;
      switch (Op) {
      case BinOp::Add:
        return Value::makeInt(wrapAdd(A, Bv));
      case BinOp::Sub:
        return Value::makeInt(wrapSub(A, Bv));
      case BinOp::Mul:
        return Value::makeInt(wrapMul(A, Bv));
      case BinOp::Div:
        if (Bv == 0)
          runtimeError("integer division by zero",
                       DiagCode::RuntimeDivByZero);
        // INT64_MIN / -1 overflows; wrap like the negation it is.
        if (Bv == -1)
          return Value::makeInt(wrapNeg(A));
        return Value::makeInt(A / Bv);
      case BinOp::Rem:
        if (Bv == 0)
          runtimeError("integer remainder by zero",
                       DiagCode::RuntimeDivByZero);
        if (Bv == -1)
          return Value::makeInt(0);
        return Value::makeInt(A % Bv);
      case BinOp::Lt:
        return Value::makeInt(A < Bv);
      case BinOp::Le:
        return Value::makeInt(A <= Bv);
      case BinOp::Gt:
        return Value::makeInt(A > Bv);
      case BinOp::Ge:
        return Value::makeInt(A >= Bv);
      case BinOp::Eq:
        return Value::makeInt(A == Bv);
      case BinOp::Ne:
        return Value::makeInt(A != Bv);
      case BinOp::And:
        return Value::makeInt(A != 0 && Bv != 0);
      case BinOp::Or:
        return Value::makeInt(A != 0 || Bv != 0);
      }
      lift_unreachable("unhandled binary operator");
    }

    double A = L.asFloat(), Bv = R.asFloat();
    switch (Op) {
    case BinOp::Lt:
      return Value::makeInt(A < Bv);
    case BinOp::Le:
      return Value::makeInt(A <= Bv);
    case BinOp::Gt:
      return Value::makeInt(A > Bv);
    case BinOp::Ge:
      return Value::makeInt(A >= Bv);
    case BinOp::Eq:
      return Value::makeInt(A == Bv);
    case BinOp::Ne:
      return Value::makeInt(A != Bv);
    case BinOp::And:
      return Value::makeInt(A != 0 && Bv != 0);
    case BinOp::Or:
      return Value::makeInt(A != 0 || Bv != 0);
    default:
      return Value::makeFloat(applyFloatOp(Op, A, Bv));
    }
  }

  [[noreturn]] static void badFloatOp() {
    throwDiag(DiagCode::RuntimeUnsupported, DiagLocation(),
              "runtime: unsupported float operation");
  }

  static double applyFloatOp(BinOp Op, double A, double B) {
    switch (Op) {
    case BinOp::Add:
      return A + B;
    case BinOp::Sub:
      return A - B;
    case BinOp::Mul:
      return A * B;
    case BinOp::Div:
      return A / B;
    case BinOp::Lt:
      return A < B;
    case BinOp::Gt:
      return A > B;
    case BinOp::Le:
      return A <= B;
    case BinOp::Ge:
      return A >= B;
    case BinOp::Eq:
      return A == B;
    case BinOp::Ne:
      return A != B;
    default:
      badFloatOp();
    }
  }

  Value evalCall(const Call *C, WorkItem &W) {
    const std::string &Name = C->getCallee();

    // OpenCL work-item built-ins.
    if (Name == "get_local_id" || Name == "get_group_id" ||
        Name == "get_global_id" || Name == "get_local_size" ||
        Name == "get_num_groups" || Name == "get_global_size") {
      int64_t D = evalExpr(C->getArgs()[0], W).asInt();
      if (D < 0 || D > 2)
        runtimeError("bad NDRange dimension");
      if (Name == "get_local_id")
        return Value::makeInt(W.LocalId[D]);
      if (Name == "get_group_id")
        return Value::makeInt(W.GroupId[D]);
      if (Name == "get_global_id")
        return Value::makeInt(W.GroupId[D] * Cfg.Local[D] + W.LocalId[D]);
      if (Name == "get_local_size")
        return Value::makeInt(Cfg.Local[D]);
      if (Name == "get_num_groups")
        return Value::makeInt(Cfg.Global[D] / Cfg.Local[D]);
      return Value::makeInt(Cfg.Global[D]);
    }

    // Math built-ins.
    static const std::map<std::string, double (*)(double)> Unary1 = {
        {"sqrt", [](double X) { return std::sqrt(X); }},
        {"rsqrt", [](double X) { return 1.0 / std::sqrt(X); }},
        {"sin", [](double X) { return std::sin(X); }},
        {"cos", [](double X) { return std::cos(X); }},
        {"exp", [](double X) { return std::exp(X); }},
        {"log", [](double X) { return std::log(X); }},
        {"fabs", [](double X) { return std::fabs(X); }},
        {"floor", [](double X) { return std::floor(X); }},
    };
    auto U1 = Unary1.find(Name);
    if (U1 != Unary1.end()) {
      ++Cost.MathCalls;
      Value A = evalExpr(C->getArgs()[0], W);
      if (A.K == Value::Vec) {
        for (double &D : A.V)
          D = U1->second(D);
        return A;
      }
      return Value::makeFloat(U1->second(A.asFloat()));
    }
    if (Name == "fmin" || Name == "min" || Name == "fmax" || Name == "max" ||
        Name == "pow") {
      ++Cost.MathCalls;
      double A = evalExpr(C->getArgs()[0], W).asFloat();
      double B = evalExpr(C->getArgs()[1], W).asFloat();
      if (Name == "pow")
        return Value::makeFloat(std::pow(A, B));
      bool Min = Name[0] == 'f' ? Name[1] == 'm' && Name[2] == 'i'
                                : Name[1] == 'i';
      return Value::makeFloat(Min ? std::fmin(A, B) : std::fmax(A, B));
    }
    if (Name == "dot") {
      ++Cost.MathCalls;
      Value A = evalExpr(C->getArgs()[0], W);
      Value B = evalExpr(C->getArgs()[1], W);
      if (A.K != Value::Vec || B.K != Value::Vec || A.V.size() != B.V.size())
        runtimeError("dot expects equal-width vectors");
      double S = 0;
      for (size_t I = 0; I != A.V.size(); ++I)
        S += A.V[I] * B.V[I];
      return Value::makeFloat(S);
    }

    // User functions from the module.
    CFunctionPtr F = K.Module.findFunction(Name);
    if (!F)
      runtimeError("call to unknown function " + Name);
    ++Cost.Calls;
    if (F->Params.size() != C->getArgs().size())
      runtimeError("arity mismatch calling " + Name);
    for (size_t I = 0, E = C->getArgs().size(); I != E; ++I)
      setVarNoArith(W, F->Params[I].get(), evalExpr(C->getArgs()[I], W));
    for (const CStmtPtr &S : F->Body->getStmts()) {
      ExecResult R = execStmtSingle(S, W);
      if (R.Returned)
        return R.Ret;
    }
    runtimeError("function " + Name + " did not return a value");
  }

  void setVarNoArith(WorkItem &W, const CVar *V, Value Val) {
    W.Vars[V] = std::move(Val);
  }
};

} // namespace

namespace {

/// The one throwing execution path every public launch entry wraps: runs
/// the machine with the detectors the config enables.
CostReport runMachine(const codegen::CompiledKernel &K,
                      const std::vector<Buffer *> &Buffers,
                      const std::map<std::string, int64_t> &Sizes,
                      const LaunchConfig &Cfg, RaceReport &Races,
                      GuardReport &Guards) {
  std::optional<RaceDetector> RD;
  std::optional<MemGuard> MG;
  if (Cfg.CheckRaces)
    RD.emplace(Races);
  if (Cfg.CheckMemory)
    MG.emplace(Guards);
  return Machine(K, Cfg, RD ? &*RD : nullptr, MG ? &*MG : nullptr)
      .run(Buffers, Sizes);
}

} // namespace

CostReport ocl::launch(const codegen::CompiledKernel &K,
                       const std::vector<Buffer *> &Buffers,
                       const std::map<std::string, int64_t> &Sizes,
                       const LaunchConfig &Cfg) {
  try {
    RaceReport Races;
    GuardReport Guards;
    CostReport Cost = runMachine(K, Buffers, Sizes, Cfg, Races, Guards);
    if (!Races.clean())
      fatalError("runtime: race check failed for kernel '" +
                 K.Module.Kernel->Name + "': " + Races.summary());
    if (!Guards.clean())
      fatalError("runtime: memory check failed for kernel '" +
                 K.Module.Kernel->Name + "': " + Guards.summary());
    return Cost;
  } catch (DiagnosticError &E) {
    fatalError(E.Diag.render());
  }
}

CostReport ocl::launch(const codegen::CompiledKernel &K,
                       const std::vector<Buffer *> &Buffers,
                       const std::map<std::string, int64_t> &Sizes,
                       const LaunchConfig &Cfg, RaceReport &Report) {
  GuardReport Guards;
  return launch(K, Buffers, Sizes, Cfg, Report, Guards);
}

CostReport ocl::launch(const codegen::CompiledKernel &K,
                       const std::vector<Buffer *> &Buffers,
                       const std::map<std::string, int64_t> &Sizes,
                       const LaunchConfig &Cfg, RaceReport &Races,
                       GuardReport &Guards) {
  try {
    return runMachine(K, Buffers, Sizes, Cfg, Races, Guards);
  } catch (DiagnosticError &E) {
    fatalError(E.Diag.render());
  }
}

Expected<LaunchResult>
ocl::launchChecked(const codegen::CompiledKernel &K,
                   const std::vector<Buffer *> &Buffers,
                   const std::map<std::string, int64_t> &Sizes,
                   const LaunchConfig &Cfg, DiagnosticEngine &Engine) {
  LaunchResult R;
  try {
    R.Cost = runMachine(K, Buffers, Sizes, Cfg, R.Races, R.Guards);
  } catch (DiagnosticError &E) {
    if (!E.Recorded)
      Engine.report(E.Diag);
    return {};
  }
  std::string Kernel = K.Module.Kernel ? K.Module.Kernel->Name : "kernel";
  for (const RaceFinding &F : R.Races.Findings)
    Engine.error(DiagCode::RuntimeRace, DiagLocation::inContext(Kernel),
                 std::string(RaceFinding::kindName(F.K)) + " at " +
                     F.Location + ": " + F.Detail);
  for (const GuardFinding &F : R.Guards.Findings)
    Engine.error(F.K == GuardFinding::UninitRead
                     ? DiagCode::RuntimeUninitRead
                     : DiagCode::RuntimeOutOfBounds,
                 DiagLocation::inContext(Kernel),
                 std::string(GuardFinding::kindName(F.K)) + " at " +
                     F.Location + ": " + F.Detail);
  return R;
}

codegen::CompiledKernel ocl::wrapModule(c::CModule M) {
  codegen::CompiledKernel K;
  if (!M.Kernel)
    throwDiag(DiagCode::HostBadBuffer, DiagLocation::inContext("wrapModule"),
              "wrapModule: translation unit has no kernel");
  unsigned NextId = 1;
  for (const CVarPtr &P : M.Kernel->Params) {
    codegen::KernelParamInfo Info;
    Info.Var = P;
    if (isa<PointerCType>(P->Ty.get())) {
      auto Store = std::make_shared<view::Storage>();
      Store->Id = NextId++;
      Store->Var = P;
      Store->AS = c::CAddrSpace::Global;
      Store->ElemType = cast<PointerCType>(P->Ty.get())->getPointee();
      Store->NumElements = arith::cst(0); // bound by the caller, in order
      Info.Store = Store;
    } else {
      Info.IsSizeParam = true;
      Info.ArithId = 0;
    }
    K.Params.push_back(Info);
  }
  K.Module = std::move(M);
  return K;
}
