//===- Interp.cpp - Lockstep work-item interpreter ---------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes compiled kernels on the simulated device. Statements that
/// contain barriers are executed in lockstep across the work-items of a
/// group (their control flow must be uniform, as OpenCL requires);
/// everything else runs per work-item. Every memory access, arithmetic
/// operation, barrier and loop iteration is charged to the cost model.
///
/// A launch is split into an immutable LaunchPlan (argument bindings,
/// variable-slot table, frozen barrier / index-cost analyses, launch-level
/// detector registrations) and per-worker GroupWorkers that claim groups
/// from an atomic counter and execute them against reused flat frame
/// arenas. Costs accumulate per worker; race / guarded-memory findings
/// are detected per group and merged in canonical group order, so every
/// observable result is identical at any thread count (see
/// docs/PARALLEL_RUNTIME.md).
///
//===----------------------------------------------------------------------===//

#include "ocl/Runtime.h"

#include "arith/Eval.h"
#include "cast/CPrinter.h"
#include "ocl/FaultInject.h"
#include "ocl/MemGuard.h"
#include "ocl/RaceDetector.h"
#include "ocl/ThreadPool.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/Error.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <new>
#include <optional>
#include <unordered_map>
#include <unordered_set>

using namespace lift;
using namespace lift::c;
using namespace lift::ocl;

double Value::asFloat() const {
  switch (K) {
  case Int:
    return static_cast<double>(I);
  case Flt:
    return F;
  default:
    throwDiag(DiagCode::RuntimeBadValue, DiagLocation(),
              "runtime: expected a numeric value");
  }
}

int64_t Value::asInt() const {
  switch (K) {
  case Int:
    return I;
  case Flt:
    return static_cast<int64_t>(F);
  default:
    throwDiag(DiagCode::RuntimeBadValue, DiagLocation(),
              "runtime: expected an integer value");
  }
}

bool Value::asBool() const { return asInt() != 0; }

//===----------------------------------------------------------------------===//
// Host-side memory accounting
//===----------------------------------------------------------------------===//

namespace {

std::atomic<uint64_t> HostLiveBytes{0};
std::atomic<uint64_t> HostHighWaterBytes{0};

void chargeHostBytes(uint64_t Bytes) {
  uint64_t Live =
      HostLiveBytes.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
  uint64_t Prev = HostHighWaterBytes.load(std::memory_order_relaxed);
  while (Live > Prev && !HostHighWaterBytes.compare_exchange_weak(
                            Prev, Live, std::memory_order_relaxed)) {
  }
}

} // namespace

MemoryPtr ocl::trackedMemory(std::vector<Value> Elems) {
  const uint64_t Bytes = Elems.size() * sizeof(Value);
  chargeHostBytes(Bytes);
  auto *Raw = new std::vector<Value>(std::move(Elems));
  return MemoryPtr(Raw, [Bytes](std::vector<Value> *P) {
    HostLiveBytes.fetch_sub(Bytes, std::memory_order_relaxed);
    delete P;
  });
}

uint64_t ocl::hostBytesLive() {
  return HostLiveBytes.load(std::memory_order_relaxed);
}

uint64_t ocl::hostBytesHighWater() {
  return HostHighWaterBytes.load(std::memory_order_relaxed);
}

void ocl::resetHostBytesHighWater() {
  HostHighWaterBytes.store(HostLiveBytes.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
}

HostBytesCharge::HostBytesCharge(uint64_t B) : Bytes(B) {
  chargeHostBytes(Bytes);
}

HostBytesCharge::~HostBytesCharge() {
  if (Bytes)
    HostLiveBytes.fetch_sub(Bytes, std::memory_order_relaxed);
}

HostBytesCharge &HostBytesCharge::operator=(HostBytesCharge &&O) noexcept {
  if (this != &O) {
    if (Bytes)
      HostLiveBytes.fetch_sub(Bytes, std::memory_order_relaxed);
    Bytes = O.Bytes;
    O.Bytes = 0;
  }
  return *this;
}

Buffer Buffer::ofFloats(const std::vector<float> &Data) {
  std::vector<Value> Elems;
  Elems.reserve(Data.size());
  for (float F : Data)
    Elems.push_back(Value::makeFloat(F));
  Buffer B;
  B.Mem = trackedMemory(std::move(Elems));
  return B;
}

Buffer Buffer::ofInts(const std::vector<int> &Data) {
  std::vector<Value> Elems;
  Elems.reserve(Data.size());
  for (int I : Data)
    Elems.push_back(Value::makeInt(I));
  Buffer B;
  B.Mem = trackedMemory(std::move(Elems));
  return B;
}

Buffer Buffer::ofVectors(const std::vector<float> &Flat, unsigned Width) {
  if (Width == 0 || Flat.size() % Width != 0)
    throwDiag(DiagCode::HostBadBuffer, DiagLocation::inContext("ofVectors"),
              "ofVectors: flat size " + std::to_string(Flat.size()) +
                  " is not a multiple of the width " + std::to_string(Width));
  std::vector<Value> Elems;
  Elems.reserve(Flat.size() / Width);
  for (size_t I = 0; I != Flat.size(); I += Width) {
    VecN Comps;
    Comps.reserve(Width);
    for (size_t J = I; J != I + Width; ++J)
      Comps.push_back(Flat[J]);
    Elems.push_back(Value::makeVec(std::move(Comps)));
  }
  Buffer B;
  B.Mem = trackedMemory(std::move(Elems));
  return B;
}

static void flattenValue(const Value &V, std::vector<float> &Out) {
  switch (V.K) {
  case Value::Int:
    Out.push_back(static_cast<float>(V.I));
    return;
  case Value::Flt:
    Out.push_back(static_cast<float>(V.F));
    return;
  case Value::Vec:
    for (double D : V.V)
      Out.push_back(static_cast<float>(D));
    return;
  case Value::Tup:
    for (const Value &E : V.T)
      flattenValue(E, Out);
    return;
  case Value::Ptr:
    fatalError("cannot flatten a pointer value");
  }
}

/// Reading results out of a buffer a cancelled or failed launch may have
/// partially written is a silent-corruption hazard; the buffer stays
/// poisoned (E0601) until rewritten or explicitly cleared.
static void checkNotPoisoned(const Buffer &B, const char *What) {
  if (B.Poisoned)
    throwDiag(DiagCode::HostBadBuffer, DiagLocation::inContext(What),
              std::string(What) +
                  ": buffer was poisoned by a cancelled or failed launch "
                  "and may hold partial results",
              {"rewrite the buffer or call clearPoison() to read it anyway"});
}

std::vector<float> Buffer::toFlatFloats() const {
  checkNotPoisoned(*this, "toFlatFloats");
  std::vector<float> R;
  R.reserve(Mem->size());
  for (const Value &V : *Mem)
    flattenValue(V, R);
  return R;
}

void Buffer::clearPoison() {
  // A poisoned run's partial writes committed init bits for elements whose
  // values are now suspect. Forgiving the poison must also forget those
  // bits, or a later stage reading the never-rewritten elements would pass
  // the uninitialized-read guard on stale state (see docs/PIPELINES.md).
  if (Poisoned && Init)
    std::fill(Init->begin(), Init->end(), uint8_t(0));
  Poisoned = false;
}

Buffer Buffer::zeros(size_t Count) {
  Buffer B;
  B.Mem = trackedMemory(std::vector<Value>(Count, Value::makeFloat(0)));
  B.Init = std::make_shared<std::vector<uint8_t>>(Count, uint8_t(0));
  return B;
}

Buffer Buffer::filled(size_t Count, const Value &V) {
  Buffer B;
  B.Mem = trackedMemory(std::vector<Value>(Count, V));
  return B;
}

std::vector<float> Buffer::toFloats() const {
  checkNotPoisoned(*this, "toFloats");
  std::vector<float> R;
  R.reserve(Mem->size());
  for (const Value &V : *Mem)
    R.push_back(static_cast<float>(V.asFloat()));
  return R;
}

std::vector<int> Buffer::toInts() const {
  checkNotPoisoned(*this, "toInts");
  std::vector<int> R;
  R.reserve(Mem->size());
  for (const Value &V : *Mem)
    R.push_back(static_cast<int>(V.asInt()));
  return R;
}

CostReport &CostReport::operator+=(const CostReport &O) {
  GlobalAccesses += O.GlobalAccesses;
  LocalAccesses += O.LocalAccesses;
  PrivateAccesses += O.PrivateAccesses;
  ArithOps += O.ArithOps;
  DivModOps += O.DivModOps;
  MathCalls += O.MathCalls;
  Calls += O.Calls;
  Barriers += O.Barriers;
  LoopIters += O.LoopIters;
  return *this;
}

ExecLimits ExecLimits::withEnvDefaults(ExecLimits L) {
  if (L.MaxSteps == 0)
    if (const char *E = std::getenv("LIFT_MAX_STEPS"))
      L.MaxSteps = std::strtoull(E, nullptr, 10);
  if (L.TimeoutMs == 0)
    if (const char *E = std::getenv("LIFT_TIMEOUT_MS"))
      L.TimeoutMs = std::strtoll(E, nullptr, 10);
  if (L.MaxMemoryBytes == 0)
    if (const char *E = std::getenv("LIFT_MAX_MEMORY"))
      L.MaxMemoryBytes = std::strtoull(E, nullptr, 10);
  return L;
}

namespace {

/// Wrapping two's-complement arithmetic: the kernels the fuzzer generates
/// can overflow intermediate integer results, which is undefined behavior
/// on int64_t. OpenCL C integer arithmetic wraps; match it.
inline int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
inline int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
inline int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
inline int64_t wrapNeg(int64_t A) {
  return static_cast<int64_t>(0 - static_cast<uint64_t>(A));
}

/// Deterministic per-group seed: decorrelates the schedule-perturbation
/// RNG across groups while keeping it independent of which worker runs
/// the group (splitmix64-style finalizer).
inline uint64_t mixSeed(uint64_t Seed, uint64_t Group) {
  uint64_t Z = Seed * 6364136223846793005ULL + 1442695040888963407ULL +
               Group * 0x9e3779b97f4a7c15ULL;
  Z ^= Z >> 30;
  Z *= 0xbf58476d1ce4e5b9ULL;
  Z ^= Z >> 27;
  Z *= 0x94d049bb133111ebULL;
  Z ^= Z >> 31;
  return Z ? Z : 1;
}

/// Result of executing statements inside a function body.
struct ExecResult {
  bool Returned = false;
  Value Ret;
};

/// Per-work-item state: views into the owning worker's flat arenas. The
/// frame is indexed by CVar::Slot; arith values by CVar::ArithSlot. A slot
/// is live for the current group iff its epoch equals the worker's — so
/// frames are recycled across groups without clearing.
struct ItemCtx {
  std::array<int64_t, 3> LocalId = {0, 0, 0};
  std::array<int64_t, 3> GroupId = {0, 0, 0};
  int64_t Linear = 0; ///< Linear in-group id (race detector diagnostics).
  Value *Frame = nullptr;
  uint32_t *FrameEpoch = nullptr;
  int64_t *AVals = nullptr;
  uint32_t *AEpoch = nullptr;
};

/// One kernel-argument binding, resolved once per launch and replayed into
/// every work-item's frame (loop-invariant: the old interpreter re-applied
/// the name->value map per item per group).
struct BoundArg {
  const CVar *Var = nullptr;
  Value Val;
  int Slot = -1;
  int ArithSlot = -1;   ///< -1 when Var carries no arith id.
  int64_t ArithInt = 0; ///< Pre-converted integer value for arith slots.
};

constexpr unsigned kMaxFindings = 64;

/// Thrown inside a worker when another worker has already tripped a limit
/// or failed: unwinds the current group without producing a finding of
/// its own. Never escapes executePlan.
struct CancelledError {};

enum class LimitKind : int { None = 0, Steps, Deadline, Memory, Cancelled };

/// Thrown by the worker that trips an execution limit. The diagnostic is
/// synthesized after the join from the shared monitor state so the
/// rendered message is identical at any thread count. Never escapes
/// executePlan.
struct LimitError {
  LimitKind K;
};

/// Thrown by the worker whose occurrence of a mid-execution fault site
/// (barrier, group dispatch, step chunk) was armed to fail. Like
/// LimitError, the E0515 diagnostic is synthesized after the join (the
/// message names only the kernel and the site, never a group index) so it
/// is bit-identical at any thread count. Never escapes executePlan.
struct InjectedFaultError {
  fault::Site S;
};

/// Value-count to byte-count conversion that saturates instead of
/// wrapping: generated programs can request absurd element counts.
inline uint64_t bytesFor(uint64_t Count) {
  if (Count > std::numeric_limits<uint64_t>::max() / sizeof(Value))
    return std::numeric_limits<uint64_t>::max();
  return Count * sizeof(Value);
}

/// Shared cancellation and budget state for one launch (see
/// docs/RELIABILITY.md). Workers keep a private countdown and only touch
/// the shared atomics every TickInterval interpreter steps, so the
/// default unbounded configuration never reaches this class at all and
/// bounded runs amortize the shared-cache traffic.
class ExecMonitor {
public:
  /// Steps between slow-path checks. Small enough that a deadline is
  /// honored promptly, large enough that the fetch_sub traffic is noise.
  static constexpr uint32_t TickInterval = 256;

  const ExecLimits Limits;

  explicit ExecMonitor(const ExecLimits &L) : Limits(L) {
    StepsLeft.store(L.MaxSteps, std::memory_order_relaxed);
    MemLeft.store(
        L.MaxMemoryBytes >
                static_cast<uint64_t>(std::numeric_limits<int64_t>::max())
            ? std::numeric_limits<int64_t>::max()
            : static_cast<int64_t>(L.MaxMemoryBytes),
        std::memory_order_relaxed);
    HasDeadline = L.TimeoutMs > 0;
    if (HasDeadline)
      Deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(L.TimeoutMs);
  }

  /// Does any limit require the per-statement countdown hook? The host
  /// cancellation token is polled on the same slow path, so it forces the
  /// hook on even when no numeric budget is set.
  bool monitorsSteps() const {
    return Limits.MaxSteps != 0 || HasDeadline || Limits.Cancel != nullptr;
  }

  /// Has the host (service layer) asked this launch to stop?
  bool hostCancelled() const {
    return Limits.Cancel && Limits.Cancel->load(std::memory_order_relaxed);
  }

  bool stopRequested() const { return Stop.load(std::memory_order_relaxed); }
  void requestStop() { Stop.store(true, std::memory_order_relaxed); }

  /// Takes \p N steps out of the shared budget; false once it is spent.
  /// fetch_sub can wrap past zero under contention, but at most one extra
  /// tick interval per worker escapes: the stop flag is checked before
  /// the budget on every slow tick.
  bool claimSteps(uint64_t N) {
    if (Limits.MaxSteps == 0)
      return true;
    uint64_t Prev = StepsLeft.fetch_sub(N, std::memory_order_relaxed);
    return Prev >= N;
  }

  bool pastDeadline() const {
    return HasDeadline && std::chrono::steady_clock::now() >= Deadline;
  }

  /// Charges \p Bytes of simulated device allocation; false once the cap
  /// is exceeded.
  bool chargeAllocation(uint64_t Bytes) {
    if (Limits.MaxMemoryBytes == 0)
      return true;
    int64_t Prev = MemLeft.fetch_sub(static_cast<int64_t>(Bytes),
                                     std::memory_order_relaxed);
    return Prev >= 0 && static_cast<uint64_t>(Prev) >= Bytes;
  }

  /// First tripped limit wins (later trips on other workers are dropped);
  /// also requests cooperative cancellation.
  void noteLimit(LimitKind K) {
    int Expected = 0;
    TrippedKind.compare_exchange_strong(Expected, static_cast<int>(K),
                                        std::memory_order_relaxed);
    requestStop();
  }

  /// First detail string wins. Deterministic for single-group launches
  /// (only one worker can trip first); best-effort otherwise.
  void noteDetail(std::string D) {
    std::lock_guard<std::mutex> L(DetailM);
    if (Detail.empty())
      Detail = std::move(D);
  }

  LimitKind tripped() const {
    return static_cast<LimitKind>(
        TrippedKind.load(std::memory_order_relaxed));
  }

  /// Steps claimed so far (0 when no step budget is set). Read after the
  /// workers join, so the relaxed load sees every claim. fetch_sub can
  /// overshoot past zero on the tripping tick; clamp to the budget.
  uint64_t stepsUsed() const {
    if (Limits.MaxSteps == 0)
      return 0;
    uint64_t Left = StepsLeft.load(std::memory_order_relaxed);
    return Left > Limits.MaxSteps ? Limits.MaxSteps : Limits.MaxSteps - Left;
  }

  std::string detail() {
    std::lock_guard<std::mutex> L(DetailM);
    return Detail;
  }

private:
  std::atomic<uint64_t> StepsLeft{0};
  std::atomic<int64_t> MemLeft{0};
  std::atomic<bool> Stop{false};
  std::atomic<int> TrippedKind{0};
  bool HasDeadline = false;
  std::chrono::steady_clock::time_point Deadline;
  std::mutex DetailM;
  std::string Detail;
};

/// Read-only launch state shared by every worker: the compiled kernel,
/// resolved argument bindings, slot table, and the barrier / index-cost
/// analyses precomputed (and then frozen) before groups are dispatched.
class LaunchPlan {
public:
  const codegen::CompiledKernel &K;
  const LaunchConfig Cfg;
  std::shared_ptr<const codegen::VarSlotInfo> Slots;

  std::unordered_map<unsigned, CVarPtr> StorageVarById;
  std::vector<BoundArg> Bindings;
  std::vector<Buffer> Temps; // auto-allocated global intermediates

  std::array<int64_t, 3> Groups = {1, 1, 1};
  int64_t NumGroups = 1;
  int64_t WIsPerGroup = 1;

  /// Launch-level block names / bitmaps shared by per-group sessions.
  std::unordered_map<const void *, std::string> RaceBlockNames;
  SharedBlockTable GuardBlocks;

  /// Per-launch findings cap (ExecLimits::MaxFindings, default 64).
  unsigned MaxFindings = kMaxFindings;
  /// Shared cancellation / budget state; null when no limit is bound.
  std::unique_ptr<ExecMonitor> Monitor;
  /// The caller-supplied buffers, poisoned if execution fails mid-launch.
  std::vector<Buffer *> CallerBuffers;

  LaunchPlan(const codegen::CompiledKernel &K, const LaunchConfig &Cfg)
      : K(K), Cfg(Cfg) {}

  [[noreturn]] void
  runtimeError(const std::string &Msg,
               DiagCode Code = DiagCode::RuntimeUnsupported) const {
    throwDiag(Code,
              DiagLocation::inContext(K.Module.Kernel
                                          ? K.Module.Kernel->Name
                                          : std::string("kernel")),
              "runtime: " + Msg);
  }

  /// Frozen barrier analysis: precomputed over the whole module before
  /// dispatch, read concurrently by every worker afterwards.
  bool stmtBarrier(const CStmtPtr &S) const {
    auto It = BarrierCache.find(S.get());
    if (It == BarrierCache.end())
      runtimeError("internal: barrier query on an unanalyzed statement");
    return It->second;
  }

  /// Frozen static (div/mod, other-node) cost of an arith index
  /// expression. Expressions outside the precomputed set (none today) are
  /// costed on the fly without touching the shared cache.
  std::pair<unsigned, unsigned> indexCostOf(const arith::Expr &E) const {
    auto It = IndexCost.find(E.get());
    if (It != IndexCost.end())
      return It->second;
    unsigned DivMods = arith::countDivMod(E);
    unsigned Ops = arith::countOps(E);
    return {DivMods, Ops >= DivMods ? Ops - DivMods : 0};
  }

  void setup(const std::vector<Buffer *> &Buffers,
             const std::map<std::string, int64_t> &Sizes) {
    validateNDRange();

    ExecLimits Lim = ExecLimits::withEnvDefaults(Cfg.Limits);
    MaxFindings = Lim.MaxFindings != 0 ? Lim.MaxFindings : kMaxFindings;
    if (Lim.anyBound())
      Monitor = std::make_unique<ExecMonitor>(Lim);

    Slots = K.Slots ? K.Slots : codegen::computeVarSlots(K.Module);
    for (const auto &[Id, Var] : K.StorageVars)
      StorageVarById[Id] = Var;

    // Bind kernel arguments. First pass: size parameters, so temp buffer
    // sizes can be computed.
    std::unordered_map<unsigned, int64_t> SizeEnv;
    size_t NextBuffer = 0;
    for (const auto &P : K.Params) {
      if (!P.IsSizeParam)
        continue;
      auto It = Sizes.find(P.Var->Name);
      if (It == Sizes.end())
        throwDiag(DiagCode::RuntimeBadLaunch, DiagLocation(),
                  "launch: missing size argument '" + P.Var->Name + "'");
      SizeEnv[P.ArithId] = It->second;
      addBinding(P.Var.get(), Value::makeInt(It->second));
    }

    arith::EvalContext SizeCtx;
    SizeCtx.VarValue = [&](const arith::VarNode &V) -> int64_t {
      auto It = SizeEnv.find(V.getId());
      if (It == SizeEnv.end())
        throwDiag(DiagCode::RuntimeBadLaunch, DiagLocation(),
                  "launch: unbound size variable " + V.getName());
      return It->second;
    };

    Temps.reserve(K.Params.size());
    for (const auto &P : K.Params) {
      if (P.IsSizeParam || !P.Store)
        continue;
      if (!P.Store->NumElements) {
        // Scalar by-value parameter: bound via Sizes as a float/int.
        auto It = Sizes.find(P.Var->Name);
        if (It == Sizes.end())
          throwDiag(DiagCode::RuntimeBadLaunch, DiagLocation(),
                    "launch: missing scalar argument '" + P.Var->Name + "'");
        addBinding(P.Var.get(), Value::makeInt(It->second));
        continue;
      }
      if (NextBuffer < Buffers.size()) {
        Buffer *B = Buffers[NextBuffer];
        if (B->Poisoned)
          throwDiag(DiagCode::HostBadBuffer, DiagLocation(),
                    "launch: buffer for parameter '" + P.Var->Name +
                        "' was poisoned by an earlier cancelled launch",
                    {"rewrite the buffer or call clearPoison() to reuse it"});
        if (fault::shouldFail(fault::Site::BufferMap))
          runtimeError("injected fault: mapping the buffer for parameter '" +
                           P.Var->Name + "' failed",
                       DiagCode::RuntimeFaultInjected);
        // Caller buffers count against the launch memory cap too: the cap
        // bounds every byte a launch touches, not just its own
        // allocations (finer --max-memory).
        if (Monitor && !Monitor->chargeAllocation(bytesFor(B->size())))
          runtimeError("device memory limit of " +
                           std::to_string(Monitor->Limits.MaxMemoryBytes) +
                           " bytes exceeded while mapping the buffer for "
                           "parameter '" +
                           P.Var->Name + "' (" +
                           std::to_string(bytesFor(B->size())) + " bytes)",
                       DiagCode::RuntimeMemoryLimit);
        CallerBuffers.push_back(B);
        addBinding(P.Var.get(), Value::makePtr(B->Mem, MemSpace::Global));
        if (Cfg.CheckMemory)
          GuardBlocks.registerBlock(B->Mem.get(), P.Var->Name, B->Init);
        ++NextBuffer;
        continue;
      }
      // A compiler-introduced global temporary.
      int64_t Count = arith::evaluate(P.Store->NumElements, SizeCtx);
      if (Count < 0)
        throwDiag(DiagCode::RuntimeBadLaunch, DiagLocation(),
                  "launch: temporary buffer '" + P.Var->Name +
                      "' has negative element count " +
                      std::to_string(Count));
      if (Monitor &&
          !Monitor->chargeAllocation(bytesFor(static_cast<uint64_t>(Count))))
        runtimeError(
            "device memory limit of " +
                std::to_string(Monitor->Limits.MaxMemoryBytes) +
                " bytes exceeded while allocating temporary buffer '" +
                P.Var->Name + "' (" +
                std::to_string(bytesFor(static_cast<uint64_t>(Count))) +
                " bytes)",
            DiagCode::RuntimeMemoryLimit);
      if (fault::shouldFail(fault::Site::Alloc))
        runtimeError("injected fault: allocating temporary buffer '" +
                         P.Var->Name + "' failed",
                     DiagCode::RuntimeFaultInjected);
      Temps.push_back(Buffer::zeros(static_cast<size_t>(Count)));
      addBinding(P.Var.get(),
                 Value::makePtr(Temps.back().Mem, MemSpace::Global));
      if (Cfg.CheckMemory)
        GuardBlocks.registerBlock(Temps.back().Mem.get(), P.Var->Name,
                                  Temps.back().Init);
    }
    if (NextBuffer != Buffers.size())
      throwDiag(DiagCode::RuntimeBadLaunch, DiagLocation(),
                "launch: too many buffers supplied");

    if (Cfg.CheckRaces)
      for (const BoundArg &B : Bindings)
        if (B.Val.K == Value::Ptr)
          RaceBlockNames[B.Val.P.get()] = B.Var->Name;

    Groups = {Cfg.Global[0] / Cfg.Local[0], Cfg.Global[1] / Cfg.Local[1],
              Cfg.Global[2] / Cfg.Local[2]};
    NumGroups = Groups[0] * Groups[1] * Groups[2];
    WIsPerGroup = Cfg.Local[0] * Cfg.Local[1] * Cfg.Local[2];

    precomputeBarriers();
    precomputeIndexCosts();
  }

private:
  /// Mutable only during setup; frozen once groups are dispatched.
  std::unordered_map<const CStmt *, bool> BarrierCache;
  std::unordered_set<const CFunction *> BarrierScanStack;
  std::unordered_map<const arith::Node *, std::pair<unsigned, unsigned>>
      IndexCost;

  void addBinding(const CVar *Var, Value Val) {
    BoundArg B;
    B.Var = Var;
    B.Slot = Var->Slot;
    if (B.Slot < 0)
      runtimeError("internal: kernel parameter '" + Var->Name +
                   "' has no frame slot");
    if (Var->ArithId != 0) {
      B.ArithSlot = Var->ArithSlot;
      B.ArithInt = Val.asInt();
    }
    B.Val = std::move(Val);
    Bindings.push_back(std::move(B));
  }

  /// Rejects degenerate NDRange configurations before the group loop:
  /// non-positive sizes and global sizes not divisible by the local size
  /// previously produced division faults or silent zero-group runs.
  void validateNDRange() const {
    for (int D = 0; D != 3; ++D) {
      if (Cfg.Local[D] <= 0 || Cfg.Global[D] <= 0)
        throwDiag(DiagCode::RuntimeBadNDRange, DiagLocation(),
                  "launch: degenerate NDRange in dimension " +
                      std::to_string(D) + ": global size " +
                      std::to_string(Cfg.Global[D]) + ", local size " +
                      std::to_string(Cfg.Local[D]) +
                      " (both must be positive)");
      if (Cfg.Global[D] % Cfg.Local[D] != 0)
        throwDiag(DiagCode::RuntimeBadNDRange, DiagLocation(),
                  "launch: global size " + std::to_string(Cfg.Global[D]) +
                      " is not divisible by local size " +
                      std::to_string(Cfg.Local[D]) + " in dimension " +
                      std::to_string(D));
    }
  }

  //===------------------------------------------------------------------===//
  // Barrier analysis (setup-time; the caches freeze before dispatch)
  //===------------------------------------------------------------------===//

  /// Does evaluating \p E reach a barrier? Only possible through a call to
  /// a user function whose body contains one — such calls must not run in
  /// divergent per-item order.
  bool exprReachesBarrier(const CExprPtr &E) {
    if (!E)
      return false;
    switch (E->getKind()) {
    case CExprKind::IntLit:
    case CExprKind::FloatLit:
    case CExprKind::VarRef:
    case CExprKind::ArithValue:
      return false;
    case CExprKind::ArrayAccess: {
      const auto *A = cast<ArrayAccess>(E.get());
      return exprReachesBarrier(A->getBase()) ||
             exprReachesBarrier(A->getIndex());
    }
    case CExprKind::Member:
      return exprReachesBarrier(cast<Member>(E.get())->getBase());
    case CExprKind::Binary: {
      const auto *B = cast<Binary>(E.get());
      return exprReachesBarrier(B->getLhs()) ||
             exprReachesBarrier(B->getRhs());
    }
    case CExprKind::Unary:
      return exprReachesBarrier(cast<Unary>(E.get())->getSub());
    case CExprKind::Call: {
      const auto *C = cast<Call>(E.get());
      for (const CExprPtr &A : C->getArgs())
        if (exprReachesBarrier(A))
          return true;
      CFunctionPtr F = K.Module.findFunction(C->getCallee());
      if (!F || !F->Body || BarrierScanStack.count(F.get()))
        return false;
      BarrierScanStack.insert(F.get());
      bool R = false;
      for (const CStmtPtr &S : F->Body->getStmts())
        R |= containsBarrier(S);
      BarrierScanStack.erase(F.get());
      return R;
    }
    case CExprKind::Ternary: {
      const auto *T = cast<Ternary>(E.get());
      return exprReachesBarrier(T->getCond()) ||
             exprReachesBarrier(T->getThen()) ||
             exprReachesBarrier(T->getElse());
    }
    case CExprKind::CastExpr:
      return exprReachesBarrier(cast<CastExpr>(E.get())->getSub());
    case CExprKind::ConstructVector:
      for (const CExprPtr &A : cast<ConstructVector>(E.get())->getArgs())
        if (exprReachesBarrier(A))
          return true;
      return false;
    case CExprKind::ConstructStruct:
      for (const CExprPtr &A : cast<ConstructStruct>(E.get())->getArgs())
        if (exprReachesBarrier(A))
          return true;
      return false;
    case CExprKind::VectorLoad: {
      const auto *V = cast<VectorLoad>(E.get());
      return exprReachesBarrier(V->getIndex()) ||
             exprReachesBarrier(V->getPointer());
    }
    case CExprKind::VectorStore: {
      const auto *V = cast<VectorStore>(E.get());
      return exprReachesBarrier(V->getValue()) ||
             exprReachesBarrier(V->getIndex()) ||
             exprReachesBarrier(V->getPointer());
    }
    }
    lift_unreachable("unhandled expression kind");
  }

  bool containsBarrier(const CStmtPtr &S) {
    auto It = BarrierCache.find(S.get());
    if (It != BarrierCache.end())
      return It->second;
    bool R = false;
    switch (S->getKind()) {
    case CStmtKind::Barrier:
      R = true;
      break;
    // Note |= not ||: the recursion must visit (and cache) every
    // sub-statement even after the answer is known, because exec-time
    // queries against the frozen cache hit all of them.
    case CStmtKind::Block:
      for (const CStmtPtr &Sub : cast<Block>(S.get())->getStmts())
        R |= containsBarrier(Sub);
      break;
    case CStmtKind::For: {
      const auto *F = cast<For>(S.get());
      for (const CStmtPtr &Sub : F->getBody()->getStmts())
        R |= containsBarrier(Sub);
      R = R || exprReachesBarrier(F->getInit()) ||
          exprReachesBarrier(F->getCond()) || exprReachesBarrier(F->getStep());
      break;
    }
    case CStmtKind::If: {
      const auto *I = cast<If>(S.get());
      for (const CStmtPtr &Sub : I->getThen()->getStmts())
        R |= containsBarrier(Sub);
      if (I->getElse())
        for (const CStmtPtr &Sub : I->getElse()->getStmts())
          R |= containsBarrier(Sub);
      R = R || exprReachesBarrier(I->getCond());
      break;
    }
    case CStmtKind::VarDecl:
      R = exprReachesBarrier(cast<VarDecl>(S.get())->getInit());
      break;
    case CStmtKind::Assign: {
      const auto *A = cast<Assign>(S.get());
      R = exprReachesBarrier(A->getLhs()) || exprReachesBarrier(A->getRhs());
      break;
    }
    case CStmtKind::ExprStmt:
      R = exprReachesBarrier(cast<ExprStmt>(S.get())->getExpr());
      break;
    case CStmtKind::Return:
      R = exprReachesBarrier(cast<Return>(S.get())->getValue());
      break;
    default:
      break;
    }
    BarrierCache[S.get()] = R;
    return R;
  }

  /// Visits every statement of the kernel and of every function body so
  /// all exec-time stmtBarrier queries hit the frozen cache.
  void precomputeBarriers() {
    if (K.Module.Kernel && K.Module.Kernel->Body)
      for (const CStmtPtr &S : K.Module.Kernel->Body->getStmts())
        containsBarrier(S);
    for (const CFunctionPtr &F : K.Module.Functions)
      if (F && F->Body)
        for (const CStmtPtr &S : F->Body->getStmts())
          containsBarrier(S);
  }

  //===------------------------------------------------------------------===//
  // Index-cost precomputation
  //===------------------------------------------------------------------===//

  void recordIndexCost(const arith::Expr &E) {
    if (!E)
      return;
    unsigned DivMods = arith::countDivMod(E);
    unsigned Ops = arith::countOps(E);
    IndexCost.emplace(
        E.get(),
        std::make_pair(DivMods, Ops >= DivMods ? Ops - DivMods : 0u));
  }

  void costExpr(const CExprPtr &E) {
    if (!E)
      return;
    switch (E->getKind()) {
    case CExprKind::IntLit:
    case CExprKind::FloatLit:
    case CExprKind::VarRef:
      return;
    case CExprKind::ArithValue: {
      const auto *AV = cast<ArithValue>(E.get());
      recordIndexCost(AV->getValue());
      auto [DivMods, Others] = indexCostOf(AV->getValue());
      AV->CostDivMods = static_cast<int>(DivMods);
      AV->CostOthers = Others;
      return;
    }
    case CExprKind::ArrayAccess:
      costExpr(cast<ArrayAccess>(E.get())->getBase());
      costExpr(cast<ArrayAccess>(E.get())->getIndex());
      return;
    case CExprKind::Member:
      costExpr(cast<Member>(E.get())->getBase());
      return;
    case CExprKind::Binary:
      costExpr(cast<Binary>(E.get())->getLhs());
      costExpr(cast<Binary>(E.get())->getRhs());
      return;
    case CExprKind::Unary:
      costExpr(cast<Unary>(E.get())->getSub());
      return;
    case CExprKind::Call:
      for (const CExprPtr &A : cast<Call>(E.get())->getArgs())
        costExpr(A);
      return;
    case CExprKind::Ternary:
      costExpr(cast<Ternary>(E.get())->getCond());
      costExpr(cast<Ternary>(E.get())->getThen());
      costExpr(cast<Ternary>(E.get())->getElse());
      return;
    case CExprKind::CastExpr:
      costExpr(cast<CastExpr>(E.get())->getSub());
      return;
    case CExprKind::ConstructVector:
      for (const CExprPtr &A : cast<ConstructVector>(E.get())->getArgs())
        costExpr(A);
      return;
    case CExprKind::ConstructStruct:
      for (const CExprPtr &A : cast<ConstructStruct>(E.get())->getArgs())
        costExpr(A);
      return;
    case CExprKind::VectorLoad:
      costExpr(cast<VectorLoad>(E.get())->getIndex());
      costExpr(cast<VectorLoad>(E.get())->getPointer());
      return;
    case CExprKind::VectorStore:
      costExpr(cast<VectorStore>(E.get())->getValue());
      costExpr(cast<VectorStore>(E.get())->getIndex());
      costExpr(cast<VectorStore>(E.get())->getPointer());
      return;
    }
  }

  void costStmt(const CStmtPtr &S) {
    if (!S)
      return;
    switch (S->getKind()) {
    case CStmtKind::Block:
      for (const CStmtPtr &Sub : cast<Block>(S.get())->getStmts())
        costStmt(Sub);
      return;
    case CStmtKind::VarDecl:
      recordIndexCost(cast<VarDecl>(S.get())->getArraySize());
      costExpr(cast<VarDecl>(S.get())->getInit());
      return;
    case CStmtKind::Assign:
      costExpr(cast<Assign>(S.get())->getLhs());
      costExpr(cast<Assign>(S.get())->getRhs());
      return;
    case CStmtKind::ExprStmt:
      costExpr(cast<ExprStmt>(S.get())->getExpr());
      return;
    case CStmtKind::For: {
      const auto *F = cast<For>(S.get());
      costExpr(F->getInit());
      costExpr(F->getCond());
      costExpr(F->getStep());
      for (const CStmtPtr &Sub : F->getBody()->getStmts())
        costStmt(Sub);
      return;
    }
    case CStmtKind::If: {
      const auto *I = cast<If>(S.get());
      costExpr(I->getCond());
      for (const CStmtPtr &Sub : I->getThen()->getStmts())
        costStmt(Sub);
      if (I->getElse())
        for (const CStmtPtr &Sub : I->getElse()->getStmts())
          costStmt(Sub);
      return;
    }
    case CStmtKind::Return:
      costExpr(cast<Return>(S.get())->getValue());
      return;
    case CStmtKind::Barrier:
    case CStmtKind::Comment:
      return;
    }
  }

  void precomputeIndexCosts() {
    if (K.Module.Kernel && K.Module.Kernel->Body)
      for (const CStmtPtr &S : K.Module.Kernel->Body->getStmts())
        costStmt(S);
    for (const CFunctionPtr &F : K.Module.Functions)
      if (F && F->Body)
        for (const CStmtPtr &S : F->Body->getStmts())
          costStmt(S);
  }
};

/// One worker's execution context, reused across every group the worker
/// claims: flat epoch-tracked frames, the active-item list, local/private
/// array arenas, per-group detector sessions and a per-worker cost
/// accumulator. Nothing here is shared with other workers.
class GroupWorker {
public:
  CostReport Cost;

  explicit GroupWorker(const LaunchPlan &P)
      : P(P), NumSlots(P.Slots->NumSlots),
        WIs(static_cast<size_t>(P.WIsPerGroup)),
        FrameArena(WIs * NumSlots), FrameEpochArena(WIs * NumSlots, 0),
        AValArena(WIs * NumSlots, 0), AEpochArena(WIs * NumSlots, 0),
        Items(WIs), WgLocalMem(NumSlots), WgLocalEpoch(NumSlots, 0),
        PrivateMem(NumSlots * WIs), Mon(P.Monitor.get()),
        StepMonitored(Mon && Mon->monitorsSteps()) {
    for (size_t I = 0; I != WIs; ++I) {
      ItemCtx &W = Items[I];
      W.Linear = static_cast<int64_t>(I);
      W.Frame = NumSlots ? &FrameArena[I * NumSlots] : nullptr;
      W.FrameEpoch = NumSlots ? &FrameEpochArena[I * NumSlots] : nullptr;
      W.AVals = NumSlots ? &AValArena[I * NumSlots] : nullptr;
      W.AEpoch = NumSlots ? &AEpochArena[I * NumSlots] : nullptr;
    }
    Active.reserve(WIs);
    // The arith evaluation context is wired once per worker; evalArith
    // repoints ArithItem instead of rebuilding the closures per call.
    ArithCtx.VarValue = [this](const arith::VarNode &V) -> int64_t {
      auto It = this->P.Slots->ArithSlotById.find(V.getId());
      ItemCtx &W = *ArithItem;
      if (It == this->P.Slots->ArithSlotById.end() ||
          W.AEpoch[It->second] != Epoch)
        this->P.runtimeError("unbound index variable " + V.getName());
      return W.AVals[It->second];
    };
    ArithCtx.LookupValue = [this](unsigned TableId,
                                  int64_t Index) -> int64_t {
      auto SIt = this->P.StorageVarById.find(TableId);
      if (SIt == this->P.StorageVarById.end())
        this->P.runtimeError("unknown lookup table id " +
                             std::to_string(TableId));
      const CVar *V = SIt->second.get();
      ItemCtx &W = *ArithItem;
      int S = V->Slot;
      if (S < 0 || W.FrameEpoch[S] != Epoch || W.Frame[S].K != Value::Ptr)
        this->P.runtimeError("lookup table is not bound to memory");
      const Value &Base = W.Frame[S];
      noteAccess(Base, Index, W, /*IsWrite=*/false);
      const auto &Mem = *Base.P;
      if (MG) {
        if (MG->check(Base.P.get(), Index, Mem.size(), W.Linear, W.GroupId,
                      /*IsWrite=*/false) == MemGuard::Access::OutOfBounds)
          return 0; // record and read zero, keep running
      } else if (Index < 0 || static_cast<size_t>(Index) >= Mem.size()) {
        this->P.runtimeError("lookup out of bounds",
                             DiagCode::RuntimeOutOfBounds);
      }
      return Mem[static_cast<size_t>(Index)].asInt();
    };
  }

  /// Executes one work-group (canonical linear index \p G). Race and
  /// guard findings go to the caller-provided per-group reports; shared
  /// bitmap writes are returned via \p Writes for post-join commit.
  void runGroup(int64_t G, RaceReport *Races, GuardReport *Guards,
                std::vector<std::pair<const void *, int64_t>> *Writes,
                std::vector<RaceDetector::GlobalAccess> *GlobalAcc) {
    int64_t Gx = G % P.Groups[0];
    int64_t Gy = (G / P.Groups[0]) % P.Groups[1];
    int64_t Gz = G / (P.Groups[0] * P.Groups[1]);

    // A new epoch invalidates every frame, arith and local-array slot of
    // the previous group without clearing the arenas.
    if (++Epoch == 0) {
      std::fill(FrameEpochArena.begin(), FrameEpochArena.end(), 0u);
      std::fill(AEpochArena.begin(), AEpochArena.end(), 0u);
      std::fill(WgLocalEpoch.begin(), WgLocalEpoch.end(), 0u);
      Epoch = 1;
    }
    RngState = mixSeed(P.Cfg.ScheduleSeed, static_cast<uint64_t>(G));

    std::optional<RaceDetector> RDet;
    std::optional<MemGuard> MGd;
    if (Races) {
      RDet.emplace(*Races, P.MaxFindings, &P.RaceBlockNames);
      if (GlobalAcc)
        RDet->setTrackGlobal(true);
      RD = &*RDet;
    } else {
      RD = nullptr;
    }
    if (Guards) {
      MGd.emplace(*Guards, P.MaxFindings, &P.GuardBlocks);
      MG = &*MGd;
    } else {
      MG = nullptr;
    }

    size_t Idx = 0;
    for (int64_t Lz = 0; Lz != P.Cfg.Local[2]; ++Lz) {
      for (int64_t Ly = 0; Ly != P.Cfg.Local[1]; ++Ly) {
        for (int64_t Lx = 0; Lx != P.Cfg.Local[0]; ++Lx) {
          ItemCtx &W = Items[Idx];
          ++Idx;
          W.LocalId = {Lx, Ly, Lz};
          W.GroupId = {Gx, Gy, Gz};
          bindItem(W);
        }
      }
    }
    Active.clear();
    for (ItemCtx &W : Items)
      Active.push_back(&W);

    if (RD)
      RD->beginGroup({Gx, Gy, Gz}, Items.size());
    execLockstep(P.K.Module.Kernel->Body->getStmts(), Active);
    if (RD)
      RD->endGroup();
    if (GlobalAcc && RDet)
      RDet->takeGroupGlobalAccesses(*GlobalAcc);
    if (Writes && MGd)
      *Writes = MGd->sharedWrites();
    RD = nullptr;
    MG = nullptr;
  }

private:
  const LaunchPlan &P;
  size_t NumSlots;
  size_t WIs;

  std::vector<Value> FrameArena;
  std::vector<uint32_t> FrameEpochArena;
  std::vector<int64_t> AValArena;
  std::vector<uint32_t> AEpochArena;
  std::vector<ItemCtx> Items;
  std::vector<ItemCtx *> Active;
  std::vector<ItemCtx *> PermScratch;
  /// Work-group local arrays, reused across groups, keyed by slot. A
  /// slot's allocation is current iff its epoch matches.
  std::vector<MemoryPtr> WgLocalMem;
  std::vector<uint32_t> WgLocalEpoch;
  /// Private arrays, reused across groups, keyed by slot * WIs + item.
  std::vector<MemoryPtr> PrivateMem;
  uint32_t Epoch = 0;

  /// Non-null while the current group runs race/memory-checked.
  RaceDetector *RD = nullptr;
  MemGuard *MG = nullptr;
  /// Sink for out-of-bounds stores under guarded-memory execution.
  Value ScratchSlot;
  /// Seeded xorshift state driving the perturbed schedule (re-seeded per
  /// group so findings are independent of worker assignment).
  uint64_t RngState = 1;

  arith::EvalContext ArithCtx;
  ItemCtx *ArithItem = nullptr;

  /// Execution-limit state (null / false when the launch is unbounded —
  /// the default — in which case none of the hooks below are reached).
  ExecMonitor *Mon = nullptr;
  bool StepMonitored = false;
  /// Steps left until the next slow tick (shared-state check).
  int64_t Countdown = ExecMonitor::TickInterval;
  /// The statement most recently charged, for limit diagnostics. Points
  /// into the kernel AST, which outlives the worker.
  const CStmtPtr *CurStmt = nullptr;

  [[noreturn]] void
  runtimeError(const std::string &Msg,
               DiagCode Code = DiagCode::RuntimeUnsupported) const {
    P.runtimeError(Msg, Code);
  }

  /// Slow path of the step hook, entered every TickInterval steps:
  /// observes cooperative cancellation and the step / deadline budgets.
  void slowTick() {
    uint64_t Used =
        static_cast<uint64_t>(static_cast<int64_t>(ExecMonitor::TickInterval) -
                              Countdown);
    Countdown = ExecMonitor::TickInterval;
    if (Mon->stopRequested())
      throw CancelledError{};
    if (fault::shouldFail(fault::Site::StepChunk))
      throw InjectedFaultError{fault::Site::StepChunk};
    if (!Mon->claimSteps(Used)) {
      Mon->noteDetail(describeCurStmt());
      Mon->noteLimit(LimitKind::Steps);
      throw LimitError{LimitKind::Steps};
    }
    if (Mon->pastDeadline()) {
      Mon->noteDetail(describeCurStmt());
      Mon->noteLimit(LimitKind::Deadline);
      throw LimitError{LimitKind::Deadline};
    }
    if (Mon->hostCancelled()) {
      Mon->noteDetail(describeCurStmt());
      Mon->noteLimit(LimitKind::Cancelled);
      throw LimitError{LimitKind::Cancelled};
    }
  }

public:
  /// Flushes the partial tick to the shared monitor when a group ends.
  /// Without this, a launch using fewer steps than one TickInterval never
  /// touches the shared budget: LaunchResult::StepsUsed would read 0 and a
  /// sub-tick overshoot would escape the limit. Group-end flushing makes
  /// step accounting exact for completed launches, which the pipeline
  /// graph executor relies on to share one budget across stages.
  void flushSteps() {
    if (!StepMonitored)
      return;
    uint64_t Used =
        static_cast<uint64_t>(static_cast<int64_t>(ExecMonitor::TickInterval) -
                              Countdown);
    Countdown = ExecMonitor::TickInterval;
    if (Used == 0)
      return;
    if (!Mon->claimSteps(Used)) {
      Mon->noteDetail(describeCurStmt());
      Mon->noteLimit(LimitKind::Steps);
      throw LimitError{LimitKind::Steps};
    }
  }

private:
  /// One-line rendering of the statement that tripped a limit.
  std::string describeCurStmt() const {
    if (!CurStmt || !*CurStmt)
      return {};
    std::string S = c::printStmt(*CurStmt);
    size_t NL = S.find('\n');
    if (NL != std::string::npos)
      S.resize(NL);
    if (S.size() > 120) {
      S.resize(117);
      S += "...";
    }
    return "while executing: " + S;
  }

  /// Budget and fault hook for a local / private array (re)allocation.
  /// Only capacity growth is charged: the arenas are reused across the
  /// groups a worker executes, and a reuse allocates nothing.
  void chargeWorkerAlloc(const MemoryPtr &Mem, int64_t Count,
                         const CVar *V) {
    if (Mem && static_cast<size_t>(Count) <= Mem->capacity())
      return;
    uint64_t Grown = static_cast<uint64_t>(Count) -
                     static_cast<uint64_t>(Mem ? Mem->capacity() : 0);
    if (Mon && !Mon->chargeAllocation(bytesFor(Grown))) {
      Mon->noteDetail("while allocating array '" + V->Name + "' (" +
                      std::to_string(bytesFor(static_cast<uint64_t>(Count))) +
                      " bytes)");
      Mon->noteLimit(LimitKind::Memory);
      throw LimitError{LimitKind::Memory};
    }
    if (fault::shouldFail(fault::Site::Alloc))
      runtimeError("injected fault: allocating array '" + V->Name +
                       "' failed",
                   DiagCode::RuntimeFaultInjected);
  }

  void bindItem(ItemCtx &W) {
    for (const BoundArg &B : P.Bindings) {
      if (B.ArithSlot >= 0) {
        W.AVals[B.ArithSlot] = B.ArithInt;
        W.AEpoch[B.ArithSlot] = Epoch;
      }
      W.Frame[B.Slot] = B.Val;
      W.FrameEpoch[B.Slot] = Epoch;
    }
  }

  void setVar(ItemCtx &W, const CVar *V, Value Val) {
    int S = V->Slot;
    if (S < 0)
      runtimeError("internal: variable '" + V->Name + "' has no frame slot");
    if (V->ArithId != 0) {
      W.AVals[V->ArithSlot] = Val.asInt();
      W.AEpoch[V->ArithSlot] = Epoch;
    }
    W.Frame[S] = std::move(Val);
    W.FrameEpoch[S] = Epoch;
  }

  void setVarNoArith(ItemCtx &W, const CVar *V, Value Val) {
    int S = V->Slot;
    if (S < 0)
      runtimeError("internal: variable '" + V->Name + "' has no frame slot");
    W.Frame[S] = std::move(Val);
    W.FrameEpoch[S] = Epoch;
  }

  //===------------------------------------------------------------------===//
  // Lockstep execution
  //===------------------------------------------------------------------===//

  uint64_t nextRand() {
    RngState ^= RngState << 13;
    RngState ^= RngState >> 7;
    RngState ^= RngState << 17;
    return RngState;
  }

  /// A seeded permutation of the work-items — one legal execution order
  /// among the many a GPU could choose within a barrier interval. Returns
  /// a reference to a reused scratch vector; safe because barrier-free
  /// runs never recurse back into permuted().
  std::vector<ItemCtx *> &permuted(const std::vector<ItemCtx *> &WIs) {
    PermScratch = WIs;
    for (size_t I = PermScratch.size(); I > 1; --I)
      std::swap(PermScratch[I - 1], PermScratch[nextRand() % I]);
    return PermScratch;
  }

  /// Executes a statement sequence across the group. Maximal runs of
  /// barrier-free statements form (part of) a barrier interval: the order
  /// in which work-items execute them is unconstrained by OpenCL. The
  /// default schedule is statement-lockstep (every item runs statement i
  /// before any item runs statement i+1); under --perturb-schedule each
  /// item instead runs the whole run to completion, in a seeded random
  /// item order — a schedule that exposes missing-barrier bugs the
  /// statement-lockstep order masks.
  void execLockstep(const std::vector<CStmtPtr> &Stmts,
                    std::vector<ItemCtx *> &WIs) {
    size_t I = 0, N = Stmts.size();
    while (I != N) {
      if (P.stmtBarrier(Stmts[I])) {
        execStmtLockstep(Stmts[I], WIs);
        ++I;
        continue;
      }
      size_t J = I;
      while (J != N && !P.stmtBarrier(Stmts[J]))
        ++J;
      if (P.Cfg.PerturbSchedule) {
        for (ItemCtx *W : permuted(WIs))
          for (size_t S = I; S != J; ++S)
            execNonBarrierStmt(Stmts[S], *W);
      } else {
        for (size_t S = I; S != J; ++S)
          for (ItemCtx *W : WIs)
            execNonBarrierStmt(Stmts[S], *W);
      }
      I = J;
    }
  }

  void execNonBarrierStmt(const CStmtPtr &S, ItemCtx &W) {
    ExecResult R = execStmtSingle(S, W);
    if (R.Returned)
      runtimeError("return outside of a function body");
  }

  /// Reports non-uniform control flow enclosing a barrier: a checked run
  /// records it as barrier divergence and continues with the first item's
  /// decision; an unchecked run aborts, as before.
  void divergentFlow(const std::string &What) {
    if (!RD)
      runtimeError(What + " around a barrier in kernel '" +
                   P.K.Module.Kernel->Name + "'");
    RD->divergence(What + " around a barrier in kernel '" +
                   P.K.Module.Kernel->Name + "'");
  }

  void execStmtLockstep(const CStmtPtr &S, std::vector<ItemCtx *> &WIs) {
    if (!P.stmtBarrier(S)) {
      for (ItemCtx *W : WIs)
        execNonBarrierStmt(S, *W);
      return;
    }

    switch (S->getKind()) {
    case CStmtKind::Barrier:
      Cost.Barriers += WIs.size();
      if (StepMonitored) {
        CurStmt = &S;
        Countdown -= static_cast<int64_t>(WIs.size());
        if (Countdown <= 0)
          slowTick();
      }
      if (fault::shouldFail(fault::Site::Barrier))
        throw InjectedFaultError{fault::Site::Barrier};
      if (RD)
        RD->lockstepBarrier();
      return;
    case CStmtKind::Block:
      execLockstep(cast<Block>(S.get())->getStmts(), WIs);
      return;
    case CStmtKind::For: {
      const auto *F = cast<For>(S.get());
      for (ItemCtx *W : WIs)
        setVar(*W, F->getIV().get(), evalExpr(F->getInit(), *W));
      while (true) {
        bool First = true, Continue = false, Diverged = false;
        for (ItemCtx *W : WIs) {
          bool C = evalCondition(F->getCond(), *W);
          if (First) {
            Continue = C;
            First = false;
          } else if (C != Continue && !Diverged) {
            Diverged = true;
            divergentFlow("non-uniform loop");
          }
        }
        Cost.LoopIters += WIs.size();
        if (StepMonitored) {
          CurStmt = &S;
          Countdown -= static_cast<int64_t>(WIs.size());
          if (Countdown <= 0)
            slowTick();
        }
        if (!Continue)
          break;
        execLockstep(F->getBody()->getStmts(), WIs);
        for (ItemCtx *W : WIs)
          setVar(*W, F->getIV().get(), evalExpr(F->getStep(), *W));
      }
      return;
    }
    case CStmtKind::If: {
      const auto *I = cast<If>(S.get());
      bool First = true, Taken = false, Diverged = false;
      for (ItemCtx *W : WIs) {
        bool C = evalCondition(I->getCond(), *W);
        if (First) {
          Taken = C;
          First = false;
        } else if (C != Taken && !Diverged) {
          Diverged = true;
          divergentFlow("non-uniform branch");
        }
      }
      if (Taken)
        execLockstep(I->getThen()->getStmts(), WIs);
      else if (I->getElse())
        execLockstep(I->getElse()->getStmts(), WIs);
      return;
    }
    default:
      runtimeError("barrier in an unsupported statement position in kernel '" +
                   P.K.Module.Kernel->Name + "': a " + stmtKindName(S) +
                   " statement reaches a barrier (through a function call) "
                   "but cannot be executed in lockstep: " +
                   c::printStmt(S));
    }
  }

  static const char *stmtKindName(const CStmtPtr &S) {
    switch (S->getKind()) {
    case CStmtKind::Block:
      return "block";
    case CStmtKind::VarDecl:
      return "variable declaration";
    case CStmtKind::Assign:
      return "assignment";
    case CStmtKind::ExprStmt:
      return "expression";
    case CStmtKind::For:
      return "for";
    case CStmtKind::If:
      return "if";
    case CStmtKind::Barrier:
      return "barrier";
    case CStmtKind::Return:
      return "return";
    case CStmtKind::Comment:
      return "comment";
    }
    return "?";
  }

  //===------------------------------------------------------------------===//
  // Per-work-item execution
  //===------------------------------------------------------------------===//

  ExecResult execStmtSingle(const CStmtPtr &S, ItemCtx &W) {
    if (StepMonitored) {
      CurStmt = &S;
      if (--Countdown <= 0)
        slowTick();
    }
    switch (S->getKind()) {
    case CStmtKind::Block: {
      for (const CStmtPtr &Sub : cast<Block>(S.get())->getStmts()) {
        ExecResult R = execStmtSingle(Sub, W);
        if (R.Returned)
          return R;
      }
      return {};
    }
    case CStmtKind::VarDecl: {
      const auto *D = cast<VarDecl>(S.get());
      const CVar *V = D->getVar().get();
      if (D->getArraySize()) {
        int64_t Count = evalArith(D->getArraySize(), W);
        if (Count < 0)
          runtimeError("array '" + V->Name + "' has negative element count " +
                           std::to_string(Count),
                       DiagCode::RuntimeBadLaunch);
        int Slot = V->Slot;
        if (Slot < 0)
          runtimeError("internal: array variable '" + V->Name +
                       "' has no frame slot");
        if (D->getAddrSpace() == CAddrSpace::Local) {
          // One allocation shared by the whole work group; the backing
          // vector is reused across the groups this worker executes.
          if (WgLocalEpoch[Slot] != Epoch) {
            MemoryPtr &Mem = WgLocalMem[Slot];
            chargeWorkerAlloc(Mem, Count, V);
            if (!Mem)
              Mem = std::make_shared<std::vector<Value>>();
            Mem->assign(static_cast<size_t>(Count), Value::makeFloat(0));
            if (RD)
              RD->registerBlock(Mem.get(), V->Name);
            if (MG)
              MG->registerBlock(Mem.get(), V->Name,
                                std::make_shared<std::vector<uint8_t>>(
                                    static_cast<size_t>(Count), uint8_t(0)));
            WgLocalEpoch[Slot] = Epoch;
          }
          setVar(W, V, Value::makePtr(WgLocalMem[Slot], MemSpace::Local));
        } else {
          // Private arrays are fresh zeros on every execution of the
          // declaration; the backing vector is reused per (slot, item).
          MemoryPtr &Mem =
              PrivateMem[static_cast<size_t>(Slot) * WIs +
                         static_cast<size_t>(W.Linear)];
          chargeWorkerAlloc(Mem, Count, V);
          if (!Mem)
            Mem = std::make_shared<std::vector<Value>>();
          Mem->assign(static_cast<size_t>(Count), Value::makeFloat(0));
          if (MG)
            MG->registerBlock(Mem.get(), V->Name,
                              std::make_shared<std::vector<uint8_t>>(
                                  static_cast<size_t>(Count), uint8_t(0)));
          setVar(W, V, Value::makePtr(Mem, MemSpace::Private));
        }
        return {};
      }
      Value Init =
          D->getInit() ? evalExpr(D->getInit(), W) : Value::makeFloat(0);
      setVar(W, V, std::move(Init));
      return {};
    }
    case CStmtKind::Assign: {
      const auto *A = cast<Assign>(S.get());
      Value RHS = evalExpr(A->getRhs(), W);
      assignTo(A->getLhs(), std::move(RHS), W);
      return {};
    }
    case CStmtKind::ExprStmt:
      evalExpr(cast<ExprStmt>(S.get())->getExpr(), W);
      return {};
    case CStmtKind::For: {
      const auto *F = cast<For>(S.get());
      setVar(W, F->getIV().get(), evalExpr(F->getInit(), W));
      while (evalCondition(F->getCond(), W)) {
        ++Cost.LoopIters;
        // Per-iteration hook: the statement-entry hook alone would let a
        // non-terminating loop with an empty body spin forever.
        if (StepMonitored) {
          CurStmt = &S;
          if (--Countdown <= 0)
            slowTick();
        }
        for (const CStmtPtr &Sub : F->getBody()->getStmts()) {
          ExecResult R = execStmtSingle(Sub, W);
          if (R.Returned)
            return R;
        }
        setVar(W, F->getIV().get(), evalExpr(F->getStep(), W));
      }
      return {};
    }
    case CStmtKind::If: {
      const auto *I = cast<If>(S.get());
      if (evalCondition(I->getCond(), W)) {
        for (const CStmtPtr &Sub : I->getThen()->getStmts()) {
          ExecResult R = execStmtSingle(Sub, W);
          if (R.Returned)
            return R;
        }
      } else if (I->getElse()) {
        for (const CStmtPtr &Sub : I->getElse()->getStmts()) {
          ExecResult R = execStmtSingle(Sub, W);
          if (R.Returned)
            return R;
        }
      }
      return {};
    }
    case CStmtKind::Barrier:
      // A barrier executed by a single item (divergent control flow or a
      // barrier inside a called function): it does not synchronize.
      // Charge one wait and tally the arrival for the divergence check.
      ++Cost.Barriers;
      if (fault::shouldFail(fault::Site::Barrier))
        throw InjectedFaultError{fault::Site::Barrier};
      if (RD)
        RD->itemBarrier(W.Linear);
      return {};
    case CStmtKind::Return: {
      ExecResult R;
      R.Returned = true;
      if (cast<Return>(S.get())->getValue())
        R.Ret = evalExpr(cast<Return>(S.get())->getValue(), W);
      return R;
    }
    case CStmtKind::Comment:
      return {};
    }
    lift_unreachable("unhandled statement kind");
  }

  //===------------------------------------------------------------------===//
  // L-values
  //===------------------------------------------------------------------===//

  Value *lvalue(const CExprPtr &E, ItemCtx &W) {
    switch (E->getKind()) {
    case CExprKind::VarRef: {
      const CVar *V = cast<VarRef>(E.get())->getVar().get();
      ++Cost.PrivateAccesses;
      int S = V->Slot;
      if (S < 0)
        runtimeError("internal: variable '" + V->Name +
                     "' has no frame slot");
      if (W.FrameEpoch[S] != Epoch) {
        W.Frame[S] = Value();
        W.FrameEpoch[S] = Epoch;
      }
      return &W.Frame[S];
    }
    case CExprKind::ArrayAccess: {
      const auto *A = cast<ArrayAccess>(E.get());
      Value BaseTmp;
      const Value *Base = evalVia(A->getBase(), W, BaseTmp);
      if (Base->K != Value::Ptr)
        runtimeError("array access on a non-pointer");
      int64_t Idx = evalIndex(A->getIndex(), W);
      noteAccess(*Base, Idx, W, /*IsWrite=*/true);
      if (MG) {
        if (MG->check(Base->P.get(), Idx, Base->P->size(), W.Linear,
                      W.GroupId,
                      /*IsWrite=*/true) == MemGuard::Access::OutOfBounds)
          return &ScratchSlot; // record and drop the store, keep running
      } else if (Idx < 0 || static_cast<size_t>(Idx) >= Base->P->size()) {
        runtimeError("store out of bounds: index " + std::to_string(Idx) +
                         " of " + std::to_string(Base->P->size()),
                     DiagCode::RuntimeOutOfBounds);
      }
      return &(*Base->P)[static_cast<size_t>(Idx)];
    }
    case CExprKind::Member: {
      const auto *M = cast<Member>(E.get());
      Value *Base = lvalue(M->getBase(), W);
      int Idx = fieldIndexOf(M->getField());
      if (Base->K != Value::Tup || Idx < 0 ||
          static_cast<size_t>(Idx) >= Base->T.size())
        runtimeError("bad struct member store ." + M->getField());
      return &Base->T[static_cast<size_t>(Idx)];
    }
    default:
      runtimeError("unsupported assignment target");
    }
  }

  void assignTo(const CExprPtr &Lhs, Value V, ItemCtx &W) {
    if (const auto *VR = dyn_cast<VarRef>(Lhs.get())) {
      setVar(W, VR->getVar().get(), std::move(V));
      ++Cost.PrivateAccesses;
      return;
    }
    *lvalue(Lhs, W) = std::move(V);
  }

  static int fieldIndexOf(const std::string &Field) {
    if (Field.size() >= 2 && Field[0] == '_')
      return std::atoi(Field.c_str() + 1);
    return -1;
  }

  void chargeAccess(MemSpace S) {
    switch (S) {
    case MemSpace::Global:
      ++Cost.GlobalAccesses;
      break;
    case MemSpace::Local:
      ++Cost.LocalAccesses;
      break;
    case MemSpace::Private:
      ++Cost.PrivateAccesses;
      break;
    }
  }

  /// Charges the cost model and, on a checked run, records the access in
  /// the current barrier interval's access set.
  void noteAccess(const Value &Base, int64_t Idx, const ItemCtx &W,
                  bool IsWrite) {
    chargeAccess(Base.Space);
    if (RD)
      RD->recordAccess(Base.P.get(), Idx, Base.Space, W.Linear, IsWrite);
  }

  //===------------------------------------------------------------------===//
  // Arithmetic index expressions
  //===------------------------------------------------------------------===//

  int64_t evalArith(const arith::Expr &E, ItemCtx &W) {
    // Charge the static operation count of the index expression — this is
    // where disabling array access simplification shows up as cost.
    auto [DivMods, Others] = P.indexCostOf(E);
    Cost.DivModOps += DivMods;
    Cost.ArithOps += Others;
    ArithItem = &W;
    return arith::evaluate(E, ArithCtx);
  }

  /// ArithValue nodes carry their static cost (annotated at plan setup),
  /// skipping the shared-cache lookup of evalArith.
  int64_t evalArithValue(const ArithValue *AV, ItemCtx &W) {
    if (AV->CostDivMods < 0)
      return evalArith(AV->getValue(), W); // unannotated module
    Cost.DivModOps += static_cast<unsigned>(AV->CostDivMods);
    Cost.ArithOps += AV->CostOthers;
    ArithItem = &W;
    return arith::evaluate(AV->getValue(), ArithCtx);
  }

  //===------------------------------------------------------------------===//
  // Expressions
  //===------------------------------------------------------------------===//

  /// Integer-valued operand expressions (array indices, NDRange
  /// dimensions): the dominant kinds evaluate without materializing a
  /// Value temporary.
  int64_t evalIndex(const CExprPtr &E, ItemCtx &W) {
    switch (E->getKind()) {
    case CExprKind::IntLit:
      return cast<IntLit>(E.get())->getValue();
    case CExprKind::ArithValue:
      return evalArithValue(cast<ArithValue>(E.get()), W);
    default:
      return evalExpr(E, W).asInt();
    }
  }

  /// Resolves an expression that names a storage location — a variable,
  /// an array element, or a tuple field of such a place — to a pointer at
  /// the stored value, with exactly the cost accounting and race/guard
  /// recording of the evalExpr read path. Results with no storage to
  /// point at (a guarded out-of-bounds read, a vector component) are
  /// materialized into \p Tmp. Returns null — before any side effect —
  /// when the expression is not a place; the caller falls back to
  /// evalExpr.
  ///
  /// The pointer is valid until the storage (or \p Tmp) is next written;
  /// callers consume or copy the leaf value first, mirroring C's
  /// unsequenced operand evaluation.
  const Value *evalPlace(const CExprPtr &E, ItemCtx &W, Value &Tmp) {
    switch (E->getKind()) {
    case CExprKind::VarRef: {
      const CVar *V = cast<VarRef>(E.get())->getVar().get();
      int S = V->Slot;
      if (S < 0 || W.FrameEpoch[S] != Epoch)
        runtimeError("use of undeclared variable " + V->Name);
      return &W.Frame[S];
    }
    case CExprKind::ArrayAccess: {
      const auto *A = cast<ArrayAccess>(E.get());
      Value BaseTmp;
      const Value *Base = evalVia(A->getBase(), W, BaseTmp);
      if (Base->K != Value::Ptr)
        runtimeError("array access on a non-pointer");
      int64_t Idx = evalIndex(A->getIndex(), W);
      noteAccess(*Base, Idx, W, /*IsWrite=*/false);
      if (MG) {
        if (MG->check(Base->P.get(), Idx, Base->P->size(), W.Linear,
                      W.GroupId,
                      /*IsWrite=*/false) == MemGuard::Access::OutOfBounds) {
          Tmp = Value::makeFloat(0); // record and read zero, keep running
          return &Tmp;
        }
      } else if (Idx < 0 || static_cast<size_t>(Idx) >= Base->P->size()) {
        runtimeError("load out of bounds: index " + std::to_string(Idx) +
                         " of " + std::to_string(Base->P->size()),
                     DiagCode::RuntimeOutOfBounds);
      }
      return &(*Base->P)[static_cast<size_t>(Idx)];
    }
    case CExprKind::Member: {
      const auto *M = cast<Member>(E.get());
      const Value *Base = evalPlace(M->getBase(), W, Tmp);
      if (!Base)
        return nullptr; // computed aggregate: evalExpr materializes it
      if (Base->K == Value::Tup) {
        int Idx = fieldIndexOf(M->getField());
        if (Idx < 0 || static_cast<size_t>(Idx) >= Base->T.size())
          runtimeError("bad struct member ." + M->getField());
        return &Base->T[static_cast<size_t>(Idx)];
      }
      if (Base->K == Value::Vec) {
        Tmp = Value::makeFloat(
            Base->V[vectorComponent(M->getField(), Base->V.size())]);
        return &Tmp;
      }
      runtimeError("member access on a non-aggregate");
    }
    default:
      return nullptr;
    }
  }

  /// Evaluates \p E without copying when it names a place, materializing
  /// into \p Tmp otherwise. The kind gate keeps non-place expressions off
  /// the evalPlace call entirely.
  const Value *evalVia(const CExprPtr &E, ItemCtx &W, Value &Tmp) {
    switch (E->getKind()) {
    case CExprKind::VarRef:
    case CExprKind::ArrayAccess:
      return evalPlace(E, W, Tmp); // always resolve
    case CExprKind::Member:
      if (const Value *Pl = evalPlace(E, W, Tmp))
        return Pl;
      break;
    default:
      break;
    }
    Tmp = evalExpr(E, W);
    return &Tmp;
  }

  Value evalExpr(const CExprPtr &E, ItemCtx &W) {
    switch (E->getKind()) {
    case CExprKind::IntLit:
      return Value::makeInt(cast<IntLit>(E.get())->getValue());
    case CExprKind::FloatLit:
      return Value::makeFloat(cast<FloatLit>(E.get())->getValue());
    case CExprKind::VarRef: {
      const CVar *V = cast<VarRef>(E.get())->getVar().get();
      int S = V->Slot;
      if (S < 0 || W.FrameEpoch[S] != Epoch)
        runtimeError("use of undeclared variable " + V->Name);
      return W.Frame[S];
    }
    case CExprKind::ArithValue:
      return Value::makeInt(evalArithValue(cast<ArithValue>(E.get()), W));
    case CExprKind::ArrayAccess: {
      Value Tmp;
      return *evalPlace(E, W, Tmp); // array accesses always resolve
    }
    case CExprKind::Member: {
      Value Tmp;
      if (const Value *Pl = evalPlace(E, W, Tmp))
        return *Pl;
      // The base is a computed aggregate (call, constructor): materialize
      // it and extract the field.
      const auto *M = cast<Member>(E.get());
      Value Base = evalExpr(M->getBase(), W);
      if (Base.K == Value::Tup) {
        int Idx = fieldIndexOf(M->getField());
        if (Idx < 0 || static_cast<size_t>(Idx) >= Base.T.size())
          runtimeError("bad struct member ." + M->getField());
        return std::move(Base.T[static_cast<size_t>(Idx)]);
      }
      if (Base.K == Value::Vec)
        return Value::makeFloat(Base.V[vectorComponent(M->getField(),
                                                       Base.V.size())]);
      runtimeError("member access on a non-aggregate");
    }
    case CExprKind::Binary:
      return evalBinary(cast<Binary>(E.get()), W);
    case CExprKind::Unary: {
      const auto *U = cast<Unary>(E.get());
      Value S = evalExpr(U->getSub(), W);
      ++Cost.ArithOps;
      if (U->getOp() == UnOp::Not)
        return Value::makeInt(!S.asBool());
      if (S.K == Value::Int)
        return Value::makeInt(wrapNeg(S.I));
      if (S.K == Value::Vec) {
        for (double &D : S.V)
          D = -D;
        return S;
      }
      return Value::makeFloat(-S.asFloat());
    }
    case CExprKind::Call:
      return evalCall(cast<Call>(E.get()), W);
    case CExprKind::Ternary: {
      const auto *T = cast<Ternary>(E.get());
      ++Cost.ArithOps;
      return evalCondition(T->getCond(), W) ? evalExpr(T->getThen(), W)
                                            : evalExpr(T->getElse(), W);
    }
    case CExprKind::CastExpr: {
      const auto *C = cast<CastExpr>(E.get());
      Value S = evalExpr(C->getSub(), W);
      const CTypePtr &Ty = C->getType();
      if (isa<ScalarCType>(Ty.get())) {
        switch (cast<ScalarCType>(Ty.get())->getScalarKind()) {
        case CScalarKind::Int:
        case CScalarKind::Bool:
          return Value::makeInt(S.asInt());
        case CScalarKind::Float:
        case CScalarKind::Double:
          return Value::makeFloat(S.asFloat());
        }
      }
      return S; // pointer casts pass through
    }
    case CExprKind::ConstructVector: {
      const auto *V = cast<ConstructVector>(E.get());
      const auto *VT = cast<VectorCType>(V->getType().get());
      VecN Comps;
      if (V->getArgs().size() == 1) {
        double X = evalExpr(V->getArgs()[0], W).asFloat();
        Comps.assign(VT->getWidth(), X);
      } else {
        Comps.reserve(V->getArgs().size());
        for (const CExprPtr &A : V->getArgs())
          Comps.push_back(evalExpr(A, W).asFloat());
        if (Comps.size() != VT->getWidth())
          runtimeError("vector constructor arity mismatch");
      }
      return Value::makeVec(std::move(Comps));
    }
    case CExprKind::ConstructStruct: {
      const auto *C = cast<ConstructStruct>(E.get());
      std::vector<Value> Fields;
      Fields.reserve(C->getArgs().size());
      for (const CExprPtr &A : C->getArgs()) {
        Value Tmp;
        if (const Value *Pl = evalPlace(A, W, Tmp))
          Fields.push_back(*Pl);
        else
          Fields.push_back(evalExpr(A, W));
      }
      return Value::makeTuple(std::move(Fields));
    }
    case CExprKind::VectorLoad: {
      const auto *V = cast<VectorLoad>(E.get());
      Value BaseTmp;
      const Value &Base = *evalVia(V->getPointer(), W, BaseTmp);
      if (Base.K != Value::Ptr)
        runtimeError("vload on a non-pointer");
      int64_t Idx = evalIndex(V->getIndex(), W);
      chargeAccess(Base.Space);
      VecN Comps;
      Comps.reserve(V->getWidth());
      for (unsigned I = 0; I != V->getWidth(); ++I) {
        size_t At = static_cast<size_t>(Idx) * V->getWidth() + I;
        if (MG) {
          if (MG->check(Base.P.get(), static_cast<int64_t>(At),
                        Base.P->size(), W.Linear, W.GroupId,
                        /*IsWrite=*/false) == MemGuard::Access::OutOfBounds) {
            Comps.push_back(0);
            continue;
          }
        } else if (At >= Base.P->size()) {
          runtimeError("vload out of bounds", DiagCode::RuntimeOutOfBounds);
        }
        if (RD)
          RD->recordAccess(Base.P.get(), static_cast<int64_t>(At),
                           Base.Space, W.Linear, /*IsWrite=*/false);
        Comps.push_back((*Base.P)[At].asFloat());
      }
      return Value::makeVec(std::move(Comps));
    }
    case CExprKind::VectorStore: {
      const auto *V = cast<VectorStore>(E.get());
      // Operands stay copies: the loop below writes the target buffer,
      // which a place-resolved operand could alias.
      Value Val = evalExpr(V->getValue(), W);
      Value Base = evalExpr(V->getPointer(), W);
      if (Base.K != Value::Ptr || Val.K != Value::Vec)
        runtimeError("vstore operand mismatch");
      int64_t Idx = evalIndex(V->getIndex(), W);
      chargeAccess(Base.Space);
      for (unsigned I = 0; I != V->getWidth(); ++I) {
        size_t At = static_cast<size_t>(Idx) * V->getWidth() + I;
        if (MG) {
          if (MG->check(Base.P.get(), static_cast<int64_t>(At),
                        Base.P->size(), W.Linear, W.GroupId,
                        /*IsWrite=*/true) == MemGuard::Access::OutOfBounds)
            continue; // record and drop the component, keep running
        } else if (At >= Base.P->size()) {
          runtimeError("vstore out of bounds", DiagCode::RuntimeOutOfBounds);
        }
        if (RD)
          RD->recordAccess(Base.P.get(), static_cast<int64_t>(At),
                           Base.Space, W.Linear, /*IsWrite=*/true);
        (*Base.P)[At] = Value::makeFloat(Val.V[I]);
      }
      return Value::makeInt(0);
    }
    }
    lift_unreachable("unhandled expression kind");
  }

  static size_t vectorComponent(const std::string &Field, size_t Width) {
    if (Field.size() == 1) {
      switch (Field[0]) {
      case 'x':
        return 0;
      case 'y':
        return 1;
      case 'z':
        return 2;
      case 'w':
        return 3;
      default:
        break;
      }
    }
    if (Field.size() >= 2 && Field[0] == 's') {
      size_t I = static_cast<size_t>(std::atoi(Field.c_str() + 1));
      if (I < Width)
        return I;
    }
    throwDiag(DiagCode::RuntimeBadValue, DiagLocation(),
              "runtime: bad vector component ." + Field);
  }

  Value evalBinary(const Binary *B, ItemCtx &W) {
    // Operands read through the place path: a variable, array-element or
    // tuple-field operand is consumed where it is stored instead of being
    // copied. The two evaluations are unsequenced with respect to each
    // other, as in C.
    Value LT, RT;
    const Value &L = *evalVia(B->getLhs(), W, LT);
    const Value &R = *evalVia(B->getRhs(), W, RT);
    return applyBinary(B->getOp(), L, R);
  }

  /// Boolean contexts (loop and branch conditions, ternaries): integer
  /// comparisons — the overwhelmingly common case — produce the bool
  /// directly instead of materializing a Value.
  bool evalCondition(const CExprPtr &E, ItemCtx &W) {
    if (E->getKind() == CExprKind::Binary) {
      const auto *B = cast<Binary>(E.get());
      Value LT, RT;
      const Value &L = *evalVia(B->getLhs(), W, LT);
      const Value &R = *evalVia(B->getRhs(), W, RT);
      if (L.K == Value::Int && R.K == Value::Int) {
        int64_t A = L.I, Bv = R.I;
        switch (B->getOp()) {
        case BinOp::Lt:
          ++Cost.ArithOps;
          return A < Bv;
        case BinOp::Le:
          ++Cost.ArithOps;
          return A <= Bv;
        case BinOp::Gt:
          ++Cost.ArithOps;
          return A > Bv;
        case BinOp::Ge:
          ++Cost.ArithOps;
          return A >= Bv;
        case BinOp::Eq:
          ++Cost.ArithOps;
          return A == Bv;
        case BinOp::Ne:
          ++Cost.ArithOps;
          return A != Bv;
        case BinOp::And:
          ++Cost.ArithOps;
          return A != 0 && Bv != 0;
        case BinOp::Or:
          ++Cost.ArithOps;
          return A != 0 || Bv != 0;
        default:
          break; // arithmetic result: the general path charges the cost
        }
      }
      return applyBinary(B->getOp(), L, R).asBool();
    }
    return evalExpr(E, W).asBool();
  }

  Value applyBinary(BinOp Op, const Value &L, const Value &R) {

    // Vector operations apply element-wise, with scalar broadcast.
    if (L.K == Value::Vec || R.K == Value::Vec) {
      size_t Width = L.K == Value::Vec ? L.V.size() : R.V.size();
      Cost.ArithOps += Width;
      VecN Out(Width);
      for (size_t I = 0; I != Width; ++I) {
        double A = L.K == Value::Vec ? L.V[I] : L.asFloat();
        double Bv = R.K == Value::Vec ? R.V[I] : R.asFloat();
        Out[I] = applyFloatOp(Op, A, Bv);
      }
      return Value::makeVec(std::move(Out));
    }

    if (L.K == Value::Int && R.K == Value::Int &&
        (Op == BinOp::Div || Op == BinOp::Rem))
      ++Cost.DivModOps;
    else
      ++Cost.ArithOps;
    if (L.K == Value::Int && R.K == Value::Int) {
      int64_t A = L.I, Bv = R.I;
      switch (Op) {
      case BinOp::Add:
        return Value::makeInt(wrapAdd(A, Bv));
      case BinOp::Sub:
        return Value::makeInt(wrapSub(A, Bv));
      case BinOp::Mul:
        return Value::makeInt(wrapMul(A, Bv));
      case BinOp::Div:
        if (Bv == 0)
          runtimeError("integer division by zero",
                       DiagCode::RuntimeDivByZero);
        // INT64_MIN / -1 overflows; wrap like the negation it is.
        if (Bv == -1)
          return Value::makeInt(wrapNeg(A));
        return Value::makeInt(A / Bv);
      case BinOp::Rem:
        if (Bv == 0)
          runtimeError("integer remainder by zero",
                       DiagCode::RuntimeDivByZero);
        if (Bv == -1)
          return Value::makeInt(0);
        return Value::makeInt(A % Bv);
      case BinOp::Lt:
        return Value::makeInt(A < Bv);
      case BinOp::Le:
        return Value::makeInt(A <= Bv);
      case BinOp::Gt:
        return Value::makeInt(A > Bv);
      case BinOp::Ge:
        return Value::makeInt(A >= Bv);
      case BinOp::Eq:
        return Value::makeInt(A == Bv);
      case BinOp::Ne:
        return Value::makeInt(A != Bv);
      case BinOp::And:
        return Value::makeInt(A != 0 && Bv != 0);
      case BinOp::Or:
        return Value::makeInt(A != 0 || Bv != 0);
      }
      lift_unreachable("unhandled binary operator");
    }

    double A = L.asFloat(), Bv = R.asFloat();
    switch (Op) {
    case BinOp::Lt:
      return Value::makeInt(A < Bv);
    case BinOp::Le:
      return Value::makeInt(A <= Bv);
    case BinOp::Gt:
      return Value::makeInt(A > Bv);
    case BinOp::Ge:
      return Value::makeInt(A >= Bv);
    case BinOp::Eq:
      return Value::makeInt(A == Bv);
    case BinOp::Ne:
      return Value::makeInt(A != Bv);
    case BinOp::And:
      return Value::makeInt(A != 0 && Bv != 0);
    case BinOp::Or:
      return Value::makeInt(A != 0 || Bv != 0);
    default:
      return Value::makeFloat(applyFloatOp(Op, A, Bv));
    }
  }

  [[noreturn]] static void badFloatOp() {
    throwDiag(DiagCode::RuntimeUnsupported, DiagLocation(),
              "runtime: unsupported float operation");
  }

  static double applyFloatOp(BinOp Op, double A, double B) {
    switch (Op) {
    case BinOp::Add:
      return A + B;
    case BinOp::Sub:
      return A - B;
    case BinOp::Mul:
      return A * B;
    case BinOp::Div:
      return A / B;
    case BinOp::Lt:
      return A < B;
    case BinOp::Gt:
      return A > B;
    case BinOp::Le:
      return A <= B;
    case BinOp::Ge:
      return A >= B;
    case BinOp::Eq:
      return A == B;
    case BinOp::Ne:
      return A != B;
    default:
      badFloatOp();
    }
  }

  using MathFn = double (*)(double);

  static MathFn unaryMathFn(c::CallKind K) {
    switch (K) {
    case c::CallKind::Sqrt:
      return [](double X) { return std::sqrt(X); };
    case c::CallKind::Rsqrt:
      return [](double X) { return 1.0 / std::sqrt(X); };
    case c::CallKind::Sin:
      return [](double X) { return std::sin(X); };
    case c::CallKind::Cos:
      return [](double X) { return std::cos(X); };
    case c::CallKind::Exp:
      return [](double X) { return std::exp(X); };
    case c::CallKind::Log:
      return [](double X) { return std::log(X); };
    case c::CallKind::Fabs:
      return [](double X) { return std::fabs(X); };
    default:
      return [](double X) { return std::floor(X); };
    }
  }

  Value evalCall(const Call *C, ItemCtx &W) {
    // The callee kind is resolved once per module alongside variable
    // slots; a module launched without that pass classifies by name here.
    int RK = C->ResolvedKind;
    if (RK < 0)
      RK = static_cast<int>(c::classifyBuiltin(C->getCallee()));
    c::CallKind Kind = static_cast<c::CallKind>(RK);

    switch (Kind) {
    case c::CallKind::GetLocalId:
    case c::CallKind::GetGroupId:
    case c::CallKind::GetGlobalId:
    case c::CallKind::GetLocalSize:
    case c::CallKind::GetNumGroups:
    case c::CallKind::GetGlobalSize: {
      int64_t D = evalIndex(C->getArgs()[0], W);
      if (D < 0 || D > 2)
        runtimeError("bad NDRange dimension");
      switch (Kind) {
      case c::CallKind::GetLocalId:
        return Value::makeInt(W.LocalId[D]);
      case c::CallKind::GetGroupId:
        return Value::makeInt(W.GroupId[D]);
      case c::CallKind::GetGlobalId:
        return Value::makeInt(W.GroupId[D] * P.Cfg.Local[D] + W.LocalId[D]);
      case c::CallKind::GetLocalSize:
        return Value::makeInt(P.Cfg.Local[D]);
      case c::CallKind::GetNumGroups:
        return Value::makeInt(P.Cfg.Global[D] / P.Cfg.Local[D]);
      default:
        return Value::makeInt(P.Cfg.Global[D]);
      }
    }

    case c::CallKind::Sqrt:
    case c::CallKind::Rsqrt:
    case c::CallKind::Sin:
    case c::CallKind::Cos:
    case c::CallKind::Exp:
    case c::CallKind::Log:
    case c::CallKind::Fabs:
    case c::CallKind::Floor: {
      ++Cost.MathCalls;
      MathFn Fn = unaryMathFn(Kind);
      Value A = evalExpr(C->getArgs()[0], W);
      if (A.K == Value::Vec) {
        for (double &D : A.V)
          D = Fn(D);
        return A;
      }
      return Value::makeFloat(Fn(A.asFloat()));
    }

    case c::CallKind::Fmin:
    case c::CallKind::Fmax:
    case c::CallKind::Pow: {
      ++Cost.MathCalls;
      double A = evalExpr(C->getArgs()[0], W).asFloat();
      double B = evalExpr(C->getArgs()[1], W).asFloat();
      if (Kind == c::CallKind::Pow)
        return Value::makeFloat(std::pow(A, B));
      return Value::makeFloat(Kind == c::CallKind::Fmin ? std::fmin(A, B)
                                                        : std::fmax(A, B));
    }

    case c::CallKind::Dot: {
      ++Cost.MathCalls;
      Value T1, T2;
      const Value &A = *evalVia(C->getArgs()[0], W, T1);
      const Value &B = *evalVia(C->getArgs()[1], W, T2);
      if (A.K != Value::Vec || B.K != Value::Vec || A.V.size() != B.V.size())
        runtimeError("dot expects equal-width vectors");
      double S = 0;
      for (size_t I = 0; I != A.V.size(); ++I)
        S += A.V[I] * B.V[I];
      return Value::makeFloat(S);
    }

    case c::CallKind::User:
      break;
    }

    // User functions from the module.
    const CFunction *F = C->ResolvedFn;
    if (!F) {
      F = P.K.Module.findFunction(C->getCallee()).get();
      if (!F)
        runtimeError("call to unknown function " + C->getCallee());
    }
    ++Cost.Calls;
    if (F->Params.size() != C->getArgs().size())
      runtimeError("arity mismatch calling " + C->getCallee());
    for (size_t I = 0, E = C->getArgs().size(); I != E; ++I)
      setVarNoArith(W, F->Params[I].get(), evalExpr(C->getArgs()[I], W));
    for (const CStmtPtr &S : F->Body->getStmts()) {
      ExecResult R = execStmtSingle(S, W);
      if (R.Returned)
        return std::move(R.Ret);
    }
    runtimeError("function " + C->getCallee() + " did not return a value");
  }
};

/// Renders the limit that cancelled the launch as a structured
/// diagnostic. Synthesized after the join from the shared monitor state,
/// so the message is identical at any thread count.
[[noreturn]] void throwLimitDiag(const LaunchPlan &Plan, ExecMonitor &Mon) {
  std::string Kernel =
      Plan.K.Module.Kernel ? Plan.K.Module.Kernel->Name : "kernel";
  std::vector<std::string> Notes;
  std::string Detail = Mon.detail();
  if (!Detail.empty())
    Notes.push_back(Detail);
  Notes.push_back(
      "the launch was cancelled; its buffers are poisoned until rewritten");
  switch (Mon.tripped()) {
  case LimitKind::Steps:
    throwDiag(DiagCode::RuntimeStepLimit, DiagLocation::inContext(Kernel),
              "runtime: step budget of " +
                  std::to_string(Mon.Limits.MaxSteps) +
                  " interpreter steps exhausted",
              Notes);
  case LimitKind::Deadline:
    throwDiag(DiagCode::RuntimeDeadline, DiagLocation::inContext(Kernel),
              "runtime: wall-clock deadline of " +
                  std::to_string(Mon.Limits.TimeoutMs) + " ms exceeded",
              Notes);
  case LimitKind::Memory:
    throwDiag(DiagCode::RuntimeMemoryLimit, DiagLocation::inContext(Kernel),
              "runtime: device memory limit of " +
                  std::to_string(Mon.Limits.MaxMemoryBytes) +
                  " bytes exceeded",
              Notes);
  case LimitKind::Cancelled:
    throwDiag(DiagCode::RuntimeCancelled, DiagLocation::inContext(Kernel),
              "runtime: launch cancelled by the host", Notes);
  case LimitKind::None:
    break;
  }
  fatalError("internal: limit diagnostic requested with no tripped limit");
}

/// Renders an injected mid-execution fault as the stable E0515
/// diagnostic. The message names only the kernel and the fault site —
/// never a group index or occurrence count — so the rendered text is
/// bit-identical at any thread count even though which worker tripped the
/// fault is scheduling-dependent.
[[noreturn]] void throwInjectedFaultDiag(const LaunchPlan &Plan,
                                         fault::Site S) {
  std::string Kernel =
      Plan.K.Module.Kernel ? Plan.K.Module.Kernel->Name : "kernel";
  throwDiag(DiagCode::RuntimeFaultMidExec, DiagLocation::inContext(Kernel),
            std::string("runtime: injected ") + fault::siteName(S) +
                " fault cancelled the launch",
            {"the launch was cancelled; its buffers are poisoned until "
             "rewritten"});
}

/// Dispatches the plan's work-groups over \p Workers pool workers (the
/// caller participates as worker 0) and merges per-worker costs and
/// per-group findings in canonical group order, so every observable
/// result is identical at any thread count. \p Engine, when non-null,
/// receives non-fatal warnings (the serial-fallback notice).
CostReport executePlan(LaunchPlan &Plan, RaceReport &Races,
                       GuardReport &Guards, DiagnosticEngine *Engine) {
  unsigned Workers = resolveThreadCount(Plan.Cfg.Threads);
  if (static_cast<int64_t>(Workers) > Plan.NumGroups)
    Workers = static_cast<unsigned>(Plan.NumGroups);
  if (Workers == 0)
    Workers = 1;

  const bool CheckR = Plan.Cfg.CheckRaces;
  const bool CheckM = Plan.Cfg.CheckMemory;
  const int64_t NumGroups = Plan.NumGroups;
  // The cross-group hazard pass needs every group's global footprint;
  // a single group cannot conflict with another one.
  const bool CollectXG = CheckR && NumGroups > 1;
  std::vector<RaceReport> GroupRaces(
      CheckR ? static_cast<size_t>(NumGroups) : 0);
  std::vector<GuardReport> GroupGuards(
      CheckM ? static_cast<size_t>(NumGroups) : 0);
  std::vector<std::vector<std::pair<const void *, int64_t>>> GroupWrites(
      CheckM ? static_cast<size_t>(NumGroups) : 0);
  std::vector<std::vector<RaceDetector::GlobalAccess>> GroupGlobalAcc(
      CollectXG ? static_cast<size_t>(NumGroups) : 0);
  std::vector<CostReport> WorkerCosts(Workers);
  std::vector<std::exception_ptr> GroupErrors(static_cast<size_t>(NumGroups));
  std::atomic<int64_t> NextGroup{0};
  std::atomic<bool> Failed{false};
  // First injected mid-execution fault wins (-1 = none); the diagnostic
  // is synthesized after the join, like execution limits.
  std::atomic<int> InjectedSite{-1};
  ExecMonitor *Mon = Plan.Monitor.get();

  // A failure outside any group (GroupWorker construction): first one
  // wins, reported after the join.
  std::mutex WorkerErrM;
  std::exception_ptr WorkerErr;

  auto Body = [&](unsigned Wx) {
    try {
      GroupWorker Worker(Plan);
      while (!Failed.load(std::memory_order_relaxed)) {
        int64_t G = NextGroup.fetch_add(1, std::memory_order_relaxed);
        if (G >= NumGroups)
          break;
        try {
          if (fault::shouldFail(fault::Site::GroupDispatch))
            throw InjectedFaultError{fault::Site::GroupDispatch};
          Worker.runGroup(
              G, CheckR ? &GroupRaces[static_cast<size_t>(G)] : nullptr,
              CheckM ? &GroupGuards[static_cast<size_t>(G)] : nullptr,
              CheckM ? &GroupWrites[static_cast<size_t>(G)] : nullptr,
              CollectXG ? &GroupGlobalAcc[static_cast<size_t>(G)] : nullptr);
          Worker.flushSteps();
        } catch (const CancelledError &) {
          // Another worker tripped a limit or failed first; just unwind.
          Failed.store(true, std::memory_order_relaxed);
        } catch (const InjectedFaultError &E) {
          // First injected fault wins; cancel the launch cooperatively.
          int Expected = -1;
          InjectedSite.compare_exchange_strong(Expected,
                                               static_cast<int>(E.S),
                                               std::memory_order_relaxed);
          Failed.store(true, std::memory_order_relaxed);
          if (Mon)
            Mon->requestStop();
        } catch (const LimitError &) {
          // The shared monitor holds the (first) tripped limit; the
          // diagnostic is synthesized after the join so it is identical
          // at any thread count.
          Failed.store(true, std::memory_order_relaxed);
        } catch (...) {
          // Record per group, cancel the launch, and let the smallest
          // failing group index win after the join — the same error a
          // serial in-order run would have surfaced first.
          GroupErrors[static_cast<size_t>(G)] = std::current_exception();
          Failed.store(true, std::memory_order_relaxed);
          if (Mon)
            Mon->requestStop();
        }
      }
      WorkerCosts[Wx] = Worker.Cost;
    } catch (...) {
      // Workers must never let an exception escape onto a pool thread
      // (std::terminate); stash it and cancel the launch.
      {
        std::lock_guard<std::mutex> L(WorkerErrM);
        if (!WorkerErr)
          WorkerErr = std::current_exception();
      }
      Failed.store(true, std::memory_order_relaxed);
      if (Mon)
        Mon->requestStop();
    }
  };

  if (Workers == 1) {
    Body(0);
  } else if (!ThreadPool::global().tryRun(Workers, Body)) {
    // The worker pool could not be brought up (thread creation failed or
    // a fault was injected): degrade to serial execution — identical
    // results, just slower — and leave a warning behind.
    std::string Kernel =
        Plan.K.Module.Kernel ? Plan.K.Module.Kernel->Name : "kernel";
    if (Engine)
      Engine->warning(DiagCode::RuntimePoolFallback,
                      DiagLocation::inContext(Kernel),
                      "worker pool unavailable; executing " +
                          std::to_string(NumGroups) +
                          " work-group(s) serially");
    else
      std::fprintf(stderr,
                   "lift: warning: worker pool unavailable; executing "
                   "work-groups of kernel '%s' serially\n",
                   Kernel.c_str());
    Body(0);
  }

  // Post-join error precedence: a real per-group error first (serial
  // order), then an injected mid-execution fault, then a tripped
  // execution limit, then a worker-level failure.
  for (int64_t G = 0; G != NumGroups; ++G)
    if (GroupErrors[static_cast<size_t>(G)])
      std::rethrow_exception(GroupErrors[static_cast<size_t>(G)]);
  if (int S = InjectedSite.load(std::memory_order_relaxed); S >= 0)
    throwInjectedFaultDiag(Plan, static_cast<fault::Site>(S));
  if (Mon && Mon->tripped() != LimitKind::None)
    throwLimitDiag(Plan, *Mon);
  if (WorkerErr)
    std::rethrow_exception(WorkerErr);

  CostReport Total;
  for (const CostReport &C : WorkerCosts)
    Total += C;
  if (CheckR)
    for (int64_t G = 0; G != NumGroups; ++G)
      Races.mergeFrom(GroupRaces[static_cast<size_t>(G)], Plan.MaxFindings);
  if (CheckM) {
    // Shared-bitmap commits only happen on this success path: a cancelled
    // or failed launch rethrows above and discards its pending writes, so
    // the launch-level init bitmaps never observe partial state.
    std::unordered_map<std::string, bool> Seen;
    for (int64_t G = 0; G != NumGroups; ++G) {
      mergeGuardReport(Guards, GroupGuards[static_cast<size_t>(G)],
                       Plan.MaxFindings, Seen);
      Plan.GuardBlocks.commitWrites(GroupWrites[static_cast<size_t>(G)]);
    }
  }
  if (CollectXG)
    crossGroupCheck(GroupGlobalAcc, Plan.RaceBlockNames, Races,
                    Plan.MaxFindings);
  return Total;
}

/// The one throwing execution path every public launch entry wraps:
/// resolves arguments, precomputes the shared analyses, then executes the
/// groups on the worker pool. If execution began and failed, the caller's
/// buffers are poisoned before the error propagates (partial writes must
/// not be readable as results); host out-of-memory is converted into the
/// E0512 memory-limit diagnostic instead of crashing the process.
CostReport runMachine(const codegen::CompiledKernel &K,
                      const std::vector<Buffer *> &Buffers,
                      const std::map<std::string, int64_t> &Sizes,
                      const LaunchConfig &Cfg, RaceReport &Races,
                      GuardReport &Guards, DiagnosticEngine *Engine,
                      uint64_t *StepsUsed = nullptr) {
  std::string Kernel = K.Module.Kernel ? K.Module.Kernel->Name : "kernel";
  LaunchPlan Plan(K, Cfg);
  try {
    Plan.setup(Buffers, Sizes);
  } catch (const std::bad_alloc &) {
    throwDiag(DiagCode::RuntimeMemoryLimit, DiagLocation::inContext(Kernel),
              "runtime: device allocation failed (out of host memory)");
  }
  try {
    CostReport Cost = executePlan(Plan, Races, Guards, Engine);
    if (StepsUsed)
      *StepsUsed = Plan.Monitor ? Plan.Monitor->stepsUsed() : 0;
    return Cost;
  } catch (const std::bad_alloc &) {
    for (Buffer *B : Plan.CallerBuffers)
      B->Poisoned = true;
    throwDiag(DiagCode::RuntimeMemoryLimit, DiagLocation::inContext(Kernel),
              "runtime: device allocation failed (out of host memory)",
              {"the launch was cancelled; its buffers are poisoned until "
               "rewritten"});
  } catch (...) {
    for (Buffer *B : Plan.CallerBuffers)
      B->Poisoned = true;
    throw;
  }
}

} // namespace

CostReport ocl::launch(const codegen::CompiledKernel &K,
                       const std::vector<Buffer *> &Buffers,
                       const std::map<std::string, int64_t> &Sizes,
                       const LaunchConfig &Cfg) {
  try {
    RaceReport Races;
    GuardReport Guards;
    CostReport Cost =
        runMachine(K, Buffers, Sizes, Cfg, Races, Guards, nullptr);
    if (!Races.clean())
      fatalError("runtime: race check failed for kernel '" +
                 K.Module.Kernel->Name + "': " + Races.summary());
    if (!Guards.clean())
      fatalError("runtime: memory check failed for kernel '" +
                 K.Module.Kernel->Name + "': " + Guards.summary());
    return Cost;
  } catch (DiagnosticError &E) {
    fatalError(E.Diag.render());
  }
}

CostReport ocl::launch(const codegen::CompiledKernel &K,
                       const std::vector<Buffer *> &Buffers,
                       const std::map<std::string, int64_t> &Sizes,
                       const LaunchConfig &Cfg, RaceReport &Report) {
  GuardReport Guards;
  return launch(K, Buffers, Sizes, Cfg, Report, Guards);
}

CostReport ocl::launch(const codegen::CompiledKernel &K,
                       const std::vector<Buffer *> &Buffers,
                       const std::map<std::string, int64_t> &Sizes,
                       const LaunchConfig &Cfg, RaceReport &Races,
                       GuardReport &Guards) {
  try {
    return runMachine(K, Buffers, Sizes, Cfg, Races, Guards, nullptr);
  } catch (DiagnosticError &E) {
    fatalError(E.Diag.render());
  }
}

Expected<LaunchResult>
ocl::launchChecked(const codegen::CompiledKernel &K,
                   const std::vector<Buffer *> &Buffers,
                   const std::map<std::string, int64_t> &Sizes,
                   const LaunchConfig &Cfg, DiagnosticEngine &Engine) {
  LaunchResult R;
  try {
    R.Cost = runMachine(K, Buffers, Sizes, Cfg, R.Races, R.Guards, &Engine,
                        &R.StepsUsed);
  } catch (DiagnosticError &E) {
    if (!E.Recorded)
      Engine.report(E.Diag);
    return {};
  }
  std::string Kernel = K.Module.Kernel ? K.Module.Kernel->Name : "kernel";
  for (const RaceFinding &F : R.Races.Findings)
    Engine.error(F.K == RaceFinding::CrossGroup
                     ? DiagCode::RuntimeCrossGroupRace
                     : DiagCode::RuntimeRace,
                 DiagLocation::inContext(Kernel),
                 std::string(RaceFinding::kindName(F.K)) + " at " +
                     F.Location + ": " + F.Detail);
  for (const GuardFinding &F : R.Guards.Findings)
    Engine.error(F.K == GuardFinding::UninitRead
                     ? DiagCode::RuntimeUninitRead
                     : DiagCode::RuntimeOutOfBounds,
                 DiagLocation::inContext(Kernel),
                 std::string(GuardFinding::kindName(F.K)) + " at " +
                     F.Location + ": " + F.Detail);
  return R;
}

codegen::CompiledKernel ocl::wrapModule(c::CModule M) {
  codegen::CompiledKernel K;
  if (!M.Kernel)
    throwDiag(DiagCode::HostBadBuffer, DiagLocation::inContext("wrapModule"),
              "wrapModule: translation unit has no kernel");
  unsigned NextId = 1;
  for (const CVarPtr &P : M.Kernel->Params) {
    codegen::KernelParamInfo Info;
    Info.Var = P;
    if (isa<PointerCType>(P->Ty.get())) {
      auto Store = std::make_shared<view::Storage>();
      Store->Id = NextId++;
      Store->Var = P;
      Store->AS = c::CAddrSpace::Global;
      Store->ElemType = cast<PointerCType>(P->Ty.get())->getPointee();
      Store->NumElements = arith::cst(0); // bound by the caller, in order
      Info.Store = Store;
    } else {
      Info.IsSizeParam = true;
      Info.ArithId = 0;
    }
    K.Params.push_back(Info);
  }
  K.Module = std::move(M);
  K.Slots = codegen::computeVarSlots(K.Module);
  return K;
}
