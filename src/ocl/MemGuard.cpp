//===- MemGuard.cpp - Guarded-memory execution ----------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ocl/MemGuard.h"

using namespace lift;
using namespace lift::ocl;

const char *GuardFinding::kindName(Kind K) {
  switch (K) {
  case OobWrite:
    return "out-of-bounds write";
  case OobRead:
    return "out-of-bounds read";
  case UninitRead:
    return "uninitialized read";
  }
  return "?";
}

unsigned GuardReport::oobWrites() const {
  unsigned N = 0;
  for (const GuardFinding &F : Findings)
    N += F.K == GuardFinding::OobWrite;
  return N;
}

unsigned GuardReport::oobReads() const {
  unsigned N = 0;
  for (const GuardFinding &F : Findings)
    N += F.K == GuardFinding::OobRead;
  return N;
}

unsigned GuardReport::uninitReads() const {
  unsigned N = 0;
  for (const GuardFinding &F : Findings)
    N += F.K == GuardFinding::UninitRead;
  return N;
}

std::string GuardReport::summary() const {
  std::string S = std::to_string(Findings.size()) + " memory finding(s) (" +
                  std::to_string(oobWrites()) + " OOB write(s), " +
                  std::to_string(oobReads()) + " OOB read(s), " +
                  std::to_string(uninitReads()) + " uninitialized read(s))";
  for (const GuardFinding &F : Findings) {
    S += "\n  ";
    S += GuardFinding::kindName(F.K);
    S += " at " + F.Location + ": " + F.Detail;
  }
  if (Truncated)
    S += "\n  (further findings dropped)";
  return S;
}

void SharedBlockTable::registerBlock(const void *Mem, const std::string &Name,
                                     InitMap Init) {
  Blocks[Mem] = Entry{Name, std::move(Init)};
}

const SharedBlockTable::Entry *SharedBlockTable::find(const void *Mem) const {
  auto It = Blocks.find(Mem);
  return It != Blocks.end() ? &It->second : nullptr;
}

void SharedBlockTable::commitWrites(
    const std::vector<std::pair<const void *, int64_t>> &W) {
  for (const auto &[Mem, Index] : W) {
    auto It = Blocks.find(Mem);
    if (It == Blocks.end() || !It->second.Init || Index < 0)
      continue;
    std::vector<uint8_t> &Init = *It->second.Init;
    if (Init.size() <= static_cast<size_t>(Index))
      Init.resize(static_cast<size_t>(Index) + 1, 0);
    Init[static_cast<size_t>(Index)] = 1;
  }
}

void lift::ocl::mergeGuardReport(GuardReport &Into, const GuardReport &Other,
                                 unsigned MaxFindings,
                                 std::unordered_map<std::string, bool>
                                     &SeenKeys) {
  Into.AccessesChecked += Other.AccessesChecked;
  Into.Truncated |= Other.Truncated;
  for (const GuardFinding &F : Other.Findings) {
    std::string Key =
        std::to_string(static_cast<int>(F.K)) + "|" + F.Location;
    if (!SeenKeys.emplace(Key, true).second)
      continue;
    if (Into.Findings.size() >= MaxFindings) {
      Into.Truncated = true;
      return;
    }
    Into.Findings.push_back(F);
  }
}

void MemGuard::registerBlock(const void *Mem, const std::string &Name,
                             InitMap Init) {
  Blocks[Mem] = BlockInfo{Name, std::move(Init)};
}

std::string MemGuard::nameOf(const void *Mem, int64_t Index) const {
  auto It = Blocks.find(Mem);
  std::string Name;
  if (It != Blocks.end()) {
    Name = It->second.Name;
  } else if (const SharedBlockTable::Entry *E =
                 Shared ? Shared->find(Mem) : nullptr) {
    Name = E->Name;
  } else {
    Name = "<unnamed>";
  }
  return Name + "[" + std::to_string(Index) + "]";
}

void MemGuard::record(GuardFinding F) {
  std::string Key = std::to_string(static_cast<int>(F.K)) + "|" + F.Location;
  if (!Seen.emplace(Key, true).second)
    return;
  if (Report.Findings.size() >= MaxFindings) {
    Report.Truncated = true;
    return;
  }
  Report.Findings.push_back(std::move(F));
}

MemGuard::Access MemGuard::check(const void *Mem, int64_t Index,
                                 size_t Extent, int64_t Item,
                                 const std::array<int64_t, 3> &Group,
                                 bool IsWrite) {
  ++Report.AccessesChecked;
  if (Index < 0 || static_cast<size_t>(Index) >= Extent) {
    GuardFinding F;
    F.K = IsWrite ? GuardFinding::OobWrite : GuardFinding::OobRead;
    F.Location = nameOf(Mem, Index);
    F.Detail = std::string(IsWrite ? "store" : "load") + " at index " +
               std::to_string(Index) + " of an allocation of " +
               std::to_string(Extent) + " element(s)";
    F.Item = Item;
    F.Group = Group;
    record(std::move(F));
    return Access::OutOfBounds;
  }

  auto It = Blocks.find(Mem);
  if (It == Blocks.end()) {
    // Not a session-local block: a launch-level registration (shared,
    // frozen bitmap + session overlay) or an unregistered allocation.
    const SharedBlockTable::Entry *E = Shared ? Shared->find(Mem) : nullptr;
    if (!E || !E->Init)
      return Access::Ok; // unregistered or host-initialized
    if (IsWrite) {
      if (Overlay.emplace(OverlayKey{Mem, Index}, true).second)
        SharedWriteList.emplace_back(Mem, Index);
      return Access::Ok;
    }
    const std::vector<uint8_t> &Init = *E->Init;
    if (static_cast<size_t>(Index) < Init.size() &&
        Init[static_cast<size_t>(Index)])
      return Access::Ok;
    if (Overlay.find(OverlayKey{Mem, Index}) != Overlay.end())
      return Access::Ok;
    GuardFinding F;
    F.K = GuardFinding::UninitRead;
    F.Location = nameOf(Mem, Index);
    F.Detail = "load of an element no store ever wrote";
    F.Item = Item;
    F.Group = Group;
    record(std::move(F));
    return Access::Uninitialized;
  }
  if (!It->second.Init)
    return Access::Ok; // host-initialized: in-bounds is fine
  std::vector<uint8_t> &Init = *It->second.Init;
  if (Init.size() < Extent)
    Init.resize(Extent, 0);
  if (IsWrite) {
    Init[static_cast<size_t>(Index)] = 1;
    return Access::Ok;
  }
  if (Init[static_cast<size_t>(Index)])
    return Access::Ok;
  GuardFinding F;
  F.K = GuardFinding::UninitRead;
  F.Location = nameOf(Mem, Index);
  F.Detail = "load of an element no store ever wrote";
  F.Item = Item;
  F.Group = Group;
  record(std::move(F));
  return Access::Uninitialized;
}
