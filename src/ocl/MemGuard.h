//===- MemGuard.h - Guarded-memory execution --------------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Guarded-memory checking for the simulated OpenCL runtime: every buffer
/// and array element access the interpreter performs is validated against
/// the allocation's extent, and reads are validated against a per-element
/// initialized bitmap. Violations become structured findings (mirroring
/// RaceDetector.h) instead of aborting the run:
///
///  * an out-of-bounds write is dropped into a scratch slot and recorded;
///  * an out-of-bounds read returns zero and is recorded;
///  * a read of an element no store (host or device) ever wrote is
///    recorded and the resident zero value is returned.
///
/// The initialized bitmap lives with the host Buffer (Runtime.h), so
/// initialization carries across the launches of a multi-kernel benchmark
/// (e.g. ATAX's second stage reading what the first stage wrote). Device
/// local/private arrays are registered per-allocation, starting fully
/// uninitialized. Host-filled buffers (ofFloats, ofInts, ofVectors,
/// filled) carry no bitmap and count as fully initialized; Buffer::zeros
/// is an *uninitialized* allocation, as its documentation always said.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_OCL_MEMGUARD_H
#define LIFT_OCL_MEMGUARD_H

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace lift {
namespace ocl {

enum class MemSpace; // Runtime.h

/// One defect found by guarded-memory execution.
struct GuardFinding {
  enum Kind {
    OobWrite,   ///< Store outside the allocated extent (dropped).
    OobRead,    ///< Load outside the allocated extent (returned zero).
    UninitRead, ///< Load of an element that was never stored to.
  };

  Kind K = OobWrite;
  /// Allocation name and element index, e.g. "A[17]".
  std::string Location;
  /// Human-readable one-line description.
  std::string Detail;
  /// Linear in-group id of the offending work-item (-1 if host-side).
  int64_t Item = -1;
  std::array<int64_t, 3> Group = {0, 0, 0};

  static const char *kindName(Kind K);
};

/// Result of a memory-checked launch.
struct GuardReport {
  std::vector<GuardFinding> Findings;
  uint64_t AccessesChecked = 0;
  /// True if the cap on findings was hit (further defects were dropped).
  bool Truncated = false;

  bool clean() const { return Findings.empty(); }
  unsigned oobWrites() const;
  unsigned oobReads() const;
  unsigned uninitReads() const;
  /// Multi-line summary suitable for diagnostics.
  std::string summary() const;
};

/// Shared per-element initialized bitmap (1 = written at least once).
using InitMap = std::shared_ptr<std::vector<uint8_t>>;

/// Validates element accesses for one launch; owned by the interpreter
/// while a memory-checked launch runs, writing into a caller-provided
/// report. Duplicate findings for the same (kind, allocation, index) are
/// reported once.
class MemGuard {
public:
  explicit MemGuard(GuardReport &Report, unsigned MaxFindings = 64)
      : Report(Report), MaxFindings(MaxFindings) {}

  /// Associates a memory block with a diagnostic name and its initialized
  /// bitmap. A null \p Init means the block is fully initialized (host
  /// data). Re-registering a pointer replaces the previous entry (local
  /// and private arrays are re-allocated per group / per item).
  void registerBlock(const void *Mem, const std::string &Name, InitMap Init);

  /// The outcome of checking one access.
  enum class Access { Ok, OutOfBounds, Uninitialized };

  /// Validates one element access against \p Extent and the block's
  /// bitmap; records a finding on a violation. Writes mark the element
  /// initialized. Never aborts: callers drop OOB writes, substitute zero
  /// for OOB reads, and continue past uninitialized reads.
  Access check(const void *Mem, int64_t Index, size_t Extent, int64_t Item,
               const std::array<int64_t, 3> &Group, bool IsWrite);

private:
  struct BlockInfo {
    std::string Name;
    InitMap Init; ///< Null = fully initialized.
  };

  void record(GuardFinding F);
  std::string nameOf(const void *Mem, int64_t Index) const;

  GuardReport &Report;
  unsigned MaxFindings;
  std::unordered_map<const void *, BlockInfo> Blocks;
  /// Deduplication of findings per (kind, block, index).
  std::unordered_map<std::string, bool> Seen;
};

} // namespace ocl
} // namespace lift

#endif // LIFT_OCL_MEMGUARD_H
