//===- MemGuard.h - Guarded-memory execution --------------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Guarded-memory checking for the simulated OpenCL runtime: every buffer
/// and array element access the interpreter performs is validated against
/// the allocation's extent, and reads are validated against a per-element
/// initialized bitmap. Violations become structured findings (mirroring
/// RaceDetector.h) instead of aborting the run:
///
///  * an out-of-bounds write is dropped into a scratch slot and recorded;
///  * an out-of-bounds read returns zero and is recorded;
///  * a read of an element no store (host or device) ever wrote is
///    recorded and the resident zero value is returned.
///
/// The initialized bitmap lives with the host Buffer (Runtime.h), so
/// initialization carries across the launches of a multi-kernel benchmark
/// (e.g. ATAX's second stage reading what the first stage wrote). Device
/// local/private arrays are registered per-allocation, starting fully
/// uninitialized. Host-filled buffers (ofFloats, ofInts, ofVectors,
/// filled) carry no bitmap and count as fully initialized; Buffer::zeros
/// is an *uninitialized* allocation, as its documentation always said.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_OCL_MEMGUARD_H
#define LIFT_OCL_MEMGUARD_H

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace lift {
namespace ocl {

enum class MemSpace; // Runtime.h

/// One defect found by guarded-memory execution.
struct GuardFinding {
  enum Kind {
    OobWrite,   ///< Store outside the allocated extent (dropped).
    OobRead,    ///< Load outside the allocated extent (returned zero).
    UninitRead, ///< Load of an element that was never stored to.
  };

  Kind K = OobWrite;
  /// Allocation name and element index, e.g. "A[17]".
  std::string Location;
  /// Human-readable one-line description.
  std::string Detail;
  /// Linear in-group id of the offending work-item (-1 if host-side).
  int64_t Item = -1;
  std::array<int64_t, 3> Group = {0, 0, 0};

  static const char *kindName(Kind K);
};

/// Result of a memory-checked launch.
struct GuardReport {
  std::vector<GuardFinding> Findings;
  uint64_t AccessesChecked = 0;
  /// True if the cap on findings was hit (further defects were dropped).
  bool Truncated = false;

  bool clean() const { return Findings.empty(); }
  unsigned oobWrites() const;
  unsigned oobReads() const;
  unsigned uninitReads() const;
  /// Multi-line summary suitable for diagnostics.
  std::string summary() const;
};

/// Shared per-element initialized bitmap (1 = written at least once).
using InitMap = std::shared_ptr<std::vector<uint8_t>>;

/// Launch-level block registrations (kernel buffer arguments and global
/// temporaries) shared read-only by the per-group guard sessions of a
/// parallel launch. The bitmaps are frozen while groups execute: sessions
/// buffer their writes in per-session overlays, and the runtime publishes
/// them with commitWrites after the groups join — so every group observes
/// exactly the launch-start initialization state and findings do not
/// depend on group execution order (or thread count). Initialization
/// still carries across the launches of a multi-kernel benchmark, because
/// commits happen between launches.
class SharedBlockTable {
public:
  struct Entry {
    std::string Name;
    InitMap Init; ///< Null = fully initialized (host data).
  };

  /// Registers a block. A null \p Init means fully initialized.
  void registerBlock(const void *Mem, const std::string &Name, InitMap Init);

  const Entry *find(const void *Mem) const;

  /// Marks the overlay's elements initialized in the blocks' bitmaps.
  /// Commits are idempotent and order-independent (bitwise OR).
  void commitWrites(const std::vector<std::pair<const void *, int64_t>> &W);

private:
  std::unordered_map<const void *, Entry> Blocks;
};

/// Validates element accesses for one group session (or, serially, one
/// whole launch), writing into a caller-provided report. Duplicate
/// findings for the same (kind, allocation, index) are reported once per
/// session; the parallel runtime deduplicates again when it merges the
/// per-group reports in canonical group order.
class MemGuard {
public:
  /// \p Shared optionally points at the launch-level registrations; the
  /// session treats their bitmaps as read-only and records writes to them
  /// in an overlay (see SharedBlockTable and sharedWrites()).
  explicit MemGuard(GuardReport &Report, unsigned MaxFindings = 64,
                    const SharedBlockTable *Shared = nullptr)
      : Report(Report), MaxFindings(MaxFindings), Shared(Shared) {}

  /// Associates a memory block with a diagnostic name and its initialized
  /// bitmap. A null \p Init means the block is fully initialized (host
  /// data). Re-registering a pointer replaces the previous entry (local
  /// and private arrays are re-allocated per group / per item).
  void registerBlock(const void *Mem, const std::string &Name, InitMap Init);

  /// The outcome of checking one access.
  enum class Access { Ok, OutOfBounds, Uninitialized };

  /// Validates one element access against \p Extent and the block's
  /// bitmap; records a finding on a violation. Writes mark the element
  /// initialized. Never aborts: callers drop OOB writes, substitute zero
  /// for OOB reads, and continue past uninitialized reads.
  Access check(const void *Mem, int64_t Index, size_t Extent, int64_t Item,
               const std::array<int64_t, 3> &Group, bool IsWrite);

  /// In-bounds writes this session performed against shared blocks, for
  /// SharedBlockTable::commitWrites once the session's group retired.
  const std::vector<std::pair<const void *, int64_t>> &sharedWrites() const {
    return SharedWriteList;
  }

private:
  struct BlockInfo {
    std::string Name;
    InitMap Init; ///< Null = fully initialized.
  };

  void record(GuardFinding F);
  std::string nameOf(const void *Mem, int64_t Index) const;

  GuardReport &Report;
  unsigned MaxFindings;
  const SharedBlockTable *Shared;
  std::unordered_map<const void *, BlockInfo> Blocks;
  /// Deduplication of findings per (kind, block, index).
  std::unordered_map<std::string, bool> Seen;
  /// Overlay over the shared (frozen) bitmaps: elements this session wrote.
  struct OverlayKey {
    const void *Mem;
    int64_t Index;
    bool operator==(const OverlayKey &O) const {
      return Mem == O.Mem && Index == O.Index;
    }
  };
  struct OverlayHash {
    size_t operator()(const OverlayKey &K) const {
      size_t H = std::hash<const void *>()(K.Mem);
      return H ^ (std::hash<int64_t>()(K.Index) + 0x9e3779b97f4a7c15ULL +
                  (H << 6) + (H >> 2));
    }
  };
  std::unordered_map<OverlayKey, bool, OverlayHash> Overlay;
  std::vector<std::pair<const void *, int64_t>> SharedWriteList;
};

/// Appends \p Other's findings into \p Into in order, deduplicating on
/// (kind, location) across sessions via \p SeenKeys and capping at
/// \p MaxFindings; sums the access counter. Used by the parallel runtime
/// to merge per-group reports in canonical group order.
void mergeGuardReport(GuardReport &Into, const GuardReport &Other,
                      unsigned MaxFindings,
                      std::unordered_map<std::string, bool> &SeenKeys);

} // namespace ocl
} // namespace lift

#endif // LIFT_OCL_MEMGUARD_H
