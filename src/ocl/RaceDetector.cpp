//===- RaceDetector.cpp - Dynamic race & divergence detection ------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ocl/RaceDetector.h"

#include "ocl/Runtime.h"

#include <algorithm>
#include <sstream>

using namespace lift;
using namespace lift::ocl;

const char *RaceFinding::kindName(Kind K) {
  switch (K) {
  case WriteWrite:
    return "write-write race";
  case ReadWrite:
    return "read-write race";
  case BarrierDivergence:
    return "barrier divergence";
  }
  return "?";
}

unsigned RaceReport::races() const {
  unsigned N = 0;
  for (const RaceFinding &F : Findings)
    N += F.K != RaceFinding::BarrierDivergence;
  return N;
}

unsigned RaceReport::divergences() const {
  unsigned N = 0;
  for (const RaceFinding &F : Findings)
    N += F.K == RaceFinding::BarrierDivergence;
  return N;
}

std::string RaceReport::summary() const {
  std::ostringstream OS;
  OS << Findings.size() << " finding(s) (" << races() << " race(s), "
     << divergences() << " divergence(s)) over " << IntervalsChecked
     << " barrier interval(s), " << AccessesRecorded
     << " access(es) checked";
  if (Truncated)
    OS << " [truncated]";
  for (const RaceFinding &F : Findings)
    OS << "\n  " << RaceFinding::kindName(F.K) << ": " << F.Detail;
  return OS.str();
}

void RaceReport::mergeFrom(const RaceReport &Other, unsigned MaxFindings) {
  IntervalsChecked += Other.IntervalsChecked;
  AccessesRecorded += Other.AccessesRecorded;
  Truncated |= Other.Truncated;
  for (const RaceFinding &F : Other.Findings) {
    if (Findings.size() >= MaxFindings) {
      Truncated = true;
      return;
    }
    Findings.push_back(F);
  }
}

void RaceDetector::registerBlock(const void *Mem, const std::string &Name) {
  BlockNames[Mem] = Name;
}

void RaceDetector::beginGroup(const std::array<int64_t, 3> &G,
                              size_t NumItems) {
  Group = G;
  Interval.clear();
  ItemArrivals.assign(NumItems, 0);
  IntervalIndex = 0;
  AccessSeq = 0;
  InGroup = true;
}

void RaceDetector::recordAccess(const void *Mem, int64_t Index,
                                MemSpace Space, int64_t Item, bool IsWrite) {
  if (!InGroup || Space == MemSpace::Private)
    return;
  ++Report.AccessesRecorded;
  Cell &C = Interval[Key{Mem, Index}];
  if (IsWrite) {
    if (C.Writer1 < 0) {
      C.Writer1 = Item;
      C.FirstWriteSeq = AccessSeq++;
    } else if (C.Writer1 != Item && C.Writer2 < 0) {
      C.Writer2 = Item;
    }
  } else {
    if (C.Reader1 < 0)
      C.Reader1 = Item;
    else if (C.Reader1 != Item && C.Reader2 < 0)
      C.Reader2 = Item;
  }
}

void RaceDetector::lockstepBarrier() {
  if (!InGroup)
    return;
  closeInterval();
}

void RaceDetector::itemBarrier(int64_t Item) {
  if (!InGroup)
    return;
  if (Item >= 0 && static_cast<size_t>(Item) < ItemArrivals.size())
    ++ItemArrivals[Item];
}

void RaceDetector::divergence(const std::string &Detail) {
  RaceFinding F;
  F.K = RaceFinding::BarrierDivergence;
  F.Detail = Detail;
  F.Group = Group;
  F.Interval = IntervalIndex;
  addFinding(std::move(F));
}

void RaceDetector::endGroup() {
  if (!InGroup)
    return;
  closeInterval();
  InGroup = false;
}

std::string RaceDetector::locationName(const Key &K) const {
  std::ostringstream OS;
  auto It = BlockNames.find(K.Mem);
  if (It != BlockNames.end()) {
    OS << It->second;
  } else if (SharedNames != nullptr &&
             SharedNames->find(K.Mem) != SharedNames->end()) {
    OS << SharedNames->find(K.Mem)->second;
  } else {
    OS << "<buffer@" << K.Mem << ">";
  }
  OS << "[" << K.Index << "]";
  return OS.str();
}

void RaceDetector::closeInterval() {
  ++Report.IntervalsChecked;

  // Collect conflicting locations, then order them by first-write time so
  // the report is independent of hash-map iteration order.
  std::vector<std::pair<const Key *, const Cell *>> Racy;
  for (const auto &[K, C] : Interval) {
    bool WW = C.Writer2 >= 0;
    bool RW = C.Writer1 >= 0 &&
              ((C.Reader1 >= 0 && C.Reader1 != C.Writer1) ||
               (C.Reader2 >= 0 && C.Reader2 != C.Writer1));
    if (WW || RW)
      Racy.emplace_back(&K, &C);
  }
  std::sort(Racy.begin(), Racy.end(), [](const auto &A, const auto &B) {
    return A.second->FirstWriteSeq < B.second->FirstWriteSeq;
  });

  for (const auto &[K, C] : Racy) {
    RaceFinding F;
    F.Group = Group;
    F.Interval = IntervalIndex;
    F.Location = locationName(*K);
    if (C->Writer2 >= 0) {
      F.K = RaceFinding::WriteWrite;
      F.ItemA = C->Writer1;
      F.ItemB = C->Writer2;
    } else {
      F.K = RaceFinding::ReadWrite;
      F.ItemA = C->Writer1;
      F.ItemB = C->Reader1 != C->Writer1 ? C->Reader1 : C->Reader2;
    }
    std::ostringstream OS;
    OS << F.Location << ": work-items " << F.ItemA << " and " << F.ItemB
       << " of group (" << Group[0] << "," << Group[1] << "," << Group[2]
       << ") conflict in barrier interval " << IntervalIndex << " ("
       << (F.K == RaceFinding::WriteWrite ? "both wrote"
                                          : "one wrote, one read")
       << ")";
    F.Detail = OS.str();
    addFinding(std::move(F));
    if (Report.Truncated)
      break;
  }
  Interval.clear();

  // Every item of the group must have performed the same number of
  // out-of-lockstep barrier waits by the time the group synchronizes.
  if (!ItemArrivals.empty()) {
    uint64_t First = ItemArrivals[0];
    for (size_t I = 1; I != ItemArrivals.size(); ++I) {
      if (ItemArrivals[I] != First) {
        std::ostringstream OS;
        OS << "work-items 0 and " << I << " of group (" << Group[0] << ","
           << Group[1] << "," << Group[2] << ") disagree on barrier arrival ("
           << First << " vs " << ItemArrivals[I] << " waits) in interval "
           << IntervalIndex;
        divergence(OS.str());
        break;
      }
    }
    std::fill(ItemArrivals.begin(), ItemArrivals.end(), 0);
  }

  ++IntervalIndex;
}

void RaceDetector::addFinding(RaceFinding F) {
  if (Report.Findings.size() >= MaxFindings) {
    Report.Truncated = true;
    return;
  }
  Report.Findings.push_back(std::move(F));
}
