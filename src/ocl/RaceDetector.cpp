//===- RaceDetector.cpp - Dynamic race & divergence detection ------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ocl/RaceDetector.h"

#include "ocl/Runtime.h"

#include <algorithm>
#include <sstream>

using namespace lift;
using namespace lift::ocl;

const char *RaceFinding::kindName(Kind K) {
  switch (K) {
  case WriteWrite:
    return "write-write race";
  case ReadWrite:
    return "read-write race";
  case BarrierDivergence:
    return "barrier divergence";
  case CrossGroup:
    return "cross-group hazard";
  }
  return "?";
}

unsigned RaceReport::races() const {
  unsigned N = 0;
  for (const RaceFinding &F : Findings)
    N += F.K != RaceFinding::BarrierDivergence;
  return N;
}

unsigned RaceReport::divergences() const {
  unsigned N = 0;
  for (const RaceFinding &F : Findings)
    N += F.K == RaceFinding::BarrierDivergence;
  return N;
}

std::string RaceReport::summary() const {
  std::ostringstream OS;
  OS << Findings.size() << " finding(s) (" << races() << " race(s), "
     << divergences() << " divergence(s)) over " << IntervalsChecked
     << " barrier interval(s), " << AccessesRecorded
     << " access(es) checked";
  if (Truncated)
    OS << " [truncated]";
  for (const RaceFinding &F : Findings)
    OS << "\n  " << RaceFinding::kindName(F.K) << ": " << F.Detail;
  return OS.str();
}

void RaceReport::mergeFrom(const RaceReport &Other, unsigned MaxFindings) {
  IntervalsChecked += Other.IntervalsChecked;
  AccessesRecorded += Other.AccessesRecorded;
  Truncated |= Other.Truncated;
  for (const RaceFinding &F : Other.Findings) {
    if (Findings.size() >= MaxFindings) {
      Truncated = true;
      return;
    }
    Findings.push_back(F);
  }
}

void RaceDetector::registerBlock(const void *Mem, const std::string &Name) {
  BlockNames[Mem] = Name;
}

void RaceDetector::beginGroup(const std::array<int64_t, 3> &G,
                              size_t NumItems) {
  Group = G;
  Interval.clear();
  GroupGlobal.clear();
  ItemArrivals.assign(NumItems, 0);
  IntervalIndex = 0;
  AccessSeq = 0;
  InGroup = true;
}

void RaceDetector::recordAccess(const void *Mem, int64_t Index,
                                MemSpace Space, int64_t Item, bool IsWrite) {
  if (!InGroup || Space == MemSpace::Private)
    return;
  ++Report.AccessesRecorded;
  if (TrackGlobal && Space == MemSpace::Global)
    GroupGlobal[Key{Mem, Index}] |= IsWrite ? uint8_t(2) : uint8_t(1);
  Cell &C = Interval[Key{Mem, Index}];
  if (IsWrite) {
    if (C.Writer1 < 0) {
      C.Writer1 = Item;
      C.FirstWriteSeq = AccessSeq++;
    } else if (C.Writer1 != Item && C.Writer2 < 0) {
      C.Writer2 = Item;
    }
  } else {
    if (C.Reader1 < 0)
      C.Reader1 = Item;
    else if (C.Reader1 != Item && C.Reader2 < 0)
      C.Reader2 = Item;
  }
}

void RaceDetector::lockstepBarrier() {
  if (!InGroup)
    return;
  closeInterval();
}

void RaceDetector::itemBarrier(int64_t Item) {
  if (!InGroup)
    return;
  if (Item >= 0 && static_cast<size_t>(Item) < ItemArrivals.size())
    ++ItemArrivals[Item];
}

void RaceDetector::divergence(const std::string &Detail) {
  RaceFinding F;
  F.K = RaceFinding::BarrierDivergence;
  F.Detail = Detail;
  F.Group = Group;
  F.Interval = IntervalIndex;
  addFinding(std::move(F));
}

void RaceDetector::endGroup() {
  if (!InGroup)
    return;
  closeInterval();
  InGroup = false;
}

std::string RaceDetector::locationName(const Key &K) const {
  std::ostringstream OS;
  auto It = BlockNames.find(K.Mem);
  if (It != BlockNames.end()) {
    OS << It->second;
  } else if (SharedNames != nullptr &&
             SharedNames->find(K.Mem) != SharedNames->end()) {
    OS << SharedNames->find(K.Mem)->second;
  } else {
    OS << "<buffer@" << K.Mem << ">";
  }
  OS << "[" << K.Index << "]";
  return OS.str();
}

void RaceDetector::closeInterval() {
  ++Report.IntervalsChecked;

  // Collect conflicting locations, then order them by first-write time so
  // the report is independent of hash-map iteration order.
  std::vector<std::pair<const Key *, const Cell *>> Racy;
  for (const auto &[K, C] : Interval) {
    bool WW = C.Writer2 >= 0;
    bool RW = C.Writer1 >= 0 &&
              ((C.Reader1 >= 0 && C.Reader1 != C.Writer1) ||
               (C.Reader2 >= 0 && C.Reader2 != C.Writer1));
    if (WW || RW)
      Racy.emplace_back(&K, &C);
  }
  std::sort(Racy.begin(), Racy.end(), [](const auto &A, const auto &B) {
    return A.second->FirstWriteSeq < B.second->FirstWriteSeq;
  });

  for (const auto &[K, C] : Racy) {
    RaceFinding F;
    F.Group = Group;
    F.Interval = IntervalIndex;
    F.Location = locationName(*K);
    if (C->Writer2 >= 0) {
      F.K = RaceFinding::WriteWrite;
      F.ItemA = C->Writer1;
      F.ItemB = C->Writer2;
    } else {
      F.K = RaceFinding::ReadWrite;
      F.ItemA = C->Writer1;
      F.ItemB = C->Reader1 != C->Writer1 ? C->Reader1 : C->Reader2;
    }
    std::ostringstream OS;
    OS << F.Location << ": work-items " << F.ItemA << " and " << F.ItemB
       << " of group (" << Group[0] << "," << Group[1] << "," << Group[2]
       << ") conflict in barrier interval " << IntervalIndex << " ("
       << (F.K == RaceFinding::WriteWrite ? "both wrote"
                                          : "one wrote, one read")
       << ")";
    F.Detail = OS.str();
    addFinding(std::move(F));
    if (Report.Truncated)
      break;
  }
  Interval.clear();

  // Every item of the group must have performed the same number of
  // out-of-lockstep barrier waits by the time the group synchronizes.
  if (!ItemArrivals.empty()) {
    uint64_t First = ItemArrivals[0];
    for (size_t I = 1; I != ItemArrivals.size(); ++I) {
      if (ItemArrivals[I] != First) {
        std::ostringstream OS;
        OS << "work-items 0 and " << I << " of group (" << Group[0] << ","
           << Group[1] << "," << Group[2] << ") disagree on barrier arrival ("
           << First << " vs " << ItemArrivals[I] << " waits) in interval "
           << IntervalIndex;
        divergence(OS.str());
        break;
      }
    }
    std::fill(ItemArrivals.begin(), ItemArrivals.end(), 0);
  }

  ++IntervalIndex;
}

void RaceDetector::addFinding(RaceFinding F) {
  if (Report.Findings.size() >= MaxFindings) {
    Report.Truncated = true;
    return;
  }
  Report.Findings.push_back(std::move(F));
}

void RaceDetector::takeGroupGlobalAccesses(std::vector<GlobalAccess> &Out) {
  Out.clear();
  Out.reserve(GroupGlobal.size());
  for (const auto &[K, RW] : GroupGlobal)
    Out.push_back(GlobalAccess{K.Mem, K.Index, RW});
  GroupGlobal.clear();
}

void ocl::crossGroupCheck(
    const std::vector<std::vector<RaceDetector::GlobalAccess>> &PerGroup,
    const std::unordered_map<const void *, std::string> &Names,
    RaceReport &Report, unsigned MaxFindings) {
  auto nameOf = [&](const void *Mem) -> std::string {
    auto It = Names.find(Mem);
    if (It != Names.end())
      return It->second;
    std::ostringstream OS;
    OS << "<buffer@" << Mem << ">";
    return OS.str();
  };

  // Ownership of each touched location by the lowest-numbered group that
  // accessed it; one finding per location, against that first group.
  struct Owner {
    int64_t Writer = -1; ///< First group that wrote the location.
    int64_t Reader = -1; ///< First group that read the location.
    bool Flagged = false;
  };
  struct LocKey {
    const void *Mem;
    int64_t Index;
    bool operator==(const LocKey &O) const {
      return Mem == O.Mem && Index == O.Index;
    }
  };
  struct LocHash {
    size_t operator()(const LocKey &K) const {
      size_t H = std::hash<const void *>()(K.Mem);
      return H ^ (std::hash<int64_t>()(K.Index) + 0x9e3779b97f4a7c15ULL +
                  (H << 6) + (H >> 2));
    }
  };
  std::unordered_map<LocKey, Owner, LocHash> Owners;

  // Sort each group's (unordered) footprint by name then index so the
  // scan — and with it the finding order — never depends on pointer
  // values or hash iteration order.
  std::vector<RaceDetector::GlobalAccess> Sorted;
  for (size_t G = 0; G != PerGroup.size(); ++G) {
    Sorted = PerGroup[G];
    std::sort(Sorted.begin(), Sorted.end(),
              [&](const RaceDetector::GlobalAccess &A,
                  const RaceDetector::GlobalAccess &B) {
                std::string NA = nameOf(A.Mem), NB = nameOf(B.Mem);
                if (NA != NB)
                  return NA < NB;
                if (A.Index != B.Index)
                  return A.Index < B.Index;
                return A.RW < B.RW;
              });
    for (const RaceDetector::GlobalAccess &A : Sorted) {
      Owner &O = Owners[LocKey{A.Mem, A.Index}];
      bool Writes = (A.RW & 2) != 0;
      bool Reads = (A.RW & 1) != 0;
      int64_t Prior = -1;
      if (Writes && (O.Writer >= 0 || O.Reader >= 0))
        Prior = O.Writer >= 0 ? O.Writer : O.Reader;
      else if (Reads && O.Writer >= 0)
        Prior = O.Writer;
      if (Prior >= 0 && !O.Flagged) {
        O.Flagged = true;
        RaceFinding F;
        F.K = RaceFinding::CrossGroup;
        std::ostringstream Loc;
        Loc << nameOf(A.Mem) << "[" << A.Index << "]";
        F.Location = Loc.str();
        F.ItemA = Prior;                  // prior (lowest) group index
        F.ItemB = static_cast<int64_t>(G); // current group index
        std::ostringstream OS;
        OS << F.Location << ": work-groups " << Prior << " and " << G
           << " access the same global element without inter-group "
              "synchronization ("
           << (Writes && O.Writer >= 0 ? "both wrote" : "one wrote, one read")
           << ")";
        F.Detail = OS.str();
        if (Report.Findings.size() >= MaxFindings) {
          Report.Truncated = true;
          return;
        }
        Report.Findings.push_back(std::move(F));
      }
      if (Writes && O.Writer < 0)
        O.Writer = static_cast<int64_t>(G);
      if (Reads && O.Reader < 0)
        O.Reader = static_cast<int64_t>(G);
    }
  }
}
