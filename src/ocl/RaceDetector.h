//===- RaceDetector.h - Dynamic race & divergence detection -----*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A happens-before data-race and barrier-divergence detector for the
/// simulated OpenCL runtime. The lockstep interpreter executes work-items
/// in one fixed, deterministic order; that schedule can mask real races a
/// GPU would expose (e.g. a missing barrier between cooperative local
/// memory writes and the reads that consume them). This detector makes
/// such bugs visible regardless of the schedule actually executed:
///
///  * Within one work-group, execution between two barriers (a *barrier
///    interval*) is unordered across work-items. The detector records, per
///    memory location, which work-items read and wrote it during the
///    current interval. Two accesses to the same location by different
///    work-items, at least one of them a write, in the same interval
///    conflict under *some* legal schedule -> data race.
///
///  * Barriers must be reached by every work-item of the group the same
///    number of times. Barriers executed outside lockstep (divergent
///    control flow, barriers hidden in user functions) are tallied
///    per-item; a mismatch at the next interval boundary -> barrier
///    divergence. Non-uniform branches or loops enclosing a barrier are
///    reported directly.
///
/// Detection is per work-group: work-groups are independent in OpenCL, and
/// a barrier only synchronizes the items of one group. The report is
/// deterministic: findings are produced in execution order and capped.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_OCL_RACEDETECTOR_H
#define LIFT_OCL_RACEDETECTOR_H

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace lift {
namespace ocl {

enum class MemSpace; // Runtime.h

/// One defect found during a checked launch.
struct RaceFinding {
  enum Kind {
    WriteWrite,        ///< Two work-items wrote the location in one interval.
    ReadWrite,         ///< One wrote, another read, in one interval.
    BarrierDivergence, ///< Items of a group disagree on barrier arrival.
    CrossGroup,        ///< Two work-groups access it, one of them writing.
  };

  Kind K = WriteWrite;
  /// Buffer or local array name and element index, e.g. "aTile[17]".
  std::string Location;
  /// Human-readable one-line description.
  std::string Detail;
  /// Linear in-group ids of the two conflicting work-items (-1 if n/a).
  int64_t ItemA = -1;
  int64_t ItemB = -1;
  std::array<int64_t, 3> Group = {0, 0, 0};
  /// Zero-based barrier interval within the group's execution.
  uint64_t Interval = 0;

  static const char *kindName(Kind K);
};

/// Result of a checked launch.
struct RaceReport {
  std::vector<RaceFinding> Findings;
  uint64_t IntervalsChecked = 0;
  uint64_t AccessesRecorded = 0;
  /// True if the cap on findings was hit (further defects were dropped).
  bool Truncated = false;

  bool clean() const { return Findings.empty(); }
  unsigned races() const;
  unsigned divergences() const;
  /// Multi-line summary suitable for diagnostics.
  std::string summary() const;

  /// Appends \p Other's findings (respecting \p MaxFindings) and sums the
  /// counters. The parallel runtime detects per work-group into per-group
  /// reports and merges them in canonical group order, so the combined
  /// report is identical at every thread count.
  void mergeFrom(const RaceReport &Other, unsigned MaxFindings);
};

/// Records accesses and barrier arrivals for one launch; owned by the
/// interpreter while a checked launch runs, writing into a caller-provided
/// report. All ids are linear in-group work-item ids.
class RaceDetector {
public:
  /// \p SharedNames optionally points at launch-level block names (kernel
  /// buffer arguments) owned by the caller and treated as read-only, so
  /// per-group detector sessions running on pool workers can share one
  /// table instead of copying it per group.
  explicit RaceDetector(
      RaceReport &Report, unsigned MaxFindings = 64,
      const std::unordered_map<const void *, std::string> *SharedNames =
          nullptr)
      : Report(Report), MaxFindings(MaxFindings), SharedNames(SharedNames) {}

  /// Associates a human-readable name with a memory block (buffer or
  /// local array) for diagnostics. Safe to call repeatedly.
  void registerBlock(const void *Mem, const std::string &Name);

  /// Starts detection for one work-group.
  void beginGroup(const std::array<int64_t, 3> &Group, size_t NumItems);

  /// Records one element access. Private memory is per-item and never
  /// races; callers only report __local and __global accesses.
  void recordAccess(const void *Mem, int64_t Index, MemSpace Space,
                    int64_t Item, bool IsWrite);

  /// One global-memory element touched by the current group, exported for
  /// the post-join cross-group hazard pass (crossGroupCheck below).
  struct GlobalAccess {
    const void *Mem = nullptr;
    int64_t Index = 0;
    uint8_t RW = 0; ///< bit 0: some item read it, bit 1: some item wrote it.
  };

  /// Enables per-group recording of the global-memory access footprint
  /// (off by default — it costs a hash insertion per global access).
  void setTrackGlobal(bool V) { TrackGlobal = V; }

  /// Moves the group's recorded global footprint into \p Out (unordered)
  /// and clears the internal map. Call after endGroup().
  void takeGroupGlobalAccesses(std::vector<GlobalAccess> &Out);

  /// A barrier reached in lockstep by every item of the group: closes the
  /// current interval, checking accesses and arrival parity.
  void lockstepBarrier();

  /// A barrier executed by a single item outside lockstep (divergent
  /// control flow or a barrier inside a called function).
  void itemBarrier(int64_t Item);

  /// Reports non-uniform control flow enclosing a barrier.
  void divergence(const std::string &Detail);

  /// Ends the group: closes the trailing interval.
  void endGroup();

private:
  /// Access summary of one location in the current interval. Tracks up to
  /// two distinct readers and writers — enough to decide every conflict.
  struct Cell {
    int64_t Writer1 = -1, Writer2 = -1;
    int64_t Reader1 = -1, Reader2 = -1;
    int64_t FirstWriteSeq = -1; ///< For deterministic finding order.
  };

  struct Key {
    const void *Mem;
    int64_t Index;
    bool operator==(const Key &O) const {
      return Mem == O.Mem && Index == O.Index;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      size_t H = std::hash<const void *>()(K.Mem);
      return H ^ (std::hash<int64_t>()(K.Index) + 0x9e3779b97f4a7c15ULL +
                  (H << 6) + (H >> 2));
    }
  };

  void closeInterval();
  void addFinding(RaceFinding F);
  std::string locationName(const Key &K) const;

  RaceReport &Report;
  unsigned MaxFindings;
  const std::unordered_map<const void *, std::string> *SharedNames;

  std::unordered_map<const void *, std::string> BlockNames;
  std::unordered_map<Key, Cell, KeyHash> Interval;
  /// Global-memory footprint of the current group (TrackGlobal only).
  std::unordered_map<Key, uint8_t, KeyHash> GroupGlobal;
  bool TrackGlobal = false;
  std::vector<uint64_t> ItemArrivals; ///< Out-of-lockstep barrier tallies.
  std::array<int64_t, 3> Group = {0, 0, 0};
  uint64_t IntervalIndex = 0;
  int64_t AccessSeq = 0;
  bool InGroup = false;
};

/// Post-join cross-group hazard pass: work-groups are unordered and a
/// barrier only synchronizes the items of one group, so two groups
/// touching the same global element — at least one writing — conflict
/// under some legal group schedule. \p PerGroup holds every group's
/// footprint in canonical group order (takeGroupGlobalAccesses output);
/// findings are appended to \p Report as RaceFinding::CrossGroup, one per
/// location, deterministically ordered by (buffer name, element index)
/// and independent of the thread count that produced the footprints.
void crossGroupCheck(
    const std::vector<std::vector<RaceDetector::GlobalAccess>> &PerGroup,
    const std::unordered_map<const void *, std::string> &Names,
    RaceReport &Report, unsigned MaxFindings);

} // namespace ocl
} // namespace lift

#endif // LIFT_OCL_RACEDETECTOR_H
