//===- Runtime.h - Simulated OpenCL runtime ---------------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simulated OpenCL runtime: buffers, NDRanges and a lockstep work-item
/// interpreter that executes compiled kernels *directly from the C AST the
/// code generator produced*. This substitutes for the GPU + driver of the
/// paper's evaluation: the exact code path a real device would compile is
/// executed and validated, and a machine-independent cost model stands in
/// for wall-clock time (see DESIGN.md, Substitutions).
///
/// Work-groups are independent (they share nothing but global memory — the
/// guarantee the Lift IR's mapWrg encodes), so launches execute them on a
/// persistent worker pool (LaunchConfig::Threads; default = hardware
/// concurrency, 1 = serial). Work-items within a group run in lockstep at
/// the granularity of barrier-containing statements, enforcing OpenCL's
/// rule that barriers sit in uniform control flow. Results, cost reports
/// and race/memory findings are identical at every thread count — see
/// docs/PARALLEL_RUNTIME.md for the determinism design.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_OCL_RUNTIME_H
#define LIFT_OCL_RUNTIME_H

#include "codegen/Compiler.h"
#include "ocl/MemGuard.h"
#include "ocl/RaceDetector.h"
#include "support/Diagnostics.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace lift {
namespace ocl {

//===----------------------------------------------------------------------===//
// Values
//===----------------------------------------------------------------------===//

class Value;
using MemoryPtr = std::shared_ptr<std::vector<Value>>;

/// Address-space tag carried by pointer values for cost accounting.
enum class MemSpace { Global, Local, Private };

/// Storage for OpenCL vector-value components. Widths up to 4 live
/// inline (float2/float4 cover the kernels the generator emits), so the
/// interpreter's per-operation vector values never touch the heap; wider
/// vectors spill.
class VecN {
  static constexpr uint32_t InlineCap = 4;
  double Small[InlineCap];
  double *Big = nullptr;
  uint32_t N = 0;
  uint32_t Cap = InlineCap;

  void grow(uint32_t NewCap) {
    double *P = new double[NewCap];
    for (uint32_t I = 0; I != N; ++I)
      P[I] = data()[I];
    delete[] Big;
    Big = P;
    Cap = NewCap;
  }

public:
  VecN() = default;
  /// \p Count zero components (the shape std::vector<double>(n) had).
  explicit VecN(size_t Count) { assign(Count, 0.0); }
  VecN(const VecN &O) { assign(O.data(), O.data() + O.N); }
  VecN(VecN &&O) noexcept
      : Big(O.Big), N(O.N), Cap(O.Cap) {
    for (uint32_t I = 0; I != InlineCap; ++I)
      Small[I] = O.Small[I];
    O.Big = nullptr;
    O.N = 0;
    O.Cap = InlineCap;
  }
  VecN &operator=(const VecN &O) {
    if (this != &O)
      assign(O.data(), O.data() + O.N);
    return *this;
  }
  VecN &operator=(VecN &&O) noexcept {
    if (this != &O) {
      delete[] Big;
      Big = O.Big;
      N = O.N;
      Cap = O.Cap;
      for (uint32_t I = 0; I != InlineCap; ++I)
        Small[I] = O.Small[I];
      O.Big = nullptr;
      O.N = 0;
      O.Cap = InlineCap;
    }
    return *this;
  }
  ~VecN() { delete[] Big; }

  size_t size() const { return N; }
  bool empty() const { return N == 0; }
  double *data() { return Big ? Big : Small; }
  const double *data() const { return Big ? Big : Small; }
  double &operator[](size_t I) { return data()[I]; }
  const double &operator[](size_t I) const { return data()[I]; }
  double *begin() { return data(); }
  double *end() { return data() + N; }
  const double *begin() const { return data(); }
  const double *end() const { return data() + N; }

  void reserve(size_t C) {
    if (C > Cap)
      grow(static_cast<uint32_t>(C));
  }
  void push_back(double X) {
    if (N == Cap)
      grow(Cap * 2);
    data()[N++] = X;
  }
  void assign(size_t Count, double X) {
    reserve(Count);
    N = static_cast<uint32_t>(Count);
    for (uint32_t I = 0; I != N; ++I)
      data()[I] = X;
  }
  void assign(const double *First, const double *Last) {
    size_t Count = static_cast<size_t>(Last - First);
    reserve(Count);
    N = static_cast<uint32_t>(Count);
    for (uint32_t I = 0; I != N; ++I)
      data()[I] = First[I];
  }
};

/// A runtime value: scalar int/float, OpenCL vector, tuple (struct), or a
/// pointer to simulated memory.
class Value {
public:
  enum Kind { Int, Flt, Vec, Tup, Ptr } K = Int;

  int64_t I = 0;
  double F = 0;
  VecN V;               // vector components
  std::vector<Value> T; // tuple fields
  MemoryPtr P;          // pointed-to memory
  MemSpace Space = MemSpace::Global;

  Value() = default;
  static Value makeInt(int64_t X) {
    Value R;
    R.K = Int;
    R.I = X;
    return R;
  }
  static Value makeFloat(double X) {
    Value R;
    R.K = Flt;
    R.F = X;
    return R;
  }
  static Value makeVec(VecN X) {
    Value R;
    R.K = Vec;
    R.V = std::move(X);
    return R;
  }
  static Value makeTuple(std::vector<Value> X) {
    Value R;
    R.K = Tup;
    R.T = std::move(X);
    return R;
  }
  static Value makePtr(MemoryPtr M, MemSpace S) {
    Value R;
    R.K = Ptr;
    R.P = std::move(M);
    R.Space = S;
    return R;
  }

  /// Numeric conversion helpers (abort on non-numeric values).
  double asFloat() const;
  int64_t asInt() const;
  bool asBool() const;
};

//===----------------------------------------------------------------------===//
// Buffers
//===----------------------------------------------------------------------===//

/// A host/device buffer of simulated memory.
class Buffer {
public:
  MemoryPtr Mem = std::make_shared<std::vector<Value>>();

  /// Per-element initialized bitmap consumed by guarded-memory execution
  /// (MemGuard.h). Null for host-filled buffers (fully initialized);
  /// all-zero for Buffer::zeros. Shared so initialization carries across
  /// the launches of a multi-kernel benchmark.
  InitMap Init;

  /// Set on every buffer bound to a launch that was cancelled mid-flight
  /// (execution limit exceeded, injected fault, runtime error): the
  /// contents may hold partial writes, so reading them back
  /// (toFloats/toInts/toFlatFloats) or passing them to another launch
  /// raises E0601 until the host rewrites the buffer or calls
  /// clearPoison(). See docs/RELIABILITY.md.
  bool Poisoned = false;

  static Buffer ofFloats(const std::vector<float> &Data);
  static Buffer ofInts(const std::vector<int> &Data);
  /// Packs flat floats into vector-typed elements of the given width
  /// (e.g. float4 particle records).
  static Buffer ofVectors(const std::vector<float> &Flat, unsigned Width);
  /// An uninitialized buffer of \p Count zero floats.
  static Buffer zeros(size_t Count);
  /// A buffer of \p Count copies of an arbitrary value.
  static Buffer filled(size_t Count, const Value &V);

  std::vector<float> toFloats() const;
  std::vector<int> toInts() const;
  /// Flattens scalar, vector and tuple elements into a single float list.
  std::vector<float> toFlatFloats() const;
  size_t size() const { return Mem->size(); }
  Value &at(size_t I) { return (*Mem)[I]; }

  /// Accepts the partial contents of a cancelled launch as-is. Also
  /// resets the MemGuard init bitmap: the poisoned run's partial writes
  /// must not count as "initialized" when the buffer is rebound into a
  /// later launch, or a downstream stage reading the never-rewritten
  /// elements would pass the uninitialized-read guard.
  void clearPoison();
};

/// Wraps element storage in a MemoryPtr whose lifetime is charged against
/// the host-side memory statistics below. All Buffer factories route
/// through this, so hostBytesLive/hostBytesHighWater track every live
/// host buffer (including the temporaries a launch allocates and the
/// native backend's marshalling buffers).
MemoryPtr trackedMemory(std::vector<Value> Elems);

/// Bytes of simulated Value storage currently held by live host buffers.
uint64_t hostBytesLive();

/// High-water mark of hostBytesLive since process start (or the last
/// resetHostBytesHighWater call). This is the number a finer
/// --max-memory audit pins: peak concurrent host footprint rather than a
/// count of allocation sites.
uint64_t hostBytesHighWater();

/// Resets the high-water mark to the current live byte count.
void resetHostBytesHighWater();

/// RAII charge against the host memory statistics for storage that does
/// not live in a MemoryPtr — the native backend's marshalled launch
/// buffers. Charged on construction, released on destruction, so the
/// high-water mark covers the native path's peak footprint too.
class HostBytesCharge {
public:
  HostBytesCharge() = default;
  explicit HostBytesCharge(uint64_t Bytes);
  ~HostBytesCharge();
  HostBytesCharge(const HostBytesCharge &) = delete;
  HostBytesCharge &operator=(const HostBytesCharge &) = delete;
  HostBytesCharge(HostBytesCharge &&O) noexcept : Bytes(O.Bytes) {
    O.Bytes = 0;
  }
  HostBytesCharge &operator=(HostBytesCharge &&O) noexcept;

private:
  uint64_t Bytes = 0;
};

//===----------------------------------------------------------------------===//
// Cost model
//===----------------------------------------------------------------------===//

/// Weighted operation counts standing in for kernel runtime. The weights
/// capture the effects Figure 8's ablation depends on: global memory is
/// far more expensive than local, which is more expensive than registers;
/// integer division/modulo in index arithmetic is far more expensive than
/// add/mul; barriers and loop bookkeeping have real costs.
/// Weights applied to operation counts; the defaults approximate the
/// relative costs on the paper's GPUs (global memory two orders of
/// magnitude above registers, integer division an order of magnitude
/// above add/mul). bench/ablation_design sweeps them.
struct CostWeights {
  double Global = 100.0;
  double Local = 8.0;
  double Private = 1.0;
  double Arith = 1.0;
  double DivMod = 16.0;
  double Math = 8.0;
  double Call = 2.0;
  double Barrier = 15.0;
  double LoopIter = 2.0;
};

struct CostReport {
  uint64_t GlobalAccesses = 0;
  uint64_t LocalAccesses = 0;
  uint64_t PrivateAccesses = 0;
  uint64_t ArithOps = 0;   // adds/muls, comparisons, float arithmetic
  uint64_t DivModOps = 0;  // integer / and % in index expressions
  uint64_t MathCalls = 0;  // sqrt, sin, cos, ...
  uint64_t Calls = 0;      // user function invocations
  uint64_t Barriers = 0;   // per work-item barrier waits
  uint64_t LoopIters = 0;  // loop iterations (branch overhead)

  double cost(const CostWeights &W = CostWeights()) const {
    return W.Global * static_cast<double>(GlobalAccesses) +
           W.Local * static_cast<double>(LocalAccesses) +
           W.Private * static_cast<double>(PrivateAccesses) +
           W.Arith * static_cast<double>(ArithOps) +
           W.DivMod * static_cast<double>(DivModOps) +
           W.Math * static_cast<double>(MathCalls) +
           W.Call * static_cast<double>(Calls) +
           W.Barrier * static_cast<double>(Barriers) +
           W.LoopIter * static_cast<double>(LoopIters);
  }

  CostReport &operator+=(const CostReport &O);
};

//===----------------------------------------------------------------------===//
// Launch
//===----------------------------------------------------------------------===//

/// Resource bounds for one launch. Every bound defaults to "unlimited";
/// bounds left unset fall back to the LIFT_MAX_STEPS / LIFT_TIMEOUT_MS /
/// LIFT_MAX_MEMORY environment variables, so a whole test tier can be
/// bounded without code changes. Exceeding a bound cooperatively cancels
/// all workers and raises E0510 (steps) / E0511 (deadline) / E0512
/// (memory); the launch's buffers are poisoned. See docs/RELIABILITY.md.
struct ExecLimits {
  /// Interpreter step budget for the whole launch, summed across all
  /// work-items and workers (statements executed + loop iterations).
  /// 0 = unlimited.
  uint64_t MaxSteps = 0;
  /// Wall-clock deadline in milliseconds, measured from launch setup.
  /// 0 = unlimited.
  int64_t TimeoutMs = 0;
  /// Cap on device allocations (temp buffers plus local/private arrays),
  /// in bytes of simulated Value storage. 0 = unlimited.
  uint64_t MaxMemoryBytes = 0;
  /// Cap on retained race/guard findings per launch (detection keeps
  /// running past it; reports are marked truncated).
  unsigned MaxFindings = 64;

  /// Cooperative host-side cancellation token (not owned; must outlive
  /// the launch). When non-null, workers poll it at every step-chunk
  /// checkpoint and a set flag cancels the launch with E0516, poisoning
  /// its buffers like any other mid-flight cancellation. The service
  /// layer points this at the per-request token so a disconnected client
  /// or a draining daemon stops in-flight work. null = never cancelled.
  const std::atomic<bool> *Cancel = nullptr;

  bool anyBound() const {
    return MaxSteps != 0 || TimeoutMs != 0 || MaxMemoryBytes != 0 ||
           Cancel != nullptr;
  }

  /// \p L with every unset bound replaced by its environment default.
  static ExecLimits withEnvDefaults(ExecLimits L);
};

struct LaunchConfig {
  std::array<int64_t, 3> Global = {1, 1, 1};
  std::array<int64_t, 3> Local = {1, 1, 1};

  /// Record per-interval access sets and check for data races and barrier
  /// divergence while executing (see RaceDetector.h).
  bool CheckRaces = false;
  /// Permute work-item execution order within each barrier interval with a
  /// seeded, reproducible schedule. A legal OpenCL schedule — clean kernels
  /// produce identical results; order-dependent (racy) kernels do not.
  bool PerturbSchedule = false;
  uint64_t ScheduleSeed = 1;

  /// Bounds-check every buffer and array element access against the
  /// allocated extent and flag reads of never-written elements (see
  /// MemGuard.h).
  bool CheckMemory = false;

  /// Worker threads executing work-groups concurrently. 0 = auto (the
  /// LIFT_THREADS environment variable, else hardware concurrency); 1 =
  /// serial execution with the historical in-order group loop. Any value
  /// yields identical buffers, cost reports and findings.
  int Threads = 0;

  /// Execution-resource bounds (step budget, deadline, allocation cap).
  ExecLimits Limits;

  static LaunchConfig fromOptions(const codegen::CompilerOptions &O) {
    LaunchConfig C;
    C.Global = O.GlobalSize;
    C.Local = O.LocalSize;
    C.CheckRaces = O.CheckRaces;
    C.PerturbSchedule = O.PerturbSchedule;
    C.ScheduleSeed = O.ScheduleSeed;
    C.CheckMemory = O.CheckMemory;
    C.Threads = O.Threads;
    C.Limits.MaxSteps = O.MaxSteps;
    C.Limits.TimeoutMs = O.TimeoutMs;
    C.Limits.MaxMemoryBytes = O.MaxMemoryBytes;
    return C;
  }
};

/// Executes a compiled kernel. \p Buffers binds, in order, every buffer
/// parameter the *program* declared (inputs then output); temporary global
/// buffers the compiler appended are allocated automatically. \p Sizes
/// binds the integer size parameters by name (e.g. {"N", 1024}).
CostReport launch(const codegen::CompiledKernel &K,
                  const std::vector<Buffer *> &Buffers,
                  const std::map<std::string, int64_t> &Sizes,
                  const LaunchConfig &Cfg);

/// As above, but when \p Cfg.CheckRaces is set the detector's findings are
/// returned in \p Report instead of aborting the run. The plain overload
/// aborts with the report summary if checking is enabled and a defect is
/// found.
CostReport launch(const codegen::CompiledKernel &K,
                  const std::vector<Buffer *> &Buffers,
                  const std::map<std::string, int64_t> &Sizes,
                  const LaunchConfig &Cfg, RaceReport &Report);

/// As above with guarded-memory execution: when \p Cfg.CheckMemory is set
/// the memory findings are returned in \p Guards instead of aborting.
CostReport launch(const codegen::CompiledKernel &K,
                  const std::vector<Buffer *> &Buffers,
                  const std::map<std::string, int64_t> &Sizes,
                  const LaunchConfig &Cfg, RaceReport &Races,
                  GuardReport &Guards);

/// Everything a checked launch produces.
struct LaunchResult {
  CostReport Cost;
  RaceReport Races;
  GuardReport Guards;

  /// Interpreter steps consumed by this launch when a step budget was
  /// active (Cfg.Limits.MaxSteps != 0), else 0. The graph executor uses
  /// this to charge successive stages against one graph-wide budget.
  uint64_t StepsUsed = 0;

  bool clean() const { return Races.clean() && Guards.clean(); }
};

/// Executes a compiled kernel, recording structured diagnostics into
/// \p Engine instead of aborting: launch misuse (missing arguments,
/// non-uniform barriers, unsupported operations) returns failure; race
/// and guarded-memory findings are recorded as error diagnostics and
/// returned in the result. Never aborts on bad input.
Expected<LaunchResult> launchChecked(const codegen::CompiledKernel &K,
                                     const std::vector<Buffer *> &Buffers,
                                     const std::map<std::string, int64_t> &Sizes,
                                     const LaunchConfig &Cfg,
                                     DiagnosticEngine &Engine);

/// Wraps a hand-written, parsed OpenCL module (see cparse::parseModule) so
/// it can be launched like a compiled kernel: pointer parameters bind to
/// the caller's buffers in order, scalar parameters bind via Sizes by
/// name. Used for the paper's reference implementations.
codegen::CompiledKernel wrapModule(c::CModule M);

} // namespace ocl
} // namespace lift

#endif // LIFT_OCL_RUNTIME_H
