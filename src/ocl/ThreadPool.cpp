//===- ThreadPool.cpp - Persistent worker pool --------------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ocl/ThreadPool.h"

#include "ocl/FaultInject.h"
#include "support/Retry.h"

#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <system_error>
#include <thread>
#include <vector>

using namespace lift;
using namespace lift::ocl;

unsigned ocl::resolveThreadCount(int Requested) {
  if (Requested > 0)
    return static_cast<unsigned>(Requested);
  if (const char *Env = std::getenv("LIFT_THREADS")) {
    long V = std::strtol(Env, nullptr, 10);
    if (V > 0)
      return static_cast<unsigned>(V);
  }
  unsigned H = std::thread::hardware_concurrency();
  return H != 0 ? H : 1u;
}

namespace {

/// Parked worker threads woken per dispatch generation. Workers never
/// terminate (the pool lives for the process); they are detached so
/// process exit does not block on the park loop.
class PoolImpl {
  std::mutex M;
  std::condition_variable WakeCV;  // signals a new generation to workers
  std::condition_variable DoneCV;  // signals completion to the dispatcher
  std::mutex RunM;                 // serializes run() callers

  const std::function<void(unsigned)> *Job = nullptr;
  uint64_t Generation = 0;
  unsigned JobWorkers = 0; // worker indices 1..JobWorkers-1 participate
  unsigned Pending = 0;    // pool threads still inside the current job
  unsigned Spawned = 0;    // pool threads created so far

  void workerLoop(unsigned Index) {
    uint64_t SeenGeneration = 0;
    while (true) {
      const std::function<void(unsigned)> *MyJob = nullptr;
      {
        std::unique_lock<std::mutex> L(M);
        WakeCV.wait(L, [&] {
          return Generation != SeenGeneration && Index < JobWorkers;
        });
        SeenGeneration = Generation;
        MyJob = Job;
      }
      (*MyJob)(Index);
      {
        std::lock_guard<std::mutex> L(M);
        if (--Pending == 0)
          DoneCV.notify_all();
      }
    }
  }

  bool ensureSpawned(unsigned Needed) {
    // Called with M held. Worker index 0 is the dispatcher itself. Threads
    // spawned before a failure stay parked (no job was published for them)
    // and are reused by the next dispatch.
    while (Spawned < Needed) {
      unsigned Index = Spawned + 1;
      try {
        std::thread([this, Index] { workerLoop(Index); }).detach();
      } catch (const std::system_error &) {
        return false;
      }
      Spawned = Index;
    }
    return true;
  }

  /// Waits for all pool workers of the current generation to leave the job
  /// before the job object (a pointer into the dispatcher's frame) can go
  /// out of scope.
  void awaitGeneration() {
    std::unique_lock<std::mutex> L(M);
    DoneCV.wait(L, [&] { return Pending == 0; });
    Job = nullptr;
    JobWorkers = 0;
  }

public:
  bool tryRun(unsigned Workers, const std::function<void(unsigned)> &Fn) {
    if (Workers <= 1) {
      Fn(0);
      return true;
    }
    std::lock_guard<std::mutex> RunLock(RunM);
    // Pool bring-up (thread creation, or an injected PoolStart fault) is
    // transient: retry it under the deterministic backoff policy before
    // giving up. Fn is never invoked on a failed attempt; a false return
    // still means "degrade to serial" for the caller.
    {
      retry::Policy P = retry::Policy::fromEnv();
      retry::Backoff B(P);
      unsigned Attempts = P.MaxAttempts ? P.MaxAttempts : 1;
      bool Up = false;
      for (unsigned A = 1; A <= Attempts; ++A) {
        bool Tripped = fault::shouldFail(fault::Site::PoolStart);
        if (!Tripped) {
          std::lock_guard<std::mutex> L(M);
          Tripped = !ensureSpawned(Workers - 1);
        }
        if (!Tripped) {
          Up = true;
          break;
        }
        if (A < Attempts)
          retry::sleepFor(B.nextDelayUs());
      }
      if (!Up)
        return false;
    }
    {
      std::lock_guard<std::mutex> L(M);
      Job = &Fn;
      JobWorkers = Workers;
      Pending = Workers - 1;
      ++Generation;
      WakeCV.notify_all();
    }
    // The dispatcher participates as worker 0. If its share throws, the
    // generation is already published, so the join below must still happen
    // — skipping it would leave Pending counted (a lost wakeup for the
    // next dispatch) and workers running a job object about to be
    // destroyed.
    try {
      Fn(0);
    } catch (...) {
      awaitGeneration();
      throw;
    }
    awaitGeneration();
    return true;
  }
};

} // namespace

// Intentionally leaked: parked workers wait on the pool's condition
// variable for the life of the process, and destroying it during static
// destruction would block process exit (pthread_cond_destroy waits for
// the waiters, which never leave).
static PoolImpl &poolImpl() {
  static PoolImpl &Impl = *new PoolImpl;
  return Impl;
}

ThreadPool &ThreadPool::global() {
  static ThreadPool P;
  return P;
}

bool ThreadPool::tryRun(unsigned Workers,
                        const std::function<void(unsigned)> &Fn) {
  return poolImpl().tryRun(Workers, Fn);
}

void ThreadPool::run(unsigned Workers,
                     const std::function<void(unsigned)> &Fn) {
  if (!tryRun(Workers, Fn))
    Fn(0);
}
