//===- ThreadPool.cpp - Persistent worker pool --------------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ocl/ThreadPool.h"

#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

using namespace lift;
using namespace lift::ocl;

unsigned ocl::resolveThreadCount(int Requested) {
  if (Requested > 0)
    return static_cast<unsigned>(Requested);
  if (const char *Env = std::getenv("LIFT_THREADS")) {
    long V = std::strtol(Env, nullptr, 10);
    if (V > 0)
      return static_cast<unsigned>(V);
  }
  unsigned H = std::thread::hardware_concurrency();
  return H != 0 ? H : 1u;
}

namespace {

/// Parked worker threads woken per dispatch generation. Workers never
/// terminate (the pool lives for the process); they are detached so
/// process exit does not block on the park loop.
class PoolImpl {
  std::mutex M;
  std::condition_variable WakeCV;  // signals a new generation to workers
  std::condition_variable DoneCV;  // signals completion to the dispatcher
  std::mutex RunM;                 // serializes run() callers

  const std::function<void(unsigned)> *Job = nullptr;
  uint64_t Generation = 0;
  unsigned JobWorkers = 0; // worker indices 1..JobWorkers-1 participate
  unsigned Pending = 0;    // pool threads still inside the current job
  unsigned Spawned = 0;    // pool threads created so far

  void workerLoop(unsigned Index) {
    uint64_t SeenGeneration = 0;
    while (true) {
      const std::function<void(unsigned)> *MyJob = nullptr;
      {
        std::unique_lock<std::mutex> L(M);
        WakeCV.wait(L, [&] {
          return Generation != SeenGeneration && Index < JobWorkers;
        });
        SeenGeneration = Generation;
        MyJob = Job;
      }
      (*MyJob)(Index);
      {
        std::lock_guard<std::mutex> L(M);
        if (--Pending == 0)
          DoneCV.notify_all();
      }
    }
  }

  void ensureSpawned(unsigned Needed) {
    // Called with M held. Worker index 0 is the dispatcher itself.
    while (Spawned < Needed) {
      unsigned Index = ++Spawned;
      std::thread([this, Index] { workerLoop(Index); }).detach();
    }
  }

public:
  void run(unsigned Workers, const std::function<void(unsigned)> &Fn) {
    if (Workers <= 1) {
      Fn(0);
      return;
    }
    std::lock_guard<std::mutex> RunLock(RunM);
    {
      std::lock_guard<std::mutex> L(M);
      ensureSpawned(Workers - 1);
      Job = &Fn;
      JobWorkers = Workers;
      Pending = Workers - 1;
      ++Generation;
      WakeCV.notify_all();
    }
    Fn(0);
    std::unique_lock<std::mutex> L(M);
    DoneCV.wait(L, [&] { return Pending == 0; });
    Job = nullptr;
  }
};

} // namespace

ThreadPool &ThreadPool::global() {
  static ThreadPool P;
  return P;
}

void ThreadPool::run(unsigned Workers,
                     const std::function<void(unsigned)> &Fn) {
  // Intentionally leaked: parked workers wait on the pool's condition
  // variable for the life of the process, and destroying it during static
  // destruction would block process exit (pthread_cond_destroy waits for
  // the waiters, which never leave).
  static PoolImpl &Impl = *new PoolImpl;
  Impl.run(Workers, Fn);
}
