//===- ThreadPool.h - Persistent worker pool --------------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent worker pool for the simulated OpenCL runtime. Work-groups
/// are independent by construction (they share nothing but global memory),
/// so ocl::launch farms the group loop out to pool workers. The pool is
/// process-wide and lazily grown: threads are created on first use and
/// parked between launches, so back-to-back launches (the benchmark
/// harness, multi-stage programs) pay thread start-up once.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_OCL_THREADPOOL_H
#define LIFT_OCL_THREADPOOL_H

#include <functional>

namespace lift {
namespace ocl {

/// Resolves a requested execution width to an actual worker count:
/// \p Requested > 0 wins; otherwise the LIFT_THREADS environment variable;
/// otherwise std::thread::hardware_concurrency() (at least 1).
unsigned resolveThreadCount(int Requested);

/// The process-wide pool. tryRun() invokes \p Fn(WorkerIndex) once per
/// worker index in [0, Workers): index 0 on the calling thread, the rest
/// on pool threads, and returns when all invocations finished. Dispatch is
/// serialized: concurrent callers take turns.
///
/// \p Fn should stash per-task errors and let the caller rethrow after the
/// join; if Fn(0) does throw on the dispatcher thread, the pool still
/// waits for the remaining workers to drain the generation before
/// rethrowing, so the job object never dangles and no wakeup is lost.
///
/// tryRun() returns false — without having invoked \p Fn at all — when the
/// pool cannot be brought up (worker thread creation failed, or an
/// injected fault::Site::PoolStart fault): the caller is expected to
/// degrade to serial execution. run() keeps the old always-executes
/// contract by falling back to Fn(0) itself.
class ThreadPool {
public:
  static ThreadPool &global();

  void run(unsigned Workers, const std::function<void(unsigned)> &Fn);
  bool tryRun(unsigned Workers, const std::function<void(unsigned)> &Fn);

private:
  ThreadPool() = default;
};

} // namespace ocl
} // namespace lift

#endif // LIFT_OCL_THREADPOOL_H
