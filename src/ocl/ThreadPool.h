//===- ThreadPool.h - Persistent worker pool --------------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent worker pool for the simulated OpenCL runtime. Work-groups
/// are independent by construction (they share nothing but global memory),
/// so ocl::launch farms the group loop out to pool workers. The pool is
/// process-wide and lazily grown: threads are created on first use and
/// parked between launches, so back-to-back launches (the benchmark
/// harness, multi-stage programs) pay thread start-up once.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_OCL_THREADPOOL_H
#define LIFT_OCL_THREADPOOL_H

#include <functional>

namespace lift {
namespace ocl {

/// Resolves a requested execution width to an actual worker count:
/// \p Requested > 0 wins; otherwise the LIFT_THREADS environment variable;
/// otherwise std::thread::hardware_concurrency() (at least 1).
unsigned resolveThreadCount(int Requested);

/// The process-wide pool. run() invokes \p Fn(WorkerIndex) once per worker
/// index in [0, Workers): index 0 on the calling thread, the rest on pool
/// threads, and returns when all invocations finished. \p Fn must not
/// throw (callers stash per-task errors and rethrow after the join).
/// run() is serialized: concurrent callers take turns.
class ThreadPool {
public:
  static ThreadPool &global();

  void run(unsigned Workers, const std::function<void(unsigned)> &Fn);

private:
  ThreadPool() = default;
};

} // namespace ocl
} // namespace lift

#endif // LIFT_OCL_THREADPOOL_H
