//===- AddressSpaceInference.cpp - Algorithm 1 of the paper -----------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "passes/AddressSpaceInference.h"

#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/Error.h"

using namespace lift;
using namespace lift::ir;

namespace {

/// Implements the mutually recursive inferASExpr / inferASFunCall of
/// Algorithm 1. The writeTo argument is the address space requested by an
/// enclosing toPrivate/toLocal/toGlobal wrapper (Undef when unconstrained).
class AddressSpaceInferencer {
public:
  void run(const LambdaPtr &Program) {
    for (const ParamPtr &P : Program->getParams()) {
      // Scalars are passed by value (private); arrays are global buffers.
      P->AS = isa<ArrayType>(P->Ty.get()) ? AddressSpace::Global
                                          : AddressSpace::Private;
    }
    inferExpr(Program->getBody(), AddressSpace::Undef);
  }

private:
  void inferExpr(const ExprPtr &E, AddressSpace WriteTo) {
    switch (E->getClass()) {
    case ExprClass::Literal:
      E->AS = AddressSpace::Private;
      return;
    case ExprClass::Param:
      if (E->AS == AddressSpace::Undef)
        throwDiag(DiagCode::VerifyUnboundParam, DiagLocation(),
                  "address space inference: parameter '" +
                      cast<Param>(E.get())->getName() +
                      "' visited before being bound");
      return;
    case ExprClass::FunCall: {
      const auto *C = cast<FunCall>(E.get());
      // Arguments inherit the requested write space (Algorithm 1, line
      // 10): a toLocal wrapper redirects the writes of the whole nested
      // data flow unless an inner wrapper overrides it.
      for (const ExprPtr &Arg : C->getArgs())
        inferExpr(Arg, WriteTo);
      std::vector<AddressSpace> ArgAS;
      for (const ExprPtr &Arg : C->getArgs())
        ArgAS.push_back(Arg->AS);
      E->AS = applyFun(C->getFun(), ArgAS, WriteTo);
      return;
    }
    }
    lift_unreachable("unhandled expression class");
  }

  /// Returns the address space of the value produced by applying \p F.
  AddressSpace applyFun(const FunDeclPtr &F, std::vector<AddressSpace> Args,
                        AddressSpace WriteTo) {
    switch (F->getKind()) {
    case FunKind::Lambda: {
      const auto *L = cast<Lambda>(F.get());
      for (size_t I = 0, E = Args.size(); I != E; ++I)
        L->getParams()[I]->AS = Args[I];
      inferExpr(L->getBody(), WriteTo);
      return L->getBody()->AS;
    }

    case FunKind::UserFun:
      if (WriteTo != AddressSpace::Undef)
        return WriteTo;
      return commonSpace(Args);

    case FunKind::Map:
    case FunKind::MapSeq:
    case FunKind::MapGlb:
    case FunKind::MapWrg:
    case FunKind::MapLcl:
    case FunKind::MapVec:
      return applyFun(cast<AbstractMap>(F.get())->getF(), Args, WriteTo);

    case FunKind::ReduceSeq: {
      // Reduce writes into the memory of the initializer expression and,
      // therefore, has the same address space (Algorithm 1, line 23).
      const auto *R = cast<ReduceSeq>(F.get());
      AddressSpace InitAS = Args[0];
      applyFun(R->getF(), {InitAS, Args[1]}, InitAS);
      return InitAS;
    }

    case FunKind::Id:
      return Args[0];

    case FunKind::Iterate:
      return applyFun(cast<Iterate>(F.get())->getF(), Args, WriteTo);

    case FunKind::ToGlobal:
    case FunKind::ToLocal:
    case FunKind::ToPrivate: {
      const auto *W = cast<AddressSpaceWrapper>(F.get());
      return applyFun(W->getF(), std::move(Args), W->getTargetSpace());
    }

    case FunKind::GatherIndices:
      return Args[1];

    case FunKind::Zip:
    case FunKind::Unzip:
    case FunKind::Get:
    case FunKind::Split:
    case FunKind::Join:
    case FunKind::Gather:
    case FunKind::Scatter:
    case FunKind::Slide:
    case FunKind::Transpose:
    case FunKind::AsVector:
    case FunKind::AsScalar:
      // Data layout patterns do not write; the value keeps the address
      // space of the (first) argument.
      return Args[0];
    }
    lift_unreachable("unhandled function kind");
  }

  static AddressSpace commonSpace(const std::vector<AddressSpace> &Args) {
    // A user function writes into the common address space of its
    // arguments, or global memory by default on a mix.
    AddressSpace Common = AddressSpace::Undef;
    for (AddressSpace A : Args) {
      if (Common == AddressSpace::Undef)
        Common = A;
      else if (Common != A)
        return AddressSpace::Global;
    }
    return Common == AddressSpace::Undef ? AddressSpace::Global : Common;
  }
};

} // namespace

void passes::inferAddressSpaces(const LambdaPtr &Program) {
  AddressSpaceInferencer().run(Program);
}
