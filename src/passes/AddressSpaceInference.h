//===- AddressSpaceInference.h - Algorithm 1 of the paper -------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive address space inference (Algorithm 1, section 5.2): scalar
/// program parameters live in private memory, arrays in global memory;
/// toPrivate/toLocal/toGlobal wrappers redirect the writes of their nested
/// function; reductions write into the address space of their initializer;
/// user functions write to the requested space or infer it from their
/// arguments.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_PASSES_ADDRESSSPACEINFERENCE_H
#define LIFT_PASSES_ADDRESSSPACEINFERENCE_H

#include "ir/IR.h"

namespace lift {
namespace passes {

/// Annotates every expression in the program (including lambda parameters
/// of nested functions) with its address space. Requires types to be
/// inferred first.
void inferAddressSpaces(const ir::LambdaPtr &Program);

} // namespace passes
} // namespace lift

#endif // LIFT_PASSES_ADDRESSSPACEINFERENCE_H
