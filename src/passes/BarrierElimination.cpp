//===- BarrierElimination.cpp - Synchronization minimization ----------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "passes/BarrierElimination.h"

#include "support/Casting.h"
#include "support/Error.h"

using namespace lift;
using namespace lift::ir;

namespace {

/// A data-flow event relevant to the barrier analysis: either a data
/// layout pattern that can re-share data between threads, or a mapLcl
/// whose barrier is under consideration.
struct Event {
  enum Kind { Layout, Lcl } K;
  MapLcl *M = nullptr; // for Lcl
};

class BarrierAnalysis {
public:
  unsigned Eliminated = 0;

  void run(const LambdaPtr &Program) {
    std::vector<Event> Events = analyzeExpr(Program->getBody());
    scan(Events);
  }

private:
  static bool isLayoutPattern(FunKind K) {
    switch (K) {
    case FunKind::Split:
    case FunKind::Join:
    case FunKind::Gather:
    case FunKind::Scatter:
    case FunKind::Zip:
    case FunKind::Unzip:
    case FunKind::Slide:
    case FunKind::Transpose:
    case FunKind::GatherIndices:
    case FunKind::AsVector:
    case FunKind::AsScalar:
      return true;
    default:
      return false;
    }
  }

  /// Returns the events of the data flow producing \p E, in order.
  std::vector<Event> analyzeExpr(const ExprPtr &E) {
    const auto *C = dyn_cast<FunCall>(E.get());
    if (!C)
      return {};

    std::vector<Event> Events;
    const FunDeclPtr &F = C->getFun();

    if (F->getKind() == FunKind::Zip) {
      // Branches of a zip execute independently: only the last branch that
      // ends in a mapLcl needs to keep its barrier (section 5.4).
      std::vector<std::vector<Event>> Branches;
      for (const ExprPtr &Arg : C->getArgs())
        Branches.push_back(analyzeExpr(Arg));
      MapLcl *LastTrailing = nullptr;
      for (auto &Branch : Branches)
        if (!Branch.empty() && Branch.back().K == Event::Lcl)
          LastTrailing = Branch.back().M;
      for (auto &Branch : Branches) {
        if (!Branch.empty() && Branch.back().K == Event::Lcl &&
            Branch.back().M != LastTrailing && Branch.back().M->EmitBarrier) {
          Branch.back().M->EmitBarrier = false;
          ++Eliminated;
        }
        Events.insert(Events.end(), Branch.begin(), Branch.end());
      }
      Events.push_back({Event::Layout, nullptr});
      return Events;
    }

    for (const ExprPtr &Arg : C->getArgs()) {
      std::vector<Event> ArgEvents = analyzeExpr(Arg);
      Events.insert(Events.end(), ArgEvents.begin(), ArgEvents.end());
    }
    appendFunEvents(F, Events);
    return Events;
  }

  void appendFunEvents(const FunDeclPtr &F, std::vector<Event> &Events) {
    if (isLayoutPattern(F->getKind())) {
      Events.push_back({Event::Layout, nullptr});
      return;
    }
    switch (F->getKind()) {
    case FunKind::Lambda:
      // The lambda body's own data flow.
      for (Event Ev : analyzeExpr(cast<Lambda>(F.get())->getBody()))
        Events.push_back(Ev);
      return;
    case FunKind::Map:
    case FunKind::MapSeq:
    case FunKind::MapGlb:
    case FunKind::MapWrg:
    case FunKind::MapVec:
      appendFunEvents(cast<AbstractMap>(F.get())->getF(), Events);
      return;
    case FunKind::MapLcl: {
      auto *M = const_cast<MapLcl *>(cast<MapLcl>(F.get()));
      appendFunEvents(M->getF(), Events);
      Events.push_back({Event::Lcl, M});
      return;
    }
    case FunKind::ReduceSeq:
      appendFunEvents(cast<ReduceSeq>(F.get())->getF(), Events);
      return;
    case FunKind::Iterate:
      // Iteration re-injects the output as the next input: conservatively
      // treat the loop back-edge as data sharing on both sides.
      Events.push_back({Event::Layout, nullptr});
      appendFunEvents(cast<Iterate>(F.get())->getF(), Events);
      Events.push_back({Event::Layout, nullptr});
      return;
    case FunKind::ToGlobal:
    case FunKind::ToLocal:
    case FunKind::ToPrivate:
      appendFunEvents(cast<AddressSpaceWrapper>(F.get())->getF(), Events);
      return;
    case FunKind::UserFun:
    case FunKind::Id:
      return;
    default:
      return;
    }
  }

  /// Clears the barrier of every mapLcl that reaches the next mapLcl
  /// without an intervening layout pattern.
  void scan(const std::vector<Event> &Events) {
    for (size_t I = 0, E = Events.size(); I != E; ++I) {
      if (Events[I].K != Event::Lcl)
        continue;
      for (size_t J = I + 1; J != E; ++J) {
        if (Events[J].K == Event::Layout)
          break;
        if (Events[J].K == Event::Lcl) {
          if (Events[I].M->EmitBarrier) {
            Events[I].M->EmitBarrier = false;
            ++Eliminated;
          }
          break;
        }
      }
    }
  }
};

} // namespace

unsigned passes::eliminateBarriers(const LambdaPtr &Program) {
  BarrierAnalysis A;
  A.run(Program);
  return A.Eliminated;
}
