//===- BarrierElimination.h - Synchronization minimization ------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Barrier elimination (section 5.4): a barrier is emitted after every
/// mapLcl by default ("safety first") and removed only when the analysis
/// can show no inter-thread sharing follows. Because the Lift IL only
/// shares data through the data layout patterns (split, join, gather,
/// scatter, slide, transpose, zip, ...), a mapLcl whose results reach the
/// next mapLcl without any such pattern in between does not need its
/// barrier. Additionally, two mapLcl in different branches of a zip can
/// execute independently, so one of the two barriers is eliminated.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_PASSES_BARRIERELIMINATION_H
#define LIFT_PASSES_BARRIERELIMINATION_H

#include "ir/IR.h"

namespace lift {
namespace passes {

/// Clears the EmitBarrier flag on mapLcl patterns proven not to need a
/// barrier. Returns the number of barriers eliminated.
unsigned eliminateBarriers(const ir::LambdaPtr &Program);

} // namespace passes
} // namespace lift

#endif // LIFT_PASSES_BARRIERELIMINATION_H
