//===- Verify.cpp - IR well-formedness verifier ---------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "passes/Verify.h"

#include "arith/Bounds.h"
#include "arith/Printer.h"
#include "ir/TypeInference.h"
#include "support/Casting.h"

#include <set>

using namespace lift;
using namespace lift::ir;

namespace {

/// Collects verifier findings; every check appends instead of throwing so
/// one pass reports as many violations as possible.
class Verifier {
public:
  Verifier(const LambdaPtr &Program, const std::string &Stage)
      : Program(Program), Stage(Stage) {}

  std::vector<Diagnostic> run() {
    if (!Program) {
      report(DiagCode::VerifyBadKernel, "program is null");
      return std::move(Findings);
    }
    // Decide which staged checks apply from the annotations present: the
    // verifier runs on freshly parsed programs (no types) as well as
    // mid-pipeline (typed, possibly address-space annotated).
    TypesPresent = Program->getBody() && Program->getBody()->Ty != nullptr;
    SpacesPresent = Program->getBody() &&
                    Program->getBody()->AS != AddressSpace::Undef;

    std::set<const Param *> Scope;
    for (const ParamPtr &P : Program->getParams()) {
      if (!P) {
        report(DiagCode::VerifyMalformed, "program has a null parameter");
        continue;
      }
      if (!Scope.insert(P.get()).second)
        report(DiagCode::VerifyMalformed,
               "program parameter '" + P->getName() +
                   "' is bound more than once");
      if (TypesPresent && !P->Ty)
        report(DiagCode::TypeUntyped,
               "program parameter '" + P->getName() + "' has no type");
      if (P->Ty)
        checkType(P->Ty, "parameter '" + P->getName() + "'");
    }

    Nesting Ctx;
    checkFun(Program, Scope, Ctx, /*IsProgram=*/true);
    checkReinference();
    return std::move(Findings);
  }

private:
  /// Parallel-nesting context for the address-space legality checks.
  /// The *Dims members are bitmasks of the OpenCL dimensions already
  /// distributed by an enclosing parallel map: re-distributing the same
  /// dimension (e.g. mapGlb0 inside mapGlb0) leaves elements uncomputed,
  /// so it is rejected even though distinct dimensions may legally nest.
  struct Nesting {
    bool InWrg = false;
    bool InLcl = false;
    bool InGlb = false;
    unsigned GlbDims = 0;
    unsigned WrgDims = 0;
    unsigned LclDims = 0;
  };

  static constexpr size_t MaxFindings = 64;

  void report(DiagCode Code, const std::string &Msg) {
    if (Findings.size() >= MaxFindings)
      return;
    DiagLocation Loc = Stage.empty() ? DiagLocation()
                                     : DiagLocation::inContext(Stage);
    Findings.push_back(Diagnostic{DiagSeverity::Error, Code, Loc,
                                  "verifier: " + Msg, {}});
  }

  void checkExpr(const ExprPtr &E, std::set<const Param *> &Scope,
                 const Nesting &Ctx) {
    if (!E) {
      report(DiagCode::VerifyMalformed, "null expression");
      return;
    }
    if (TypesPresent) {
      if (!E->Ty)
        report(DiagCode::VerifyTypeInconsistent,
               "expression has no inferred type");
      else
        checkType(E->Ty, "expression");
    }
    if (SpacesPresent && E->AS == AddressSpace::Undef)
      report(DiagCode::VerifyAddressSpace,
             "expression has no inferred address space");

    switch (E->getClass()) {
    case ExprClass::Literal:
      return;
    case ExprClass::Param: {
      const auto *P = cast<Param>(E.get());
      if (!Scope.count(P))
        report(DiagCode::VerifyUnboundParam,
               "parameter '" + P->getName() +
                   "' is referenced outside the lambda that binds it");
      return;
    }
    case ExprClass::FunCall: {
      const auto *C = cast<FunCall>(E.get());
      for (const ExprPtr &A : C->getArgs())
        checkExpr(A, Scope, Ctx);
      if (!C->getFun()) {
        report(DiagCode::VerifyMalformed, "call of a null function");
        return;
      }
      if (C->getFun()->arity() != C->getArgs().size())
        report(DiagCode::VerifyMalformed,
               std::string(funKindName(C->getFun()->getKind())) +
                   " expects " + std::to_string(C->getFun()->arity()) +
                   " argument(s), called with " +
                   std::to_string(C->getArgs().size()));
      checkFun(C->getFun(), Scope, Ctx, /*IsProgram=*/false);
      return;
    }
    }
    report(DiagCode::VerifyMalformed, "unknown expression class");
  }

  void checkFun(const FunDeclPtr &F, std::set<const Param *> &Scope,
                const Nesting &Ctx, bool IsProgram) {
    if (!F) {
      report(DiagCode::VerifyMalformed, "null function declaration");
      return;
    }
    switch (F->getKind()) {
    case FunKind::Lambda: {
      const auto *L = cast<Lambda>(F.get());
      std::vector<const Param *> Added;
      for (const ParamPtr &P : L->getParams()) {
        if (!P) {
          report(DiagCode::VerifyMalformed, "lambda has a null parameter");
          continue;
        }
        if (Scope.insert(P.get()).second)
          Added.push_back(P.get());
        else if (!IsProgram)
          report(DiagCode::VerifyMalformed,
                 "parameter '" + P->getName() +
                     "' is bound by more than one lambda");
      }
      checkExpr(L->getBody(), Scope, Ctx);
      for (const Param *P : Added)
        Scope.erase(P);
      return;
    }

    case FunKind::UserFun:
      return;

    case FunKind::Map:
    case FunKind::MapSeq:
    case FunKind::MapVec:
      checkFun(cast<AbstractMap>(F.get())->getF(), Scope, Ctx, false);
      return;

    case FunKind::MapGlb: {
      const auto *M = cast<MapGlb>(F.get());
      if (Ctx.InWrg || Ctx.InLcl)
        report(DiagCode::VerifyAddressSpace,
               "mapGlb cannot nest inside mapWrg or mapLcl");
      if (Ctx.GlbDims & (1u << M->getDim()))
        report(DiagCode::VerifyAddressSpace,
               "mapGlb(" + std::to_string(M->getDim()) +
                   ") cannot nest inside a mapGlb over the same dimension");
      Nesting Inner = Ctx;
      Inner.InGlb = true;
      Inner.GlbDims |= 1u << M->getDim();
      checkFun(M->getF(), Scope, Inner, false);
      return;
    }

    case FunKind::MapWrg: {
      const auto *M = cast<MapWrg>(F.get());
      if (Ctx.InLcl || Ctx.InGlb)
        report(DiagCode::VerifyAddressSpace,
               "mapWrg cannot nest inside mapLcl or mapGlb");
      if (Ctx.WrgDims & (1u << M->getDim()))
        report(DiagCode::VerifyAddressSpace,
               "mapWrg(" + std::to_string(M->getDim()) +
                   ") cannot nest inside a mapWrg over the same dimension");
      Nesting Inner = Ctx;
      Inner.InWrg = true;
      Inner.WrgDims |= 1u << M->getDim();
      checkFun(M->getF(), Scope, Inner, false);
      return;
    }

    case FunKind::MapLcl: {
      const auto *M = cast<MapLcl>(F.get());
      if (!Ctx.InWrg)
        report(DiagCode::VerifyAddressSpace,
               "mapLcl requires an enclosing mapWrg");
      if (Ctx.LclDims & (1u << M->getDim()))
        report(DiagCode::VerifyAddressSpace,
               "mapLcl(" + std::to_string(M->getDim()) +
                   ") cannot nest inside a mapLcl over the same dimension");
      Nesting Inner = Ctx;
      Inner.InLcl = true;
      Inner.LclDims |= 1u << M->getDim();
      checkFun(M->getF(), Scope, Inner, false);
      return;
    }

    case FunKind::ReduceSeq:
      checkFun(cast<ReduceSeq>(F.get())->getF(), Scope, Ctx, false);
      return;

    case FunKind::Iterate: {
      const auto *I = cast<Iterate>(F.get());
      if (I->getCount() < 0)
        report(DiagCode::VerifyBadLength,
               "iterate count " + std::to_string(I->getCount()) +
                   " is negative");
      checkFun(I->getF(), Scope, Ctx, false);
      return;
    }

    case FunKind::Split: {
      const arith::Expr &Factor = cast<Split>(F.get())->getFactor();
      if (auto UB = arith::constUpperBound(Factor); UB && *UB <= 0)
        report(DiagCode::VerifyBadLength,
               "split factor " + arith::toString(Factor) +
                   " is not positive");
      return;
    }

    case FunKind::Slide: {
      const auto *S = cast<Slide>(F.get());
      if (auto UB = arith::constUpperBound(S->getStep()); UB && *UB <= 0)
        report(DiagCode::VerifyBadLength,
               "slide step " + arith::toString(S->getStep()) +
                   " is not positive");
      if (auto UB = arith::constUpperBound(S->getSize()); UB && *UB <= 0)
        report(DiagCode::VerifyBadLength,
               "slide window size " + arith::toString(S->getSize()) +
                   " is not positive");
      return;
    }

    case FunKind::AsVector:
      if (cast<AsVector>(F.get())->getWidth() == 0)
        report(DiagCode::VerifyBadLength, "asVector width is zero");
      return;

    case FunKind::ToLocal:
      if (!Ctx.InWrg)
        report(DiagCode::VerifyAddressSpace,
               "toLocal requires an enclosing mapWrg (local memory is "
               "per-work-group)");
      checkFun(cast<AddressSpaceWrapper>(F.get())->getF(), Scope, Ctx, false);
      return;

    case FunKind::ToGlobal:
    case FunKind::ToPrivate:
      checkFun(cast<AddressSpaceWrapper>(F.get())->getF(), Scope, Ctx, false);
      return;

    case FunKind::Id:
    case FunKind::Join:
    case FunKind::Gather:
    case FunKind::Scatter:
    case FunKind::Zip:
    case FunKind::Unzip:
    case FunKind::Get:
    case FunKind::Transpose:
    case FunKind::GatherIndices:
    case FunKind::AsScalar:
      return;
    }
    report(DiagCode::VerifyMalformed, "unknown function kind");
  }

  /// Array-length arithmetic sanity: flags lengths the range analysis can
  /// prove negative (a symbolic length with an unknown sign is fine — it
  /// only becomes a bug once instantiated, which the runtime guards).
  void checkType(const TypePtr &T, const std::string &What) {
    if (!T)
      return;
    if (const auto *A = dyn_cast<ArrayType>(T.get())) {
      if (A->getSize()) {
        if (auto UB = arith::constUpperBound(A->getSize()); UB && *UB < 0)
          report(DiagCode::VerifyBadLength,
                 What + " has a provably negative array length " +
                     arith::toString(A->getSize()));
      } else {
        report(DiagCode::VerifyBadLength, What + " has a null array length");
      }
      checkType(A->getElementType(), What);
      return;
    }
    if (const auto *Tu = dyn_cast<TupleType>(T.get()))
      for (const TypePtr &E : Tu->getElements())
        checkType(E, What);
  }

  /// Once the program is fully typed, re-running inference must succeed
  /// and reproduce the annotated program type; a mismatch means a pass
  /// rewrote the tree without keeping the types consistent.
  void checkReinference() {
    if (!TypesPresent || !Findings.empty())
      return;
    for (const ParamPtr &P : Program->getParams())
      if (!P || !P->Ty)
        return;
    TypePtr Annotated = Program->getBody()->Ty;
    try {
      TypePtr Recomputed = inferProgramTypes(Program);
      if (!typeEquals(Recomputed, Annotated))
        report(DiagCode::VerifyTypeInconsistent,
               "re-running type inference yields " +
                   typeToString(Recomputed) + " but the program is "
                   "annotated with " + typeToString(Annotated));
    } catch (const DiagnosticError &E) {
      report(DiagCode::VerifyTypeInconsistent,
             "re-running type inference fails: " + E.Diag.Message);
    }
  }

  const LambdaPtr &Program;
  const std::string &Stage;
  bool TypesPresent = false;
  bool SpacesPresent = false;
  std::vector<Diagnostic> Findings;
};

} // namespace

std::vector<Diagnostic> passes::verify(const LambdaPtr &Program,
                                       const std::string &Stage) {
  return Verifier(Program, Stage).run();
}

bool passes::verifyChecked(const LambdaPtr &Program, DiagnosticEngine &Engine,
                           const std::string &Stage) {
  std::vector<Diagnostic> Findings = verify(Program, Stage);
  for (const Diagnostic &D : Findings)
    if (!Engine.errorLimitReached())
      Engine.report(D);
  return Findings.empty();
}

void passes::verifyOrThrow(const LambdaPtr &Program,
                           const std::string &Stage) {
  std::vector<Diagnostic> Findings = verify(Program, Stage);
  if (!Findings.empty())
    throw DiagnosticError(Findings.front());
}
