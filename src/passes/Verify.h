//===- Verify.h - IR well-formedness verifier -------------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A verifier over Lift IR programs: checks the invariants the rest of the
/// pipeline relies on and reports violations as structured diagnostics
/// instead of crashing (or miscompiling) later. The checks are staged so
/// the verifier can run right after parsing (no analysis annotations yet)
/// as well as between pipeline stages under `liftc --verify-each`:
///
///  - structure: no null sub-expressions or sub-functions, call arity
///    matches the callee, parameters are referenced only inside the
///    lambda that binds them;
///  - types (once type inference has run): every expression is annotated,
///    and re-running inference reproduces the annotated program type;
///  - array lengths: no provably negative array length, split factors and
///    slide steps are provably positive, asVector widths are non-zero and
///    iterate counts non-negative;
///  - address spaces (Algorithm 1 legality): mapLcl and toLocal require an
///    enclosing mapWrg, mapGlb cannot nest inside mapWrg or mapLcl, and
///    mapWrg cannot nest inside mapLcl or mapGlb; once address space
///    inference has run, every expression must be annotated with a space.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_PASSES_VERIFY_H
#define LIFT_PASSES_VERIFY_H

#include "ir/IR.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace lift {
namespace passes {

/// Verifies \p Program and returns all violated invariants as diagnostics
/// (empty if the program is well-formed). \p Stage names the pipeline
/// point for the diagnostic location, e.g. "after type inference".
std::vector<Diagnostic> verify(const ir::LambdaPtr &Program,
                               const std::string &Stage = "");

/// Verifies \p Program and records the findings into \p Engine. Returns
/// true if the program is well-formed.
bool verifyChecked(const ir::LambdaPtr &Program, DiagnosticEngine &Engine,
                   const std::string &Stage = "");

/// Verifies \p Program and throws the first violation as a DiagnosticError
/// (for use inside the compilation pipeline under --verify-each).
void verifyOrThrow(const ir::LambdaPtr &Program,
                   const std::string &Stage = "");

} // namespace passes
} // namespace lift

#endif // LIFT_PASSES_VERIFY_H
