//===- Rules.cpp - Rewrite rules for the Lift IL ------------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "rewrite/Rules.h"

#include "ir/DSL.h"
#include "ir/Printer.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/Error.h"

using namespace lift;
using namespace lift::ir;
using namespace lift::rewrite;

namespace {

/// Matches FunCall(Kind, [single arg]) and returns the call.
const FunCall *matchUnaryCall(const ExprPtr &E, FunKind K) {
  const auto *C = dyn_cast<FunCall>(E.get());
  if (!C || C->getFun()->getKind() != K || C->getArgs().size() != 1)
    return nullptr;
  return C;
}

/// Sequentializes a direct FunDecl nest of high-level maps. map(map(f))
/// carries the inner map as an element *function*, not a call site, so the
/// expression walker driving applyOnce/applyEverywhere can never visit it;
/// the mapping rules lower the whole nest in one step instead of leaving
/// high-level maps behind for codegen to reject (E0401).
FunDeclPtr seqElementMaps(const FunDeclPtr &F) {
  if (const auto *M = dyn_cast<Map>(F.get()))
    return dsl::mapSeq(seqElementMaps(M->getF()));
  return F;
}

/// Rebuilds an expression with the subtree at \p Target replaced by
/// \p Replacement (pointer identity match — every occurrence), descending
/// into lambda bodies and nested map functions.
class Replacer {
  const Expr *Target;
  ExprPtr Replacement;

public:
  Replacer(const Expr *Target, ExprPtr Replacement)
      : Target(Target), Replacement(std::move(Replacement)) {}

  ExprPtr rebuildExpr(const ExprPtr &E) {
    if (E.get() == Target)
      return Replacement;
    const auto *C = dyn_cast<FunCall>(E.get());
    if (!C)
      return E;
    bool Changed = false;
    std::vector<ExprPtr> Args;
    for (const ExprPtr &A : C->getArgs()) {
      ExprPtr NA = rebuildExpr(A);
      Changed |= NA.get() != A.get();
      Args.push_back(std::move(NA));
    }
    FunDeclPtr NF = rebuildFun(C->getFun(), Changed);
    if (!Changed)
      return E;
    return std::make_shared<FunCall>(std::move(NF), std::move(Args));
  }

private:
  FunDeclPtr rebuildFun(const FunDeclPtr &F, bool &Changed) {
    switch (F->getKind()) {
    case FunKind::Lambda: {
      const auto *L = cast<Lambda>(F.get());
      ExprPtr NB = rebuildExpr(L->getBody());
      if (NB.get() == L->getBody().get())
        return F;
      Changed = true;
      return std::make_shared<Lambda>(L->getParams(), std::move(NB));
    }
    case FunKind::Map: {
      FunDeclPtr NG = rebuildFun(cast<Map>(F.get())->getF(), Changed);
      return NG.get() == cast<Map>(F.get())->getF().get()
                 ? F
                 : std::make_shared<Map>(std::move(NG));
    }
    case FunKind::MapSeq: {
      FunDeclPtr NG = rebuildFun(cast<MapSeq>(F.get())->getF(), Changed);
      return NG.get() == cast<MapSeq>(F.get())->getF().get()
                 ? F
                 : std::make_shared<MapSeq>(std::move(NG));
    }
    case FunKind::MapGlb: {
      const auto *M = cast<MapGlb>(F.get());
      FunDeclPtr NG = rebuildFun(M->getF(), Changed);
      return NG.get() == M->getF().get()
                 ? F
                 : std::make_shared<MapGlb>(M->getDim(), std::move(NG));
    }
    case FunKind::MapWrg: {
      const auto *M = cast<MapWrg>(F.get());
      FunDeclPtr NG = rebuildFun(M->getF(), Changed);
      return NG.get() == M->getF().get()
                 ? F
                 : std::make_shared<MapWrg>(M->getDim(), std::move(NG));
    }
    case FunKind::MapLcl: {
      const auto *M = cast<MapLcl>(F.get());
      FunDeclPtr NG = rebuildFun(M->getF(), Changed);
      return NG.get() == M->getF().get()
                 ? F
                 : std::make_shared<MapLcl>(M->getDim(), std::move(NG));
    }
    case FunKind::ReduceSeq: {
      FunDeclPtr NG = rebuildFun(cast<ReduceSeq>(F.get())->getF(), Changed);
      return NG.get() == cast<ReduceSeq>(F.get())->getF().get()
                 ? F
                 : std::make_shared<ReduceSeq>(std::move(NG));
    }
    case FunKind::Iterate: {
      const auto *I = cast<Iterate>(F.get());
      FunDeclPtr NG = rebuildFun(I->getF(), Changed);
      return NG.get() == I->getF().get()
                 ? F
                 : std::make_shared<Iterate>(I->getCount(), std::move(NG));
    }
    case FunKind::ToGlobal: {
      FunDeclPtr NG = rebuildFun(cast<ToGlobal>(F.get())->getF(), Changed);
      return NG.get() == cast<ToGlobal>(F.get())->getF().get()
                 ? F
                 : std::make_shared<ToGlobal>(std::move(NG));
    }
    case FunKind::ToLocal: {
      FunDeclPtr NG = rebuildFun(cast<ToLocal>(F.get())->getF(), Changed);
      return NG.get() == cast<ToLocal>(F.get())->getF().get()
                 ? F
                 : std::make_shared<ToLocal>(std::move(NG));
    }
    case FunKind::ToPrivate: {
      FunDeclPtr NG = rebuildFun(cast<ToPrivate>(F.get())->getF(), Changed);
      return NG.get() == cast<ToPrivate>(F.get())->getF().get()
                 ? F
                 : std::make_shared<ToPrivate>(std::move(NG));
    }
    default:
      return F;
    }
  }
};

/// Applies \p F to \p Args, beta-reducing when F is a lambda of matching
/// arity: the fused function bodies the rules build stay free of
/// value-level lambda calls, which the code generator cannot emit.
ExprPtr inlineOrCall(const FunDeclPtr &F, std::vector<ExprPtr> Args) {
  if (const auto *L = dyn_cast<Lambda>(F.get())) {
    if (L->getParams().size() == Args.size()) {
      ExprPtr B = L->getBody();
      for (size_t I = 0; I != Args.size(); ++I)
        B = Replacer(L->getParams()[I].get(), Args[I]).rebuildExpr(B);
      return B;
    }
  }
  return dsl::call(F, std::move(Args));
}

/// Wraps a function so it can be composed: a Lambda applying F (with
/// lambda arguments inlined rather than called).
FunDeclPtr composed(const FunDeclPtr &Outer, const FunDeclPtr &Inner) {
  ParamPtr P = dsl::param("p");
  return dsl::lambda(
      {P}, inlineOrCall(Outer, {inlineOrCall(Inner, {ExprPtr(P)})}));
}

} // namespace

//===----------------------------------------------------------------------===//
// Algorithmic rules
//===----------------------------------------------------------------------===//

Rule rewrite::mapFusion() {
  Rule R;
  R.Name = "map-fusion";
  R.Apply = [](const ExprPtr &E) -> ExprPtr {
    const FunCall *Outer = matchUnaryCall(E, FunKind::Map);
    if (!Outer)
      return nullptr;
    const FunCall *Inner = matchUnaryCall(Outer->getArgs()[0], FunKind::Map);
    if (!Inner)
      return nullptr;
    const FunDeclPtr &F = cast<Map>(Outer->getFun().get())->getF();
    const FunDeclPtr &G = cast<Map>(Inner->getFun().get())->getF();
    return dsl::call(dsl::map(composed(F, G)), {Inner->getArgs()[0]});
  };
  return R;
}

Rule rewrite::splitJoinElimination() {
  Rule R;
  R.Name = "split-join-elimination";
  R.Apply = [](const ExprPtr &E) -> ExprPtr {
    const FunCall *J = matchUnaryCall(E, FunKind::Join);
    if (!J)
      return nullptr;
    const FunCall *S = matchUnaryCall(J->getArgs()[0], FunKind::Split);
    if (!S)
      return nullptr;
    return S->getArgs()[0];
  };
  return R;
}

Rule rewrite::splitJoinIntroduction(arith::Expr ChunkSize) {
  Rule R;
  R.Name = "split-join-introduction";
  R.Apply = [ChunkSize](const ExprPtr &E) -> ExprPtr {
    const FunCall *M = matchUnaryCall(E, FunKind::Map);
    if (!M)
      return nullptr;
    const FunDeclPtr &F = cast<Map>(M->getFun().get())->getF();
    return dsl::pipe(M->getArgs()[0], dsl::split(ChunkSize),
                     dsl::map(dsl::map(F)), dsl::join());
  };
  return R;
}

Rule rewrite::reduceMapFusion() {
  Rule R;
  R.Name = "reduce-map-fusion";
  R.Apply = [](const ExprPtr &E) -> ExprPtr {
    const auto *C = dyn_cast<FunCall>(E.get());
    if (!C || C->getFun()->getKind() != FunKind::ReduceSeq ||
        C->getArgs().size() != 2)
      return nullptr;
    const FunCall *Producer =
        matchUnaryCall(C->getArgs()[1], FunKind::MapSeq);
    if (!Producer)
      Producer = matchUnaryCall(C->getArgs()[1], FunKind::Map);
    if (!Producer)
      return nullptr;
    const FunDeclPtr &F = cast<ReduceSeq>(C->getFun().get())->getF();
    const FunDeclPtr &G =
        cast<AbstractMap>(Producer->getFun().get())->getF();
    ParamPtr Acc = dsl::param("acc");
    ParamPtr Elem = dsl::param("e");
    FunDeclPtr Fused = dsl::lambda(
        {Acc, Elem},
        inlineOrCall(F, {ExprPtr(Acc), inlineOrCall(G, {ExprPtr(Elem)})}));
    return dsl::call(dsl::reduceSeq(Fused),
                     {C->getArgs()[0], Producer->getArgs()[0]});
  };
  return R;
}

Rule rewrite::idElimination() {
  Rule R;
  R.Name = "id-elimination";
  R.Apply = [](const ExprPtr &E) -> ExprPtr {
    const FunCall *C = matchUnaryCall(E, FunKind::Id);
    if (!C)
      return nullptr;
    return C->getArgs()[0];
  };
  return R;
}

//===----------------------------------------------------------------------===//
// Mapping rules
//===----------------------------------------------------------------------===//

Rule rewrite::mapToMapGlb(unsigned Dim) {
  Rule R;
  R.Name = "map-to-mapGlb";
  R.Apply = [Dim](const ExprPtr &E) -> ExprPtr {
    const FunCall *M = matchUnaryCall(E, FunKind::Map);
    if (!M)
      return nullptr;
    const FunDeclPtr &F = cast<Map>(M->getFun().get())->getF();
    return dsl::call(dsl::mapGlb(Dim, seqElementMaps(F)),
                     {M->getArgs()[0]});
  };
  return R;
}

Rule rewrite::mapToMapSeq() {
  Rule R;
  R.Name = "map-to-mapSeq";
  R.Apply = [](const ExprPtr &E) -> ExprPtr {
    const FunCall *M = matchUnaryCall(E, FunKind::Map);
    if (!M)
      return nullptr;
    const FunDeclPtr &F = cast<Map>(M->getFun().get())->getF();
    return dsl::call(dsl::mapSeq(seqElementMaps(F)), {M->getArgs()[0]});
  };
  return R;
}

Rule rewrite::mapToWrgLcl(arith::Expr ChunkSize, unsigned Dim) {
  Rule R;
  R.Name = "map-to-wrg-lcl";
  R.Apply = [ChunkSize, Dim](const ExprPtr &E) -> ExprPtr {
    const FunCall *M = matchUnaryCall(E, FunKind::Map);
    if (!M)
      return nullptr;
    const FunDeclPtr &F = cast<Map>(M->getFun().get())->getF();
    return dsl::pipe(M->getArgs()[0], dsl::split(ChunkSize),
                     dsl::mapWrg(Dim, dsl::mapLcl(Dim, seqElementMaps(F))),
                     dsl::join());
  };
  return R;
}

//===----------------------------------------------------------------------===//
// Application machinery
//===----------------------------------------------------------------------===//

namespace {

bool findFirstInFun(const Rule &R, const FunDeclPtr &F, const Expr *&Site,
                    ExprPtr &Replacement);

/// Pre-order search for the first position where \p R applies. Returns
/// the matched expression and its replacement.
bool findFirst(const Rule &R, const ExprPtr &E, const Expr *&Site,
               ExprPtr &Replacement) {
  if (ExprPtr Rep = R.Apply(E)) {
    Site = E.get();
    Replacement = std::move(Rep);
    return true;
  }
  const auto *C = dyn_cast<FunCall>(E.get());
  if (!C)
    return false;
  for (const ExprPtr &A : C->getArgs())
    if (findFirst(R, A, Site, Replacement))
      return true;
  return findFirstInFun(R, C->getFun(), Site, Replacement);
}

bool findFirstInFun(const Rule &R, const FunDeclPtr &F, const Expr *&Site,
                    ExprPtr &Replacement) {
  switch (F->getKind()) {
  case FunKind::Lambda:
    return findFirst(R, cast<Lambda>(F.get())->getBody(), Site, Replacement);
  case FunKind::Map:
  case FunKind::MapSeq:
  case FunKind::MapGlb:
  case FunKind::MapWrg:
  case FunKind::MapLcl:
  case FunKind::MapVec:
    return findFirstInFun(R, cast<AbstractMap>(F.get())->getF(), Site,
                          Replacement);
  case FunKind::ReduceSeq:
    return findFirstInFun(R, cast<ReduceSeq>(F.get())->getF(), Site,
                          Replacement);
  case FunKind::Iterate:
    return findFirstInFun(R, cast<Iterate>(F.get())->getF(), Site,
                          Replacement);
  case FunKind::ToGlobal:
  case FunKind::ToLocal:
  case FunKind::ToPrivate:
    return findFirstInFun(R, cast<AddressSpaceWrapper>(F.get())->getF(),
                          Site, Replacement);
  default:
    return false;
  }
}

bool findNthInFun(const Rule &R, const FunDeclPtr &F, unsigned &K,
                  const Expr *&Site, ExprPtr &Replacement);

/// Pre-order search for the (K+1)-th position where \p R applies; \p K is
/// decremented as earlier matches are skipped. Same walk order as
/// findFirst, so applyAt(R, E, 0) == applyOnce(R, E).
bool findNth(const Rule &R, const ExprPtr &E, unsigned &K, const Expr *&Site,
             ExprPtr &Replacement) {
  if (ExprPtr Rep = R.Apply(E)) {
    if (K == 0) {
      Site = E.get();
      Replacement = std::move(Rep);
      return true;
    }
    --K;
  }
  const auto *C = dyn_cast<FunCall>(E.get());
  if (!C)
    return false;
  for (const ExprPtr &A : C->getArgs())
    if (findNth(R, A, K, Site, Replacement))
      return true;
  return findNthInFun(R, C->getFun(), K, Site, Replacement);
}

bool findNthInFun(const Rule &R, const FunDeclPtr &F, unsigned &K,
                  const Expr *&Site, ExprPtr &Replacement) {
  switch (F->getKind()) {
  case FunKind::Lambda:
    return findNth(R, cast<Lambda>(F.get())->getBody(), K, Site, Replacement);
  case FunKind::Map:
  case FunKind::MapSeq:
  case FunKind::MapGlb:
  case FunKind::MapWrg:
  case FunKind::MapLcl:
  case FunKind::MapVec:
    return findNthInFun(R, cast<AbstractMap>(F.get())->getF(), K, Site,
                        Replacement);
  case FunKind::ReduceSeq:
    return findNthInFun(R, cast<ReduceSeq>(F.get())->getF(), K, Site,
                        Replacement);
  case FunKind::Iterate:
    return findNthInFun(R, cast<Iterate>(F.get())->getF(), K, Site,
                        Replacement);
  case FunKind::ToGlobal:
  case FunKind::ToLocal:
  case FunKind::ToPrivate:
    return findNthInFun(R, cast<AddressSpaceWrapper>(F.get())->getF(), K,
                        Site, Replacement);
  default:
    return false;
  }
}

/// A short, single-line rendering of \p E for diagnostic locations.
std::string exprContext(const ExprPtr &E) {
  std::string S = printExpr(E);
  for (char &C : S)
    if (C == '\n')
      C = ' ';
  if (S.size() > 48)
    S = S.substr(0, 45) + "...";
  return S;
}

void countMatchesImpl(const Rule &R, const ExprPtr &E, unsigned &N);

void countMatchesInFun(const Rule &R, const FunDeclPtr &F, unsigned &N) {
  switch (F->getKind()) {
  case FunKind::Lambda:
    countMatchesImpl(R, cast<Lambda>(F.get())->getBody(), N);
    return;
  case FunKind::Map:
  case FunKind::MapSeq:
  case FunKind::MapGlb:
  case FunKind::MapWrg:
  case FunKind::MapLcl:
  case FunKind::MapVec:
    countMatchesInFun(R, cast<AbstractMap>(F.get())->getF(), N);
    return;
  case FunKind::ReduceSeq:
    countMatchesInFun(R, cast<ReduceSeq>(F.get())->getF(), N);
    return;
  case FunKind::Iterate:
    countMatchesInFun(R, cast<Iterate>(F.get())->getF(), N);
    return;
  case FunKind::ToGlobal:
  case FunKind::ToLocal:
  case FunKind::ToPrivate:
    countMatchesInFun(R, cast<AddressSpaceWrapper>(F.get())->getF(), N);
    return;
  default:
    return;
  }
}

void countMatchesImpl(const Rule &R, const ExprPtr &E, unsigned &N) {
  if (R.Apply(E))
    ++N;
  const auto *C = dyn_cast<FunCall>(E.get());
  if (!C)
    return;
  for (const ExprPtr &A : C->getArgs())
    countMatchesImpl(R, A, N);
  countMatchesInFun(R, C->getFun(), N);
}

} // namespace

ExprPtr rewrite::applyOnce(const Rule &R, const ExprPtr &E) {
  const Expr *Site = nullptr;
  ExprPtr Replacement;
  if (!findFirst(R, E, Site, Replacement))
    return nullptr;
  return Replacer(Site, std::move(Replacement)).rebuildExpr(E);
}

ExprPtr rewrite::applyEverywhere(const Rule &R, const ExprPtr &E,
                                 unsigned MaxSteps) {
  ExprPtr Cur = E;
  for (unsigned I = 0; I != MaxSteps; ++I) {
    ExprPtr Next = applyOnce(R, Cur);
    if (!Next)
      return Cur;
    Cur = std::move(Next);
  }
  return Cur;
}

unsigned rewrite::countMatches(const Rule &R, const ExprPtr &E) {
  unsigned N = 0;
  countMatchesImpl(R, E, N);
  return N;
}

ExprPtr rewrite::applyAt(const Rule &R, const ExprPtr &E, unsigned K) {
  const Expr *Site = nullptr;
  ExprPtr Replacement;
  unsigned Remaining = K;
  if (!findNth(R, E, Remaining, Site, Replacement))
    return nullptr;
  return Replacer(Site, std::move(Replacement)).rebuildExpr(E);
}

Expected<ExprPtr> rewrite::applyOnceChecked(const Rule &R, const ExprPtr &E,
                                            DiagnosticEngine &Engine) {
  if (ExprPtr Next = applyOnce(R, E))
    return Next;
  Engine.error(DiagCode::RewriteNoLowering,
               DiagLocation::inContext(exprContext(E)),
               "no applicable lowering: rule '" + R.Name +
                   "' matches nowhere in the program");
  return {};
}

std::vector<Rule> rewrite::allRules() {
  return {mapFusion(),
          splitJoinElimination(),
          splitJoinIntroduction(arith::cst(8)),
          reduceMapFusion(),
          idElimination(),
          mapToMapGlb(0),
          mapToMapSeq(),
          mapToWrgLcl(arith::cst(16), 0)};
}

LambdaPtr rewrite::lowerProgram(const LambdaPtr &Program, bool UseWorkGroups,
                                arith::Expr ChunkSize) {
  // Clone so the caller's program is untouched; the clone shares no
  // mutable state with the original.
  LambdaPtr Clone =
      cast<Lambda>(cloneFunDecl(std::static_pointer_cast<FunDecl>(Program)));

  ExprPtr Body = Clone->getBody();
  // 1. Fuse adjacent maps to avoid intermediate arrays.
  Body = applyEverywhere(mapFusion(), Body);
  // 2. Map the outermost map onto the thread hierarchy.
  if (UseWorkGroups) {
    if (!ChunkSize)
      throwDiag(DiagCode::CodegenLowering, DiagLocation(),
                "lowerProgram: work-group lowering needs a chunk size");
    if (ExprPtr Next = applyOnce(mapToWrgLcl(ChunkSize), Body))
      Body = std::move(Next);
  } else {
    if (ExprPtr Next = applyOnce(mapToMapGlb(0), Body))
      Body = std::move(Next);
  }
  // 3. Everything still unmapped runs sequentially inside a thread.
  Body = applyEverywhere(mapToMapSeq(), Body);
  // 4. Fuse sequential producers into reductions and clean up.
  Body = applyEverywhere(reduceMapFusion(), Body);
  Body = applyEverywhere(splitJoinElimination(), Body);

  return dsl::lambda(Clone->getParams(), Body);
}

Expected<LambdaPtr> rewrite::lowerProgramChecked(const LambdaPtr &Program,
                                                 bool UseWorkGroups,
                                                 arith::Expr ChunkSize,
                                                 DiagnosticEngine &Engine) {
  if (UseWorkGroups && !ChunkSize) {
    Engine.error(DiagCode::CodegenLowering,
                 DiagLocation::inContext("lowerProgram"),
                 "work-group lowering needs a chunk size");
    return {};
  }

  LambdaPtr Clone =
      cast<Lambda>(cloneFunDecl(std::static_pointer_cast<FunDecl>(Program)));
  ExprPtr Body = applyEverywhere(mapFusion(), Clone->getBody());

  Rule Mapping = UseWorkGroups ? mapToWrgLcl(ChunkSize) : mapToMapGlb(0);
  ExprPtr Mapped = applyOnce(Mapping, Body);
  if (!Mapped) {
    Engine.error(DiagCode::RewriteNoLowering,
                 DiagLocation::inContext(exprContext(Body)),
                 "no applicable lowering: program has no high-level map for "
                 "rule '" + Mapping.Name + "' to parallelize");
    return {};
  }
  Body = std::move(Mapped);

  Body = applyEverywhere(mapToMapSeq(), Body);
  Body = applyEverywhere(reduceMapFusion(), Body);
  Body = applyEverywhere(splitJoinElimination(), Body);

  return dsl::lambda(Clone->getParams(), Body);
}
