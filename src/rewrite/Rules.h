//===- Rules.h - Rewrite rules for the Lift IL ------------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The semantics-preserving rewrite rules of the prior-work lowering layer
/// (section 2 of the paper and its reference [18], Steuwer et al., ICFP
/// 2015): the paper's compiler consumes a *low-level* Lift IL whose mapping
/// decisions were taken by applying these rules to a portable high-level
/// program. This module provides the algorithmic rules (fusion, split-join)
/// and the OpenCL mapping rules (map -> mapGlb / mapWrg(mapLcl) / mapSeq),
/// plus a simple strategy driver that fully lowers a high-level program.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_REWRITE_RULES_H
#define LIFT_REWRITE_RULES_H

#include "ir/IR.h"
#include "support/Diagnostics.h"

#include <functional>
#include <string>
#include <vector>

namespace lift {
namespace rewrite {

/// A rewrite rule: tries to produce a replacement for an expression.
/// Returns null when the rule does not apply at this position.
struct Rule {
  std::string Name;
  std::function<ir::ExprPtr(const ir::ExprPtr &)> Apply;
};

//===----------------------------------------------------------------------===//
// Algorithmic rules
//===----------------------------------------------------------------------===//

/// map(f)(map(g)(x)) -> map(f . g)(x). Eliminates an intermediate array.
Rule mapFusion();

/// join(split(n)(x)) -> x.
Rule splitJoinElimination();

/// map(f)(x) -> join(map(map(f))(split(n)(x))). Prepares tiling.
Rule splitJoinIntroduction(arith::Expr ChunkSize);

/// reduceSeq(f)(init, mapSeq(g)(x)) -> reduceSeq(f')(init, x) where
/// f'(acc, e) = f(acc, g(e)). Fuses producer into the reduction.
Rule reduceMapFusion();

/// id(x) -> x at the expression level (map(id) cleanups).
Rule idElimination();

//===----------------------------------------------------------------------===//
// OpenCL mapping rules (choose how parallelism is exploited)
//===----------------------------------------------------------------------===//

/// map(f) -> mapGlb<dim>(f). Only valid for the outermost parallel map.
Rule mapToMapGlb(unsigned Dim = 0);

/// map(f) -> mapSeq(f).
Rule mapToMapSeq();

/// map(f) -> join . mapWrg<dim>(mapLcl<dim>(f)) . split(chunk): the
/// work-group / local-thread hierarchy.
Rule mapToWrgLcl(arith::Expr ChunkSize, unsigned Dim = 0);

//===----------------------------------------------------------------------===//
// Application machinery
//===----------------------------------------------------------------------===//

/// Applies \p R at the first matching position (pre-order over the
/// expression graph, descending into lambda bodies). Returns the rewritten
/// expression, or null if the rule matched nowhere.
ir::ExprPtr applyOnce(const Rule &R, const ir::ExprPtr &E);

/// Applies \p R everywhere it matches, repeatedly, until a fixpoint
/// (bounded by \p MaxSteps to guarantee termination).
ir::ExprPtr applyEverywhere(const Rule &R, const ir::ExprPtr &E,
                            unsigned MaxSteps = 64);

/// Counts positions where \p R matches.
unsigned countMatches(const Rule &R, const ir::ExprPtr &E);

/// Applies \p R at the \p K-th matching position (0-based, same pre-order
/// walk as applyOnce/countMatches). Returns null when fewer than K+1
/// positions match. Lets differential tests and the tuner's enumerator
/// address every match site individually.
ir::ExprPtr applyAt(const Rule &R, const ir::ExprPtr &E, unsigned K);

/// Checked variant of applyOnce: instead of silently yielding null when the
/// rule matches nowhere, records E0405 (RewriteNoLowering) in \p Engine and
/// returns failure.
Expected<ir::ExprPtr> applyOnceChecked(const Rule &R, const ir::ExprPtr &E,
                                       DiagnosticEngine &Engine);

/// The full rule set with representative parameters, for differential
/// soundness testing (every rule is semantics-preserving, so applying any
/// of them anywhere must not change program results).
std::vector<Rule> allRules();

/// A simple lowering strategy standing in for the automated search of
/// [18]: the outermost high-level map becomes mapWrg(mapLcl) when
/// \p UseWorkGroups (with the given chunk size) or mapGlb otherwise, and
/// every remaining map becomes mapSeq.
ir::LambdaPtr lowerProgram(const ir::LambdaPtr &Program, bool UseWorkGroups,
                           arith::Expr ChunkSize = nullptr);

/// Checked boundary around \c lowerProgram: a program whose outermost map
/// cannot be lowered (no high-level map anywhere — e.g. an already-lowered
/// or scalar-only program) records E0405 (RewriteNoLowering) in \p Engine
/// and returns failure instead of silently producing a kernel that codegen
/// will later reject. A missing chunk size with \p UseWorkGroups records
/// E0403 the same way.
Expected<ir::LambdaPtr> lowerProgramChecked(const ir::LambdaPtr &Program,
                                            bool UseWorkGroups,
                                            arith::Expr ChunkSize,
                                            DiagnosticEngine &Engine);

} // namespace rewrite
} // namespace lift

#endif // LIFT_REWRITE_RULES_H
