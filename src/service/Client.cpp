//===- Client.cpp - liftd client transport --------------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include "support/Retry.h"

#include <cerrno>
#include <cstring>
#include <string>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

using namespace lift;
using namespace lift::service;

namespace {

/// RAII fd so every throw path closes the socket.
struct Fd {
  int Value = -1;
  ~Fd() {
    if (Value >= 0)
      ::close(Value);
  }
};

[[noreturn]] void throwIo(const std::string &What) {
  throwDiag(DiagCode::ServiceIoError, DiagLocation(),
            "service: " + What,
            {"the daemon may have crashed mid-request; retrying opens a "
             "fresh connection"});
}

} // namespace

Response service::roundTripOnce(const ClientOptions &O, const Request &R) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (O.SocketPath.empty() || O.SocketPath.size() >= sizeof(Addr.sun_path))
    throwDiag(DiagCode::ServiceConnectFailed, DiagLocation(),
              "service: socket path must be 1.." +
                  std::to_string(sizeof(Addr.sun_path) - 1) + " bytes");
  std::memcpy(Addr.sun_path, O.SocketPath.c_str(), O.SocketPath.size() + 1);

  Fd Sock;
  Sock.Value = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Sock.Value < 0)
    throwDiag(DiagCode::ServiceConnectFailed, DiagLocation(),
              std::string("service: socket: ") + std::strerror(errno));
  if (O.TimeoutMs > 0) {
    timeval Tv;
    Tv.tv_sec = O.TimeoutMs / 1000;
    Tv.tv_usec = (O.TimeoutMs % 1000) * 1000;
    ::setsockopt(Sock.Value, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
    ::setsockopt(Sock.Value, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv));
  }
  if (::connect(Sock.Value, reinterpret_cast<sockaddr *>(&Addr),
                sizeof(Addr)) != 0)
    throwDiag(DiagCode::ServiceConnectFailed, DiagLocation(),
              "service: cannot reach daemon at " + O.SocketPath + ": " +
                  std::strerror(errno),
              {"is liftd running? start it with: liftd --socket " +
               O.SocketPath});

  std::string Line = encodeRequest(R);
  Line += '\n';
  size_t Sent = 0;
  while (Sent < Line.size()) {
    ssize_t N = ::send(Sock.Value, Line.data() + Sent, Line.size() - Sent,
                       MSG_NOSIGNAL);
    if (N > 0) {
      Sent += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    throwIo(std::string("send to daemon failed: ") + std::strerror(errno));
  }

  std::string Reply;
  char Buf[65536];
  for (;;) {
    ssize_t N = ::recv(Sock.Value, Buf, sizeof(Buf), 0);
    if (N > 0) {
      Reply.append(Buf, static_cast<size_t>(N));
      if (Reply.find('\n') != std::string::npos)
        break;
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N == 0)
      throwIo("daemon closed the connection before replying");
    throwIo(std::string("receive from daemon failed: ") +
            std::strerror(errno));
  }
  Reply.resize(Reply.find('\n'));

  Response Resp;
  std::string Err;
  if (!parseResponse(Reply, Resp, Err))
    throwIo("malformed daemon reply (" + Err + ")");

  switch (Resp.St) {
  case Status::Ok:
  case Status::BadRequest:
    return Resp;
  case Status::Shed:
    // Transient by contract: retry::runWithRetry backs off and retries.
    throwDiag(DiagCode::ServiceOverloaded, DiagLocation(),
              "service: " + (Resp.Message.empty()
                                 ? std::string("request shed by admission "
                                               "control")
                                 : Resp.Message),
              {"suggested backoff: " + std::to_string(Resp.RetryAfterMs) +
               " ms"});
  case Status::Error:
    throwIo(Resp.Message.empty() ? std::string("daemon reported an I/O error")
                                 : Resp.Message);
  case Status::ShuttingDown:
    // Permanent by design: this daemon will never take the work.
    throwDiag(DiagCode::ServiceShuttingDown, DiagLocation(),
              "service: " + (Resp.Message.empty()
                                 ? std::string("daemon is shutting down")
                                 : Resp.Message));
  }
  throwIo("daemon reply carried an unknown status");
}

bool service::roundTrip(const ClientOptions &O, const Request &R,
                        Response &Out, DiagnosticEngine &Engine) {
  try {
    Out = retry::runWithRetry(retry::Policy::fromEnv(), "service request",
                              [&] { return roundTripOnce(O, R); });
    return true;
  } catch (DiagnosticError &E) {
    Engine.report(E.Diag);
    return false;
  }
}
