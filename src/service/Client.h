//===- Client.h - liftd client transport ------------------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Client side of the liftd protocol: one connect / send / receive
/// exchange per request, composed with the process retry policy
/// (support/Retry.h). Transport failures map onto the stable service
/// codes — E0706 when the daemon socket cannot be reached, E0703 when a
/// connection dies mid-exchange — and an E0701 shed reply is surfaced as
/// a transient DiagnosticError, so retry::runWithRetry backs off and
/// retries exactly like it does for native-toolchain transients. An
/// E0705 "shutting down" reply is permanent by design: this daemon will
/// never take the work, fail fast instead of hammering it.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_SERVICE_CLIENT_H
#define LIFT_SERVICE_CLIENT_H

#include "service/Protocol.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <string>

namespace lift {
namespace service {

struct ClientOptions {
  std::string SocketPath;
  /// Send/receive budget per exchange (SO_SNDTIMEO / SO_RCVTIMEO);
  /// 0 = wait forever. Connect failures are immediate either way.
  int64_t TimeoutMs = 30000;
};

/// One exchange, no retries. Returns the daemon's response for Ok and
/// BadRequest statuses (the caller decides what a bad request means);
/// throws DiagnosticError for everything retry-shaped: E0706 (connect),
/// E0703 (I/O, EOF, daemon-side Error status), E0701 (shed) and E0705
/// (draining).
Response roundTripOnce(const ClientOptions &O, const Request &R);

/// \c roundTripOnce under the environment retry policy
/// (LIFT_RETRY_ATTEMPTS / LIFT_RETRY_BASE_US). On exhaustion or a
/// permanent failure, records the diagnostic into \p Engine and returns
/// false.
bool roundTrip(const ClientOptions &O, const Request &R, Response &Out,
               DiagnosticEngine &Engine);

} // namespace service
} // namespace lift

#endif // LIFT_SERVICE_CLIENT_H
