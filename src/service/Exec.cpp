//===- Exec.cpp - Shared compile-and-run pipeline -------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// This is tools/liftc's pipeline, extracted verbatim: the stdout bytes,
// the diagnostic ordering and the exit codes must stay identical to what
// the standalone driver produced before the extraction — the service
// tests assert bit-identity between a daemon response and a solo run.
// When touching output formatting here, mirror-check tests/ServiceTest
// and the liftc golden tests.
//
//===----------------------------------------------------------------------===//

#include "service/Exec.h"

#include "ir/Printer.h"
#include "lift/Lift.h"
#include "native/NativePrinter.h"
#include "ocl/FaultInject.h"
#include "passes/Verify.h"
#include "support/Hash.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <exception>
#include <stdexcept>

using namespace lift;
using namespace lift::service;

namespace {

/// Deterministic input data for --run (identical to liftc's historical
/// generator: every request sees the same pseudo-random inputs).
std::vector<float> randomFloats(size_t N, uint64_t Seed) {
  std::vector<float> R(N);
  uint64_t S = Seed * 6364136223846793005ULL + 1442695040888963407ULL;
  for (size_t I = 0; I != N; ++I) {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    R[I] = static_cast<float>(static_cast<int64_t>(S % 2000) - 1000) / 1000.f;
  }
  return R;
}

void appendf(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[512];
  va_list Ap;
  va_start(Ap, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  Out += Buf;
}

/// The "// fault-count" block a --count-faults run appends to stdout.
void appendFaultCounts(std::string &Out) {
  for (unsigned S = 0; S != ocl::fault::NumSites; ++S) {
    auto Id = static_cast<ocl::fault::Site>(S);
    appendf(Out, "// fault-count %u %llu %s\n", S,
            static_cast<unsigned long long>(ocl::fault::occurrences(Id)),
            ocl::fault::siteName(Id));
  }
}

void flushInto(std::vector<std::string> &Lines,
               const DiagnosticEngine &Engine) {
  for (const Diagnostic &D : Engine.diagnostics())
    Lines.push_back(D.render());
}

uint64_t clampLimit(uint64_t Requested, uint64_t Ceiling) {
  if (Ceiling == 0)
    return Requested;
  if (Requested == 0)
    return Ceiling;
  return std::min(Requested, Ceiling);
}

} // namespace

codegen::CompilerOptions
service::clampOptions(const codegen::CompilerOptions &Opts,
                      const ExecContext &Ctx) {
  codegen::CompilerOptions E = Opts;
  E.MaxSteps = clampLimit(Opts.MaxSteps, Ctx.MaxSteps);
  E.TimeoutMs = static_cast<int64_t>(
      clampLimit(static_cast<uint64_t>(Opts.TimeoutMs),
                 static_cast<uint64_t>(Ctx.TimeoutMs)));
  E.MaxMemoryBytes = clampLimit(Opts.MaxMemoryBytes, Ctx.MaxMemoryBytes);
  if (Ctx.MaxThreads > 0)
    E.Threads = Opts.Threads == 0 ? Ctx.MaxThreads
                                  : std::min(Opts.Threads, Ctx.MaxThreads);
  return E;
}

std::string service::compileKey(const ExecRequest &R) {
  std::string K;
  K.reserve(R.Source.size() + 64);
  K += R.Source;
  K += '|';
  K += std::to_string(R.MaxErrors);
  for (int64_t V : R.Opts.GlobalSize) {
    K += ',';
    K += std::to_string(V);
  }
  K += '|';
  for (int64_t V : R.Opts.LocalSize) {
    K += ',';
    K += std::to_string(V);
  }
  K += R.Opts.BarrierElimination ? "|be1" : "|be0";
  K += R.Opts.ControlFlowSimplification ? "cfs1" : "cfs0";
  K += R.Opts.ArrayAccessSimplification ? "aas1" : "aas0";
  K += R.Opts.VerifyEach ? "v1" : "v0";
  K += "|u";
  K += std::to_string(R.Opts.UnrollLimit);
  return support::hex16(support::fnv1a64(K));
}

std::shared_ptr<CompileProduct> service::compileRequest(const ExecRequest &R) {
  auto P = std::make_shared<CompileProduct>();
  DiagnosticEngine Engine(R.MaxErrors);
  try {
    Expected<frontend::ParsedProgram> Parsed =
        frontend::parseILChecked(R.Source, Engine);
    if (!Parsed) {
      P->Diags = Engine.diagnostics();
      return P;
    }
    P->Parsed = true;
    P->Program =
        std::make_shared<frontend::ParsedProgram>(std::move(*Parsed));
    P->PrintedIl = ir::printProgram(P->Program->Program);

    codegen::CompilerOptions Opts = R.Opts;
    Opts.KernelName = "liftc_kernel";
    if (Opts.VerifyEach &&
        !passes::verifyChecked(P->Program->Program, Engine,
                               "after parsing")) {
      P->Diags = Engine.diagnostics();
      return P;
    }

    Expected<codegen::CompiledKernel> K =
        codegen::compileChecked(P->Program->Program, Opts, Engine);
    if (!K) {
      P->Diags = Engine.diagnostics();
      return P;
    }
    P->Kernel = std::make_shared<codegen::CompiledKernel>(std::move(*K));
    P->KernelSource = P->Kernel->Source;
    P->Ok = true;
  } catch (DiagnosticError &E) {
    // The checked boundaries normally record for us; a stray escape is
    // still an input problem, not a crash.
    if (!E.Recorded)
      Engine.report(E.Diag);
  }
  P->Diags = Engine.diagnostics();
  return P;
}

namespace {

/// Everything past the compile stage, mirroring liftc line by line.
int runStages(const ExecRequest &R, const ExecContext &Ctx,
              CompileProduct &Pre, DiagnosticEngine &Engine,
              ExecOutcome &O) {
  enum { ExitOk = 0, ExitDiagnostics = 1 };

  if (!Pre.Parsed) {
    flushInto(O.Diags, Engine);
    return ExitDiagnostics;
  }
  if (R.PrintIl) {
    O.Stdout += "// parsed IL\n";
    O.Stdout += Pre.PrintedIl;
    O.Stdout += '\n';
  }
  if (!Pre.Ok) {
    flushInto(O.Diags, Engine);
    return ExitDiagnostics;
  }
  O.Stdout += Pre.KernelSource;

  // Compile-only requests can be served from a text-only product (a
  // disk-loaded daemon artifact has the kernel source but no kernel
  // object); anything past this point needs the real kernel.
  if (R.DumpNative || R.Run) {
    if (!Pre.Kernel)
      throw std::runtime_error(
          "compile product has no kernel object for a run request");
  }

  if (R.DumpNative) {
    // The native translation unit is a plain-C++ lowering of the same
    // kernel AST; unsupported constructs raise E0607 like a launch would.
    O.Stdout += "\n// native C++ translation unit\n";
    O.Stdout += native::printNativeModule(*Pre.Kernel, R.NMode);
  }

  if (!R.Run)
    return ExitOk;

  codegen::CompiledKernel &K = *Pre.Kernel;

  codegen::CompilerOptions Opts = clampOptions(R.Opts, Ctx);
  Opts.KernelName = "liftc_kernel";

  // Bind size variables; default unbound ones to 1024.
  std::map<std::string, int64_t> Sizes = R.Sizes;
  arith::EvalContext SizeCtx;
  std::map<unsigned, int64_t> SizeEnv;
  for (const auto &[Name, Var] : Pre.Program->SizeVars) {
    auto It = Sizes.find(Name);
    int64_t V = It != Sizes.end() ? It->second : 1024;
    Sizes[Name] = V;
    SizeEnv[Var->getId()] = V;
  }
  SizeCtx.VarValue = [&](const arith::VarNode &V) -> int64_t {
    auto It = SizeEnv.find(V.getId());
    if (It == SizeEnv.end())
      throwDiag(DiagCode::HostUnboundSize, DiagLocation(),
                "liftc: unbound size variable " + V.getName());
    return It->second;
  };

  // Materialize buffers: random floats for inputs, zeros for the output.
  std::vector<ocl::Buffer> Buffers;
  std::vector<ocl::Buffer *> Args;
  uint64_t Seed = 1;
  uint64_t HostBytes = 0;
  for (const codegen::KernelParamInfo &Param : K.Params) {
    if (Param.IsSizeParam || !Param.Store || !Param.Store->NumElements)
      continue;
    int64_t Count = arith::evaluate(Param.Store->NumElements, SizeCtx);
    if (Count < 0)
      throwDiag(DiagCode::RuntimeBadLaunch, DiagLocation(),
                "host: kernel parameter has negative extent " +
                    std::to_string(Count));
    HostBytes += static_cast<uint64_t>(Count) * sizeof(float);
    if (Ctx.MaxHostBufferBytes && HostBytes > Ctx.MaxHostBufferBytes)
      throwDiag(DiagCode::RuntimeMemoryLimit, DiagLocation(),
                "host: request buffers exceed the service ceiling of " +
                    std::to_string(Ctx.MaxHostBufferBytes) + " bytes",
                {"bind smaller sizes or raise the daemon's "
                 "--max-request-memory"});
    if (Param.IsOutput)
      Buffers.push_back(ocl::Buffer::zeros(static_cast<size_t>(Count)));
    else
      Buffers.push_back(ocl::Buffer::ofFloats(
          randomFloats(static_cast<size_t>(Count), Seed++)));
  }
  for (ocl::Buffer &B : Buffers)
    Args.push_back(&B);

  ocl::LaunchConfig Cfg = ocl::LaunchConfig::fromOptions(Opts);
  Cfg.Limits.Cancel = Ctx.Cancel;

  if (R.NativeBackend) {
    if (Opts.CheckRaces || Opts.CheckMemory || Opts.PerturbSchedule)
      O.Diags.push_back("note: race/memory checking and schedule "
                        "perturbation are simulator-only; the native "
                        "backend ignores them");
    // The native attempt records into its own engine: on failure it is
    // demoted to an E0610 warning and the run degrades to the simulator
    // below instead of failing.
    DiagnosticEngine NativeEngine(R.MaxErrors);
    Expected<native::NativeLaunchResult> NR = native::launchNativeChecked(
        K, Args, Sizes, Cfg, NativeEngine, R.NMode);
    if (NR) {
      double Checksum = 0;
      if (!Buffers.empty())
        for (float V : Buffers.back().toFlatFloats())
          Checksum += V;
      appendf(O.Stdout,
              "\n// run[native]: wall-ms=%.3f compile-ms=%.0f cache=%s "
              "threads=%lld checksum=%.6g\n",
              NR->WallMs, NR->CompileMs, NR->CacheHit ? "hit" : "miss",
              static_cast<long long>(NR->Threads), Checksum);
      if (R.CountFaults)
        appendFaultCounts(O.Stdout);
      flushInto(O.Diags, NativeEngine);
      return NativeEngine.hasErrors() ? ExitDiagnostics : ExitOk;
    }
    std::string Detail = "no diagnostic";
    for (const Diagnostic &D : NativeEngine.diagnostics())
      if (D.Severity == DiagSeverity::Error) {
        Detail = diagCodeId(D.Code) + ": " + D.Message;
        break;
      }
    Engine.warning(DiagCode::NativeFallback, DiagLocation(),
                   "native backend unavailable (" + Detail +
                       "); degrading to the simulator");
    // A failed native attempt never read results back (contents are
    // intact) but may have poisoned the buffers; the simulator rerun
    // starts from a clean launch.
    for (ocl::Buffer &B : Buffers)
      B.Poisoned = false;
  }

  Expected<ocl::LaunchResult> LR =
      ocl::launchChecked(K, Args, Sizes, Cfg, Engine);
  if (!LR) {
    flushInto(O.Diags, Engine);
    return ExitDiagnostics;
  }

  double Checksum = 0;
  if (!Buffers.empty())
    for (float V : Buffers.back().toFlatFloats())
      Checksum += V;
  appendf(O.Stdout,
          "\n// run: cost=%.0f global=%llu local=%llu barriers=%llu "
          "divmod=%llu checksum=%.6g\n",
          LR->Cost.cost(),
          static_cast<unsigned long long>(LR->Cost.GlobalAccesses),
          static_cast<unsigned long long>(LR->Cost.LocalAccesses),
          static_cast<unsigned long long>(LR->Cost.Barriers),
          static_cast<unsigned long long>(LR->Cost.DivModOps), Checksum);

  if (Opts.CheckRaces)
    appendf(O.Stdout, "// race check: %s\n", LR->Races.summary().c_str());
  if (Opts.CheckMemory)
    appendf(O.Stdout, "// memory check: %s\n", LR->Guards.summary().c_str());
  if (R.CountFaults)
    appendFaultCounts(O.Stdout);
  // Successful runs can still carry warnings (e.g. E0509 serial
  // fallback) — surface them without failing the run.
  flushInto(O.Diags, Engine);
  return Engine.hasErrors() ? ExitDiagnostics : ExitOk;
}

} // namespace

ExecOutcome service::execRequest(const ExecRequest &R, const ExecContext &Ctx,
                                 CompileProduct *Pre) {
  ExecOutcome O;
  std::shared_ptr<CompileProduct> Local;
  if (!Pre) {
    Local = compileRequest(R);
    Pre = Local.get();
  }

  // Per-request isolation: a fresh engine seeded by replaying the shared
  // compile-stage diagnostics, so a cached compile surfaces its warnings
  // exactly as a solo run would.
  DiagnosticEngine Engine(R.MaxErrors);
  for (const Diagnostic &D : Pre->Diags)
    Engine.report(D);

  try {
    O.Exit = runStages(R, Ctx, *Pre, Engine, O);
  } catch (DiagnosticError &E) {
    // A recoverable diagnostic that escaped a checked boundary: still an
    // input problem, not a crash. Matches liftc's top-level handler —
    // only the escaped diagnostic is printed.
    O.Diags.push_back(E.Diag.render());
    O.Exit = 1;
  } catch (const std::exception &E) {
    O.Diags.push_back(std::string("internal error: ") + E.what());
    O.Exit = 2;
  }
  return O;
}
