//===- Exec.h - Shared compile-and-run pipeline -----------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The liftc compile-and-run pipeline as a library, shared byte-for-byte
/// between the local driver (tools/liftc) and the liftd daemon
/// (docs/SERVICE.md). An \c ExecRequest captures everything liftc's flags
/// capture; \c execRequest produces the same stdout text, the same
/// rendered diagnostics in the same order, and the same exit code the
/// standalone driver would — so a daemon response is bit-identical to a
/// solo run by construction, not by parallel maintenance of two
/// pipelines.
///
/// The compile stage is split out (\c compileRequest / \c CompileProduct)
/// so the daemon can content-address it: two requests with equal
/// \c compileKey share one parse + verify + codegen, and the run stage
/// replays the compile-stage diagnostics into a fresh engine to keep
/// per-request isolation.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_SERVICE_EXEC_H
#define LIFT_SERVICE_EXEC_H

#include "codegen/Compiler.h"
#include "frontend/ILParser.h"
#include "native/Native.h"
#include "support/Diagnostics.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lift {
namespace service {

/// Everything a liftc invocation specifies (minus process-global concerns
/// like fault arming, which stay in the driver).
struct ExecRequest {
  std::string Source;
  bool PrintIl = false;
  bool Run = false;
  bool DumpNative = false;
  bool NativeBackend = false;
  /// Appends the per-site "// fault-count" lines a --count-faults run
  /// prints. Driver-only: the daemon never sets this (the counters are
  /// process-global and would mix requests).
  bool CountFaults = false;
  native::NativeMode NMode = native::NativeMode::Exact;
  unsigned MaxErrors = 20;
  codegen::CompilerOptions Opts;
  std::map<std::string, int64_t> Sizes;
};

/// Server-side ceilings and the per-request cancellation token. Default
/// constructed = no ceilings, no cancellation (standalone liftc).
struct ExecContext {
  /// Cooperative cancellation token, polled by the simulator monitor at
  /// step-chunk checkpoints (E0516). Not owned. Native launches cannot be
  /// interrupted mid-kernel; the token takes effect at the next simulator
  /// checkpoint only.
  const std::atomic<bool> *Cancel = nullptr;
  /// Ceilings clamping the request's own limits: 0 = no ceiling. A
  /// request asking for more (or for "unlimited") gets the ceiling.
  uint64_t MaxSteps = 0;
  int64_t TimeoutMs = 0;
  uint64_t MaxMemoryBytes = 0;
  int MaxThreads = 0;
  /// Cap on the host-side buffer bytes materialized for --run (inputs +
  /// output). The simulator's own E0512 cap only guards device
  /// allocations made inside the launch; this guards the daemon against
  /// a single request sizing its inputs to exhaust host memory. 0 = off
  /// (standalone liftc keeps its historical behavior).
  uint64_t MaxHostBufferBytes = 0;
};

/// Applies the context ceilings to a request's run options. Exposed so
/// tests can compute solo baselines with exactly the daemon's clamping.
codegen::CompilerOptions clampOptions(const codegen::CompilerOptions &Opts,
                                      const ExecContext &Ctx);

/// The cacheable product of parse + verify + compile for one request.
/// Immutable after creation; safe to share across threads (the run stage
/// of concurrent requests serializes per kernel in the daemon because
/// CompiledKernel carries per-launch scratch slots).
struct CompileProduct {
  bool Parsed = false; ///< the source parsed (IL echo is available)
  bool Ok = false;     ///< verify + codegen also succeeded
  std::string PrintedIl;
  std::string KernelSource;
  /// Structured compile-stage diagnostics, replayed into each request's
  /// fresh engine so warnings surface exactly as a solo run would.
  std::vector<Diagnostic> Diags;
  std::shared_ptr<frontend::ParsedProgram> Program;
  std::shared_ptr<codegen::CompiledKernel> Kernel;
  /// Serializes the run stage for daemon-shared kernels (CompiledKernel
  /// has mutable per-launch slots). compileRequest leaves it unused.
  std::mutex RunM;
};

/// Content-address of the compile stage: hashes every input that can
/// change \c CompileProduct (source text, NDRange, optimization toggles,
/// verification mode, error cap) and nothing that cannot (run-only
/// options like thread count, limits and checkers — codegen never reads
/// them).
std::string compileKey(const ExecRequest &R);

/// Parse + optional verify + compile. Deterministic for a fixed request.
/// Input failures are recorded as diagnostics, never thrown; internal
/// errors (e.g. allocation failure) propagate for the caller's handler.
std::shared_ptr<CompileProduct> compileRequest(const ExecRequest &R);

/// What liftc would have produced: the exit code (0 ok / 1 diagnostics /
/// 2 internal), the bytes it would print to stdout, and the rendered
/// diagnostic lines it would print to stderr (without the "liftc: "
/// prefix), in emission order.
struct ExecOutcome {
  int Exit = 0;
  std::string Stdout;
  std::vector<std::string> Diags;
};

/// Runs the full pipeline. \p Pre, when given, must be the product of
/// \c compileRequest on a request with equal \c compileKey; otherwise the
/// compile stage runs inline. Never throws: escaped diagnostics become
/// exit 1, anything else exit 2, matching liftc's top-level handler.
ExecOutcome execRequest(const ExecRequest &R, const ExecContext &Ctx = {},
                        CompileProduct *Pre = nullptr);

} // namespace service
} // namespace lift

#endif // LIFT_SERVICE_EXEC_H
