//===- Protocol.cpp - liftd wire protocol ---------------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include "support/Json.h"

#include <cmath>
#include <cstdint>

using namespace lift;
using namespace lift::service;

const char *service::opName(Op O) {
  switch (O) {
  case Op::Exec:
    return "exec";
  case Op::Ping:
    return "ping";
  case Op::Stats:
    return "stats";
  case Op::Shutdown:
    return "shutdown";
  }
  return "exec";
}

const char *service::statusName(Status S) {
  switch (S) {
  case Status::Ok:
    return "ok";
  case Status::Shed:
    return "shed";
  case Status::BadRequest:
    return "bad-request";
  case Status::Error:
    return "error";
  case Status::ShuttingDown:
    return "shutting-down";
  }
  return "error";
}

namespace {

void appendField(std::string &Out, const char *Name) {
  if (Out.back() != '{')
    Out += ',';
  Out += '"';
  Out += Name;
  Out += "\":";
}

void appendStr(std::string &Out, const char *Name, const std::string &V) {
  appendField(Out, Name);
  json::appendQuoted(Out, V);
}

void appendBool(std::string &Out, const char *Name, bool V) {
  appendField(Out, Name);
  Out += V ? "true" : "false";
}

void appendInt(std::string &Out, const char *Name, int64_t V) {
  appendField(Out, Name);
  Out += std::to_string(V);
}

/// Reads an integer field: absent -> Default; present but not an
/// integral number in [Min, Max] -> error.
bool intField(const json::Value &Obj, const char *Name, int64_t Default,
              int64_t Min, int64_t Max, int64_t &Out, std::string &Err) {
  const json::Value *V = Obj.field(Name);
  if (!V) {
    Out = Default;
    return true;
  }
  if (V->K != json::Value::Num || !std::isfinite(V->N) ||
      V->N != std::floor(V->N) || V->N < static_cast<double>(Min) ||
      V->N > static_cast<double>(Max)) {
    Err = std::string(Name) + " must be an integer in [" +
          std::to_string(Min) + ", " + std::to_string(Max) + "]";
    return false;
  }
  Out = static_cast<int64_t>(V->N);
  return true;
}

bool dimsField(const json::Value &Obj, const char *Name,
               std::array<int64_t, 3> &Out, std::string &Err) {
  const json::Value *V = Obj.field(Name);
  if (!V)
    return true;
  if (V->K != json::Value::Arr || V->A.empty() || V->A.size() > 3) {
    Err = std::string(Name) + " must be an array of 1-3 positive sizes";
    return false;
  }
  Out = {1, 1, 1};
  for (size_t I = 0; I != V->A.size(); ++I) {
    const json::Value &D = V->A[I];
    if (D.K != json::Value::Num || !std::isfinite(D.N) ||
        D.N != std::floor(D.N) || D.N < 1 || D.N > (1ll << 32)) {
      Err = std::string(Name) + " must be an array of 1-3 positive sizes";
      return false;
    }
    Out[I] = static_cast<int64_t>(D.N);
  }
  return true;
}

} // namespace

std::string service::encodeRequest(const Request &R) {
  std::string Out = "{";
  appendStr(Out, "op", opName(R.Kind));
  if (!R.Id.empty())
    appendStr(Out, "id", R.Id);
  if (R.Kind == Op::Exec) {
    const ExecRequest &E = R.Exec;
    appendStr(Out, "source", E.Source);
    if (E.PrintIl)
      appendBool(Out, "print_il", true);
    if (E.Run)
      appendBool(Out, "run", true);
    if (E.DumpNative)
      appendBool(Out, "dump_native", true);
    if (E.NativeBackend)
      appendStr(Out, "backend", "native");
    if (E.NMode == native::NativeMode::Fast)
      appendStr(Out, "native_mode", "fast");
    if (E.MaxErrors != 20)
      appendInt(Out, "max_errors", E.MaxErrors);
    const codegen::CompilerOptions &O = E.Opts;
    if (O.VerifyEach)
      appendBool(Out, "verify_each", true);
    if (O.CheckRaces)
      appendBool(Out, "check_races", true);
    if (O.CheckMemory)
      appendBool(Out, "check_memory", true);
    if (O.PerturbSchedule)
      appendBool(Out, "perturb_schedule", true);
    if (O.ScheduleSeed != 1)
      appendInt(Out, "schedule_seed", static_cast<int64_t>(O.ScheduleSeed));
    if (O.Threads != 0)
      appendInt(Out, "threads", O.Threads);
    if (O.MaxSteps != 0)
      appendInt(Out, "max_steps", static_cast<int64_t>(O.MaxSteps));
    if (O.TimeoutMs != 0)
      appendInt(Out, "timeout_ms", O.TimeoutMs);
    if (O.MaxMemoryBytes != 0)
      appendInt(Out, "max_memory", static_cast<int64_t>(O.MaxMemoryBytes));
    if (!O.ArrayAccessSimplification)
      appendBool(Out, "aas", false);
    if (!O.ControlFlowSimplification)
      appendBool(Out, "cfs", false);
    if (!O.BarrierElimination)
      appendBool(Out, "be", false);
    appendField(Out, "global");
    Out += '[';
    for (int I = 0; I != 3; ++I) {
      if (I)
        Out += ',';
      Out += std::to_string(O.GlobalSize[static_cast<size_t>(I)]);
    }
    Out += ']';
    appendField(Out, "local");
    Out += '[';
    for (int I = 0; I != 3; ++I) {
      if (I)
        Out += ',';
      Out += std::to_string(O.LocalSize[static_cast<size_t>(I)]);
    }
    Out += ']';
    if (!E.Sizes.empty()) {
      appendField(Out, "sizes");
      Out += '{';
      for (const auto &[Name, V] : E.Sizes) {
        if (Out.back() != '{')
          Out += ',';
        json::appendQuoted(Out, Name);
        Out += ':';
        Out += std::to_string(V);
      }
      Out += '}';
    }
  }
  Out += '}';
  return Out;
}

bool service::parseRequest(const std::string &Line, Request &R,
                           std::string &Err) {
  json::Value V;
  if (!json::parse(Line, V) || V.K != json::Value::Obj) {
    Err = "request is not a JSON object";
    return false;
  }

  std::string OpStr = V.strField("op", "exec");
  if (OpStr == "exec")
    R.Kind = Op::Exec;
  else if (OpStr == "ping")
    R.Kind = Op::Ping;
  else if (OpStr == "stats")
    R.Kind = Op::Stats;
  else if (OpStr == "shutdown")
    R.Kind = Op::Shutdown;
  else {
    Err = "unknown op \"" + OpStr + "\"";
    return false;
  }
  R.Id = V.strField("id");
  if (R.Kind != Op::Exec)
    return true;

  ExecRequest &E = R.Exec;
  const json::Value *Src = V.field("source");
  if (!Src || Src->K != json::Value::Str || Src->S.empty()) {
    Err = "exec requests need a non-empty \"source\" string";
    return false;
  }
  E.Source = Src->S;
  E.PrintIl = V.boolField("print_il", false);
  E.Run = V.boolField("run", false);
  E.DumpNative = V.boolField("dump_native", false);

  std::string Backend = V.strField("backend", "sim");
  if (Backend == "sim")
    E.NativeBackend = false;
  else if (Backend == "native")
    E.NativeBackend = true;
  else {
    Err = "backend must be \"sim\" or \"native\"";
    return false;
  }
  std::string Mode = V.strField("native_mode", "exact");
  if (Mode == "exact")
    E.NMode = native::NativeMode::Exact;
  else if (Mode == "fast")
    E.NMode = native::NativeMode::Fast;
  else {
    Err = "native_mode must be \"exact\" or \"fast\"";
    return false;
  }

  int64_t N = 0;
  if (!intField(V, "max_errors", 20, 1, 100000, N, Err))
    return false;
  E.MaxErrors = static_cast<unsigned>(N);

  codegen::CompilerOptions &O = E.Opts;
  O.VerifyEach = V.boolField("verify_each", false);
  O.CheckRaces = V.boolField("check_races", false);
  O.CheckMemory = V.boolField("check_memory", false);
  O.PerturbSchedule = V.boolField("perturb_schedule", false);
  O.ArrayAccessSimplification = V.boolField("aas", true);
  O.ControlFlowSimplification = V.boolField("cfs", true);
  O.BarrierElimination = V.boolField("be", true);
  if (!intField(V, "schedule_seed", 1, 0, (int64_t(1) << 62), N, Err))
    return false;
  O.ScheduleSeed = static_cast<uint64_t>(N);
  if (!intField(V, "threads", 0, 0, 4096, N, Err))
    return false;
  O.Threads = static_cast<int>(N);
  if (!intField(V, "max_steps", 0, 0, (int64_t(1) << 62), N, Err))
    return false;
  O.MaxSteps = static_cast<uint64_t>(N);
  if (!intField(V, "timeout_ms", 0, 0, (int64_t(1) << 62), N, Err))
    return false;
  O.TimeoutMs = N;
  if (!intField(V, "max_memory", 0, 0, (int64_t(1) << 62), N, Err))
    return false;
  O.MaxMemoryBytes = static_cast<uint64_t>(N);
  if (!dimsField(V, "global", O.GlobalSize, Err))
    return false;
  if (!dimsField(V, "local", O.LocalSize, Err))
    return false;

  if (const json::Value *Sizes = V.field("sizes")) {
    if (Sizes->K != json::Value::Obj) {
      Err = "sizes must be an object of name -> integer";
      return false;
    }
    for (const auto &[Name, SV] : Sizes->O) {
      if (SV.K != json::Value::Num || !std::isfinite(SV.N) ||
          SV.N != std::floor(SV.N)) {
        Err = "sizes must be an object of name -> integer";
        return false;
      }
      E.Sizes[Name] = static_cast<int64_t>(SV.N);
    }
  }
  return true;
}

std::string service::encodeResponse(const Response &R) {
  std::string Out = "{";
  if (!R.Id.empty())
    appendStr(Out, "id", R.Id);
  appendStr(Out, "status", statusName(R.St));
  if (!R.Code.empty())
    appendStr(Out, "code", R.Code);
  if (!R.Message.empty())
    appendStr(Out, "message", R.Message);
  appendInt(Out, "exit", R.Exit);
  if (R.Cached)
    appendBool(Out, "cached", true);
  if (R.RetryAfterMs != 0)
    appendInt(Out, "retry_after_ms", R.RetryAfterMs);
  if (!R.Stdout.empty())
    appendStr(Out, "stdout", R.Stdout);
  if (!R.Diagnostics.empty()) {
    appendField(Out, "diagnostics");
    Out += '[';
    for (const std::string &D : R.Diagnostics) {
      if (Out.back() != '[')
        Out += ',';
      json::appendQuoted(Out, D);
    }
    Out += ']';
  }
  if (!R.Stats.empty()) {
    appendField(Out, "stats");
    Out += '{';
    for (const auto &[Name, V] : R.Stats) {
      if (Out.back() != '{')
        Out += ',';
      json::appendQuoted(Out, Name);
      Out += ':';
      Out += std::to_string(V);
    }
    Out += '}';
  }
  Out += '}';
  return Out;
}

bool service::parseResponse(const std::string &Line, Response &R,
                            std::string &Err) {
  json::Value V;
  if (!json::parse(Line, V) || V.K != json::Value::Obj) {
    Err = "response is not a JSON object";
    return false;
  }
  R.Id = V.strField("id");
  std::string St = V.strField("status", "error");
  if (St == "ok")
    R.St = Status::Ok;
  else if (St == "shed")
    R.St = Status::Shed;
  else if (St == "bad-request")
    R.St = Status::BadRequest;
  else if (St == "error")
    R.St = Status::Error;
  else if (St == "shutting-down")
    R.St = Status::ShuttingDown;
  else {
    Err = "unknown status \"" + St + "\"";
    return false;
  }
  R.Code = V.strField("code");
  R.Message = V.strField("message");
  R.Exit = static_cast<int>(V.numField("exit", 2));
  R.Cached = V.boolField("cached", false);
  R.RetryAfterMs = static_cast<int64_t>(V.numField("retry_after_ms", 0));
  R.Stdout = V.strField("stdout");
  if (const json::Value *D = V.field("diagnostics")) {
    if (D->K == json::Value::Arr)
      for (const json::Value &Line2 : D->A)
        if (Line2.K == json::Value::Str)
          R.Diagnostics.push_back(Line2.S);
  }
  if (const json::Value *S = V.field("stats")) {
    if (S->K == json::Value::Obj)
      for (const auto &[Name, SV] : S->O)
        if (SV.K == json::Value::Num)
          R.Stats.emplace_back(Name,
                               static_cast<int64_t>(SV.N));
  }
  return true;
}
