//===- Protocol.h - liftd wire protocol -------------------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The newline-delimited JSON protocol between liftd and its clients
/// (docs/SERVICE.md). One request line, one response line, one request
/// per connection. Both directions are single physical lines: the JSON
/// encoder escapes every control character, so '\n' is an unambiguous
/// frame delimiter.
///
/// Requests mirror liftc's flag surface field-for-field; responses carry
/// the exit code, stdout bytes and rendered diagnostic lines the
/// equivalent solo liftc run would have produced, plus service metadata
/// (status, E07xx code, retry hint, cache disposition).
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_SERVICE_PROTOCOL_H
#define LIFT_SERVICE_PROTOCOL_H

#include "service/Exec.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lift {
namespace service {

enum class Op { Exec, Ping, Stats, Shutdown };

const char *opName(Op O);

struct Request {
  Op Kind = Op::Exec;
  std::string Id; ///< opaque client token, echoed back verbatim
  ExecRequest Exec;
};

/// Encodes a request as one physical line (without the trailing '\n').
std::string encodeRequest(const Request &R);

/// Parses and validates one request line. On failure returns false with
/// a human-readable reason in \p Err (the daemon wraps it in E0702).
/// Unknown fields are ignored for forward compatibility; known fields
/// with out-of-range values are rejected, not clamped.
bool parseRequest(const std::string &Line, Request &R, std::string &Err);

/// Service disposition of a request, orthogonal to the pipeline exit
/// code: "ok" covers every request the pipeline actually ran (even ones
/// that exited 1); the other states never reached the pipeline.
enum class Status {
  Ok,
  Shed,         ///< admission queue full (E0701): retry after a backoff
  BadRequest,   ///< malformed frame or field (E0702): do not retry
  Error,        ///< service-side I/O or internal failure (E0703)
  ShuttingDown, ///< daemon draining (E0705): permanent for this daemon
};

const char *statusName(Status S);

struct Response {
  std::string Id;
  Status St = Status::Ok;
  std::string Code;    ///< stable "E07xx" id when St != Ok, else empty
  std::string Message; ///< human-readable detail for non-Ok statuses
  int Exit = 0;        ///< liftc exit-code contract (0/1/2)
  bool Cached = false; ///< compile stage served from the daemon cache
  int64_t RetryAfterMs = 0; ///< shed hint: suggested backoff floor
  std::string Stdout;
  std::vector<std::string> Diagnostics;
  /// Daemon counters for op=stats/ping replies, in emission order.
  std::vector<std::pair<std::string, int64_t>> Stats;
};

/// Encodes a response as one physical line (without the trailing '\n').
std::string encodeResponse(const Response &R);

/// Parses one response line; tolerant of unknown fields. Returns false
/// with a reason in \p Err when the line is not a response object.
bool parseResponse(const std::string &Line, Response &R, std::string &Err);

} // namespace service
} // namespace lift

#endif // LIFT_SERVICE_PROTOCOL_H
