//===- Server.cpp - liftd daemon core -------------------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Threading model: the event loop owns every fd and all Conn state;
// workers never touch a socket. The only shared state is the work queue,
// the completion queue, the compile cache and the stats cells, each
// behind its own lock (or atomic). Cancellation flows one way: the event
// loop sets a request's token, the simulator polls it at step-chunk
// checkpoints.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "ocl/FaultInject.h"
#include "support/FileLock.h"
#include "support/Hash.h"
#include "support/Json.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <fstream>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

using namespace lift;
using namespace lift::service;

namespace {

using Clock = std::chrono::steady_clock;

bool readFileAll(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

/// Atomic publish: write to a same-directory temp file, then rename.
/// Readers either see the old bytes or the new bytes, never a torn write.
bool writeFileAtomic(const std::string &Path, const std::string &Bytes) {
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    if (!Out.flush()) {
      std::remove(Tmp.c_str());
      return false;
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

bool makeDirs(const std::string &Path) {
  std::string Cur;
  for (size_t I = 0; I <= Path.size(); ++I) {
    if (I != Path.size() && Path[I] != '/') {
      Cur += Path[I];
      continue;
    }
    if (I != Path.size())
      Cur += '/';
    if (Cur.empty() || Cur == "/")
      continue;
    if (::mkdir(Cur.c_str(), 0755) != 0 && errno != EEXIST)
      return false;
  }
  return true;
}

void setNonBlockingCloexec(int Fd) {
  int Fl = ::fcntl(Fd, F_GETFL, 0);
  if (Fl >= 0)
    ::fcntl(Fd, F_SETFL, Fl | O_NONBLOCK);
  int Fd2 = ::fcntl(Fd, F_GETFD, 0);
  if (Fd2 >= 0)
    ::fcntl(Fd, F_SETFD, Fd2 | FD_CLOEXEC);
}

} // namespace

struct Server::Conn {
  uint64_t Id = 0;
  int Fd = -1;
  enum class State { Reading, InFlight, Writing } St = State::Reading;
  std::string In;
  std::string Out;
  size_t OutPos = 0;
  Clock::time_point ReadDeadline;
  bool HasDeadline = false;
  /// Shared with the request's WorkItem; survives the fd so a vanished
  /// client still cancels its in-flight work.
  std::shared_ptr<std::atomic<bool>> Cancel;
};

struct Server::WorkItem {
  uint64_t ConnId = 0;
  Request Req;
  std::shared_ptr<std::atomic<bool>> Cancel;
};

struct Server::Completion {
  uint64_t ConnId = 0;
  Response Resp;
};

/// One compile-cache slot: single-flight per key. \c Prod may be a
/// text-only product (disk-loaded, no kernel object); a run request on
/// such a slot claims Busy and upgrades it with a real compile.
struct Server::CacheEntry {
  std::mutex M;
  std::condition_variable Cv;
  bool Busy = false;
  std::shared_ptr<CompileProduct> Prod;
};

Server::Server(ServerOptions O) : Opts(std::move(O)) {
  if (Opts.Workers < 1)
    Opts.Workers = 1;
  if (Opts.QueueDepth < 0)
    Opts.QueueDepth = 0;
}

Server::~Server() {
  if (Started) {
    requestShutdown();
    wait();
  }
  if (WakeR >= 0)
    ::close(WakeR);
  if (WakeW >= 0)
    ::close(WakeW);
  if (ListenFd >= 0)
    ::close(ListenFd);
}

bool Server::start(std::string &Err) {
  if (Started) {
    Err = "server already started";
    return false;
  }
  if (!Opts.ArtifactDir.empty() && !makeDirs(Opts.ArtifactDir)) {
    Err = "cannot create artifact directory " + Opts.ArtifactDir + ": " +
          std::strerror(errno);
    return false;
  }

  int Pipe[2];
  if (::pipe(Pipe) != 0) {
    Err = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  WakeR = Pipe[0];
  WakeW = Pipe[1];
  setNonBlockingCloexec(WakeR);
  setNonBlockingCloexec(WakeW);

  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.empty() ||
      Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path must be 1.." +
          std::to_string(sizeof(Addr.sun_path) - 1) + " bytes";
    return false;
  }
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  setNonBlockingCloexec(ListenFd);

  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0) {
    if (errno != EADDRINUSE) {
      Err = "bind " + Opts.SocketPath + ": " + std::strerror(errno);
      return false;
    }
    // A socket file exists. A kill -9'd daemon leaves its path behind;
    // probe it — only steal the path when nothing answers (crash-only
    // restart), never from a live daemon.
    int Probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Probe < 0) {
      Err = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    int C = ::connect(Probe, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr));
    ::close(Probe);
    if (C == 0) {
      Err = "another daemon is already listening on " + Opts.SocketPath;
      return false;
    }
    ::unlink(Opts.SocketPath.c_str());
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
               sizeof(Addr)) != 0) {
      Err = "bind " + Opts.SocketPath + ": " + std::strerror(errno);
      return false;
    }
  }
  if (::listen(ListenFd, 128) != 0) {
    Err = "listen " + Opts.SocketPath + ": " + std::strerror(errno);
    return false;
  }

  EventThread = std::thread([this] { eventLoop(); });
  for (int I = 0; I != Opts.Workers; ++I)
    WorkerThreads.emplace_back([this] { workerLoop(); });
  Started = true;
  return true;
}

void Server::requestShutdown() { signalShutdown(); }

void Server::signalShutdown() {
  // Async-signal-safe: one store, one write. Nothing else.
  ShutdownFlag.store(true, std::memory_order_relaxed);
  if (WakeW >= 0) {
    char B = 'q';
    ssize_t Ignored = ::write(WakeW, &B, 1);
    (void)Ignored;
  }
}

void Server::wait() {
  if (EventThread.joinable())
    EventThread.join();
}

ServerStats Server::stats() const {
  ServerStats R;
  R.Accepted = S.Accepted.load();
  R.Requests = S.Requests.load();
  R.ExecOk = S.ExecOk.load();
  R.ExecDiag = S.ExecDiag.load();
  R.ExecInternal = S.ExecInternal.load();
  R.Shed = S.Shed.load();
  R.BadRequest = S.BadRequest.load();
  R.Cancelled = S.Cancelled.load();
  R.IoErrors = S.IoErrors.load();
  R.Compiles = S.Compiles.load();
  R.DedupeHits = S.DedupeHits.load();
  R.DiskHits = S.DiskHits.load();
  R.Active = S.Active.load();
  R.Queued = S.Queued.load();
  return R;
}

void Server::fillStats(Response &R) const {
  ServerStats St = stats();
  R.Stats.emplace_back("accepted", St.Accepted);
  R.Stats.emplace_back("requests", St.Requests);
  R.Stats.emplace_back("exec_ok", St.ExecOk);
  R.Stats.emplace_back("exec_diag", St.ExecDiag);
  R.Stats.emplace_back("exec_internal", St.ExecInternal);
  R.Stats.emplace_back("shed", St.Shed);
  R.Stats.emplace_back("bad_request", St.BadRequest);
  R.Stats.emplace_back("cancelled", St.Cancelled);
  R.Stats.emplace_back("io_errors", St.IoErrors);
  R.Stats.emplace_back("compiles", St.Compiles);
  R.Stats.emplace_back("dedupe_hits", St.DedupeHits);
  R.Stats.emplace_back("disk_hits", St.DiskHits);
  R.Stats.emplace_back("active", St.Active);
  R.Stats.emplace_back("queued", St.Queued);
  R.Stats.emplace_back("workers", Opts.Workers);
  R.Stats.emplace_back("queue_depth", Opts.QueueDepth);
}

//===----------------------------------------------------------------------===//
// Event loop
//===----------------------------------------------------------------------===//

void Server::eventLoop() {
  std::vector<pollfd> Pfds;
  std::vector<uint64_t> PfdConn;
  Clock::time_point DrainDeadline{};
  bool DrainCancelIssued = false;

  for (;;) {
    if (Draining) {
      bool QueueEmpty;
      {
        std::lock_guard<std::mutex> L(QueueM);
        QueueEmpty = WorkQ.empty();
      }
      if (QueueEmpty && S.Active.load() == 0 && Conns.empty())
        break;
    }

    Pfds.clear();
    PfdConn.clear();
    Pfds.push_back({WakeR, POLLIN, 0});
    PfdConn.push_back(0);
    if (ListenFd >= 0 && !Draining) {
      Pfds.push_back({ListenFd, POLLIN, 0});
      PfdConn.push_back(0);
    }
    for (const auto &[Id, C] : Conns) {
      if (C->Fd < 0)
        continue;
      short Ev =
          C->St == Conn::State::Writing ? POLLOUT : POLLIN;
      Pfds.push_back({C->Fd, Ev, 0});
      PfdConn.push_back(Id);
    }

    Clock::time_point Now = Clock::now();
    int Timeout = -1;
    auto Consider = [&](Clock::time_point T) {
      int64_t Ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(T - Now)
              .count();
      if (Ms < 0)
        Ms = 0;
      if (Ms > 60000)
        Ms = 60000;
      if (Timeout < 0 || Ms < Timeout)
        Timeout = static_cast<int>(Ms);
    };
    for (const auto &[Id, C] : Conns)
      if (C->Fd >= 0 && C->St == Conn::State::Reading && C->HasDeadline)
        Consider(C->ReadDeadline);
    if (Draining && !DrainCancelIssued)
      Consider(DrainDeadline);

    ::poll(Pfds.data(), static_cast<nfds_t>(Pfds.size()), Timeout);

    if (Pfds[0].revents & POLLIN) {
      char Buf[256];
      while (::read(WakeR, Buf, sizeof(Buf)) > 0) {
      }
    }
    if (ShutdownFlag.load(std::memory_order_relaxed) && !Draining) {
      startDrain();
      DrainDeadline =
          Clock::now() + std::chrono::milliseconds(Opts.DrainMs);
      DrainCancelIssued = false;
    }

    // Deliver completed responses before reading new bytes: a pipelining
    // client never observes responses out of order because each
    // connection carries exactly one request.
    std::vector<Completion> Done;
    {
      std::lock_guard<std::mutex> L(DoneM);
      Done.swap(DoneQ);
    }
    for (Completion &D : Done) {
      auto It = Conns.find(D.ConnId);
      if (It == Conns.end())
        continue;
      Conn &C = *It->second;
      if (C.Fd < 0) {
        // Client vanished mid-flight; the work still warmed the cache.
        Conns.erase(It);
        continue;
      }
      respond(C, D.Resp);
    }

    for (size_t I = 1; I < Pfds.size(); ++I) {
      if (Pfds[I].revents == 0)
        continue;
      if (PfdConn[I] == 0) {
        if (ListenFd >= 0 && Pfds[I].fd == ListenFd)
          acceptReady();
        continue;
      }
      auto It = Conns.find(PfdConn[I]);
      if (It == Conns.end() || It->second->Fd != Pfds[I].fd)
        continue;
      Conn &C = *It->second;
      if (C.St == Conn::State::Reading &&
          (Pfds[I].revents & (POLLIN | POLLHUP | POLLERR))) {
        connReadable(C);
      } else if (C.St == Conn::State::InFlight &&
                 (Pfds[I].revents & (POLLIN | POLLHUP | POLLERR))) {
        // The only thing a client can tell us mid-flight is that it
        // stopped caring: EOF or error cancels the request
        // cooperatively. Stray extra bytes are ignored.
        char Buf[4096];
        for (;;) {
          ssize_t N = ::recv(C.Fd, Buf, sizeof(Buf), 0);
          if (N > 0)
            continue;
          if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
          if (N < 0 && errno == EINTR)
            continue;
          clientGone(C);
          break;
        }
      } else if (C.St == Conn::State::Writing &&
                 (Pfds[I].revents & (POLLOUT | POLLHUP | POLLERR))) {
        connWritable(C);
      }
    }

    // Read-deadline enforcement (collect first: closeConn mutates Conns).
    Now = Clock::now();
    std::vector<uint64_t> Expired;
    for (const auto &[Id, C] : Conns)
      if (C->Fd >= 0 && C->St == Conn::State::Reading && C->HasDeadline &&
          Now >= C->ReadDeadline)
        Expired.push_back(Id);
    for (uint64_t Id : Expired) {
      auto It = Conns.find(Id);
      if (It != Conns.end()) {
        S.IoErrors.fetch_add(1);
        closeConn(*It->second);
      }
    }

    if (Draining && !DrainCancelIssued && Clock::now() >= DrainDeadline) {
      // Drain budget exhausted: cancel everything still running or
      // queued. Requests answer E0516 promptly instead of holding the
      // daemon open.
      for (const auto &[Id, C] : Conns)
        if (C->Cancel)
          C->Cancel->store(true);
      DrainCancelIssued = true;
    }
  }

  // Idle and draining: release the workers and fold the pool.
  {
    std::lock_guard<std::mutex> L(QueueM);
    WorkersStop = true;
  }
  QueueCv.notify_all();
  for (std::thread &T : WorkerThreads)
    T.join();
  WorkerThreads.clear();
}

void Server::startDrain() {
  Draining = true;
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
    // Unlink immediately so new clients get a crisp connect failure
    // (E0706) instead of a connection that would only be answered 705.
    ::unlink(Opts.SocketPath.c_str());
  }
}

void Server::acceptReady() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return; // EAGAIN or transient accept failure: next poll retries
    }
    if (ocl::fault::shouldFail(ocl::fault::Site::Accept)) {
      // Injected accept outage: the connection is dropped before any
      // byte is exchanged; the client sees EOF (E0703) and retries.
      ::close(Fd);
      S.IoErrors.fetch_add(1);
      continue;
    }
    S.Accepted.fetch_add(1);
    setNonBlockingCloexec(Fd);
    auto C = std::make_unique<Conn>();
    C->Id = NextConnId++;
    C->Fd = Fd;
    if (Opts.IoTimeoutMs > 0) {
      C->ReadDeadline =
          Clock::now() + std::chrono::milliseconds(Opts.IoTimeoutMs);
      C->HasDeadline = true;
    }
    Conns.emplace(C->Id, std::move(C));
  }
}

void Server::connReadable(Conn &C) {
  if (ocl::fault::shouldFail(ocl::fault::Site::RequestRead)) {
    S.IoErrors.fetch_add(1);
    closeConn(C);
    return;
  }
  char Buf[65536];
  for (;;) {
    ssize_t N = ::recv(C.Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      C.In.append(Buf, static_cast<size_t>(N));
      if (C.In.size() > Opts.MaxRequestBytes) {
        S.Requests.fetch_add(1);
        S.BadRequest.fetch_add(1);
        Response R;
        R.St = Status::BadRequest;
        R.Code = "E0702";
        R.Message = "request exceeds " +
                    std::to_string(Opts.MaxRequestBytes) + " bytes";
        R.Exit = 1;
        respond(C, R);
        return;
      }
      size_t Nl = C.In.find('\n');
      if (Nl != std::string::npos) {
        handleLine(C, C.In.substr(0, Nl));
        return;
      }
      continue;
    }
    if (N == 0) {
      // EOF before a complete request line.
      S.IoErrors.fetch_add(1);
      closeConn(C);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return;
    if (errno == EINTR)
      continue;
    S.IoErrors.fetch_add(1);
    closeConn(C);
    return;
  }
}

void Server::handleLine(Conn &C, const std::string &Line) {
  S.Requests.fetch_add(1);
  Request Req;
  std::string Err;
  if (!parseRequest(Line, Req, Err)) {
    S.BadRequest.fetch_add(1);
    Response R;
    R.Id = Req.Id;
    R.St = Status::BadRequest;
    R.Code = "E0702";
    R.Message = Err;
    R.Exit = 1;
    respond(C, R);
    return;
  }

  switch (Req.Kind) {
  case Op::Ping: {
    Response R;
    R.Id = Req.Id;
    R.Message = "pong";
    respond(C, R);
    return;
  }
  case Op::Stats: {
    Response R;
    R.Id = Req.Id;
    fillStats(R);
    respond(C, R);
    return;
  }
  case Op::Shutdown: {
    Response R;
    R.Id = Req.Id;
    R.Message = "draining";
    respond(C, R);
    if (!Draining) {
      ShutdownFlag.store(true, std::memory_order_relaxed);
      // startDrain runs on the next loop pass via the shutdown check;
      // poke the pipe so that pass happens immediately.
      signalShutdown();
    }
    return;
  }
  case Op::Exec:
    break;
  }

  if (Draining) {
    Response R;
    R.Id = Req.Id;
    R.St = Status::ShuttingDown;
    R.Code = "E0705";
    R.Message = "daemon is draining; no new work accepted";
    R.Exit = 1;
    respond(C, R);
    return;
  }
  // Admission control. Queued is only incremented here (event thread)
  // and workers increment Active before decrementing Queued, so reading
  // Queued first can overcount but never undercount the outstanding
  // work: the daemon may shed one request early, it never over-admits.
  bool Admit = true;
  if (ocl::fault::shouldFail(ocl::fault::Site::QueueAdmit))
    Admit = false;
  else if (S.Queued.load() + S.Active.load() >=
           static_cast<int64_t>(Opts.Workers) + Opts.QueueDepth)
    Admit = false;
  if (!Admit) {
    S.Shed.fetch_add(1);
    Response R;
    R.Id = Req.Id;
    R.St = Status::Shed;
    R.Code = "E0701";
    R.Message = "admission queue full; retry later";
    R.Exit = 1;
    R.RetryAfterMs = Opts.RetryAfterMs;
    respond(C, R);
    return;
  }

  C.St = Conn::State::InFlight;
  C.HasDeadline = false;
  C.Cancel = std::make_shared<std::atomic<bool>>(false);
  auto W = std::make_unique<WorkItem>();
  W->ConnId = C.Id;
  W->Req = std::move(Req);
  W->Cancel = C.Cancel;
  S.Queued.fetch_add(1);
  {
    std::lock_guard<std::mutex> L(QueueM);
    WorkQ.push_back(std::move(W));
  }
  QueueCv.notify_one();
}

void Server::respond(Conn &C, const Response &R) {
  if (ocl::fault::shouldFail(ocl::fault::Site::RequestWrite)) {
    // Injected write outage: the response is lost and the connection
    // dropped; the client sees EOF (E0703) and retries.
    S.IoErrors.fetch_add(1);
    closeConn(C);
    return;
  }
  C.Out = encodeResponse(R);
  C.Out += '\n';
  C.OutPos = 0;
  C.St = Conn::State::Writing;
  connWritable(C);
}

void Server::connWritable(Conn &C) {
  while (C.OutPos < C.Out.size()) {
    ssize_t N = ::send(C.Fd, C.Out.data() + C.OutPos,
                       C.Out.size() - C.OutPos, MSG_NOSIGNAL);
    if (N > 0) {
      C.OutPos += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return; // POLLOUT resumes
    if (N < 0 && errno == EINTR)
      continue;
    S.IoErrors.fetch_add(1);
    closeConn(C);
    return;
  }
  closeConn(C); // response fully written; one request per connection
}

void Server::closeConn(Conn &C) {
  if (C.Fd >= 0)
    ::close(C.Fd);
  Conns.erase(C.Id); // invalidates C
}

void Server::clientGone(Conn &C) {
  // Keep the Conn entry (the completion still needs a discard target)
  // but close the fd and cancel the work cooperatively.
  S.Cancelled.fetch_add(1);
  if (C.Cancel)
    C.Cancel->store(true);
  ::close(C.Fd);
  C.Fd = -1;
}

//===----------------------------------------------------------------------===//
// Workers
//===----------------------------------------------------------------------===//

void Server::workerLoop() {
  for (;;) {
    std::unique_ptr<WorkItem> W;
    {
      std::unique_lock<std::mutex> L(QueueM);
      QueueCv.wait(L, [&] { return WorkersStop || !WorkQ.empty(); });
      if (WorkQ.empty())
        return; // WorkersStop and nothing left
      W = std::move(WorkQ.front());
      WorkQ.pop_front();
    }
    // Active rises before Queued falls: admission reads Queued then
    // Active and must never see the item missing from both.
    S.Active.fetch_add(1);
    S.Queued.fetch_sub(1);
    Completion D;
    D.ConnId = W->ConnId;
    try {
      D.Resp = handleExec(*W);
    } catch (const std::exception &E) {
      D.Resp.Id = W->Req.Id;
      D.Resp.Exit = 2;
      D.Resp.Diagnostics.push_back(std::string("internal error: ") +
                                   E.what());
      S.ExecInternal.fetch_add(1);
    }
    S.Active.fetch_sub(1);
    {
      std::lock_guard<std::mutex> L(DoneM);
      DoneQ.push_back(std::move(D));
    }
    // Wake the event loop to deliver the response.
    char B = 'c';
    ssize_t Ignored = ::write(WakeW, &B, 1);
    (void)Ignored;
  }
}

Response Server::handleExec(WorkItem &W) {
  ExecRequest &E = W.Req.Exec;
  Response R;
  R.Id = W.Req.Id;

  bool NeedKernel = E.Run || E.DumpNative;
  bool Cached = false;
  std::shared_ptr<CompileProduct> Prod =
      obtainProduct(E, NeedKernel, Cached);

  ExecContext Ctx;
  Ctx.Cancel = W.Cancel.get();
  Ctx.MaxSteps = Opts.MaxSteps;
  Ctx.TimeoutMs = Opts.TimeoutMs;
  Ctx.MaxMemoryBytes = Opts.MaxMemoryBytes;
  Ctx.MaxThreads = Opts.MaxThreads;
  Ctx.MaxHostBufferBytes = Opts.MaxHostBufferBytes;

  ExecOutcome Out;
  if (NeedKernel && Prod->Kernel) {
    // CompiledKernel carries mutable per-launch scratch (value slots,
    // resolved cost tables); concurrent launches of one shared kernel
    // must serialize. Distinct kernels run fully in parallel.
    std::lock_guard<std::mutex> L(Prod->RunM);
    Out = execRequest(E, Ctx, Prod.get());
  } else {
    Out = execRequest(E, Ctx, Prod.get());
  }

  R.Exit = Out.Exit;
  R.Cached = Cached;
  R.Stdout = std::move(Out.Stdout);
  R.Diagnostics = std::move(Out.Diags);
  if (Out.Exit == 0)
    S.ExecOk.fetch_add(1);
  else if (Out.Exit == 1)
    S.ExecDiag.fetch_add(1);
  else
    S.ExecInternal.fetch_add(1);
  return R;
}

//===----------------------------------------------------------------------===//
// Compile cache: in-memory single-flight + hash-verified disk artifacts
//===----------------------------------------------------------------------===//

std::shared_ptr<CompileProduct>
Server::obtainProduct(const ExecRequest &E, bool NeedKernel, bool &Cached) {
  std::string Key = compileKey(E);
  std::shared_ptr<CacheEntry> Ent;
  {
    std::lock_guard<std::mutex> L(CacheM);
    std::shared_ptr<CacheEntry> &Slot = Cache[Key];
    if (!Slot)
      Slot = std::make_shared<CacheEntry>();
    Ent = Slot;
  }

  std::unique_lock<std::mutex> L(Ent->M);
  for (;;) {
    // A cached product serves the request when the request needs no
    // kernel object (text-only), when it carries one, or when the
    // compile failed (the run stages exit on the replayed diagnostics
    // long before any kernel use) — so repeated broken requests are
    // answered from cache instead of recompiling every time.
    if (Ent->Prod &&
        (!NeedKernel || Ent->Prod->Kernel || !Ent->Prod->Ok ||
         !Ent->Prod->Parsed)) {
      Cached = true;
      S.DedupeHits.fetch_add(1);
      return Ent->Prod;
    }
    if (!Ent->Busy)
      break;
    // Single-flight: somebody is already compiling this key; every
    // concurrent identical miss collapses onto that one compile.
    Ent->Cv.wait(L);
  }
  Ent->Busy = true;
  L.unlock();

  std::shared_ptr<CompileProduct> Prod;
  bool FromDisk = false;
  try {
    if (!NeedKernel && !Opts.ArtifactDir.empty()) {
      Prod = loadArtifact(Key);
      FromDisk = Prod != nullptr;
    }
    if (!Prod) {
      Prod = compileRequest(E);
      S.Compiles.fetch_add(1);
      if (!Opts.ArtifactDir.empty())
        storeArtifact(Key, *Prod);
    } else {
      S.DiskHits.fetch_add(1);
    }
  } catch (...) {
    L.lock();
    Ent->Busy = false;
    Ent->Cv.notify_all();
    throw;
  }

  L.lock();
  Ent->Prod = Prod;
  Ent->Busy = false;
  Ent->Cv.notify_all();
  Cached = FromDisk;
  return Prod;
}

std::shared_ptr<CompileProduct>
Server::loadArtifact(const std::string &Key) {
  std::string Path = Opts.ArtifactDir + "/" + Key + ".json";
  std::string HashPath = Opts.ArtifactDir + "/" + Key + ".hash";
  if (ocl::fault::shouldFail(ocl::fault::Site::CacheRead))
    return nullptr; // injected read outage: treated as a miss
  std::string Text, Stored;
  if (!readFileAll(Path, Text) || !readFileAll(HashPath, Stored))
    return nullptr;
  while (!Stored.empty() &&
         (Stored.back() == '\n' || Stored.back() == '\r'))
    Stored.pop_back();
  if (Stored != support::hex16(support::fnv1a64(Text))) {
    // A crash mid-write (or disk rot) left a torn artifact. Quarantine
    // it — never serve bytes that fail their sidecar — and recompile.
    std::rename(Path.c_str(), (Path + ".corrupt").c_str());
    std::rename(HashPath.c_str(), (HashPath + ".corrupt").c_str());
    std::fprintf(stderr,
                 "liftd: warning[E0608]: artifact %s failed its integrity "
                 "check; quarantined, recompiling\n",
                 Path.c_str());
    return nullptr;
  }

  json::Value V;
  if (!json::parse(Text, V) || V.K != json::Value::Obj)
    return nullptr;
  if (V.strField("schema") != "liftd-v1")
    return nullptr;
  auto P = std::make_shared<CompileProduct>();
  P->Parsed = V.boolField("parsed", false);
  P->Ok = V.boolField("ok", false);
  P->PrintedIl = V.strField("il");
  P->KernelSource = V.strField("kernel");
  if (const json::Value *Ds = V.field("diags"))
    if (Ds->K == json::Value::Arr)
      for (const json::Value &D : Ds->A) {
        if (D.K != json::Value::Obj)
          continue;
        Diagnostic Dg;
        int Sev = static_cast<int>(D.numField("sev", 2));
        Dg.Severity = Sev == 0   ? DiagSeverity::Note
                      : Sev == 1 ? DiagSeverity::Warning
                                 : DiagSeverity::Error;
        Dg.Code = static_cast<DiagCode>(
            static_cast<unsigned>(D.numField("code", 301)));
        Dg.Loc.Line = static_cast<unsigned>(D.numField("line", 0));
        Dg.Loc.Context = D.strField("ctx");
        Dg.Message = D.strField("msg");
        if (const json::Value *Ns = D.field("notes"))
          if (Ns->K == json::Value::Arr)
            for (const json::Value &NV : Ns->A)
              if (NV.K == json::Value::Str)
                Dg.Notes.push_back(NV.S);
        P->Diags.push_back(std::move(Dg));
      }
  // Text-only product: no kernel object. Compile-only requests are
  // served as-is; a run request upgrades the slot with a real compile.
  return P;
}

void Server::storeArtifact(const std::string &Key,
                           const CompileProduct &P) {
  std::string Path = Opts.ArtifactDir + "/" + Key + ".json";
  // Cross-process single-flight for daemons sharing an artifact dir;
  // best-effort (rename keeps an unguarded race safe, last writer wins).
  support::FileLock Lock = support::FileLock::acquire(Path + ".lock");
  if (ocl::fault::shouldFail(ocl::fault::Site::CacheWrite)) {
    std::fprintf(stderr,
                 "liftd: warning[E0609]: artifact %s not persisted "
                 "(injected write outage)\n",
                 Path.c_str());
    return;
  }

  std::string J = "{\"schema\":\"liftd-v1\",\"key\":";
  J += json::quoted(Key);
  J += ",\"parsed\":";
  J += P.Parsed ? "true" : "false";
  J += ",\"ok\":";
  J += P.Ok ? "true" : "false";
  J += ",\"il\":";
  J += json::quoted(P.PrintedIl);
  J += ",\"kernel\":";
  J += json::quoted(P.KernelSource);
  J += ",\"diags\":[";
  for (size_t I = 0; I != P.Diags.size(); ++I) {
    const Diagnostic &D = P.Diags[I];
    if (I)
      J += ',';
    J += "{\"sev\":";
    J += std::to_string(static_cast<int>(D.Severity));
    J += ",\"code\":";
    J += std::to_string(static_cast<unsigned>(D.Code));
    J += ",\"line\":";
    J += std::to_string(D.Loc.Line);
    J += ",\"ctx\":";
    J += json::quoted(D.Loc.Context);
    J += ",\"msg\":";
    J += json::quoted(D.Message);
    J += ",\"notes\":[";
    for (size_t N = 0; N != D.Notes.size(); ++N) {
      if (N)
        J += ',';
      J += json::quoted(D.Notes[N]);
    }
    J += "]}";
  }
  J += "]}";

  // Artifact first, sidecar second: a crash between the two leaves a
  // missing or stale sidecar, which load treats as corrupt — never a
  // verified-but-wrong artifact.
  if (!writeFileAtomic(Path, J) ||
      !writeFileAtomic(Opts.ArtifactDir + "/" + Key + ".hash",
                       support::hex16(support::fnv1a64(J)) + "\n")) {
    std::fprintf(stderr,
                 "liftd: warning[E0609]: artifact %s not persisted: %s\n",
                 Path.c_str(), std::strerror(errno));
  }
}
