//===- Server.h - liftd daemon core -----------------------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The liftd compile-and-run service core (docs/SERVICE.md): a Unix-domain
/// socket daemon accepting concurrent newline-delimited JSON requests
/// (service/Protocol.h), with
///
///  - admission control: a bounded work queue in front of a fixed worker
///    pool; requests beyond the bound are shed deterministically with
///    E0701 and a retry hint instead of queuing without bound;
///  - request isolation: every request gets its own diagnostic engine,
///    buffer set and cancellation token; a failing request answers with a
///    clean E0xxx reply while its neighbors' responses stay bit-identical
///    to solo runs; a disconnected client cancels its request
///    cooperatively (E0516);
///  - a crash-only lifecycle: compiles are content-addressed by
///    \c compileKey and deduplicated in memory (single-flight) and on
///    disk (hash-verified artifacts), so a kill -9 loses no correctness —
///    a restarted daemon re-verifies artifacts before reuse and
///    recompiles anything that fails its sidecar check;
///  - fault-injection coverage: the accept / request-read / request-write
///    / queue-admit paths are first-class \c fault::Site checkpoints.
///
/// The event loop owns every fd (listener, self-pipe, connections);
/// worker threads only compute responses and hand them back over a
/// completion queue. Nothing in the server installs signal handlers —
/// the driver (tools/liftd) forwards SIGTERM/SIGINT via the
/// async-signal-safe \c signalShutdown.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_SERVICE_SERVER_H
#define LIFT_SERVICE_SERVER_H

#include "service/Protocol.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace lift {
namespace service {

struct ServerOptions {
  std::string SocketPath;
  /// Worker threads = maximum requests executing concurrently
  /// (--max-inflight).
  int Workers = 2;
  /// Admitted-but-waiting requests beyond the inflight bound
  /// (--queue-depth). 0 = shed whenever every worker is busy.
  int QueueDepth = 16;
  /// Per-connection read/idle deadline: a client that connects but never
  /// completes a request line within this window is dropped (E0703 on
  /// its side). 0 = no deadline.
  int64_t IoTimeoutMs = 5000;
  /// SIGTERM drain budget: queued and inflight requests get this long to
  /// finish; past it their cancellation tokens are set and they answer
  /// E0516 promptly. 0 = cancel immediately.
  int64_t DrainMs = 2000;
  /// Server-side ceilings clamped onto every request's own limits
  /// (0 = no ceiling). MaxThreads defaults to 1: request-level
  /// parallelism comes from the worker pool, and the process-wide
  /// simulator thread pool serializes multi-threaded launches anyway.
  uint64_t MaxSteps = 0;
  int64_t TimeoutMs = 0;
  uint64_t MaxMemoryBytes = 0;
  int MaxThreads = 1;
  /// Host-buffer materialization cap per request (--max-request-memory);
  /// see ExecContext::MaxHostBufferBytes. 0 = off.
  uint64_t MaxHostBufferBytes = 256ull << 20;
  /// Directory for hash-verified compile artifacts ("" = in-memory
  /// dedupe only, nothing survives a restart).
  std::string ArtifactDir;
  /// Largest accepted request frame; longer lines answer E0702.
  uint64_t MaxRequestBytes = 8ull << 20;
  /// Backoff floor suggested to shed clients (retry_after_ms).
  int64_t RetryAfterMs = 50;
};

/// Monotonic counters exposed via op=stats and asserted by the service
/// tests. Snapshot semantics: values are read individually (relaxed);
/// cross-counter identities only hold on an idle daemon.
struct ServerStats {
  int64_t Accepted = 0;   ///< connections accepted (post fault check)
  int64_t Requests = 0;   ///< complete request lines parsed or rejected
  int64_t ExecOk = 0;     ///< exec responses with exit 0
  int64_t ExecDiag = 0;   ///< exec responses with exit 1
  int64_t ExecInternal = 0; ///< exec responses with exit 2
  int64_t Shed = 0;       ///< E0701 admission rejections
  int64_t BadRequest = 0; ///< E0702 malformed frames
  int64_t Cancelled = 0;  ///< requests whose client vanished mid-flight
  int64_t IoErrors = 0;   ///< dropped connections (read/write/deadline)
  int64_t Compiles = 0;   ///< compile stages actually executed
  int64_t DedupeHits = 0; ///< requests served from the in-memory product
  int64_t DiskHits = 0;   ///< requests served from a hash-verified artifact
  int64_t Active = 0;     ///< gauge: requests executing right now
  int64_t Queued = 0;     ///< gauge: requests admitted and waiting
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket (recovering a stale path left by a kill -9 sibling
  /// when nothing answers on it), spawns the event loop and the worker
  /// pool. Returns false with a reason in \p Err.
  bool start(std::string &Err);

  /// Requests a drain from normal (thread) context.
  void requestShutdown();

  /// Async-signal-safe shutdown request: one atomic store and one
  /// self-pipe write. The only Server entry point a signal handler may
  /// call.
  void signalShutdown();

  /// Blocks until the drain completes and every thread has joined.
  void wait();

  ServerStats stats() const;
  const ServerOptions &options() const { return Opts; }

private:
  struct Conn;
  struct WorkItem;
  struct CacheEntry;
  struct Completion;

  void eventLoop();
  void workerLoop();

  void acceptReady();
  void connReadable(Conn &C);
  void handleLine(Conn &C, const std::string &Line);
  void respond(Conn &C, const Response &R);
  void connWritable(Conn &C);
  void closeConn(Conn &C);
  void clientGone(Conn &C);
  void startDrain();
  void fillStats(Response &R) const;

  Response handleExec(WorkItem &W);
  std::shared_ptr<CompileProduct> obtainProduct(const ExecRequest &E,
                                                bool NeedKernel,
                                                bool &Cached);
  std::shared_ptr<CompileProduct> loadArtifact(const std::string &Key);
  void storeArtifact(const std::string &Key, const CompileProduct &P);

  ServerOptions Opts;

  int ListenFd = -1;
  int WakeR = -1, WakeW = -1; ///< self-pipe: completions, shutdown

  std::thread EventThread;
  std::vector<std::thread> WorkerThreads;
  bool Started = false;

  std::atomic<bool> ShutdownFlag{false};
  bool Draining = false; ///< event-loop thread only

  // Work queue (admission-bounded) and completion queue.
  std::mutex QueueM;
  std::condition_variable QueueCv;
  std::deque<std::unique_ptr<WorkItem>> WorkQ;
  bool WorkersStop = false;

  std::mutex DoneM;
  std::vector<Completion> DoneQ;

  // Connections, owned by the event loop. Keyed by a monotonically
  // increasing id so completions can outlive a vanished connection.
  std::map<uint64_t, std::unique_ptr<Conn>> Conns;
  uint64_t NextConnId = 1;

  // Content-addressed compile cache (single-flight per key).
  std::mutex CacheM;
  std::map<std::string, std::shared_ptr<CacheEntry>> Cache;

  struct StatsCells {
    std::atomic<int64_t> Accepted{0}, Requests{0}, ExecOk{0}, ExecDiag{0},
        ExecInternal{0}, Shed{0}, BadRequest{0}, Cancelled{0}, IoErrors{0},
        Compiles{0}, DedupeHits{0}, DiskHits{0}, Active{0}, Queued{0};
  };
  mutable StatsCells S;
};

} // namespace service
} // namespace lift

#endif // LIFT_SERVICE_SERVER_H
