//===- Casting.h - isa/cast/dyn_cast templates ------------------*- C++ -*-===//
//
// Part of the lift-cpp project, a C++ reproduction of the Lift compiler
// (Steuwer, Remmelg, Dubach; CGO 2017). MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled RTTI in the LLVM style: classes opt in by implementing a
/// static \c classof(const Base*) predicate, and clients query the dynamic
/// kind with \c isa<>, \c cast<> and \c dyn_cast<>.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_SUPPORT_CASTING_H
#define LIFT_SUPPORT_CASTING_H

#include <cassert>
#include <memory>
#include <type_traits>

namespace lift {

/// Returns true if \p Val is an instance of \p To (or a subclass of it).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  if constexpr (std::is_base_of_v<To, From>)
    return true;
  else
    return To::classof(Val);
}

template <typename To, typename From>
bool isa(const std::shared_ptr<From> &Val) {
  return isa<To>(Val.get());
}

/// Checked cast: asserts that \p Val is an instance of \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

template <typename To, typename From>
auto cast(const std::shared_ptr<From> &Val) {
  using ToTy = std::conditional_t<std::is_const_v<From>, const To, To>;
  assert(isa<To>(Val.get()) && "cast<> argument of incompatible type");
  return std::static_pointer_cast<ToTy>(Val);
}

/// Checking cast: returns null if \p Val is not an instance of \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

template <typename To, typename From>
auto dyn_cast(const std::shared_ptr<From> &Val) {
  using ToTy = std::conditional_t<std::is_const_v<From>, const To, To>;
  return Val && isa<To>(Val.get()) ? std::static_pointer_cast<ToTy>(Val)
                                   : std::shared_ptr<ToTy>();
}

/// Like dyn_cast but tolerates null input.
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace lift

#endif // LIFT_SUPPORT_CASTING_H
