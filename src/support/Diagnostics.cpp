//===- Diagnostics.cpp - Recoverable diagnostics engine -------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <cstdio>

using namespace lift;

const char *lift::severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "?";
}

std::string lift::diagCodeId(DiagCode C) {
  char Buf[8];
  std::snprintf(Buf, sizeof(Buf), "E%04u", static_cast<unsigned>(C));
  return Buf;
}

std::string DiagLocation::str() const {
  if (!valid())
    return "";
  std::string R = " (";
  if (Line != 0) {
    R += "line " + std::to_string(Line);
    if (!Context.empty())
      R += ", ";
  }
  if (!Context.empty())
    R += "in " + Context;
  R += ")";
  return R;
}

std::string Diagnostic::render() const {
  std::string R = severityName(Severity);
  if (Severity != DiagSeverity::Note)
    R += "[" + diagCodeId(Code) + "]";
  R += ": " + Message + Loc.str();
  for (const std::string &N : Notes)
    R += "\n  note: " + N;
  return R;
}

void lift::throwDiag(DiagCode Code, DiagLocation Loc, std::string Message,
                     std::vector<std::string> Notes) {
  Diagnostic D;
  D.Severity = DiagSeverity::Error;
  D.Code = Code;
  D.Loc = std::move(Loc);
  D.Message = std::move(Message);
  D.Notes = std::move(Notes);
  throw DiagnosticError(std::move(D));
}

void DiagnosticEngine::report(Diagnostic D) {
  if (D.Severity == DiagSeverity::Error) {
    if (NumErrors >= MaxErrors) {
      if (!LimitHit) {
        LimitHit = true;
        Diagnostic Note;
        Note.Severity = DiagSeverity::Note;
        Note.Message = "too many errors; further errors suppressed "
                       "(raise with --max-errors)";
        Diags.push_back(std::move(Note));
      }
      ++NumErrors;
      return;
    }
    ++NumErrors;
  }
  Diags.push_back(std::move(D));
}

void DiagnosticEngine::error(DiagCode Code, DiagLocation Loc,
                             std::string Message,
                             std::vector<std::string> Notes) {
  Diagnostic D;
  D.Severity = DiagSeverity::Error;
  D.Code = Code;
  D.Loc = std::move(Loc);
  D.Message = std::move(Message);
  D.Notes = std::move(Notes);
  report(std::move(D));
}

void DiagnosticEngine::warning(DiagCode Code, DiagLocation Loc,
                               std::string Message) {
  Diagnostic D;
  D.Severity = DiagSeverity::Warning;
  D.Code = Code;
  D.Loc = std::move(Loc);
  D.Message = std::move(Message);
  report(std::move(D));
}

void DiagnosticEngine::note(DiagLocation Loc, std::string Message) {
  Diagnostic D;
  D.Severity = DiagSeverity::Note;
  D.Loc = std::move(Loc);
  D.Message = std::move(Message);
  report(std::move(D));
}

void DiagnosticEngine::fatal(DiagCode Code, DiagLocation Loc,
                             std::string Message,
                             std::vector<std::string> Notes) {
  Diagnostic D;
  D.Severity = DiagSeverity::Error;
  D.Code = Code;
  D.Loc = std::move(Loc);
  D.Message = std::move(Message);
  D.Notes = std::move(Notes);
  report(D);
  DiagnosticError E(std::move(D));
  E.Recorded = true;
  throw E;
}

std::string DiagnosticEngine::render() const {
  std::string R;
  for (const Diagnostic &D : Diags) {
    if (!R.empty())
      R += "\n";
    R += D.render();
  }
  return R;
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
  LimitHit = false;
}
