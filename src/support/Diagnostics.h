//===- Diagnostics.h - Recoverable diagnostics engine -----------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recoverable error-handling subsystem. Malformed *input* (IL text,
/// ill-typed programs, out-of-range accesses in the simulated runtime) must
/// never crash the compiler: input-triggered failure paths raise a
/// \c DiagnosticError carrying a structured \c Diagnostic (severity, stable
/// error code, source/IR location, notes), which the checked API boundaries
/// (\c parseILChecked, \c compileChecked, \c launchChecked) catch and record
/// into a caller-owned \c DiagnosticEngine, returning an \c Expected<T>
/// failure instead of aborting. \c lift_unreachable (support/Error.h)
/// remains reserved for true internal invariant violations.
///
/// The error-code taxonomy is grouped by pipeline stage (see
/// docs/DIAGNOSTICS.md): 1xx IL parsing, 2xx type analysis, 3xx IR
/// verification, 4xx code generation, 5xx simulated-runtime execution,
/// 6xx host API misuse and the native CPU backend (docs/NATIVE_BACKEND.md),
/// 7xx the liftd compile-and-run service (docs/SERVICE.md), 8xx the
/// pipeline-graph layer (docs/PIPELINES.md).
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_SUPPORT_DIAGNOSTICS_H
#define LIFT_SUPPORT_DIAGNOSTICS_H

#include <exception>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace lift {

enum class DiagSeverity { Note, Warning, Error };

const char *severityName(DiagSeverity S);

/// Stable error codes, one per distinct failure condition. The numeric
/// value groups codes by the pipeline stage that raises them; rendered as
/// "E0101" style identifiers so tests and users can match on them.
enum class DiagCode : unsigned {
  // 1xx — IL lexing and parsing.
  ParseUnexpectedChar = 101,
  ParseUnterminatedString = 102,
  ParseUnexpectedToken = 103,
  ParseExpectedIdentifier = 104,
  ParseExpectedExpression = 105,
  ParseExpectedSize = 106,
  ParseUnknownType = 107,
  ParseUnknownFunction = 108,
  ParseUnknownIndexFunction = 109,
  ParseExpectedProgramHeader = 110,
  ParseTrailingInput = 111,
  ParseExpectedNumber = 112,
  ParseExpectedString = 113,
  ParseBadCount = 114,
  ParseTooDeep = 115,

  // 2xx — type analysis.
  TypeExpectsArray = 201,
  TypeArityMismatch = 202,
  TypeMismatch = 203,
  TypeExpectsTuple = 204,
  TypeExpectsVector = 205,
  TypeExpectsScalar = 206,
  TypeIndexOutOfRange = 207,
  TypeUnequalLengths = 208,
  TypeUntyped = 209,
  TypeIndivisibleSplit = 210,

  // 3xx — IR verifier findings.
  VerifyMalformed = 301,
  VerifyUnboundParam = 302,
  VerifyTypeInconsistent = 303,
  VerifyBadLength = 304,
  VerifyAddressSpace = 305,
  VerifyBadKernel = 306,

  // 4xx — lowering, views and code generation.
  CodegenUnsupported = 401,
  CodegenView = 402,
  CodegenLowering = 403,
  CodegenUserFunSyntax = 404,
  RewriteNoLowering = 405,

  // 5xx — simulated-runtime execution.
  RuntimeBadLaunch = 501,
  RuntimeBadValue = 502,
  RuntimeOutOfBounds = 503,
  RuntimeDivByZero = 504,
  RuntimeUnsupported = 505,
  RuntimeUninitRead = 506,
  RuntimeRace = 507,
  RuntimeBadNDRange = 508,
  RuntimePoolFallback = 509,
  RuntimeStepLimit = 510,
  RuntimeDeadline = 511,
  RuntimeMemoryLimit = 512,
  RuntimeFaultInjected = 513,
  RuntimeCrossGroupRace = 514,
  RuntimeFaultMidExec = 515, ///< injected mid-execution fault (barrier,
                             ///< group dispatch, step chunk); cancelled
  RuntimeCancelled = 516,    ///< cancelled cooperatively by the host
                             ///< (client disconnect, daemon drain)

  // 6xx — host API misuse and the native CPU backend.
  HostBadBuffer = 601,
  HostUnboundSize = 602,
  NativeToolchainMissing = 603, ///< no usable system C++ compiler
  NativeCompileFailed = 604,    ///< the system compiler rejected the source
  NativeLoadFailed = 605,       ///< dlopen of the compiled object failed
  NativeSymbolMissing = 606,    ///< dlsym could not find the kernel entry
  NativeUnsupported = 607,      ///< construct outside the native subset
  CacheEntryQuarantined = 608,  ///< warning: corrupt cache entry set aside,
                                ///< treated as a miss
  CacheWriteFailed = 609,       ///< warning: cache entry not persisted
  NativeFallback = 610,         ///< warning: native backend unavailable,
                                ///< degraded to the simulator
  NativeArtifactCorrupt = 611,  ///< warning: cached shared object failed
                                ///< its integrity check; recompiling

  // 7xx — the liftd compile-and-run service (docs/SERVICE.md).
  ServiceOverloaded = 701,    ///< admission queue full: shed, retry later
  ServiceBadRequest = 702,    ///< malformed or oversized request frame
  ServiceIoError = 703,       ///< connection read/write failed or timed out
  ServiceCancelled = 704,     ///< request cancelled (client disconnected)
  ServiceShuttingDown = 705,  ///< daemon draining; no new work accepted
  ServiceConnectFailed = 706, ///< client could not reach the daemon socket

  // 8xx — the pipeline-graph layer (docs/PIPELINES.md).
  GraphParse = 801,          ///< malformed .liftg text
  GraphDuplicateName = 802,  ///< kernel/buffer/stage name declared twice
  GraphUnknownName = 803,    ///< stage references an undeclared kernel/buffer
  GraphKernelInvalid = 804,  ///< embedded kernel IL failed to parse/compile
  GraphShapeMismatch = 805,  ///< buffer extent disagrees with kernel params
  GraphUnproducedBuffer = 806, ///< consumed buffer has no producer/input
  GraphCycle = 807,          ///< stage dependencies form a cycle
  GraphMultipleWriters = 808, ///< two stages write the same buffer
  GraphStageFailed = 809,    ///< a stage launch failed; names the stage
  GraphPoisonedInput = 810,  ///< stage consumes a poisoned buffer; names
                             ///< the producing stage
  GraphFaultInjected = 811,  ///< injected graph-level fault (stage dispatch,
                             ///< buffer reuse)
  GraphNotConverged = 812,   ///< warning: iterate node exhausted max trips
};

/// Renders a code as its stable "E0101"-style identifier.
std::string diagCodeId(DiagCode C);

/// Where a diagnostic points: a 1-based line in the IL source (0 when no
/// source text is involved) and/or a free-form context path (an IR
/// expression, a kernel name, a pipeline stage).
struct DiagLocation {
  unsigned Line = 0;
  std::string Context;

  DiagLocation() = default;
  static DiagLocation atLine(unsigned Line) {
    DiagLocation L;
    L.Line = Line;
    return L;
  }
  static DiagLocation inContext(std::string Context) {
    DiagLocation L;
    L.Context = std::move(Context);
    return L;
  }
  static DiagLocation at(unsigned Line, std::string Context) {
    DiagLocation L;
    L.Line = Line;
    L.Context = std::move(Context);
    return L;
  }

  bool valid() const { return Line != 0 || !Context.empty(); }
  /// " (line 3, in mapSeq(...))" — empty when nothing is known.
  std::string str() const;
};

struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  DiagCode Code = DiagCode::VerifyMalformed;
  DiagLocation Loc;
  std::string Message;
  std::vector<std::string> Notes;

  /// "error[E0101]: <message> (line 3)" plus one indented line per note.
  std::string render() const;
};

/// The exception raised on input-triggered failure paths. Carries the full
/// structured diagnostic; checked API boundaries catch it and record the
/// diagnostic into the caller's engine. \c Recorded marks diagnostics
/// already recorded by the engine that threw (to avoid double-recording).
class DiagnosticError : public std::exception {
public:
  Diagnostic Diag;
  bool Recorded = false;

  explicit DiagnosticError(Diagnostic D)
      : Diag(std::move(D)), Rendered(Diag.render()) {}

  const char *what() const noexcept override { return Rendered.c_str(); }

private:
  std::string Rendered;
};

/// Raises a \c DiagnosticError (error severity) from a failure path.
[[noreturn]] void throwDiag(DiagCode Code, DiagLocation Loc,
                            std::string Message,
                            std::vector<std::string> Notes = {});

/// Collects diagnostics across one compilation. Recovery-capable producers
/// (the IL parser, the verifier) record several errors before giving up;
/// \c MaxErrors caps how many are kept (liftc --max-errors).
class DiagnosticEngine {
public:
  explicit DiagnosticEngine(unsigned MaxErrors = 20) : MaxErrors(MaxErrors) {}

  /// Records a diagnostic. Errors beyond MaxErrors are dropped (the first
  /// dropped error records a single "too many errors" note instead).
  void report(Diagnostic D);

  void error(DiagCode Code, DiagLocation Loc, std::string Message,
             std::vector<std::string> Notes = {});
  void warning(DiagCode Code, DiagLocation Loc, std::string Message);
  void note(DiagLocation Loc, std::string Message);

  /// Records an error and throws it to unwind to the API boundary.
  [[noreturn]] void fatal(DiagCode Code, DiagLocation Loc,
                          std::string Message,
                          std::vector<std::string> Notes = {});

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  bool errorLimitReached() const { return LimitHit; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// All diagnostics, one rendered entry per line.
  std::string render() const;

  void clear();

  unsigned MaxErrors;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  bool LimitHit = false;
};

/// Minimal result-or-failure wrapper used by the checked API boundaries.
/// On failure the diagnostics live in the DiagnosticEngine the caller
/// passed in; Expected itself only signals success.
template <typename T> class Expected {
public:
  Expected() = default; // failure
  Expected(T Value) : Value_(std::move(Value)) {}

  explicit operator bool() const { return Value_.has_value(); }
  T &operator*() { return *Value_; }
  const T &operator*() const { return *Value_; }
  T *operator->() { return &*Value_; }
  const T *operator->() const { return &*Value_; }

private:
  std::optional<T> Value_;
};

} // namespace lift

#endif // LIFT_SUPPORT_DIAGNOSTICS_H
