//===- Error.cpp - Fatal error reporting ----------------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace lift;

void lift::fatalError(const std::string &Msg) {
  std::fprintf(stderr, "lift fatal error: %s\n", Msg.c_str());
  std::abort();
}

void lift::unreachableInternal(const char *Msg, const char *File,
                               unsigned Line) {
  std::fprintf(stderr, "unreachable executed at %s:%u: %s\n", File, Line,
               Msg ? Msg : "");
  std::abort();
}
