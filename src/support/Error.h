//===- Error.h - Fatal error reporting --------------------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal error reporting and the \c lift_unreachable macro. The compiler
/// library does not use exceptions; unrecoverable conditions (malformed IR,
/// internal invariant violations) abort with a diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_SUPPORT_ERROR_H
#define LIFT_SUPPORT_ERROR_H

#include <string>

namespace lift {

/// Prints \p Msg to stderr and aborts. Used for unrecoverable conditions
/// triggered by malformed input programs.
[[noreturn]] void fatalError(const std::string &Msg);

/// Implementation detail of lift_unreachable.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace lift

/// Marks a point in code that must never be executed; aborts with a message
/// identifying the location if it is reached.
#define lift_unreachable(MSG)                                                 \
  ::lift::unreachableInternal(MSG, __FILE__, __LINE__)

#endif // LIFT_SUPPORT_ERROR_H
