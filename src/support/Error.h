//===- Error.h - Fatal error reporting --------------------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal error reporting and the \c lift_unreachable macro, reserved for
/// true *internal* invariant violations. Input-triggered failures (bad IL
/// text, ill-typed programs, out-of-range runtime accesses) do not abort:
/// they raise structured, recoverable diagnostics instead — see
/// support/Diagnostics.h. \c fatalError survives only in the legacy
/// convenience wrappers (parseIL, compile, launch) that preserve the old
/// abort-on-bad-input behavior for hosts that want it.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_SUPPORT_ERROR_H
#define LIFT_SUPPORT_ERROR_H

#include <string>

namespace lift {

/// Prints \p Msg to stderr and aborts. Used for unrecoverable conditions
/// triggered by malformed input programs.
[[noreturn]] void fatalError(const std::string &Msg);

/// Implementation detail of lift_unreachable.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace lift

/// Marks a point in code that must never be executed; aborts with a message
/// identifying the location if it is reached.
#define lift_unreachable(MSG)                                                 \
  ::lift::unreachableInternal(MSG, __FILE__, __LINE__)

#endif // LIFT_SUPPORT_ERROR_H
