//===- FileLock.cpp - Cross-process advisory file lock --------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/FileLock.h"

#include <cerrno>
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

using namespace lift;
using namespace lift::support;

namespace {

int openLockFile(const std::string &Path) {
  for (;;) {
    int Fd = ::open(Path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (Fd >= 0 || errno != EINTR)
      return Fd;
  }
}

} // namespace

FileLock FileLock::acquire(const std::string &Path) {
  FileLock L;
  int Fd = openLockFile(Path);
  if (Fd < 0)
    return L;
  while (::flock(Fd, LOCK_EX) != 0) {
    if (errno != EINTR) {
      ::close(Fd);
      return L;
    }
  }
  L.Fd = Fd;
  return L;
}

FileLock FileLock::tryAcquire(const std::string &Path, bool &Busy) {
  Busy = false;
  FileLock L;
  int Fd = openLockFile(Path);
  if (Fd < 0)
    return L;
  while (::flock(Fd, LOCK_EX | LOCK_NB) != 0) {
    if (errno == EINTR)
      continue;
    Busy = errno == EWOULDBLOCK;
    ::close(Fd);
    return L;
  }
  L.Fd = Fd;
  return L;
}

FileLock &FileLock::operator=(FileLock &&O) noexcept {
  if (this != &O) {
    if (Fd >= 0)
      ::close(Fd); // closing releases the flock
    Fd = O.Fd;
    O.Fd = -1;
  }
  return *this;
}

FileLock::~FileLock() {
  if (Fd >= 0)
    ::close(Fd);
}
