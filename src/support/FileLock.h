//===- FileLock.h - Cross-process advisory file lock ------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An RAII flock(2) wrapper for cross-process single-flight around the
/// persistent caches (.lift-tune JSON entries, native .so artifacts, liftd
/// disk artifacts). Two *threads* already serialize through in-process
/// mutexes and two *processes* are kept safe by the atomic temp+rename
/// write protocol — the lock adds single-flight on top, so concurrent
/// writers of the same key collapse to one compile instead of doing the
/// work twice and racing the rename. The lock is therefore best-effort by
/// design: when it cannot be taken (read-only dir, exotic filesystem) the
/// caller proceeds unguarded and correctness still holds, only the
/// duplicate-work suppression is lost.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_SUPPORT_FILELOCK_H
#define LIFT_SUPPORT_FILELOCK_H

#include <string>

namespace lift {
namespace support {

/// Exclusive advisory lock on a lock file, held until destruction. The
/// lock file itself (conventionally "<target>.lock") is created on demand
/// and intentionally never removed: unlinking a lock file while another
/// process holds or is acquiring it reintroduces the race the lock
/// prevents.
class FileLock {
public:
  FileLock() = default;

  /// Blocks until the exclusive lock on \p Path is held. On failure to
  /// open or lock (EINTR is retried), returns an unlocked instance —
  /// see the file comment for why callers proceed anyway.
  static FileLock acquire(const std::string &Path);

  /// Non-blocking variant: \p Busy is set when another holder has the
  /// lock (the returned instance is unlocked then).
  static FileLock tryAcquire(const std::string &Path, bool &Busy);

  FileLock(const FileLock &) = delete;
  FileLock &operator=(const FileLock &) = delete;
  FileLock(FileLock &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  FileLock &operator=(FileLock &&O) noexcept;
  ~FileLock();

  /// True when the exclusive lock is actually held.
  bool locked() const { return Fd >= 0; }

private:
  int Fd = -1;
};

} // namespace support
} // namespace lift

#endif // LIFT_SUPPORT_FILELOCK_H
