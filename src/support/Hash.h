//===- Hash.h - Content hashing for cache keys ------------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FNV-1a content hashing shared by every content-addressed cache (tune
/// entries, native .so artifacts, liftd compile artifacts) and the
/// sidecar integrity checks. One definition so every cache derives keys
/// the same way.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_SUPPORT_HASH_H
#define LIFT_SUPPORT_HASH_H

#include <cstdint>
#include <cstdio>
#include <string>

namespace lift {
namespace support {

inline uint64_t fnv1a64(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

/// 16-hex-digit rendering used for cache filenames and sidecar contents.
inline std::string hex16(uint64_t H) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}

} // namespace support
} // namespace lift

#endif // LIFT_SUPPORT_HASH_H
