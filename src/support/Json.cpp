//===- Json.cpp - Minimal JSON reader/writer helpers ----------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace lift;
using namespace lift::json;

namespace {

class Parser {
  const std::string &Text;
  size_t Pos = 0;

public:
  explicit Parser(const std::string &Text) : Text(Text) {}

  bool parse(Value &Out) {
    skipWs();
    if (!parseValue(Out))
      return false;
    skipWs();
    return Pos == Text.size();
  }

private:
  void skipWs() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }
  bool consume(char C) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != C)
      return false;
    ++Pos;
    return true;
  }
  bool parseHex4(unsigned &Code) {
    if (Pos + 4 > Text.size())
      return false;
    Code = 0;
    for (int I = 0; I != 4; ++I) {
      char H = Text[Pos + static_cast<size_t>(I)];
      Code <<= 4;
      if (H >= '0' && H <= '9')
        Code |= static_cast<unsigned>(H - '0');
      else if (H >= 'a' && H <= 'f')
        Code |= static_cast<unsigned>(H - 'a' + 10);
      else if (H >= 'A' && H <= 'F')
        Code |= static_cast<unsigned>(H - 'A' + 10);
      else
        return false;
    }
    Pos += 4;
    return true;
  }
  bool parseString(std::string &Out) {
    if (!consume('"'))
      return false;
    Out.clear();
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C == '\\' && Pos < Text.size()) {
        char E = Text[Pos++];
        switch (E) {
        case 'n':
          Out += '\n';
          break;
        case 't':
          Out += '\t';
          break;
        case 'r':
          Out += '\r';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'u': {
          unsigned Code = 0;
          if (!parseHex4(Code))
            return false;
          // UTF-8 encode. The writer only emits \u00XX control escapes,
          // but arbitrary BMP escapes decode too (surrogate pairs are
          // passed through as two 3-byte sequences, not recombined).
          if (Code < 0x80) {
            Out += static_cast<char>(Code);
          } else if (Code < 0x800) {
            Out += static_cast<char>(0xC0 | (Code >> 6));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (Code >> 12));
            Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          }
          break;
        }
        default:
          Out += E; // \" \\ \/ and anything unknown: the char itself
          break;
        }
      } else {
        Out += C; // raw control chars accepted (pre-escaping writers)
      }
    }
    if (Pos >= Text.size())
      return false;
    ++Pos; // closing quote
    return true;
  }
  bool parseValue(Value &Out) {
    skipWs();
    if (Pos >= Text.size())
      return false;
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      Out.K = Value::Obj;
      skipWs();
      if (consume('}'))
        return true;
      for (;;) {
        std::string Name;
        if (!parseString(Name) || !consume(':'))
          return false;
        Value V;
        if (!parseValue(V))
          return false;
        Out.O.emplace_back(std::move(Name), std::move(V));
        if (consume(','))
          continue;
        return consume('}');
      }
    }
    if (C == '[') {
      ++Pos;
      Out.K = Value::Arr;
      skipWs();
      if (consume(']'))
        return true;
      for (;;) {
        Value V;
        if (!parseValue(V))
          return false;
        Out.A.push_back(std::move(V));
        if (consume(','))
          continue;
        return consume(']');
      }
    }
    if (C == '"') {
      Out.K = Value::Str;
      return parseString(Out.S);
    }
    if (Text.compare(Pos, 4, "true") == 0) {
      Out.K = Value::Bool;
      Out.B = true;
      Pos += 4;
      return true;
    }
    if (Text.compare(Pos, 5, "false") == 0) {
      Out.K = Value::Bool;
      Out.B = false;
      Pos += 5;
      return true;
    }
    if (Text.compare(Pos, 4, "null") == 0) {
      Out.K = Value::Null;
      Pos += 4;
      return true;
    }
    // Number.
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '-' || Text[Pos] == '+' || Text[Pos] == '.' ||
            Text[Pos] == 'e' || Text[Pos] == 'E'))
      ++Pos;
    if (Pos == Start)
      return false;
    Out.K = Value::Num;
    Out.N = std::strtod(Text.c_str() + Start, nullptr);
    return true;
  }
};

} // namespace

bool json::parse(const std::string &Text, Value &Out) {
  return Parser(Text).parse(Out);
}

void json::appendQuoted(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    unsigned char U = static_cast<unsigned char>(C);
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (U < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", U);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

std::string json::quoted(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  appendQuoted(Out, S);
  return Out;
}

std::string json::numStr(double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}
