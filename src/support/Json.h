//===- Json.h - Minimal JSON reader/writer helpers --------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The minimal JSON subset shared by the persistent caches (tune entries,
/// liftd artifacts) and the liftd wire protocol: objects, arrays, strings,
/// numbers, booleans, null; no external dependency. The writer escapes
/// control characters (newlines become \n, other controls \u00XX), which
/// the newline-delimited service framing depends on: an encoded value is
/// always a single physical line. The reader accepts both escaped and raw
/// control characters, so entries written by older writers still parse.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_SUPPORT_JSON_H
#define LIFT_SUPPORT_JSON_H

#include <string>
#include <utility>
#include <vector>

namespace lift {
namespace json {

/// A parsed JSON value. Plain data; object fields keep insertion order.
struct Value {
  enum Kind { Null, Bool, Num, Str, Arr, Obj } K = Null;
  bool B = false;
  double N = 0;
  std::string S;
  std::vector<Value> A;
  std::vector<std::pair<std::string, Value>> O;

  const Value *field(const std::string &Name) const {
    for (const auto &[FName, V] : O)
      if (FName == Name)
        return &V;
    return nullptr;
  }

  /// Typed field lookups with defaults, for tolerant protocol decoding.
  bool boolField(const std::string &Name, bool Default) const {
    const Value *V = field(Name);
    return V && V->K == Bool ? V->B : Default;
  }
  double numField(const std::string &Name, double Default) const {
    const Value *V = field(Name);
    return V && V->K == Num ? V->N : Default;
  }
  std::string strField(const std::string &Name,
                       const std::string &Default = {}) const {
    const Value *V = field(Name);
    return V && V->K == Str ? V->S : Default;
  }
};

/// Parses \p Text as exactly one JSON value (trailing non-whitespace is an
/// error). Returns false on malformed input; \p Out is unspecified then.
bool parse(const std::string &Text, Value &Out);

/// Appends \p S to \p Out as a quoted JSON string. Escapes quotes,
/// backslashes and every control character, so the result never contains
/// a raw newline.
void appendQuoted(std::string &Out, const std::string &S);

/// appendQuoted into a fresh string.
std::string quoted(const std::string &S);

/// Shortest-round-trip double rendering (%.17g).
std::string numStr(double V);

} // namespace json
} // namespace lift

#endif // LIFT_SUPPORT_JSON_H
