//===- Retry.cpp - Bounded retry with deterministic backoff ---------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Retry.h"

#include <chrono>
#include <cstdlib>
#include <thread>

using namespace lift;
using namespace lift::retry;

namespace {

uint64_t envU64(const char *Name, uint64_t Default) {
  const char *Env = std::getenv(Name);
  if (!Env || !*Env)
    return Default;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Env, &End, 10);
  if (End == Env)
    return Default;
  return static_cast<uint64_t>(V);
}

uint64_t xorshift(uint64_t &X) {
  X ^= X << 13;
  X ^= X >> 7;
  X ^= X << 17;
  return X;
}

} // namespace

Policy Policy::fromEnv() {
  Policy P;
  P.MaxAttempts = static_cast<unsigned>(
      envU64("LIFT_RETRY_ATTEMPTS", P.MaxAttempts));
  P.BaseUs = envU64("LIFT_RETRY_BASE_US", P.BaseUs);
  P.Seed = envU64("LIFT_RETRY_SEED", P.Seed);
  return P;
}

Backoff::Backoff(const Policy &P)
    : BaseUs(P.BaseUs), Rng(P.Seed ? P.Seed : 0x9e3779b97f4a7c15ull) {}

uint64_t Backoff::nextDelayUs() {
  uint64_t Exp = BaseUs << (Attempt < 16 ? Attempt : 16);
  ++Attempt;
  uint64_t Jitter = BaseUs ? xorshift(Rng) % BaseUs : 0;
  return Exp + Jitter;
}

bool retry::isTransient(DiagCode Code) {
  switch (Code) {
  case DiagCode::RuntimeFaultInjected:
  case DiagCode::RuntimeFaultMidExec:
  case DiagCode::RuntimePoolFallback:
  case DiagCode::CacheEntryQuarantined:
  case DiagCode::CacheWriteFailed:
  // Service-side transients: an overloaded daemon asked for a retry, the
  // connection dropped mid-exchange, or the daemon was briefly absent
  // (restarting). A drained shutdown (E0705) is permanent by design.
  case DiagCode::ServiceOverloaded:
  case DiagCode::ServiceIoError:
  case DiagCode::ServiceConnectFailed:
    return true;
  default:
    // NativeToolchainMissing, NativeCompileFailed, NativeSymbolMissing,
    // NativeUnsupported and everything user-input-shaped is permanent: a
    // compiler that rejected the source will reject it again.
    return false;
  }
}

void retry::sleepFor(uint64_t Us) {
  if (Us == 0)
    return;
  // Cap each sleep so a misconfigured LIFT_RETRY_BASE_US cannot stall a
  // test run; the schedule stays deterministic, only the wall time is
  // bounded.
  if (Us > 50000)
    Us = 50000;
  std::this_thread::sleep_for(std::chrono::microseconds(Us));
}
