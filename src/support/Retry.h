//===- Retry.h - Bounded retry with deterministic backoff -------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small retry policy for transient host-side failures: native toolchain
/// invocation, dlopen/dlsym, persistent-cache file I/O, and worker-pool
/// bring-up. Attempts are bounded and the backoff schedule is derived
/// deterministically from a seed (no wall clock, no global RNG), so a test
/// that arms a fault at the n-th occurrence sees exactly the same retry
/// trace at every thread count and on every run.
///
/// Classification is keyed on the stable diagnostic code: injected faults
/// and cache I/O failures are transient (worth retrying — a real OpenCL
/// host sees these as spurious ENOMEM/EINTR-class errors), while "the
/// toolchain does not exist" or "the program is outside the native subset"
/// are permanent and fail fast. See docs/RELIABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_SUPPORT_RETRY_H
#define LIFT_SUPPORT_RETRY_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>

namespace lift {
namespace retry {

/// Bounded-attempt policy. MaxAttempts counts the first try: the default
/// (3) means one try plus up to two retries. BaseUs scales the backoff
/// schedule; Seed makes the jitter deterministic.
struct Policy {
  unsigned MaxAttempts = 3;
  uint64_t BaseUs = 200;
  uint64_t Seed = 0x243f6a8885a308d3ull;

  /// Reads LIFT_RETRY_ATTEMPTS / LIFT_RETRY_BASE_US / LIFT_RETRY_SEED,
  /// falling back to the defaults above. Read per call so tests can
  /// adjust the environment between runs.
  static Policy fromEnv();
};

/// Deterministic backoff schedule: exponential growth with seeded jitter.
/// nextDelayUs() for attempt k returns BaseUs * 2^k plus a jitter term in
/// [0, BaseUs) drawn from an xorshift stream seeded by Policy::Seed — the
/// same policy always yields the same schedule.
class Backoff {
public:
  explicit Backoff(const Policy &P);

  /// Delay to sleep before the next retry; advances the schedule.
  uint64_t nextDelayUs();

private:
  uint64_t BaseUs;
  uint64_t Rng;
  unsigned Attempt = 0;
};

/// True when \p Code names a condition worth retrying. Injected faults and
/// cache/file I/O failures are transient; missing toolchains, rejected
/// source, and unsupported constructs are permanent.
bool isTransient(DiagCode Code);

/// Deterministic sleep used between attempts. Kept tiny (microseconds) so
/// exhausting a policy under test costs well under a millisecond.
void sleepFor(uint64_t Us);

/// Runs \p Fn up to P.MaxAttempts times. A DiagnosticError whose code is
/// transient (per isTransient) triggers a backoff sleep and a retry; a
/// permanent code, or running out of attempts, rethrows the last error
/// augmented with a note recording the attempt count (so users can see a
/// failure survived retries). \p What names the operation in that note.
template <typename Fn>
auto runWithRetry(const Policy &P, const char *What, Fn &&F)
    -> decltype(F()) {
  Backoff B(P);
  unsigned Attempts = P.MaxAttempts ? P.MaxAttempts : 1;
  for (unsigned A = 1;; ++A) {
    try {
      return F();
    } catch (DiagnosticError &E) {
      if (A >= Attempts || !isTransient(E.Diag.Code)) {
        if (A > 1) {
          Diagnostic D = E.Diag;
          D.Notes.push_back(std::string(What) + " failed after " +
                            std::to_string(A) + " attempts");
          DiagnosticError Out(std::move(D));
          Out.Recorded = E.Recorded;
          throw Out;
        }
        throw;
      }
      sleepFor(B.nextDelayUs());
    }
  }
}

} // namespace retry
} // namespace lift

#endif // LIFT_SUPPORT_RETRY_H
